// Command newsum-router fronts a fleet of newsum-serve backends: jobs are
// consistent-hashed by their operator fingerprint so each operator's
// checksum-encoding cache stays hot on exactly one backend, dead backends
// are restarted and their in-flight jobs re-dispatched, and saturated
// backends are routed around before any client sees a 429. The HTTP
// surface is identical to a single newsum-serve — /solve (with ?stream=1),
// /stats, /healthz — so clients need no changes.
//
// Two fleet modes:
//
//	newsum-router -addr :8070 -backends 4 -backend-cmd ./newsum-serve \
//	    -base-port 9080 -backend-args "-workers 2 -batch-window 2ms"
//
// spawns and supervises 4 newsum-serve child processes on ports
// 9080..9083, restarting any that die; or
//
//	newsum-router -addr :8070 -join http://h1:8080,http://h2:8080
//
// joins externally managed backends — probed and routed around when down,
// but never restarted.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"newsum/internal/router"
)

// procBackend supervises one newsum-serve child process. Start spawns the
// child on the slot's fixed port and waits for its /healthz; Stop kills it
// outright (SIGKILL — the crash model the router is built to survive).
type procBackend struct {
	bin  string
	args []string
	addr string

	mu   sync.Mutex
	proc *exec.Cmd
	done chan error
}

func (pb *procBackend) Start() (string, error) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if pb.proc != nil {
		return "", fmt.Errorf("backend %s already running", pb.addr)
	}
	args := append(append([]string(nil), pb.args...), "-addr", pb.addr)
	cmd := exec.Command(pb.bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	pb.proc, pb.done = cmd, done

	// Wait for the child to bind and answer /healthz so the router starts
	// with a dispatchable slot instead of racing the child's startup.
	url := "http://" + pb.addr
	client := &http.Client{Timeout: 250 * time.Millisecond}
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			_ = resp.Body.Close() //lint:ignore errdrop startup probe: the status code is the signal; the body is empty
			if resp.StatusCode == http.StatusOK {
				return url, nil
			}
		}
		select {
		case err := <-done:
			pb.proc, pb.done = nil, nil
			return "", fmt.Errorf("backend %s exited during startup: %v", pb.addr, err)
		case <-time.After(50 * time.Millisecond):
		}
	}
	// Startup budget blown: kill the half-up child so the next attempt
	// starts clean.
	_ = cmd.Process.Kill() //lint:ignore errdrop the child may have just exited; either way the port is being reclaimed
	<-done
	pb.proc, pb.done = nil, nil
	return "", fmt.Errorf("backend %s never became healthy", pb.addr)
}

func (pb *procBackend) Stop() error {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	if pb.proc == nil {
		return nil
	}
	err := pb.proc.Process.Kill()
	<-pb.done // reap before the port is reused
	pb.proc, pb.done = nil, nil
	return err
}

func main() {
	addr := flag.String("addr", ":8070", "router listen address")
	backends := flag.Int("backends", 2, "newsum-serve child processes to spawn and supervise")
	backendCmd := flag.String("backend-cmd", "newsum-serve", "backend binary to exec")
	backendArgs := flag.String("backend-args", "", "space-separated extra flags for each backend (e.g. \"-workers 2 -batch-window 2ms\")")
	basePort := flag.Int("base-port", 9080, "first backend port; slot i listens on base-port+i")
	join := flag.String("join", "", "comma-separated backend URLs to join instead of spawning (no restart supervision)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 64)")
	retryBudget := flag.Int("retry-budget", 0, "re-dispatches per job after backend failures (0 = default 3)")
	healthInterval := flag.Duration("health-interval", 0, "backend probe cadence (0 = default 250ms)")
	flag.Parse()

	var fleet []router.Backend
	if *join != "" {
		for _, u := range strings.Split(*join, ",") {
			if u = strings.TrimSpace(u); u != "" {
				fleet = append(fleet, &router.StaticBackend{Base: u})
			}
		}
	} else {
		var extra []string
		if *backendArgs != "" {
			extra = strings.Fields(*backendArgs)
		}
		for i := 0; i < *backends; i++ {
			fleet = append(fleet, &procBackend{
				bin:  *backendCmd,
				args: extra,
				addr: fmt.Sprintf("127.0.0.1:%d", *basePort+i),
			})
		}
	}

	rt, err := router.New(router.Config{
		Backends:       fleet,
		VNodes:         *vnodes,
		RetryBudget:    *retryBudget,
		HealthInterval: *healthInterval,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "newsum-router: %v\n", err)
		os.Exit(1)
	}

	server := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "newsum-router: listening on %s over %d backends\n", *addr, len(fleet))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "newsum-router: %v\n", err)
		_ = rt.Close() //lint:ignore errdrop already exiting on a listener error; backend stop failures add nothing
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "newsum-router: %v — shutting down\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "newsum-router: shutdown: %v\n", err)
	}
	if err := rt.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "newsum-router: backend stop: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "newsum-router: stopped")
}
