// Command newsum-matgen generates the evaluation matrices as Matrix Market
// files, so workloads can be inspected, shared, or fed to other tools.
//
// Usage:
//
//	newsum-matgen -kind circuit -n 40000 -o circuit.mtx
//	newsum-matgen -kind convdiff -n 10000 -beta 20 -o cd.mtx
package main

import (
	"flag"
	"fmt"
	"os"

	"newsum/internal/mmio"
	"newsum/internal/sparse"
)

func main() {
	var (
		kind = flag.String("kind", "circuit", "circuit|laplace2d|laplace3d|convdiff|diagdom|spd|tridiag")
		n    = flag.Int("n", 10000, "target matrix order")
		beta = flag.Float64("beta", 20, "convection strength for convdiff")
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "", "output path (default <kind>-<n>.mtx)")
	)
	flag.Parse()

	a, err := generate(*kind, *n, *beta, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "newsum-matgen:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("%s-%d.mtx", *kind, a.Rows)
	}
	if err := mmio.WriteFile(path, a); err != nil {
		fmt.Fprintln(os.Stderr, "newsum-matgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %dx%d, %d nonzeros (c0=%.2f, symmetric=%v, diag-dominant=%v)\n",
		path, a.Rows, a.Cols, a.NNZ(), a.Sparsity(),
		a.IsSymmetric(1e-12), a.IsDiagonallyDominant())
}

func generate(kind string, n int, beta float64, seed int64) (*sparse.CSR, error) {
	side := 1
	for side*side < n {
		side++
	}
	switch kind {
	case "circuit":
		return sparse.CircuitLike(n, seed), nil
	case "laplace2d":
		return sparse.Laplacian2D(side, side), nil
	case "laplace3d":
		s := 1
		for s*s*s < n {
			s++
		}
		return sparse.Laplacian3D(s, s, s), nil
	case "convdiff":
		return sparse.ConvectionDiffusion2D(side, side, beta), nil
	case "diagdom":
		return sparse.DiagDominant(n, 6, seed), nil
	case "spd":
		return sparse.SPDRandom(n, 3, seed), nil
	case "tridiag":
		return sparse.Tridiag(n, -1, 2, -1), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
