package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"newsum/internal/analysis"
)

// chdir switches the working directory for one test and restores it.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

// TestList pins -list as the authoritative analyzer inventory: every
// analyzer the registry knows (including any future addition) must appear,
// with its doc line.
func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errOut.String())
	}
	all := analysis.All()
	if len(all) < 7 {
		t.Errorf("registry lists %d analyzers, expected at least the 7 of this tier", len(all))
	}
	for _, az := range all {
		if !strings.Contains(out.String(), az.Name()) {
			t.Errorf("-list output missing %s:\n%s", az.Name(), out.String())
		}
		if !strings.Contains(out.String(), az.Doc()) {
			t.Errorf("-list output missing doc for %s", az.Name())
		}
	}
}

func TestUnknownAnalyzerExits2(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nosuch") {
		t.Errorf("stderr should name the unknown analyzer, got %q", errOut.String())
	}
}

// TestJSONShapeAndExitCodes drives the driver over a synthetic module with
// one violation and over the same module once fixed.
func TestJSONShapeAndExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module lintdrv\n\ngo 1.22\n")
	write("internal/num/num.go", `package num

func Equal(a, b float64) bool { return a == b }
`)
	chdir(t, dir)

	var out, errOut bytes.Buffer
	code := run([]string{"-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run on dirty module = %d, want 1 (stderr %q)", code, errOut.String())
	}
	var findings []finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %+v", findings)
	}
	f := findings[0]
	if f.File != filepath.Join("internal", "num", "num.go") || f.Line != 3 || f.Col == 0 ||
		f.Category != "floatcmp" || f.Message == "" {
		t.Errorf("unexpected finding shape: %+v", f)
	}

	write("internal/num/num.go", `package num

import "math"

func Equal(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
`)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("run on clean module = %d, want 0 (stderr %q)", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean module should emit an empty JSON array, got %q", out.String())
	}
}

// TestBaseline drives the -baseline mode over a synthetic dirty module:
// a matching entry grandfathers its finding, a stale entry fails the run,
// and a missing baseline file is a usage error.
func TestBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module blmod\n\ngo 1.22\n")
	write("internal/num/num.go", `package num

func Equal(a, b float64) bool { return a == b }
`)
	chdir(t, dir)

	// Discover the real finding, then grandfather it.
	var out, errOut bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("run on dirty module = %d, want 1 (stderr %q)", code, errOut.String())
	}
	var findings []finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil || len(findings) != 1 {
		t.Fatalf("want 1 JSON finding, got %v (%s)", err, out.String())
	}
	bl, err := json.Marshal([]baselineEntry{{File: findings[0].File, Category: findings[0].Category, Message: findings[0].Message}})
	if err != nil {
		t.Fatal(err)
	}
	write("lint.baseline.json", string(bl))

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", "lint.baseline.json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("baselined run = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if strings.TrimSpace(out.String()) != "" {
		t.Errorf("grandfathered finding still printed: %q", out.String())
	}

	// Fix the code: the baseline entry goes stale and must fail the run.
	write("internal/num/num.go", `package num

import "math"

func Equal(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
`)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-baseline", "lint.baseline.json", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("run with stale baseline = %d, want 1 (stderr %q)", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "stale baseline entry") {
		t.Errorf("stderr should report the stale entry, got %q", errOut.String())
	}

	if code := run([]string{"-baseline", "no-such-file.json", "./..."}, &out, &errOut); code != 2 {
		t.Fatalf("run with missing baseline file = %d, want 2", code)
	}
}

// TestRepoClean is the standing invariant of this PR: the lint gate stays
// green over the whole module — with the full analyzer inventory of
// analysis.All() (what -list prints) and the committed baseline, which is
// expected to stay empty. If this fails, fix the finding or add a
// justified //lint:ignore — do not delete the test.
func TestRepoClean(t *testing.T) {
	chdir(t, filepath.Join("..", ".."))
	var out, errOut bytes.Buffer
	if code := run([]string{"-baseline", "lint.baseline.json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("newsum-lint -baseline lint.baseline.json ./... = %d; findings:\n%s%s", code, out.String(), errOut.String())
	}
}
