package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir switches the working directory for one test and restores it.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

func TestList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"floatcmp", "errdrop", "bannedcall", "goroutineguard"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerExits2(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "nosuch") {
		t.Errorf("stderr should name the unknown analyzer, got %q", errOut.String())
	}
}

// TestJSONShapeAndExitCodes drives the driver over a synthetic module with
// one violation and over the same module once fixed.
func TestJSONShapeAndExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module lintdrv\n\ngo 1.22\n")
	write("internal/num/num.go", `package num

func Equal(a, b float64) bool { return a == b }
`)
	chdir(t, dir)

	var out, errOut bytes.Buffer
	code := run([]string{"-json", "./..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("run on dirty module = %d, want 1 (stderr %q)", code, errOut.String())
	}
	var findings []finding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON finding array: %v\n%s", err, out.String())
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %+v", findings)
	}
	f := findings[0]
	if f.File != filepath.Join("internal", "num", "num.go") || f.Line != 3 || f.Col == 0 ||
		f.Category != "floatcmp" || f.Message == "" {
		t.Errorf("unexpected finding shape: %+v", f)
	}

	write("internal/num/num.go", `package num

import "math"

func Equal(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
`)
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("run on clean module = %d, want 0 (stderr %q)", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("clean module should emit an empty JSON array, got %q", out.String())
	}
}

// TestRepoClean is the standing invariant of this PR: the lint gate stays
// green over the whole module. If this fails, fix the finding or add a
// justified //lint:ignore — do not delete the test.
func TestRepoClean(t *testing.T) {
	chdir(t, filepath.Join("..", ".."))
	var out, errOut bytes.Buffer
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("newsum-lint ./... = %d; findings:\n%s%s", code, out.String(), errOut.String())
	}
}
