// Command newsum-lint runs the repo's static-analysis gate: the four
// ABFT-invariant analyzers of internal/analysis (floatcmp, errdrop,
// bannedcall, goroutineguard) over the packages named by its arguments.
//
// Usage:
//
//	newsum-lint [flags] [patterns...]
//
// Patterns are package directories; a trailing /... recurses ("./..." is
// the default). Flags:
//
//	-json           emit findings as a JSON array instead of text
//	-only cat,cat   run only the named analyzers
//	-list           print the analyzer set and exit
//	-baseline file  filter findings against a committed JSON baseline
//
// A baseline file is a JSON array of {file, category, message} entries
// (no line numbers, so unrelated edits cannot churn it): findings matching
// an entry are grandfathered and filtered out, and entries matching no
// finding are themselves reported as stale so the baseline can only
// shrink. The repo commits an empty baseline (lint.baseline.json) — the
// mechanism exists for bootstrapping new analyzers over a large tree.
//
// Exit status is 0 when no findings survive //lint:ignore suppression and
// the baseline has no stale entries, 1 when findings or stale entries
// remain, and 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"newsum/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fprintf and fprintln route CLI output to the injected streams. A failed
// write to stdout/stderr leaves the driver nothing to report with, so the
// error is consciously dropped.
func fprintf(w io.Writer, format string, args ...any) {
	//lint:ignore errdrop CLI output failure is unactionable from inside the CLI
	_, _ = fmt.Fprintf(w, format, args...)
}

func fprintln(w io.Writer, args ...any) {
	//lint:ignore errdrop CLI output failure is unactionable from inside the CLI
	_, _ = fmt.Fprintln(w, args...)
}

// finding is the stable JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("newsum-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer allowlist (default: all)")
	list := fs.Bool("list", false, "print the analyzer set and exit")
	baselinePath := fs.String("baseline", "", "JSON baseline of grandfathered findings; stale entries are reported")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, az := range analyzers {
			fprintf(stdout, "%-15s %s\n", az.Name(), az.Doc())
		}
		return 0
	}
	if *only != "" {
		var err error
		analyzers, err = analysis.Select(analyzers, strings.Split(*only, ","))
		if err != nil {
			fprintln(stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fprintln(stderr, err)
		return 2
	}
	// Resolve patterns against the invocation directory, not the module
	// root, so "./..." in a subdirectory lints just that subtree.
	resolved := make([]string, len(patterns))
	for i, pat := range patterns {
		resolved[i] = absPattern(pat)
	}

	diags, err := analysis.Run(root, resolved, analyzers)
	if err != nil {
		fprintln(stderr, err)
		return 2
	}

	stale := 0
	if *baselinePath != "" {
		var staleEntries []baselineEntry
		diags, staleEntries, err = applyBaseline(diags, *baselinePath)
		if err != nil {
			fprintln(stderr, err)
			return 2
		}
		stale = len(staleEntries)
		for _, e := range staleEntries {
			fprintf(stderr, "newsum-lint: stale baseline entry (no matching finding): %s: %s: %s\n", e.File, e.Category, e.Message)
		}
	}

	if *jsonOut {
		out := make([]finding, len(diags))
		for i, d := range diags {
			out[i] = finding{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Category: d.Category, Message: d.Message}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fprintln(stdout, d)
		}
	}
	if len(diags) > 0 || stale > 0 {
		return 1
	}
	return 0
}

// baselineEntry is one grandfathered finding. Line numbers are deliberately
// absent: a baseline should pin a known debt, not a file layout.
type baselineEntry struct {
	File     string `json:"file"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

// applyBaseline splits diags into surviving findings and reports baseline
// entries that matched nothing (stale debt that must be deleted).
func applyBaseline(diags []analysis.Diagnostic, path string) (kept []analysis.Diagnostic, staleEntries []baselineEntry, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("newsum-lint: reading baseline: %w", err)
	}
	var entries []baselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, nil, fmt.Errorf("newsum-lint: parsing baseline %s: %w", path, err)
	}
	matched := make([]bool, len(entries))
	kept = diags[:0]
	for _, d := range diags {
		grandfathered := false
		for i, e := range entries {
			if d.Pos.Filename == e.File && d.Category == e.Category && d.Message == e.Message {
				matched[i] = true
				grandfathered = true
			}
		}
		if !grandfathered {
			kept = append(kept, d)
		}
	}
	for i, e := range entries {
		if !matched[i] {
			staleEntries = append(staleEntries, e)
		}
	}
	return kept, staleEntries, nil
}

// absPattern makes a pattern absolute while preserving a /... suffix.
func absPattern(pat string) string {
	recursive := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if pat == "" {
			pat = "."
		}
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		abs = pat
	}
	if recursive {
		return abs + "/..."
	}
	return abs
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("newsum-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
