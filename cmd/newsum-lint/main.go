// Command newsum-lint runs the repo's static-analysis gate: the four
// ABFT-invariant analyzers of internal/analysis (floatcmp, errdrop,
// bannedcall, goroutineguard) over the packages named by its arguments.
//
// Usage:
//
//	newsum-lint [flags] [patterns...]
//
// Patterns are package directories; a trailing /... recurses ("./..." is
// the default). Flags:
//
//	-json          emit findings as a JSON array instead of text
//	-only cat,cat  run only the named analyzers
//	-list          print the analyzer set and exit
//
// Exit status is 0 when no findings survive //lint:ignore suppression, 1
// when findings remain, and 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"newsum/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fprintf and fprintln route CLI output to the injected streams. A failed
// write to stdout/stderr leaves the driver nothing to report with, so the
// error is consciously dropped.
func fprintf(w io.Writer, format string, args ...any) {
	//lint:ignore errdrop CLI output failure is unactionable from inside the CLI
	_, _ = fmt.Fprintf(w, format, args...)
}

func fprintln(w io.Writer, args ...any) {
	//lint:ignore errdrop CLI output failure is unactionable from inside the CLI
	_, _ = fmt.Fprintln(w, args...)
}

// finding is the stable JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("newsum-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	only := fs.String("only", "", "comma-separated analyzer allowlist (default: all)")
	list := fs.Bool("list", false, "print the analyzer set and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, az := range analyzers {
			fprintf(stdout, "%-15s %s\n", az.Name(), az.Doc())
		}
		return 0
	}
	if *only != "" {
		var err error
		analyzers, err = analysis.Select(analyzers, strings.Split(*only, ","))
		if err != nil {
			fprintln(stderr, err)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fprintln(stderr, err)
		return 2
	}
	// Resolve patterns against the invocation directory, not the module
	// root, so "./..." in a subdirectory lints just that subtree.
	resolved := make([]string, len(patterns))
	for i, pat := range patterns {
		resolved[i] = absPattern(pat)
	}

	diags, err := analysis.Run(root, resolved, analyzers)
	if err != nil {
		fprintln(stderr, err)
		return 2
	}

	if *jsonOut {
		out := make([]finding, len(diags))
		for i, d := range diags {
			out[i] = finding{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column, Category: d.Category, Message: d.Message}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// absPattern makes a pattern absolute while preserving a /... suffix.
func absPattern(pat string) string {
	recursive := false
	if pat == "..." || strings.HasSuffix(pat, "/...") {
		recursive = true
		pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
		if pat == "" {
			pat = "."
		}
	}
	abs, err := filepath.Abs(pat)
	if err != nil {
		abs = pat
	}
	if recursive {
		return abs + "/..."
	}
	return abs
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("newsum-lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}
