// Command newsum-bench regenerates the paper's evaluation tables and
// figures (HPDC'16, §6). Each experiment prints the same rows/series the
// paper reports; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured comparisons.
//
// Usage:
//
//	newsum-bench -exp all
//	newsum-bench -exp fig6 -n 40000 -repeats 3
//	newsum-bench -exp table5
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"newsum/internal/accuracy"
	"newsum/internal/bench"
	"newsum/internal/bench/trajectory"
	"newsum/internal/core"
	"newsum/internal/model"
	"newsum/internal/par"
	"newsum/internal/sparse"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table3|table4|table5|fig5|fig6|fig7|fig8|fig9|fig10|par|accuracy|checkpoint|serve|shard|kernels|all")
		n       = flag.Int("n", 40000, "target matrix order for empirical experiments")
		blocks  = flag.Int("blocks", 16, "block-Jacobi block count (stand-in for MPI ranks)")
		repeats = flag.Int("repeats", 3, "timing repetitions (median reported)")
		seed    = flag.Int64("seed", 20160531, "deterministic seed (HPDC'16 started 2016-05-31)")
		csvDir  = flag.String("csv", "", "also write each experiment's data as CSV into this directory")

		benchJSON = flag.String("bench-json", "", "append this run's metrics as a record to this trajectory file (docs/benchmarks.md)")
		compare   = flag.String("compare", "", "gate this run's metrics against the newest record of this trajectory file; non-zero exit on regression")
		smoke     = flag.Bool("smoke", false, "with -compare: wall-clock units are advisory, deterministic units still gate")
		suite     = flag.String("suite", "newsum-bench", "suite name inside the trajectory file")
		commit    = flag.String("commit", "unknown", "commit id recorded with -bench-json")
		message   = flag.String("message", "", "commit message recorded with -bench-json")
	)
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "newsum-bench:", err)
			os.Exit(1)
		}
	}
	var collected *[]trajectory.Bench
	if *benchJSON != "" || *compare != "" {
		collected = &[]trajectory.Bench{}
	}
	if err := run(*exp, *n, *blocks, *repeats, *seed, *csvDir, collected); err != nil {
		fmt.Fprintln(os.Stderr, "newsum-bench:", err)
		os.Exit(1)
	}
	if collected != nil {
		failed, err := finishTrajectory(*collected, *compare, *benchJSON, *suite, *commit, *message, *smoke)
		if err != nil {
			fmt.Fprintln(os.Stderr, "newsum-bench:", err)
			os.Exit(1)
		}
		if failed {
			os.Exit(1)
		}
	}
}

// finishTrajectory gates the collected metrics against a baseline
// trajectory (-compare) and/or appends them as a new record (-bench-json).
// It reports whether the gate failed.
func finishTrajectory(benches []trajectory.Bench, compare, benchJSON, suite, commit, message string, smoke bool) (bool, error) {
	if len(benches) == 0 {
		return false, fmt.Errorf("no metrics collected (experiment emitted nothing)")
	}
	failed := false
	if compare != "" {
		file, err := trajectory.Load(compare)
		if err != nil {
			return false, err
		}
		base, ok := file.Latest(suite)
		if !ok {
			return false, fmt.Errorf("%s has no records in suite %q", compare, suite)
		}
		rep := trajectory.Compare(base.Benches, benches, trajectory.DefaultRules(), smoke)
		if err := rep.WriteText(os.Stdout); err != nil {
			return false, err
		}
		failed = rep.Failed()
	}
	if benchJSON != "" {
		file, err := trajectory.LoadOrEmpty(benchJSON)
		if err != nil {
			return false, err
		}
		file.Append(suite, trajectory.Record{
			Commit:  trajectory.Commit{ID: commit, Message: message, Timestamp: time.Now().UTC().Format(time.RFC3339)},
			Date:    time.Now().UnixMilli(),
			Tool:    "go",
			Benches: benches,
		})
		if err := file.Save(benchJSON); err != nil {
			return false, err
		}
		fmt.Printf("recorded %d metrics to %s suite %q\n", len(benches), benchJSON, suite)
	}
	return failed, nil
}

func run(exp string, n, blocks, repeats int, seed int64, csvDir string, collected *[]trajectory.Bench) error {
	collect := func(bs ...trajectory.Bench) {
		if collected != nil {
			*collected = append(*collected, bs...)
		}
	}
	writeCSV := func(name string, emit func(w *os.File) error) error {
		if csvDir == "" {
			return nil
		}
		f, err := os.Create(csvDir + "/" + name)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			//lint:ignore errdrop the emit error is the primary failure being reported
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	out := os.Stdout
	all := exp == "all"

	if all || exp == "table3" {
		w, err := bench.CircuitPCG(minInt(n, 4900), minInt(blocks, 8), seed)
		if err != nil {
			return err
		}
		r, err := bench.Table3(w, seed)
		if err != nil {
			return err
		}
		if err := bench.WriteTable3(out, r); err != nil {
			return err
		}
		collect(bench.Table3Benches(r)...)
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "table4" {
		// (d, cd) = (1, 12): the paper's λ=1 optimum; c0 = 4.8 matches
		// G3_circuit's nnz/n.
		if err := bench.WriteTable4(out, 1, 12, 4.8); err != nil {
			return err
		}
		collect(bench.Table4Benches(1, 12, 4.8)...)
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "table5" {
		if err := bench.WriteTable5(out, model.Stampede(), 2000, 1000); err != nil {
			return err
		}
		collect(bench.Table5Benches(model.Stampede(), 2000, 1000)...)
		if err := writeCSV("table5.csv", func(f *os.File) error {
			return bench.WriteTable5CSV(f, model.Stampede(), 2000, 1000)
		}); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "fig5" {
		if err := bench.WriteFigure5(out, model.Stampede(), 2000); err != nil {
			return err
		}
		collect(bench.Figure5Benches(model.Stampede(), 2000)...)
		if err := writeCSV("figure5_pcg.csv", func(f *os.File) error {
			return bench.WriteSurfaceCSV(f, model.Stampede().PCG, 1.0, 2000, 40, 8)
		}); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "fig6" {
		w, err := bench.CircuitPCG(n, blocks, seed)
		if err != nil {
			return err
		}
		fig, err := bench.FigureOverheads(w, repeats, seed)
		if err != nil {
			return err
		}
		if err := bench.WriteOverheadFigure(out, "Figure 6: PCG overheads (host measurement)", fig); err != nil {
			return err
		}
		collect(bench.OverheadFigureBenches("fig6", fig)...)
		if err := writeCSV("figure6.csv", func(f *os.File) error { return bench.WriteOverheadCSV(f, fig) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "fig7" {
		side := isqrt(n)
		w, err := bench.ConvectionPBiCGSTAB(side, side, blocks, 20)
		if err != nil {
			return err
		}
		fig, err := bench.FigureOverheads(w, repeats, seed)
		if err != nil {
			return err
		}
		if err := bench.WriteOverheadFigure(out, "Figure 7: PBiCGSTAB overheads (host measurement)", fig); err != nil {
			return err
		}
		collect(bench.OverheadFigureBenches("fig7", fig)...)
		if err := writeCSV("figure7.csv", func(f *os.File) error { return bench.WriteOverheadCSV(f, fig) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "fig8" {
		fig := bench.ProjectOverheads(model.Tianhe2(), core.MethodPCG, 1, 12, 4.8)
		if err := bench.WriteProjectedFigure(out, "Figure 8: PCG overheads on Tianhe-2", fig); err != nil {
			return err
		}
		collect(bench.ProjectedBenches("fig8", fig)...)
		if err := writeCSV("figure8.csv", func(f *os.File) error { return bench.WriteProjectedCSV(f, fig) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "fig9" {
		fig := bench.ProjectOverheads(model.Tianhe2(), core.MethodPBiCGSTAB, 1, 10, 4.8)
		if err := bench.WriteProjectedFigure(out, "Figure 9: PBiCGSTAB overheads on Tianhe-2", fig); err != nil {
			return err
		}
		collect(bench.ProjectedBenches("fig9", fig)...)
		if err := writeCSV("figure9.csv", func(f *os.File) error { return bench.WriteProjectedCSV(f, fig) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "par" {
		a := sparseCircuit(minInt(n, 6000), seed)
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1 + float64(i%13)
		}
		ranks := []int{1, 2, 4}
		if blocks >= 8 {
			ranks = append(ranks, 8)
		}
		pts, err := bench.ParallelSweep(a, b, bench.ParallelSolvers, ranks,
			[]par.Topology{par.Tree, par.Linear}, par.Options{Tol: 1e-8})
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Parallel: distributed ABFT solvers on circuit n=%d (goroutine ranks, per-solve collective counters)", a.Rows)
		if err := bench.WriteParallelTable(out, title, pts); err != nil {
			return err
		}
		collect(bench.ParallelBenches(pts)...)
		if err := writeCSV("parallel.csv", func(f *os.File) error { return bench.WriteParallelCSV(f, pts) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "fig10" {
		w, err := bench.CircuitPCG(n, blocks, seed)
		if err != nil {
			return err
		}
		fig, err := bench.Figure10(w, repeats, seed)
		if err != nil {
			return err
		}
		if err := bench.WriteFigure10(out, fig); err != nil {
			return err
		}
		collect(bench.Figure10Benches(fig)...)
		if err := writeCSV("figure10.csv", func(f *os.File) error { return bench.WriteFigure10CSV(f, fig) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "accuracy" {
		// The campaign measures rates, not scale: a modest grid keeps the
		// full (engine × solver × scheme × model × magnitude) sweep fast.
		cfg := accuracy.Config{
			Side:     minInt(isqrt(n), 24),
			Trials:   3,
			TwoLevel: true,
			Forward:  true,
			Seed:     seed,
		}
		rep, err := bench.RunAccuracy(cfg)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Accuracy: adversarial fault-model campaign, %d² unknowns, %d trials/cell",
			cfg.Side, cfg.Trials)
		if err := bench.WriteAccuracyReport(out, title, rep); err != nil {
			return err
		}
		collect(bench.AccuracyBenches(rep)...)
		if err := writeCSV("accuracy.csv", func(f *os.File) error { return bench.WriteAccuracyCSV(f, rep) }); err != nil {
			return err
		}
		if err := writeCSV("accuracy_fp.csv", func(f *os.File) error { return bench.WriteAccuracyFPCSV(f, rep) }); err != nil {
			return err
		}
		if err := writeCSV("accuracy_overhead.csv", func(f *os.File) error { return bench.WriteAccuracyOverheadCSV(f, rep) }); err != nil {
			return err
		}
		if err := writeCSV("accuracy_forward.csv", func(f *os.File) error { return bench.WriteAccuracyForwardCSV(f, rep) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "checkpoint" {
		// The snapshot-codec sweep: codec × error bound × fault rate on
		// identical strike schedules, measuring checkpoint bytes stored
		// against extra iterations after lossy restarts. Everything is
		// deterministic at the committed seed.
		cfg := accuracy.Config{
			Side:             minInt(isqrt(n), 20),
			Trials:           3,
			CheckpointBounds: []float64{1e-4, 1e-8},
			Seed:             seed,
		}
		points, err := bench.RunCheckpoint(cfg)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("Checkpoint: snapshot codec sweep (full/diff/lossy × bound × fault rate), %d² unknowns, %d trials/arm",
			cfg.Side, cfg.Trials)
		if err := bench.WriteCheckpointReport(out, title, points); err != nil {
			return err
		}
		collect(bench.CheckpointBenches(points)...)
		if err := writeCSV("checkpoint.csv", func(f *os.File) error { return bench.WriteCheckpointCSV(f, points) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "serve" {
		// The serving-layer sweep: worker-pool width × admission-queue
		// depth × encoding cache, under closed-loop clients with one chaos
		// fault per job. Small fixed operators keep the sweep about the
		// scheduling stack rather than the solves.
		pts, err := bench.ServeSweep([]int{2, 4, 8}, []int{8, 64}, []bool{true, false}, 8, 64, seed)
		if err != nil {
			return err
		}
		title := "Serve: solve-service throughput/latency sweep (8 closed-loop clients, 64 jobs, 1 chaos fault/job)"
		if err := bench.WriteServeTable(out, title, pts); err != nil {
			return err
		}
		collect(bench.ServeBenches(pts)...)
		if err := writeCSV("serve.csv", func(f *os.File) error { return bench.WriteServeCSV(f, pts) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "shard" {
		// Router-vs-single comparison at a matched total worker budget:
		// backends=1 is one process with all the workers, wider fleets put
		// a consistent-hash router in front. Zero-class corruption
		// counters ride along so a sharded fleet is held to the same
		// no-silent-errors bar as a single process.
		pts, err := bench.ShardSweep([]int{1, 2, 4}, 2, 8, 64, seed)
		if err != nil {
			return err
		}
		title := "Shard: router-vs-single throughput at matched worker budget (2 workers/backend, 8 closed-loop clients, 64 jobs, 1 chaos fault/job)"
		if err := bench.WriteShardTable(out, title, pts); err != nil {
			return err
		}
		collect(bench.ShardBenches(pts)...)
		if err := writeCSV("shard.csv", func(f *os.File) error { return bench.WriteShardCSV(f, pts) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	if all || exp == "kernels" {
		// Shared-memory kernel sweep: workers × n × kernel over the
		// internal/kernel layer, with an in-benchmark bitwise check that
		// every parallel result reproduces the serial bits (the
		// determinism contract). Sizes straddle the pool's serial
		// cutover so the table shows both regimes.
		nsides := []int{10, 17, 24}
		workers := []int{1, 2, 4, 8}
		pts := bench.KernelsSweep(nsides, workers, 10*repeats)
		if err := bench.VerifyKernelsBitwise(pts); err != nil {
			return err
		}
		title := fmt.Sprintf("Kernels: deterministic shared-memory sweep on 3D Laplacians (GOMAXPROCS=%d; bitwise column is checked, not assumed)",
			runtime.GOMAXPROCS(0))
		if err := bench.WriteKernelsTable(out, title, pts); err != nil {
			return err
		}
		collect(bench.KernelBenches(pts)...)
		if err := writeCSV("kernels.csv", func(f *os.File) error { return bench.WriteKernelsCSV(f, pts) }); err != nil {
			return err
		}
		fmt.Fprintln(os.Stdout)
	}
	switch exp {
	case "all", "table3", "table4", "table5", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "par", "accuracy", "checkpoint", "serve", "shard", "kernels":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func isqrt(n int) int {
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// sparseCircuit builds the raw circuit matrix for the parallel sweep (the
// distributed engine builds its own per-rank block preconditioners).
func sparseCircuit(n int, seed int64) *sparse.CSR {
	return sparse.CircuitLike(n, seed)
}
