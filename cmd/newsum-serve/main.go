// Command newsum-serve runs the concurrent fault-tolerant solve service
// over HTTP: solve jobs arrive as JSON at POST /solve (NDJSON progress
// streaming with ?stream=1), counters and latency quantiles at GET /stats,
// liveness at GET /healthz. SIGINT/SIGTERM triggers a graceful drain —
// admission stops, queued and running jobs finish, then the process exits.
//
// Usage examples:
//
//	newsum-serve -addr :8080 -workers 8 -queue 128
//	newsum-serve -addr 127.0.0.1:9090 -cache-size 32 -retries 3 -timeout 30s
//
//	curl -s localhost:8080/solve -d '{"solver":"pcg","scheme":"twolevel",
//	  "matrix":{"kind":"laplace2d","n":64},"chaos_faults":2,"seed":7}'
//	curl -s localhost:8080/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"newsum/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "solve workers (0 = default 4)")
	kernelWorkers := flag.Int("kernel-workers", 0, "shared-memory kernel threads per solve worker (0 = GOMAXPROCS/workers, min 1)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = default 64)")
	cacheSize := flag.Int("cache-size", 0, "encoding cache entries (0 = default 16, negative disables)")
	retries := flag.Int("retries", 0, "max automatic retries per job (0 = default 2, negative disables)")
	timeout := flag.Duration("timeout", 0, "default per-job deadline (0 = none)")
	maxRows := flag.Int("max-rows", 0, "admission bound on operator size (0 = default 262144)")
	batchWindow := flag.Duration("batch-window", 0, "multi-RHS coalescing window (0 = batching disabled)")
	maxBatch := flag.Int("max-batch", 0, "max right-hand sides per batched solve (0 = default 8)")
	ckptCodec := flag.String("checkpoint-codec", "", "snapshot codec for solver checkpoints: full (default), lossy, diff")
	ckptRelBound := flag.Float64("checkpoint-rel-bound", 0, "lossy codec per-element relative error bound (0 = package default)")
	ckptAbsBound := flag.Float64("checkpoint-abs-bound", 0, "lossy codec per-element absolute error bound (0 = relative only)")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace period for in-flight jobs")
	flag.Parse()

	svc := service.New(service.Config{
		Workers:        *workers,
		KernelWorkers:  *kernelWorkers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		MaxRetries:     *retries,
		DefaultTimeout: *timeout,
		MaxMatrixRows:  *maxRows,
		BatchWindow:    *batchWindow,
		MaxBatch:       *maxBatch,

		CheckpointCodec:    *ckptCodec,
		CheckpointRelBound: *ckptRelBound,
		CheckpointAbsBound: *ckptAbsBound,
	})
	server := &http.Server{Addr: *addr, Handler: svc.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "newsum-serve: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errCh:
		// The listener died before any signal: nothing to drain.
		fmt.Fprintf(os.Stderr, "newsum-serve: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "newsum-serve: %v — draining (grace %s)\n", s, *drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := server.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "newsum-serve: shutdown: %v\n", err)
	}
	svc.Close() // drain queued + running jobs, join workers
	fmt.Fprintln(os.Stderr, "newsum-serve: drained")
}
