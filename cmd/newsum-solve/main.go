// Command newsum-solve solves a sparse linear system with a chosen
// iterative method under a chosen fault-tolerance scheme, optionally
// injecting soft errors — a driver for exploring the library interactively.
//
// Usage examples:
//
//	newsum-solve -matrix circuit -n 40000 -solver pcg -scheme twolevel
//	newsum-solve -matrix laplace2d -n 10000 -solver pcg -scheme basic \
//	  -inject 5:mvm:arith -inject 20:pco:cache
//	newsum-solve -matrix path/to/G3_circuit.mtx -solver pcg -scheme basic
//	newsum-solve -matrix diagdom -n 5000 -solver jacobi -scheme basic
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"newsum/internal/core"
	"newsum/internal/fault"
	"newsum/internal/kernel"
	"newsum/internal/mmio"
	"newsum/internal/par"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

type injectList []fault.Event

func (l *injectList) String() string { return fmt.Sprint([]fault.Event(*l)) }

// Set parses "iter:site:kind[:count]" with site ∈ {mvm, vlo, pco, checksum,
// checkpoint} and kind
// ∈ {arith, mem, cache}.
func (l *injectList) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) < 3 {
		return fmt.Errorf("want iter:site:kind[:count], got %q", s)
	}
	iter, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad iteration %q: %v", parts[0], err)
	}
	var site fault.Site
	switch parts[1] {
	case "mvm":
		site = fault.SiteMVM
	case "vlo":
		site = fault.SiteVLO
	case "pco":
		site = fault.SitePCO
	case "checksum":
		site = fault.SiteChecksum
	case "checkpoint":
		site = fault.SiteCheckpoint
	default:
		return fmt.Errorf("bad site %q (mvm|vlo|pco|checksum|checkpoint)", parts[1])
	}
	var kind fault.Kind
	bitFlip := false
	switch parts[2] {
	case "arith":
		kind = fault.Arithmetic
	case "mem":
		kind = fault.Memory
	case "cache":
		kind = fault.CacheRegister
	case "arith-bit":
		kind, bitFlip = fault.Arithmetic, true
	case "mem-bit":
		kind, bitFlip = fault.Memory, true
	case "cache-bit":
		kind, bitFlip = fault.CacheRegister, true
	default:
		return fmt.Errorf("bad kind %q (arith|mem|cache, or *-bit for a random IEEE-754 bit flip)", parts[2])
	}
	count := 1
	if len(parts) > 3 {
		count, err = strconv.Atoi(parts[3])
		if err != nil {
			return fmt.Errorf("bad count %q: %v", parts[3], err)
		}
	}
	*l = append(*l, fault.Event{Iteration: iter, Site: site, Kind: kind, Index: -1, Count: count, BitFlip: bitFlip, Bit: -1})
	return nil
}

func main() {
	var (
		matrix  = flag.String("matrix", "circuit", "circuit|laplace2d|laplace3d|convdiff|diagdom|<file.mtx>")
		n       = flag.Int("n", 10000, "matrix order for generated matrices")
		solverN = flag.String("solver", "pcg", "pcg|cg|pbicgstab|bicgstab|gmres|minres|jacobi|chebyshev|cr|sd")
		scheme  = flag.String("scheme", "basic", "none|basic|twolevel|onlinemv|ortho|offline")
		precN   = flag.String("precond", "bjacobi", "none|jacobi|ilu0|ic0|bjacobi|ssor")
		blocks  = flag.Int("blocks", 16, "blocks for bjacobi")
		tol     = flag.Float64("tol", 1e-8, "relative residual tolerance")
		maxIter = flag.Int("maxiter", 0, "iteration cap (0 = 10n)")
		dIntv   = flag.Int("d", 1, "detection interval")
		cdIntv  = flag.Int("cd", 10, "checkpoint interval")
		seed    = flag.Int64("seed", 1, "generator/injector seed")
		trace   = flag.Bool("trace", false, "print the fault-tolerance event timeline")
		ranks   = flag.Int("ranks", 0, "run the distributed engine over this many goroutine ranks (0 = serial)")
		workers = flag.Int("workers", 1, "shared-memory kernel threads for the serial engine (bitwise-identical at any count)")
		topoN   = flag.String("topo", "tree", "collective topology for -ranks: tree|linear")
		injects injectList
	)
	flag.Var(&injects, "inject", "inject an error: iter:site:kind[:count], site mvm|vlo|pco|checksum|checkpoint, kind arith|mem|cache[-bit] (repeatable)")
	flag.Parse()

	if err := run(*matrix, *n, *solverN, *scheme, *precN, *blocks, *tol, *maxIter, *dIntv, *cdIntv, *seed, *trace, *ranks, *topoN, *workers, injects); err != nil {
		fmt.Fprintln(os.Stderr, "newsum-solve:", err)
		os.Exit(1)
	}
}

func buildMatrix(kind string, n int, seed int64) (*sparse.CSR, error) {
	side := 1
	for side*side < n {
		side++
	}
	switch kind {
	case "circuit":
		return sparse.CircuitLike(n, seed), nil
	case "laplace2d":
		return sparse.Laplacian2D(side, side), nil
	case "laplace3d":
		s := 1
		for s*s*s < n {
			s++
		}
		return sparse.Laplacian3D(s, s, s), nil
	case "convdiff":
		return sparse.ConvectionDiffusion2D(side, side, 20), nil
	case "diagdom":
		return sparse.DiagDominant(n, 6, seed), nil
	default:
		a, hdr, err := mmio.ReadFile(kind)
		if err != nil {
			return nil, err
		}
		fmt.Printf("loaded %s: %dx%d, %d nonzeros (%s %s)\n",
			kind, a.Rows, a.Cols, a.NNZ(), hdr.Field, hdr.Symmetry)
		return a, nil
	}
}

func buildPrecond(kind string, a *sparse.CSR, blocks int) (precond.Preconditioner, error) {
	switch kind {
	case "none":
		return precond.Identity(a.Rows), nil
	case "jacobi":
		return precond.Jacobi(a)
	case "ilu0":
		return precond.ILU0(a)
	case "ic0":
		return precond.IC0(a)
	case "bjacobi":
		return precond.BlockJacobiILU0(a, blocks)
	case "ssor":
		return precond.SSOR(a, 1.2)
	default:
		return nil, fmt.Errorf("unknown preconditioner %q", kind)
	}
}

func run(matrix string, n int, solverN, scheme, precN string, blocks int, tol float64, maxIter, d, cd int, seed int64, trace bool, ranks int, topoN string, workers int, injects injectList) error {
	a, err := buildMatrix(matrix, n, seed)
	if err != nil {
		return err
	}
	if maxIter == 0 {
		maxIter = 10 * a.Rows
	}
	if ranks > 0 {
		return runParallel(a, solverN, scheme, topoN, tol, maxIter, d, cd, ranks, injects)
	}
	m, err := buildPrecond(precN, a, blocks)
	if err != nil {
		return err
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	fmt.Printf("matrix: %dx%d, nnz=%d (c0=%.2f), precond=%s, solver=%s, scheme=%s\n",
		a.Rows, a.Cols, a.NNZ(), a.Sparsity(), m.Name(), solverN, scheme)

	var inj *fault.Injector
	if len(injects) > 0 {
		inj = fault.NewInjector(injects, seed)
	}
	var tr *core.Trace
	if trace {
		tr = &core.Trace{}
	}
	pool := kernel.NewPool(workers)
	defer pool.Close()
	opts := core.Options{
		Options:            solver.Options{Tol: tol, MaxIter: maxIter},
		DetectInterval:     d,
		CheckpointInterval: cd,
		Injector:           inj,
		Trace:              tr,
		Pool:               pool,
	}

	var res core.Result
	switch solverN {
	case "pcg", "cg":
		switch scheme {
		case "none":
			res, err = core.UnprotectedPCG(a, m, b, opts)
		case "basic":
			res, err = core.BasicPCG(a, m, b, opts)
		case "twolevel":
			res, err = core.TwoLevelPCG(a, m, b, opts)
		case "onlinemv":
			res, err = core.OnlineMVPCG(a, m, b, opts)
		case "ortho":
			res, err = core.OrthoPCG(a, m, b, opts)
		case "offline":
			res, err = core.OfflineResidualPCG(a, m, b, opts)
		default:
			return fmt.Errorf("unknown scheme %q", scheme)
		}
	case "pbicgstab", "bicgstab":
		switch scheme {
		case "none":
			res, err = core.UnprotectedPBiCGSTAB(a, m, b, opts)
		case "basic":
			res, err = core.BasicPBiCGSTAB(a, m, b, opts)
		case "twolevel":
			res, err = core.TwoLevelPBiCGSTAB(a, m, b, opts)
		case "onlinemv":
			res, err = core.OnlineMVPBiCGSTAB(a, m, b, opts)
		case "offline":
			res, err = core.OfflineResidualPBiCGSTAB(a, m, b, opts)
		default:
			return fmt.Errorf("scheme %q not available for BiCGSTAB", scheme)
		}
	case "jacobi":
		if scheme != "basic" {
			return fmt.Errorf("jacobi demo supports -scheme basic")
		}
		res, err = core.BasicJacobi(a, b, opts)
	case "chebyshev":
		if scheme != "basic" {
			return fmt.Errorf("chebyshev demo supports -scheme basic")
		}
		// Spectral bounds from the Gershgorin circle theorem, floored away
		// from zero for the semi-iteration's [lmin, lmax] interval.
		lo, hi := a.GershgorinBounds()
		if lo < 1e-8*hi {
			lo = 1e-8 * hi
		}
		res, err = core.BasicChebyshev(a, m, b, lo, hi, opts)
	case "gmres":
		switch scheme {
		case "none":
			var sres solver.Result
			sres, err = solver.GMRES(a, m, b, 30, solver.Options{Tol: tol, MaxIter: maxIter})
			res.Result = sres
		case "basic":
			res, err = core.BasicGMRES(a, m, b, 30, opts)
		default:
			return fmt.Errorf("gmres supports -scheme none|basic")
		}
	case "minres":
		var sres solver.Result
		sres, err = solver.MINRES(a, b, solver.Options{Tol: tol, MaxIter: maxIter})
		res.Result = sres
	case "cr":
		switch scheme {
		case "none":
			var sres solver.Result
			sres, err = solver.CR(a, b, solver.Options{Tol: tol, MaxIter: maxIter})
			res.Result = sres
		case "basic":
			res, err = core.BasicCR(a, b, opts)
		default:
			return fmt.Errorf("cr supports -scheme none|basic")
		}
	case "sd":
		var sres solver.Result
		sres, err = solver.SteepestDescent(a, b, solver.Options{Tol: tol, MaxIter: maxIter})
		res.Result = sres
	default:
		return fmt.Errorf("unknown solver %q", solverN)
	}
	if err != nil {
		return err
	}
	fmt.Printf("converged=%v iterations=%d relres=%.3e trueResid=%.3e\n",
		res.Converged, res.Iterations, res.Residual, core.TrueResidual(a, b, res.X))
	fmt.Printf("stats: updates=%d verifications=%d detections=%d corrections=%d checkpoints=%d rollbacks=%d wasted=%d injected=%d\n",
		res.Stats.ChecksumUpdates, res.Stats.Verifications, res.Stats.Detections,
		res.Stats.Corrections, res.Stats.Checkpoints, res.Stats.Rollbacks,
		res.Stats.WastedIterations, res.Stats.InjectedErrors)
	if inj != nil {
		for _, rec := range inj.Injected {
			fmt.Printf("injected: %s\n", rec)
		}
	}
	if tr != nil {
		fmt.Println("timeline:")
		if err := tr.Write(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

// runParallel routes the solve through the distributed goroutine-team engine
// (internal/par) and reports its fault-tolerance and collective statistics.
func runParallel(a *sparse.CSR, solverN, scheme, topoN string, tol float64, maxIter, d, cd, ranks int, injects injectList) error {
	var topo par.Topology
	switch topoN {
	case "tree":
		topo = par.Tree
	case "linear":
		topo = par.Linear
	default:
		return fmt.Errorf("unknown topology %q (tree|linear)", topoN)
	}
	opts := par.Options{
		Tol:                tol,
		MaxIter:            maxIter,
		DetectInterval:     d,
		CheckpointInterval: cd,
		Topology:           topo,
	}
	switch scheme {
	case "basic":
	case "twolevel":
		opts.TwoLevel = true
	default:
		return fmt.Errorf("-ranks supports -scheme basic|twolevel, not %q", scheme)
	}
	// The distributed engine's fault model strikes MVM outputs only; map the
	// -inject events onto it (one strike each, on rank 0's block).
	for _, ev := range injects {
		if ev.Site != fault.SiteMVM {
			return fmt.Errorf("-ranks supports -inject at site mvm only")
		}
		pf := par.Fault{Iteration: ev.Iteration, Index: -1}
		if ev.BitFlip {
			pf.BitFlip, pf.Bit = true, -1
		}
		opts.Faults = append(opts.Faults, pf)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	fmt.Printf("matrix: %dx%d, nnz=%d (c0=%.2f), solver=%s, scheme=%s, ranks=%d, topo=%s\n",
		a.Rows, a.Cols, a.NNZ(), a.Sparsity(), solverN, scheme, ranks, topo)

	var res par.Result
	var err error
	switch solverN {
	case "pcg", "cg":
		res, err = par.ABFTPCG(a, b, ranks, opts)
	case "pbicgstab", "bicgstab":
		res, err = par.ABFTBiCGStab(a, b, ranks, opts)
	case "cr":
		res, err = par.ABFTCR(a, b, ranks, opts)
	default:
		return fmt.Errorf("-ranks supports pcg|bicgstab|cr, not %q", solverN)
	}
	if err != nil {
		return err
	}
	fmt.Printf("converged=%v iterations=%d relres=%.3e trueResid=%.3e\n",
		res.Converged, res.Iterations, res.Residual, core.TrueResidual(a, b, res.X))
	fmt.Printf("stats: detections=%d corrections=%d checkpoints=%d rollbacks=%d injected=%d\n",
		res.Detections, res.Corrections, res.Checkpoints, res.Rollbacks, res.InjectedFaults)
	c := res.Comm
	fmt.Printf("comm: reductions=%d vec_reductions=%d gathers=%d broadcasts=%d barriers=%d msgs=%d words=%d\n",
		c.Reductions, c.VecReductions, c.Gathers, c.Broadcasts, c.Barriers, c.MsgsSent, c.WordsMoved)
	return nil
}
