package main

import (
	"testing"

	"newsum/internal/fault"
)

func TestInjectListParsing(t *testing.T) {
	var l injectList
	if err := l.Set("5:mvm:arith"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("12:pco:cache:3"); err != nil {
		t.Fatal(err)
	}
	if err := l.Set("0:vlo:mem"); err != nil {
		t.Fatal(err)
	}
	if len(l) != 3 {
		t.Fatalf("parsed %d events", len(l))
	}
	if l[0].Iteration != 5 || l[0].Site != fault.SiteMVM || l[0].Kind != fault.Arithmetic {
		t.Fatalf("first event: %+v", l[0])
	}
	if l[1].Count != 3 || l[1].Site != fault.SitePCO || l[1].Kind != fault.CacheRegister {
		t.Fatalf("second event: %+v", l[1])
	}
	if l[2].Site != fault.SiteVLO || l[2].Kind != fault.Memory {
		t.Fatalf("third event: %+v", l[2])
	}
	if l.String() == "" {
		t.Fatalf("String empty")
	}
}

func TestInjectListRejectsBadSpecs(t *testing.T) {
	for _, bad := range []string{
		"", "5", "5:mvm", "x:mvm:arith", "5:alu:arith", "5:mvm:flood", "5:mvm:arith:x",
	} {
		var l injectList
		if err := l.Set(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestBuildMatrixKinds(t *testing.T) {
	for _, kind := range []string{"circuit", "laplace2d", "laplace3d", "convdiff", "diagdom"} {
		a, err := buildMatrix(kind, 100, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildMatrix("/nonexistent/file.mtx", 10, 1); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestBuildPrecondKinds(t *testing.T) {
	a, err := buildMatrix("laplace2d", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{"none", "jacobi", "ilu0", "ic0", "bjacobi", "ssor"} {
		if _, err := buildPrecond(kind, a, 4); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := buildPrecond("amg", a, 4); err == nil {
		t.Fatalf("unknown preconditioner accepted")
	}
}
