package main

import (
	"path/filepath"
	"strings"
	"testing"

	"newsum/internal/bench/trajectory"
)

// seedBaseline writes a baseline trajectory with one record into dir and
// returns its path.
func seedBaseline(t *testing.T, dir string, benches []trajectory.Bench) string {
	t.Helper()
	path := filepath.Join(dir, "BENCH_TEST.json")
	f := &trajectory.File{}
	f.Append("Go Benchmark", trajectory.Record{
		Commit:  trajectory.Commit{ID: "baseline"},
		Date:    1754640000000,
		Tool:    "go",
		Benches: benches,
	})
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateSelfTest is the standing gate's own regression test: inject a
// >threshold regression in a deterministic unit into a fresh temp-dir
// baseline and require the comparator to exit non-zero naming the metric
// — in smoke mode, exactly as verify.sh runs it.
func TestGateSelfTest(t *testing.T) {
	base := seedBaseline(t, t.TempDir(), []trajectory.Bench{
		{Name: "BenchmarkAblationDetectionLatency/lazy-d8", Value: 168, Unit: "wasted-iters"},
		{Name: "BenchmarkAblationVerifyCost", Value: 0, Unit: "allocs/op"},
	})
	// Injected regression: wasted-iters 168 → 200 (any increase fails),
	// alloc pin 0 → 3 (pinned zero broken).
	input := "BenchmarkAblationDetectionLatency/lazy-d8 1 100 ns/op 200 wasted-iters\n" +
		"BenchmarkAblationVerifyCost 1 100 ns/op 3 allocs/op\n"
	var out, errOut strings.Builder
	code := run([]string{"-baseline", base, "-smoke"}, strings.NewReader(input), &out, &errOut)
	if code == 0 {
		t.Fatalf("injected regression did not fail the gate:\n%s%s", out.String(), errOut.String())
	}
	for _, want := range []string{"BenchmarkAblationDetectionLatency/lazy-d8", "wasted-iters",
		"BenchmarkAblationVerifyCost", "allocs/op", "REGRESSED"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("gate report does not name %q:\n%s", want, out.String())
		}
	}
}

// TestGatePassesCleanRun: the same run re-compared against itself passes,
// and timing drift alone stays advisory in smoke mode.
func TestGatePassesCleanRun(t *testing.T) {
	base := seedBaseline(t, t.TempDir(), []trajectory.Bench{
		{Name: "BenchmarkX", Value: 100, Unit: "ns/op"},
		{Name: "BenchmarkX", Value: 7, Unit: "wasted-iters"},
	})
	// 50x timing blowup but identical deterministic metric.
	input := "BenchmarkX 1 5000 ns/op 7 wasted-iters\n"
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base, "-smoke"}, strings.NewReader(input), &out, &errOut); code != 0 {
		t.Fatalf("clean smoke run failed (%d):\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "drift") {
		t.Errorf("timing drift not reported as advisory:\n%s", out.String())
	}
	// The same input without -smoke gates the timing unit.
	var out2, errOut2 strings.Builder
	if code := run([]string{"-baseline", base}, strings.NewReader(input), &out2, &errOut2); code == 0 {
		t.Fatalf("full-mode compare ignored a 50x timing regression:\n%s", out2.String())
	}
}

// TestRecordAndFilters: -record appends a trimmed record; -only/-exclude
// split one bench stream into per-suite baselines.
func TestRecordAndFilters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_CORE.json")
	input := "BenchmarkCore 1 100 ns/op 0 allocs/op\nBenchmarkServeQueue 1 200 ns/op 5 allocs/op\n"

	var out, errOut strings.Builder
	code := run([]string{"-baseline", path, "-record", "-exclude", "^BenchmarkServe",
		"-commit", "abc123", "-message", "first record"},
		strings.NewReader(input), &out, &errOut)
	if code != 0 {
		t.Fatalf("first record run failed (%d): %s", code, errOut.String())
	}
	f, err := trajectory.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := f.Latest("Go Benchmark")
	if !ok || len(rec.Benches) != 2 || rec.Commit.ID != "abc123" {
		t.Fatalf("recorded entry wrong: %+v", rec)
	}
	for _, b := range rec.Benches {
		if strings.HasPrefix(b.Name, "BenchmarkServe") {
			t.Fatalf("-exclude leaked a serve metric: %+v", b)
		}
	}

	// -only keeps just the serve metrics.
	var out2, errOut2 strings.Builder
	servePath := filepath.Join(dir, "BENCH_SERVE.json")
	code = run([]string{"-baseline", servePath, "-record", "-only", "^BenchmarkServe"},
		strings.NewReader(input), &out2, &errOut2)
	if code != 0 {
		t.Fatalf("serve record run failed (%d): %s", code, errOut2.String())
	}
	sf, err := trajectory.Load(servePath)
	if err != nil {
		t.Fatal(err)
	}
	srec, _ := sf.Latest("Go Benchmark")
	if len(srec.Benches) != 2 || !strings.HasPrefix(srec.Benches[0].Name, "BenchmarkServe") {
		t.Fatalf("-only kept wrong metrics: %+v", srec.Benches)
	}
}

// TestRecordRefusedOnRegression: a regressed run is not silently written
// over the baseline; -force re-baselines deliberately.
func TestRecordRefusedOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := seedBaseline(t, dir, []trajectory.Bench{
		{Name: "BenchmarkX", Value: 0, Unit: "sdc-rate"},
	})
	input := "BenchmarkX 1 100 ns/op 2 sdc-rate\n"
	var out, errOut strings.Builder
	if code := run([]string{"-baseline", base, "-smoke", "-record"},
		strings.NewReader(input), &out, &errOut); code == 0 {
		t.Fatal("regressed -record run exited zero")
	}
	if !strings.Contains(errOut.String(), "refusing to record") {
		t.Errorf("no refusal diagnostic: %s", errOut.String())
	}
	f, err := trajectory.Load(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries["Go Benchmark"]) != 1 {
		t.Fatal("regressed run was recorded anyway")
	}

	var out2, errOut2 strings.Builder
	if code := run([]string{"-baseline", base, "-smoke", "-record", "-force"},
		strings.NewReader(input), &out2, &errOut2); code != 1 {
		t.Fatalf("-force run exit = %d, want 1 (gate still reports the regression)", code)
	}
	f2, err := trajectory.Load(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Entries["Go Benchmark"]) != 2 {
		t.Fatal("-force did not record")
	}
}

func TestRunUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},                                      // missing -baseline
		{"-baseline", "x", "-only", "("},        // bad regexp
		{"-baseline", "x", "-input", "/nope"},   // unreadable input
		{"-baseline", "/nope/dir/x", "-record"}, // parse fails first on empty stdin
	} {
		var out, errOut strings.Builder
		if code := run(args, strings.NewReader(""), &out, &errOut); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2 (%s)", args, code, errOut.String())
		}
	}
}

func TestEmptyInputAfterFilters(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-baseline", filepath.Join(t.TempDir(), "b.json"), "-only", "^Nope"},
		strings.NewReader("BenchmarkX 1 100 ns/op\n"), &out, &errOut)
	if code != 2 || !strings.Contains(errOut.String(), "no benchmark metrics") {
		t.Fatalf("empty-after-filter run = %d, %s", code, errOut.String())
	}
}

func TestFirstRecordHasNoBaseline(t *testing.T) {
	var out, errOut strings.Builder
	path := filepath.Join(t.TempDir(), "b.json")
	code := run([]string{"-baseline", path},
		strings.NewReader("BenchmarkX 1 100 ns/op\n"), &out, &errOut)
	if code != 0 || !strings.Contains(out.String(), "no baseline record") {
		t.Fatalf("first run against empty baseline = %d, %s", code, out.String())
	}
}
