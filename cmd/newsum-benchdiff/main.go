// Command newsum-benchdiff gates benchmark regressions against a
// committed trajectory file and records new runs into it.
//
// It reads `go test -bench` output — raw text or the `-json` (test2json)
// stream — parses every metric line (ns/op, B/op, allocs/op, and this
// repo's custom b.ReportMetric units), and compares the run against the
// newest record in the baseline trajectory using per-unit regression
// rules. A regression exits non-zero and names the metric.
//
// Usage:
//
//	go test -bench . -benchmem | newsum-benchdiff -baseline BENCH_CORE.json -smoke
//	newsum-benchdiff -baseline BENCH_CORE.json -input bench.out -record -commit "$(git rev-parse HEAD)"
//	newsum-benchdiff -baseline BENCH_SERVE.json -only '^BenchmarkServe' -input bench.out -smoke
//
// In -smoke mode (verify.sh runs this against a -benchtime=1x run)
// wall-clock units are advisory: only deterministic units — allocs/op,
// B/op pins, sdc-rate, wasted-iters, detection rates, bitwise flags,
// exact model metrics — can fail the gate. A full run without -smoke
// gates timing units too.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"time"

	"newsum/internal/bench/trajectory"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// fprintf and fprintln route CLI output to the injected streams. A failed
// write to stdout/stderr leaves the gate nothing to report with, so the
// error is consciously dropped.
func fprintf(w io.Writer, format string, args ...any) {
	//lint:ignore errdrop CLI output failure is unactionable from inside the CLI
	_, _ = fmt.Fprintf(w, format, args...)
}

func fprintln(w io.Writer, args ...any) {
	//lint:ignore errdrop CLI output failure is unactionable from inside the CLI
	_, _ = fmt.Fprintln(w, args...)
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("newsum-benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baseline   = fs.String("baseline", "", "trajectory file to compare against (required)")
		input      = fs.String("input", "-", "bench output to read ('-' = stdin)")
		suite      = fs.String("suite", "Go Benchmark", "suite name inside the trajectory file")
		only       = fs.String("only", "", "regexp: keep only matching benchmark names")
		exclude    = fs.String("exclude", "", "regexp: drop matching benchmark names")
		smoke      = fs.Bool("smoke", false, "smoke mode: wall-clock units are advisory, deterministic units still gate")
		record     = fs.Bool("record", false, "append this run to the baseline file (refused on regression unless -force)")
		force      = fs.Bool("force", false, "record even when the gate fails (deliberate re-baselining)")
		commit     = fs.String("commit", "unknown", "commit id for the recorded entry")
		message    = fs.String("message", "", "commit message for the recorded entry")
		maxRecords = fs.Int("max-records", 50, "keep at most this many records per suite (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *baseline == "" {
		fprintln(stderr, "newsum-benchdiff: -baseline is required")
		return 2
	}

	in := stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fprintln(stderr, "newsum-benchdiff:", err)
			return 2
		}
		//lint:ignore errdrop read-only file; Close cannot lose data
		defer f.Close()
		in = f
	}
	benches, err := trajectory.ParseGoBench(in)
	if err != nil {
		fprintln(stderr, "newsum-benchdiff:", err)
		return 2
	}
	benches, err = filterBenches(benches, *only, *exclude)
	if err != nil {
		fprintln(stderr, "newsum-benchdiff:", err)
		return 2
	}
	if len(benches) == 0 {
		fprintln(stderr, "newsum-benchdiff: no benchmark metrics in input (after filters)")
		return 2
	}

	file, err := trajectory.LoadOrEmpty(*baseline)
	if err != nil {
		fprintln(stderr, "newsum-benchdiff:", err)
		return 2
	}

	failed := false
	if base, ok := file.Latest(*suite); ok {
		rep := trajectory.Compare(base.Benches, benches, trajectory.DefaultRules(), *smoke)
		if err := rep.WriteText(stdout); err != nil {
			fprintln(stderr, "newsum-benchdiff:", err)
			return 2
		}
		failed = rep.Failed()
	} else {
		fprintf(stdout, "no baseline record in %s suite %q: %d metrics are new\n",
			*baseline, *suite, len(benches))
	}

	if *record {
		if failed && !*force {
			fprintln(stderr, "newsum-benchdiff: refusing to record a regressed run (use -force to re-baseline deliberately)")
			return 1
		}
		file.Append(*suite, trajectory.Record{
			Commit: trajectory.Commit{
				ID:        *commit,
				Message:   *message,
				Timestamp: time.Now().UTC().Format(time.RFC3339),
			},
			Date:    time.Now().UnixMilli(),
			Tool:    "go",
			Benches: benches,
		})
		file.Trim(*suite, *maxRecords)
		if err := file.Save(*baseline); err != nil {
			fprintln(stderr, "newsum-benchdiff:", err)
			return 2
		}
		fprintf(stdout, "recorded %d metrics to %s suite %q\n", len(benches), *baseline, *suite)
	}

	if failed {
		return 1
	}
	return 0
}

// filterBenches applies the -only / -exclude name regexps.
func filterBenches(benches []trajectory.Bench, only, exclude string) ([]trajectory.Bench, error) {
	keep := benches
	if only != "" {
		re, err := regexp.Compile(only)
		if err != nil {
			return nil, fmt.Errorf("-only: %w", err)
		}
		var out []trajectory.Bench
		for _, b := range keep {
			if re.MatchString(b.Name) {
				out = append(out, b)
			}
		}
		keep = out
	}
	if exclude != "" {
		re, err := regexp.Compile(exclude)
		if err != nil {
			return nil, fmt.Errorf("-exclude: %w", err)
		}
		var out []trajectory.Bench
		for _, b := range keep {
			if !re.MatchString(b.Name) {
				out = append(out, b)
			}
		}
		keep = out
	}
	return keep, nil
}
