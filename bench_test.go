// Package newsum's root benchmark suite regenerates every table and figure
// of the paper's evaluation (§6) as testing.B targets, one per experiment,
// plus ablation benchmarks for the design choices DESIGN.md calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Individual experiments:
//
//	go test -bench=BenchmarkFigure6 -benchtime=1x
//
// The heavyweight empirical figures (6, 7, 10) print their tables once per
// run; metric lines additionally report the headline numbers so shapes can
// be compared run-to-run. The newsum-bench command runs the same harness
// with larger default sizes.
package newsum

import (
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"testing"

	"newsum/internal/accuracy"
	"newsum/internal/bench"
	"newsum/internal/checkpoint"
	"newsum/internal/checksum"
	"newsum/internal/core"
	"newsum/internal/fault"
	"newsum/internal/model"
	"newsum/internal/par"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

const (
	benchSeed   = 20160531
	benchN      = 10000 // kept moderate so the full suite stays minutes-scale
	benchShortN = 4000  // -short: the verify.sh smoke gate's quick size
	benchBlocks = 8
)

// benchSize honors -short: verify.sh runs the whole suite at
// `-benchtime=1x -short` as its standing trajectory gate, so quick sizes
// keep that gate seconds-scale. Deterministic metrics (wasted-iters,
// detect-%, sdc-rate) depend on the size, so a baseline records the mode
// it was measured in — BENCH_CORE.json is a -short baseline.
func benchSize() int {
	if testing.Short() {
		return benchShortN
	}
	return benchN
}

func circuitWorkload(b *testing.B) bench.Workload {
	b.Helper()
	w, err := bench.CircuitPCG(benchSize(), benchBlocks, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkTable3 regenerates the feature/coverage matrix (Table 3).
func BenchmarkTable3(b *testing.B) {
	w, err := bench.LaplacePCG(30, 4)
	if err != nil {
		b.Fatal(err)
	}
	var out io.Writer = io.Discard
	for i := 0; i < b.N; i++ {
		r, err := bench.Table3(w, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			out = os.Stdout
			bench.WriteTable3(out, r)
			out = io.Discard
		}
	}
}

// BenchmarkTable4 regenerates the theoretical cost table (Table 4).
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			bench.WriteTable4(os.Stdout, 1, 12, 4.8)
		} else {
			bench.WriteTable4(io.Discard, 1, 12, 4.8)
		}
	}
}

// BenchmarkTable5 regenerates the optimal-(cd,d) table (Table 5) from the
// Eq. (5) model on the Stampede profile.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			bench.WriteTable5(os.Stdout, model.Stampede(), 2000, 1000)
		} else {
			_ = bench.Table5(model.Stampede(), 2000, 1000)
		}
	}
}

// BenchmarkFigure5 regenerates the E(cd,d) landscape (Fig. 5).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			bench.WriteFigure5(os.Stdout, model.Stampede(), 2000)
		} else {
			_ = model.Surface(model.Stampede().PCG, 1.0, 2000, 40, 8)
		}
	}
}

// BenchmarkFigure6 measures the PCG overhead comparison (Fig. 6) on the
// host. Metrics: error-free overhead %, scenario-2 overhead % for the three
// schemes.
func BenchmarkFigure6(b *testing.B) {
	w := circuitWorkload(b)
	for i := 0; i < b.N; i++ {
		fig, err := bench.FigureOverheads(w, 2, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.WriteOverheadFigure(os.Stdout, "Figure 6: PCG overheads", fig)
		}
		b.ReportMetric(100*fig.Overhead["basic"][bench.ErrorFree], "basic-errfree-%")
		b.ReportMetric(100*fig.Overhead["two-level/eager"][bench.S2], "twolevel-s2-%")
		b.ReportMetric(100*fig.Overhead["online-MV"][bench.S2], "onlinemv-s2-%")
	}
}

// BenchmarkFigure7 measures the PBiCGSTAB overhead comparison (Fig. 7).
func BenchmarkFigure7(b *testing.B) {
	side := 1
	for side*side < benchSize() {
		side++
	}
	w, err := bench.ConvectionPBiCGSTAB(side, side, benchBlocks, 20)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		fig, err := bench.FigureOverheads(w, 2, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.WriteOverheadFigure(os.Stdout, "Figure 7: PBiCGSTAB overheads", fig)
		}
		b.ReportMetric(100*fig.Overhead["basic"][bench.ErrorFree], "basic-errfree-%")
		b.ReportMetric(100*fig.Overhead["two-level/eager"][bench.S1], "twolevel-s1-%")
	}
}

// BenchmarkFigure8 regenerates the Tianhe-2 PCG projection (Fig. 8).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.ProjectOverheads(model.Tianhe2(), core.MethodPCG, 1, 12, 4.8)
		if i == 0 {
			bench.WriteProjectedFigure(os.Stdout, "Figure 8: PCG on Tianhe-2", fig)
		}
	}
}

// BenchmarkFigure9 regenerates the Tianhe-2 PBiCGSTAB projection (Fig. 9).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig := bench.ProjectOverheads(model.Tianhe2(), core.MethodPBiCGSTAB, 1, 10, 4.8)
		if i == 0 {
			bench.WriteProjectedFigure(os.Stdout, "Figure 9: PBiCGSTAB on Tianhe-2", fig)
		}
	}
}

// BenchmarkFigure10 measures the multi-error recovery comparison (Fig. 10).
func BenchmarkFigure10(b *testing.B) {
	w := circuitWorkload(b)
	for i := 0; i < b.N; i++ {
		fig, err := bench.Figure10(w, 2, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.WriteFigure10(os.Stdout, fig)
		}
		var sb, st float64
		for _, c := range fig.Cases {
			sb += c.Overhead["basic"]
			st += c.Overhead["two-level/lazy"]
		}
		n := float64(len(fig.Cases))
		b.ReportMetric(100*sb/n, "basic-avg-%")
		b.ReportMetric(100*st/n, "twolevel-avg-%")
		if sb > 0 {
			b.ReportMetric(100*(sb-st)/sb, "improvement-%")
		}
	}
}

// --- Ablation benchmarks ------------------------------------------------

// BenchmarkAblationChecksumCount measures the per-MVM checksum update cost
// as the number of carried checksums grows (single vs double vs triple) —
// the design trade the lazy two-level variant exploits.
func BenchmarkAblationChecksumCount(b *testing.B) {
	a := sparse.CircuitLike(benchSize(), benchSeed)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i%13) * 0.1
	}
	for _, tc := range []struct {
		name    string
		weights []checksum.Weight
	}{
		{"single", checksum.Single},
		{"double", checksum.Double},
		{"triple", checksum.Triple},
	} {
		b.Run(tc.name, func(b *testing.B) {
			enc := checksum.EncodeMatrix(a, tc.weights, checksum.PracticalD(a))
			s := checksum.Checksums(x, tc.weights)
			eta := make([]float64, len(tc.weights))
			dst := make([]float64, len(tc.weights))
			etaDst := make([]float64, len(tc.weights))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc.UpdateMVMBound(dst, etaDst, x, s, eta)
			}
		})
	}
}

// BenchmarkAblationEagerVsLazy compares the two two-level implementations
// end-to-end on an error-free solve: the lazy variant should track the
// basic scheme's cost, the eager one pays the Table 4 premium.
func BenchmarkAblationEagerVsLazy(b *testing.B) {
	w := circuitWorkload(b)
	for _, tc := range []struct {
		name   string
		scheme core.Scheme
		eager  bool
	}{
		{"basic", core.Basic, false},
		{"twolevel-lazy", core.TwoLevel, false},
		{"twolevel-eager", core.TwoLevel, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{Options: solver.Options{Tol: w.Tol, MaxIter: w.MaxIter}, EagerTriple: tc.eager}
				if _, _, err := bench.RunScheme(w, tc.scheme, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDetectInterval sweeps the detection interval d for the
// basic scheme under scenario-2 errors: small d detects early (cheap
// rollbacks, frequent checks), large d checks rarely but loses more work.
func BenchmarkAblationDetectInterval(b *testing.B) {
	w := circuitWorkload(b)
	iters, err := w.FaultFreeIterations()
	if err != nil {
		b.Fatal(err)
	}
	for _, d := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{
					Options:            solver.Options{Tol: w.Tol, MaxIter: w.MaxIter},
					DetectInterval:     d,
					CheckpointInterval: 16,
					MaxRollbacks:       500,
					Injector:           bench.InjectorFor(bench.S2, iters, 16, benchSeed),
				}
				if _, _, err := bench.RunScheme(w, core.Basic, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDecouplingScalar compares PracticalD with the Lemma 2
// worst-case bound: LemmaD is orders of magnitude larger, exercising the
// running round-off bounds (η) that keep verification sound.
func BenchmarkAblationDecouplingScalar(b *testing.B) {
	w := circuitWorkload(b)
	for _, tc := range []struct {
		name  string
		lemma bool
	}{
		{"practicalD", false},
		{"lemmaD", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{Options: solver.Options{Tol: w.Tol, MaxIter: w.MaxIter}, UseLemmaD: tc.lemma}
				res, _, err := bench.RunScheme(w, core.Basic, opts)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Rollbacks > 0 {
					b.Fatalf("%s: false positives caused %d rollbacks", tc.name, res.Stats.Rollbacks)
				}
			}
		})
	}
}

// BenchmarkAblationVerifyCost isolates the outer-level detection cost (two
// O(n) weighted sums), the t_d of Eq. (5).
func BenchmarkAblationVerifyCost(b *testing.B) {
	x := make([]float64, benchSize())
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	s := checksum.Checksums(x, checksum.Single)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !checksum.VerifyVector(x, checksum.Single, s, checksum.DefaultTol()) {
			b.Fatal("clean vector failed verification")
		}
	}
}

// BenchmarkAblationRecovery isolates one rollback recovery: restore two
// vectors, recompute r = b − A·x and its checksums (the t_r of Eq. (5)).
func BenchmarkAblationRecovery(b *testing.B) {
	w := circuitWorkload(b)
	iters, err := w.FaultFreeIterations()
	if err != nil {
		b.Fatal(err)
	}
	_ = iters
	costs, err := bench.MeasureHostCosts(w, 20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(costs.Recover*1e6, "t_r-µs")
	b.ReportMetric(costs.Checkpoint*1e6, "t_c-µs")
	b.ReportMetric(costs.Detect*1e6, "t_d-µs")
	b.ReportMetric(costs.Update*1e6, "t_u-µs")
	b.ReportMetric(costs.Iter*1e6, "t-µs")
	for i := 0; i < b.N; i++ {
		if _, err := bench.MeasureHostCosts(w, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInjectionOverhead confirms a nil injector costs nothing on the
// hot path (the instrumentation contract).
func BenchmarkInjectionOverhead(b *testing.B) {
	var inj *fault.Injector
	v := make([]float64, benchSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inj.InjectOutput(i, fault.SiteMVM, v)
	}
}

// BenchmarkAblationDetectionLatency compares eager (per-operation) and lazy
// (interval) detection modes end-to-end under scenario-2 errors — the
// paper's "flexible detection latency" trade (§1, §4).
func BenchmarkAblationDetectionLatency(b *testing.B) {
	w := circuitWorkload(b)
	iters, err := w.FaultFreeIterations()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		d     int
		eager bool
	}{
		{"eager", 1 << 20, true},
		{"lazy-d1", 1, false},
		{"lazy-d8", 8, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{
					Options:            solver.Options{Tol: w.Tol, MaxIter: w.MaxIter},
					DetectInterval:     tc.d,
					CheckpointInterval: 16,
					EagerDetection:     tc.eager,
					MaxRollbacks:       500,
					Injector:           bench.InjectorFor(bench.S2, iters, 16, benchSeed),
				}
				res, _, err := bench.RunScheme(w, core.Basic, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Stats.WastedIterations), "wasted-iters")
			}
		})
	}
}

// runCollectiveTeam drives one benchmark body per rank over a communicator
// team and joins them all, the harness for the collective benchmarks below.
func runCollectiveTeam(comms []*par.Comm, body func(rank int, c *par.Comm)) {
	var wg sync.WaitGroup
	for rank, c := range comms {
		wg.Add(1)
		go func(rank int, c *par.Comm) {
			defer wg.Done()
			body(rank, c)
		}(rank, c)
	}
	wg.Wait()
}

// BenchmarkAllReduceVec compares the Linear rendezvous and Tree
// recursive-doubling vector all-reduce — the collective behind the
// setup-time checksum-row assembly.
func BenchmarkAllReduceVec(b *testing.B) {
	const ranks, length = 8, 4096
	for _, topo := range []par.Topology{par.Linear, par.Tree} {
		b.Run(topo.String(), func(b *testing.B) {
			comms := par.NewTeamTopology(ranks, topo)
			b.SetBytes(8 * length)
			b.ResetTimer()
			runCollectiveTeam(comms, func(rank int, c *par.Comm) {
				src := make([]float64, length)
				dst := make([]float64, length)
				for i := range src {
					src[i] = float64(rank*length + i)
				}
				for i := 0; i < b.N; i++ {
					c.AllReduceVec(dst, src)
				}
			})
		})
	}
}

// BenchmarkAllGather compares the two topologies on the distributed MVM's
// halo exchange: each rank contributes its block of an n-vector and
// receives the whole vector.
func BenchmarkAllGather(b *testing.B) {
	const ranks, n = 8, 8192
	part := par.EvenPartition(n, ranks)
	for _, topo := range []par.Topology{par.Linear, par.Tree} {
		b.Run(topo.String(), func(b *testing.B) {
			comms := par.NewTeamTopology(ranks, topo)
			b.SetBytes(8 * n)
			b.ResetTimer()
			runCollectiveTeam(comms, func(rank int, c *par.Comm) {
				lo, hi := part.Range(rank)
				global := make([]float64, n)
				local := make([]float64, hi-lo)
				for i := range local {
					local[i] = float64(lo + i)
				}
				for i := 0; i < b.N; i++ {
					c.AllGather(global, local, lo)
				}
			})
		})
	}
}

// BenchmarkDistSpMV measures one distributed MVM (halo exchange + local row
// block) under the even row split versus the nnz-balanced partition. The
// circuit matrix's hub rows skew the even split, so the nnz partition should
// close the straggler gap.
func BenchmarkDistSpMV(b *testing.B) {
	a := sparse.CircuitLike(benchSize(), benchSeed)
	u := make([]float64, a.Rows)
	for i := range u {
		u[i] = 1 + float64(i%7)*0.25
	}
	for _, tc := range []struct {
		name string
		part par.Partition
	}{
		{"even", par.EvenPartition(a.Rows, 8)},
		{"nnz", par.NnzPartition(a, 8)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			comms := par.NewTeam(tc.part.Ranks())
			b.ResetTimer()
			runCollectiveTeam(comms, func(rank int, c *par.Comm) {
				lo, hi := tc.part.Range(rank)
				global := make([]float64, a.Rows)
				local := make([]float64, hi-lo)
				copy(local, u[lo:hi])
				y := make([]float64, a.Rows)
				for i := 0; i < b.N; i++ {
					c.AllGather(global, local, lo)
					a.MulVecRange(y, global, lo, hi)
				}
			})
		})
	}
}

// BenchmarkParallelScaling runs the distributed ABFT PCG over growing rank
// counts. On a multicore host the interest is correctness of the
// rank-local checksum/checkpoint machinery at scale rather than raw
// speedup, but the timing trend is reported anyway.
func BenchmarkParallelScaling(b *testing.B) {
	a := sparse.CircuitLike(benchSize(), benchSeed)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := par.ABFTPCG(a, rhs, ranks, par.Options{Tol: 1e-8, MaxIter: 100000})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

// BenchmarkParallelTwoLevel measures the distributed inner-level probe cost
// (one extra scalar all-reduce per iteration).
func BenchmarkParallelTwoLevel(b *testing.B) {
	a := sparse.CircuitLike(benchSize(), benchSeed)
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	for _, tc := range []struct {
		name string
		two  bool
	}{
		{"basic", false},
		{"two-level", true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := par.ABFTPCG(a, rhs, 4, par.Options{Tol: 1e-8, MaxIter: 100000, TwoLevel: tc.two}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDetectionCampaign runs a seeded single-trial accuracy campaign
// and reports its outcome metrics. All three are deterministic at the
// committed seed, so the trajectory comparator gates them exactly even in
// smoke mode: detect-% may not drop, latency-iters may not grow, and
// sdc-rate is Zero-class — any nonzero value fails the gate outright.
func BenchmarkDetectionCampaign(b *testing.B) {
	cfg := accuracy.Config{
		Side:       8,
		Solvers:    []string{"pcg"},
		Models:     []fault.Model{fault.ModelSingle, fault.ModelSign},
		Magnitudes: []fault.Magnitude{fault.MagLarge},
		Trials:     1,
		Seed:       benchSeed,
	}
	for i := 0; i < b.N; i++ {
		cells, err := accuracy.RunSerial(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var rate, latSum float64
		latN, sdc := 0, 0
		for _, c := range cells {
			rate += c.DetectionRate()
			if l := c.MeanLatency(); !math.IsNaN(l) {
				latSum += l
				latN++
			}
			sdc += c.SDC
		}
		b.ReportMetric(100*rate/float64(len(cells)), "detect-%")
		if latN > 0 {
			b.ReportMetric(latSum/float64(latN), "latency-iters")
		}
		b.ReportMetric(float64(sdc), "sdc-rate")
	}
}

// BenchmarkCheckpoint runs the seeded snapshot-codec sweep for PCG and CR
// and reports each arm's storage and recovery cost. All metrics are
// deterministic at the committed seed, so the trajectory comparator gates
// them exactly even in smoke mode: stored-bytes and extra-iters may not
// grow, and aborted/sdc-rate are Zero-class — a lossy restart that fails
// to recover, or recovers to the wrong answer, fails the gate outright.
func BenchmarkCheckpoint(b *testing.B) {
	cfg := accuracy.Config{
		Side:             8,
		Solvers:          []string{"pcg", "cr"},
		Trials:           2,
		CheckpointBounds: []float64{1e-4, 1e-8},
		Seed:             benchSeed,
	}
	points, err := accuracy.CompareCheckpoint(cfg)
	if err != nil {
		b.Fatal(err)
	}
	full := map[string]accuracy.CheckpointPoint{}
	for _, p := range points {
		if p.Codec == checkpoint.Full {
			full[fmt.Sprintf("%s/%d", p.Solver, p.Strikes)] = p
		}
	}
	for _, p := range points {
		p := p
		label := p.Codec.String()
		if p.RelBound > 0 {
			label = fmt.Sprintf("%s-%.0e", label, p.RelBound)
		}
		ref := full[fmt.Sprintf("%s/%d", p.Solver, p.Strikes)]
		b.Run(fmt.Sprintf("%s/%s/strikes=%d", p.Solver, label, p.Strikes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(float64(p.BytesStored), "stored-bytes")
			b.ReportMetric(float64(p.ExtraIterations(ref)), "extra-iters")
			b.ReportMetric(float64(p.Aborted), "aborted")
			b.ReportMetric(float64(p.SDC), "sdc-rate")
		})
	}
}

// BenchmarkForwardRecovery runs the seeded forward-vs-rollback comparison
// for PCG and CR on both engines and reports the recovery metrics. All of
// them are deterministic at the committed seed, so the trajectory
// comparator gates them exactly even in smoke mode: iters-saved may not
// drop, wasted-iters may not grow, repairs must match bitwise, and
// mismatches is Zero-class — a nonzero value is silent data corruption
// and fails the gate outright.
func BenchmarkForwardRecovery(b *testing.B) {
	cfg := accuracy.Config{
		Side:    8,
		Solvers: []string{"pcg", "cr"},
		Trials:  2,
		Ranks:   2,
		Seed:    benchSeed,
	}
	points, err := accuracy.CompareForward(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range points {
		p := p
		b.Run(p.Engine+"/"+p.Solver+"/forward", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(float64(p.IterationsSaved), "iters")
			b.ReportMetric(float64(p.ForwardRepairs), "repairs")
			b.ReportMetric(float64(p.FwdWasted), "wasted-iters")
			b.ReportMetric(float64(p.Mismatches), "mismatches")
		})
		b.Run(p.Engine+"/"+p.Solver+"/rollback", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(float64(p.BaseWasted), "wasted-iters")
		})
	}
}
