// The BenchmarkServe* suite measures the solve service end to end —
// submission cost, cache-hit path, and concurrent chaos load. verify.sh
// splits these from the core suite by name (`^BenchmarkServe`) into the
// BENCH_SERVE.json trajectory. Alongside ns/op, B/op, and allocs/op,
// every benchmark reports two Zero-class counters the comparator fails
// on any nonzero value: sdc-suspects (a returned solution whose
// recomputed residual contradicts its claimed convergence) and
// failed-jobs (a job that exhausted its retry budget).
package newsum

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"newsum/internal/bench"
	"newsum/internal/service"
)

// serveBenchConfig sizes the benchmark service: serial kernels so the
// timing measures the scheduling stack rather than pool scaling, and a
// queue deep enough that closed-loop submitters never see ErrOverloaded.
func serveBenchConfig(workers int) service.Config {
	return service.Config{Workers: workers, QueueDepth: 128, CacheSize: 8,
		MaxRetries: 2, KernelWorkers: -1}
}

func serveSpec() service.MatrixSpec {
	return service.MatrixSpec{Kind: "laplace2d", N: 12}
}

// reportServeInvariants reports the service counters that must stay zero
// regardless of b.N: suspected silent corruptions and exhausted jobs.
func reportServeInvariants(b *testing.B, s *service.Service) {
	b.Helper()
	snap := s.Stats()
	b.ReportMetric(float64(snap.SDCSuspects), "sdc-suspects")
	b.ReportMetric(float64(snap.Failed), "failed-jobs")
}

// BenchmarkServeSolve measures one job through the full service path —
// admission, queue, worker, encode, solve, server-side residual
// verification — across engines and schemes, with one chaos fault per
// job so the detection machinery is on the measured path.
func BenchmarkServeSolve(b *testing.B) {
	for _, tc := range []struct {
		name string
		req  service.Request
	}{
		{"pcg-basic", service.Request{Matrix: serveSpec(), ChaosFaults: 1, Seed: benchSeed}},
		{"pcg-twolevel", service.Request{Matrix: serveSpec(), Scheme: "twolevel", ChaosFaults: 1, Seed: benchSeed}},
		{"par-pcg", service.Request{Matrix: serveSpec(), Engine: "par", Ranks: 4, ChaosFaults: 1, Seed: benchSeed}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := service.New(serveBenchConfig(1))
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := s.Submit(context.Background(), tc.req)
				if err != nil {
					b.Fatal(err)
				}
				if !resp.Converged {
					b.Fatal("job did not converge")
				}
			}
			b.StopTimer()
			reportServeInvariants(b, s)
		})
	}
}

// BenchmarkServeCacheHit isolates the cached-encoding fast path: after a
// warm-up job, every submission must hit the encoding cache.
func BenchmarkServeCacheHit(b *testing.B) {
	s := service.New(serveBenchConfig(1))
	defer s.Close()
	req := service.Request{Matrix: serveSpec()}
	if _, err := s.Submit(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Submit(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("warm submission missed the encoding cache")
		}
	}
	b.StopTimer()
	reportServeInvariants(b, s)
}

// BenchmarkServeBatch compares k same-operator protected solves offered
// one at a time against the same k arriving concurrently and coalescing
// into one multi-RHS block solve. jobs/s is the figure of record: the
// batched side must amortize the per-iteration matrix traversal and
// checksum verification across columns and come out ahead.
func BenchmarkServeBatch(b *testing.B) {
	const k = 8
	spec := service.MatrixSpec{Kind: "laplace2d", N: 20}
	rhs := func(col int) []float64 {
		v := make([]float64, 400)
		for i := range v {
			v[i] = 1 + float64((i*7+col*13)%11)
		}
		return v
	}

	b.Run("sequential", func(b *testing.B) {
		s := service.New(serveBenchConfig(1))
		defer s.Close()
		// Warm the encoding cache so the one-time encode is not amortized
		// over b.N — B/op must not depend on the iteration count.
		if _, err := s.Submit(context.Background(), service.Request{Matrix: spec, RHS: rhs(0)}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for c := 0; c < k; c++ {
				resp, err := s.Submit(context.Background(), service.Request{Matrix: spec, RHS: rhs(c)})
				if err != nil {
					b.Fatal(err)
				}
				if !resp.Converged {
					b.Fatal("job did not converge")
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(k*b.N)/b.Elapsed().Seconds(), "jobs/s")
		reportServeInvariants(b, s)
	})

	b.Run("batched", func(b *testing.B) {
		cfg := serveBenchConfig(1)
		cfg.BatchWindow = 5 * time.Millisecond
		cfg.MaxBatch = k
		s := service.New(cfg)
		defer s.Close()
		if _, err := s.Submit(context.Background(), service.Request{Matrix: spec, RHS: rhs(0)}); err != nil {
			b.Fatal(err)
		}
		var batched int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for c := 0; c < k; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					resp, err := s.Submit(context.Background(), service.Request{Matrix: spec, RHS: rhs(c)})
					if err != nil {
						b.Error(err)
						return
					}
					if !resp.Converged {
						b.Error("job did not converge")
						return
					}
					if resp.Batched {
						atomic.AddInt64(&batched, 1)
					}
				}(c)
			}
			wg.Wait()
		}
		b.StopTimer()
		b.ReportMetric(float64(k*b.N)/b.Elapsed().Seconds(), "jobs/s")
		if batched == 0 {
			b.Fatal("no job was ever batched; the coalescing window never filled")
		}
		reportServeInvariants(b, s)
	})
}

// BenchmarkServeShard compares a router-fronted 2-backend fleet against a
// single process holding the same total worker budget, both driven over
// real HTTP by closed-loop clients (internal/bench MeasureShardPoint, the
// same harness as newsum-bench -exp shard).
func BenchmarkServeShard(b *testing.B) {
	jobs := 48
	if testing.Short() {
		jobs = 24
	}
	for _, tc := range []struct {
		name     string
		backends int
	}{
		{"single", 1},
		{"router", 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var done, sdc, failed int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pt, err := bench.MeasureShardPoint(tc.backends, 2, 8, jobs, benchSeed)
				if err != nil {
					b.Fatal(err)
				}
				done += int64(pt.Jobs)
				sdc += pt.SDCSuspects
				failed += pt.FailedJobs
			}
			b.StopTimer()
			b.ReportMetric(float64(done)/b.Elapsed().Seconds(), "jobs/s")
			b.ReportMetric(float64(sdc), "sdc-suspects")
			b.ReportMetric(float64(failed), "failed-jobs")
		})
	}
}

// BenchmarkServeConcurrent drives parallel closed-loop submitters with
// per-job chaos faults — the serving-layer throughput figure under load.
func BenchmarkServeConcurrent(b *testing.B) {
	s := service.New(serveBenchConfig(4))
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			req := service.Request{Matrix: serveSpec(), ChaosFaults: 1, Seed: int64(benchSeed + i)}
			resp, err := s.Submit(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Converged {
				b.Fatal("job did not converge")
			}
		}
	})
	b.StopTimer()
	reportServeInvariants(b, s)
}
