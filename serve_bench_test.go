// The BenchmarkServe* suite measures the solve service end to end —
// submission cost, cache-hit path, and concurrent chaos load. verify.sh
// splits these from the core suite by name (`^BenchmarkServe`) into the
// BENCH_SERVE.json trajectory. Alongside ns/op, B/op, and allocs/op,
// every benchmark reports two Zero-class counters the comparator fails
// on any nonzero value: sdc-suspects (a returned solution whose
// recomputed residual contradicts its claimed convergence) and
// failed-jobs (a job that exhausted its retry budget).
package newsum

import (
	"context"
	"testing"

	"newsum/internal/service"
)

// serveBenchConfig sizes the benchmark service: serial kernels so the
// timing measures the scheduling stack rather than pool scaling, and a
// queue deep enough that closed-loop submitters never see ErrOverloaded.
func serveBenchConfig(workers int) service.Config {
	return service.Config{Workers: workers, QueueDepth: 128, CacheSize: 8,
		MaxRetries: 2, KernelWorkers: -1}
}

func serveSpec() service.MatrixSpec {
	return service.MatrixSpec{Kind: "laplace2d", N: 12}
}

// reportServeInvariants reports the service counters that must stay zero
// regardless of b.N: suspected silent corruptions and exhausted jobs.
func reportServeInvariants(b *testing.B, s *service.Service) {
	b.Helper()
	snap := s.Stats()
	b.ReportMetric(float64(snap.SDCSuspects), "sdc-suspects")
	b.ReportMetric(float64(snap.Failed), "failed-jobs")
}

// BenchmarkServeSolve measures one job through the full service path —
// admission, queue, worker, encode, solve, server-side residual
// verification — across engines and schemes, with one chaos fault per
// job so the detection machinery is on the measured path.
func BenchmarkServeSolve(b *testing.B) {
	for _, tc := range []struct {
		name string
		req  service.Request
	}{
		{"pcg-basic", service.Request{Matrix: serveSpec(), ChaosFaults: 1, Seed: benchSeed}},
		{"pcg-twolevel", service.Request{Matrix: serveSpec(), Scheme: "twolevel", ChaosFaults: 1, Seed: benchSeed}},
		{"par-pcg", service.Request{Matrix: serveSpec(), Engine: "par", Ranks: 4, ChaosFaults: 1, Seed: benchSeed}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s := service.New(serveBenchConfig(1))
			defer s.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := s.Submit(context.Background(), tc.req)
				if err != nil {
					b.Fatal(err)
				}
				if !resp.Converged {
					b.Fatal("job did not converge")
				}
			}
			b.StopTimer()
			reportServeInvariants(b, s)
		})
	}
}

// BenchmarkServeCacheHit isolates the cached-encoding fast path: after a
// warm-up job, every submission must hit the encoding cache.
func BenchmarkServeCacheHit(b *testing.B) {
	s := service.New(serveBenchConfig(1))
	defer s.Close()
	req := service.Request{Matrix: serveSpec()}
	if _, err := s.Submit(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Submit(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.CacheHit {
			b.Fatal("warm submission missed the encoding cache")
		}
	}
	b.StopTimer()
	reportServeInvariants(b, s)
}

// BenchmarkServeConcurrent drives parallel closed-loop submitters with
// per-job chaos faults — the serving-layer throughput figure under load.
func BenchmarkServeConcurrent(b *testing.B) {
	s := service.New(serveBenchConfig(4))
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			req := service.Request{Matrix: serveSpec(), ChaosFaults: 1, Seed: int64(benchSeed + i)}
			resp, err := s.Submit(context.Background(), req)
			if err != nil {
				b.Fatal(err)
			}
			if !resp.Converged {
				b.Fatal("job did not converge")
			}
		}
	})
	b.StopTimer()
	reportServeInvariants(b, s)
}
