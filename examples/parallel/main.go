// Parallel: the distributed ABFT PCG of internal/par — goroutine ranks
// standing in for the paper's 2048 MPI processes. Checksums and checkpoints
// are rank-local (§5.1's scalability argument); verification costs one
// scalar all-reduce. A fault is injected into one rank's MVM and recovered
// by a coordinated rollback of everyone's local state.
//
// Run: go run ./examples/parallel [-ranks 8] [-n 40000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"newsum/internal/core"
	"newsum/internal/par"
	"newsum/internal/sparse"
)

func main() {
	ranks := flag.Int("ranks", 8, "number of goroutine ranks")
	n := flag.Int("n", 40000, "matrix order")
	flag.Parse()

	a := sparse.CircuitLike(*n, 11)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	fmt.Printf("distributed ABFT PCG: %d rows over %d ranks (block rows + block-Jacobi ILU(0))\n",
		a.Rows, *ranks)

	start := time.Now()
	clean, err := par.ABFTPCG(a, b, *ranks, par.Options{Tol: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free: %d iterations in %v, %d local checkpoints/rank\n",
		clean.Iterations, time.Since(start).Round(time.Millisecond), clean.Checkpoints)

	start = time.Now()
	faulted, err := par.ABFTPCG(a, b, *ranks, par.Options{
		Tol: 1e-8,
		Faults: []par.Fault{
			{Iteration: clean.Iterations / 2, Rank: *ranks - 1, Index: 3},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with a fault on rank %d: %d iterations in %v — %d detection(s), %d coordinated rollback(s)\n",
		*ranks-1, faulted.Iterations, time.Since(start).Round(time.Millisecond),
		faulted.Detections, faulted.Rollbacks)
	fmt.Printf("true residual after recovery: %.2e\n", core.TrueResidual(a, b, faulted.X))
}
