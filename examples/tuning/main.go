// Tuning: explore the paper's Eq. (5) expected-execution-time model — how
// the optimal checkpoint interval cd and detection interval d move with the
// system error rate λ (Fig. 5 and Table 5).
//
// Run: go run ./examples/tuning
package main

import (
	"fmt"

	"newsum/internal/model"
)

func main() {
	m := model.Stampede()
	fmt.Printf("Eq. (5) parameters, %s profile (PCG on G3_circuit):\n", m.Name)
	fmt.Printf("  t=%.3gs  t_u=%.3gs  t_d=%.3gs  t_c=%.3gs  t_r=%.3gs\n\n",
		m.PCG.Iter, m.PCG.Update, m.PCG.Detect, m.PCG.Checkpoint, m.PCG.Recover)

	const iters = 2000
	fmt.Println("optimal (cd, d) as the error rate grows (Table 5):")
	for _, lam := range []float64{1e-3, 1e-2, 1e-1, 1, 3, 10} {
		cd, d, e := model.Optimize(m.PCG, lam, iters, 1000)
		cdB, dB, _ := model.Optimize(m.PBiCGSTAB, lam, iters, 1000)
		fmt.Printf("  lambda=%6.3f  PCG: (cd=%4d, d=%d) E=%7.1fs   PBiCGSTAB: (cd=%4d, d=%d)\n",
			lam, cd, d, e, cdB, dB)
	}

	fmt.Println("\nE(cd, d=1) cross-section at lambda = 1 (Fig. 5 ridge):")
	for cd := 2; cd <= 40; cd += 2 {
		e := model.ExpectedTime(m.PCG, 1.0, iters, cd, 1)
		bar := ""
		for k := 0; k < int((e-100)/2); k++ {
			bar += "#"
		}
		fmt.Printf("  cd=%2d  E=%7.2fs  %s\n", cd, e, bar)
	}

	fmt.Println("\nper-iteration overhead ranking by scenario (Table 4, d=1, cd=12, c0=4.8):")
	for _, s := range []model.Scenario{model.Scenario1, model.Scenario2, model.Scenario3} {
		fmt.Printf("  %-38s %v\n", s, model.Ranking(s, 1, 12, 4.8, m.Ops))
	}
}
