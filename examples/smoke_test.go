package examples

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// Smoke tests for every example program: each must build, and (outside
// -short mode) run to completion on a small problem. The examples are the
// repo's public face — a refactor that breaks one breaks the README's
// promises, so they are exercised like any other code.

var programs = []struct {
	dir  string
	args []string // small-problem overrides; nil means run flagless
}{
	{dir: "circuit", args: []string{"-n", "900"}},
	{dir: "convection", args: []string{"-n", "400"}},
	{dir: "parallel", args: []string{"-ranks", "2", "-n", "900"}},
	{dir: "latency"},
	{dir: "quickstart"},
	{dir: "serve", args: []string{"-clients", "8", "-jobs", "16", "-n", "12"}},
	{dir: "tuning"},
}

func TestExamplesBuildAndRun(t *testing.T) {
	bin := t.TempDir()
	for _, p := range programs {
		t.Run(p.dir, func(t *testing.T) {
			exe := filepath.Join(bin, p.dir)
			build := exec.Command("go", "build", "-o", exe, "./"+p.dir)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("go build ./%s: %v\n%s", p.dir, err, out)
			}
			if testing.Short() {
				t.Skip("build-only in -short mode")
			}
			run := exec.Command(exe, p.args...)
			run.Env = os.Environ()
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("%s %v: %v\n%s", p.dir, p.args, err, out)
			}
			if len(out) == 0 {
				t.Errorf("%s produced no output", p.dir)
			}
		})
	}
}
