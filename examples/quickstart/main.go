// Quickstart: protect a preconditioned conjugate gradient solve with the
// paper's basic online ABFT scheme, inject a soft error, and watch it get
// detected and repaired by checkpoint rollback.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"newsum/internal/core"
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

func main() {
	// 1. A sparse SPD system: the 5-point Laplacian on a 100×100 grid.
	a := sparse.Laplacian2D(100, 100)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	// 2. A preconditioner: block-Jacobi with ILU(0) blocks (PETSc's
	// default, and the paper's evaluation configuration).
	m, err := precond.BlockJacobiILU0(a, 8)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A soft error: flip an element of the MVM output at iteration 10,
	// as if an ALU glitch corrupted the sparse product.
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 10, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
	}, 42)

	// 4. Solve under basic online ABFT (Algorithm 1): checksums updated
	// after every operation, x and r verified every d iterations, the {p,
	// x} pair checkpointed every cd iterations.
	res, err := core.BasicPCG(a, m, b, core.Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     1,
		CheckpointInterval: 10,
		Injector:           inj,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged in %d iterations, relative residual %.2e\n",
		res.Iterations, res.Residual)
	fmt.Printf("true residual (recomputed from scratch): %.2e\n",
		core.TrueResidual(a, b, res.X))
	fmt.Printf("the injected error was detected %d time(s) and repaired by %d rollback(s),\n",
		res.Stats.Detections, res.Stats.Rollbacks)
	fmt.Printf("wasting %d iterations — against %d checkpoints and %d checksum updates of overhead\n",
		res.Stats.WastedIterations, res.Stats.Checkpoints, res.Stats.ChecksumUpdates)

	// 5. The same solve with the two-level scheme (Algorithm 2) corrects
	// the single error immediately instead of rolling back.
	inj2 := fault.NewInjector([]fault.Event{
		{Iteration: 10, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
	}, 42)
	res2, err := core.TwoLevelPCG(a, m, b, core.Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-level: %d iterations, %d inline correction(s), %d rollback(s)\n",
		res2.Iterations, res2.Stats.Corrections, res2.Stats.Rollbacks)
}
