// Circuit: the paper's primary workload — a circuit-topology SPD matrix
// (standing in for UFL G3_circuit) solved by PCG under every
// fault-tolerance scheme, with one soft error injected per run. A miniature
// of the paper's Fig. 6 comparison.
//
// Run: go run ./examples/circuit [-n 40000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"newsum/internal/core"
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

func main() {
	n := flag.Int("n", 40000, "matrix order")
	flag.Parse()

	a := sparse.CircuitLike(*n, 7)
	fmt.Printf("circuit-like SPD matrix: %d rows, %d nonzeros (%.2f per row, like G3_circuit's 4.83)\n",
		a.Rows, a.NNZ(), a.Sparsity())
	m, err := precond.BlockJacobiILU0(a, 16)
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	base := core.Options{Options: solver.Options{Tol: 1e-8, MaxIter: 100000}}

	// Unprotected, error-free reference.
	start := time.Now()
	ref, err := core.UnprotectedPCG(a, m, b, base)
	if err != nil {
		log.Fatal(err)
	}
	refTime := time.Since(start)
	fmt.Printf("\nunprotected baseline: %d iterations in %v\n\n", ref.Iterations, refTime)

	type entry struct {
		name string
		run  func(core.Options) (core.Result, error)
	}
	schemes := []entry{
		{"basic online ABFT", func(o core.Options) (core.Result, error) { return core.BasicPCG(a, m, b, o) }},
		{"two-level online ABFT", func(o core.Options) (core.Result, error) { return core.TwoLevelPCG(a, m, b, o) }},
		{"online MV (baseline)", func(o core.Options) (core.Result, error) { return core.OnlineMVPCG(a, m, b, o) }},
		{"orthogonality (baseline)", func(o core.Options) (core.Result, error) { return core.OrthoPCG(a, m, b, o) }},
	}
	for _, s := range schemes {
		opts := base
		opts.DetectInterval = 1
		opts.CheckpointInterval = 12
		opts.Injector = fault.NewInjector([]fault.Event{
			{Iteration: ref.Iterations / 3, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
		}, 99)
		start := time.Now()
		res, err := s.run(opts)
		if err != nil {
			fmt.Printf("%-26s FAILED: %v\n", s.name, err)
			continue
		}
		dur := time.Since(start)
		fmt.Printf("%-26s %5d iters  %8v  overhead %+6.1f%%  detect=%d correct=%d rollback=%d  trueResid=%.1e\n",
			s.name, res.Iterations, dur.Round(time.Millisecond),
			100*(dur.Seconds()/refTime.Seconds()-1),
			res.Stats.Detections, res.Stats.Corrections, res.Stats.Rollbacks,
			core.TrueResidual(a, b, res.X))
	}
}
