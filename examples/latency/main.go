// Latency: the paper's "flexible detection latency" contribution (§1, §4)
// made visible — the same error detected eagerly (immediately after the
// operation that produced it) and lazily (at the next detection-interval
// boundary), and what each choice costs.
//
// Run: go run ./examples/latency
package main

import (
	"fmt"
	"log"

	"newsum/internal/core"
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

func main() {
	a := sparse.CircuitLike(22500, 3)
	m, err := precond.BlockJacobiILU0(a, 8)
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	fmt.Println("one arithmetic error in the MVM of iteration 40; checkpoint every 16 iterations")
	fmt.Println()
	fmt.Printf("%-28s %-10s %-13s %-8s %-9s\n", "mode", "detect d", "verifications", "wasted", "result")

	run := func(name string, d int, eager bool) {
		inj := fault.NewInjector([]fault.Event{
			{Iteration: 40, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
		}, 1)
		res, err := core.BasicPCG(a, m, b, core.Options{
			Options:            solver.Options{Tol: 1e-8, MaxIter: 100000},
			DetectInterval:     d,
			CheckpointInterval: 16,
			EagerDetection:     eager,
			Injector:           inj,
		})
		if err != nil {
			fmt.Printf("%-28s FAILED: %v\n", name, err)
			return
		}
		fmt.Printf("%-28s %-10d %-13d %-8d relres %.1e\n",
			name, d, res.Stats.Verifications, res.Stats.WastedIterations, res.Residual)
	}

	// Eager: caught inside iteration 40 itself; wasted work = distance to
	// the last checkpoint only.
	run("eager (every operation)", 1000, true)
	// Lazy, frequent: caught at the next iteration boundary.
	run("lazy, d=1", 1, false)
	// Lazy, sparse: detection waits up to d iterations, so up to d extra
	// iterations of corrupted work are discarded — the latency/overhead
	// trade the paper's Eq. (5) optimizes.
	run("lazy, d=4", 4, false)
	run("lazy, d=16", 16, false)

	fmt.Println()
	fmt.Println("eager pays one extra O(n) sum per operation but bounds detection latency")
	fmt.Println("to a single operation; lazy amortizes verification across d iterations and")
	fmt.Println("pays with re-executed work after a rollback. Eq. (5) (see examples/tuning)")
	fmt.Println("picks d from the system's error rate.")
}
