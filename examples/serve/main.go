// Serve: the concurrent fault-tolerant solve service end to end — an
// in-process HTTP server (the same handler cmd/newsum-serve exposes) under
// a burst of concurrent clients submitting fault-injected jobs. The run
// shows the service-layer guarantees on top of the ABFT engines: every
// returned solution re-verified against the operator, first-attempt aborts
// retried to convergence, repeated operators served from the encoding
// cache, and the /stats counters accounting for all of it.
//
// Run: go run ./examples/serve [-clients 16] [-jobs 48] [-n 24]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"newsum/internal/service"
)

// newServiceHandler builds the same service + handler stack
// cmd/newsum-serve runs, sized for the example's burst.
func newServiceHandler() http.Handler {
	return service.New(service.Config{Workers: 8, QueueDepth: 32, CacheSize: 8}).Handler()
}

// request/response mirror the service JSON schema (see docs/service.md);
// the example talks to the server the way an external client would, over
// the wire, rather than importing internal/service types.
type request struct {
	Solver       string      `json:"solver,omitempty"`
	Scheme       string      `json:"scheme,omitempty"`
	Engine       string      `json:"engine,omitempty"`
	Ranks        int         `json:"ranks,omitempty"`
	Matrix       matrixSpec  `json:"matrix"`
	MaxRollbacks int         `json:"max_rollbacks,omitempty"`
	Faults       []faultSpec `json:"faults,omitempty"`
	ChaosFaults  int         `json:"chaos_faults,omitempty"`
	Seed         int64       `json:"seed,omitempty"`
}

type matrixSpec struct {
	Kind string `json:"kind"`
	N    int    `json:"n,omitempty"`
	Seed int64  `json:"seed,omitempty"`
}

type faultSpec struct {
	Iteration int `json:"iteration"`
	Index     int `json:"index"`
}

type response struct {
	JobID            string   `json:"job_id"`
	Converged        bool     `json:"converged"`
	Iterations       int      `json:"iterations"`
	VerifiedResidual float64  `json:"verified_residual"`
	Attempts         int      `json:"attempts"`
	Retried          []string `json:"retried"`
	CacheHit         bool     `json:"cache_hit"`
	Detections       int      `json:"detections"`
	InjectedFaults   int      `json:"injected_faults"`
}

type snapshot struct {
	Completed        int64   `json:"completed"`
	Retries          int64   `json:"retries"`
	CacheHits        int64   `json:"cache_hits"`
	Detections       int64   `json:"detections"`
	InjectedFaults   int64   `json:"injected_faults"`
	LatencyP50Millis float64 `json:"latency_p50_ms"`
	LatencyP99Millis float64 `json:"latency_p99_ms"`
}

func main() {
	clients := flag.Int("clients", 16, "concurrent clients")
	jobs := flag.Int("jobs", 48, "total jobs submitted")
	n := flag.Int("n", 24, "grid side of the Laplacian operators (n² unknowns)")
	flag.Parse()

	srv := httptest.NewServer(newServiceHandler())
	defer srv.Close()
	fmt.Printf("solve service up at %s: %d clients × %d jobs, faults active\n",
		srv.URL, *clients, *jobs)

	work := make(chan request)
	results := make(chan response)
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range work {
				results <- postSolve(srv.URL, req)
			}
		}()
	}

	start := time.Now()
	go func() {
		for i := 0; i < *jobs; i++ {
			req := request{
				Matrix:      matrixSpec{Kind: "laplace2d", N: *n + 4*(i%3)},
				ChaosFaults: 2,
				Seed:        int64(100 + i),
			}
			switch i % 4 {
			case 1:
				req.Scheme = "twolevel"
			case 2:
				req.Engine, req.Ranks = "par", 4
			case 3:
				// Engineered first-attempt abort: two strikes against a
				// rollback budget of one force the service's retry path.
				req.ChaosFaults = 0
				req.MaxRollbacks = 1
				req.Faults = []faultSpec{{Iteration: 2, Index: -1}, {Iteration: 12, Index: -1}}
			}
			work <- req
		}
		close(work)
		wg.Wait()
		close(results)
	}()

	var done, retried, hits, injected int
	for r := range results {
		if !r.Converged {
			log.Fatalf("%s did not converge", r.JobID)
		}
		if r.VerifiedResidual > 1e-3 {
			log.Fatalf("%s: verified residual %.3e — silent corruption", r.JobID, r.VerifiedResidual)
		}
		done++
		retried += len(r.Retried)
		injected += r.InjectedFaults
		if r.CacheHit {
			hits++
		}
	}
	fmt.Printf("%d jobs in %v: %d cache hits, %d faults injected, %d retries, zero SDC\n",
		done, time.Since(start).Round(time.Millisecond), hits, injected, retried)

	snap := fetchStats(srv.URL)
	fmt.Printf("service stats: completed=%d detections=%d retries=%d cache_hits=%d p50=%.1fms p99=%.1fms\n",
		snap.Completed, snap.Detections, snap.Retries, snap.CacheHits,
		snap.LatencyP50Millis, snap.LatencyP99Millis)
}

func postSolve(base string, req request) response {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	for {
		resp, err := http.Post(base+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatalf("post: %v", err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Honor the service's backpressure and resubmit.
			_ = resp.Body.Close() //lint:ignore errdrop response already consumed; close error is uninteresting
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			_ = json.NewDecoder(resp.Body).Decode(&e) //lint:ignore errdrop best-effort diagnostics on the fatal path
			log.Fatalf("solve: HTTP %d: %s", resp.StatusCode, e.Error)
		}
		var out response
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			log.Fatalf("decode: %v", err)
		}
		_ = resp.Body.Close() //lint:ignore errdrop response already consumed; close error is uninteresting
		return out
	}
}

func fetchStats(base string) snapshot {
	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatalf("stats: %v", err)
	}
	//lint:ignore errdrop response already consumed; close error is uninteresting
	defer resp.Body.Close()
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatalf("decode stats: %v", err)
	}
	return snap
}
