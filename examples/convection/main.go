// Convection: the paper's unsymmetric workload — a convection-diffusion
// operator solved by preconditioned BiCGSTAB under two-level online ABFT,
// stressed with all three error kinds (arithmetic, memory, cache/register).
// BiCGSTAB has no orthogonality relations, so the Chen-style baseline
// cannot protect it at all — the new-sum checksums do not care.
//
// Run: go run ./examples/convection [-n 10000]
package main

import (
	"flag"
	"fmt"
	"log"

	"newsum/internal/core"
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

func main() {
	n := flag.Int("n", 10000, "matrix order")
	flag.Parse()

	side := 1
	for side*side < *n {
		side++
	}
	a := sparse.ConvectionDiffusion2D(side, side, 25)
	fmt.Printf("convection-diffusion matrix: %d rows, %d nonzeros, symmetric=%v\n",
		a.Rows, a.NNZ(), a.IsSymmetric(1e-12))
	m, err := precond.BlockJacobiILU0(a, 16)
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	ref, err := core.UnprotectedPBiCGSTAB(a, m, b, core.Options{
		Options: solver.Options{Tol: 1e-8, MaxIter: 100000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault-free reference: %d iterations\n\n", ref.Iterations)

	cases := []struct {
		name  string
		event fault.Event
	}{
		{"arithmetic error in MVM output", fault.Event{Iteration: 8, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1}},
		{"three simultaneous MVM errors", fault.Event{Iteration: 8, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1, Count: 3}},
		{"memory bit flip in PCO input", fault.Event{Iteration: 8, Site: fault.SitePCO, Kind: fault.Memory, Index: -1}},
		{"cache corruption during PCO", fault.Event{Iteration: 8, Site: fault.SitePCO, Kind: fault.CacheRegister, Index: -1}},
	}
	for _, c := range cases {
		inj := fault.NewInjector([]fault.Event{c.event}, 5)
		res, err := core.TwoLevelPBiCGSTAB(a, m, b, core.Options{
			Options:            solver.Options{Tol: 1e-8, MaxIter: 100000},
			DetectInterval:     1,
			CheckpointInterval: 10,
			Injector:           inj,
		})
		if err != nil {
			fmt.Printf("%-34s FAILED: %v\n", c.name, err)
			continue
		}
		outcome := "undetected"
		switch {
		case res.Stats.Corrections > 0:
			outcome = "corrected inline"
		case res.Stats.Rollbacks > 0:
			outcome = "rolled back"
		case res.Stats.Detections > 0:
			outcome = "detected"
		}
		fmt.Printf("%-34s %s; %d iterations, true residual %.1e\n",
			c.name, outcome, res.Iterations, core.TrueResidual(a, b, res.X))
	}
}
