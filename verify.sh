#!/bin/sh
# verify.sh — the repo's tier-1 gate. Every PR must leave this green.
#
#   ./verify.sh          # formatting, vet, newsum-lint, tests, race pass
#
# The steps mirror ROADMAP.md "Standing gates": the stdlib static-analysis
# gate (cmd/newsum-lint) and the race-enabled test pass over the
# concurrency-bearing packages run on every verify, not just in CI.
set -eu

cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== newsum-lint =="
# -baseline grandfathers nothing today (lint.baseline.json is the empty
# list) but keeps the gate honest two ways: new findings fail the build,
# and a baseline entry that no longer matches anything fails as stale.
go run ./cmd/newsum-lint -baseline lint.baseline.json ./...

echo "== go test =="
go test ./...

echo "== fuzz seed replay (checksum) =="
go test -run Fuzz -fuzz='^$' ./internal/checksum/...

echo "== go test -race (par, core, service, kernel, router) =="
go test -race ./internal/par/... ./internal/core/... ./internal/service/... ./internal/kernel/... ./internal/router/...

echo "== bench smoke + trajectory gate (docs/benchmarks.md) =="
# One quick pass over the whole root bench suite (1 iteration, -short
# sizes) guards against benchmark bit-rot, then the run is gated against
# the committed trajectories. -smoke keeps wall-clock units advisory (a
# 1x run times nothing meaningfully) while still failing hard on the
# deterministic units: allocs/op pins, sdc-rate, sdc-suspects,
# failed-jobs, wasted-iters, detect-%, bitwise flags, exact model
# metrics. Re-baseline deliberately with newsum-benchdiff -record (see
# docs/benchmarks.md "Re-baselining honestly").
bench_out=$(mktemp)
trap 'rm -f "$bench_out"' EXIT
go test -run '^$' -bench . -benchmem -benchtime=1x -short . >"$bench_out"
go run ./cmd/newsum-benchdiff -baseline BENCH_CORE.json -exclude '^BenchmarkServe' -smoke -input "$bench_out"
go run ./cmd/newsum-benchdiff -baseline BENCH_SERVE.json -only '^BenchmarkServe' -smoke -input "$bench_out"
# The checkpoint-codec sweep also runs through the CLI path so -exp
# checkpoint cannot bit-rot: a small deterministic grid, discarded output
# — BenchmarkCheckpoint above carries the gated metrics.
go run ./cmd/newsum-bench -exp checkpoint -n 256 >/dev/null

echo "== coverage gate (fault, checksum, checkpoint, accuracy, service, kernel, analysis, core, par, router >= 80%) =="
# The packages that decide whether a fault is caught — and the service
# layer that promises retry-to-convergence and server-side verification —
# must themselves be thoroughly exercised; docs/testing.md records the
# baseline figures. internal/kernel joins the gate because a silent hole
# in its reduction coverage could hide a determinism break that the
# checksum comparisons would then misread as a fault. internal/analysis
# joins because the lint tier is itself a correctness gate: an analyzer
# with untested branches silently stops enforcing its invariant.
# internal/core and internal/par join with the forward-recovery tier: the
# repair/fallback branching in the solvers is now deep enough that an
# unexercised path is exactly where a fake correction would hide.
# internal/router joins with the sharded front tier: its re-dispatch and
# supervision branches are the whole-process recovery story, and an
# untested one is a client-visible outage waiting for a crash to find it.
go test -cover ./internal/fault/ ./internal/checksum/ ./internal/checkpoint/ ./internal/accuracy/ ./internal/service/ ./internal/kernel/ ./internal/analysis/ ./internal/core/ ./internal/par/ ./internal/router/ |
	awk '
		{ print }
		/coverage:/ {
			pct = $0
			sub(/.*coverage: /, "", pct)
			sub(/% of statements.*/, "", pct)
			if (pct + 0 < 80) { below = below "\n  " $2 " at " pct "%" }
		}
		END {
			if (below != "") {
				printf "coverage gate: below 80%%:%s\n", below > "/dev/stderr"
				exit 1
			}
		}
	'

echo "verify: OK"
