module newsum

go 1.22
