package router

import "testing"

// The ring is the routing contract: deterministic (every router instance
// over the same slot set routes identically), a full permutation (so
// fail-over always has somewhere to go), and roughly balanced (vnodes do
// their job).
func TestRingOrderDeterministicPermutation(t *testing.T) {
	r1 := newRing(5, 64)
	r2 := newRing(5, 64)
	for i := 0; i < 1000; i++ {
		fp := hashPoint(i, 424242)
		o1, o2 := r1.order(fp), r2.order(fp)
		if len(o1) != 5 {
			t.Fatalf("order(%#x) has %d slots, want 5", fp, len(o1))
		}
		seen := make(map[int]bool)
		for k, s := range o1 {
			if s < 0 || s >= 5 || seen[s] {
				t.Fatalf("order(%#x) = %v is not a permutation", fp, o1)
			}
			seen[s] = true
			if o2[k] != s {
				t.Fatalf("order(%#x) differs across identical rings: %v vs %v", fp, o1, o2)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	const slots, probes = 4, 4000
	r := newRing(slots, 64)
	counts := make([]int, slots)
	for i := 0; i < probes; i++ {
		counts[r.order(hashPoint(i, 777))[0]]++
	}
	for s, c := range counts {
		if c < probes/10 {
			t.Fatalf("slot %d is primary for only %d/%d fingerprints: %v", s, c, probes, counts)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := &ring{slots: 0}
	if got := r.order(12345); len(got) != 0 {
		t.Fatalf("empty ring order = %v, want empty", got)
	}
}
