package router

import (
	"fmt"
	"net"
	"net/http"
	"sync"

	"newsum/internal/service"
)

// Backend is one supervised solve process. Start brings it up and returns
// its base URL ("http://host:port"); Stop kills it abruptly — the crash
// model, not a graceful drain — so the supervisor can exercise the full
// dead-backend recovery path. A backend must tolerate Start after Stop
// (that is the restart) and Stop when already stopped.
type Backend interface {
	Start() (string, error)
	Stop() error
}

// LocalBackend runs a service in-process behind a real TCP listener: the
// same HTTP surface as a newsum-serve child process, without the exec. It
// is the backend of the router's tests and benchmarks — Stop closes the
// listener and every active connection mid-flight, which is exactly what a
// killed process looks like to the router.
type LocalBackend struct {
	// Cfg sizes each incarnation's service.
	Cfg service.Config

	mu  sync.Mutex
	svc *service.Service
	srv *http.Server
	url string
}

// Start brings up a fresh service incarnation on a fresh port.
func (lb *LocalBackend) Start() (string, error) {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if lb.svc != nil {
		return "", fmt.Errorf("router: local backend already started")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	lb.svc = service.New(lb.Cfg)
	lb.srv = &http.Server{Handler: lb.svc.Handler()}
	srv := lb.srv
	//lint:ignore goroutineguard HTTP accept loop: lives until Stop's srv.Close(), which Serve observes as ErrServerClosed and exits; joining is unnecessary — Close guarantees the listener and all connections are down.
	go func() {
		_ = srv.Serve(ln) //lint:ignore errdrop Serve always returns a non-nil error on Close; the shutdown path already knows
	}()
	lb.url = "http://" + ln.Addr().String()
	return lb.url, nil
}

// Stop kills the incarnation: listener and in-flight connections close
// immediately (clients see a reset — the crash signature), then the
// orphaned service drains in the background so its workers and kernel
// pools are reclaimed without delaying the restart.
func (lb *LocalBackend) Stop() error {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if lb.svc == nil {
		return nil
	}
	err := lb.srv.Close()
	svc := lb.svc
	//lint:ignore goroutineguard background drain of the killed incarnation: Close blocks until its in-flight solves finish, and the restart must not wait for work that is about to be re-dispatched elsewhere; the goroutine owns the orphaned service outright.
	go svc.Close()
	lb.svc, lb.srv, lb.url = nil, nil, ""
	return err
}

// Service exposes the current incarnation for in-process inspection
// (tests and benchmarks assert on backend counters); nil when stopped.
func (lb *LocalBackend) Service() *service.Service {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.svc
}

// URL returns the current incarnation's base URL; empty when stopped.
func (lb *LocalBackend) URL() string {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.url
}

// StaticBackend joins an externally managed newsum-serve by URL: Start
// just hands the URL back and Stop is a no-op, so the supervisor can probe
// and route around it but cannot restart it — a dead static backend stays
// dead until its operator brings it back, and the probe loop then readmits
// it.
type StaticBackend struct {
	Base string
}

func (sb *StaticBackend) Start() (string, error) {
	if sb.Base == "" {
		return "", fmt.Errorf("router: static backend needs a URL")
	}
	return sb.Base, nil
}

func (sb *StaticBackend) Stop() error { return nil }
