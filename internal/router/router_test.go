package router

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"newsum/internal/service"
)

// fastSupervision is a test config with tight probe/restart cadences so
// recovery paths run in milliseconds instead of the production defaults.
func fastSupervision(backends ...Backend) Config {
	return Config{
		Backends:          backends,
		HealthInterval:    10 * time.Millisecond,
		HealthTimeout:     250 * time.Millisecond,
		RestartBackoff:    5 * time.Millisecond,
		RestartBackoffMax: 100 * time.Millisecond,
		WarmupBudget:      2 * time.Second,
		DispatchWait:      5 * time.Second,
	}
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	srv := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		srv.Close()
		if err := rt.Close(); err != nil {
			t.Errorf("router.Close: %v", err)
		}
	})
	return rt, srv
}

func postSolve(t *testing.T, url string, req service.Request) *http.Response {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/solve", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	return resp
}

func decodeResponse(t *testing.T, resp *http.Response) service.Response {
	t.Helper()
	defer resp.Body.Close()
	var out service.Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return out
}

// specWithPrimary searches seeds until the spec's fingerprint lands on the
// wanted primary slot — the Seed field feeds the fingerprint even for
// generator kinds that ignore it, so this stays the same operator family.
func specWithPrimary(t *testing.T, r *ring, base service.MatrixSpec, primary int) service.MatrixSpec {
	t.Helper()
	for seed := int64(1); seed < 8192; seed++ {
		sp := base
		sp.Seed = seed
		if r.order(sp.Fingerprint())[0] == primary {
			return sp
		}
	}
	t.Fatalf("no seed maps %q onto slot %d", base.Kind, primary)
	return base
}

// relayedLine mirrors the NDJSON stream shape for test-side decoding.
type relayedLine struct {
	Event  string            `json:"event"`
	Result *service.Response `json:"result"`
	Error  string            `json:"error"`
}

func TestRouterRoundTripAndAffinity(t *testing.T) {
	backends := []Backend{
		&LocalBackend{Cfg: service.Config{Workers: 2, QueueDepth: 16}},
		&LocalBackend{Cfg: service.Config{Workers: 2, QueueDepth: 16}},
	}
	rt, srv := newTestRouter(t, fastSupervision(backends...))

	spec := service.MatrixSpec{Kind: "laplace2d", N: 12}
	primary := rt.ring.order(spec.Fingerprint())[0]
	const jobs = 6
	for i := 0; i < jobs; i++ {
		out := decodeResponse(t, postSolve(t, srv.URL, service.Request{Matrix: spec}))
		if !out.Converged || out.N != 144 {
			t.Fatalf("job %d: converged=%v n=%d", i, out.Converged, out.N)
		}
	}

	st := rt.Stats()
	if st.Jobs != jobs {
		t.Fatalf("router jobs = %d, want %d", st.Jobs, jobs)
	}
	if st.Slots[primary].Dispatched != jobs {
		t.Fatalf("primary slot dispatched %d, want %d (affinity broken): %+v",
			st.Slots[primary].Dispatched, jobs, st.Slots)
	}
	if other := st.Slots[1-primary].Dispatched; other != 0 {
		t.Fatalf("non-primary slot dispatched %d, want 0", other)
	}
	// The whole fingerprint's load lives on one backend: its sibling's
	// encoding cache was never touched.
	if got := backends[1-primary].(*LocalBackend).Service().Stats().Accepted; got != 0 {
		t.Fatalf("non-primary backend accepted %d jobs, want 0", got)
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, hz.Status)
	}
	hz.Body.Close()
	stResp, err := http.Get(srv.URL + "/stats")
	if err != nil || stResp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %v %v", err, stResp.Status)
	}
	var snap Stats
	if err := json.NewDecoder(stResp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	stResp.Body.Close()
	if snap.Jobs != jobs || len(snap.Slots) != 2 {
		t.Fatalf("stats snapshot %+v", snap)
	}
}

func TestRouterMethodAndDecodeErrors(t *testing.T) {
	_, srv := newTestRouter(t, fastSupervision(
		&LocalBackend{Cfg: service.Config{Workers: 1, QueueDepth: 4}}))

	get := func(path string) int {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/solve"); got != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve = %d, want 405", got)
	}
	resp, err := http.Post(srv.URL+"/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats = %d, want 405", resp.StatusCode)
	}
	for _, body := range []string{"{nope", `{"sovler":"pcg"}`} {
		resp, err := http.Post(srv.URL+"/solve", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q = %d, want 400", body, resp.StatusCode)
		}
	}
	// A semantically bad request passes the router's decode and is rejected
	// by the backend; on a stream that rejection is a terminal error line,
	// relayed verbatim (not mistaken for a crash and retried).
	buf, _ := json.Marshal(service.Request{Solver: "sor", Matrix: service.MatrixSpec{Kind: "laplace2d", N: 12}})
	resp, err = http.Post(srv.URL+"/solve?stream=1", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("streamed bad solver status = %d, want 200 + error line", resp.StatusCode)
	}
	var line relayedLine
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatalf("decode error line: %v", err)
	}
	if line.Event != "error" || !strings.Contains(line.Error, "unknown solver") {
		t.Fatalf("terminal line %+v, want backend validation error", line)
	}
}

func TestRouterStreamRelay(t *testing.T) {
	_, srv := newTestRouter(t, fastSupervision(
		&LocalBackend{Cfg: service.Config{Workers: 1, QueueDepth: 4}}))

	buf, _ := json.Marshal(service.Request{Matrix: service.MatrixSpec{Kind: "laplace2d", N: 12}})
	resp, err := http.Post(srv.URL+"/solve?stream=1", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var progress int
	var terminal relayedLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var line relayedLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Event == "progress" {
			progress++
			continue
		}
		terminal = line
	}
	if terminal.Event != "result" || terminal.Result == nil || !terminal.Result.Converged {
		t.Fatalf("terminal line %+v, want converged result", terminal)
	}
	if progress == 0 {
		t.Fatal("no progress lines relayed")
	}
}

// TestRouterKillMidSolveRedispatch is the tentpole's acceptance test: a
// backend killed mid-solve is restarted by the supervisor and its in-flight
// job re-dispatched, with no client-visible failure beyond latency.
func TestRouterKillMidSolveRedispatch(t *testing.T) {
	backends := []*LocalBackend{
		{Cfg: service.Config{Workers: 1, QueueDepth: 8}},
		{Cfg: service.Config{Workers: 1, QueueDepth: 8}},
	}
	rt, srv := newTestRouter(t, fastSupervision(backends[0], backends[1]))

	// A 16384-unknown Laplacian runs long enough (hundreds of PCG
	// iterations) that the kill below lands mid-solve with wide margin.
	spec := specWithPrimary(t, rt.ring, service.MatrixSpec{Kind: "laplace2d", N: 128}, 0)
	buf, _ := json.Marshal(service.Request{Matrix: spec})
	resp, err := http.Post(srv.URL+"/solve?stream=1", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	killed := false
	var terminal relayedLine
	for sc.Scan() {
		var line relayedLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if !killed && line.Event == "progress" {
			// The solve is now running on the primary; kill that process.
			if err := backends[0].Stop(); err != nil {
				t.Fatalf("kill primary: %v", err)
			}
			killed = true
			continue
		}
		if line.Event == "result" || line.Event == "error" {
			terminal = line
			break
		}
	}
	if !killed {
		t.Fatal("stream ended before any progress line; nothing was killed")
	}
	if terminal.Event != "result" || terminal.Result == nil || !terminal.Result.Converged {
		t.Fatalf("terminal line %+v, want converged result after re-dispatch", terminal)
	}
	st := rt.Stats()
	if st.Redispatches < 1 {
		t.Fatalf("redispatches = %d, want >= 1: %+v", st.Redispatches, st)
	}
	if st.Slots[1].Dispatched < 1 {
		t.Fatalf("fail-over slot never dispatched: %+v", st.Slots)
	}

	// The supervisor must also resurrect the killed backend.
	deadline := time.Now().Add(3 * time.Second)
	for {
		s0 := rt.Stats().Slots[0]
		if s0.Restarts >= 1 && s0.State == slotHealthy.String() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary never restarted: %+v", s0)
		}
		time.Sleep(10 * time.Millisecond)
	}
	out := decodeResponse(t, postSolve(t, srv.URL, service.Request{Matrix: spec}))
	if !out.Converged {
		t.Fatal("solve after restart did not converge")
	}
}

// TestRouterZeroSDCUnder64MixedClients drives 64 concurrent clients with
// mixed fingerprints and chaos fault injection through the router: every
// job converges, and no backend lets silent data corruption through.
func TestRouterZeroSDCUnder64MixedClients(t *testing.T) {
	backends := []*LocalBackend{
		{Cfg: service.Config{Workers: 2, QueueDepth: 64}},
		{Cfg: service.Config{Workers: 2, QueueDepth: 64}},
		{Cfg: service.Config{Workers: 2, QueueDepth: 64}},
	}
	_, srv := newTestRouter(t, fastSupervision(backends[0], backends[1], backends[2]))

	specs := []service.MatrixSpec{
		{Kind: "laplace2d", N: 12},
		{Kind: "laplace2d", N: 16},
		{Kind: "spd", N: 300, Degree: 4, Seed: 7},
		{Kind: "spd", N: 400, Degree: 6, Seed: 9},
		{Kind: "circuit", N: 300, Seed: 11},
		{Kind: "circuit", N: 256, Seed: 13},
		{Kind: "spd", N: 350, Degree: 4, Seed: 17},
		{Kind: "circuit", N: 280, Seed: 23},
	}
	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := service.Request{
				Matrix:      specs[i%len(specs)],
				ChaosFaults: 1,
				Seed:        int64(i + 1),
			}
			buf, _ := json.Marshal(req)
			resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(buf))
			if err != nil {
				errs <- fmt.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				errs <- fmt.Errorf("client %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			var out service.Response
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs <- fmt.Errorf("client %d: decode: %v", i, err)
				return
			}
			if !out.Converged {
				errs <- fmt.Errorf("client %d: did not converge", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	var completed, sdc int64
	for _, lb := range backends {
		st := lb.Service().Stats()
		completed += st.Completed
		sdc += st.SDCSuspects
	}
	if completed != clients {
		t.Fatalf("backends completed %d jobs, want %d", completed, clients)
	}
	if sdc != 0 {
		t.Fatalf("sdc suspects = %d, want 0", sdc)
	}
}

// stubBackend is a canned-handler StaticBackend for exercising proxy paths
// that are awkward to provoke from a real service.
func stubBackend(t *testing.T, solve http.HandlerFunc) (*StaticBackend, *int64) {
	t.Helper()
	var hits int64
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		solve(w, r)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &StaticBackend{Base: srv.URL}, &hits
}

func saturatedStub(t *testing.T, retryAfter string) (*StaticBackend, *int64) {
	return stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", retryAfter)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = io.WriteString(w, `{"error":"service: queue full"}`)
	})
}

func okStub(t *testing.T) (*StaticBackend, *int64) {
	return stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(service.Response{Converged: true, N: 144})
	})
}

func TestRouter429RouteAround(t *testing.T) {
	sat, satHits := saturatedStub(t, "7")
	ok, okHits := okStub(t)
	rt, srv := newTestRouter(t, fastSupervision(sat, ok))

	// Primary saturated, secondary free: the job lands on the secondary and
	// the client never sees the 429.
	spec := specWithPrimary(t, rt.ring, service.MatrixSpec{Kind: "laplace2d", N: 12}, 0)
	out := decodeResponse(t, postSolve(t, srv.URL, service.Request{Matrix: spec}))
	if !out.Converged {
		t.Fatal("routed-around solve did not converge")
	}
	if *satHits != 1 || *okHits != 1 {
		t.Fatalf("hits sat=%d ok=%d, want 1/1", *satHits, *okHits)
	}
	st := rt.Stats()
	if st.RoutedAround != 1 || st.Saturated429 != 0 || st.Redispatches != 0 {
		t.Fatalf("stats %+v: want routed_around=1 and no budget spent", st)
	}
}

func TestRouterAllSaturatedAggregatesRetryAfter(t *testing.T) {
	satA, _ := saturatedStub(t, "9")
	satB, _ := saturatedStub(t, "4")
	rt, srv := newTestRouter(t, fastSupervision(satA, satB))

	resp := postSolve(t, srv.URL, service.Request{Matrix: service.MatrixSpec{Kind: "laplace2d", N: 12}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	// Aggregated hint: the soonest any replica expects capacity.
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Fatalf("Retry-After = %q, want 4 (min across replicas)", got)
	}
	if st := rt.Stats(); st.Saturated429 != 1 || st.RoutedAround != 2 {
		t.Fatalf("stats %+v: want saturated_429=1 routed_around=2", st)
	}
}

func TestRouterStreamOverloadRouteAround(t *testing.T) {
	overloaded, overloadedHits := stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
		// streamSolve's admission-overload shape: 200, then a terminal
		// queue-full error line.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, `{"event":"error","error":"service: queue full"}`+"\n")
	})
	real := &LocalBackend{Cfg: service.Config{Workers: 1, QueueDepth: 4}}
	rt, srv := newTestRouter(t, fastSupervision(overloaded, real))

	spec := specWithPrimary(t, rt.ring, service.MatrixSpec{Kind: "laplace2d", N: 12}, 0)
	buf, _ := json.Marshal(service.Request{Matrix: spec})
	resp, err := http.Post(srv.URL+"/solve?stream=1", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var terminal relayedLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "queue full") {
			t.Fatalf("overload line leaked to the client: %s", sc.Text())
		}
		var line relayedLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		terminal = line
	}
	if terminal.Event != "result" || terminal.Result == nil || !terminal.Result.Converged {
		t.Fatalf("terminal line %+v, want converged result from fail-over", terminal)
	}
	if *overloadedHits != 1 {
		t.Fatalf("overloaded stub hits = %d, want 1", *overloadedHits)
	}
	if st := rt.Stats(); st.RoutedAround != 1 || st.Redispatches != 0 {
		t.Fatalf("stats %+v: overload must route around without spending budget", st)
	}
}

func TestRouterRetryBudgetExhausted(t *testing.T) {
	// Backends that pass health checks but reset every solve connection:
	// each dispatch fails like a crash, so the budget drains and the
	// client gets a 502 instead of an infinite retry loop.
	reset := func() (*StaticBackend, *int64) {
		return stubBackend(t, func(w http.ResponseWriter, r *http.Request) {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("stub server does not support hijacking")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close()
		})
	}
	a, _ := reset()
	b, _ := reset()
	cfg := fastSupervision(a, b)
	cfg.RetryBudget = 2
	rt, srv := newTestRouter(t, cfg)

	resp := postSolve(t, srv.URL, service.Request{Matrix: service.MatrixSpec{Kind: "laplace2d", N: 12}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	var e httpError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "retry budget") {
		t.Fatalf("error body %+v (%v), want retry budget message", e, err)
	}
	if st := rt.Stats(); st.Redispatches != 2 {
		t.Fatalf("redispatches = %d, want 2 (the budget)", st.Redispatches)
	}
}

func TestRouterNoHealthyBackend(t *testing.T) {
	// A static backend whose process is gone: the supervisor can probe and
	// route around it but not restart it.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	cfg := fastSupervision(&StaticBackend{Base: deadURL})
	cfg.DispatchWait = 100 * time.Millisecond
	rt, srv := newTestRouter(t, cfg)

	resp := postSolve(t, srv.URL, service.Request{Matrix: service.MatrixSpec{Kind: "laplace2d", N: 12}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if st := rt.Stats(); st.NoBackend != 1 {
		t.Fatalf("no_backend = %d, want 1", st.NoBackend)
	}
	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d, want 503 with no healthy slot", hz.StatusCode)
	}
}

func TestSupervisorRestartsDeadBackend(t *testing.T) {
	lb := &LocalBackend{Cfg: service.Config{Workers: 1, QueueDepth: 4}}
	rt, srv := newTestRouter(t, fastSupervision(lb))

	if err := lb.Stop(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		s0 := rt.Stats().Slots[0]
		if s0.Restarts >= 1 && s0.State == slotHealthy.String() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend never restarted: %+v", s0)
		}
		time.Sleep(10 * time.Millisecond)
	}
	out := decodeResponse(t, postSolve(t, srv.URL, service.Request{Matrix: service.MatrixSpec{Kind: "laplace2d", N: 12}}))
	if !out.Converged {
		t.Fatal("solve after restart did not converge")
	}
}

func TestBackendLifecycles(t *testing.T) {
	t.Run("local double start", func(t *testing.T) {
		lb := &LocalBackend{Cfg: service.Config{Workers: 1, QueueDepth: 2}}
		url, err := lb.Start()
		if err != nil || url == "" {
			t.Fatalf("start: %q %v", url, err)
		}
		if lb.URL() != url || lb.Service() == nil {
			t.Fatal("accessors disagree with Start")
		}
		if _, err := lb.Start(); err == nil {
			t.Fatal("second Start must fail")
		}
		if err := lb.Stop(); err != nil {
			t.Fatalf("stop: %v", err)
		}
		if err := lb.Stop(); err != nil {
			t.Fatalf("double stop must be a no-op, got %v", err)
		}
		if lb.URL() != "" || lb.Service() != nil {
			t.Fatal("accessors must clear after Stop")
		}
	})
	t.Run("static", func(t *testing.T) {
		sb := &StaticBackend{}
		if _, err := sb.Start(); err == nil {
			t.Fatal("empty static backend must fail to start")
		}
		sb.Base = "http://127.0.0.1:1"
		url, err := sb.Start()
		if err != nil || url != sb.Base {
			t.Fatalf("start: %q %v", url, err)
		}
		if err := sb.Stop(); err != nil {
			t.Fatalf("stop: %v", err)
		}
	})
	t.Run("router needs backends", func(t *testing.T) {
		if _, err := New(Config{}); err == nil {
			t.Fatal("New with no backends must fail")
		}
	})
}
