// Package router is the sharded front tier over N supervised newsum-serve
// backends: it consistent-hashes each job's operator spec
// (service.MatrixSpec.Fingerprint) onto a backend so that every operator's
// double-derivation-verified checksum encoding is cached hot on exactly
// one process, health-checks the backends over their HTTP API, restarts
// dead ones, and re-dispatches in-flight jobs with a bounded retry budget.
//
// The tier extends the repo's ABFT story one level up, in the spirit of
// Bosilca et al.: inside a backend, a struck vector element is detected by
// checksum and rolled back; at the router, a dead backend process is just
// a coarser detected fault, recovered by restart and re-dispatch. Both
// recoveries are invisible to the client beyond latency — a solve is
// deterministic, so a re-dispatched job converges to the same answer.
package router

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend slots: each slot projects
// vnodes points onto the uint64 circle, and a fingerprint's preference
// order is the distinct-slot sequence met walking clockwise from it.
// Virtual nodes smooth the per-slot load; consistent hashing keeps almost
// every fingerprint's primary slot stable when a slot set changes — which
// is what keeps encoding caches hot and exclusive.
type ring struct {
	slots  int
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	slot int
}

func hashPoint(slot, replica int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(slot))
	binary.LittleEndian.PutUint64(buf[8:], uint64(replica))
	_, _ = h.Write(buf[:]) //lint:ignore errdrop hash.Hash.Write never fails
	return h.Sum64()
}

func newRing(slots, vnodes int) *ring {
	r := &ring{slots: slots, points: make([]ringPoint, 0, slots*vnodes)}
	for s := 0; s < slots; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hashPoint(s, v), slot: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Deterministic tie-break so the order never depends on sort
		// internals (ties are astronomically rare but must be stable).
		return r.points[i].slot < r.points[j].slot
	})
	return r
}

// order returns the preference order of distinct slots for a fingerprint:
// the primary first, then the fail-over sequence. The result is a pure
// function of (fingerprint, slot count, vnodes) — every router instance
// over the same backend set routes identically.
func (r *ring) order(fp uint64) []int {
	out := make([]int, 0, r.slots)
	if len(r.points) == 0 {
		return out
	}
	seen := make([]bool, r.slots)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= fp })
	for i := 0; len(out) < r.slots && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.slot] {
			seen[p.slot] = true
			out = append(out, p.slot)
		}
	}
	return out
}
