package router

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Slot supervision state machine (docs/sharding.md):
//
//	healthy --probe fail / proxy-reported failure--> suspect
//	suspect --immediate re-probe ok--> healthy
//	suspect --re-probe fail--> dead
//	dead    --Stop+Start ok (exponential backoff)--> warming
//	dead    --Start fail--> dead (backoff doubles)
//	warming --healthz ok--> healthy (backoff resets)
//	warming --no healthz within the warmup budget--> dead
//
// The suspect hop separates a dropped probe from a dead process: one
// transient failure costs one immediate re-probe, not a restart. Restarts
// are the whole-process analogue of the solver's checkpoint rollback —
// and, like rollback storms, they are bounded: the backoff doubles on
// every failed incarnation so a crash-looping backend cannot hog the
// supervisor.
type slotState int32

const (
	slotHealthy slotState = iota
	slotSuspect
	slotDead
	slotWarming
)

func (s slotState) String() string {
	switch s {
	case slotHealthy:
		return "healthy"
	case slotSuspect:
		return "suspect"
	case slotDead:
		return "dead"
	case slotWarming:
		return "warming"
	}
	return "unknown"
}

// Config sizes the router. Zero values select the defaults noted.
type Config struct {
	// Backends are the supervised slots; at least one is required. The
	// slot order is the ring identity — keep it stable across restarts so
	// fingerprints keep their primary.
	Backends []Backend
	// VNodes is the virtual-node count per slot (default 64).
	VNodes int
	// RetryBudget bounds re-dispatches per job after backend failures
	// (default 3). Saturation route-arounds do not consume it.
	RetryBudget int
	// HealthInterval is the probe cadence (default 250ms).
	HealthInterval time.Duration
	// HealthTimeout caps one probe (default 1s).
	HealthTimeout time.Duration
	// RestartBackoff is the initial delay between restart attempts of a
	// dead slot, doubling up to RestartBackoffMax (defaults 50ms, 2s).
	RestartBackoff    time.Duration
	RestartBackoffMax time.Duration
	// WarmupBudget bounds how long a restarted slot may stay warming
	// before it is declared dead again (default 5s).
	WarmupBudget time.Duration
	// DispatchWait bounds how long a job waits for any healthy slot
	// before failing with 503 (default 10s).
	DispatchWait time.Duration
}

func (c Config) normalized() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 50 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 2 * time.Second
	}
	if c.WarmupBudget <= 0 {
		c.WarmupBudget = 5 * time.Second
	}
	if c.DispatchWait <= 0 {
		c.DispatchWait = 10 * time.Second
	}
	return c
}

// slot is one supervised backend with its routing state.
type slot struct {
	idx     int
	backend Backend

	mu          sync.Mutex
	state       slotState
	url         string
	backoff     time.Duration
	lastRestart time.Time
	warmSince   time.Time
	restarts    int64
	dispatched  int64
	failures    int64
}

func (s *slot) snapshotLocked() SlotStatus {
	return SlotStatus{
		Slot:       s.idx,
		URL:        s.url,
		State:      s.state.String(),
		Restarts:   s.restarts,
		Dispatched: s.dispatched,
		Failures:   s.failures,
	}
}

// healthyURL returns the slot's URL when it is dispatchable.
func (s *slot) healthyURL() (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != slotHealthy {
		return "", false
	}
	return s.url, true
}

// Router is the sharded front tier; see the package comment.
type Router struct {
	cfg    Config
	ring   *ring
	slots  []*slot
	client *http.Client
	probes *http.Client

	kick chan int
	stop chan struct{}
	wg   sync.WaitGroup

	statsMu sync.Mutex
	st      routerCounters
}

type routerCounters struct {
	jobs         int64
	redispatches int64
	routedAround int64
	saturated    int64
	noBackend    int64
}

// SlotStatus is one slot's row in the router's /stats.
type SlotStatus struct {
	Slot       int    `json:"slot"`
	URL        string `json:"url"`
	State      string `json:"state"`
	Restarts   int64  `json:"restarts"`
	Dispatched int64  `json:"dispatched"`
	Failures   int64  `json:"failures"`
}

// Stats is the router's /stats JSON shape.
type Stats struct {
	// Jobs counts dispatch attempts admitted by the router; Redispatches
	// counts re-sends after a backend failed mid-job; RoutedAround counts
	// saturated backends skipped without consuming retry budget;
	// Saturated429 counts jobs surfaced to the client as 429 because every
	// live replica was saturated; NoBackend counts jobs failed for want of
	// any healthy slot.
	Jobs         int64        `json:"jobs"`
	Redispatches int64        `json:"redispatches"`
	RoutedAround int64        `json:"routed_around"`
	Saturated429 int64        `json:"saturated_429"`
	NoBackend    int64        `json:"no_backend"`
	Slots        []SlotStatus `json:"slots"`
}

// New starts every backend and the supervisor. Backends that fail to start
// enter the dead state and are retried on the supervision cadence rather
// than failing construction — a router over a partially dead fleet still
// serves from the live part.
func New(cfg Config) (*Router, error) {
	cfg = cfg.normalized()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: at least one backend required")
	}
	rt := &Router{
		cfg:    cfg,
		ring:   newRing(len(cfg.Backends), cfg.VNodes),
		client: &http.Client{},
		probes: &http.Client{Timeout: cfg.HealthTimeout},
		kick:   make(chan int, len(cfg.Backends)),
		stop:   make(chan struct{}),
	}
	for i, b := range cfg.Backends {
		s := &slot{idx: i, backend: b, backoff: cfg.RestartBackoff}
		if url, err := b.Start(); err == nil {
			s.url, s.state = url, slotHealthy
		} else {
			s.state = slotDead
		}
		rt.slots = append(rt.slots, s)
	}
	rt.wg.Add(1)
	//lint:ignore goroutineguard supervision loop: lives for the router's lifetime, exits on the stop channel, joined in Close via rt.wg.Wait.
	go rt.supervise()
	return rt, nil
}

// Close stops supervision and every backend.
func (rt *Router) Close() error {
	close(rt.stop)
	rt.wg.Wait()
	var first error
	for _, s := range rt.slots {
		if err := s.backend.Stop(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Stats snapshots the router and per-slot counters.
func (rt *Router) Stats() Stats {
	rt.statsMu.Lock()
	st := Stats{
		Jobs:         rt.st.jobs,
		Redispatches: rt.st.redispatches,
		RoutedAround: rt.st.routedAround,
		Saturated429: rt.st.saturated,
		NoBackend:    rt.st.noBackend,
	}
	rt.statsMu.Unlock()
	for _, s := range rt.slots {
		s.mu.Lock()
		st.Slots = append(st.Slots, s.snapshotLocked())
		s.mu.Unlock()
	}
	return st
}

func (rt *Router) count(f func(*routerCounters)) {
	rt.statsMu.Lock()
	f(&rt.st)
	rt.statsMu.Unlock()
}

// noteFailure records a proxy-observed backend failure and wakes the
// supervisor: the slot leaves the dispatchable state immediately instead
// of waiting out the probe cadence with jobs still hashing onto it.
func (rt *Router) noteFailure(idx int) {
	s := rt.slots[idx]
	s.mu.Lock()
	s.failures++
	if s.state == slotHealthy {
		s.state = slotSuspect
	}
	s.mu.Unlock()
	select {
	case rt.kick <- idx:
	default: // a wakeup is already pending; the supervisor sweeps all slots anyway
	}
}

// supervise is the supervision loop: a periodic sweep of every slot plus
// immediate attention to slots the proxy reports.
func (rt *Router) supervise() {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case idx := <-rt.kick:
			rt.checkSlot(rt.slots[idx])
		case <-tick.C:
			for _, s := range rt.slots {
				select {
				case <-rt.stop:
					return
				default:
				}
				rt.checkSlot(s)
			}
		}
	}
}

// probe asks one incarnation whether it is accepting work.
func (rt *Router) probe(url string) bool {
	if url == "" {
		return false
	}
	resp, err := rt.probes.Get(url + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close() //lint:ignore errdrop liveness probe: the status code is the verdict; the body is empty
	return resp.StatusCode == http.StatusOK
}

// checkSlot advances one slot through the supervision state machine.
func (rt *Router) checkSlot(s *slot) {
	s.mu.Lock()
	state, url := s.state, s.url
	s.mu.Unlock()

	switch state {
	case slotHealthy, slotSuspect:
		if rt.probe(url) {
			rt.setState(s, slotHealthy)
			return
		}
		if state == slotHealthy {
			// One transient failure: suspect, and re-probe once before
			// declaring the process dead.
			rt.setState(s, slotSuspect)
			if rt.probe(url) {
				rt.setState(s, slotHealthy)
				return
			}
		}
		rt.setState(s, slotDead)
		rt.tryRestart(s)
	case slotDead:
		rt.tryRestart(s)
	case slotWarming:
		if rt.probe(url) {
			s.mu.Lock()
			s.state = slotHealthy
			s.backoff = rt.cfg.RestartBackoff
			s.mu.Unlock()
			return
		}
		s.mu.Lock()
		expired := time.Since(s.warmSince) > rt.cfg.WarmupBudget
		if expired {
			s.state = slotDead
		}
		s.mu.Unlock()
	}
}

func (rt *Router) setState(s *slot, st slotState) {
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// tryRestart restarts a dead slot's backend, honoring the backoff.
func (rt *Router) tryRestart(s *slot) {
	s.mu.Lock()
	if s.state != slotDead || time.Since(s.lastRestart) < s.backoff {
		s.mu.Unlock()
		return
	}
	s.lastRestart = time.Now()
	s.mu.Unlock()

	// Stop+Start outside the slot lock: a slow backend must not block
	// /stats or the dispatch path's state reads.
	_ = s.backend.Stop() //lint:ignore errdrop stopping an already-dead process is expected to fail; the restart below is what matters
	url, err := s.backend.Start()

	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.backoff *= 2
		if s.backoff > rt.cfg.RestartBackoffMax {
			s.backoff = rt.cfg.RestartBackoffMax
		}
		return
	}
	s.url = url
	s.state = slotWarming
	s.warmSince = time.Now()
	s.restarts++
}
