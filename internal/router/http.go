package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"newsum/internal/service"
)

// The proxy layer: each /solve request is hashed to its ring order and
// forwarded to the first healthy, non-saturated slot. Three failure shapes
// are handled distinctly:
//
//   - Network failure (connection refused/reset, mid-response drop): the
//     crash signature. The slot is reported to the supervisor and the job
//     is re-dispatched to the next slot in ring order, bounded by the retry
//     budget. A streamed job may replay progress lines from attempt one;
//     the terminal result/error line is only ever relayed once.
//   - Saturation (backend 429, or a streamed queue-full error line): the
//     slot is marked saturated for this job and routed around WITHOUT
//     consuming retry budget — an overloaded backend is healthy, just
//     busy. Only when every live replica is saturated does the router
//     surface 429, with Retry-After aggregated as the minimum hint across
//     replicas (the soonest any backend expects capacity).
//   - Application outcome (2xx/4xx/5xx from a completed solve): relayed
//     verbatim. The router adds no interpretation of solver results.
const maxBodyBytes = 64 << 20

// httpError mirrors the backend's error body shape.
type httpError struct {
	Error string `json:"error"`
}

var (
	errAllSaturated = errors.New("router: all backends saturated")
	errNoBackend    = errors.New("router: no healthy backend")
	errBudget       = errors.New("router: retry budget exhausted")
)

// Handler returns the router's HTTP surface — the same endpoints as one
// newsum-serve, so clients cannot tell a router from a single backend.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", rt.handleSolve)
	mux.HandleFunc("/stats", rt.handleStats)
	mux.HandleFunc("/healthz", rt.handleHealth)
	return mux
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, rt.Stats())
}

// handleHealth reports 200 while at least one slot is dispatchable: the
// tier is up as long as any replica can take work.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	for _, s := range rt.slots {
		if _, ok := s.healthyURL(); ok {
			w.WriteHeader(http.StatusOK)
			_, _ = io.WriteString(w, "ok\n") //lint:ignore errdrop health probe reply; a hangup is the prober's problem
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, httpError{Error: errNoBackend.Error()})
}

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST only"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("read request: %v", err)})
		return
	}
	// Decode only to learn the routing key; the original bytes are what get
	// forwarded, so the backend sees exactly what the client sent.
	var req service.Request
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("decode request: %v", err)})
		return
	}
	rt.count(func(c *routerCounters) { c.jobs++ })
	d := &dispatch{
		rt:        rt,
		order:     rt.ring.order(req.Matrix.Fingerprint()),
		budget:    rt.cfg.RetryBudget,
		saturated: map[int]int{},
		waitUntil: time.Now().Add(rt.cfg.DispatchWait),
	}
	if r.URL.Query().Get("stream") == "1" {
		rt.streamProxy(w, r, d, body)
		return
	}
	rt.proxy(w, r, d, body)
}

// dispatch is one job's routing state: its ring order, remaining retry
// budget, and the slots found saturated (with their Retry-After hints).
type dispatch struct {
	rt        *Router
	order     []int
	budget    int
	saturated map[int]int
	waitUntil time.Time
}

// pick selects the next target: the first healthy, non-saturated slot in
// ring order. When every healthy slot is saturated it reports saturation;
// when no slot is healthy it waits, within the dispatch budget, for the
// supervisor to revive one — a restart takes milliseconds, and failing the
// job instead would surface a recoverable fault to the client.
func (d *dispatch) pick(ctx context.Context) (int, string, error) {
	for {
		sawHealthy := false
		for _, idx := range d.order {
			url, ok := d.rt.slots[idx].healthyURL()
			if !ok {
				continue
			}
			sawHealthy = true
			if _, sat := d.saturated[idx]; sat {
				continue
			}
			return idx, url, nil
		}
		if sawHealthy {
			return 0, "", errAllSaturated
		}
		if time.Now().After(d.waitUntil) {
			return 0, "", errNoBackend
		}
		select {
		case <-ctx.Done():
			return 0, "", ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// spendRetry consumes one unit of retry budget after a backend failure and
// reports whether the job may be re-dispatched.
func (d *dispatch) spendRetry(idx int) bool {
	d.rt.noteFailure(idx)
	d.budget--
	if d.budget < 0 {
		return false
	}
	d.rt.count(func(c *routerCounters) { c.redispatches++ })
	return true
}

// routeAround marks a slot saturated for this job (no budget consumed).
func (d *dispatch) routeAround(idx, retryAfter int) {
	d.saturated[idx] = retryAfter
	d.rt.count(func(c *routerCounters) { c.routedAround++ })
}

// minRetryAfter aggregates the backpressure hint across saturated replicas:
// the soonest any of them expects to have capacity.
func (d *dispatch) minRetryAfter() int {
	min := 0
	for _, ra := range d.saturated {
		if min == 0 || ra < min {
			min = ra
		}
	}
	if min <= 0 {
		min = 1
	}
	return min
}

// forward sends the job body to one backend.
func (rt *Router) forward(ctx context.Context, url string, body []byte, stream bool) (*http.Response, error) {
	target := url + "/solve"
	if stream {
		target += "?stream=1"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return rt.client.Do(req)
}

func retryAfterHeader(resp *http.Response) int {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		return secs
	}
	return 1
}

func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body) //lint:ignore errdrop draining a doomed body so the connection can be reused; errors change nothing
	resp.Body.Close()
}

// proxy relays a buffered (non-streaming) solve. The backend's response is
// read in full before a byte reaches the client, so a backend dying
// mid-response is indistinguishable from one dying before it — both
// re-dispatch.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, d *dispatch, body []byte) {
	for {
		idx, url, perr := d.pick(r.Context())
		if perr != nil {
			rt.failJob(w, d, perr)
			return
		}
		s := rt.slots[idx]
		s.mu.Lock()
		s.dispatched++
		s.mu.Unlock()
		resp, err := rt.forward(r.Context(), url, body, false)
		if err != nil {
			if r.Context().Err() != nil {
				return // the client is gone; nothing to deliver or retry for
			}
			if !d.spendRetry(idx) {
				rt.failJob(w, d, fmt.Errorf("%w: %v", errBudget, err))
				return
			}
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			d.routeAround(idx, retryAfterHeader(resp))
			drainClose(resp)
			continue
		}
		out, rerr := io.ReadAll(resp.Body)
		_ = resp.Body.Close() //lint:ignore errdrop body fully read; rerr above already carries any transport failure
		if rerr != nil {
			if r.Context().Err() != nil {
				return
			}
			if !d.spendRetry(idx) {
				rt.failJob(w, d, fmt.Errorf("%w: %v", errBudget, rerr))
				return
			}
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		_, _ = w.Write(out) //lint:ignore errdrop response already committed; a client hangup here is unactionable
		return
	}
}

// failJob surfaces a dispatch failure on a response that has not started.
func (rt *Router) failJob(w http.ResponseWriter, d *dispatch, err error) {
	switch {
	case errors.Is(err, errAllSaturated):
		rt.count(func(c *routerCounters) { c.saturated++ })
		w.Header().Set("Retry-After", strconv.Itoa(d.minRetryAfter()))
		writeJSON(w, http.StatusTooManyRequests, httpError{Error: err.Error()})
	case errors.Is(err, errNoBackend):
		rt.count(func(c *routerCounters) { c.noBackend++ })
		writeJSON(w, http.StatusServiceUnavailable, httpError{Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, httpError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadGateway, httpError{Error: err.Error()})
	}
}

// streamLine is the minimal decode of one upstream NDJSON line: enough to
// recognize the terminal result/error line and the admission-overload
// error. Lines are relayed as raw bytes, never re-encoded.
type streamLine struct {
	Event string `json:"event"`
	Error string `json:"error"`
}

// streamProxy relays a streamed solve line by line. Progress lines flow
// through as they arrive; if the upstream dies before its terminal line,
// the job is re-dispatched and the client sees the new attempt's lines on
// the same response. An upstream queue-full error line counts as
// saturation (route around, no budget), provided nothing of that attempt
// has been relayed yet — which holds because admission is checked before
// the first progress event exists.
func (rt *Router) streamProxy(w http.ResponseWriter, r *http.Request, d *dispatch, body []byte) {
	flusher, _ := w.(http.Flusher)
	wroteHeader := false
	for {
		idx, url, perr := d.pick(r.Context())
		if perr != nil {
			rt.failStream(w, d, perr, wroteHeader, flusher)
			return
		}
		s := rt.slots[idx]
		s.mu.Lock()
		s.dispatched++
		s.mu.Unlock()
		resp, err := rt.forward(r.Context(), url, body, true)
		if err == nil && resp.StatusCode == http.StatusTooManyRequests {
			// Defensive: the backend streams 429 as an error line, but a
			// header-level 429 still means saturation.
			d.routeAround(idx, retryAfterHeader(resp))
			drainClose(resp)
			continue
		}
		if err == nil && resp.StatusCode != http.StatusOK {
			// Pre-stream rejection (e.g. 400): relay verbatim once.
			out, rerr := io.ReadAll(resp.Body)
			_ = resp.Body.Close() //lint:ignore errdrop body fully read; rerr above already carries any transport failure
			if rerr == nil {
				if !wroteHeader {
					if ct := resp.Header.Get("Content-Type"); ct != "" {
						w.Header().Set("Content-Type", ct)
					}
					w.WriteHeader(resp.StatusCode)
				}
				_, _ = w.Write(out) //lint:ignore errdrop response already committed
				return
			}
			err = rerr
		}
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			if !d.spendRetry(idx) {
				rt.failStream(w, d, fmt.Errorf("%w: %v", errBudget, err), wroteHeader, flusher)
				return
			}
			continue
		}
		done, saturated, serr := rt.relayStream(w, flusher, resp, &wroteHeader)
		if done {
			return
		}
		if saturated {
			d.routeAround(idx, 1)
			continue
		}
		if r.Context().Err() != nil {
			return
		}
		if !d.spendRetry(idx) {
			rt.failStream(w, d, fmt.Errorf("%w: %v", errBudget, serr), wroteHeader, flusher)
			return
		}
	}
}

// relayStream copies upstream NDJSON lines to the client until the
// terminal line (done=true), an admission-overload first line
// (saturated=true, nothing relayed), or an upstream failure (both false).
func (rt *Router) relayStream(w http.ResponseWriter, flusher http.Flusher, resp *http.Response, wroteHeader *bool) (done, saturated bool, err error) {
	defer resp.Body.Close() //lint:ignore errdrop relay outcome is decided by the line loop; the close is cleanup
	br := bufio.NewReader(resp.Body)
	first := true
	//hot:loop proxy relay: one upstream NDJSON line per solver progress event
	for {
		line, rerr := br.ReadBytes('\n')
		if len(line) > 0 {
			var sl streamLine
			//lint:ignore errdrop,hotalloc a malformed upstream line is still relayed verbatim; the two-field decode (one small boxed pointer per progress line) is what makes terminal-line detection possible at all
			_ = json.Unmarshal(line, &sl)
			if first && sl.Event == "error" && strings.Contains(sl.Error, "queue full") {
				return false, true, nil
			}
			first = false
			if !*wroteHeader {
				w.Header().Set("Content-Type", "application/x-ndjson")
				w.WriteHeader(http.StatusOK)
				*wroteHeader = true
			}
			_, _ = w.Write(line) //lint:ignore errdrop a mid-stream client hangup only ends the relay early
			if flusher != nil {
				flusher.Flush()
			}
			if sl.Event == "result" || sl.Event == "error" {
				return true, false, nil
			}
		}
		if rerr != nil {
			return false, false, rerr
		}
	}
}

// failStream surfaces a dispatch failure on a stream: as a proper status
// while the response is unstarted, as a terminal error line after.
func (rt *Router) failStream(w http.ResponseWriter, d *dispatch, err error, wroteHeader bool, flusher http.Flusher) {
	if !wroteHeader {
		rt.failJob(w, d, err)
		return
	}
	line, _ := json.Marshal(streamLine{Event: "error", Error: err.Error()}) //lint:ignore errdrop marshaling a flat struct of two strings cannot fail
	line = append(line, '\n')
	_, _ = w.Write(line) //lint:ignore errdrop terminal line races a client hangup; nothing to recover
	if flusher != nil {
		flusher.Flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //lint:ignore errdrop the response is already committed; a client hangup here is unactionable
}
