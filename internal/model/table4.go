package model

import "math"

// OpCount expresses a per-iteration fault-tolerance overhead as a linear
// combination of the paper's operation units: matrix-vector products (MVM),
// preconditioner solves (PCO), vector dot products / O(n) reductions (VDP)
// and vector linear operations (VLO). Table 4 states the three schemes'
// overheads in exactly these units.
type OpCount struct {
	MVM, PCO, VDP, VLO float64
	// Infinite marks the non-terminating case (basic scheme, Scenario 3).
	Infinite bool
}

// OpTimes holds measured per-operation times used to convert an OpCount
// into seconds.
type OpTimes struct {
	MVM, PCO, VDP, VLO float64
}

// Seconds converts the op-count overhead to time under the given
// per-operation costs; infinite overheads convert to +Inf.
func (o OpCount) Seconds(t OpTimes) float64 {
	if o.Infinite {
		return math.Inf(1)
	}
	return o.MVM*t.MVM + o.PCO*t.PCO + o.VDP*t.VDP + o.VLO*t.VLO
}

// Scenario identifies the three §6.2 error-rate regimes.
type Scenario int

const (
	// Scenario1: one error in an MVM over the entire execution (low rate).
	Scenario1 Scenario = iota
	// Scenario2: one error in an MVM every cd iterations (medium/high).
	Scenario2
	// Scenario3: one error in an MVM every iteration (extreme).
	Scenario3
)

func (s Scenario) String() string {
	switch s {
	case Scenario1:
		return "scenario 1 (one error total)"
	case Scenario2:
		return "scenario 2 (one error per cd)"
	case Scenario3:
		return "scenario 3 (one error per iteration)"
	default:
		return "unknown scenario"
	}
}

// Table4Costs returns the theoretical per-iteration overheads of the three
// schemes — basic online ABFT (O1), two-level online ABFT (O2) and online
// MV (O3) — for PCG under the given scenario, exactly as printed in
// Table 4. d and cd are the detection and checkpoint intervals and c0 =
// nnz/n is the matrix sparsity.
func Table4Costs(s Scenario, d, cd int, c0 float64) (o1, o2, o3 OpCount) {
	df, cdf := float64(d), float64(cd)
	twoLevel := OpCount{VDP: 2/df + 9, VLO: 2 / cdf}
	switch s {
	case Scenario1:
		o1 = OpCount{VDP: 2/df + 2, VLO: 2 / cdf}
		o2 = twoLevel
		o3 = OpCount{PCO: 1, VDP: 2, VLO: 3}
	case Scenario2:
		o1 = OpCount{
			MVM: 0.5,
			PCO: 0.5,
			VDP: 2/df + 5,
			VLO: 6*(1+c0)/cdf + 1.5,
		}
		o2 = twoLevel
		o3 = OpCount{PCO: 1, VDP: 5/cdf + 2, VLO: 3}
	case Scenario3:
		o1 = OpCount{Infinite: true}
		o2 = twoLevel
		o3 = OpCount{PCO: 1, VDP: 7, VLO: 3}
	}
	return o1, o2, o3
}

// ErrorFreeCosts returns the per-iteration overhead of each scheme when no
// error occurs, in op units, for PCG. The basic scheme pays its checksum
// updates (one dense dot each for the MVM and PCO updates, O(1) for VLOs),
// amortized verification (2 weighted sums every d iterations) and
// checkpointing (2 vector copies every cd); the two-level scheme triples the
// update dots and adds the per-MVM probe; online MV pays the Scenario-1
// Table 4 cost structure even without errors (its checking is per
// operation).
func ErrorFreeCosts(d, cd int) (o1, o2, o3 OpCount) {
	df, cdf := float64(d), float64(cd)
	o1 = OpCount{VDP: 2 + 2/df, VLO: 2 / cdf}
	o2 = OpCount{VDP: 6 + 1 + 2/df, VLO: 2 / cdf}
	o3 = OpCount{PCO: 1, VDP: 2, VLO: 3}
	return o1, o2, o3
}

// BiCGSTABScale converts a PCG per-iteration overhead into its PBiCGSTAB
// analogue by the §6.2 methodology: PBiCGSTAB performs two MVMs, two PCOs
// and roughly twice the vector traffic per iteration, so every overhead
// term doubles (the paper makes the same observation qualitatively: "the
// overhead of checksum updates increases with more involved vectors in
// PBiCGSTAB").
func BiCGSTABScale(o OpCount) OpCount {
	if o.Infinite {
		return o
	}
	return OpCount{
		MVM: 2 * o.MVM,
		PCO: 2 * o.PCO,
		VDP: 2 * o.VDP,
		VLO: 2 * o.VLO,
	}
}

// Ranking returns the scheme order (cheapest first) the Table 4 analysis
// predicts for the given scenario and operation costs — the paper's three
// conclusions in §6.2 fall out of this comparison.
func Ranking(s Scenario, d, cd int, c0 float64, t OpTimes) []string {
	o1, o2, o3 := Table4Costs(s, d, cd, c0)
	type entry struct {
		name string
		cost float64
	}
	es := []entry{
		{"basic", o1.Seconds(t)},
		{"two-level", o2.Seconds(t)},
		{"online-MV", o3.Seconds(t)},
	}
	// Insertion sort: three elements.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j].cost < es[j-1].cost; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
	names := make([]string, len(es))
	for i, e := range es {
		names[i] = e.name
	}
	return names
}
