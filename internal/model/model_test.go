package model

import (
	"math"
	"testing"
	"testing/quick"
)

func stampedePCG() OpCosts { return Stampede().PCG }

func TestExpectedTimeBasics(t *testing.T) {
	c := stampedePCG()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Zero error rate: base time plus checkpoint overhead only.
	e := ExpectedTime(c, 0, 1000, 10, 1)
	base := 1000 * (c.Iter + c.Update + c.Detect)
	want := base + 100*c.Checkpoint
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("lambda=0: %v, want %v", e, want)
	}
	// Invalid intervals yield +Inf.
	if !math.IsInf(ExpectedTime(c, 1, 1000, 0, 1), 1) {
		t.Fatalf("cd=0 should be infeasible")
	}
	if !math.IsInf(ExpectedTime(c, 1, 1000, 2, 5), 1) {
		t.Fatalf("cd < d should be infeasible")
	}
}

func TestExpectedTimeIncreasesWithLambda(t *testing.T) {
	c := stampedePCG()
	prev := 0.0
	for i, lam := range []float64{0, 0.1, 1, 10} {
		e := ExpectedTime(c, lam, 1000, 12, 1)
		if i > 0 && e <= prev {
			t.Fatalf("E not increasing in lambda: %v then %v", prev, e)
		}
		prev = e
	}
}

func TestValidateRejectsBadCosts(t *testing.T) {
	if err := (OpCosts{Iter: 0}).Validate(); err == nil {
		t.Fatalf("zero iteration time accepted")
	}
	if err := (OpCosts{Iter: 1, Detect: -1}).Validate(); err == nil {
		t.Fatalf("negative cost accepted")
	}
}

// TestTable5Reproduction pins the paper's Table 5 against the Stampede
// profile: λ=1 optimum at (12,1) for PCG, cd collapsing to 1 at λ=10 and
// growing to the cap at λ=0.01.
func TestTable5Reproduction(t *testing.T) {
	m := Stampede()
	cd, d, _ := Optimize(m.PCG, 1.0, 2000, 1000)
	if d != 1 || cd < 8 || cd > 16 {
		t.Errorf("lambda=1 PCG optimum (%d,%d), paper reports (12,1)", cd, d)
	}
	cd, d, _ = Optimize(m.PCG, 10, 2000, 1000)
	if cd != 1 || d != 1 {
		t.Errorf("lambda=10 PCG optimum (%d,%d), paper reports (1,1)", cd, d)
	}
	cd, _, _ = Optimize(m.PCG, 1e-2, 2000, 1000)
	if cd < 500 {
		t.Errorf("lambda=0.01 PCG optimum cd=%d, paper reports 1000", cd)
	}
	// PBiCGSTAB at λ=1: paper reports (10,1); accept the same ballpark.
	cd, d, _ = Optimize(m.PBiCGSTAB, 1.0, 2000, 1000)
	if d != 1 || cd < 4 || cd > 16 {
		t.Errorf("lambda=1 PBiCGSTAB optimum (%d,%d), paper reports (10,1)", cd, d)
	}
}

// Property: the optimal cd is non-increasing as the error rate grows.
func TestOptimalCDMonotoneProperty(t *testing.T) {
	c := stampedePCG()
	prev := math.MaxInt32
	for _, lam := range []float64{1e-3, 1e-2, 1e-1, 1, 3, 10} {
		cd, _, _ := Optimize(c, lam, 2000, 1000)
		if cd > prev {
			t.Fatalf("cd grew with lambda: %d after %d", cd, prev)
		}
		prev = cd
	}
}

// Property: Optimize returns the grid minimum (spot-check against scan).
func TestOptimizeIsGridMinimum(t *testing.T) {
	c := stampedePCG()
	f := func(raw uint8) bool {
		lam := 0.1 + float64(raw%40)/10
		cd, d, e := Optimize(c, lam, 500, 60)
		for dd := 1; dd <= 60; dd++ {
			for cc := dd; cc <= 60; cc += dd {
				if ExpectedTime(c, lam, 500, cc, dd) < e-1e-12 {
					t.Logf("better point (%d,%d) than (%d,%d)", cc, dd, cd, d)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSurfaceShape(t *testing.T) {
	pts := Surface(stampedePCG(), 1.0, 2000, 20, 2)
	if len(pts) != 20+10 {
		t.Fatalf("surface points: %d", len(pts))
	}
	for _, p := range pts {
		if p.E <= 0 || math.IsNaN(p.E) {
			t.Fatalf("bad surface value at (%d,%d): %v", p.CD, p.D, p.E)
		}
	}
}

func TestTable4Formulas(t *testing.T) {
	const d, cd = 1, 12
	const c0 = 4.8
	o1, o2, o3 := Table4Costs(Scenario1, d, cd, c0)
	if o1.VDP != 4 || math.Abs(o1.VLO-2.0/12) > 1e-15 {
		t.Errorf("S1 O1: %+v", o1)
	}
	if o2.VDP != 11 {
		t.Errorf("S1 O2: %+v", o2)
	}
	if o3.PCO != 1 || o3.VDP != 2 || o3.VLO != 3 {
		t.Errorf("S1 O3: %+v", o3)
	}

	o1, o2, o3 = Table4Costs(Scenario2, d, cd, c0)
	if o1.MVM != 0.5 || o1.PCO != 0.5 || o1.VDP != 7 {
		t.Errorf("S2 O1: %+v", o1)
	}
	wantVLO := 6*(1+c0)/12 + 1.5
	if math.Abs(o1.VLO-wantVLO) > 1e-12 {
		t.Errorf("S2 O1 VLO: %v want %v", o1.VLO, wantVLO)
	}
	if math.Abs(o3.VDP-(5.0/12+2)) > 1e-12 {
		t.Errorf("S2 O3 VDP: %v", o3.VDP)
	}

	o1, o2, o3 = Table4Costs(Scenario3, d, cd, c0)
	if !o1.Infinite {
		t.Errorf("S3 O1 must be infinite")
	}
	if o2.Infinite || o3.Infinite {
		t.Errorf("S3 O2/O3 must be finite")
	}
	if o3.VDP != 7 {
		t.Errorf("S3 O3: %+v", o3)
	}
}

func TestOpCountSeconds(t *testing.T) {
	ops := OpTimes{MVM: 1, PCO: 2, VDP: 0.1, VLO: 0.01}
	o := OpCount{MVM: 2, PCO: 1, VDP: 10, VLO: 100}
	if got := o.Seconds(ops); math.Abs(got-6) > 1e-12 {
		t.Fatalf("Seconds: %v", got)
	}
	if !math.IsInf(OpCount{Infinite: true}.Seconds(ops), 1) {
		t.Fatalf("infinite op count should convert to +Inf")
	}
}

// TestRankingMatchesPaperConclusions pins the §6.2 conclusions with the
// Stampede op times: S1 basic wins; S3 two-level wins with online MV second.
func TestRankingMatchesPaperConclusions(t *testing.T) {
	ops := Stampede().Ops
	r1 := Ranking(Scenario1, 1, 12, 4.8, ops)
	if r1[0] != "basic" {
		t.Errorf("S1 ranking: %v (paper: basic first)", r1)
	}
	r3 := Ranking(Scenario3, 1, 12, 4.8, ops)
	if r3[0] != "two-level" || r3[1] != "online-MV" {
		t.Errorf("S3 ranking: %v (paper: two-level, then online MV, basic non-terminating)", r3)
	}
	r2 := Ranking(Scenario2, 1, 12, 4.8, ops)
	if r2[0] != "two-level" {
		t.Errorf("S2 ranking: %v (paper: two-level first)", r2)
	}
}

func TestErrorFreeCosts(t *testing.T) {
	o1, o2, o3 := ErrorFreeCosts(1, 12)
	if o1.VDP >= o2.VDP {
		t.Errorf("two-level must carry more update VDPs than basic")
	}
	if o3.PCO != 1 {
		t.Errorf("online MV error-free must duplicate the PCO")
	}
}

func TestBiCGSTABScale(t *testing.T) {
	o := OpCount{MVM: 1, PCO: 2, VDP: 3, VLO: 4}
	s := BiCGSTABScale(o)
	if s.MVM != 2 || s.PCO != 4 || s.VDP != 6 || s.VLO != 8 {
		t.Fatalf("scale: %+v", s)
	}
	inf := BiCGSTABScale(OpCount{Infinite: true})
	if !inf.Infinite {
		t.Fatalf("infinite must stay infinite")
	}
}

func TestMachineProfiles(t *testing.T) {
	ms := Machines()
	if len(ms) != 2 {
		t.Fatalf("machines: %d", len(ms))
	}
	for _, m := range ms {
		if err := m.PCG.Validate(); err != nil {
			t.Errorf("%s PCG: %v", m.Name, err)
		}
		if err := m.PBiCGSTAB.Validate(); err != nil {
			t.Errorf("%s PBiCGSTAB: %v", m.Name, err)
		}
		if m.PBiCGSTAB.Iter <= m.PCG.Iter {
			t.Errorf("%s: PBiCGSTAB iterations should cost more than PCG", m.Name)
		}
	}
	// Tianhe-2 is uniformly faster (paper: similar shape, newer machine).
	s, th := Stampede(), Tianhe2()
	if th.PCG.Iter >= s.PCG.Iter {
		t.Errorf("Tianhe-2 per-iteration time should be below Stampede's")
	}
	if th.Name != "Tianhe-2" || s.Name != "Stampede" {
		t.Errorf("profile names wrong")
	}
}

func TestScenarioString(t *testing.T) {
	if Scenario1.String() == "" || Scenario(99).String() != "unknown scenario" {
		t.Fatalf("Scenario.String broken")
	}
}

// TestYoungScalingMatchesOptimize: Young's √(2t_c/λ) and the Eq. (5) grid
// optimum are different models with different constants, but both must
// scale as 1/√λ at low rates — quartering the rate doubles the interval.
func TestYoungScalingMatchesOptimize(t *testing.T) {
	c := stampedePCG()
	for _, lam := range []float64{0.08, 0.32} {
		y1 := YoungInterval(c, lam, 1)
		y2 := YoungInterval(c, lam/4, 1)
		if ratio := float64(y2) / float64(y1); ratio < 1.6 || ratio > 2.4 {
			t.Errorf("Young scaling at lambda=%v: ratio %v, want ≈2", lam, ratio)
		}
		// Eq. (5) scales like 1/√λ only deep in the linear regime and
		// faster once λ·cd·τ is O(1); assert growth between ×2 and ×8.
		cd1, _, _ := Optimize(c, lam, 5000, 2000)
		cd2, _, _ := Optimize(c, lam/4, 5000, 2000)
		if ratio := float64(cd2) / float64(cd1); ratio < 1.4 || ratio > 8 {
			t.Errorf("Eq.(5) scaling at lambda=%v: ratio %v, want in [1.4, 8]", lam, ratio)
		}
	}
	if YoungInterval(c, 0, 1) < 1<<19 {
		t.Errorf("zero rate should give an effectively unbounded interval")
	}
}
