package model

// Machine profiles the per-operation costs of an execution platform. The
// paper's empirical section runs PCG and PBiCGSTAB on two supercomputers —
// Stampede (2048 cores, §6.3) and Tianhe-2 (Figs. 8–9) — whose absolute
// costs we cannot reproduce on a single host; the profiles below encode the
// paper's reported per-iteration times and checkpoint/recovery costs so the
// Eq. (5) optimization and the Fig. 5 / Table 5 / Figs. 8–9 reproductions
// run against the same parameter regime the authors measured.
//
// For experiments on the local host, measure OpCosts directly instead (the
// benchmark harness does both and reports them side by side).
type Machine struct {
	Name string
	// PCG and PBiCGSTAB are the Eq. (5) cost parameters for the two
	// solvers on the G3_circuit workload.
	PCG, PBiCGSTAB OpCosts
	// Ops are the per-operation times used to evaluate Table 4 overheads.
	Ops OpTimes
}

// Stampede returns the profile of the paper's primary platform. The
// per-iteration times are the paper's own measurements (§6.3.2: PCG
// 4.8e-2 s, PBiCGSTAB 9.1e-2 s per iteration on G3_circuit over 2048
// cores); checkpoint and recovery costs are set to reproduce the paper's
// Table 5 optima ((12,1) for PCG and (10,1) for PBiCGSTAB at λ=1).
func Stampede() Machine {
	return Machine{
		Name: "Stampede",
		PCG: OpCosts{
			Iter:       4.8e-2,
			Update:     4.0e-4,
			Detect:     2.0e-4,
			Checkpoint: 2.0e-2,
			Recover:    2.0e-1,
		},
		PBiCGSTAB: OpCosts{
			Iter:       9.1e-2,
			Update:     9.0e-4,
			Detect:     2.0e-4,
			Checkpoint: 2.0e-2,
			Recover:    3.5e-1,
		},
		Ops: OpTimes{
			MVM: 1.6e-2,
			PCO: 2.2e-2,
			VDP: 8.0e-4,
			VLO: 6.0e-4,
		},
	}
}

// Tianhe2 returns the profile of the paper's second platform (Figs. 8–9).
// The paper reports overhead behaviour "similar to Stampede"; Tianhe-2's
// faster nodes and network shift absolute costs down by roughly a quarter
// while preserving the ratios that determine the scheme ranking.
func Tianhe2() Machine {
	s := Stampede()
	scale := func(c OpCosts, f float64) OpCosts {
		return OpCosts{
			Iter:       c.Iter * f,
			Update:     c.Update * f,
			Detect:     c.Detect * f,
			Checkpoint: c.Checkpoint * f,
			Recover:    c.Recover * f,
		}
	}
	return Machine{
		Name:      "Tianhe-2",
		PCG:       scale(s.PCG, 0.75),
		PBiCGSTAB: scale(s.PBiCGSTAB, 0.75),
		Ops: OpTimes{
			MVM: s.Ops.MVM * 0.75,
			PCO: s.Ops.PCO * 0.75,
			VDP: s.Ops.VDP * 0.75,
			VLO: s.Ops.VLO * 0.75,
		},
	}
}

// Machines returns the two platform profiles the paper evaluates on.
func Machines() []Machine {
	return []Machine{Stampede(), Tianhe2()}
}
