// Package model implements the paper's analytical performance machinery:
// the expected-execution-time formula Eq. (5) used to pick the optimal
// detection interval d and checkpoint interval cd (§6.3.1, Fig. 5,
// Table 5), the theoretical per-iteration overhead expressions of Table 4,
// and machine profiles describing the per-operation costs of the paper's
// two platforms (Stampede and Tianhe-2).
package model

import (
	"fmt"
	"math"
)

// OpCosts holds the measured time parameters feeding Eq. (5), all in
// seconds. In the paper these are the averages of 50 Stampede runs; here
// they are measured on the host (or taken from a Machine profile).
type OpCosts struct {
	// Iter is t, the time of one solver iteration.
	Iter float64
	// Update is t_u, the checksum-update overhead added to each iteration.
	Update float64
	// Detect is t_d, the cost of one outer-level detection (two O(n)
	// weighted sums for the x and r relationships).
	Detect float64
	// Checkpoint is t_c, the cost of one checkpoint.
	Checkpoint float64
	// Recover is t_r, the cost of one rollback recovery (restore plus the
	// recomputation MVM/PCO work).
	Recover float64
}

// Validate reports whether the parameters are usable.
func (c OpCosts) Validate() error {
	if c.Iter <= 0 {
		return fmt.Errorf("model: iteration time must be positive, got %g", c.Iter)
	}
	if c.Update < 0 || c.Detect < 0 || c.Checkpoint < 0 || c.Recover < 0 {
		return fmt.Errorf("model: negative cost parameter in %+v", c)
	}
	return nil
}

// ExpectedTime evaluates the expected execution time of a protected solve of
// I iterations at error rate lambda (errors per second, exponential
// inter-arrival) with detection interval d and checkpoint interval cd.
//
// The overhead term is the paper's Eq. (5); we add the productive base time
// I·(t + t_u + t_d/d), which Eq. (5) factors out (it is independent of cd
// for fixed d, so it does not move the optimum over cd, but including it
// makes the returned value a total time and keeps the d trade-off visible):
//
//	E = I·τ + (I/cd)·[ (e^{λ·cd·τ} − 1)·( (d·(t+t_u)+t_d)/(1−e^{−λ·cd·τ}) + t_r ) + t_c ]
//
// with τ = t + t_u + t_d/d the effective per-iteration time.
func ExpectedTime(c OpCosts, lambda float64, iters, cd, d int) float64 {
	if d < 1 || cd < d {
		return math.Inf(1)
	}
	tau := c.Iter + c.Update + c.Detect/float64(d)
	base := float64(iters) * tau
	if lambda <= 0 {
		return base + float64(iters)/float64(cd)*c.Checkpoint
	}
	x := lambda * float64(cd) * tau
	num := float64(d)*(c.Iter+c.Update) + c.Detect
	lost := (math.Exp(x) - 1) * (num/(1-math.Exp(-x)) + c.Recover)
	return base + float64(iters)/float64(cd)*(lost+c.Checkpoint)
}

// Optimize searches the (cd, d) grid for the pair minimizing ExpectedTime,
// with cd restricted to multiples of d (checkpoints on verified state) and
// cd ≤ maxCD. It reproduces the Table 5 selection procedure.
func Optimize(c OpCosts, lambda float64, iters, maxCD int) (cd, d int, t float64) {
	if maxCD < 1 {
		maxCD = 1
	}
	best := math.Inf(1)
	cd, d = 1, 1
	for dd := 1; dd <= maxCD; dd++ {
		for cc := dd; cc <= maxCD; cc += dd {
			e := ExpectedTime(c, lambda, iters, cc, dd)
			if e < best {
				best, cd, d = e, cc, dd
			}
		}
	}
	return cd, d, best
}

// SurfacePoint is one sample of the E(cd, d) landscape of Fig. 5.
type SurfacePoint struct {
	CD, D int
	E     float64
}

// Surface samples ExpectedTime over cd ∈ [1, maxCD] (multiples of d) for
// each d ∈ [1, maxD], the data behind Fig. 5.
func Surface(c OpCosts, lambda float64, iters, maxCD, maxD int) []SurfacePoint {
	var pts []SurfacePoint
	for d := 1; d <= maxD; d++ {
		for cd := d; cd <= maxCD; cd += d {
			pts = append(pts, SurfacePoint{CD: cd, D: d, E: ExpectedTime(c, lambda, iters, cd, d)})
		}
	}
	return pts
}

// YoungInterval returns Young's classic first-order approximation of the
// optimal checkpoint interval, √(2·t_c/λ), expressed in iterations of
// effective length τ = t + t_u + t_d/d. It is the textbook sanity check for
// the Eq. (5) optimum: the two agree to within a small factor at low error
// rates and diverge as λ·cd·τ leaves the linear regime.
func YoungInterval(c OpCosts, lambda float64, d int) int {
	if lambda <= 0 || d < 1 {
		return 1 << 20
	}
	tau := c.Iter + c.Update + c.Detect/float64(d)
	if tau <= 0 {
		return 1
	}
	iv := int(math.Sqrt(2*c.Checkpoint/lambda)/tau + 0.5)
	if iv < 1 {
		iv = 1
	}
	return iv
}
