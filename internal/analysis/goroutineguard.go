package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineGuard polices `go` statements in internal/ library code. The
// par substrate models MPI ranks as goroutines whose collectives block the
// whole team, so a leaked (unjoined) goroutine deadlocks or races the next
// solve. Two findings:
//
//   - a go statement whose enclosing function shows no join construct at
//     all (no sync.WaitGroup.Wait, no channel receive, no range over a
//     channel) — the goroutine's lifetime escapes the function silently;
//   - a go statement whose function literal captures an enclosing loop
//     variable instead of receiving it as an argument. Go 1.22 made the
//     capture per-iteration, but the rank identity of a worker must stay
//     explicit in the signature (as in ABFTPCG's `go func(rank int)`).
//
// Long-lived workers joined elsewhere (e.g. via a Stop method) are the
// legitimate exception and take a //lint:ignore goroutineguard comment.
type GoroutineGuard struct {
	Base
	// InternalOnly restricts the check to internal/ library packages.
	InternalOnly bool
}

// NewGoroutineGuard constructs the goroutineguard analyzer scoped to
// internal/ packages.
func NewGoroutineGuard() *GoroutineGuard {
	return &GoroutineGuard{
		Base: NewBase("goroutineguard",
			"flags go statements with no visible join or with implicit loop-variable capture in internal/ packages"),
		InternalOnly: true,
	}
}

// RunFile implements Analyzer.
func (a *GoroutineGuard) RunFile(pass *Pass, file *ast.File) {
	if a.InternalOnly && !pass.Pkg.Internal {
		return
	}
	w := &ggWalker{pass: pass}
	ast.Walk(w, file)
}

// ggWalker tracks the enclosing function and loop-variable stacks while
// descending to go statements.
type ggWalker struct {
	pass      *Pass
	funcStack []*funcFrame
	loopVars  []types.Object
}

// funcFrame is one enclosing function body; loop-variable capture resolves
// by object identity, so shadowing parameters need no special casing.
type funcFrame struct {
	body *ast.BlockStmt
}

func (w *ggWalker) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Body == nil {
			return nil
		}
		w.pushFunc(n.Body)
		ast.Walk(w, n.Body)
		w.popFunc()
		return nil
	case *ast.FuncLit:
		w.pushFunc(n.Body)
		ast.Walk(w, n.Body)
		w.popFunc()
		return nil
	case *ast.ForStmt:
		w.walkLoop(n, forLoopVars(w.pass, n), n.Cond, n.Post, n.Body)
		return nil
	case *ast.RangeStmt:
		w.walkLoop(n, rangeLoopVars(w.pass, n), n.Body)
		return nil
	case *ast.GoStmt:
		w.checkGo(n)
		return w // descend into the call (nested literals may hold more go stmts)
	}
	return w
}

func (w *ggWalker) pushFunc(body *ast.BlockStmt) {
	w.funcStack = append(w.funcStack, &funcFrame{body: body})
}

func (w *ggWalker) popFunc() {
	w.funcStack = w.funcStack[:len(w.funcStack)-1]
}

// walkLoop pushes the loop's variables, walks its constituent nodes, and
// pops.
func (w *ggWalker) walkLoop(loop ast.Node, vars []types.Object, parts ...ast.Node) {
	depth := len(w.loopVars)
	w.loopVars = append(w.loopVars, vars...)
	for _, p := range parts {
		if p != nil {
			ast.Walk(w, p)
		}
	}
	w.loopVars = w.loopVars[:depth]
}

func (w *ggWalker) checkGo(stmt *ast.GoStmt) {
	if len(w.funcStack) == 0 {
		return
	}
	frame := w.funcStack[len(w.funcStack)-1]
	if !hasJoin(w.pass, frame.body) {
		w.pass.Reportf(stmt.Pos(),
			"go statement without a visible join in the enclosing function (no WaitGroup.Wait, channel receive, or channel range); unjoined goroutines leak past the collective protocol")
	}
	if lit, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
		for _, obj := range w.loopVars {
			if id := capturedIdent(w.pass, lit.Body, obj); id != nil {
				w.pass.Reportf(id.Pos(),
					"goroutine closure captures loop variable %q; pass it as an argument so the rank binding is explicit", obj.Name())
			}
		}
	}
}

// hasJoin reports whether body contains any construct that waits for a
// goroutine: a Wait call on a sync.WaitGroup, a channel receive, or a
// range over a channel. Nested function literals count (a join wrapped in
// a defer closure is still a join).
func hasJoin(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isNamedType(pass.TypeOf(sel.X), "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// forLoopVars extracts the variables defined by a 3-clause for init.
func forLoopVars(pass *Pass, loop *ast.ForStmt) []types.Object {
	assign, ok := loop.Init.(*ast.AssignStmt)
	if !ok || assign.Tok != token.DEFINE {
		return nil
	}
	var vars []types.Object
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				vars = append(vars, obj)
			}
		}
	}
	return vars
}

// rangeLoopVars extracts the variables defined by a range clause.
func rangeLoopVars(pass *Pass, loop *ast.RangeStmt) []types.Object {
	if loop.Tok != token.DEFINE {
		return nil
	}
	var vars []types.Object
	for _, e := range []ast.Expr{loop.Key, loop.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				vars = append(vars, obj)
			}
		}
	}
	return vars
}

// capturedIdent returns the first identifier in body that uses obj, or nil.
func capturedIdent(pass *Pass, body *ast.BlockStmt, obj types.Object) *ast.Ident {
	var hit *ast.Ident
	ast.Inspect(body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
			hit = id
		}
		return hit == nil
	})
	return hit
}
