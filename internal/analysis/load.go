package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("newsum/internal/par").
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Internal reports whether an "internal" element appears in Path, i.e.
	// the package is library code (analyzers like bannedcall scope to it).
	Internal bool

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module. Imports within the
// module are resolved by recursively loading the imported directory;
// standard-library imports are type-checked from GOROOT source via
// go/importer. _test.go files and testdata directories are ignored, which
// matches the analyzers' scope (they only police non-test code).
type Loader struct {
	// Root is the absolute module root (the directory holding go.mod).
	Root string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	std     types.Importer
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle detection
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader creates a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: reading go.mod: %w", err)
	}
	m := moduleRe.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	l := &Loader{
		Root:       abs,
		ModulePath: string(m[1]),
		Fset:       token.NewFileSet(),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	l.std = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// Import implements types.Importer: module-local paths load recursively,
// everything else defers to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadDir loads the package in dir. Directories outside the module tree
// (e.g. testdata packages in analyzer tests) are given a synthetic import
// path derived from their base name.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPath(abs)
	return l.load(path, abs)
}

// importPath maps an absolute directory to its module import path, or to a
// synthetic path for directories outside the module.
func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "testdata.invalid/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.ModulePath
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel)
}

// load parses and type-checks the package in dir, caching by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:     path,
		Dir:      dir,
		Internal: isInternalPath(path),
		Fset:     l.Fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func isInternalPath(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

// goFiles lists the buildable non-test .go files of dir, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// PackageDirs expands dir patterns relative to root. A trailing "/..."
// recurses into every package directory below the prefix; other patterns
// name a single directory. testdata, hidden, and underscore-prefixed
// directories are never descended into.
func PackageDirs(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			names, err := goFiles(p)
			if err != nil {
				return err
			}
			if len(names) > 0 {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Run loads every package matched by patterns under root and applies the
// analyzers, returning all surviving diagnostics sorted by position, with
// file names made relative to root.
func Run(root string, patterns []string, analyzers []Analyzer) ([]Diagnostic, error) {
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := PackageDirs(loader.Root, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		diags = append(diags, Analyze(pkg, analyzers)...)
	}
	for i := range diags {
		if rel, err := filepath.Rel(loader.Root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = rel
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}
