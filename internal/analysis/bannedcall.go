package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// BannedCall flags calls that break determinism or hijack process-level
// side effects inside internal/ library packages:
//
//   - fmt.Print/Printf/Println: library output must flow through injected
//     io.Writers so benchmark tables and fault-injection traces stay
//     capturable and reproducible;
//   - os.Exit and log.Fatal* (which wraps os.Exit): a library must return
//     errors, not kill the solver mid-recovery;
//   - the global math/rand functions (rand.Intn, rand.Float64, rand.Seed,
//     ...): fault injection must draw from an explicitly seeded *rand.Rand
//     so every error scenario replays bit-identically. Constructors
//     (rand.New, rand.NewSource, rand.NewZipf) remain legal.
//
// When InternalOnly is set (the default driver configuration) packages
// without an "internal" path element — commands, examples — are exempt.
type BannedCall struct {
	Base
	// InternalOnly restricts the check to internal/ library packages.
	InternalOnly bool
}

// NewBannedCall constructs the bannedcall analyzer scoped to internal/
// packages.
func NewBannedCall() *BannedCall {
	return &BannedCall{
		Base: NewBase("bannedcall",
			"flags fmt.Print*/os.Exit/log.Fatal*/global math/rand in internal/ library packages"),
		InternalOnly: true,
	}
}

// randConstructors are the math/rand package-level functions that do not
// touch the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// RunFile implements Analyzer.
func (a *BannedCall) RunFile(pass *Pass, file *ast.File) {
	if a.InternalOnly && !pass.Pkg.Internal {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		name := fn.Name()
		switch fn.Pkg().Path() {
		case "fmt":
			if name == "Print" || name == "Printf" || name == "Println" {
				pass.Reportf(call.Pos(), "fmt.%s writes to process stdout from library code; route output through an injected io.Writer", name)
			}
		case "os":
			if name == "Exit" {
				pass.Reportf(call.Pos(), "os.Exit in library code kills the solver mid-recovery; return an error instead")
			}
		case "log":
			if strings.HasPrefix(name, "Fatal") {
				pass.Reportf(call.Pos(), "log.%s calls os.Exit from library code; return an error instead", name)
			}
		case "math/rand", "math/rand/v2":
			if !randConstructors[name] {
				pass.Reportf(call.Pos(), "rand.%s uses the shared global source; draw from an explicitly seeded *rand.Rand so fault injection replays deterministically", name)
			}
		}
		return true
	})
}
