package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// HotAlloc flags heap-allocating constructs inside //hot:loop regions and
// the package-local functions transitively reachable from one. The paper's
// online ABFT schemes only pay off when the checksum machinery adds O(n)
// arithmetic and nothing else per iteration (§5 overhead model); a heap
// allocation inside the steady state turns that into allocator and GC
// traffic proportional to the iteration count. The dynamic counterpart is
// the AllocsPerRun suite in internal/core and internal/kernel; this check
// pins the property at review time, per construct:
//
//   - make and new;
//   - append, except the amortized self-append x = append(x, ...);
//   - slice, map and &composite literals (value struct literals stay on
//     the stack);
//   - func literals capturing enclosing variables (closure allocation);
//   - interface boxing: non-constant concrete values passed to interface
//     parameters, converted, assigned or returned as interfaces;
//   - calls into fmt and errors (formatting always allocates);
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions.
//
// The one structural exemption is the workspace-grow idiom: a make guarded
// by an enclosing `if cap(buf) < n` comparison reaches its high-water mark
// once and is free thereafter (the kernel Pool's grow1/grow2/growW).
// Anything else on the hot path either moves to pool/workspace machinery
// or is explicitly re-budgeted with //hot:cold.
type HotAlloc struct {
	Base
}

// NewHotAlloc constructs the hotalloc analyzer.
func NewHotAlloc() *HotAlloc {
	return &HotAlloc{Base: NewBase("hotalloc",
		"flags heap allocations inside //hot:loop regions and functions reachable from them")}
}

// RunPackage implements Analyzer. Hotness is a whole-package property (the
// call graph crosses files), so the work happens here rather than per file.
func (a *HotAlloc) RunPackage(pass *Pass) {
	model := buildHotModel(pass)
	for _, bad := range model.bad {
		pass.Reportf(bad.pos, "%s", bad.message)
	}
	c := &allocChecker{pass: pass, model: model, reported: map[token.Pos]bool{}}
	model.forEachHotSite(func(site hotSite) {
		c.site = site
		c.walk(site.body)
	})
}

// allocChecker walks one hot site keeping the ancestor stack the append
// and cap-guard exemptions need.
type allocChecker struct {
	pass     *Pass
	model    *hotModel
	site     hotSite
	reported map[token.Pos]bool
}

func (c *allocChecker) reportf(pos token.Pos, format string, args ...any) {
	// A body reachable from several roots is visited once, but a loop that
	// is both a root and part of a reachable body would double-report
	// without this guard.
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format+" (hot via %s:%d: %s)",
		append(args, filepath.Base(c.site.origin.Filename), c.site.origin.Line, c.site.reason)...)
}

// walk is a preorder traversal with an explicit ancestor stack, skipping
// //hot:cold subtrees.
func (c *allocChecker) walk(root ast.Node) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if s, ok := n.(ast.Stmt); ok && c.model.coldStmts[s] {
			return false // pruned before the push: no pop will arrive
		}
		c.check(n, stack)
		stack = append(stack, n)
		return true
	})
}

func (c *allocChecker) check(n ast.Node, ancestors []ast.Node) {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.checkCall(n, ancestors)
	case *ast.CompositeLit:
		c.checkCompositeLit(n, ancestors)
	case *ast.FuncLit:
		c.checkFuncLit(n)
	case *ast.BinaryExpr:
		if n.Op == token.ADD && c.isNonConstString(n) {
			c.reportf(n.Pos(), "string concatenation allocates on the hot path; render into a reusable buffer")
		}
	case *ast.AssignStmt:
		c.checkAssignBoxing(n)
	case *ast.ReturnStmt:
		c.checkReturnBoxing(n, ancestors)
	case *ast.GoStmt:
		c.reportf(n.Pos(), "go statement allocates a goroutine on the hot path; reuse long-lived workers")
	}
}

func (c *allocChecker) checkCall(call *ast.CallExpr, ancestors []ast.Node) {
	info := c.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		c.checkConversion(call)
		return
	}
	switch calleeBuiltin(c.pass, call) {
	case "make":
		if !underCapGuard(c.pass, ancestors) {
			c.reportf(call.Pos(), "make allocates on the hot path; grow a reusable workspace under a cap guard instead")
		}
		return
	case "new":
		c.reportf(call.Pos(), "new allocates on the hot path")
		return
	case "append":
		if !isSelfAppend(c.pass, call, ancestors) {
			c.reportf(call.Pos(), "append into a fresh slice allocates on the hot path; only the amortized x = append(x, ...) form is exempt")
		}
		return
	case "":
	default:
		return // other builtins (len, cap, copy, ...) never allocate
	}
	if fn := calleeFunc(c.pass, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "errors":
			c.reportf(call.Pos(), "%s.%s allocates on the hot path; formatting belongs on the cold (error/trace) path", fn.Pkg().Name(), fn.Name())
			return
		}
	}
	c.checkArgBoxing(call)
}

// checkConversion flags T(x) conversions that allocate: boxing into an
// interface type and string<->[]byte/[]rune copies.
func (c *allocChecker) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := c.pass.TypeOf(call.Fun)
	arg := call.Args[0]
	if dst == nil || c.isConstOrNil(arg) {
		return
	}
	src := c.pass.TypeOf(arg)
	if src == nil {
		return
	}
	if types.IsInterface(dst) && !types.IsInterface(src) {
		c.reportf(call.Pos(), "conversion boxes a %s into an interface on the hot path", c.typeName(src))
		return
	}
	if isStringCopyConversion(dst, src) {
		c.reportf(call.Pos(), "%s(%s) conversion copies on the hot path", c.typeName(dst), c.typeName(src))
	}
}

func (c *allocChecker) checkCompositeLit(lit *ast.CompositeLit, ancestors []ast.Node) {
	t := c.pass.TypeOf(lit)
	if t == nil {
		return
	}
	if len(ancestors) > 0 {
		if u, ok := ancestors[len(ancestors)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			c.reportf(u.Pos(), "&%s literal escapes to the heap on the hot path", c.typeName(t))
			return
		}
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.reportf(lit.Pos(), "slice literal allocates on the hot path")
	case *types.Map:
		c.reportf(lit.Pos(), "map literal allocates on the hot path")
	}
	// Value struct and array literals live on the stack and pass.
}

func (c *allocChecker) checkFuncLit(lit *ast.FuncLit) {
	if id := capturedOuter(c.pass, lit); id != nil {
		c.reportf(lit.Pos(), "func literal captures %q and allocates a closure on the hot path; mark its definition //hot:cold if it only runs on the recovery path", id.Name)
	}
}

// checkArgBoxing flags non-constant concrete arguments passed to interface
// parameters — each such call boxes the value.
func (c *allocChecker) checkArgBoxing(call *ast.CallExpr) {
	sig, ok := c.pass.TypeOf(call.Fun).(*types.Signature)
	if ok && sig != nil {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if call.Ellipsis.IsValid() {
					continue // xs... passes the slice itself
				}
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			case i < params.Len():
				pt = params.At(i).Type()
			default:
				continue
			}
			c.checkBoxed(arg, pt, "argument")
		}
	}
}

func (c *allocChecker) checkAssignBoxing(assign *ast.AssignStmt) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return
	}
	for i, rhs := range assign.Rhs {
		if lt := c.pass.TypeOf(assign.Lhs[i]); lt != nil {
			c.checkBoxed(rhs, lt, "assignment")
		}
	}
}

func (c *allocChecker) checkReturnBoxing(ret *ast.ReturnStmt, ancestors []ast.Node) {
	sig := enclosingSignature(c.pass, ancestors, ret.Pos())
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		c.checkBoxed(res, sig.Results().At(i).Type(), "return")
	}
}

// checkBoxed reports expr if storing it into target type boxes a
// non-constant concrete value into an interface.
func (c *allocChecker) checkBoxed(expr ast.Expr, target types.Type, what string) {
	if target == nil || !types.IsInterface(target) || c.isConstOrNil(expr) {
		return
	}
	src := c.pass.TypeOf(expr)
	if src == nil || types.IsInterface(src) {
		return
	}
	c.reportf(expr.Pos(), "%s boxes a %s into an interface on the hot path", what, c.typeName(src))
}

// typeName renders a type with package-local names unqualified, so
// messages stay readable and checkout-path independent.
func (c *allocChecker) typeName(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(c.pass.Pkg.Types))
}

// isConstOrNil reports whether the type checker proved expr constant (or
// it is the nil literal) — boxing a constant interns, it does not allocate
// per iteration.
func (c *allocChecker) isConstOrNil(expr ast.Expr) bool {
	tv, ok := c.pass.Pkg.Info.Types[expr]
	if !ok {
		return false
	}
	if tv.Value != nil || tv.IsNil() {
		return true
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return true
	}
	return false
}

func (c *allocChecker) isNonConstString(e *ast.BinaryExpr) bool {
	if c.isConstOrNil(e) {
		return false
	}
	t := c.pass.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringCopyConversion reports a conversion between string and a byte or
// rune slice — both directions copy the contents.
func isStringCopyConversion(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
	}
	return (isStr(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStr(src))
}

// calleeBuiltin names the builtin a call invokes, or "".
func calleeBuiltin(pass *Pass, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pass.ObjectOf(id).(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// underCapGuard reports whether any enclosing if condition consults
// builtin cap — the workspace-grow idiom `if cap(buf) < n { buf = make(...) }`
// that reaches a high-water mark once.
func underCapGuard(pass *Pass, ancestors []ast.Node) bool {
	for _, anc := range ancestors {
		ifStmt, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && calleeBuiltin(pass, call) == "cap" {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSelfAppend reports the amortized form x = append(x, ...): the direct
// parent is an assignment whose corresponding left-hand side names the
// same variable as append's first argument.
func isSelfAppend(pass *Pass, call *ast.CallExpr, ancestors []ast.Node) bool {
	if len(call.Args) == 0 || len(ancestors) == 0 {
		return false
	}
	assign, ok := ancestors[len(ancestors)-1].(*ast.AssignStmt)
	if !ok {
		return false
	}
	dst := baseObject(pass, call.Args[0])
	if dst == nil {
		return false
	}
	for i, rhs := range assign.Rhs {
		if ast.Unparen(rhs) == call && i < len(assign.Lhs) {
			return baseObject(pass, assign.Lhs[i]) == dst
		}
	}
	return false
}

// capturedOuter returns an identifier inside lit that resolves to a
// variable declared outside it, or nil for capture-free literals (which
// compile to a static function value, no allocation).
func capturedOuter(pass *Pass, lit *ast.FuncLit) *ast.Ident {
	var hit *ast.Ident
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if hit != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			hit = id
		}
		return hit == nil
	})
	return hit
}

// enclosingSignature finds the signature of the function a return belongs
// to: the innermost function literal or declaration on the ancestor stack,
// falling back to a lexical search when the walk was rooted inside the
// function (a hot loop root or a reachable function body).
func enclosingSignature(pass *Pass, ancestors []ast.Node, pos token.Pos) *types.Signature {
	for i := len(ancestors) - 1; i >= 0; i-- {
		switch f := ancestors[i].(type) {
		case *ast.FuncLit:
			sig, _ := pass.TypeOf(f).(*types.Signature)
			return sig
		case *ast.FuncDecl:
			if fn, ok := pass.Pkg.Info.Defs[f.Name].(*types.Func); ok {
				return fn.Type().(*types.Signature)
			}
			return nil
		}
	}
	var sig *types.Signature
	for _, file := range pass.Pkg.Files {
		if pos < file.Pos() || pos > file.End() {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if pos < n.Pos() || pos > n.End() {
				return false
			}
			switch f := n.(type) {
			case *ast.FuncLit:
				sig, _ = pass.TypeOf(f).(*types.Signature)
			case *ast.FuncDecl:
				if fn, ok := pass.Pkg.Info.Defs[f.Name].(*types.Func); ok {
					sig = fn.Type().(*types.Signature)
				}
			}
			return true
		})
		break
	}
	return sig
}
