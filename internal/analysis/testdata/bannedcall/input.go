// Package bannedcase seeds deliberate bannedcall violations (plus clean
// and suppressed counterparts) for the analyzer's golden test.
package bannedcase

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
)

func positives() {
	fmt.Println("direct stdout")
	fmt.Printf("%d\n", rand.Intn(10))
	fmt.Print("more stdout")
	rand.Seed(42)
	x := rand.Float64()
	if x > 2 {
		log.Fatalf("impossible: %v", x)
		os.Exit(1)
	}
}

func negatives(w io.Writer) {
	r := rand.New(rand.NewSource(1))
	_ = r.Intn(10)
	fmt.Fprintf(w, "injected writer is the sanctioned path")
	s := fmt.Sprintf("pure formatting is fine")
	_ = s
}

func suppressed() {
	//lint:ignore bannedcall this exit is the documented panic-equivalent
	os.Exit(2)
}
