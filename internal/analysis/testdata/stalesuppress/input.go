// Package stalesuppresscase seeds stale and live //lint:ignore directives
// for the stalesuppress golden test, which runs the full analyzer set so
// directive usage is judged the way the repo gate judges it.
package stalesuppresscase

// used still suppresses a live floatcmp finding: not stale.
func used(a, b float64) bool {
	//lint:ignore floatcmp the caller owns the tolerance decision here
	return a == b
}

// staleOne excused a float comparison that has since been refactored away.
func staleOne() int {
	//lint:ignore floatcmp nothing here compares floats anymore
	return 1
}

// staleMulti names two categories; both analyzers ran and neither found
// anything, so the whole directive is stale.
//
//lint:ignore errdrop,floatcmp the risky call moved to checked helpers
func staleMulti() {}

// tombstone shows a suppressed stalesuppress finding: the stale bannedcall
// directive below is excused by the stalesuppress directive above it.
func tombstone() int {
	//lint:ignore stalesuppress kept as a tombstone until the next refactor lands
	//lint:ignore bannedcall the banned call is scheduled to return here
	return 2
}
