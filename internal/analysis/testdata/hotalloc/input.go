// Package hotalloccase seeds hot-path allocation positives (plus exempt,
// cold and suppressed counterparts) for the hotalloc golden test.
package hotalloccase

import "fmt"

type ws struct {
	buf []float64
}

// sink has an interface parameter, so passing a non-constant concrete
// value to it boxes.
func sink(v any) { _ = v }

var boxed any

func sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// helper is reached from the hot loop below, so its allocation counts
// against the steady-state budget.
func helper(n int) []float64 {
	return make([]float64, n)
}

// grow is the exempt workspace idiom: the make is guarded by a cap
// comparison, so it reaches a high-water mark once.
func (w *ws) grow(n int) {
	if cap(w.buf) < n {
		w.buf = make([]float64, n)
	}
	w.buf = w.buf[:n]
}

func steady(xs []float64, label string, iters int) float64 {
	w := &ws{} // not hot: allocated once, before the loop
	acc := 0.0
	//hot:cold recovery closure, runs only after a detection
	rollback := func() []float64 { return make([]float64, 9) }
	//hot:loop steady-state accumulation
	for i := 0; i < iters; i++ {
		w.grow(len(xs))        // reachable; its make is cap-guarded and passes
		tmp := helper(len(xs)) // helper becomes hot; its make is flagged there
		acc += sum(tmp)
		fresh := append(tmp, acc) // flagged: append into a fresh slice
		_ = fresh
		tmp = append(tmp, acc) // exempt: amortized self-append
		pair := []float64{acc, acc}
		_ = pair
		m := map[int]float64{1: acc}
		_ = m
		p := &ws{}
		_ = p
		v := ws{} // exempt: value struct literal stays on the stack
		_ = v
		f := func() float64 { return acc } // flagged: capturing closure
		acc += f()
		msg := "iter " + label // flagged: non-constant string concatenation
		_ = msg
		raw := []byte(label) // flagged: string-to-bytes conversion copies
		_ = raw
		back := string(raw) // flagged: bytes-to-string conversion copies
		_ = back
		_ = fmt.Sprintf("acc = %v", acc) // flagged: fmt call
		sink(acc)                        // flagged: argument boxing
		sink("constant")                 // exempt: constant boxing interns
		boxed = acc                      // flagged: assignment boxing
		_ = rollback()                   // cold-defined closure is never followed
		//hot:cold error reporting rides the failure budget
		if acc < 0 {
			panic(fmt.Sprintf("impossible %v", acc))
		}
	}
	//hot:loop suppressed-case loop
	for i := 0; i < iters; i++ {
		//lint:ignore hotalloc deliberate scratch, pinned by an alloc benchmark
		scratch := make([]float64, 1)
		acc += scratch[0]
	}
	return acc
}

// render is a whole-function hot region: every iteration of every stream
// calls it, and its self-appends are the sanctioned amortized form.
//
//hot:loop rendering helper on the event path
func render(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		dst = append(dst, s[i])
	}
	dst = append(dst, '\n')
	return dst
}

// probe returns its argument boxed — a per-call allocation.
//
//hot:loop probe on the verification path
func probe(x float64) any {
	return x
}

//hot:bogus not a directive the model knows
func stray() {}
