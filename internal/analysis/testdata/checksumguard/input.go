// Package checksumguardcase seeds protected-vector write violations (plus
// sanctioned, cold and suppressed counterparts) for the checksumguard
// golden test.
package checksumguardcase

// axpyInto stands in for the checksum-maintaining vec/kernel/checksum ops:
// calls are the sanctioned write path.
func axpyInto(dst, x []float64, a float64) {
	for i := range dst {
		dst[i] += a * x[i]
	}
}

// tracked pairs a vector with its carried checksum, like core's tracked
// vectors.
type tracked struct {
	data []float64
	s    []float64
}

func solve(x, r []float64, iters int) {
	scratch := make([]float64, len(x))
	//hot:loop protected iteration
	//hot:protected x r
	for i := 0; i < iters; i++ {
		axpyInto(x, r, 0.5) // sanctioned: writes flow through a call
		x[0] = 1.0          // flagged: raw indexed write
		r[i%len(r)] -= 0.25 // flagged: raw indexed write (op-assign)
		copy(x, scratch)    // flagged: copy into protected
		alias := r[1:]      // flagged: aliasing re-slice
		_ = alias
		ptr := &x[0] // flagged: address escapes the guard
		_ = ptr
		x = scratch             // flagged: direct assignment
		scratch[0] = float64(i) // unprotected scratch is free to write
		//hot:cold recovery write rides the rollback budget
		if i == 0 {
			x[0] = 0
		}
		//lint:ignore checksumguard checksum is re-anchored on the next line
		r[0] = 0
	}
}

// anchor is a whole-function protected region, like the engine's
// operation methods: v's checksum fields may only move through calls.
//
//hot:protected v
func anchor(v *tracked, k int, sum float64) {
	v.s[k] = sum // flagged: selector-indexed write to a protected field
}

func missing(q []float64) {
	//hot:loop region with a typo in its protected list
	//hot:protected ghost
	for i := range q {
		q[i] = 0
	}
}
