// Package errdropcase seeds deliberate errdrop violations (plus clean and
// suppressed counterparts) for the analyzer's golden test.
package errdropcase

import (
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return nil }

func value() (int, error) { return 0, nil }

func positives() {
	mayFail()
	defer mayFail()
	go mayFail()
	_, _ = value()
	_ = mayFail()
	f, _ := os.Create("x")
	fmt.Fprintf(f, "not an allowlisted writer")
}

func negatives(sb *strings.Builder) error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := value()
	_ = v
	fmt.Println("stdout is unactionable")
	fmt.Fprintf(os.Stderr, "so is stderr")
	var b strings.Builder
	b.WriteString("in-memory writes cannot fail")
	fmt.Fprintf(&b, "neither can this")
	fmt.Fprintf(sb, "nor this")
	return err
}

func suppressed() {
	//lint:ignore errdrop best-effort cleanup, failure leaves no stale state
	mayFail()
	_ = mayFail() //lint:ignore errdrop sentinel write, checked by caller
}
