// Package ggcase seeds deliberate goroutineguard violations (plus clean
// and suppressed counterparts) for the analyzer's golden test.
package ggcase

import "sync"

func work(int) {}

func positiveNoJoin() {
	go work(1)
}

func positiveLoopCapture() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work(i)
		}()
	}
	wg.Wait()
}

func positiveRangeCapture(xs []int) {
	ch := make(chan int)
	for _, v := range xs {
		go func() {
			ch <- v
		}()
	}
	for range xs {
		<-ch
	}
}

func negativeJoined() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			work(rank)
		}(i)
	}
	wg.Wait()
}

func negativeChannelJoin() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

func suppressedDetached() {
	//lint:ignore goroutineguard long-lived worker, joined by Stop elsewhere
	go work(3)
}
