// Package floatcmpcase seeds deliberate floatcmp violations (plus clean
// and suppressed counterparts) for the analyzer's golden test.
package floatcmpcase

func positives(a, b float64, c float32) bool {
	if a == b {
		return true
	}
	if c != 2.5 {
		return false
	}
	xs := []float64{1}
	return xs[0] == 0
}

func negatives(a, b float64, i, j int) bool {
	if i == j {
		return true
	}
	if a <= b || a > b {
		return false
	}
	s := "x"
	return s == "y"
}

func suppressed(a float64) bool {
	//lint:ignore floatcmp exact sentinel comparison is intended here
	return a == 0
}
