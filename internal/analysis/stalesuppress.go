package analysis

import (
	"fmt"
	"strings"
)

// StaleSuppress flags //lint:ignore directives that no longer suppress
// anything. A suppression documents a conscious exception to an invariant;
// once the code it excused is refactored away, the stale directive keeps
// asserting an exception that does not exist — and worse, it silently
// swallows the next genuine finding that lands on its line. The analyzer
// reports every well-formed directive that (a) matched no finding in this
// run and (b) names only categories whose analyzers actually ran, so a
// narrowed `-only` selection never produces false positives for the
// analyzers it skipped.
//
// StaleSuppress is special-cased by Analyze: it consumes the suppression
// usage state left behind by the filtering of every other analyzer's
// findings, so it always runs last regardless of registry order.
type StaleSuppress struct {
	Base
}

// NewStaleSuppress constructs the stalesuppress analyzer.
func NewStaleSuppress() *StaleSuppress {
	return &StaleSuppress{Base: NewBase("stalesuppress",
		"flags //lint:ignore directives that no longer suppress any finding")}
}

// findings reports the unused directives whose categories all belong to
// analyzers that ran. Called by Analyze after suppression filtering.
func (a *StaleSuppress) findings(sup *suppressions, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, rec := range sup.all {
		if rec.used {
			continue
		}
		decidable := true
		for _, cat := range rec.categories {
			if !ran[cat] {
				decidable = false
				break
			}
		}
		if !decidable {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      rec.pos,
			Category: a.Name(),
			Message: fmt.Sprintf("stale //lint:ignore %s: no finding here needs suppression; delete the directive",
				strings.Join(rec.categories, ",")),
		})
	}
	return out
}
