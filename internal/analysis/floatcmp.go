package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. Every ABFT
// detection decision in this codebase must go through a tolerance
// (checksum.Tol): Lemma 2's round-off bound makes exact equality of
// checksum relations meaningless, so a bare float equality is either a
// latent soundness bug or an exact-sentinel test that deserves an explicit
// //lint:ignore justification.
type FloatCmp struct {
	Base
}

// NewFloatCmp constructs the floatcmp analyzer.
func NewFloatCmp() *FloatCmp {
	return &FloatCmp{Base: NewBase("floatcmp",
		"flags ==/!= between floating-point operands; ABFT detection must use tolerances")}
}

// RunFile implements Analyzer.
func (a *FloatCmp) RunFile(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
			return true
		}
		if isFloat(pass.TypeOf(bin.X)) || isFloat(pass.TypeOf(bin.Y)) {
			pass.Reportf(bin.OpPos,
				"floating-point %s comparison; compare through a tolerance (checksum.Tol) or an ordered guard", bin.Op)
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
