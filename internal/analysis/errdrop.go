package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags discarded error results: calls whose returned error is
// never bound (expression, defer and go statements) and errors assigned to
// the blank identifier. A dropped error from an mmio write or a checkpoint
// restore silently voids the recovery guarantees the rollback protocol
// depends on; genuinely-ignorable errors must be discarded as an explicit
// `_ =` carrying a //lint:ignore justification.
//
// A small conventional allowlist avoids noise from unactionable failures:
// fmt.Print* (process stdout), fmt.Fprint* aimed at os.Stdout/os.Stderr or
// an in-memory *bytes.Buffer / *strings.Builder, and the Write* methods of
// those two buffer types (documented to never return a non-nil error).
type ErrDrop struct {
	Base
}

// NewErrDrop constructs the errdrop analyzer.
func NewErrDrop() *ErrDrop {
	return &ErrDrop{Base: NewBase("errdrop",
		"flags discarded error results; checkpoint/mmio errors must be propagated or justified")}
}

// RunFile implements Analyzer.
func (a *ErrDrop) RunFile(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := stmt.X.(*ast.CallExpr); ok {
				a.checkDiscardedCall(pass, call, "")
			}
		case *ast.DeferStmt:
			a.checkDiscardedCall(pass, stmt.Call, "deferred ")
		case *ast.GoStmt:
			a.checkDiscardedCall(pass, stmt.Call, "goroutine ")
		case *ast.AssignStmt:
			a.checkBlankAssign(pass, stmt)
		}
		return true
	})
}

// checkDiscardedCall reports a call statement that returns an error with no
// binding at all.
func (a *ErrDrop) checkDiscardedCall(pass *Pass, call *ast.CallExpr, kind string) {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || !returnsError(sig) || a.allowed(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%scall to %s drops its error result; handle it or assign to _ with a //lint:ignore justification",
		kind, calleeName(pass, call))
}

// checkBlankAssign reports error results assigned to the blank identifier.
func (a *ErrDrop) checkBlankAssign(pass *Pass, stmt *ast.AssignStmt) {
	// Multi-value form: x, _ := f().
	if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
		if !ok || a.allowed(pass, call) {
			return
		}
		res := sig.Results()
		for i := 0; i < res.Len() && i < len(stmt.Lhs); i++ {
			if isBlank(stmt.Lhs[i]) && types.Identical(res.At(i).Type(), errorType) {
				pass.Reportf(stmt.Lhs[i].Pos(), "error result of %s discarded as _; handle it or add a //lint:ignore justification",
					calleeName(pass, call))
			}
		}
		return
	}
	// Paired form: _ = f() (possibly among several pairs).
	for i, lhs := range stmt.Lhs {
		if !isBlank(lhs) || i >= len(stmt.Rhs) {
			continue
		}
		if t := pass.TypeOf(stmt.Rhs[i]); t == nil || !types.Identical(t, errorType) {
			continue
		}
		if call, ok := ast.Unparen(stmt.Rhs[i]).(*ast.CallExpr); ok && a.allowed(pass, call) {
			continue
		}
		pass.Reportf(lhs.Pos(), "error discarded as _; handle it or add a //lint:ignore justification")
	}
}

// allowed reports whether call is on the conventional ignore list.
func (a *ErrDrop) allowed(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv != nil {
		// In-memory buffer writes never fail.
		return isNamedType(recv.Type(), "bytes", "Buffer") || isNamedType(recv.Type(), "strings", "Builder")
	}
	if fn.Pkg().Path() != "fmt" {
		return false
	}
	if strings.HasPrefix(fn.Name(), "Print") {
		return true // process stdout: failure is unactionable
	}
	if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		return isUnactionableWriter(pass, call.Args[0])
	}
	return false
}

// isUnactionableWriter reports whether the fmt.Fprint* destination is the
// process's own stdout/stderr or an in-memory buffer.
func isUnactionableWriter(pass *Pass, w ast.Expr) bool {
	if sel, ok := ast.Unparen(w).(*ast.SelectorExpr); ok {
		if obj := pass.ObjectOf(sel.Sel); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" {
			if sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr" {
				return true
			}
		}
	}
	t := pass.TypeOf(w)
	return isNamedType(t, "bytes", "Buffer") || isNamedType(t, "strings", "Builder")
}

func calleeName(pass *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(pass, call); fn != nil {
		if fn.Pkg() != nil && fn.Type().(*types.Signature).Recv() == nil {
			return fn.Pkg().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	return "function"
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
