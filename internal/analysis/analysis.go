// Package analysis is a self-contained static-analysis framework for the
// newsum codebase, built only on the standard library (go/parser, go/ast,
// go/types, go/importer, go/token).
//
// The checks it hosts enforce the invariants the paper's soundness
// arguments rest on: floating-point checksum relations such as
// cᵀ(Av) = checksum(A)·v + d·(cᵀv) survive round-off only when every
// detection decision goes through a tolerance (never `==` on floats), when
// no I/O or checkpoint error is silently dropped, when fault injection
// stays deterministic (no global rand, no stray stdout/exit inside library
// code), and when the goroutine "MPI" substrate never leaks an unjoined
// rank. See docs/static_analysis.md for the invariant-by-invariant story.
//
// Analyzers implement the Analyzer interface and are driven by Run (used
// by cmd/newsum-lint) or directly over a loaded *Package in tests.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the reporting analyzer's category
// (its Name), and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Category string
	Message  string
}

// String formats a diagnostic the way compilers do: file:line:col: category: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Category, d.Message)
}

// Analyzer is one static check over type-checked source. Name doubles as
// the diagnostic category, the //lint:ignore key, and the driver's -only
// selector.
type Analyzer interface {
	// Name is the short category identifier (e.g. "floatcmp").
	Name() string
	// Doc is a one-line description of the enforced invariant.
	Doc() string
	// RunFile is called once per loaded (non-test) file of each package.
	RunFile(pass *Pass, file *ast.File)
	// RunPackage is called once per package, after every RunFile call.
	RunPackage(pass *Pass)
}

// Base carries an analyzer's name and doc and provides no-op hooks, so
// concrete analyzers embed it and override only the hook they need.
type Base struct {
	name, doc string
}

// NewBase builds the embeddable name/doc core of an analyzer.
func NewBase(name, doc string) Base { return Base{name: name, doc: doc} }

// Name implements Analyzer.
func (b Base) Name() string { return b.name }

// Doc implements Analyzer.
func (b Base) Doc() string { return b.doc }

// RunFile implements Analyzer as a no-op.
func (Base) RunFile(*Pass, *ast.File) {}

// RunPackage implements Analyzer as a no-op.
func (Base) RunPackage(*Pass) {}

// Pass hands one analyzer its view of one package plus the reporting sink.
type Pass struct {
	Pkg    *Package
	report func(Diagnostic)
	name   string
}

// Reportf records a diagnostic at pos under the running analyzer's
// category. Findings suppressed by a //lint:ignore comment on the same or
// the preceding line are dropped.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Category: p.name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if the type checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// Filename returns the name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Pkg.Fset.Position(pos).Filename
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos        token.Position
	categories []string // nil means the directive is malformed
}

// ignoreRecord is one well-formed //lint:ignore directive with its usage
// state: matches marks it used the first time it suppresses a finding, and
// the stalesuppress analyzer reports the records that never fire.
type ignoreRecord struct {
	pos        token.Position
	categories []string
	used       bool
}

// suppressions indexes //lint:ignore directives by filename and line. A
// directive suppresses matching diagnostics on its own line (trailing
// comment) and on the line below it (comment-above style); both index
// entries share one record, so usage is tracked per directive.
type suppressions struct {
	byLine map[string]map[int][]*ignoreRecord
	all    []*ignoreRecord
}

func newSuppressions() *suppressions {
	return &suppressions{byLine: map[string]map[int][]*ignoreRecord{}}
}

func (s *suppressions) add(rec *ignoreRecord) {
	s.all = append(s.all, rec)
	m := s.byLine[rec.pos.Filename]
	if m == nil {
		m = map[int][]*ignoreRecord{}
		s.byLine[rec.pos.Filename] = m
	}
	m[rec.pos.Line] = append(m[rec.pos.Line], rec)
	m[rec.pos.Line+1] = append(m[rec.pos.Line+1], rec)
}

func (s *suppressions) matches(d Diagnostic) bool {
	hit := false
	for _, rec := range s.byLine[d.Pos.Filename][d.Pos.Line] {
		for _, cat := range rec.categories {
			if cat == d.Category {
				rec.used = true
				hit = true
			}
		}
	}
	return hit
}

const ignorePrefix = "//lint:ignore"

// parseIgnores scans a file's comments for //lint:ignore directives. Well
// formed directives ("//lint:ignore cat[,cat...] reason") are indexed into
// sup; malformed ones (missing category or reason) are returned so the
// runner can report them under the "lint" category.
func parseIgnores(fset *token.FileSet, file *ast.File, sup *suppressions) []ignoreDirective {
	var malformed []ignoreDirective
	for _, group := range file.Comments {
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lint:ignorefoo — not our directive
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				malformed = append(malformed, ignoreDirective{pos: pos})
				continue
			}
			cats := strings.Split(fields[0], ",")
			sup.add(&ignoreRecord{pos: pos, categories: cats})
		}
	}
	return malformed
}

// Analyze runs the given analyzers over one loaded package and returns the
// surviving (unsuppressed) diagnostics, sorted by position. Malformed
// //lint:ignore directives are reported under the "lint" category. When
// the stalesuppress analyzer is part of the set it runs last, over the
// usage state the suppression filter just produced.
func Analyze(pkg *Package, analyzers []Analyzer) []Diagnostic {
	sup := newSuppressions()
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, bad := range parseIgnores(pkg.Fset, f, sup) {
			diags = append(diags, Diagnostic{
				Pos:      bad.pos,
				Category: "lint",
				Message:  "malformed //lint:ignore directive; want //lint:ignore <category>[,<category>] <reason>",
			})
		}
	}
	ran := map[string]bool{}
	for _, az := range analyzers {
		ran[az.Name()] = true
	}
	for _, az := range analyzers {
		pass := &Pass{
			Pkg:  pkg,
			name: az.Name(),
			report: func(d Diagnostic) {
				diags = append(diags, d)
			},
		}
		for _, f := range pkg.Files {
			if isTestFile(pkg.Fset, f) {
				continue
			}
			az.RunFile(pass, f)
		}
		az.RunPackage(pass)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !sup.matches(d) {
			kept = append(kept, d)
		}
	}
	// Stale-suppression detection needs the post-filter usage state, so it
	// runs after the loop above; its own findings remain suppressible.
	for _, az := range analyzers {
		ss, ok := az.(*StaleSuppress)
		if !ok {
			continue
		}
		for _, d := range ss.findings(sup, ran) {
			if !sup.matches(d) {
				kept = append(kept, d)
			}
		}
	}
	sortDiagnostics(kept)
	return kept
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Category < b.Category
	})
}

func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// errorType is the predeclared error interface, for signature checks.
var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether any result of sig is exactly error.
func returnsError(sig *types.Signature) bool {
	if sig == nil {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function object of call, if it is a
// direct call of a named function or method (not a func value or builtin).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// isNamedType reports whether t (or the type it points to) is the named
// type path.name.
func isNamedType(t types.Type, path, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}
