package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChecksumGuard enforces the paper's checksum-coverage invariant inside
// //hot:protected regions: every write to a declared protected vector must
// flow through a call (the internal/vec, internal/kernel and
// internal/checksum operations, which maintain the cᵀv checksum and its
// η error bound alongside the data — Eqs. 2–4), never through raw
// element syntax. A raw write desynchronizes vector and checksum, which
// either masks a real fault or triggers a false detection and a wasted
// rollback. Four findings:
//
//   - an indexed write v[i] = ..., v.data[i] -= ... to a protected vector;
//   - a builtin copy into a protected vector;
//   - a direct assignment replacing a protected vector or one of its
//     fields (v = ..., v.data = ...);
//   - a re-slice of a protected vector (v.data[a:b]) — the alias escapes
//     the guard, so later writes through it would be invisible.
//
// Calls receiving protected vectors as arguments are the sanctioned path
// and always pass; the one raw anchor write lives in checksum.Anchor,
// which re-derives the checksum from a fresh reduction. Regions are
// declared with //hot:protected on the solver loops (x, r, p, ... of PCG,
// BiCGStab, CR) and on the engine's operation methods (see hot.go for the
// directive language).
type ChecksumGuard struct {
	Base
}

// NewChecksumGuard constructs the checksumguard analyzer.
func NewChecksumGuard() *ChecksumGuard {
	return &ChecksumGuard{Base: NewBase("checksumguard",
		"flags raw writes and aliasing re-slices of //hot:protected vectors that bypass the checksum-maintaining ops")}
}

// RunPackage implements Analyzer. Protected regions are resolved from the
// same directive model hotalloc uses.
func (a *ChecksumGuard) RunPackage(pass *Pass) {
	model := buildHotModel(pass)
	for _, r := range model.protRegions {
		objs, missing := model.protObjects(r)
		for _, name := range missing {
			pass.Reportf(r.pos, "//hot:protected name %q does not resolve to a variable in its region", name)
		}
		if len(objs) == 0 {
			continue
		}
		g := &guardWalker{pass: pass, objs: objs}
		model.walkProtected(r, g.visit)
	}
}

// guardWalker checks one protected region against one protected-object set.
type guardWalker struct {
	pass *Pass
	objs map[types.Object]string
}

func (g *guardWalker) visit(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			g.checkWrite(lhs)
		}
	case *ast.IncDecStmt:
		g.checkWrite(n.X)
	case *ast.CallExpr:
		if calleeBuiltin(g.pass, n) == "copy" && len(n.Args) == 2 {
			if name, ok := g.protected(n.Args[0]); ok {
				g.pass.Reportf(n.Pos(),
					"copy into protected vector %q bypasses checksum maintenance; use the vec/kernel/checksum ops", name)
			}
		}
	case *ast.SliceExpr:
		if name, ok := g.protected(n.X); ok {
			g.pass.Reportf(n.Pos(),
				"re-slice aliases protected vector %q; writes through the alias escape the checksum guard", name)
		}
	case *ast.UnaryExpr:
		// &v.data[i] or &v would let the write happen through a pointer
		// the guard cannot see.
		if n.Op == token.AND {
			if name, ok := g.protected(n.X); ok {
				g.pass.Reportf(n.Pos(),
					"taking the address of protected vector %q lets writes escape the checksum guard", name)
			}
		}
	}
}

// checkWrite reports a raw assignment target rooted at a protected object.
func (g *guardWalker) checkWrite(lhs ast.Expr) {
	name, ok := g.protected(lhs)
	if !ok {
		return
	}
	if _, isIndex := ast.Unparen(lhs).(*ast.IndexExpr); isIndex {
		g.pass.Reportf(lhs.Pos(),
			"raw indexed write to protected vector %q bypasses checksum maintenance; route it through the vec/kernel/checksum ops", name)
		return
	}
	g.pass.Reportf(lhs.Pos(),
		"direct assignment to protected vector %q bypasses checksum maintenance; route it through the vec/kernel/checksum ops", name)
}

// protected resolves e's base variable against the protected set.
func (g *guardWalker) protected(e ast.Expr) (string, bool) {
	obj := baseObject(g.pass, e)
	if obj == nil {
		return "", false
	}
	name, ok := g.objs[obj]
	return name, ok
}
