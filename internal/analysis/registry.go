package analysis

import "fmt"

// All returns the full default analyzer set in its driver configuration
// (bannedcall and goroutineguard scoped to internal/ packages).
// stalesuppress is listed last because it judges the suppression usage the
// other analyzers' filtered findings produce (Analyze orders it last
// regardless).
func All() []Analyzer {
	return []Analyzer{
		NewFloatCmp(),
		NewErrDrop(),
		NewBannedCall(),
		NewGoroutineGuard(),
		NewHotAlloc(),
		NewChecksumGuard(),
		NewStaleSuppress(),
	}
}

// Select filters analyzers down to the named categories. An unknown name
// is an error, so a typo in -only fails loudly instead of silently
// skipping a gate.
func Select(analyzers []Analyzer, names []string) ([]Analyzer, error) {
	if len(names) == 0 {
		return analyzers, nil
	}
	byName := map[string]Analyzer{}
	for _, az := range analyzers {
		byName[az.Name()] = az
	}
	var out []Analyzer
	for _, name := range names {
		az, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
		}
		out = append(out, az)
	}
	return out, nil
}
