package analysis_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"newsum/internal/analysis"
)

var update = flag.Bool("update", false, "rewrite golden expected.txt files")

// sharedLoader is reused across golden cases so GOROOT sources are
// type-checked once per test binary.
var sharedLoader *analysis.Loader

func loader(t *testing.T) *analysis.Loader {
	t.Helper()
	if sharedLoader == nil {
		l, err := analysis.NewLoader("../..")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		sharedLoader = l
	}
	return sharedLoader
}

// golden formats diagnostics with basename-only file names so expected.txt
// is independent of the checkout path.
func golden(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Category, d.Message)
	}
	return b.String()
}

func TestGolden(t *testing.T) {
	cases := []struct {
		dir string
		azs []analysis.Analyzer
	}{
		{"floatcmp", []analysis.Analyzer{analysis.NewFloatCmp()}},
		{"errdrop", []analysis.Analyzer{analysis.NewErrDrop()}},
		{"bannedcall", []analysis.Analyzer{analysis.NewBannedCall()}},
		{"goroutineguard", []analysis.Analyzer{analysis.NewGoroutineGuard()}},
		{"hotalloc", []analysis.Analyzer{analysis.NewHotAlloc()}},
		{"checksumguard", []analysis.Analyzer{analysis.NewChecksumGuard()}},
		// stalesuppress judges directive usage against the analyzers that
		// ran, so its golden case runs the full registry — the way the
		// repo gate does.
		{"stalesuppress", analysis.All()},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			pkg, err := loader(t).LoadDir(filepath.Join("testdata", tc.dir))
			if err != nil {
				t.Fatalf("LoadDir: %v", err)
			}
			if !pkg.Internal {
				t.Fatalf("testdata package %s should count as internal, got Path=%s", tc.dir, pkg.Path)
			}
			got := golden(analysis.Analyze(pkg, tc.azs))
			expPath := filepath.Join("testdata", tc.dir, "expected.txt")
			if *update {
				if err := os.WriteFile(expPath, []byte(got), 0o644); err != nil {
					t.Fatalf("writing golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(expPath)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
			if got == "" {
				t.Errorf("golden case produced no findings; testdata must seed positives")
			}
		})
	}
}

// TestInternalScoping checks that bannedcall and goroutineguard exempt
// packages without an internal path element unless unscoped.
func TestInternalScoping(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module scopemod\n\ngo 1.22\n")
	pkgDir := filepath.Join(dir, "app")
	writeFile(t, filepath.Join(pkgDir, "main.go"), `package app

import "fmt"

func Hello() { fmt.Println("hi") }
`)
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(pkgDir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg.Internal {
		t.Fatalf("package %s should not be internal", pkg.Path)
	}
	if diags := analysis.Analyze(pkg, []analysis.Analyzer{analysis.NewBannedCall()}); len(diags) != 0 {
		t.Errorf("internal-scoped bannedcall fired outside internal/: %v", diags)
	}
	unscoped := analysis.NewBannedCall()
	unscoped.InternalOnly = false
	if diags := analysis.Analyze(pkg, []analysis.Analyzer{unscoped}); len(diags) != 1 {
		t.Errorf("unscoped bannedcall want 1 finding, got %v", diags)
	}
}

// TestMalformedIgnore checks that a //lint:ignore directive without a
// category and reason is itself reported, and suppresses nothing.
func TestMalformedIgnore(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module badmod\n\ngo 1.22\n")
	pkgDir := filepath.Join(dir, "internal", "x")
	writeFile(t, filepath.Join(pkgDir, "x.go"), `package x

func cmp(a, b float64) bool {
	//lint:ignore floatcmp
	return a == b
}
`)
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(pkgDir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := analysis.Analyze(pkg, []analysis.Analyzer{analysis.NewFloatCmp()})
	var cats []string
	for _, d := range diags {
		cats = append(cats, d.Category)
	}
	if len(diags) != 2 || cats[0] != "lint" || cats[1] != "floatcmp" {
		t.Errorf("want [lint floatcmp] diagnostics, got %v", diags)
	}
}

// TestSuppressionSameLineAndAbove checks both placements of lint:ignore.
func TestSuppressionSameLineAndAbove(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module supmod\n\ngo 1.22\n")
	pkgDir := filepath.Join(dir, "internal", "s")
	writeFile(t, filepath.Join(pkgDir, "s.go"), `package s

func cmp(a, b, c, d float64) bool {
	x := a == b //lint:ignore floatcmp trailing-style suppression
	//lint:ignore floatcmp comment-above suppression
	y := c == d
	return x && y
}
`)
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(pkgDir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if diags := analysis.Analyze(pkg, []analysis.Analyzer{analysis.NewFloatCmp()}); len(diags) != 0 {
		t.Errorf("both placements should suppress, got %v", diags)
	}
}

// TestStaleSuppressOnlyScope checks the -only interaction: a directive for
// an analyzer that did not run is undecidable and must not be reported,
// while an unused directive for an analyzer that did run is stale.
func TestStaleSuppressOnlyScope(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module stalemod\n\ngo 1.22\n")
	pkgDir := filepath.Join(dir, "internal", "s")
	writeFile(t, filepath.Join(pkgDir, "s.go"), `package s

func a() int {
	//lint:ignore errdrop errdrop did not run, so this is undecidable
	return 1
}

func b() int {
	//lint:ignore floatcmp floatcmp ran and found nothing: stale
	return 2
}
`)
	l, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := l.LoadDir(pkgDir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := analysis.Analyze(pkg, []analysis.Analyzer{analysis.NewFloatCmp(), analysis.NewStaleSuppress()})
	if len(diags) != 1 || diags[0].Category != "stalesuppress" || diags[0].Pos.Line != 9 {
		t.Errorf("want exactly the floatcmp directive reported stale at line 9, got %v", diags)
	}
}

func TestSelect(t *testing.T) {
	all := analysis.All()
	sel, err := analysis.Select(all, []string{"floatcmp", "errdrop"})
	if err != nil || len(sel) != 2 || sel[0].Name() != "floatcmp" || sel[1].Name() != "errdrop" {
		t.Errorf("Select(floatcmp,errdrop) = %v, %v", sel, err)
	}
	if _, err := analysis.Select(all, []string{"nosuch"}); err == nil {
		t.Errorf("Select with unknown name should fail")
	}
	if sel, err := analysis.Select(all, nil); err != nil || len(sel) != len(all) {
		t.Errorf("empty selection should return all analyzers")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
