package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hot.go implements the //hot: directive language shared by the hotalloc
// and checksumguard analyzers. Directives are ordinary comments attached to
// the statement or declaration that starts on the line after their comment
// group (so they compose with //lint:ignore lines in the same group):
//
//	//hot:loop <reason>        on a for/range statement or a func decl:
//	                           the subtree is a hot region — code on the
//	                           steady-state per-iteration budget.
//	//hot:cold <reason>        on any statement inside a hot region: the
//	                           statement's subtree is excluded (it rides
//	                           the recovery/once-per-solve budget), and
//	                           any func literal defined by it is never
//	                           followed. On a func decl: the whole body
//	                           is excluded.
//	//hot:protected <name>...  on a hot loop: the named vectors may only
//	                           be written through calls inside the loop
//	                           subtree (minus cold). On a func decl: the
//	                           whole body is protected regardless of
//	                           hotness.
//
// Hotness propagates through the package's static call graph: a function
// whose declaration lives in the same package becomes hot when a hot
// region calls it, as does the body of a func literal bound to a local
// variable that is assigned exactly once (the checkpoint/rollback closure
// idiom). Cross-package and interface calls are the analysis boundary —
// callees behind them carry their own //hot:loop annotations (the kernel
// ops, the checksum update/anchor entry points) or are deliberately out of
// scope (internal/vec's leaf closures never escape).

const hotPrefix = "//hot:"

// hotDirective is one parsed //hot: comment.
type hotDirective struct {
	kind string // "loop", "cold", "protected"
	args string // reason text, or the protected name list
	pos  token.Pos
}

// hotLoop is one //hot:loop region rooted at a for or range statement.
type hotLoop struct {
	stmt   ast.Stmt // *ast.ForStmt or *ast.RangeStmt
	reason string
	pos    token.Pos
}

// hotFunc is one //hot:loop region rooted at a function declaration.
type hotFunc struct {
	decl   *ast.FuncDecl
	reason string
	pos    token.Pos
}

// protRegion is one //hot:protected region: a root node plus the declared
// vector names. For loop roots the region is the subtree minus cold; for
// func roots it is the whole body.
type protRegion struct {
	root   ast.Node // *ast.ForStmt, *ast.RangeStmt or *ast.FuncDecl
	isFunc bool
	names  []string
	pos    token.Pos
}

// badDirective is a //hot: comment the model could not honor. The hotalloc
// analyzer reports these (running only checksumguard skips them).
type badDirective struct {
	pos     token.Pos
	message string
}

// hotModel is the resolved directive set of one package.
type hotModel struct {
	pass        *Pass
	loops       []hotLoop
	funcs       []hotFunc
	protRegions []protRegion
	coldStmts   map[ast.Stmt]bool
	coldFuncs   map[*ast.FuncDecl]bool
	coldLits    map[*ast.FuncLit]bool
	funcDecls   map[*types.Func]*ast.FuncDecl
	litOf       map[types.Object]*ast.FuncLit
	bad         []badDirective
}

// buildHotModel parses every //hot: directive of the package's non-test
// files and resolves the call-graph facts reachability needs.
func buildHotModel(pass *Pass) *hotModel {
	m := &hotModel{
		pass:      pass,
		coldStmts: map[ast.Stmt]bool{},
		coldFuncs: map[*ast.FuncDecl]bool{},
		coldLits:  map[*ast.FuncLit]bool{},
		funcDecls: map[*types.Func]*ast.FuncDecl{},
		litOf:     map[types.Object]*ast.FuncLit{},
	}
	for _, f := range pass.Pkg.Files {
		if isTestFile(pass.Pkg.Fset, f) {
			continue
		}
		m.collectFile(f)
	}
	m.resolveClosureBindings()
	return m
}

// collectFile attaches the file's directives and indexes its declarations.
func (m *hotModel) collectFile(file *ast.File) {
	fset := m.pass.Pkg.Fset

	// Index the outermost statement and any func decl starting on each
	// line. Preorder traversal sees enclosing statements first, so the
	// first statement recorded for a line is the outermost one. Block
	// statements are skipped: `for ... {` puts a BlockStmt on the same
	// line as the loop header, and directives never target bare blocks.
	stmtAt := map[int]ast.Stmt{}
	funcAt := map[int]*ast.FuncDecl{}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			line := fset.Position(n.Pos()).Line
			if funcAt[line] == nil {
				funcAt[line] = n
			}
			if n.Name != nil {
				if fn, ok := m.pass.Pkg.Info.Defs[n.Name].(*types.Func); ok {
					m.funcDecls[fn] = n
				}
			}
		case ast.Stmt:
			if _, isBlock := n.(*ast.BlockStmt); isBlock {
				break
			}
			line := fset.Position(n.Pos()).Line
			if stmtAt[line] == nil {
				stmtAt[line] = n
			}
		}
		return true
	})

	for _, group := range file.Comments {
		var directives []hotDirective
		for _, c := range group.List {
			if !strings.HasPrefix(c.Text, hotPrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, hotPrefix)
			kind, args, _ := strings.Cut(rest, " ")
			directives = append(directives, hotDirective{
				kind: kind,
				args: strings.TrimSpace(args),
				pos:  c.Pos(),
			})
		}
		if len(directives) == 0 {
			continue
		}
		// The directive's target starts on the line after the comment
		// group; a trailing (same-line) group falls back to the statement
		// the group follows.
		primary := fset.Position(group.End()).Line + 1
		fallback := fset.Position(group.Pos()).Line
		for _, d := range directives {
			m.attach(d, stmtAt, funcAt, primary, fallback)
		}
	}
}

// attach binds one directive to its target node.
func (m *hotModel) attach(d hotDirective, stmtAt map[int]ast.Stmt, funcAt map[int]*ast.FuncDecl, primary, fallback int) {
	var stmt ast.Stmt
	var fn *ast.FuncDecl
	if fn = funcAt[primary]; fn == nil {
		if stmt = stmtAt[primary]; stmt == nil {
			if fn = funcAt[fallback]; fn == nil {
				stmt = stmtAt[fallback]
			}
		}
	}
	switch d.kind {
	case "loop":
		switch {
		case fn != nil:
			if fn.Body == nil {
				m.badf(d.pos, "//hot:loop on a function with no body")
				return
			}
			m.funcs = append(m.funcs, hotFunc{decl: fn, reason: d.args, pos: d.pos})
		case isLoop(stmt):
			m.loops = append(m.loops, hotLoop{stmt: stmt, reason: d.args, pos: d.pos})
		default:
			m.badf(d.pos, "//hot:loop must annotate a for/range statement or a function declaration")
		}
	case "cold":
		switch {
		case fn != nil:
			m.coldFuncs[fn] = true
		case stmt != nil:
			m.coldStmts[stmt] = true
			ast.Inspect(stmt, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					m.coldLits[lit] = true
				}
				return true
			})
		default:
			m.badf(d.pos, "//hot:cold does not attach to any statement or declaration")
		}
	case "protected":
		names := strings.Fields(d.args)
		if len(names) == 0 {
			m.badf(d.pos, "//hot:protected needs at least one vector name")
			return
		}
		switch {
		case fn != nil:
			if fn.Body == nil {
				m.badf(d.pos, "//hot:protected on a function with no body")
				return
			}
			m.protRegions = append(m.protRegions, protRegion{root: fn, isFunc: true, names: names, pos: d.pos})
		case isLoop(stmt):
			m.protRegions = append(m.protRegions, protRegion{root: stmt, names: names, pos: d.pos})
		default:
			m.badf(d.pos, "//hot:protected must annotate a for/range statement or a function declaration")
		}
	default:
		m.badf(d.pos, "unknown //hot:%s directive (want loop, cold or protected)", d.kind)
	}
}

func (m *hotModel) badf(pos token.Pos, format string, args ...any) {
	m.bad = append(m.bad, badDirective{pos: pos, message: fmt.Sprintf(format, args...)})
}

func isLoop(s ast.Stmt) bool {
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

// resolveClosureBindings finds local variables bound to a func literal by
// exactly one assignment in the whole package — the checkpoint/rollback
// closure idiom — so reachability can follow calls through them. A
// variable assigned more than once, or whose defining literal is marked
// //hot:cold, is never followed.
func (m *hotModel) resolveClosureBindings() {
	assigns := map[types.Object]int{}
	lits := map[types.Object]*ast.FuncLit{}
	info := m.pass.Pkg.Info
	record := func(lhs, rhs []ast.Expr) {
		for i, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				continue
			}
			assigns[obj]++
			if len(rhs) == len(lhs) {
				if lit, ok := rhs[i].(*ast.FuncLit); ok {
					lits[obj] = lit
				}
			}
		}
	}
	for _, f := range m.pass.Pkg.Files {
		if isTestFile(m.pass.Pkg.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				record(n.Lhs, n.Rhs)
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(n.Names))
				for i, id := range n.Names {
					lhs[i] = id
				}
				record(lhs, n.Values)
			}
			return true
		})
	}
	for obj, lit := range lits {
		if assigns[obj] == 1 && !m.coldLits[lit] {
			m.litOf[obj] = lit
		}
	}
}

// hotSite is one hot code region handed to a visitor: a root subtree or a
// transitively reached function body, with the originating //hot:loop for
// the diagnostic trail.
type hotSite struct {
	body   ast.Node
	origin token.Position // position of the root //hot:loop region
	reason string
}

// forEachHotSite walks the hot extent of the package: every //hot:loop
// region plus every package-local function (or single-assignment closure)
// transitively called from one, excluding //hot:cold subtrees. Each
// distinct body is visited once, attributed to the first root that reached
// it.
func (m *hotModel) forEachHotSite(visit func(site hotSite)) {
	type work struct {
		node   ast.Node
		origin token.Position
		reason string
	}
	var queue []work
	fset := m.pass.Pkg.Fset
	for _, l := range m.loops {
		queue = append(queue, work{node: l.stmt, origin: fset.Position(l.pos), reason: l.reason})
	}
	for _, f := range m.funcs {
		queue = append(queue, work{node: f.decl.Body, origin: fset.Position(f.pos), reason: f.reason})
	}
	seen := map[ast.Node]bool{}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if seen[w.node] {
			continue
		}
		seen[w.node] = true
		visit(hotSite{body: w.node, origin: w.origin, reason: w.reason})
		// Follow the region's static calls into package-local bodies.
		m.walkHot(w.node, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if body := m.calleeBody(call); body != nil {
				queue = append(queue, work{node: body, origin: w.origin, reason: w.reason})
			}
		})
	}
}

// calleeBody resolves a call to a package-local function body or a
// single-assignment closure body, or nil when the callee is outside the
// analysis boundary (cross-package, interface, builtin, cold).
func (m *hotModel) calleeBody(call *ast.CallExpr) ast.Node {
	if fn := calleeFunc(m.pass, call); fn != nil {
		decl := m.funcDecls[fn]
		if decl == nil || decl.Body == nil || m.coldFuncs[decl] {
			return nil
		}
		return decl.Body
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		obj := m.pass.Pkg.Info.Uses[id]
		if lit := m.litOf[obj]; lit != nil {
			return lit.Body
		}
	}
	return nil
}

// walkHot visits every node of a hot subtree in preorder, skipping
// //hot:cold statements (and with them any func literal they define).
func (m *hotModel) walkHot(root ast.Node, visit func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if s, ok := n.(ast.Stmt); ok && m.coldStmts[s] {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// protObjects resolves a protected region's declared names to the variable
// objects they denote inside the region. Every object using a declared
// name within the region is protected (so shadowing cannot smuggle a write
// past the guard). Names matching nothing are returned in missing.
func (m *hotModel) protObjects(r protRegion) (objs map[types.Object]string, missing []string) {
	objs = map[types.Object]string{}
	found := map[string]bool{}
	info := m.pass.Pkg.Info
	declared := map[string]bool{}
	for _, name := range r.names {
		declared[name] = true
	}
	m.walkProtected(r, func(n ast.Node) {
		id, ok := n.(*ast.Ident)
		if !ok || !declared[id.Name] {
			return
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if v, ok := obj.(*types.Var); ok {
			objs[v] = id.Name
			found[id.Name] = true
		}
	})
	for _, name := range r.names {
		if !found[name] {
			missing = append(missing, name)
		}
	}
	return objs, missing
}

// walkProtected visits the nodes of a protected region: the whole body for
// a func root, the subtree minus //hot:cold statements for a loop root.
func (m *hotModel) walkProtected(r protRegion, visit func(ast.Node)) {
	if r.isFunc {
		ast.Inspect(r.root.(*ast.FuncDecl).Body, func(n ast.Node) bool {
			if n != nil {
				visit(n)
			}
			return true
		})
		return
	}
	m.walkHot(r.root, visit)
}

// baseObject resolves the variable at the base of an index, slice, selector
// or pointer chain: x, x.data, x.data[i], x.s[1:] all resolve to x's
// object. It returns nil for bases that are not simple variables.
func baseObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.Pkg.Info.Uses[x]
			if obj == nil {
				obj = pass.Pkg.Info.Defs[x]
			}
			return obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
