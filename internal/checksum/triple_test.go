package checksum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"newsum/internal/sparse"
)

// makeDeltas builds the (δ1, δ2, δ3) signature of errors at the given
// zero-based positions with the given magnitudes.
func makeDeltas(pos []int, mag []float64) []float64 {
	var d1, d2, d3 float64
	for i, p := range pos {
		j := float64(p + 1)
		d1 += mag[i]
		d2 += j * mag[i]
		d3 += mag[i] / j
	}
	return []float64{d1, d2, d3}
}

func refs(n int) []float64 { return []float64{float64(n), float64(n), float64(n)} }

func TestDiagnoseNoError(t *testing.T) {
	diag := Diagnose([]float64{1e-14, 1e-13, 1e-15}, 100, refs(100), Tol{})
	if diag.Kind != NoError {
		t.Fatalf("round-off flagged as %v", diag.Kind)
	}
}

func TestDiagnoseSingleError(t *testing.T) {
	for _, pos := range []int{0, 7, 99} {
		d := makeDeltas([]int{pos}, []float64{123.5})
		diag := Diagnose(d, 100, refs(100), Tol{})
		if diag.Kind != SingleError {
			t.Fatalf("pos %d: got %v", pos, diag.Kind)
		}
		if diag.Pos != pos {
			t.Fatalf("pos %d: located %d", pos, diag.Pos)
		}
		if math.Abs(diag.Magnitude-123.5) > 1e-9 {
			t.Fatalf("pos %d: magnitude %v", pos, diag.Magnitude)
		}
	}
}

func TestDiagnoseMultipleErrors(t *testing.T) {
	d := makeDeltas([]int{3, 17}, []float64{50, -20})
	diag := Diagnose(d, 100, refs(100), Tol{})
	if diag.Kind != MultipleErrors {
		t.Fatalf("got %v", diag.Kind)
	}
}

// TestDiagnoseDefeatsFakeCorrection reproduces §5.2's scenario: equal
// magnitudes at positions averaging to an integer fool the double-checksum
// locator but not the triple.
func TestDiagnoseDefeatsFakeCorrection(t *testing.T) {
	pos, mag, ok := FakeCorrectionExample(100, 42.0)
	if !ok {
		t.Fatalf("no example")
	}
	mags := make([]float64, len(pos))
	for i := range mags {
		mags[i] = mag
	}
	d := makeDeltas(pos, mags)
	// The double-checksum locator happily "finds" the average position.
	fakePos, located := DoubleLocate(d[0], d[1], 100)
	if !located {
		t.Fatalf("double-checksum should locate (that's the hazard)")
	}
	if fakePos == pos[0] || fakePos == pos[1] {
		t.Fatalf("fake position %d coincides with a real error", fakePos)
	}
	// The triple-checksum test rejects it.
	diag := Diagnose(d, 100, refs(100), Tol{})
	if diag.Kind != MultipleErrors {
		t.Fatalf("triple checksum fell for the fake correction: %v", diag.Kind)
	}
}

func TestCorrectSingle(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	want := append([]float64(nil), y...)
	y[2] += 77
	deltas := makeDeltas([]int{2}, []float64{77})
	diag := Diagnose(deltas, 4, refs(4), Tol{})
	if diag.Kind != SingleError {
		t.Fatalf("diagnosis: %v", diag.Kind)
	}
	CorrectSingle(y, diag)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-9 {
			t.Fatalf("correction failed: %v", y)
		}
	}
}

func TestCorrectSinglePanicsOnWrongKind(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	CorrectSingle([]float64{1}, TripleDiagnosis{Kind: MultipleErrors})
}

func TestDiagnosePanicsOnWrongArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Diagnose([]float64{1, 2}, 10, []float64{1, 2}, Tol{})
}

func TestDiagnosisString(t *testing.T) {
	for d, want := range map[Diagnosis]string{
		NoError:        "no-error",
		SingleError:    "single-error",
		MultipleErrors: "multiple-errors",
		Diagnosis(99):  "unknown-diagnosis",
	} {
		if d.String() != want {
			t.Errorf("%d: %q", d, d.String())
		}
	}
}

// Property: any single error at any position with any non-tiny magnitude is
// located and corrected exactly — the §5.2 guarantee.
func TestSingleErrorLocalizationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(500)
		pos := r.Intn(n)
		mag := (1 + r.Float64()*1e6) * float64(1-2*r.Intn(2))
		d := makeDeltas([]int{pos}, []float64{mag})
		diag := Diagnose(d, n, refs(n), Tol{})
		return diag.Kind == SingleError && diag.Pos == pos &&
			math.Abs(diag.Magnitude-mag) < 1e-6*math.Abs(mag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: two distinct-position errors never pass the single-error test
// (δ2·δ3 = δ1² iff all positions coincide).
func TestTwoErrorsNeverMistakenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(200)
		p1 := r.Intn(n)
		p2 := r.Intn(n)
		if p1 == p2 {
			return true // same position = genuinely one error; skip
		}
		m1 := 1 + r.Float64()*1e4
		m2 := 1 + r.Float64()*1e4
		if r.Intn(2) == 0 {
			m2 = -m2
		}
		if math.Abs(m1+m2) < 1e-6*(math.Abs(m1)+math.Abs(m2)) {
			return true // near-cancellation excluded by the error model
		}
		d := makeDeltas([]int{p1, p2}, []float64{m1, m2})
		diag := Diagnose(d, n, refs(n), Tol{})
		return diag.Kind == MultipleErrors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestToleranceRules(t *testing.T) {
	tol := Tol{Theta: 1e-10}
	if !tol.Consistent(1e-9, 100, 1) {
		t.Fatalf("tiny delta should pass Consistent")
	}
	if tol.Consistent(1, 100, 1) {
		t.Fatalf("big delta should fail Consistent")
	}
	if !tol.ConsistentAbs(1e-9, 100, 1000) {
		t.Fatalf("ConsistentAbs scale handling wrong")
	}
	if tol.ConsistentAbs(1, 100, 1000) {
		t.Fatalf("ConsistentAbs missed a unit-scale error")
	}
	// The η bound path: a delta inside BoundSafety·η is round-off even if
	// above θ·scale.
	if !tol.ConsistentBound(1e-3, 100, 1, 1e-4) {
		t.Fatalf("ConsistentBound ignored eta")
	}
	if tol.ConsistentBound(1, 100, 1, 1e-4) {
		t.Fatalf("ConsistentBound passed a real error")
	}
	// Zero-theta default.
	if (Tol{}).theta() != DefaultTheta {
		t.Fatalf("default theta")
	}
	if !DefaultTol().Consistent(0, 10, 0) {
		t.Fatalf("zero delta inconsistent?")
	}
	if tol.Inconsistent(1e-9, 100, 1) || !tol.InconsistentAbs(1, 100, 1) || tol.InconsistentBound(0, 1, 1, 0) {
		t.Fatalf("negations broken")
	}
}

func TestVerifyVector(t *testing.T) {
	x := []float64{1, 2, 3}
	s := Checksums(x, Triple)
	if !VerifyVector(x, Triple, s, Tol{}) {
		t.Fatalf("clean vector failed verification")
	}
	x[1] += 100
	if VerifyVector(x, Triple, s, Tol{}) {
		t.Fatalf("corrupted vector passed verification")
	}
}

// TestBoundUpdatesTrackRoundoff: a long chain of updates keeps the true
// drift within BoundSafety·η — the soundness property of the running
// bounds.
func TestBoundUpdatesTrackRoundoff(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := 2000
	x := randVec(rng, n)
	s := Checksums(x, Single)
	eta := []float64{float64(n) * Eps * Ones.Apply(abs(x))}
	// 200 random axpy updates.
	y := randVec(rng, n)
	sy := Checksums(y, Single)
	etaY := []float64{float64(n) * Eps * Ones.Apply(abs(y))}
	for k := 0; k < 200; k++ {
		alpha := rng.NormFloat64()
		for i := range x {
			x[i] += alpha * y[i]
		}
		UpdateVLOAxpyBound(s, eta, alpha, sy, etaY)
	}
	drift := math.Abs(Ones.Apply(x) - s[0])
	if drift > BoundSafety*eta[0] {
		t.Fatalf("true drift %v exceeds safety bound %v", drift, BoundSafety*eta[0])
	}
}

func abs(x []float64) []float64 {
	a := make([]float64, len(x))
	for i, v := range x {
		a[i] = math.Abs(v)
	}
	return a
}

// TestBoundChainSoundnessProperty drives random MVM/PCO/VLO update chains
// and checks the soundness contract of the running bounds: the true drift
// |cᵀx − s| never exceeds BoundSafety·η, for both the practical and the
// Lemma 2 decoupling scalars.
func TestBoundChainSoundnessProperty(t *testing.T) {
	a := sparse.Laplacian2D(8, 8)
	n := a.Rows
	for _, d := range []float64{4, 64, LemmaD(a, Single)} {
		enc := EncodeMatrix(a, Single, d)
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			x := randVec(r, n)
			s := Checksums(x, Single)
			eta := []float64{float64(n) * Eps * Ones.Apply(abs(x))}
			y := make([]float64, n)
			sy := make([]float64, 1)
			etaY := make([]float64, 1)
			for step := 0; step < 30; step++ {
				switch step % 3 {
				case 0: // y = A x
					a.MulVec(y, x)
					enc.UpdateMVMBound(sy, etaY, x, s, eta)
					copy(x, y)
					copy(s, sy)
					copy(eta, etaY)
				case 1: // scale to keep magnitudes bounded
					alpha := 0.05 + r.Float64()
					for i := range x {
						x[i] *= alpha
					}
					s[0] *= alpha
					eta[0] *= alpha
				case 2: // axpy with a fresh random vector
					z := randVec(r, n)
					sz := Checksums(z, Single)
					etaZ := []float64{float64(n) * Eps * Ones.Apply(abs(z))}
					beta := r.NormFloat64()
					for i := range x {
						x[i] += beta * z[i]
					}
					UpdateVLOAxpyBound(s, eta, beta, sz, etaZ)
				}
				drift := math.Abs(Ones.Apply(x) - s[0])
				if drift > BoundSafety*eta[0]+1e-300 {
					t.Logf("d=%g step=%d drift %v > bound %v", d, step, drift, BoundSafety*eta[0])
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatalf("d=%g: %v", d, err)
		}
	}
}

// TestDiagnosisRobustToFloatNoise: real deltas carry round-off from the
// checksum computations; the classification must survive relative noise up
// to ~1e-9 on every component.
func TestDiagnosisRobustToFloatNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(300)
		pos := r.Intn(n)
		mag := 1 + r.Float64()*1e5
		d := makeDeltas([]int{pos}, []float64{mag})
		for k := range d {
			d[k] *= 1 + 1e-9*r.NormFloat64()
		}
		diag := Diagnose(d, n, refs(n), Tol{})
		return diag.Kind == SingleError && diag.Pos == pos
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
