package checksum

import (
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// Traditional is the Huang–Abraham column-checksum encoding (§2): the matrix
// is augmented with the row cᵀA, so an encoded MVM computes
// checksum(y) = (cᵀA)·x alongside y = A·x. Verifying cᵀy against that value
// catches arithmetic errors in the multiplication — but, as §2 shows, it is
// blind to corruption of the input vector x, because both sides are computed
// from the same corrupted x. The online-MV baseline (Sloan-style) is built
// on this encoding.
type Traditional struct {
	N       int
	Weights []Weight
	// Rows[k] is the dense row c_kᵀA.
	Rows [][]float64
}

// EncodeTraditional computes cᵀA for each weight.
func EncodeTraditional(a *sparse.CSR, weights []Weight) *Traditional {
	if a.Rows != a.Cols {
		panic("checksum: EncodeTraditional requires a square matrix")
	}
	t := &Traditional{N: a.Rows, Weights: weights, Rows: make([][]float64, len(weights))}
	for k, w := range weights {
		row := make([]float64, a.Cols)
		for i := 0; i < a.Rows; i++ {
			ci := w.At(i)
			cols, vals := a.RowView(i)
			for s, j := range cols {
				row[j] += ci * vals[s]
			}
		}
		t.Rows[k] = row
	}
	return t
}

// ExpectedMVM returns the encoded checksums (c_kᵀA)·x of the product A·x,
// the quantity the traditional scheme compares cᵀy against.
func (t *Traditional) ExpectedMVM(dst []float64, x []float64) {
	if len(x) != t.N {
		panic("checksum: vector length mismatch in ExpectedMVM")
	}
	if len(dst) != len(t.Weights) {
		panic("checksum: checksum slot mismatch in ExpectedMVM")
	}
	for k, row := range t.Rows {
		dst[k] = vec.Dot(row, x)
	}
}

// VerifyMVM checks cᵀy against the encoded (cᵀA)x for every weight and
// reports whether the product passes. With a corrupted input x this check
// passes even though y is wrong — the failure mode that motivates the
// new-sum encoding.
func (t *Traditional) VerifyMVM(y, x []float64, tol Tol) bool {
	exp := make([]float64, len(t.Weights))
	t.ExpectedMVM(exp, x)
	for k, w := range t.Weights {
		delta := w.Apply(y) - exp[k]
		if tol.Inconsistent(delta, t.N, exp[k]) {
			return false
		}
	}
	return true
}

// SegmentChecksum returns c_kᵀ(A·x) restricted to output rows [lo, hi),
// computed from A directly: sum over rows i in [lo,hi) of c_i·(A x)_i.
// The online-MV baseline uses segment checksums during its binary-search
// localization; computing one costs a partial MVM over the segment.
func SegmentChecksum(a *sparse.CSR, w Weight, x []float64, lo, hi int) float64 {
	var s float64
	for i := lo; i < hi; i++ {
		cols, vals := a.RowView(i)
		var yi float64
		for t, j := range cols {
			yi += vals[t] * x[j]
		}
		s += w.At(i) * yi
	}
	return s
}
