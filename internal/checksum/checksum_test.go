package checksum

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"newsum/internal/sparse"
)

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestWeightValues(t *testing.T) {
	if Ones.At(5) != 1 {
		t.Fatalf("Ones")
	}
	if Linear.At(0) != 1 || Linear.At(9) != 10 {
		t.Fatalf("Linear")
	}
	if Harmonic.At(0) != 1 || Harmonic.At(3) != 0.25 {
		t.Fatalf("Harmonic")
	}
}

func TestWeightRange(t *testing.T) {
	for _, tc := range []struct {
		w        Weight
		n        int
		min, max float64
	}{
		{Ones, 10, 1, 1},
		{Linear, 10, 1, 10},
		{Harmonic, 10, 0.1, 1},
	} {
		lo, hi := tc.w.Range(tc.n)
		if lo != tc.min || hi != tc.max {
			t.Errorf("%s.Range(%d) = (%v, %v), want (%v, %v)", tc.w.Name, tc.n, lo, hi, tc.min, tc.max)
		}
	}
	// Custom weight falls back to the scan path.
	w := Weight{Name: "custom", At: func(i int) float64 { return float64(i%3) - 1.5 }}
	lo, hi := w.Range(6)
	if lo != 0.5 || hi != 1.5 {
		t.Errorf("custom Range: (%v, %v)", lo, hi)
	}
}

func TestApplyAndChecksums(t *testing.T) {
	x := []float64{1, 2, 3}
	if got := Ones.Apply(x); got != 6 {
		t.Fatalf("Ones.Apply: %v", got)
	}
	if got := Linear.Apply(x); got != 1+4+9 {
		t.Fatalf("Linear.Apply: %v", got)
	}
	s := Checksums(x, Triple)
	if len(s) != 3 || s[0] != 6 {
		t.Fatalf("Checksums: %v", s)
	}
}

func TestLemmaDAndPracticalD(t *testing.T) {
	a := sparse.Laplacian2D(5, 5)
	d := LemmaD(a, Triple)
	// Lemma bound: d > n·‖c‖∞·‖A‖∞/min(c). For Linear on n=25, ‖A‖∞=8:
	// bound = 25·25·8 = 5000 (Harmonic gives the same).
	if d <= 5000 {
		t.Fatalf("LemmaD %v below the Lemma 2 bound", d)
	}
	// Power of two for exact arithmetic.
	if math.Exp2(math.Round(math.Log2(d))) != d {
		t.Fatalf("LemmaD %v not a power of two", d)
	}
	p := PracticalD(a)
	if p <= 1 || p > 64 {
		t.Fatalf("PracticalD %v outside its design range (2..64]", p)
	}
	if math.Exp2(math.Round(math.Log2(p))) != p {
		t.Fatalf("PracticalD %v not a power of two", p)
	}
}

// TestLemma1MVM pins the Lemma 1 identity for MVM:
// checksum(w) − cᵀw = d·(checksum(u) − cᵀu).
func TestLemma1MVM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := sparse.Laplacian2D(6, 6)
	const d = 64
	enc := EncodeMatrix(a, Triple, d)
	u := randVec(rng, a.Rows)
	su := Checksums(u, Triple)
	// Perturb the carried checksum to create a known input inconsistency.
	delta := []float64{0.5, -2, 1.25}
	for k := range su {
		su[k] += delta[k]
	}
	w := make([]float64, a.Rows)
	a.MulVec(w, u)
	sw := make([]float64, 3)
	enc.UpdateMVM(sw, u, su)
	for k, wt := range Triple {
		gap := sw[k] - wt.Apply(w)
		want := d * delta[k]
		if math.Abs(gap-want) > 1e-6*math.Abs(want) {
			t.Errorf("weight %s: gap %v, want %v", wt.Name, gap, want)
		}
	}
}

// TestLemma1PCO pins the PCO identity:
// checksum(w) − cᵀw = (checksum(u) − cᵀu)/d, using the sign-corrected
// Eq. (4) (see DESIGN.md §2).
func TestLemma1PCO(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Use a well-conditioned SPD "preconditioner" M and solve M w = u.
	m := sparse.Tridiag(30, -1, 4, -1)
	const d = 128
	enc := EncodeMatrix(m, Triple, d)
	w := randVec(rng, 30)
	u := make([]float64, 30)
	m.MulVec(u, w) // so that w = M⁻¹u exactly up to round-off
	su := Checksums(u, Triple)
	delta := []float64{3, -1, 0.5}
	for k := range su {
		su[k] += delta[k]
	}
	sw := make([]float64, 3)
	enc.UpdatePCO(sw, w, su)
	for k, wt := range Triple {
		gap := sw[k] - wt.Apply(w)
		want := delta[k] / d
		if math.Abs(gap-want) > 1e-9+1e-6*math.Abs(want) {
			t.Errorf("weight %s: gap %v, want %v", wt.Name, gap, want)
		}
	}
}

// TestLemma1VLO pins the VLO identities of Eq. (3).
func TestLemma1VLO(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randVec(rng, 40)
	y := randVec(rng, 40)
	sx := Checksums(x, Triple)
	sy := Checksums(y, Triple)
	alpha, beta := 1.7, -0.3

	z := make([]float64, 40)
	for i := range z {
		z[i] = alpha*x[i] + beta*y[i]
	}
	sz := make([]float64, 3)
	UpdateVLOAxpby(sz, alpha, sx, beta, sy)
	for k, wt := range Triple {
		if math.Abs(sz[k]-wt.Apply(z)) > 1e-10*(1+math.Abs(sz[k])) {
			t.Errorf("axpby weight %s: %v vs %v", wt.Name, sz[k], wt.Apply(z))
		}
	}

	sw := make([]float64, 3)
	UpdateVLOScale(sw, alpha, sx)
	for k := range sw {
		if sw[k] != alpha*sx[k] {
			t.Errorf("scale update wrong")
		}
	}

	syc := append([]float64(nil), sy...)
	UpdateVLOAxpy(syc, alpha, sx)
	for k := range syc {
		if math.Abs(syc[k]-(sy[k]+alpha*sx[k])) > 1e-12*(1+math.Abs(syc[k])) {
			t.Errorf("axpy update wrong")
		}
	}
}

// TestLemma2ArithmeticDetection: an error in the MVM output breaks the
// checksum relationship.
func TestLemma2ArithmeticDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := sparse.Laplacian2D(5, 5)
	enc := EncodeMatrix(a, Single, 64)
	u := randVec(rng, a.Rows)
	su := Checksums(u, Single)
	w := make([]float64, a.Rows)
	a.MulVec(w, u)
	sw := make([]float64, 1)
	enc.UpdateMVM(sw, u, su)
	w[7] += 1000 // arithmetic error
	delta := Delta1(w, Ones, sw[0])
	if (Tol{}).ConsistentAbs(delta, a.Rows, 1000) {
		t.Fatalf("arithmetic error escaped: delta %v", delta)
	}
}

// TestLemma2MemoryDetection: a corrupted input with a stale checksum breaks
// the output relationship by d·cᵀe.
func TestLemma2MemoryDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := sparse.Laplacian2D(5, 5)
	const d = 64
	enc := EncodeMatrix(a, Single, d)
	u := randVec(rng, a.Rows)
	su := Checksums(u, Single) // checksum taken before the flip
	u[3] += 500                // memory bit flip after checksum capture
	w := make([]float64, a.Rows)
	a.MulVec(w, u)
	sw := make([]float64, 1)
	enc.UpdateMVM(sw, u, su)
	delta := Ones.Apply(w) - sw[0]
	// Expected inconsistency: −d·cᵀe = −64·500 (up to the A-column term).
	if math.Abs(delta) < 1000 {
		t.Fatalf("memory error signature too small: %v", delta)
	}
}

// TestTraditionalBlindToInputCorruption reproduces the §2 argument: the
// Huang–Abraham encoding verifies even when the MVM input is corrupted.
func TestTraditionalBlindToInputCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := sparse.Laplacian2D(5, 5)
	tr := EncodeTraditional(a, Single)
	x := randVec(rng, a.Rows)
	x[11] += 1e6 // corrupted BEFORE the operation
	y := make([]float64, a.Rows)
	a.MulVec(y, x)
	if !tr.VerifyMVM(y, x, Tol{}) {
		t.Fatalf("traditional checksum should verify (blind) with corrupted input")
	}
	// Whereas an output error IS caught.
	y[3] += 1e6
	if tr.VerifyMVM(y, x, Tol{}) {
		t.Fatalf("traditional checksum missed an output error")
	}
}

// TestNewSumDetectsInputCorruption is the contrast to the traditional
// scheme: with the new-sum separated checksums, the same input corruption
// surfaces in the output relationship.
func TestNewSumDetectsInputCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := sparse.Laplacian2D(5, 5)
	enc := EncodeMatrix(a, Single, 64)
	x := randVec(rng, a.Rows)
	sx := Checksums(x, Single)
	x[11] += 1e6
	y := make([]float64, a.Rows)
	a.MulVec(y, x)
	sy := make([]float64, 1)
	enc.UpdateMVM(sy, x, sx)
	delta := Ones.Apply(y) - sy[0]
	if (Tol{}).ConsistentAbs(delta, a.Rows, Ones.Apply(y)) {
		t.Fatalf("new-sum encoding missed the input corruption")
	}
}

func TestSegmentChecksum(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := sparse.Laplacian2D(4, 4)
	x := randVec(rng, a.Rows)
	y := make([]float64, a.Rows)
	a.MulVec(y, x)
	whole := SegmentChecksum(a, Ones, x, 0, a.Rows)
	if math.Abs(whole-Ones.Apply(y)) > 1e-10 {
		t.Fatalf("segment checksum of full range: %v vs %v", whole, Ones.Apply(y))
	}
	lo := SegmentChecksum(a, Ones, x, 0, 8)
	hi := SegmentChecksum(a, Ones, x, 8, a.Rows)
	if math.Abs(lo+hi-whole) > 1e-10 {
		t.Fatalf("segments don't sum: %v + %v vs %v", lo, hi, whole)
	}
}

func TestEncodePanics(t *testing.T) {
	rect := sparse.NewCOO(2, 3).ToCSR()
	for name, fn := range map[string]func(){
		"rectangular": func() { EncodeMatrix(rect, Single, 2) },
		"zero d":      func() { EncodeMatrix(sparse.Identity(2), Single, 0) },
		"no weights":  func() { EncodeMatrix(sparse.Identity(2), nil, 2) },
		"rect (trad)": func() { EncodeTraditional(rect, Single) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixString(t *testing.T) {
	enc := EncodeMatrix(sparse.Identity(3), Double, 8)
	if enc.String() == "" || enc.NumChecksums() != 2 {
		t.Fatalf("descriptor broken: %q", enc.String())
	}
}

// Property: the MVM update commutes with vector addition — checksums form a
// linear code, the algebra the whole scheme rests on.
func TestUpdateLinearityProperty(t *testing.T) {
	a := sparse.Laplacian2D(4, 4)
	enc := EncodeMatrix(a, Single, 32)
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := randVec(r, a.Rows)
		v := randVec(r, a.Rows)
		su := Checksums(u, Single)
		sv := Checksums(v, Single)
		// Update of (u+v) must equal sum of updates.
		uv := make([]float64, a.Rows)
		for i := range uv {
			uv[i] = u[i] + v[i]
		}
		suv := make([]float64, 1)
		UpdateVLOAxpby(suv, 1, su, 1, sv)
		out1 := make([]float64, 1)
		enc.UpdateMVM(out1, uv, suv)
		outU := make([]float64, 1)
		outV := make([]float64, 1)
		enc.UpdateMVM(outU, u, su)
		enc.UpdateMVM(outV, v, sv)
		return math.Abs(out1[0]-(outU[0]+outV[0])) < 1e-8*(1+math.Abs(out1[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
