package checksum

import (
	"fmt"

	"newsum/internal/sparse"
)

// Distributed checksum splitting.
//
// A row-partitioned solver keeps only rows [lo, hi) of every vector, yet the
// new-sum relationships are global: checksum(v) = Σ_i c_i·v_i runs over all
// ranks' blocks, and the encoded matrix row checksum(A) = cᵀA − d·cᵀ mixes
// contributions from every rank's rows. The helpers here split both objects
// along the partition so each rank can carry exactly its additive share:
//
//   - ShiftWeight gives the rank-local view of the global weight vector, so
//     locally encoded stage matrices (block preconditioners) produce exactly
//     the rank's slice of the global checksum rows.
//   - PartialMatrixRow accumulates one rank's rows' contribution to cᵀA;
//     all-reducing the partials over the team yields the full dense row.
//   - LocalRowSlice then carves the rank's [lo, hi) slice of cᵀA − d·cᵀ out
//     of the reduced row, which is all a rank needs to run the Eq. (2) MVM
//     update on its own block: the per-rank partial updates sum to the
//     global rule, so verification still needs only scalar all-reductions.

// ShiftWeight returns the weight evaluated at a fixed global offset:
// ShiftWeight(c, lo).At(i) = c.At(lo+i). A rank owning rows [lo, hi) uses
// the shifted weight wherever a serial solver would index the global
// checksum vector with local indices.
func ShiftWeight(w Weight, offset int) Weight {
	if offset == 0 {
		return w
	}
	at := w.At
	return Weight{
		Name: fmt.Sprintf("%s@%d", w.Name, offset),
		At:   func(i int) float64 { return at(offset + i) },
	}
}

// PartialMatrixRow accumulates rows [lo, hi)'s contribution to the dense
// product cᵀA into full (length a.Cols). It does not zero full first, so a
// caller can fold several row ranges into one buffer; the sum of all ranks'
// partials over a full partition equals the complete cᵀA.
func PartialMatrixRow(a *sparse.CSR, w Weight, lo, hi int, full []float64) {
	if len(full) != a.Cols {
		panic("checksum: buffer length mismatch in PartialMatrixRow")
	}
	if lo < 0 || hi > a.Rows || lo > hi {
		panic("checksum: row range out of bounds in PartialMatrixRow")
	}
	for i := lo; i < hi; i++ {
		ci := w.At(i)
		cols, vals := a.RowView(i)
		for t, j := range cols {
			full[j] += ci * vals[t]
		}
	}
}

// LocalRowSlice carves the [lo, hi) slice of the encoded row cᵀA − d·cᵀ out
// of the complete (already reduced) dense product full = cᵀA. The returned
// slice is freshly allocated; for a full partition the concatenation of all
// ranks' slices is exactly the EncodeMatrix row.
func LocalRowSlice(full []float64, w Weight, d float64, lo, hi int) []float64 {
	if lo < 0 || hi > len(full) || lo > hi {
		panic("checksum: slice range out of bounds in LocalRowSlice")
	}
	row := make([]float64, hi-lo)
	for j := range row {
		row[j] = full[lo+j] - d*w.At(lo+j)
	}
	return row
}
