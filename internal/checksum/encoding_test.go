package checksum

import (
	"math"
	"testing"

	"newsum/internal/sparse"
)

// TestEncodingBitForBit is the cache-reuse contract: an Encoding derived
// once and reused must be bit-for-bit identical to the rows a solve would
// have computed freshly. Any divergence — even one ULP — would make cached
// and fresh solves follow different verification arithmetic.
func TestEncodingBitForBit(t *testing.T) {
	a := sparse.CircuitLike(400, 7)
	enc := NewEncoding(a, 0)
	d := PracticalD(a)
	if math.Float64bits(enc.D) != math.Float64bits(d) {
		t.Fatalf("Encoding pinned d=%g, fresh derivation gives %g", enc.D, d)
	}

	for _, ws := range [][]Weight{Single, Double, Triple} {
		fresh := EncodeMatrix(a, ws, d)
		cached := enc.Matrix(ws)
		if len(cached.Rows) != len(fresh.Rows) {
			t.Fatalf("weight set size %d: cached %d rows, fresh %d", len(ws), len(cached.Rows), len(fresh.Rows))
		}
		for k := range fresh.Rows {
			for i := range fresh.Rows[k] {
				if math.Float64bits(cached.Rows[k][i]) != math.Float64bits(fresh.Rows[k][i]) {
					t.Fatalf("weight %s row element %d: cached %x fresh %x",
						ws[k].Name, i,
						math.Float64bits(cached.Rows[k][i]), math.Float64bits(fresh.Rows[k][i]))
				}
			}
		}
	}

	freshDiag := EncodeTraditional(a, []Weight{Linear, Harmonic})
	for k := range freshDiag.Rows {
		for i := range freshDiag.Rows[k] {
			if math.Float64bits(enc.Diag().Rows[k][i]) != math.Float64bits(freshDiag.Rows[k][i]) {
				t.Fatalf("diag row %d element %d differs from fresh derivation", k, i)
			}
		}
	}
}

// TestEncodingDeterministic asserts two independent derivations agree via
// EqualBits — the admission check the service cache runs before trusting a
// stored encoding.
func TestEncodingDeterministic(t *testing.T) {
	a := sparse.Laplacian2D(17, 19)
	e1 := NewEncoding(a, 0)
	e2 := NewEncoding(a, 0)
	if !e1.EqualBits(e2) {
		t.Fatal("two derivations of the same operator are not bit-for-bit identical")
	}
	if e1.EqualBits(nil) {
		t.Fatal("EqualBits(nil) must be false")
	}
	// A single flipped mantissa bit in one row must be caught.
	e2.mat.Rows[1][5] = math.Float64frombits(math.Float64bits(e2.mat.Rows[1][5]) ^ 1)
	if e1.EqualBits(e2) {
		t.Fatal("EqualBits missed a one-ULP corruption in a checksum row")
	}
	// Corruption confined to the diagnosis rows must also be caught.
	e3 := NewEncoding(a, 0)
	e3.diag.Rows[0][3] = math.Float64frombits(math.Float64bits(e3.diag.Rows[0][3]) ^ 1)
	if e1.EqualBits(e3) {
		t.Fatal("EqualBits missed a corruption in the diagnosis rows")
	}
	// Different decoupling scalars are different encodings.
	if e1.EqualBits(NewEncoding(a, 16*e1.D)) {
		t.Fatal("EqualBits conflated encodings with different d")
	}
}

// TestEncodingMatrixValidatesWeights pins the prefix contract: only weight
// sets that are a prefix of Triple can view the precomputed rows.
func TestEncodingMatrixValidatesWeights(t *testing.T) {
	enc := NewEncoding(sparse.Laplacian2D(5, 5), 0)
	for _, bad := range [][]Weight{nil, {}, {Linear}, {Ones, Harmonic}, {Ones, Linear, Harmonic, Ones}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weight set %v: expected panic", bad)
				}
			}()
			enc.Matrix(bad)
		}()
	}
}
