package checksum

import (
	"fmt"
	"math"

	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// Matrix holds the new-sum encoding of a square matrix A for a set of
// checksum weights: one dense row checksum(A) = cᵀA − d·cᵀ per weight
// (Fig. 2(c)), plus the shared decoupling scalar d. The rows are kept
// separate from A itself (Fig. 2(d)) so the original operation — and, for
// SPD matrices, symmetry — is untouched, and the output vector's checksums
// are computed directly from the inputs' checksums.
type Matrix struct {
	N       int
	D       float64
	Weights []Weight
	// Rows[k] is the length-N dense vector (c_kᵀA − d·c_kᵀ).
	Rows [][]float64
}

// EncodeMatrix computes the new-sum checksum rows of a for each weight with
// decoupling scalar d. Cost: one pass over the nonzeros per weight, O(nnz).
func EncodeMatrix(a *sparse.CSR, weights []Weight, d float64) *Matrix {
	if a.Rows != a.Cols {
		panic("checksum: EncodeMatrix requires a square matrix")
	}
	//lint:ignore floatcmp validates a caller-supplied exact value, not computed data
	if d == 0 {
		panic("checksum: decoupling scalar d must be non-zero")
	}
	if len(weights) == 0 {
		panic("checksum: at least one weight required")
	}
	m := &Matrix{N: a.Rows, D: d, Weights: weights, Rows: make([][]float64, len(weights))}
	for k, w := range weights {
		row := make([]float64, a.Cols)
		// cᵀA: accumulate c_i * a_ij into column j.
		for i := 0; i < a.Rows; i++ {
			ci := w.At(i)
			cols, vals := a.RowView(i)
			for t, j := range cols {
				row[j] += ci * vals[t]
			}
		}
		// − d·cᵀ densifies the row.
		for j := range row {
			row[j] -= d * w.At(j)
		}
		m.Rows[k] = row
	}
	return m
}

// NumChecksums returns the number of encoded checksum rows.
func (m *Matrix) NumChecksums() int { return len(m.Weights) }

// UpdateMVM computes the output checksums of w := A·u from the input
// checksums su, per Eq. (2): checksum_k(w) = Rows[k]·u + d·su[k].
// The result is written to dst, which must have one slot per weight.
// Cost: one dense dot of length N per weight — O(N), independent of nnz.
//
//hot:loop Eq. (2) MVM checksum update on the protected solve path
func (m *Matrix) UpdateMVM(dst []float64, u []float64, su []float64) {
	if len(u) != m.N {
		panic("checksum: vector length mismatch in UpdateMVM")
	}
	if len(dst) != len(m.Weights) || len(su) != len(m.Weights) {
		panic("checksum: checksum slot mismatch in UpdateMVM")
	}
	for k, row := range m.Rows {
		dst[k] = vec.Dot(row, u) + m.D*su[k]
	}
}

// UpdatePCO computes the output checksums of the preconditioned solve
// M·w = u from the input checksums su and the computed solution w, per the
// (sign-corrected) Eq. (4): checksum_k(w) = (su[k] − Rows[k]·w) / d, where
// Rows encodes M. See DESIGN.md §2 for the derivation; this form satisfies
// Lemma 1's identity checksum(w) − cᵀw = (checksum(u) − cᵀu)/d.
//
//hot:loop Eq. (4) PCO checksum update on the protected solve path
func (m *Matrix) UpdatePCO(dst []float64, w []float64, su []float64) {
	if len(w) != m.N {
		panic("checksum: vector length mismatch in UpdatePCO")
	}
	if len(dst) != len(m.Weights) || len(su) != len(m.Weights) {
		panic("checksum: checksum slot mismatch in UpdatePCO")
	}
	for k, row := range m.Rows {
		dst[k] = (su[k] - vec.Dot(row, w)) / m.D
	}
}

// UpdateVLOAxpby computes the checksums of z := alpha·x + beta·y from the
// operand checksums, per Eq. (3). O(1) per weight. dst may alias sx or sy.
//
//hot:loop Eq. (3) VLO checksum update on the protected solve path
func UpdateVLOAxpby(dst []float64, alpha float64, sx []float64, beta float64, sy []float64) {
	if len(dst) != len(sx) || len(dst) != len(sy) {
		panic("checksum: checksum slot mismatch in UpdateVLOAxpby")
	}
	for k := range dst {
		dst[k] = alpha*sx[k] + beta*sy[k]
	}
}

// UpdateVLOScale computes the checksums of w := alpha·u. dst may alias su.
//
//hot:loop Eq. (3) scaling update on the protected solve path
func UpdateVLOScale(dst []float64, alpha float64, su []float64) {
	if len(dst) != len(su) {
		panic("checksum: checksum slot mismatch in UpdateVLOScale")
	}
	for k := range dst {
		dst[k] = alpha * su[k]
	}
}

// UpdateVLOAxpy computes the checksums of y := y + alpha·x in place on sy.
//
//hot:loop Eq. (3) in-place axpy update on the protected solve path
func UpdateVLOAxpy(sy []float64, alpha float64, sx []float64) {
	if len(sy) != len(sx) {
		panic("checksum: checksum slot mismatch in UpdateVLOAxpy")
	}
	for k := range sy {
		sy[k] += alpha * sx[k]
	}
}

// Eps is the double-precision machine epsilon used by the running
// round-off bounds below.
const Eps = 2.220446049250313e-16

// The Bound variants of the update rules additionally propagate a
// first-order round-off bound η for each checksum, following the standard
// model |fl(Σaᵢ) − Σaᵢ| ≤ depth·ε·Σ|aᵢ| where depth is the length of the
// longest accumulation chain. With vec's fixed-block pairwise reductions
// the chain is Block + ⌈log₂ blocks⌉ rather than n, so the η band — and
// with it the near-τ false-positive zone — stops growing linearly in n.
// The decoupling scalar d amplifies the update's round-off (the d·cᵀu
// terms cancel analytically but not in floating point), so a fixed θ
// threshold misfires once depth·ε·d approaches θ; verifying against
// max(θ·scale, K·η) keeps detection sound at any n and d. This
// running-bound machinery is an extension over the paper's fixed
// θ = 1e-10 rule (see DESIGN.md §2).

// ReduceEps returns depth·ε for a length-n blocked pairwise reduction:
// depth = Block + ⌈log₂ Blocks(n)⌉ + 2 (the naive chain inside a leaf
// block, the pairwise tree above it, one rounding for the elementwise
// product, and one slack level), capped at n so the bound never exceeds
// the classical naive-summation bound at small n.
func ReduceEps(n int) float64 {
	depth := vec.Block + 2
	for b := vec.Blocks(n); b > 1; b = (b + 1) / 2 {
		depth++
	}
	if depth > n {
		depth = n
	}
	return float64(depth) * Eps
}

// UpdateMVMBound is UpdateMVM plus η propagation:
// η_out = |d|·η_in + depth·ε·(Σ|row_i·u_i| + |d·su|).
//
//hot:loop Eq. (2) update with eta propagation on the protected solve path
func (m *Matrix) UpdateMVMBound(dst, etaDst []float64, u []float64, su, etaSrc []float64) {
	if len(u) != m.N {
		panic("checksum: vector length mismatch in UpdateMVMBound")
	}
	if len(dst) != len(m.Weights) || len(su) != len(m.Weights) ||
		len(etaDst) != len(m.Weights) || len(etaSrc) != len(m.Weights) {
		panic("checksum: checksum slot mismatch in UpdateMVMBound")
	}
	for k, row := range m.Rows {
		s, abs := vec.DotAbs(row, u)
		m.foldMVMBound(k, dst, etaDst, s, abs, su, etaSrc)
	}
}

// foldMVMBound folds one weight's precomputed row reduction (s, abs) =
// (Rows[k]·u, Σ|Rows[k]_i·u_i|) into the Eq. (2) update and its η bound.
// The accumulation-depth term uses the blocked pairwise bound
// (Block + ⌈log₂ blocks⌉)·ε rather than n·ε: vec's reductions guarantee it.
func (m *Matrix) foldMVMBound(k int, dst, etaDst []float64, s, abs float64, su, etaSrc []float64) {
	dst[k] = s + m.D*su[k]
	etaDst[k] = math.Abs(m.D)*etaSrc[k] + ReduceEps(m.N)*(abs+math.Abs(m.D*su[k]))
}

// UpdateMVMBoundFrom is UpdateMVMBound with the O(n) row reductions already
// in hand — rowSum[k] and rowAbs[k] must be exactly vec.DotAbs(Rows[k], u).
// internal/kernel computes them with its worker pool (bitwise-identical to
// the serial reduction by the vec block-tree contract) and feeds them
// through the same bound formulas here.
//
//hot:loop Eq. (2) update fed by pooled kernels on the protected solve path
func (m *Matrix) UpdateMVMBoundFrom(dst, etaDst, rowSum, rowAbs, su, etaSrc []float64) {
	if len(dst) != len(m.Weights) || len(su) != len(m.Weights) ||
		len(etaDst) != len(m.Weights) || len(etaSrc) != len(m.Weights) ||
		len(rowSum) != len(m.Weights) || len(rowAbs) != len(m.Weights) {
		panic("checksum: checksum slot mismatch in UpdateMVMBoundFrom")
	}
	for k := range m.Rows {
		m.foldMVMBound(k, dst, etaDst, rowSum[k], rowAbs[k], su, etaSrc)
	}
}

// UpdatePCOBound is UpdatePCO plus η propagation:
// η_out = (η_in + depth·ε·(Σ|row_i·w_i| + |su|)) / |d|.
//
//hot:loop Eq. (4) update with eta propagation on the protected solve path
func (m *Matrix) UpdatePCOBound(dst, etaDst []float64, w []float64, su, etaSrc []float64) {
	if len(w) != m.N {
		panic("checksum: vector length mismatch in UpdatePCOBound")
	}
	if len(dst) != len(m.Weights) || len(su) != len(m.Weights) ||
		len(etaDst) != len(m.Weights) || len(etaSrc) != len(m.Weights) {
		panic("checksum: checksum slot mismatch in UpdatePCOBound")
	}
	for k, row := range m.Rows {
		s, abs := vec.DotAbs(row, w)
		m.foldPCOBound(k, dst, etaDst, s, abs, su, etaSrc)
	}
}

// foldPCOBound folds one weight's precomputed row reduction into the
// Eq. (4) update and its η bound.
func (m *Matrix) foldPCOBound(k int, dst, etaDst []float64, s, abs float64, su, etaSrc []float64) {
	dst[k] = (su[k] - s) / m.D
	etaDst[k] = (etaSrc[k] + ReduceEps(m.N)*(abs+math.Abs(su[k]))) / math.Abs(m.D)
}

// UpdatePCOBoundFrom is UpdatePCOBound with the row reductions precomputed;
// rowSum[k] and rowAbs[k] must be exactly vec.DotAbs(Rows[k], w).
//
//hot:loop Eq. (4) update fed by pooled kernels on the protected solve path
func (m *Matrix) UpdatePCOBoundFrom(dst, etaDst, rowSum, rowAbs, su, etaSrc []float64) {
	if len(dst) != len(m.Weights) || len(su) != len(m.Weights) ||
		len(etaDst) != len(m.Weights) || len(etaSrc) != len(m.Weights) ||
		len(rowSum) != len(m.Weights) || len(rowAbs) != len(m.Weights) {
		panic("checksum: checksum slot mismatch in UpdatePCOBoundFrom")
	}
	for k := range m.Rows {
		m.foldPCOBound(k, dst, etaDst, rowSum[k], rowAbs[k], su, etaSrc)
	}
}

// UpdateVLOAxpbyBound is UpdateVLOAxpby plus η propagation.
//
//hot:loop Eq. (3) update with eta propagation on the protected solve path
func UpdateVLOAxpbyBound(dst, etaDst []float64, alpha float64, sx, etaX []float64, beta float64, sy, etaY []float64) {
	for k := range dst {
		dst[k] = alpha*sx[k] + beta*sy[k]
		etaDst[k] = math.Abs(alpha)*etaX[k] + math.Abs(beta)*etaY[k] +
			4*Eps*(math.Abs(alpha*sx[k])+math.Abs(beta*sy[k]))
	}
}

// UpdateVLOAxpyBound is UpdateVLOAxpy plus η propagation (in place on sy).
//
//hot:loop Eq. (3) in-place update with eta propagation on the protected solve path
func UpdateVLOAxpyBound(sy, etaY []float64, alpha float64, sx, etaX []float64) {
	for k := range sy {
		sy[k] += alpha * sx[k]
		etaY[k] += math.Abs(alpha)*etaX[k] + 4*Eps*(math.Abs(sy[k])+math.Abs(alpha*sx[k]))
	}
}

// UpdateVLOScaleBound is UpdateVLOScale plus η propagation: the scaled
// source bound α·η plus the rounding of the k multiplications themselves,
// bounded by 2ε|dst[k]|.
//
//hot:loop Eq. (3) scaling update on the protected solve path
func UpdateVLOScaleBound(dst, etaDst []float64, alpha float64, su, etaSrc []float64) {
	for k := range dst {
		dst[k] = alpha * su[k]
		etaDst[k] = math.Abs(alpha)*etaSrc[k] + 2*Eps*math.Abs(dst[k])
	}
}

// Anchor re-bases checksum slot k to a freshly measured weighted sum: the
// carried checksum becomes the measurement and its round-off bound resets
// to the single-reduction bound ReduceEps(n)·Σ|c_i·v_i|. This is the one
// sanctioned raw write to carried checksum state — verification paths that
// pass (engine.verify, the inner-level probes) re-anchor through it so the
// η band cannot compound across verification windows, and checksumguard
// can insist every other mutation of protected state flows through the
// Eq. (2)–(4) update kernels.
//
//hot:loop verification re-anchor on the protected solve path
func Anchor(s, eta []float64, k int, sum, absSum float64, n int) {
	s[k] = sum
	eta[k] = ReduceEps(n) * absSum
}

// Deltas computes δ_k = c_kᵀy − expected[k] for every weight: the checksum
// inconsistencies of vector y against its carried checksums. In the absence
// of errors every δ is round-off-small (Lemma 1); any soft error before or
// during the producing operation breaks at least δ1 (Lemma 2 / Theorem 3).
func Deltas(y []float64, weights []Weight, expected []float64) []float64 {
	if len(weights) != len(expected) {
		panic("checksum: weight/expected length mismatch in Deltas")
	}
	d := make([]float64, len(weights))
	for k, w := range weights {
		d[k] = w.Apply(y) - expected[k]
	}
	return d
}

// Delta1 computes only δ1 = c1ᵀy − expected1, the cheap single-checksum
// detection probe the inner level runs after every MVM (§5.3 step 7a).
//
//hot:loop per-MVM single-checksum detection probe (Sec. 5.3 step 7a)
func Delta1(y []float64, w Weight, expected float64) float64 {
	return w.Apply(y) - expected
}

// String identifies the encoding for diagnostics.
func (m *Matrix) String() string {
	names := ""
	for i, w := range m.Weights {
		if i > 0 {
			names += ","
		}
		names += w.Name
	}
	return fmt.Sprintf("newsum encoding n=%d d=%g weights=[%s]", m.N, m.D, names)
}
