package checksum

// Columnwise (multi-RHS) forms of the Eq. (2)–(4) checksum updates. The
// new-sum relations are linear in the protected vector, so a block solve
// against k right-hand sides carries k independent checksum states — one
// (s, η) slot set per column — and updates them column by column from the
// SAME encoded matrix. One offline encoding (cᵀA − d·cᵀ) therefore
// amortizes across the whole batch, which is the checksum half of the
// batched multi-RHS story: the solver half (one matrix traversal feeding
// k columns) lives in kernel.MulVecBlock.
//
// Every columnwise form applies the scalar update to each column in
// column order, so column j's checksum trajectory is bitwise-identical to
// the one a single-RHS solve of that column would carry. The block
// property tests pin this: a batched update must be indistinguishable,
// bit for bit, from k independent single-RHS updates — otherwise a
// batched solve's verification thresholds would drift from the
// single-solve calibration.

// UpdateMVMBoundCols applies the Eq. (2) update with η propagation to k
// columns: dsts[j], etaDsts[j] are column j's checksum and bound slots,
// us[j] its MVM input data, sus[j]/etaSrcs[j] the input's carried state.
// Bitwise-identical per column to k calls of UpdateMVMBound.
//
//hot:loop Eq. (2) columnwise update on the batched protected solve path
func (m *Matrix) UpdateMVMBoundCols(dsts, etaDsts, us, sus, etaSrcs [][]float64) {
	if len(etaDsts) != len(dsts) || len(us) != len(dsts) ||
		len(sus) != len(dsts) || len(etaSrcs) != len(dsts) {
		panic("checksum: column count mismatch in UpdateMVMBoundCols")
	}
	for j := range dsts {
		m.UpdateMVMBound(dsts[j], etaDsts[j], us[j], sus[j], etaSrcs[j])
	}
}

// UpdatePCOBoundCols applies the Eq. (4) preconditioner-solve update with
// η propagation to k columns. Bitwise-identical per column to k calls of
// UpdatePCOBound.
//
//hot:loop Eq. (4) columnwise update on the batched protected solve path
func (m *Matrix) UpdatePCOBoundCols(dsts, etaDsts, ws, sus, etaSrcs [][]float64) {
	if len(etaDsts) != len(dsts) || len(ws) != len(dsts) ||
		len(sus) != len(dsts) || len(etaSrcs) != len(dsts) {
		panic("checksum: column count mismatch in UpdatePCOBoundCols")
	}
	for j := range dsts {
		m.UpdatePCOBound(dsts[j], etaDsts[j], ws[j], sus[j], etaSrcs[j])
	}
}

// UpdateVLOAxpyBoundCols applies the in-place Eq. (3) axpy update with η
// propagation to k columns, each with its own scalar alphas[j] (the block
// solve's per-column step lengths stay independent). Bitwise-identical
// per column to k calls of UpdateVLOAxpyBound.
//
//hot:loop Eq. (3) columnwise in-place update on the batched protected solve path
func UpdateVLOAxpyBoundCols(sys, etaYs [][]float64, alphas []float64, sxs, etaXs [][]float64) {
	if len(etaYs) != len(sys) || len(alphas) != len(sys) ||
		len(sxs) != len(sys) || len(etaXs) != len(sys) {
		panic("checksum: column count mismatch in UpdateVLOAxpyBoundCols")
	}
	for j := range sys {
		UpdateVLOAxpyBound(sys[j], etaYs[j], alphas[j], sxs[j], etaXs[j])
	}
}

// UpdateVLOAxpbyBoundCols applies the Eq. (3) axpby update with η
// propagation to k columns with per-column scalars. Bitwise-identical per
// column to k calls of UpdateVLOAxpbyBound.
//
//hot:loop Eq. (3) columnwise update on the batched protected solve path
func UpdateVLOAxpbyBoundCols(dsts, etaDsts [][]float64, alphas []float64, sxs, etaXs [][]float64,
	betas []float64, sys, etaYs [][]float64) {
	if len(etaDsts) != len(dsts) || len(alphas) != len(dsts) || len(betas) != len(dsts) ||
		len(sxs) != len(dsts) || len(etaXs) != len(dsts) ||
		len(sys) != len(dsts) || len(etaYs) != len(dsts) {
		panic("checksum: column count mismatch in UpdateVLOAxpbyBoundCols")
	}
	for j := range dsts {
		UpdateVLOAxpbyBound(dsts[j], etaDsts[j], alphas[j], sxs[j], etaXs[j], betas[j], sys[j], etaYs[j])
	}
}
