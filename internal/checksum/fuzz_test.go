package checksum

import (
	"math"
	"math/rand"
	"testing"

	"newsum/internal/sparse"
)

// Native fuzz targets for the paper's update rules: whatever inputs the
// fuzzer invents, the O(n)/O(1) checksum updates of Eq. (2) (MVM), Eq. (4)
// (PCO) and Eq. (3) (VLO) must agree with the O(n) direct recomputation of
// cᵀv on the operation's actual output, within the propagated first-order
// round-off bound. Seeds live under testdata/fuzz; ./verify.sh replays them
// on every run via `go test -run Fuzz -fuzz=^$`.

// fuzzDim maps an arbitrary fuzzed int onto a usable problem size.
func fuzzDim(n int) int {
	if n < 0 {
		n = -n
	}
	return 2 + n%48
}

// fuzzClamp maps an arbitrary fuzzed float onto a finite value in
// (-lim, lim), defaulting NaN/Inf to 1 so every fuzz input is admissible.
func fuzzClamp(v, lim float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	if math.Abs(v) >= lim {
		return math.Mod(v, lim)
	}
	return v
}

// weightedAbsSum returns Σ|c_i·v_i|, the magnitude scale of a checksum
// computation (what bounds its accumulated round-off).
func weightedAbsSum(w Weight, v []float64) float64 {
	var s float64
	for i, x := range v {
		s += math.Abs(w.At(i) * x)
	}
	return s
}

// directEta is the first-order round-off bound of computing cᵀv directly,
// used to seed the Bound update chains with an honest input η.
func directEta(n int, w Weight, v []float64) float64 {
	return float64(n) * Eps * weightedAbsSum(w, v)
}

// FuzzChecksumMVM checks the Eq. (2) MVM update and the Eq. (4) PCO update
// against direct recomputation: checksum_k(A·u) from Rows_k·u + d·su_k must
// match c_kᵀ(A·u), and the solve update (su_k − Rows_k·y)/d must match
// c_kᵀy for M·y = u, for all three weights of the two-level scheme.
func FuzzChecksumMVM(f *testing.F) {
	f.Add(int64(1), 8, 1.0)
	f.Add(int64(20160531), 33, -2.5)
	f.Add(int64(7), 47, 1e3)
	f.Add(int64(-99), 2, 1e-4)
	f.Fuzz(func(t *testing.T, seed int64, n int, scale float64) {
		nn := fuzzDim(n)
		scale = fuzzClamp(scale, 1e6)
		if scale == 0 {
			scale = 1
		}
		rng := rand.New(rand.NewSource(seed))
		a := sparse.DiagDominant(nn, 4, seed)
		u := make([]float64, nn)
		for i := range u {
			u[i] = scale * (2*rng.Float64() - 1)
		}
		d := PracticalD(a)
		su := Checksums(u, Triple)
		etaSrc := make([]float64, len(Triple))
		for k, w := range Triple {
			etaSrc[k] = directEta(nn, w, u)
		}
		tol := DefaultTol()

		// Eq. (2): w = A·u computed by the real operation, checksums by the
		// update rule from the input side only.
		enc := EncodeMatrix(a, Triple, d)
		w := make([]float64, nn)
		a.MulVec(w, u)
		got := make([]float64, len(Triple))
		eta := make([]float64, len(Triple))
		enc.UpdateMVMBound(got, eta, u, su, etaSrc)
		for k, wt := range Triple {
			want := wt.Apply(w)
			if !tol.ConsistentBound(got[k]-want, nn, weightedAbsSum(wt, w), eta[k]) {
				t.Errorf("MVM %s: update %g vs direct %g (δ=%g, η=%g)",
					wt.Name, got[k], want, got[k]-want, eta[k])
			}
		}

		// Eq. (4): diagonal solve M·y = u — invertible by construction, so
		// the reference solution is exact division.
		coo := sparse.NewCOO(nn, nn)
		diag := make([]float64, nn)
		for i := 0; i < nn; i++ {
			diag[i] = 1 + 3*rng.Float64()
			coo.Add(i, i, diag[i])
		}
		msolve := coo.ToCSR()
		y := make([]float64, nn)
		for i := range y {
			y[i] = u[i] / diag[i]
		}
		encM := EncodeMatrix(msolve, Triple, d)
		gotP := make([]float64, len(Triple))
		etaP := make([]float64, len(Triple))
		encM.UpdatePCOBound(gotP, etaP, y, su, etaSrc)
		for k, wt := range Triple {
			want := wt.Apply(y)
			if !tol.ConsistentBound(gotP[k]-want, nn, weightedAbsSum(wt, y), etaP[k]) {
				t.Errorf("PCO %s: update %g vs direct %g (δ=%g, η=%g)",
					wt.Name, gotP[k], want, gotP[k]-want, etaP[k])
			}
		}
	})
}

// FuzzDiagnoseSingleStrike checks the §5.2 localization end to end on a
// real corruption: whatever vector, position and magnitude the fuzzer
// invents, Diagnose applied to the measured inconsistencies must never
// report a SingleError at the wrong position — that is the fake-correction
// hazard, and "correcting" a healthy element is strictly worse than the
// rollback a MultipleErrors verdict falls back to. Sub-threshold magnitudes
// may legitimately come back NoError and ambiguous ones MultipleErrors;
// neither is a safety violation.
func FuzzDiagnoseSingleStrike(f *testing.F) {
	f.Add(int64(1), 8, 3, 1e4)
	f.Add(int64(42), 30, 0, -2.5)
	// Near-θ magnitude: barely above the detection threshold, where the
	// locator ratio carries the most relative round-off.
	f.Add(int64(7), 47, 46, 6e-9)
	f.Add(int64(9), 47, 1, -6e-9)
	// Denormal magnitude: far below threshold, must classify NoError.
	f.Add(int64(13), 20, 10, 5e-318)
	// Huge magnitude at the far end of the vector.
	f.Add(int64(99), 48, 47, 1e11)
	f.Fuzz(func(t *testing.T, seed int64, n, idx int, mag float64) {
		nn := fuzzDim(n)
		idx = ((idx % nn) + nn) % nn
		e := fuzzClamp(mag, 1e12)
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, nn)
		for i := range v {
			v[i] = 2*rng.Float64() - 1
		}
		s := Checksums(v, Triple)
		v[idx] += e
		deltas := make([]float64, len(Triple))
		absSums := make([]float64, len(Triple))
		for k, w := range Triple {
			deltas[k] = w.Apply(v) - s[k]
			absSums[k] = weightedAbsSum(w, v)
		}
		diag := Diagnose(deltas, nn, absSums, DefaultTol())
		if diag.Kind != SingleError {
			return
		}
		if diag.Pos != idx {
			t.Fatalf("mislocated single error: struck %d, diagnosed %d (e=%g, deltas=%v)",
				idx, diag.Pos, e, deltas)
		}
		if math.Abs(diag.Magnitude-e) > 1e-3*math.Abs(e)+1e-9 {
			t.Errorf("magnitude estimate %g for injected %g", diag.Magnitude, e)
		}
	})
}

// FuzzDiagnoseRawDeltas drives Diagnose with raw, unconstrained δ triples —
// including NaN, infinities, denormal locator ratios and near-θ values — and
// checks the hard containment invariants: no panic, and any SingleError
// verdict names an in-range position with the δ1 magnitude.
func FuzzDiagnoseRawDeltas(f *testing.F) {
	f.Add(1.0, 3.0, 1.0/3.0, 8)
	// Denormal locator ratio j = δ2/δ1: must be rejected, not mislocated.
	f.Add(1.0, 5e-324, 0.0, 16)
	f.Add(5e-324, 1.0, 5e-324, 16)
	// Near-θ deltas around the n-scaled acceptance boundary.
	f.Add(5.1e-9, 1.02e-8, 2.55e-9, 48)
	f.Add(4.7e-9, 9.4e-9, 2.35e-9, 48)
	// Non-finite inputs.
	f.Add(math.NaN(), 1.0, 1.0, 8)
	f.Add(math.Inf(1), math.Inf(-1), 0.0, 8)
	// Integral locator but failed arithmetic/harmonic-mean identity (the
	// two-equal-errors pattern that fools the double checksum).
	f.Add(2.0, 4.0, 4.0/3.0, 8)
	f.Fuzz(func(t *testing.T, d1, d2, d3 float64, n int) {
		nn := fuzzDim(n)
		deltas := []float64{d1, d2, d3}
		absSums := []float64{1, float64(nn), 1}
		diag := Diagnose(deltas, nn, absSums, DefaultTol())
		if diag.Kind != SingleError {
			return
		}
		if diag.Pos < 0 || diag.Pos >= nn {
			t.Fatalf("single-error position %d out of range [0,%d)", diag.Pos, nn)
		}
		if !sameFloat(diag.Magnitude, d1) {
			t.Errorf("single-error magnitude %g, want δ1 = %g", diag.Magnitude, d1)
		}
	})
}

// sameFloat compares bit patterns so NaN == NaN for assertion purposes.
func sameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// FuzzChecksumVLO checks the Eq. (3) vector-linear-operation updates —
// axpby, scale, and in-place axpy — against direct recomputation on the
// operation's output.
func FuzzChecksumVLO(f *testing.F) {
	f.Add(int64(2), 16, 1.5, -0.25)
	f.Add(int64(13), 5, 0.0, 1.0)
	f.Add(int64(20160531), 40, -1e4, 1e-5)
	f.Fuzz(func(t *testing.T, seed int64, n int, alpha, beta float64) {
		nn := fuzzDim(n)
		alpha = fuzzClamp(alpha, 1e8)
		beta = fuzzClamp(beta, 1e8)
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, nn)
		y := make([]float64, nn)
		for i := range x {
			x[i] = 2*rng.Float64() - 1
			y[i] = 2*rng.Float64() - 1
		}
		sx := Checksums(x, Triple)
		sy := Checksums(y, Triple)
		tol := DefaultTol()
		// η for one update on exactly-known inputs: the direct-computation
		// round-off of both operands at their scaled magnitudes.
		eta := func(k int) float64 {
			w := Triple[k]
			return float64(nn) * Eps * (math.Abs(alpha)*weightedAbsSum(w, x) +
				math.Abs(beta)*weightedAbsSum(w, y) + 4)
		}

		// z = αx + βy.
		z := make([]float64, nn)
		for i := range z {
			z[i] = alpha*x[i] + beta*y[i]
		}
		sz := make([]float64, len(Triple))
		UpdateVLOAxpby(sz, alpha, sx, beta, sy)
		for k, wt := range Triple {
			want := wt.Apply(z)
			if !tol.ConsistentBound(sz[k]-want, nn, weightedAbsSum(wt, z), eta(k)) {
				t.Errorf("axpby %s: update %g vs direct %g", wt.Name, sz[k], want)
			}
		}

		// w = αx.
		wv := make([]float64, nn)
		for i := range wv {
			wv[i] = alpha * x[i]
		}
		sw := make([]float64, len(Triple))
		UpdateVLOScale(sw, alpha, sx)
		for k, wt := range Triple {
			want := wt.Apply(wv)
			if !tol.ConsistentBound(sw[k]-want, nn, weightedAbsSum(wt, wv), eta(k)) {
				t.Errorf("scale %s: update %g vs direct %g", wt.Name, sw[k], want)
			}
		}

		// y += αx in place, checksums carried in place too.
		y2 := append([]float64(nil), y...)
		for i := range y2 {
			y2[i] += alpha * x[i]
		}
		sy2 := append([]float64(nil), sy...)
		UpdateVLOAxpy(sy2, alpha, sx)
		for k, wt := range Triple {
			want := wt.Apply(y2)
			if !tol.ConsistentBound(sy2[k]-want, nn, weightedAbsSum(wt, y2), eta(k)) {
				t.Errorf("axpy %s: update %g vs direct %g", wt.Name, sy2[k], want)
			}
		}
	})
}
