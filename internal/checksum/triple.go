package checksum

import "math"

// Diagnosis classifies the checksum state of an MVM output vector under the
// triple-checksum mechanism of §5.2.
type Diagnosis int

const (
	// NoError: all checksum relationships hold to within round-off.
	NoError Diagnosis = iota
	// SingleError: exactly one element is corrupted; position and
	// magnitude are recoverable.
	SingleError
	// MultipleErrors: the vector is inconsistent but the single-error test
	// δ2·δ3 = δ1² fails, so immediate rollback is required.
	MultipleErrors
)

func (d Diagnosis) String() string {
	switch d {
	case NoError:
		return "no-error"
	case SingleError:
		return "single-error"
	case MultipleErrors:
		return "multiple-errors"
	default:
		return "unknown-diagnosis"
	}
}

// IntegralityTol bounds how far the locator ratio j = δ2/δ1 may sit from
// the nearest integer before localization is rejected. The tolerance is
// applied relative to max(1, |j|): round-off in δ1 and δ2 grows with the
// weighted sums — and hence with the located index — so an absolute bound
// tight enough for j near 1 would spuriously reject legitimate single
// errors near the far end of a long vector, while an absolute bound loose
// enough for large j would accept mislocations near the start.
const IntegralityTol = 1e-3

// nearestIndex rounds the locator ratio jf to the nearest 1-based index and
// reports whether it is acceptably integral and within [1, n]. Rounding is
// to-nearest (not truncation): under round-off the ratio lands on either
// side of the true integer with equal probability, and truncating a value
// like 6.9999994 would mislocate the error one element early.
func nearestIndex(jf float64, n int) (j float64, ok bool) {
	j = math.Round(jf)
	if j < 1 || j > float64(n) {
		return j, false
	}
	return j, math.Abs(jf-j) <= IntegralityTol*math.Max(1, math.Abs(j))
}

// TripleDiagnosis is the full result of analysing the three checksum
// inconsistencies δ1, δ2, δ3 of an output vector.
type TripleDiagnosis struct {
	Kind Diagnosis
	// Pos is the zero-based index of the corrupted element when
	// Kind == SingleError.
	Pos int
	// Magnitude is the additive error e = y'_j − y_j; subtracting it from
	// y[Pos] restores the correct value.
	Magnitude float64
}

// Diagnose applies the §5.2 triple-checksum analysis to the inconsistencies
// deltas = (δ1, δ2, δ3) of a length-n vector. absSums[k] is the absolute
// weighted sum Σ|c_k(i)·y_i| of the vector, the magnitude scale the
// Tol.ConsistentAbs verification rule uses.
//
// Detection uses δ1 alone (the cheap probe). On inconsistency, the
// arithmetic-mean/harmonic-mean identity δ2·δ3 = δ1² discriminates a single
// error (the two means agree only when all corrupted positions coincide,
// i.e. k = 1) from multiple errors, eliminating the fake-correction case of
// the double-checksum scheme. For a single error the position is
// j = δ2/δ1 (1-based); the result cross-checks j against δ1/δ3 and
// integrality before trusting it.
func Diagnose(deltas []float64, n int, absSums []float64, tol Tol) TripleDiagnosis {
	if len(deltas) != 3 || len(absSums) != 3 {
		panic("checksum: Diagnose requires exactly three checksums (Triple weights)")
	}
	d1, d2, d3 := deltas[0], deltas[1], deltas[2]
	if tol.ConsistentAbs(d1, n, absSums[0]) {
		return TripleDiagnosis{Kind: NoError}
	}
	// Single-error test: δ2·δ3 = δ1², compared with a relative tolerance
	// since all quantities scale with the error magnitude e.
	lhs := d2 * d3
	rhs := d1 * d1
	scale := math.Max(math.Abs(lhs), math.Abs(rhs))
	//lint:ignore floatcmp exact zero of the relative-tolerance denominator
	if scale == 0 || math.Abs(lhs-rhs) > 1e-6*scale {
		return TripleDiagnosis{Kind: MultipleErrors}
	}
	j, ok := nearestIndex(d2/d1, n)
	if !ok {
		return TripleDiagnosis{Kind: MultipleErrors}
	}
	// Cross-check against the harmonic locator δ1/δ3 = j.
	//lint:ignore floatcmp exact zero guards the division below, not a detection decision
	if d3 != 0 {
		jh := d1 / d3
		if math.Abs(jh-j) > IntegralityTol*math.Max(1, j) {
			return TripleDiagnosis{Kind: MultipleErrors}
		}
	}
	return TripleDiagnosis{Kind: SingleError, Pos: int(j) - 1, Magnitude: d1}
}

// CorrectSingle repairs a single corrupted element in place:
// y[diag.Pos] −= diag.Magnitude. It panics if the diagnosis is not
// SingleError, which would indicate a logic error in the caller.
func CorrectSingle(y []float64, diag TripleDiagnosis) {
	if diag.Kind != SingleError {
		panic("checksum: CorrectSingle called without a single-error diagnosis")
	}
	y[diag.Pos] -= diag.Magnitude
}

// FakeCorrectionExample builds a k-error corruption pattern that fools the
// double-checksum locator (equal magnitudes at positions whose 1-based
// indices sum to a multiple of k, §5.2) — the motivating counterexample for
// the third checksum. It returns the zero-based positions and the common
// magnitude, or ok=false if n is too small to host the pattern.
func FakeCorrectionExample(n int, e float64) (pos []int, mag float64, ok bool) {
	if n < 4 {
		return nil, 0, false
	}
	// Two errors at 1-based positions p and p+2 average to p+1: the
	// double-checksum locator "finds" position p+1 and corrupts a third,
	// previously healthy element.
	return []int{0, 2}, e, true
}

// DoubleLocate performs the naive double-checksum localization
// (j = δ2/δ1) without the triple-checksum guard, for demonstrating and
// testing the fake-correction hazard. It returns the zero-based position
// the scheme would "correct" and whether that position is in range.
func DoubleLocate(d1, d2 float64, n int) (pos int, ok bool) {
	//lint:ignore floatcmp exact zero guards the division below, not a detection decision
	if d1 == 0 {
		return 0, false
	}
	j, ok := nearestIndex(d2/d1, n)
	if !ok {
		return 0, false
	}
	return int(j) - 1, true
}
