package checksum

import "math"

// DefaultTheta is the paper's verification threshold θ = 1e-10 (§5.1).
const DefaultTheta = 1e-10

// Tol controls checksum verification. The paper divides the raw
// inconsistency by n to keep round-off scaling under control
// ("we apply (checksum(x) − cᵀx)/n", §5.1); we additionally scale by the
// checksum magnitude so the test is invariant to the overall data scale.
type Tol struct {
	// Theta is the acceptance threshold for |δ| / (n·(1+|ref|)).
	Theta float64
}

// DefaultTol returns the paper's θ = 1e-10 tolerance.
func DefaultTol() Tol { return Tol{Theta: DefaultTheta} }

// Consistent reports whether an inconsistency δ for a vector of length n is
// attributable to round-off. ref is the reference checksum magnitude
// (typically the expected checksum value), which makes the test relative.
func (t Tol) Consistent(delta float64, n int, ref float64) bool {
	if n <= 0 {
		return true
	}
	scale := float64(n) * (1 + math.Abs(ref))
	return math.Abs(delta)/scale <= t.theta()
}

// Inconsistent is the negation of Consistent, provided for readable call
// sites in the detection paths.
func (t Tol) Inconsistent(delta float64, n int, ref float64) bool {
	return !t.Consistent(delta, n, ref)
}

// ConsistentAbs is the verification rule the ABFT engines use: an
// inconsistency δ is round-off if |δ| ≤ θ·max(n, absSum), where absSum is
// the absolute weighted sum Σ|c_i·x_i| of the vector being verified. absSum
// is the natural magnitude scale of the checksum computation (it bounds its
// accumulated round-off), making the test robust when cᵀx itself is small
// through cancellation. The max(n, ·) floor implements the paper's /n
// normalization for vectors of small magnitude.
func (t Tol) ConsistentAbs(delta float64, n int, absSum float64) bool {
	scale := absSum
	if s := float64(n); s > scale {
		scale = s
	}
	return math.Abs(delta) <= t.theta()*scale
}

// InconsistentAbs is the negation of ConsistentAbs.
func (t Tol) InconsistentAbs(delta float64, n int, absSum float64) bool {
	return !t.ConsistentAbs(delta, n, absSum)
}

// BoundSafety is the multiple of the running round-off bound η below which
// an inconsistency is attributed to floating point. The η bounds are
// first-order (they ignore O(ε²) terms and assume the standard summation
// model), so a modest safety factor absorbs the slack.
const BoundSafety = 32

// ConsistentBound is ConsistentAbs extended with the running round-off
// bound η carried by the vector's checksum (see the Bound update rules in
// encode.go): an inconsistency is round-off if it is below the paper's
// θ-threshold or below BoundSafety·η. Without the η term, the d-amplified
// update noise (≈ n·ε·d·Σ|u|) makes the fixed θ misfire for large n·d.
func (t Tol) ConsistentBound(delta float64, n int, absSum, eta float64) bool {
	scale := absSum
	if s := float64(n); s > scale {
		scale = s
	}
	limit := t.theta() * scale
	if b := BoundSafety * eta; b > limit {
		limit = b
	}
	return math.Abs(delta) <= limit
}

// InconsistentBound is the negation of ConsistentBound.
func (t Tol) InconsistentBound(delta float64, n int, absSum, eta float64) bool {
	return !t.ConsistentBound(delta, n, absSum, eta)
}

func (t Tol) theta() float64 {
	if t.Theta <= 0 {
		return DefaultTheta
	}
	return t.Theta
}

// VerifyVector recomputes cᵀx for each weight and checks the carried
// checksums, returning true when every relationship holds. This is the
// outer-level verification (line 6 of Algorithm 1) generalized to any
// number of checksums.
func VerifyVector(x []float64, weights []Weight, expected []float64, tol Tol) bool {
	for k, w := range weights {
		delta := w.Apply(x) - expected[k]
		if tol.Inconsistent(delta, len(x), expected[k]) {
			return false
		}
	}
	return true
}
