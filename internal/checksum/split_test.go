package checksum

import (
	"math"
	"math/rand"
	"testing"

	"newsum/internal/sparse"
)

// The distributed-splitting helpers must reproduce the serial encoding
// exactly: summing every rank's PartialMatrixRow gives cᵀA, concatenating
// every rank's LocalRowSlice gives the EncodeMatrix row, and ShiftWeight is
// the plain index shift.

func TestShiftWeight(t *testing.T) {
	for _, w := range Triple {
		if got := ShiftWeight(w, 0); got.Name != w.Name {
			t.Errorf("offset 0 must return the weight unchanged, got %q", got.Name)
		}
		s := ShiftWeight(w, 7)
		for i := 0; i < 5; i++ {
			if got, want := s.At(i), w.At(7+i); got != want {
				t.Errorf("%s shifted At(%d) = %g, want %g", w.Name, i, got, want)
			}
		}
		if s.Name == w.Name {
			t.Errorf("shifted weight must be distinguishable from the original")
		}
	}
}

// splitBounds is an arbitrary uneven 3-way partition of n rows.
func splitBounds(n int) []int {
	return []int{0, n / 5, n / 2, n}
}

func TestPartialMatrixRowSumsToFull(t *testing.T) {
	a := sparse.CircuitLike(120, 3)
	for _, w := range Triple {
		full := make([]float64, a.Cols)
		bounds := splitBounds(a.Rows)
		for r := 0; r+1 < len(bounds); r++ {
			// Fold every rank's partial into the same buffer, as the
			// all-reduce does.
			PartialMatrixRow(a, w, bounds[r], bounds[r+1], full)
		}
		// Direct cᵀA for comparison.
		want := make([]float64, a.Cols)
		PartialMatrixRow(a, w, 0, a.Rows, want)
		for j := range full {
			if math.Abs(full[j]-want[j]) > 1e-12*(1+math.Abs(want[j])) {
				t.Fatalf("%s: partials disagree with full row at col %d: %g vs %g",
					w.Name, j, full[j], want[j])
			}
		}
	}
}

func TestLocalRowSliceConcatenatesToEncoding(t *testing.T) {
	a := sparse.Laplacian2D(9, 7)
	d := PracticalD(a)
	enc := EncodeMatrix(a, Triple, d)
	bounds := splitBounds(a.Rows)
	for k, w := range Triple {
		full := make([]float64, a.Cols)
		PartialMatrixRow(a, w, 0, a.Rows, full)
		var cat []float64
		for r := 0; r+1 < len(bounds); r++ {
			cat = append(cat, LocalRowSlice(full, w, d, bounds[r], bounds[r+1])...)
		}
		if len(cat) != len(enc.Rows[k]) {
			t.Fatalf("%s: concatenated length %d, want %d", w.Name, len(cat), len(enc.Rows[k]))
		}
		for j := range cat {
			if math.Abs(cat[j]-enc.Rows[k][j]) > 1e-10*(1+math.Abs(enc.Rows[k][j])) {
				t.Fatalf("%s: slice disagrees with EncodeMatrix at col %d: %g vs %g",
					w.Name, j, cat[j], enc.Rows[k][j])
			}
		}
	}
}

// The point of the splitting: per-rank partial Eq. (2) updates must sum to
// the global update. Each rank computes rowA_r·u_r + d·su_r on its own
// block; the sums over a full partition must equal checksum(A·u).
func TestPartialMVMUpdateSumsToGlobal(t *testing.T) {
	a := sparse.DiagDominant(90, 5, 11)
	d := PracticalD(a)
	rng := rand.New(rand.NewSource(5))
	u := randVec(rng, a.Rows)
	w := make([]float64, a.Rows)
	a.MulVec(w, u)

	bounds := splitBounds(a.Rows)
	weight := Ones
	full := make([]float64, a.Cols)
	PartialMatrixRow(a, weight, 0, a.Rows, full)

	var global float64
	for r := 0; r+1 < len(bounds); r++ {
		lo, hi := bounds[r], bounds[r+1]
		rowA := LocalRowSlice(full, weight, d, lo, hi)
		sw := ShiftWeight(weight, lo)
		var localS float64 // rank-local input checksum c_[lo,hi)ᵀ·u_[lo,hi)
		var dot float64
		for j := 0; j < hi-lo; j++ {
			localS += sw.At(j) * u[lo+j]
			dot += rowA[j] * u[lo+j]
		}
		global += dot + d*localS
	}
	want := weight.Apply(w)
	if math.Abs(global-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("summed partial updates %g, direct checksum %g", global, want)
	}
}

func TestSplitPanics(t *testing.T) {
	a := sparse.Laplacian2D(3, 3)
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("short buffer", func() {
		PartialMatrixRow(a, Ones, 0, a.Rows, make([]float64, a.Cols-1))
	})
	assertPanics("bad range", func() {
		PartialMatrixRow(a, Ones, 5, 2, make([]float64, a.Cols))
	})
	assertPanics("slice out of bounds", func() {
		LocalRowSlice(make([]float64, 4), Ones, 2, 1, 9)
	})
}
