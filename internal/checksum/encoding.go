package checksum

import (
	"math"

	"newsum/internal/sparse"
)

// Encoding bundles the complete offline precompute of a protected solve: the
// new-sum checksum rows cᵀA − d·cᵀ for the full Triple weight set plus the
// plain cᵀA diagnosis rows the lazy two-level scheme evaluates on demand.
// It exists so long-running processes (internal/service) can derive the
// encoding once per operator and amortize it across many solves — the
// paper's offline/online cost split (§4–§5) made explicit as a reusable
// value instead of a side effect of engine construction.
//
// Rows are computed per weight by exactly the same accumulation order as
// EncodeMatrix and EncodeTraditional, so an Encoding built once and reused
// is bit-for-bit identical to one derived freshly inside a solve (asserted
// by TestEncodingBitForBit). An Encoding is immutable after construction
// and safe for concurrent use by any number of solves.
type Encoding struct {
	// N is the matrix order the encoding was derived for.
	N int
	// D is the decoupling scalar pinned at derivation time.
	D float64
	// mat holds the new-sum rows c_kᵀA − d·c_kᵀ for the Triple weight set;
	// weight-set views slice its rows (Single is a prefix of Triple).
	mat *Matrix
	// diag holds the plain c_kᵀA rows for the Linear and Harmonic weights,
	// the on-demand locating checksums of the lazy two-level scheme.
	diag *Traditional
}

// NewEncoding derives the full offline encoding of a with decoupling scalar
// d; d = 0 selects PracticalD(a). Cost: four passes over the nonzeros (three
// new-sum rows plus two diagnosis rows sharing a pass structure) — the
// paper's offline encoding cost, paid once per operator.
func NewEncoding(a *sparse.CSR, d float64) *Encoding {
	//lint:ignore floatcmp d == 0 is the unset sentinel selecting the derived scalar
	if d == 0 {
		d = PracticalD(a)
	}
	return &Encoding{
		N:    a.Rows,
		D:    d,
		mat:  EncodeMatrix(a, Triple, d),
		diag: EncodeTraditional(a, []Weight{Linear, Harmonic}),
	}
}

// Matrix returns the new-sum encoded matrix for the requested weight set,
// which must be a prefix of Triple (Single, Double and Triple all are). The
// returned value shares the precomputed rows — no recomputation, no copy.
func (e *Encoding) Matrix(weights []Weight) *Matrix {
	if len(weights) == 0 || len(weights) > len(e.mat.Weights) {
		panic("checksum: Encoding.Matrix needs a non-empty prefix of the Triple weight set")
	}
	for k, w := range weights {
		if w.Name != e.mat.Weights[k].Name {
			panic("checksum: Encoding.Matrix weight set is not a prefix of Triple: " + w.Name)
		}
	}
	return &Matrix{N: e.mat.N, D: e.mat.D, Weights: weights, Rows: e.mat.Rows[:len(weights)]}
}

// Diag returns the plain cᵀA rows for the locating weights (Linear,
// Harmonic) used by the lazy two-level diagnosis.
func (e *Encoding) Diag() *Traditional { return e.diag }

// EqualBits reports whether two encodings are bit-for-bit identical:
// same order, same decoupling scalar, and every precomputed row element
// carrying the exact same IEEE-754 word. This is the admission check a
// caching layer runs before trusting a stored encoding — the offline
// precompute is itself unprotected state, and a soft error struck during
// (or after) derivation would silently poison every solve that reuses it.
func (e *Encoding) EqualBits(o *Encoding) bool {
	if o == nil || e.N != o.N || math.Float64bits(e.D) != math.Float64bits(o.D) {
		return false
	}
	if !rowsEqualBits(e.mat.Rows, o.mat.Rows) {
		return false
	}
	return rowsEqualBits(e.diag.Rows, o.diag.Rows)
}

func rowsEqualBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if len(a[k]) != len(b[k]) {
			return false
		}
		for i := range a[k] {
			if math.Float64bits(a[k][i]) != math.Float64bits(b[k][i]) {
				return false
			}
		}
	}
	return true
}
