package checksum

import (
	"math"
	"testing"
)

// Boundary tables for the localization chain: nearestIndex's
// round-to-nearest + IntegralityTol guard, Diagnose's range and identity
// checks, and the unguarded DoubleLocate it protects against.

func TestNearestIndexBoundaries(t *testing.T) {
	const n = 100
	cases := []struct {
		name   string
		jf     float64
		n      int
		wantJ  float64
		wantOK bool
	}{
		// Round-to-nearest: a locator ratio landing just under the true
		// integer must not be truncated one element early.
		{"just-below-integer", 6.9999994, n, 7, true},
		{"just-above-integer", 7.0000004, n, 7, true},
		// Either side of the relative tolerance boundary (1e-3·max(1,j));
		// the exact boundary 3.003 is avoided, binary representation puts
		// it a few ulps past 3·1e-3.
		{"within-tolerance-small-j", 3.0029, n, 3, true},
		{"past-tolerance-small-j", 3.004, n, 3, false},
		// Near j = 1 the tolerance floor max(1, |j|) applies.
		{"near-one-within", 0.9999, n, 1, true},
		{"near-one-outside", 0.99, n, 1, false},
		// Large j: the relative tolerance scales with the index, so an
		// offset that would fail near the start passes at the far end.
		{"large-j-relative", 5000.4, 10000, 5000, true},
		{"large-j-outside", 5006.0, 10000, 5006, true},
		// Once 1e-3·j exceeds 0.5 the integrality guard is vacuous — every
		// ratio is within tolerance of its rounding — and only the mean
		// identity and the confirmation layer protect large indices.
		{"large-j-midway-vacuous", 5000.5000001, 10000, 5001, true},
		// Range guards: valid 1-based indices are [1, n].
		{"below-range", 0.4, n, 0, false},
		{"above-range", 100.6, n, 101, false},
		{"at-n-within", 100.05, n, 100, true},
		{"negative", -2.0, n, -2, false},
		// Halfway between integers is never acceptably integral.
		{"halfway", 6.5, n, 7, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j, ok := nearestIndex(tc.jf, tc.n)
			if ok != tc.wantOK {
				t.Errorf("nearestIndex(%v, %d) ok = %v, want %v", tc.jf, tc.n, ok, tc.wantOK)
			}
			if j != tc.wantJ {
				t.Errorf("nearestIndex(%v, %d) j = %v, want %v", tc.jf, tc.n, j, tc.wantJ)
			}
		})
	}
}

func TestDiagnoseLocatorBoundaries(t *testing.T) {
	const n = 100
	const e = 50.0
	cases := []struct {
		name   string
		deltas []float64
		want   Diagnosis
		pos    int
	}{
		// A locator ratio perturbed by relative round-off still rounds to
		// the far-end index instead of truncating to n−1.
		{"far-end-roundoff", []float64{e, float64(n) * e * (1 - 1e-9), e / float64(n)}, SingleError, n - 1},
		// Consistent "single error" signatures pointing outside [1, n] must
		// be rejected, not clamped.
		{"locator-above-n", []float64{e, float64(n+1) * e, e / float64(n+1)}, MultipleErrors, 0},
		{"locator-below-one", []float64{e, 0.3 * e, e / 0.3}, MultipleErrors, 0},
		// Aliased equal pair at small 1-based positions (2, 4): the locator
		// is exactly integral (j = 3) but the mean identity fails by 12.5%.
		{"aliased-pair-small", makeDeltas([]int{1, 3}, []float64{e, e}), MultipleErrors, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diag := Diagnose(tc.deltas, n, refs(n), Tol{})
			if diag.Kind != tc.want {
				t.Fatalf("Diagnose(%v) = %v, want %v", tc.deltas, diag.Kind, tc.want)
			}
			if tc.want == SingleError && diag.Pos != tc.pos {
				t.Errorf("located %d, want %d", diag.Pos, tc.pos)
			}
		})
	}
}

// TestDiagnoseAliasedPairLargeJ pins the known residual hazard the solvers'
// post-correction confirmation exists for: equal magnitudes at 1-based
// positions p and p+2 satisfy the mean identity to within 1/(p(p+2)) —
// inside the 1e-6 relative window once p ≳ 1000 — and the harmonic locator
// sits only 1/(p+1) from the integral midpoint, inside IntegralityTol's
// relative band. Diagnose alone is fooled into naming the healthy midpoint;
// the solver-level confirmation (forward_hazard_test.go in internal/core)
// rejects the repair. If this test ever starts failing with MultipleErrors,
// Diagnose got strictly stronger and the comment there should be revisited.
func TestDiagnoseAliasedPairLargeJ(t *testing.T) {
	const n = 8281
	const p = 4001 // 1-based
	const e = 1e6
	deltas := makeDeltas([]int{p - 1, p + 1}, []float64{e, e})
	diag := Diagnose(deltas, n, refs(n), Tol{})
	if diag.Kind != SingleError {
		t.Fatalf("large-j aliased pair diagnosed %v; the §5.2 confirmation layer assumes SingleError here", diag.Kind)
	}
	if diag.Pos != p { // zero-based midpoint of 1-based p, p+2
		t.Errorf("fooled position %d, want midpoint %d", diag.Pos, p)
	}
	if math.Abs(diag.Magnitude-2*e) > 1e-6*2*e {
		t.Errorf("fooled magnitude %g, want δ1 = %g", diag.Magnitude, 2*e)
	}
}

func TestDoubleLocateBoundaries(t *testing.T) {
	const n = 100
	// The motivating §5.2 counterexample: equal errors at the
	// FakeCorrectionExample positions fool the unguarded double-checksum
	// locator into naming the healthy midpoint.
	pos, mag, ok := FakeCorrectionExample(n, 2.0)
	if !ok {
		t.Fatalf("FakeCorrectionExample unavailable at n=%d", n)
	}
	d := makeDeltas(pos, []float64{mag, mag})
	if got, ok := DoubleLocate(d[0], d[1], n); !ok || got != 1 {
		t.Errorf("double checksum should be fooled to midpoint 1, got (%d, %v)", got, ok)
	}
	// The triple scheme rejects the same signature outright.
	if diag := Diagnose(d, n, refs(n), Tol{}); diag.Kind != MultipleErrors {
		t.Errorf("triple checksum accepted the fake-correction signature: %v", diag.Kind)
	}
	// Degenerate and out-of-range locators.
	if _, ok := DoubleLocate(0, 5, n); ok {
		t.Errorf("zero δ1 must not localize")
	}
	if _, ok := DoubleLocate(1, 200, n); ok {
		t.Errorf("locator beyond n must not localize")
	}
	if _, ok := DoubleLocate(1, 0.3, n); ok {
		t.Errorf("locator below 1 must not localize")
	}
}
