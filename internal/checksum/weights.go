// Package checksum implements the paper's error-preserving checksum encoding
// for matrix-vector multiplication (§4), the triple-checksum single-error
// locate-and-correct mechanism (§5.2), and — for baseline comparison — the
// traditional Huang–Abraham column-checksum encoding (§2).
//
// The central objects are checksum weight vectors c (represented functionally
// so c2 = (1..n) and c3 = (1, 1/2, ..., 1/n) never need materializing), the
// encoded matrix checksum rows checksum(A) = cᵀA − d·cᵀ, and the O(n)/O(1)
// update rules that carry vector checksums through MVM, VLO and PCO
// operations without touching the operations themselves (Fig. 2(d)).
package checksum

import (
	"math"

	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// Weight is a checksum vector c given functionally: At(i) returns c_{i+1},
// the weight of the element with zero-based index i. All weights must be
// non-zero everywhere (the paper requires c to have all non-zero entries).
type Weight struct {
	Name string
	At   func(i int) float64
}

// Ones is c1 = (1, 1, ..., 1)ᵀ, the plain-sum checksum.
var Ones = Weight{Name: "ones", At: func(int) float64 { return 1 }}

// Linear is c2 = (1, 2, ..., n)ᵀ, the position-weighted checksum used to
// locate single errors (§5.2).
var Linear = Weight{Name: "linear", At: func(i int) float64 { return float64(i + 1) }}

// Harmonic is c3 = (1, 1/2, ..., 1/n)ᵀ, the third checksum that separates
// a genuine single error from the "fake correction" multi-error case via
// the arithmetic-mean/harmonic-mean identity (§5.2).
var Harmonic = Weight{Name: "harmonic", At: func(i int) float64 { return 1 / float64(i+1) }}

// Single is the weight set of the basic online ABFT scheme (Algorithm 1),
// which only needs detection.
var Single = []Weight{Ones}

// Double adds the locating checksum; it can locate-and-correct one error but
// is vulnerable to fake corrections (§5.2).
var Double = []Weight{Ones, Linear}

// Triple is the weight set of the two-level scheme (Algorithm 2): detect,
// discriminate single vs multiple, locate, correct.
var Triple = []Weight{Ones, Linear, Harmonic}

// Apply returns cᵀx for the weight, accumulated with vec's fixed-block
// pairwise summation so the measured sum the verifier compares against the
// carried checksum has O((Block + log n)·ε) round-off instead of O(n·ε) —
// the near-τ band stays clear of accumulation noise at large n.
func (w Weight) Apply(x []float64) float64 {
	return vec.WeightedSum(x, w.At)
}

// ApplyAbs returns cᵀx and Σ|c_i·x_i| in one blocked pairwise pass — the
// (measured sum, round-off scale) pair every verification needs.
func (w Weight) ApplyAbs(x []float64) (sum, abs float64) {
	return vec.WeightedSumAbs(x, w.At)
}

// Range computes the extreme magnitudes of the weight over positions
// [0, n): maxAbs = ‖c‖∞ and minAbs = min_i |c_i|, the quantities in the
// paper's lower bound for d. The standard weights are monotone, so the
// extremes are checked at the two endpoints; arbitrary weights fall back to
// a full scan.
func (w Weight) Range(n int) (minAbs, maxAbs float64) {
	if n <= 0 {
		return 0, 0
	}
	switch w.Name {
	case "ones", "linear", "harmonic":
		a, b := math.Abs(w.At(0)), math.Abs(w.At(n-1))
		return math.Min(a, b), math.Max(a, b)
	}
	minAbs = math.Inf(1)
	for i := 0; i < n; i++ {
		a := math.Abs(w.At(i))
		if a < minAbs {
			minAbs = a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	return minAbs, maxAbs
}

// Checksums returns cᵀx for each weight, i.e. the full checksum state of a
// consistent vector.
func Checksums(x []float64, weights []Weight) []float64 {
	s := make([]float64, len(weights))
	for k, w := range weights {
		s[k] = w.Apply(x)
	}
	return s
}

// LemmaD returns a scalar d satisfying Lemma 2's lower bound
// d > n·‖c‖∞·‖A‖∞ / min(c) for every supplied weight, with a 2× safety
// margin, rounded up to a power of two so multiplications and divisions by d
// are exact in binary floating point.
//
// The bound guarantees cᵀA_e ≠ d·cᵀ for any row subset A_e of A, closing the
// cache-error escape analyzed in the Lemma 2 proof. Note that a very large d
// amplifies round-off in the checksum updates (the d·cᵀx terms cancel), so
// large problems may prefer PracticalD; the Lemma bound is about worst-case
// adversarial coincidence, and any d far from the data scale detects
// generic errors.
func LemmaD(a *sparse.CSR, weights []Weight) float64 {
	n := float64(a.Rows)
	normA := a.NormInf()
	if normA <= 0 {
		normA = 1
	}
	bound := 0.0
	for _, w := range weights {
		minC, maxC := w.Range(a.Rows)
		//lint:ignore floatcmp weights are nonzero by construction; exact validation
		if minC == 0 {
			panic("checksum: weight with zero entry")
		}
		b := n * maxC * normA / minC
		if b > bound {
			bound = b
		}
	}
	return math.Exp2(math.Ceil(math.Log2(2 * bound)))
}

// PracticalD returns a numerically friendly decoupling scalar: a power of
// two just above ‖A‖∞, capped at 64.
//
// The cap matters twice over. The MVM checksum update's round-off is
// amplified by d (the d·cᵀu terms cancel analytically but not in floating
// point), and — more subtly — every PCO *divides* a carried inconsistency
// by d (Lemma 1), so an error entering through a preconditioner solve
// reaches the verified vectors attenuated by up to d². With the Lemma 2
// worst-case bound (d > n·‖c‖∞·‖A‖∞) that attenuation drives genuine error
// signals below any honest round-off threshold; a small d keeps them
// detectable while the running η bounds (see ConsistentBound) keep large-n
// verification sound. LemmaD remains available when the adversarial
// guarantee is worth the signal loss.
func PracticalD(a *sparse.CSR) float64 {
	normA := a.NormInf()
	if normA <= 0 {
		normA = 1
	}
	d := math.Exp2(math.Ceil(math.Log2(normA)) + 1)
	if d > 64 {
		d = 64
	}
	if d < 2 {
		d = 2
	}
	return d
}
