package checksum

import (
	"math"
	"math/rand"
	"testing"

	"newsum/internal/sparse"
)

// colState is one column's carried checksum state (s, η) for a couple of
// tracked vectors, mirrored between the batched and single-RHS paths.
type colState struct {
	u, w     []float64
	su, eta  []float64
	sw, etaW []float64
}

func newColState(rng *rand.Rand, n, k int) *colState {
	c := &colState{
		u: randVec(rng, n), w: randVec(rng, n),
		su: make([]float64, k), eta: make([]float64, k),
		sw: make([]float64, k), etaW: make([]float64, k),
	}
	for j := 0; j < k; j++ {
		c.su[j] = rng.NormFloat64()
		c.eta[j] = math.Abs(rng.NormFloat64()) * 1e-12
		c.sw[j] = rng.NormFloat64()
		c.etaW[j] = math.Abs(rng.NormFloat64()) * 1e-12
	}
	return c
}

func (c *colState) clone() *colState {
	d := &colState{}
	d.u = append([]float64(nil), c.u...)
	d.w = append([]float64(nil), c.w...)
	d.su = append([]float64(nil), c.su...)
	d.eta = append([]float64(nil), c.eta...)
	d.sw = append([]float64(nil), c.sw...)
	d.etaW = append([]float64(nil), c.etaW...)
	return d
}

func bitsEq(t *testing.T, what string, col int, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s col %d slot %d: batched %x, single-RHS %x", what, col, i, got[i], want[i])
		}
	}
}

// TestColumnwiseUpdatesBitwise is the Eqs. (2)–(4) block property test: a
// chained trajectory of columnwise MVM, PCO, axpy and axpby updates over k
// columns must leave every column's (s, η) state bitwise-identical to the
// state k independent single-RHS trajectories carry. This is the contract
// that lets a batched solve reuse the single-solve verification
// calibration unchanged.
func TestColumnwiseUpdatesBitwise(t *testing.T) {
	a := sparse.Laplacian2D(9, 9)
	rng := rand.New(rand.NewSource(17))
	for _, weights := range [][]Weight{Single, Triple} {
		m := EncodeMatrix(a, weights, 64)
		nw := len(weights)
		for _, k := range []int{1, 3, 8} {
			batch := make([]*colState, k)
			single := make([]*colState, k)
			alphas := make([]float64, k)
			betas := make([]float64, k)
			for j := 0; j < k; j++ {
				batch[j] = newColState(rng, a.Rows, nw)
				single[j] = batch[j].clone()
				alphas[j] = rng.NormFloat64()
				betas[j] = rng.NormFloat64()
			}
			gather := func(pick func(c *colState) []float64, cols []*colState) [][]float64 {
				out := make([][]float64, k)
				for j, c := range cols {
					out[j] = pick(c)
				}
				return out
			}
			sus := func(c *colState) []float64 { return c.su }
			etas := func(c *colState) []float64 { return c.eta }
			sws := func(c *colState) []float64 { return c.sw }
			etaWs := func(c *colState) []float64 { return c.etaW }
			us := func(c *colState) []float64 { return c.u }
			wsv := func(c *colState) []float64 { return c.w }

			// Several rounds so errors in η propagation compound and a
			// single-round coincidence cannot pass.
			for round := 0; round < 4; round++ {
				// Eq. (2): w-state <- MVM(u-state), columnwise vs single.
				m.UpdateMVMBoundCols(gather(sws, batch), gather(etaWs, batch),
					gather(us, batch), gather(sus, batch), gather(etas, batch))
				for j, c := range single {
					m.UpdateMVMBound(c.sw, c.etaW, c.u, c.su, c.eta)
					bitsEq(t, "MVM s", j, batch[j].sw, c.sw)
					bitsEq(t, "MVM eta", j, batch[j].etaW, c.etaW)
				}
				// Eq. (4): u-state <- PCO(w-state).
				m.UpdatePCOBoundCols(gather(sus, batch), gather(etas, batch),
					gather(wsv, batch), gather(sws, batch), gather(etaWs, batch))
				for j, c := range single {
					m.UpdatePCOBound(c.su, c.eta, c.w, c.sw, c.etaW)
					bitsEq(t, "PCO s", j, batch[j].su, c.su)
					bitsEq(t, "PCO eta", j, batch[j].eta, c.eta)
				}
				// Eq. (3) in place: u-state += α_j · w-state, per-column scalars.
				UpdateVLOAxpyBoundCols(gather(sus, batch), gather(etas, batch),
					alphas, gather(sws, batch), gather(etaWs, batch))
				for j, c := range single {
					UpdateVLOAxpyBound(c.su, c.eta, alphas[j], c.sw, c.etaW)
					bitsEq(t, "axpy s", j, batch[j].su, c.su)
					bitsEq(t, "axpy eta", j, batch[j].eta, c.eta)
				}
				// Eq. (3) two-operand: w-state <- α_j·u-state + β_j·w-state.
				UpdateVLOAxpbyBoundCols(gather(sws, batch), gather(etaWs, batch),
					alphas, gather(sus, batch), gather(etas, batch),
					betas, gather(sws, batch), gather(etaWs, batch))
				for j, c := range single {
					UpdateVLOAxpbyBound(c.sw, c.etaW, alphas[j], c.su, c.eta, betas[j], c.sw, c.etaW)
					bitsEq(t, "axpby s", j, batch[j].sw, c.sw)
					bitsEq(t, "axpby eta", j, batch[j].etaW, c.etaW)
				}
			}
		}
	}
}

// TestColumnwisePanics pins the column-count validation of every Cols
// form: a ragged gather must panic before any column is touched.
func TestColumnwisePanics(t *testing.T) {
	a := sparse.Laplacian2D(4, 4)
	m := EncodeMatrix(a, Single, 64)
	one := [][]float64{{0}}
	two := [][]float64{{0}, {0}}
	al := []float64{1}
	cases := map[string]func(){
		"mvm":   func() { m.UpdateMVMBoundCols(one, two, one, one, one) },
		"pco":   func() { m.UpdatePCOBoundCols(one, one, two, one, one) },
		"axpy":  func() { UpdateVLOAxpyBoundCols(one, one, al, two, one) },
		"axpby": func() { UpdateVLOAxpbyBoundCols(one, one, al, one, one, []float64{1, 2}, one, one) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
