package checksum

import (
	"math"
	"math/rand"
	"testing"

	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// The *From variants exist so internal/kernel can feed pool-computed row
// reductions through the exact bound formulas the serial path uses. The
// contract: given rowSum/rowAbs equal to vec.DotAbs on each encoded row,
// the From form is bitwise-identical to the direct form — value AND η.
func TestUpdateBoundFromMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := sparse.Laplacian2D(9, 9)
	enc := EncodeMatrix(a, Triple, 64)
	u := randVec(rng, a.Rows)
	su := Checksums(u, Triple)
	eta := []float64{1e-12, 3e-13, 7e-14}

	nw := len(Triple)
	rowSum := make([]float64, nw)
	rowAbs := make([]float64, nw)
	for k, row := range enc.Rows {
		rowSum[k], rowAbs[k] = vec.DotAbs(row, u)
	}

	for _, tc := range []struct {
		name   string
		direct func(dst, etaDst []float64)
		from   func(dst, etaDst []float64)
	}{
		{
			name:   "mvm",
			direct: func(dst, etaDst []float64) { enc.UpdateMVMBound(dst, etaDst, u, su, eta) },
			from:   func(dst, etaDst []float64) { enc.UpdateMVMBoundFrom(dst, etaDst, rowSum, rowAbs, su, eta) },
		},
		{
			name:   "pco",
			direct: func(dst, etaDst []float64) { enc.UpdatePCOBound(dst, etaDst, u, su, eta) },
			from:   func(dst, etaDst []float64) { enc.UpdatePCOBoundFrom(dst, etaDst, rowSum, rowAbs, su, eta) },
		},
	} {
		want := make([]float64, nw)
		wantEta := make([]float64, nw)
		tc.direct(want, wantEta)
		got := make([]float64, nw)
		gotEta := make([]float64, nw)
		tc.from(got, gotEta)
		for k := range want {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Errorf("%s weight %d: From %x, direct %x", tc.name, k,
					math.Float64bits(got[k]), math.Float64bits(want[k]))
			}
			if math.Float64bits(gotEta[k]) != math.Float64bits(wantEta[k]) {
				t.Errorf("%s weight %d: From η %x, direct η %x", tc.name, k,
					math.Float64bits(gotEta[k]), math.Float64bits(wantEta[k]))
			}
		}
	}
}

func TestUpdateBoundFromPanicsOnSlotMismatch(t *testing.T) {
	enc := EncodeMatrix(sparse.Identity(4), Single, 8)
	good := make([]float64, 1)
	bad := make([]float64, 2)
	for name, f := range map[string]func(){
		"mvm": func() { enc.UpdateMVMBoundFrom(good, good, bad, good, good, good) },
		"pco": func() { enc.UpdatePCOBoundFrom(good, good, good, bad, good, good) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on slot mismatch", name)
				}
			}()
			f()
		}()
	}
}

// TestReduceEpsDepth pins the accumulation-depth model behind every η
// bound: depth = min(n, Block + 2 + ⌈log₂ blocks(n)⌉), monotone shrink
// versus the naive n·ε bound once n clears a couple of blocks.
func TestReduceEpsDepth(t *testing.T) {
	for _, tc := range []struct {
		n     int
		depth int
	}{
		{1, 1},                   // clamped at n
		{64, 64},                 // still below Block+2
		{128, 128},               // exactly one block, clamp wins
		{256, vec.Block + 2 + 1}, // two blocks: one combine level
		{1 << 20, vec.Block + 2 + 13},
	} {
		if got := ReduceEps(tc.n) / Eps; got != float64(tc.depth) {
			t.Errorf("ReduceEps(%d) = %v·ε, want %d·ε", tc.n, got, tc.depth)
		}
	}
	// The whole point: at n = 2²⁰ the bound is ~7000× tighter than n·ε.
	n := 1 << 20
	if ratio := float64(n) * Eps / ReduceEps(n); ratio < 5000 {
		t.Errorf("tightening ratio at n=2^20 is only %.0f", ratio)
	}
}
