package par

import (
	"fmt"
	"testing"

	"newsum/internal/vec"
)

// The distributed forward-recovery campaign, mirroring the serial one in
// internal/core: inject one additive strike per (iteration, rank, local
// element) coordinate of a small distributed solve and require that the
// forward tier repairs it in place — zero coordinated rollbacks, at least
// one rollback avoided — and that the team still converges to the
// fault-free answer. The additive magnitude 1e4 is always detectable at the
// next boundary and never trips the suspect-scalar pre-check. Each
// (iteration, rank) coordinate strikes two rotating local indices, covering
// every local element across the sweep without the full cross-product.

func forwardParOptions(faults []Fault) Options {
	return Options{
		Tol:                1e-10,
		DetectInterval:     2,
		CheckpointInterval: 10,
		MaxRollbacks:       8,
		ForwardRecovery:    true,
		Faults:             faults,
	}
}

func runParForwardCampaign(t *testing.T, solve func(faults []Fault) (Result, error), iters, ranks, local int, baseX []float64) {
	t.Helper()
	forward, masked, total := 0, 0, 0
	for iter := 0; iter < iters; iter++ {
		for rank := 0; rank < ranks; rank++ {
			for _, idx := range []int{(iter + rank) % local, (iter + rank + local/2) % local} {
				iter, rank, idx := iter, rank, idx
				t.Run(fmt.Sprintf("iter=%d/rank=%d/idx=%d", iter, rank, idx), func(t *testing.T) {
					res, err := solve([]Fault{{
						Iteration: iter, Rank: rank, Index: idx, Magnitude: 1e4,
					}})
					if err != nil {
						t.Fatalf("faulted solve: %v", err)
					}
					if res.InjectedFaults != 1 {
						t.Fatalf("fault did not fire exactly once: injected=%d", res.InjectedFaults)
					}
					total++
					switch {
					case res.Rollbacks != 0:
						t.Errorf("forward tier fell back to rollback: %+v", res)
					case res.RollbacksAvoided > 0:
						forward++
					case res.Detections == 0:
						// A strike at the final MVM near convergence enters r
						// multiplied by the collapsed step length — benignly
						// masked; the answer-equality check below still gates it.
						masked++
					default:
						t.Errorf("detected strike escaped the forward tier: %+v", res)
					}
					if !vec.Equal(res.X, baseX, 1e-6) {
						t.Errorf("solution drifted from the fault-free answer")
					}
				})
			}
		}
	}
	if forward+masked != total {
		t.Errorf("forward-recovery rate %d/%d (+%d masked), want every detected strike forward", forward, total, masked)
	} else if masked > 2*ranks {
		// Masking is a final-iteration phenomenon; more than one iteration's
		// worth of masked strikes means detection itself regressed.
		t.Errorf("masked %d strikes, want at most %d (one iteration sweep)", masked, 2*ranks)
	} else {
		t.Logf("campaign: %d/%d strikes repaired forward, %d benignly masked", forward, total, masked)
	}
}

func TestForwardCampaignParPCG(t *testing.T) {
	a, b := campaignSystem(t)
	const ranks = 4
	base, err := ABFTPCG(a, b, ranks, forwardParOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	runParForwardCampaign(t, func(faults []Fault) (Result, error) {
		return ABFTPCG(a, b, ranks, forwardParOptions(faults))
	}, base.Iterations, ranks, a.Rows/ranks, base.X)
}

func TestForwardCampaignParCR(t *testing.T) {
	a, b := campaignSystem(t)
	const ranks = 2
	base, err := ABFTCR(a, b, ranks, forwardParOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	// CR's protected MVM runs at the tail of every non-final iteration, so
	// the sweep covers 0..Iterations-2.
	runParForwardCampaign(t, func(faults []Fault) (Result, error) {
		return ABFTCR(a, b, ranks, forwardParOptions(faults))
	}, base.Iterations-1, ranks, a.Rows/ranks, base.X)
}
