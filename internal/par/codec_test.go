package par

import (
	"math"
	"testing"

	"newsum/internal/checkpoint"
	"newsum/internal/core"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// TestDistributedLossyRollbackRecovers drives every distributed solver
// through a rollback under the lossy codec: each rank restores quantized
// blocks, re-anchors its partial checksums locally, and the team still
// converges with a clean true residual — no replicated false-alarm storm.
func TestDistributedLossyRollbackRecovers(t *testing.T) {
	a, b, _ := parSystem(t)
	solvers := []struct {
		name string
		run  func(opts Options) (Result, error)
	}{
		{"ABFTPCG", func(opts Options) (Result, error) { return ABFTPCG(a, b, 4, opts) }},
		{"ABFTBiCGStab", func(opts Options) (Result, error) { return ABFTBiCGStab(a, b, 4, opts) }},
		{"ABFTCR", func(opts Options) (Result, error) { return ABFTCR(a, b, 4, opts) }},
	}
	for _, s := range solvers {
		t.Run(s.name, func(t *testing.T) {
			res, err := s.run(Options{
				Tol:                1e-10,
				Faults:             []Fault{{Iteration: 6, Rank: 2, Index: 5}},
				CheckpointCodec:    checkpoint.Lossy,
				CheckpointRelBound: 1e-6,
			})
			if err != nil {
				t.Fatalf("lossy-codec distributed solve failed: %v", err)
			}
			if !res.Converged {
				t.Fatalf("did not converge")
			}
			if res.Rollbacks == 0 {
				t.Fatalf("fault did not force a rollback: %+v", res)
			}
			if res.LossyRestores == 0 {
				t.Errorf("rollback under lossy codec recorded no lossy restore")
			}
			if res.CheckpointBytes <= 0 || res.CheckpointStoredBytes <= 0 {
				t.Errorf("checkpoint byte counters not populated: copied=%d stored=%d",
					res.CheckpointBytes, res.CheckpointStoredBytes)
			}
			if res.CheckpointStoredBytes >= res.CheckpointBytes {
				t.Errorf("lossy codec stored %d bytes, not smaller than the %d logical bytes",
					res.CheckpointStoredBytes, res.CheckpointBytes)
			}
			r := make([]float64, a.Rows)
			a.MulVec(r, res.X)
			vec.Sub(r, b, r)
			if rel := vec.Norm2(r) / vec.Norm2(b); rel > 1e-9 {
				t.Errorf("true residual %.3e after lossy recovery", rel)
			}
		})
	}
}

// TestDistributedDiffCodecBitwiseIdenticalToFull pins the differential
// codec's losslessness across a coordinated multi-rank rollback: the same
// faulted solve under Full and Diff checkpointing walks the identical
// trajectory and lands on the bitwise-identical solution.
func TestDistributedDiffCodecBitwiseIdenticalToFull(t *testing.T) {
	a, b, _ := parSystem(t)
	runWith := func(codec checkpoint.Codec) Result {
		res, err := ABFTPCG(a, b, 4, Options{
			Tol:             1e-10,
			Faults:          []Fault{{Iteration: 6, Rank: 2, Index: 5}},
			CheckpointCodec: codec,
		})
		if err != nil {
			t.Fatalf("codec %v: %v", codec, err)
		}
		return res
	}
	full := runWith(checkpoint.Full)
	diff := runWith(checkpoint.Diff)
	if full.Iterations != diff.Iterations || full.Rollbacks != diff.Rollbacks {
		t.Fatalf("trajectory diverged: full (iters=%d rollbacks=%d), diff (iters=%d rollbacks=%d)",
			full.Iterations, full.Rollbacks, diff.Iterations, diff.Rollbacks)
	}
	for i := range full.X {
		if math.Float64bits(full.X[i]) != math.Float64bits(diff.X[i]) {
			t.Fatalf("x[%d] differs bitwise between full and diff codecs", i)
		}
	}
	if diff.LossyRestores != 0 {
		t.Errorf("diff codec is lossless but recorded %d lossy restores", diff.LossyRestores)
	}
}

// TestDistributedCheckpointFaultLandsInEncodedPayload re-runs the poisoned
// checkpoint scenario under each codec: the strike must land in the stored
// payload regardless of encoding and must never end in silent corruption.
// Under full and diff the restored corruption keeps failing verification —
// a rollback storm. Under lossy the restore re-anchors checksums from the
// restored data (corruption included — the price of lossy state, which
// cannot be told apart from quantization) and restarts the recurrence from
// the restored iterate, so the solve either converges honestly from the
// poisoned starting point — Krylov restarts converge from any iterate, and
// the final answer is verified below — or reports non-convergence. Either
// way the corruption never surfaces as a wrong answer.
func TestDistributedCheckpointFaultLandsInEncodedPayload(t *testing.T) {
	a := sparse.Laplacian2D(16, 16)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	for _, codec := range []checkpoint.Codec{checkpoint.Full, checkpoint.Lossy, checkpoint.Diff} {
		t.Run(codec.String(), func(t *testing.T) {
			res, err := ABFTPCG(a, b, 4, Options{
				Tol:                1e-10,
				CheckpointInterval: 10,
				MaxRollbacks:       5,
				Faults: []Fault{
					// Poison the iteration-10 snapshot, then force a rollback
					// onto it with an output fault two iterations later.
					{Iteration: 10, Rank: 1, Index: 3, Target: TargetCheckpoint},
					{Iteration: 12, Rank: 2, Index: 5},
				},
				CheckpointCodec:    codec,
				CheckpointRelBound: 1e-6,
			})
			if codec == checkpoint.Lossy {
				// The lossy restart may legitimately solve through the
				// poison; what it must never do is deliver a wrong answer.
				if err == nil {
					rr := core.TrueResidual(a, b, res.X)
					if rr > 1e-9 {
						t.Fatalf("codec %v: converged with true residual %.3e — silent corruption", codec, rr)
					}
				}
			} else if err == nil {
				t.Fatalf("codec %v: poisoned checkpoint was silently absorbed (converged=%v)",
					codec, res.Converged)
			}
			if res.InjectedFaults != 2 {
				t.Errorf("codec %v: fired %d faults, want 2", codec, res.InjectedFaults)
			}
			if res.Rollbacks == 0 {
				t.Errorf("codec %v: no rollback, checkpoint corruption never surfaced", codec)
			}
		})
	}
}
