package par

import (
	"fmt"
	"math"
	"testing"

	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// The fault campaign: exhaustively inject one bit-flip at every iteration
// index and every rank of a small distributed solve, and require that every
// fault is detected (or corrected inline) and that the solver still
// converges to the fault-free answer. The sweep is deterministic and
// table-driven: the baseline run fixes the iteration count, then one case
// per (iteration, rank) coordinate re-runs the solve with a single
// scheduled strike. Bit 62 (the high exponent bit) guarantees a detectable
// magnitude change for any struck value: |v| < 2 explodes, |v| ≥ 2
// collapses, and 0 becomes 2.

func campaignSystem(t *testing.T) (*sparse.CSR, []float64) {
	t.Helper()
	a := sparse.Laplacian2D(8, 8)
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = math.Cos(float64(i))
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, xTrue)
	return a, b
}

type campaignCase struct {
	name  string
	fault Fault
}

// campaignCases enumerates one bit-flip per (iteration, rank) coordinate,
// striking a varying local index so the sweep does not privilege element 0.
func campaignCases(iters, ranks int) []campaignCase {
	var cases []campaignCase
	for iter := 0; iter < iters; iter++ {
		for rank := 0; rank < ranks; rank++ {
			cases = append(cases, campaignCase{
				name: fmt.Sprintf("iter=%d/rank=%d", iter, rank),
				fault: Fault{
					Iteration: iter,
					Rank:      rank,
					Index:     (iter + rank) % 5,
					BitFlip:   true,
					Bit:       62,
				},
			})
		}
	}
	return cases
}

func runCampaign(t *testing.T, solve func(faults []Fault) (Result, error), iters, ranks int, baseX []float64) {
	t.Helper()
	injected, detected := 0, 0
	for _, tc := range campaignCases(iters, ranks) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			res, err := solve([]Fault{tc.fault})
			if err != nil {
				t.Fatalf("faulted solve: %v", err)
			}
			if !res.Converged {
				t.Fatal("faulted solve did not converge")
			}
			if res.InjectedFaults != 1 {
				t.Fatalf("fault did not fire exactly once: injected=%d", res.InjectedFaults)
			}
			injected++
			if res.Detections+res.Corrections == 0 {
				t.Errorf("injected fault escaped detection: %+v", res)
			} else {
				detected++
			}
			if !vec.Equal(res.X, baseX, 1e-6) {
				t.Errorf("solution drifted from the fault-free answer")
			}
		})
	}
	if detected != injected {
		t.Errorf("campaign detection rate %d/%d, want 100%%", detected, injected)
	} else {
		t.Logf("campaign: %d/%d faults detected (100%%)", detected, injected)
	}
}

func TestFaultCampaignPCG(t *testing.T) {
	a, b := campaignSystem(t)
	const ranks = 4
	base, err := ABFTPCG(a, b, ranks, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	// Every loop iteration 0..Iterations-1 executes exactly one protected
	// MVM, so every coordinate in the sweep fires.
	runCampaign(t, func(faults []Fault) (Result, error) {
		return ABFTPCG(a, b, ranks, Options{Tol: 1e-10, Faults: faults})
	}, base.Iterations, ranks, base.X)
}

func TestFaultCampaignBiCGStab(t *testing.T) {
	a, b := campaignSystem(t)
	const ranks = 4
	base, err := ABFTBiCGStab(a, b, ranks, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	// The first of BiCGStab's two MVMs per iteration runs unconditionally
	// in every loop pass; the campaign strikes it (MVM: 0 is the zero
	// value). The second MVM gets a separate, shorter sweep below.
	runCampaign(t, func(faults []Fault) (Result, error) {
		return ABFTBiCGStab(a, b, ranks, Options{Tol: 1e-10, Faults: faults})
	}, base.Iterations, ranks, base.X)
}

// TestFaultCampaignBiCGStabSecondMVM sweeps the second protected MVM
// (t = A·ŝ) across iterations on a fixed rank. The final iteration may
// exit early on the intermediate residual without reaching MVM 1, so the
// sweep stops one short.
func TestFaultCampaignBiCGStabSecondMVM(t *testing.T) {
	a, b := campaignSystem(t)
	const ranks = 2
	base, err := ABFTBiCGStab(a, b, ranks, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for iter := 0; iter < base.Iterations-1; iter++ {
		iter := iter
		t.Run(fmt.Sprintf("iter=%d", iter), func(t *testing.T) {
			res, err := ABFTBiCGStab(a, b, ranks, Options{
				Tol:    1e-10,
				Faults: []Fault{{Iteration: iter, Rank: iter % ranks, Index: 1, MVM: 1, BitFlip: true, Bit: 62}},
			})
			if err != nil {
				t.Fatalf("faulted solve: %v", err)
			}
			if res.InjectedFaults != 1 {
				t.Fatalf("fault did not fire exactly once: injected=%d", res.InjectedFaults)
			}
			if res.Detections+res.Corrections == 0 {
				t.Errorf("injected fault escaped detection: %+v", res)
			}
			if !vec.Equal(res.X, base.X, 1e-6) {
				t.Errorf("solution drifted from the fault-free answer")
			}
		})
	}
}

// TestFaultCampaignCR sweeps CR's single protected MVM. The product update
// Aᵣ = A·r runs at the tail of every non-final iteration, so coordinates
// cover 0..Iterations-2.
func TestFaultCampaignCR(t *testing.T) {
	a, b := campaignSystem(t)
	const ranks = 2
	base, err := ABFTCR(a, b, ranks, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	runCampaign(t, func(faults []Fault) (Result, error) {
		return ABFTCR(a, b, ranks, Options{Tol: 1e-10, Faults: faults})
	}, base.Iterations-1, ranks, base.X)
}

// TestFaultCampaignTwoLevelPCG re-runs the PCG sweep with additive faults
// under the two-level scheme: every single error must be corrected inline
// with no rollback.
func TestFaultCampaignTwoLevelPCG(t *testing.T) {
	a, b := campaignSystem(t)
	const ranks = 4
	base, err := ABFTPCG(a, b, ranks, Options{Tol: 1e-10, TwoLevel: true})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for iter := 0; iter < base.Iterations; iter++ {
		for rank := 0; rank < ranks; rank++ {
			iter, rank := iter, rank
			t.Run(fmt.Sprintf("iter=%d/rank=%d", iter, rank), func(t *testing.T) {
				res, err := ABFTPCG(a, b, ranks, Options{
					Tol:      1e-10,
					TwoLevel: true,
					Faults:   []Fault{{Iteration: iter, Rank: rank, Index: (iter + rank) % 5}},
				})
				if err != nil {
					t.Fatalf("faulted solve: %v", err)
				}
				if res.InjectedFaults != 1 {
					t.Fatalf("fault did not fire exactly once: injected=%d", res.InjectedFaults)
				}
				if res.Corrections != 1 {
					t.Errorf("single error not corrected inline: %+v", res)
				}
				if res.Rollbacks != 0 {
					t.Errorf("single error should not roll back: %+v", res)
				}
				if !vec.Equal(res.X, base.X, 1e-6) {
					t.Errorf("solution drifted from the fault-free answer")
				}
			})
		}
	}
}
