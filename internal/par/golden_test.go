package par

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"newsum/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// The distributed golden traces pin the team timeline (recorded by rank 0,
// whose verdicts every rank replicates) of deterministic faulty solves.
// Regenerate intentionally with
//
//	go test ./internal/par -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	a, b := campaignSystem(t)
	base := Options{
		Tol:                1e-10,
		DetectInterval:     2,
		CheckpointInterval: 10,
		MaxRollbacks:       6,
	}
	cases := []struct {
		name     string
		faults   []Fault
		run      func(o Options) (Result, error)
		wantFail bool
	}{
		{
			name:   "pcg_flip",
			faults: []Fault{{Iteration: 5, Rank: 1, Index: 2, BitFlip: true, Bit: 62}},
			run:    func(o Options) (Result, error) { return ABFTPCG(a, b, 2, o) },
		},
		{
			name:   "bicgstab_checksum_target",
			faults: []Fault{{Iteration: 5, Rank: 0, Target: TargetChecksum, BitFlip: true, Bit: 62}},
			run:    func(o Options) (Result, error) { return ABFTBiCGStab(a, b, 2, o) },
		},
		{
			name:   "cr_correlated",
			faults: CorrelatedFaults(Fault{Iteration: 4, Index: 1, BitFlip: true, Bit: 62}, 2),
			run:    func(o Options) (Result, error) { return ABFTCR(a, b, 2, o) },
		},
		{
			name: "pcg_checkpoint_attack",
			faults: []Fault{
				{Iteration: 0, Rank: 0, Target: TargetCheckpoint, BitFlip: true, Bit: 62},
				{Iteration: 7, Rank: 1, BitFlip: true, Bit: 62},
			},
			run:      func(o Options) (Result, error) { return ABFTPCG(a, b, 2, o) },
			wantFail: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base
			o.Faults = tc.faults
			res, err := tc.run(o)
			if tc.wantFail && err == nil {
				t.Fatalf("expected the run to fail")
			}
			if !tc.wantFail && err != nil {
				t.Fatalf("solve: %v", err)
			}
			compareGolden(t, filepath.Join("testdata", tc.name+".golden"), formatTrace(res.Trace))
		})
	}
}

func formatTrace(events []core.TraceEvent) string {
	var sb strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&sb, "%4d  %-10s  %s\n", ev.Iteration, ev.Kind, ev.Detail)
	}
	return sb.String()
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("trace diverges from %s (run with -update if intended)\n--- want\n%s--- got\n%s", path, want, got)
	}
}
