package par

import (
	"fmt"
	"math"

	"newsum/internal/checksum"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// Partition is a contiguous row partition of N rows over Ranks() ranks:
// rank r owns rows [Bounds[r], Bounds[r+1]). Bounds is non-decreasing with
// Bounds[0] = 0 and Bounds[len-1] = N, so every row is owned by exactly
// one rank and empty ranks are representable.
type Partition struct {
	N      int
	Bounds []int
}

// Ranks returns the number of ranks the partition covers.
func (p Partition) Ranks() int { return len(p.Bounds) - 1 }

// Range returns the row range [lo, hi) owned by rank r.
func (p Partition) Range(r int) (lo, hi int) {
	return p.Bounds[r], p.Bounds[r+1]
}

// LocalLen returns the number of rows rank r owns.
func (p Partition) LocalLen(r int) int {
	return p.Bounds[r+1] - p.Bounds[r]
}

// Validate checks the partition invariants.
func (p Partition) Validate() error {
	if len(p.Bounds) < 2 {
		return fmt.Errorf("par: partition needs at least one rank")
	}
	if p.Bounds[0] != 0 || p.Bounds[len(p.Bounds)-1] != p.N {
		return fmt.Errorf("par: partition bounds must span [0, %d], got [%d, %d]",
			p.N, p.Bounds[0], p.Bounds[len(p.Bounds)-1])
	}
	for r := 1; r < len(p.Bounds); r++ {
		if p.Bounds[r] < p.Bounds[r-1] {
			return fmt.Errorf("par: partition bounds decrease at rank %d", r)
		}
	}
	return nil
}

// EvenPartition block-partitions n rows evenly over size ranks — the
// PETSc-default distribution BlockRange implements, lifted to a Partition.
func EvenPartition(n, size int) Partition {
	if size < 1 {
		panic("par: partition size must be >= 1")
	}
	bounds := make([]int, size+1)
	for r := 0; r <= size; r++ {
		bounds[r] = r * n / size
	}
	return Partition{N: n, Bounds: bounds}
}

// NnzPartition partitions a's rows so each rank carries a near-equal share
// of the nonzeros — the quantity that actually sets a rank's SpMV and
// ILU(0) cost. Boundaries land where the running nonzero count crosses the
// rank's proportional share (choosing the nearer row), then are repaired so
// no rank is empty whenever a.Rows >= size. For uniform matrices this
// coincides with EvenPartition; for skewed ones (circuit-like matrices with
// dense hub rows) it removes the load imbalance that made the even split a
// straggler-bound demo.
func NnzPartition(a *sparse.CSR, size int) Partition {
	if size < 1 {
		panic("par: partition size must be >= 1")
	}
	n := a.Rows
	nnz := int64(a.NNZ())
	bounds := make([]int, size+1)
	row := 0
	for r := 1; r < size; r++ {
		target := nnz * int64(r) / int64(size)
		for row < n && int64(a.RowPtr[row]) < target {
			row++
		}
		// The crossing row: step back when the previous boundary is closer
		// to the target share (and still past the previous bound).
		if row > bounds[r-1] && row > 0 {
			below := target - int64(a.RowPtr[row-1])
			above := int64(a.RowPtr[row]) - target
			if below < above {
				row--
			}
		}
		bounds[r] = row
	}
	bounds[size] = n
	if n >= size {
		// Repair pass: guarantee at least one row per rank so rank-local
		// preconditioner blocks are never empty.
		for r := 1; r <= size; r++ {
			if bounds[r] < r {
				bounds[r] = r
			}
		}
		for r := size - 1; r >= 1; r-- {
			if max := n - (size - r); bounds[r] > max {
				bounds[r] = max
			}
		}
	}
	return Partition{N: n, Bounds: bounds}
}

// NnzImbalance returns the partition's load-imbalance factor for a: the
// largest per-rank nonzero count divided by the ideal nnz/ranks share.
// 1.0 is perfect balance.
func (p Partition) NnzImbalance(a *sparse.CSR) float64 {
	ranks := p.Ranks()
	nnz := a.NNZ()
	if nnz == 0 || ranks == 0 {
		return 1
	}
	ideal := float64(nnz) / float64(ranks)
	var worst float64
	for r := 0; r < ranks; r++ {
		lo, hi := p.Range(r)
		if load := float64(a.RowPtr[hi] - a.RowPtr[lo]); load > worst {
			worst = load
		}
	}
	return worst / ideal
}

// DistMatrix is the row-block partition of a sparse matrix held by one
// rank: rows [Lo, Hi) of the global matrix, with global column indices.
type DistMatrix struct {
	Global *sparse.CSR
	Lo, Hi int
}

// Split returns rank r's row block of a under the even block partition.
func Split(a *sparse.CSR, size, r int) *DistMatrix {
	lo, hi := BlockRange(a.Rows, size, r)
	return &DistMatrix{Global: a, Lo: lo, Hi: hi}
}

// SplitPartition returns rank r's row block of a under an explicit
// partition (the engine uses NnzPartition).
func SplitPartition(a *sparse.CSR, p Partition, r int) *DistMatrix {
	lo, hi := p.Range(r)
	return &DistMatrix{Global: a, Lo: lo, Hi: hi}
}

// LocalRows returns the number of rows this rank owns.
func (d *DistMatrix) LocalRows() int { return d.Hi - d.Lo }

// LocalNNZ returns the number of nonzeros in this rank's row block.
func (d *DistMatrix) LocalNNZ() int {
	return d.Global.RowPtr[d.Hi] - d.Global.RowPtr[d.Lo]
}

// MulVec computes the local block of y = A·x: yLocal gets rows [Lo, Hi) of
// the product, from the full (gathered) input vector xGlobal.
func (d *DistMatrix) MulVec(yLocal, xGlobal []float64) {
	a := d.Global
	if len(xGlobal) != a.Cols || len(yLocal) != d.LocalRows() {
		panic("par: dimension mismatch in DistMatrix.MulVec")
	}
	for i := d.Lo; i < d.Hi; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * xGlobal[a.ColIdx[k]]
		}
		yLocal[i-d.Lo] = s
	}
}

// DistVector is one rank's block of a distributed vector together with its
// rank-local contribution to the global checksums. The global checksum of
// the full vector is the all-reduced sum of the local parts — which is why
// the paper's design can keep all checksum state local and still verify
// global relationships with one scalar reduction.
type DistVector struct {
	Data []float64
	// S holds this rank's partial checksums Σ_{i∈block} c_k(i)·v_i.
	S []float64
}

// NewDistVector allocates a zero block of the given local length with
// nWeights checksum slots.
func NewDistVector(localLen, nWeights int) *DistVector {
	return &DistVector{Data: make([]float64, localLen), S: make([]float64, nWeights)}
}

// LocalChecksums recomputes the rank-local partial checksums of v for the
// weights, offset by the rank's global row offset.
func (v *DistVector) LocalChecksums(weights []checksum.Weight, offset int) {
	for k, w := range weights {
		var s float64
		for i, x := range v.Data {
			s += w.At(offset+i) * x
		}
		v.S[k] = s
	}
}

// GlobalDot computes the global inner product of two distributed vectors.
func GlobalDot(c *Comm, a, b *DistVector) float64 {
	return c.AllReduceSum(vec.Dot(a.Data, b.Data))
}

// GlobalNorm2 computes the global Euclidean norm of a distributed vector.
func GlobalNorm2(c *Comm, a *DistVector) float64 {
	return math.Sqrt(c.AllReduceSum(vec.Dot(a.Data, a.Data)))
}

// VerifyGlobal checks the global checksum relationship of v for weight k:
// it all-reduces the locally recomputed partial weighted sum and the
// locally carried partial checksum and compares them with the engine
// tolerance rule. Every rank returns the same verdict.
func VerifyGlobal(c *Comm, v *DistVector, w checksum.Weight, k int, offset, n int, tol checksum.Tol) bool {
	var sum, absSum float64
	for i, x := range v.Data {
		t := w.At(offset+i) * x
		sum += t
		absSum += math.Abs(t)
	}
	gSum := c.AllReduceSum(sum)
	gAbs := c.AllReduceSum(absSum)
	gS := c.AllReduceSum(v.S[k])
	return tol.ConsistentAbs(gSum-gS, n, gAbs)
}
