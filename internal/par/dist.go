package par

import (
	"math"

	"newsum/internal/checksum"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// DistMatrix is the row-block partition of a sparse matrix held by one
// rank: rows [Lo, Hi) of the global matrix, with global column indices.
type DistMatrix struct {
	Global *sparse.CSR
	Lo, Hi int
}

// Split returns rank r's row block of a for a team of the given size.
func Split(a *sparse.CSR, size, r int) *DistMatrix {
	lo, hi := BlockRange(a.Rows, size, r)
	return &DistMatrix{Global: a, Lo: lo, Hi: hi}
}

// LocalRows returns the number of rows this rank owns.
func (d *DistMatrix) LocalRows() int { return d.Hi - d.Lo }

// MulVec computes the local block of y = A·x: yLocal gets rows [Lo, Hi) of
// the product, from the full (gathered) input vector xGlobal.
func (d *DistMatrix) MulVec(yLocal, xGlobal []float64) {
	a := d.Global
	if len(xGlobal) != a.Cols || len(yLocal) != d.LocalRows() {
		panic("par: dimension mismatch in DistMatrix.MulVec")
	}
	for i := d.Lo; i < d.Hi; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * xGlobal[a.ColIdx[k]]
		}
		yLocal[i-d.Lo] = s
	}
}

// DistVector is one rank's block of a distributed vector together with its
// rank-local contribution to the global checksums. The global checksum of
// the full vector is the all-reduced sum of the local parts — which is why
// the paper's design can keep all checksum state local and still verify
// global relationships with one scalar reduction.
type DistVector struct {
	Data []float64
	// S holds this rank's partial checksums Σ_{i∈block} c_k(i)·v_i.
	S []float64
}

// NewDistVector allocates a zero block of the given local length with
// nWeights checksum slots.
func NewDistVector(localLen, nWeights int) *DistVector {
	return &DistVector{Data: make([]float64, localLen), S: make([]float64, nWeights)}
}

// LocalChecksums recomputes the rank-local partial checksums of v for the
// weights, offset by the rank's global row offset.
func (v *DistVector) LocalChecksums(weights []checksum.Weight, offset int) {
	for k, w := range weights {
		var s float64
		for i, x := range v.Data {
			s += w.At(offset+i) * x
		}
		v.S[k] = s
	}
}

// GlobalDot computes the global inner product of two distributed vectors.
func GlobalDot(c *Comm, a, b *DistVector) float64 {
	return c.AllReduceSum(vec.Dot(a.Data, b.Data))
}

// GlobalNorm2 computes the global Euclidean norm of a distributed vector.
func GlobalNorm2(c *Comm, a *DistVector) float64 {
	return math.Sqrt(c.AllReduceSum(vec.Dot(a.Data, a.Data)))
}

// VerifyGlobal checks the global checksum relationship of v for weight k:
// it all-reduces the locally recomputed partial weighted sum and the
// locally carried partial checksum and compares them with the engine
// tolerance rule. Every rank returns the same verdict.
func VerifyGlobal(c *Comm, v *DistVector, w checksum.Weight, k int, offset, n int, tol checksum.Tol) bool {
	var sum, absSum float64
	for i, x := range v.Data {
		t := w.At(offset+i) * x
		sum += t
		absSum += math.Abs(t)
	}
	gSum := c.AllReduceSum(sum)
	gAbs := c.AllReduceSum(absSum)
	gS := c.AllReduceSum(v.S[k])
	return tol.ConsistentAbs(gSum-gS, n, gAbs)
}
