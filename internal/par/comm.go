// Package par is the parallel execution substrate standing in for the
// paper's MPI/PETSc runs on 2048 Stampede cores: goroutine "ranks" joined
// by message-passing collectives (barrier, all-reduce, all-gather,
// broadcast), a row-partitioned distributed sparse matrix, and a family of
// distributed ABFT solvers — PCG, BiCGStab and CR — built on a shared
// per-rank engine whose checkpoints and checksum state are rank-local, the
// property §5.1 highlights for scalability ("all the checkpoints and
// checksums are saved locally").
package par

import (
	"fmt"
	"sync"
)

// Topology selects the collective algorithm family of a team.
type Topology int

const (
	// Tree is the default: recursive-doubling all-reduce and all-gather,
	// binomial-tree broadcast, and a dissemination barrier — O(log P)
	// rounds of pairwise channel exchanges, no shared accumulator. The
	// reduction combines block sums with the same association tree on
	// every rank (IEEE-754 addition is commutative), so all ranks obtain
	// bitwise-identical results and the solvers' replicated control flow
	// stays in lockstep.
	Tree Topology = iota
	// Linear is the original rendezvous implementation: every rank funnels
	// through one mutex-guarded accumulator, O(P) serialization per
	// collective. It is kept as the baseline the collective benchmarks
	// compare against.
	Linear
)

func (t Topology) String() string {
	switch t {
	case Tree:
		return "tree"
	case Linear:
		return "linear"
	default:
		return "unknown"
	}
}

// CommStats counts the communication work one rank performed. Every
// counter is rank-local (written only by the owning goroutine); sum the
// ranks' stats for team totals.
type CommStats struct {
	// Barriers counts explicit Barrier calls.
	Barriers int
	// Reductions counts scalar all-reduces — the dominant collective of
	// the ABFT solvers (dot products, global checksum probes).
	Reductions int
	// VecReductions counts vector all-reduces (setup-time checksum-row
	// assembly).
	VecReductions int
	// Gathers counts all-gathers (the halo exchange of each distributed
	// MVM).
	Gathers int
	// Broadcasts counts broadcast collectives.
	Broadcasts int
	// MsgsSent counts point-to-point messages this rank sent (Tree), or
	// rendezvous phases it entered (Linear).
	MsgsSent int64
	// WordsMoved counts float64 payload words this rank sent.
	WordsMoved int64
}

// Merge adds o's counters into s.
func (s *CommStats) Merge(o CommStats) {
	s.Barriers += o.Barriers
	s.Reductions += o.Reductions
	s.VecReductions += o.VecReductions
	s.Gathers += o.Gathers
	s.Broadcasts += o.Broadcasts
	s.MsgsSent += o.MsgsSent
	s.WordsMoved += o.WordsMoved
}

// Collectives returns the total number of collective operations counted.
func (s CommStats) Collectives() int {
	return s.Barriers + s.Reductions + s.VecReductions + s.Gathers + s.Broadcasts
}

// segment is one rank's contiguous block of a distributed vector in
// flight: global[off:off+len(data)] = data.
type segment struct {
	off  int
	data []float64
}

// message is one point-to-point payload. Exactly one of data/segs is
// meaningful per collective; barrier tokens carry neither. Payload slices
// are never mutated after send, so forwarding them (all-gather) is safe.
type message struct {
	data []float64
	segs []segment
}

// team is the shared state of one communicator group.
type team struct {
	size int
	topo Topology

	// Rendezvous state (Linear topology).
	mu     sync.Mutex
	cond   *sync.Cond
	gen    int
	cnt    int
	sum    float64
	result float64
	vecAcc []float64
	gather []float64

	// Point-to-point mesh (Tree topology): ch[from][to] carries messages
	// from rank `from` to rank `to`. Capacity 2 with at most one message
	// per ordered pair per collective makes a send-blocked cycle require a
	// strictly decreasing chain of collective indices around the cycle —
	// impossible — so the mesh is deadlock-free.
	ch [][]chan message
}

// Comm is one rank's handle on a communicator of Size() ranks. All
// collective calls must be made by every rank of the team (they block
// until the whole team arrives), in the same order on every rank. A Comm
// must be used by a single goroutine.
type Comm struct {
	rank  int
	t     *team
	stats CommStats
}

// NewTeam creates a communicator team of the given size with the default
// Tree topology and returns one Comm per rank.
func NewTeam(size int) []*Comm {
	return NewTeamTopology(size, Tree)
}

// NewTeamTopology creates a communicator team with an explicit collective
// topology.
func NewTeamTopology(size int, topo Topology) []*Comm {
	if size < 1 {
		panic("par: team size must be >= 1")
	}
	t := &team{size: size, topo: topo}
	switch topo {
	case Linear:
		t.cond = sync.NewCond(&t.mu)
	case Tree:
		t.ch = make([][]chan message, size)
		for from := range t.ch {
			t.ch[from] = make([]chan message, size)
			for to := range t.ch[from] {
				if to != from {
					t.ch[from][to] = make(chan message, 2)
				}
			}
		}
	default:
		panic("par: unknown topology")
	}
	comms := make([]*Comm, size)
	for r := range comms {
		comms[r] = &Comm{rank: r, t: t}
	}
	return comms
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the team.
func (c *Comm) Size() int { return c.t.size }

// Topology returns the team's collective topology.
func (c *Comm) Topology() Topology { return c.t.topo }

// Stats returns a snapshot of this rank's communication counters.
func (c *Comm) Stats() CommStats { return c.stats }

// ResetStats zeroes this rank's communication counters.
func (c *Comm) ResetStats() { c.stats = CommStats{} }

// send delivers a message to rank `to`, accounting for the payload.
func (c *Comm) send(to int, m message) {
	c.stats.MsgsSent++
	words := int64(len(m.data))
	for _, s := range m.segs {
		words += int64(len(s.data))
	}
	c.stats.WordsMoved += words
	c.t.ch[c.rank][to] <- m
}

// recv blocks for the next message from rank `from`.
func (c *Comm) recv(from int) message {
	return <-c.t.ch[from][c.rank]
}

// coreSize returns the largest power of two not exceeding p — the
// recursive-doubling core; ranks beyond it fold their contribution in and
// receive the result back.
func coreSize(p int) int {
	core := 1
	for core*2 <= p {
		core *= 2
	}
	return core
}

// arrive is the Linear rendezvous: body runs under the team lock for every
// arriving rank; the last arrival runs last (also under the lock),
// advances the generation and wakes the team.
func (c *Comm) arrive(body func(t *team), last func(t *team)) {
	t := c.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if body != nil {
		body(t)
	}
	t.cnt++
	if t.cnt == t.size {
		if last != nil {
			last(t)
		}
		t.cnt = 0
		t.gen++
		t.cond.Broadcast()
		return
	}
	gen := t.gen
	for gen == t.gen {
		t.cond.Wait()
	}
}

// barrier blocks until every rank has entered, without touching the
// Barriers counter (collective-internal rendezvous under Linear).
func (c *Comm) barrier() {
	if c.t.size == 1 {
		return
	}
	if c.t.topo == Linear {
		c.arrive(nil, nil)
		return
	}
	// Dissemination barrier: ceil(log2 P) token rounds.
	p := c.t.size
	for k := 1; k < p; k <<= 1 {
		c.send((c.rank+k)%p, message{})
		c.recv((c.rank - k + p) % p)
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.stats.Barriers++
	c.barrier()
}

// AllReduceSum returns the sum of v over all ranks, on every rank — the
// collective behind distributed dot products and global checksum probes.
// Every rank receives the bitwise-identical result.
func (c *Comm) AllReduceSum(v float64) float64 {
	c.stats.Reductions++
	if c.t.size == 1 {
		return v
	}
	if c.t.topo == Linear {
		return c.allReduceSumLinear(v)
	}
	return c.allReduceSumTree(v)
}

func (c *Comm) allReduceSumLinear(v float64) float64 {
	c.stats.MsgsSent++
	c.stats.WordsMoved++
	c.arrive(
		func(t *team) {
			if t.cnt == 0 {
				t.sum = 0
			}
			t.sum += v
		},
		func(t *team) { t.result = t.sum },
	)
	// result is stable until the next reducing collective, which this rank
	// cannot start before every rank has left (each later collective has
	// its own generation); reading it here is race-free because arrive
	// released the lock only after result was written.
	c.t.mu.Lock()
	r := c.t.result
	c.t.mu.Unlock()
	return r
}

// allReduceSumTree is the recursive-doubling scalar all-reduce with the
// standard fold for non-power-of-two team sizes. After round k every rank
// of a 2^k block holds the same block sum (addition is commutative), so
// the final value is identical on every rank.
func (c *Comm) allReduceSumTree(v float64) float64 {
	p := c.t.size
	core := coreSize(p)
	rem := p - core
	rank := c.rank
	if rank >= core {
		// Fold in: hand the contribution to the core partner, wait for
		// the reduced result.
		c.send(rank-core, message{data: []float64{v}})
		return c.recv(rank - core).data[0]
	}
	if rank < rem {
		v += c.recv(rank + core).data[0]
	}
	for mask := 1; mask < core; mask <<= 1 {
		partner := rank ^ mask
		c.send(partner, message{data: []float64{v}})
		v += c.recv(partner).data[0]
	}
	if rank < rem {
		c.send(rank+core, message{data: []float64{v}})
	}
	return v
}

// AllReduceVec element-wise sums the ranks' src slices (all the same
// length) and stores the total into dst on every rank. dst and src may
// alias.
func (c *Comm) AllReduceVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic("par: length mismatch in AllReduceVec")
	}
	c.stats.VecReductions++
	if c.t.size == 1 {
		copy(dst, src)
		return
	}
	if c.t.topo == Linear {
		c.allReduceVecLinear(dst, src)
		return
	}
	c.allReduceVecTree(dst, src)
}

func (c *Comm) allReduceVecLinear(dst, src []float64) {
	c.stats.MsgsSent++
	c.stats.WordsMoved += int64(len(src))
	c.arrive(
		func(t *team) {
			if t.cnt == 0 {
				if len(t.vecAcc) < len(src) {
					t.vecAcc = make([]float64, len(src))
				}
				t.vecAcc = t.vecAcc[:len(src)]
				for i := range t.vecAcc {
					t.vecAcc[i] = 0
				}
			}
			for i, x := range src {
				t.vecAcc[i] += x
			}
		},
		nil,
	)
	c.t.mu.Lock()
	copy(dst, c.t.vecAcc)
	c.t.mu.Unlock()
	// Second rendezvous so no rank can start the next vector reduction
	// while others are still copying the result out.
	c.barrier()
}

func (c *Comm) allReduceVecTree(dst, src []float64) {
	p := c.t.size
	core := coreSize(p)
	rem := p - core
	rank := c.rank
	acc := append([]float64(nil), src...)
	if rank >= core {
		c.send(rank-core, message{data: acc})
		copy(dst, c.recv(rank-core).data)
		return
	}
	addIn := func(m message) {
		for i, x := range m.data {
			acc[i] += x
		}
	}
	if rank < rem {
		addIn(c.recv(rank + core))
	}
	for mask := 1; mask < core; mask <<= 1 {
		partner := rank ^ mask
		c.send(partner, message{data: append([]float64(nil), acc...)})
		addIn(c.recv(partner))
	}
	if rank < rem {
		c.send(rank+core, message{data: append([]float64(nil), acc...)})
	}
	copy(dst, acc)
}

// AllGather concatenates each rank's local block into the global vector on
// every rank: global[offset(r):offset(r)+len(local_r)] = local_r. The
// caller supplies the rank's offset; the global buffer must be the same
// length on every rank. This is the halo exchange of the distributed MVM
// (each rank needs the full input vector for its row block).
func (c *Comm) AllGather(global []float64, local []float64, offset int) {
	if offset < 0 || offset+len(local) > len(global) {
		panic(fmt.Sprintf("par: AllGather block [%d,%d) outside global %d", offset, offset+len(local), len(global)))
	}
	c.stats.Gathers++
	if c.t.size == 1 {
		copy(global[offset:offset+len(local)], local)
		return
	}
	if c.t.topo == Linear {
		c.allGatherLinear(global, local, offset)
		return
	}
	c.allGatherTree(global, local, offset)
}

func (c *Comm) allGatherLinear(global, local []float64, offset int) {
	c.stats.MsgsSent++
	c.stats.WordsMoved += int64(len(local))
	c.arrive(
		func(t *team) {
			if t.cnt == 0 {
				if len(t.gather) < len(global) {
					t.gather = make([]float64, len(global))
				}
			}
			copy(t.gather[offset:offset+len(local)], local)
		},
		nil,
	)
	c.t.mu.Lock()
	copy(global, c.t.gather[:len(global)])
	c.t.mu.Unlock()
	c.barrier()
}

// allGatherTree is the recursive-doubling all-gather: each round doubles
// the set of blocks a rank holds; segments ride with their global offsets
// so the partition may be arbitrary (nnz-balanced blocks included).
func (c *Comm) allGatherTree(global, local []float64, offset int) {
	p := c.t.size
	core := coreSize(p)
	rem := p - core
	rank := c.rank
	segs := []segment{{off: offset, data: append([]float64(nil), local...)}}
	place := func(into []float64, ss []segment) {
		for _, s := range ss {
			copy(into[s.off:s.off+len(s.data)], s.data)
		}
	}
	if rank >= core {
		// Fold in: the block joins the core partner's set before the
		// doubling rounds, so the echoed result includes it.
		c.send(rank-core, message{segs: segs})
		place(global, c.recv(rank-core).segs)
		return
	}
	if rank < rem {
		segs = append(segs, c.recv(rank+core).segs...)
	}
	for mask := 1; mask < core; mask <<= 1 {
		partner := rank ^ mask
		c.send(partner, message{segs: segs})
		segs = append(segs, c.recv(partner).segs...)
	}
	if rank < rem {
		c.send(rank+core, message{segs: segs})
	}
	place(global, segs)
}

// Bcast distributes root's value to every rank.
func (c *Comm) Bcast(v float64, root int) float64 {
	if root < 0 || root >= c.t.size {
		panic(fmt.Sprintf("par: Bcast root %d outside team of %d", root, c.t.size))
	}
	c.stats.Broadcasts++
	if c.t.size == 1 {
		return v
	}
	if c.t.topo == Linear {
		return c.bcastLinear(v, root)
	}
	return c.bcastTree(v, root)
}

func (c *Comm) bcastLinear(v float64, root int) float64 {
	if c.rank == root {
		c.stats.MsgsSent++
		c.stats.WordsMoved++
	}
	c.arrive(
		func(t *team) {
			if c.rank == root {
				t.result = v
			}
		},
		nil,
	)
	c.t.mu.Lock()
	r := c.t.result
	c.t.mu.Unlock()
	c.barrier()
	return r
}

// bcastTree is the binomial-tree broadcast rooted at root: a rank receives
// from the peer that clears its lowest set (root-relative) bit, then
// forwards down the remaining subtree — log2 P rounds, each rank sends at
// most log2 P messages.
func (c *Comm) bcastTree(v float64, root int) float64 {
	p := c.t.size
	vrank := (c.rank - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			v = c.recv((c.rank - mask + p) % p).data[0]
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			c.send((c.rank+mask)%p, message{data: []float64{v}})
		}
		mask >>= 1
	}
	return v
}

// BlockRange returns the contiguous row range [lo, hi) owned by rank r when
// n rows are block-partitioned evenly over size ranks, matching PETSc's
// default distribution. Ranks beyond n receive empty ranges.
func BlockRange(n, size, r int) (lo, hi int) {
	lo = r * n / size
	hi = (r + 1) * n / size
	return lo, hi
}
