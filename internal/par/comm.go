// Package par is the parallel execution substrate standing in for the
// paper's MPI/PETSc runs on 2048 Stampede cores: goroutine "ranks" joined by
// channel/condition-variable collectives (barrier, all-reduce, all-gather),
// a row-partitioned distributed sparse matrix, and a distributed ABFT PCG
// whose checkpoints and checksum state are rank-local — the property §5.1
// highlights for scalability ("all the checkpoints and checksums are saved
// locally").
package par

import (
	"fmt"
	"sync"
)

// team is the shared collective state of one communicator group.
type team struct {
	size int

	mu   sync.Mutex
	cond *sync.Cond
	gen  int
	cnt  int

	sum    float64
	result float64

	vecAcc []float64
	vecRes []float64

	gather []float64
}

// Comm is one rank's handle on a communicator of Size() ranks. All
// collective calls must be made by every rank of the team (they block until
// the whole team arrives), in the same order on every rank.
type Comm struct {
	rank int
	t    *team
}

// NewTeam creates a communicator team of the given size and returns one
// Comm per rank.
func NewTeam(size int) []*Comm {
	if size < 1 {
		panic("par: team size must be >= 1")
	}
	t := &team{size: size}
	t.cond = sync.NewCond(&t.mu)
	comms := make([]*Comm, size)
	for r := range comms {
		comms[r] = &Comm{rank: r, t: t}
	}
	return comms
}

// Rank returns this rank's index in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the team.
func (c *Comm) Size() int { return c.t.size }

// arrive is the generic phase rendezvous: body runs under the team lock for
// every arriving rank; the last arrival runs last (also under the lock),
// advances the generation and wakes the team.
func (c *Comm) arrive(body func(t *team), last func(t *team)) {
	t := c.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if body != nil {
		body(t)
	}
	t.cnt++
	if t.cnt == t.size {
		if last != nil {
			last(t)
		}
		t.cnt = 0
		t.gen++
		t.cond.Broadcast()
		return
	}
	gen := t.gen
	for gen == t.gen {
		t.cond.Wait()
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	c.arrive(nil, nil)
}

// AllReduceSum returns the sum of v over all ranks, on every rank. It is
// the collective behind distributed dot products and global checksums.
func (c *Comm) AllReduceSum(v float64) float64 {
	c.arrive(
		func(t *team) {
			if t.cnt == 0 {
				t.sum = 0
			}
			t.sum += v
		},
		func(t *team) { t.result = t.sum },
	)
	// result is stable until the next reducing collective, which this rank
	// cannot start before every rank has left (each later collective has
	// its own generation); reading it here is race-free because arrive
	// released the lock only after result was written.
	c.t.mu.Lock()
	r := c.t.result
	c.t.mu.Unlock()
	return r
}

// AllReduceVec element-wise sums the ranks' src slices (all the same
// length) and stores the total into dst on every rank. dst and src may
// alias.
func (c *Comm) AllReduceVec(dst, src []float64) {
	if len(dst) != len(src) {
		panic("par: length mismatch in AllReduceVec")
	}
	c.arrive(
		func(t *team) {
			if t.cnt == 0 {
				if len(t.vecAcc) < len(src) {
					t.vecAcc = make([]float64, len(src))
				}
				t.vecAcc = t.vecAcc[:len(src)]
				for i := range t.vecAcc {
					t.vecAcc[i] = 0
				}
			}
			for i, x := range src {
				t.vecAcc[i] += x
			}
		},
		nil,
	)
	c.t.mu.Lock()
	copy(dst, c.t.vecAcc)
	c.t.mu.Unlock()
	// Second rendezvous so no rank can start the next vector reduction
	// while others are still copying the result out.
	c.Barrier()
}

// AllGather concatenates each rank's local block into the global vector on
// every rank: global[offset(r):offset(r)+len(local_r)] = local_r. The
// caller supplies the rank's offset; the global buffer must be the same
// length on every rank. This is the halo exchange of the distributed MVM
// (each rank needs the full input vector for its row block).
func (c *Comm) AllGather(global []float64, local []float64, offset int) {
	if offset < 0 || offset+len(local) > len(global) {
		panic(fmt.Sprintf("par: AllGather block [%d,%d) outside global %d", offset, offset+len(local), len(global)))
	}
	c.arrive(
		func(t *team) {
			if t.cnt == 0 {
				if len(t.gather) < len(global) {
					t.gather = make([]float64, len(global))
				}
			}
			copy(t.gather[offset:offset+len(local)], local)
		},
		nil,
	)
	c.t.mu.Lock()
	copy(global, c.t.gather[:len(global)])
	c.t.mu.Unlock()
	c.Barrier()
}

// Bcast distributes root's value to every rank.
func (c *Comm) Bcast(v float64, root int) float64 {
	c.arrive(
		func(t *team) {
			if c.rank == root {
				t.result = v
			}
		},
		nil,
	)
	c.t.mu.Lock()
	r := c.t.result
	c.t.mu.Unlock()
	c.Barrier()
	return r
}

// BlockRange returns the contiguous row range [lo, hi) owned by rank r when
// n rows are block-partitioned over size ranks, matching PETSc's default
// distribution.
func BlockRange(n, size, r int) (lo, hi int) {
	lo = r * n / size
	hi = (r + 1) * n / size
	return lo, hi
}
