package par

import (
	"math"

	"newsum/internal/checksum"
	"newsum/internal/core"
)

// This file is the distributed forward-recovery tier (ROADMAP item 5, after
// Fasi–Langou–Robert–Uçar, arXiv:1511.04478), mirroring
// internal/core/forward.go: when an outer-level verification fires under
// Options.ForwardRecovery, the team re-measures all three §5.2 checksum
// relations of the suspect vector through all-reduces and repairs it in
// place when the triple-checksum analysis localizes the corruption. Every
// verdict derives from all-reduced values, so the classification — and
// therefore the control flow — is identical on every rank; only the owner
// rank touches data, followed by a barrier.

// forwardOutcome classifies one attempt to repair an outer-level distributed
// vector in place after a failed verification. It is a local copy of core's
// unexported enum with the same meaning.
type forwardOutcome int

const (
	// forwardClean: every relation held on re-measurement — the triggering
	// probe fired on threshold-level noise; the checksums were re-anchored.
	forwardClean forwardOutcome = iota
	// forwardReanchored: exactly one relation was broken, which no data
	// error can produce — the corrupted site was the carried checksum
	// state; it was re-derived from the (trustworthy) data.
	forwardReanchored
	// forwardCorrected: the §5.2 single-error test passed, the owner rank
	// corrected the located element, and the post-repair confirmation
	// verified all three relations globally.
	forwardCorrected
	// forwardRejected: a correction was applied but the confirmation
	// failed — a fake-correction candidate, undone; rollback required.
	forwardRejected
	// forwardFailed: localization failed (multiple errors); rollback
	// required (the caller may still reconstruct the vector from clean
	// state where an identity such as r = b − A·x is available).
	forwardFailed
)

// globalSums all-reduces the weight-k checksum probe of v: the global
// weighted sum, its absolute-value companion for the threshold, and the
// global carried checksum.
func (e *rankEngine) globalSums(v *DistVector, k int) (gSum, gAbs, gS float64) {
	w := e.weights[k]
	var sum, abs float64
	for i, x := range v.Data {
		t := w.At(e.lo+i) * x
		sum += t
		abs += math.Abs(t)
	}
	return e.c.AllReduceSum(sum), e.c.AllReduceSum(abs), e.c.AllReduceSum(v.S[k])
}

// withinDrift reports whether every checksum inconsistency is within the
// widened core.DriftFactor window; see core/forward.go for the rationale.
func (e *rankEngine) withinDrift(deltas, absSums [3]float64) bool {
	th := e.tol.Theta
	if th <= 0 {
		th = checksum.DefaultTheta
	}
	wide := checksum.Tol{Theta: core.DriftFactor * th}
	for k := range e.weights {
		if !wide.ConsistentAbs(deltas[k], e.n, absSums[k]) {
			return false
		}
	}
	return true
}

// forwardDiagnose re-measures all three checksum relations of v through
// all-reduces and attempts a replicated in-place repair; see
// core/forward.go for the classification rationale. It requires the Triple
// weight set (Options.ForwardRecovery arranges that); with any other weight
// set it degrades to forwardFailed and the caller rolls back. The owner
// rank applies (and, on a failed confirmation, reverts) the correction; the
// barrier after each write keeps the team's view coherent.
func (e *rankEngine) forwardDiagnose(v *DistVector) (forwardOutcome, checksum.TripleDiagnosis) {
	if len(e.weights) != len(checksum.Triple) {
		return forwardFailed, checksum.TripleDiagnosis{Kind: checksum.MultipleErrors}
	}
	var absSums, deltas [3]float64
	inconsistent, bad := 0, 0
	for k := range e.weights {
		gSum, gAbs, gS := e.globalSums(v, k)
		deltas[k] = gSum - gS
		absSums[k] = gAbs
		if !e.tol.ConsistentAbs(deltas[k], e.n, gAbs) {
			inconsistent++
			bad = k
		}
	}
	switch inconsistent {
	case 0:
		v.LocalChecksums(e.weights, e.lo)
		return forwardClean, checksum.TripleDiagnosis{Kind: checksum.NoError}
	case 1:
		v.LocalChecksums(e.weights, e.lo)
		return forwardReanchored, checksum.TripleDiagnosis{
			Kind: checksum.SingleError, Pos: -1, Magnitude: deltas[bad],
		}
	}
	// Amplified-drift screen, mirroring core.DriftFactor: a fault-polluted
	// recurrence scalar multiplies the usual update noise, which can push
	// every relation just past the threshold at once with no data error
	// present. Localizing such noise would manufacture a fake single-error
	// position, so when every δ is still within DriftFactor of the widened
	// threshold the data is accepted and the checksums re-anchored. The
	// screen evaluates all-reduced values only, so it is replicated.
	if e.withinDrift(deltas, absSums) {
		v.LocalChecksums(e.weights, e.lo)
		return forwardReanchored, checksum.TripleDiagnosis{
			Kind: checksum.SingleError, Pos: -1, Magnitude: deltas[bad],
		}
	}
	diag := checksum.Diagnose(deltas[:], e.n, absSums[:], e.tol)
	if diag.Kind != checksum.SingleError {
		return forwardFailed, diag
	}
	// The owner saves the original value so a rejected repair reverts
	// bit-exactly: subtract-then-add is not an exact round-trip when the
	// correction dwarfs the element.
	var orig float64
	if diag.Pos >= e.lo && diag.Pos < e.hi {
		orig = v.Data[diag.Pos-e.lo]
		v.Data[diag.Pos-e.lo] -= diag.Magnitude
	}
	e.c.Barrier() // correction visible before the confirmation probes
	for k := range e.weights {
		gSum, gAbs, gS := e.globalSums(v, k)
		if !e.tol.ConsistentAbs(gSum-gS, e.n, gAbs) {
			if diag.Pos >= e.lo && diag.Pos < e.hi {
				v.Data[diag.Pos-e.lo] = orig
			}
			e.c.Barrier() // revert visible before anyone reads v
			return forwardRejected, checksum.TripleDiagnosis{Kind: checksum.MultipleErrors}
		}
	}
	v.LocalChecksums(e.weights, e.lo)
	e.res.Corrections++
	return forwardCorrected, diag
}
