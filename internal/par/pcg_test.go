package par

import (
	"math"
	"testing"

	"newsum/internal/solver"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

func parSystem(t *testing.T) (*sparse.CSR, []float64, []float64) {
	t.Helper()
	a := sparse.Laplacian2D(24, 24)
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = math.Cos(float64(i))
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, xTrue)
	return a, b, xTrue
}

func TestABFTPCGMatchesSerialFaultFree(t *testing.T) {
	a, b, _ := parSystem(t)
	for _, ranks := range []int{1, 2, 4, 7} {
		res, err := ABFTPCG(a, b, ranks, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if !res.Converged {
			t.Fatalf("ranks=%d: did not converge", ranks)
		}
		if res.Rollbacks != 0 {
			t.Errorf("ranks=%d: fault-free run rolled back %d times", ranks, res.Rollbacks)
		}
		r := make([]float64, a.Rows)
		a.MulVec(r, res.X)
		vec.Sub(r, b, r)
		if rel := vec.Norm2(r) / vec.Norm2(b); rel > 1e-9 {
			t.Errorf("ranks=%d: true residual %.3e", ranks, rel)
		}
	}
}

func TestABFTPCGSerialEquivalence(t *testing.T) {
	// With one rank and the same block-Jacobi structure, iterates should
	// track the serial solver closely.
	a, b, _ := parSystem(t)
	serial, err := solver.CG(a, b, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("serial CG: %v", err)
	}
	parRes, err := ABFTPCG(a, b, 2, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	// Different preconditioners → different iteration counts, but the same
	// solution.
	if !vec.Equal(serial.X, parRes.X, 1e-6) {
		t.Errorf("parallel solution differs from serial beyond tolerance")
	}
}

func TestABFTPCGRecoversFromInjectedFault(t *testing.T) {
	a, b, _ := parSystem(t)
	res, err := ABFTPCG(a, b, 4, Options{
		Tol:    1e-10,
		Faults: []Fault{{Iteration: 6, Rank: 2, Index: 5}},
	})
	if err != nil {
		t.Fatalf("faulted run: %v", err)
	}
	if res.Detections == 0 || res.Rollbacks == 0 {
		t.Errorf("fault not detected/recovered: detections=%d rollbacks=%d", res.Detections, res.Rollbacks)
	}
	r := make([]float64, a.Rows)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	if rel := vec.Norm2(r) / vec.Norm2(b); rel > 1e-9 {
		t.Errorf("true residual after recovery %.3e", rel)
	}
}

func TestCollectives(t *testing.T) {
	comms := NewTeam(5)
	done := make(chan float64, 5)
	for r := 0; r < 5; r++ {
		go func(c *Comm) {
			s := c.AllReduceSum(float64(c.Rank() + 1))
			c.Barrier()
			s2 := c.AllReduceSum(2 * float64(c.Rank()+1))
			done <- s + s2
		}(comms[r])
	}
	for i := 0; i < 5; i++ {
		if got := <-done; got != 45 {
			t.Fatalf("allreduce: got %v, want 45", got)
		}
	}
}

func TestAllGather(t *testing.T) {
	const n, ranks = 23, 4
	comms := NewTeam(ranks)
	type out struct {
		rank int
		g    []float64
	}
	ch := make(chan out, ranks)
	for r := 0; r < ranks; r++ {
		go func(c *Comm) {
			lo, hi := BlockRange(n, ranks, c.Rank())
			local := make([]float64, hi-lo)
			for i := range local {
				local[i] = float64(lo + i)
			}
			g := make([]float64, n)
			c.AllGather(g, local, lo)
			ch <- out{c.Rank(), g}
		}(comms[r])
	}
	for i := 0; i < ranks; i++ {
		o := <-ch
		for j, v := range o.g {
			if v != float64(j) {
				t.Fatalf("rank %d: gathered[%d] = %v, want %d", o.rank, j, v, j)
			}
		}
	}
}

func TestTwoLevelParallelCorrectsInline(t *testing.T) {
	a, b, _ := parSystem(t)
	res, err := ABFTPCG(a, b, 4, Options{
		Tol:      1e-10,
		TwoLevel: true,
		Faults:   []Fault{{Iteration: 6, Rank: 1, Index: 3}},
	})
	if err != nil {
		t.Fatalf("two-level parallel: %v", err)
	}
	if res.Corrections == 0 {
		t.Errorf("single error should be corrected inline: %+v", res)
	}
	if res.Rollbacks != 0 {
		t.Errorf("single error should not roll back: %+v", res)
	}
	r := make([]float64, a.Rows)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	if rel := vec.Norm2(r) / vec.Norm2(b); rel > 1e-9 {
		t.Errorf("true residual %.3e", rel)
	}
}

func TestTwoLevelParallelFaultFree(t *testing.T) {
	a, b, _ := parSystem(t)
	res, err := ABFTPCG(a, b, 3, Options{Tol: 1e-10, TwoLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detections != 0 || res.Corrections != 0 || res.Rollbacks != 0 {
		t.Errorf("fault-free two-level run had FT events: %+v", res)
	}
}
