package par

import (
	"fmt"

	"newsum/internal/core"
	"newsum/internal/sparse"
)

// ABFTCR runs the online ABFT conjugate residual method distributed over
// nranks goroutine ranks — the third §1-listed Krylov solver on the shared
// rankEngine, unpreconditioned like its serial core counterpart. The CR
// recurrence keeps x, r, p and the products Ar, Ap; errors anywhere
// propagate into x and r, so the outer level verifies those two, and the
// checkpoint set is {x, p} with the scalar rᵀAr — r is recomputed as
// b − A·x and the products as A·r, A·p (three recovery MVMs).
func ABFTCR(a *sparse.CSR, b []float64, nranks int, opts Options) (Result, error) {
	if err := validateProblem(a, b, nranks); err != nil {
		return Result{}, err
	}
	opts.normalize(a.Rows)
	part := opts.partition(a, nranks)
	return runTeam(nranks, opts.Topology, func(c *Comm) (Result, error) {
		return rankCR(c, a, b, part, opts)
	})
}

func rankCR(c *Comm, a *sparse.CSR, b []float64, part Partition, opts Options) (res Result, err error) {
	e, err := newRankEngine(c, a, b, part, &opts, &res, false)
	if err != nil {
		return res, err
	}
	defer e.finish()

	x := e.newVec()
	r := e.newVec()
	p := e.newVec()
	ar := e.newVec()
	ap := e.newVec()

	// r = b − A·x0 (x0 = 0, so r = b); Ar, Ap seeded with fresh checksums.
	copyDist(r, e.bL)
	copyDist(p, r)
	e.mvmFresh(ar, r)
	copyDist(ap, ar)

	normB := e.norm2(e.bL)
	if normB <= 0 {
		normB = 1
	}
	relres := e.norm2(r) / normB
	if relres <= opts.Tol {
		res.Converged = true
		res.Residual = relres
		res.X = e.gatherX(x)
		return res, nil
	}
	rAr := e.dot(r, ar)

	d, cd := opts.DetectInterval, opts.CheckpointInterval
	save := func(iter int) {
		e.save(iter,
			map[string]*DistVector{"x": x, "p": p},
			map[string]float64{"rAr": rAr})
	}
	rollback := func(iter int) (int, bool) {
		scal := map[string]float64{}
		snapIter, ok := e.restore(map[string]*DistVector{"x": x, "p": p}, scal)
		if !ok {
			return iter, false
		}
		rAr = scal["rAr"]
		e.residualFresh(r, x)
		e.mvmFresh(ar, r)
		if e.store.Lossy() {
			// The restored direction and rᵀAr belong to the exact snapshot
			// state; against the reconstructed residual the stale scalar
			// makes the first β blow up and permanently poison p. A lossy
			// restore is therefore a CR restart: p := r, Ap := Ar, rᵀAr
			// fresh — the same re-projection the forward tier performs.
			copyDist(p, r)
			copyDist(ap, ar)
			rAr = e.dot(r, ar)
		} else {
			e.mvmFresh(ap, p)
		}
		return snapIter, true
	}
	storm := func() (Result, error) {
		res.Residual = relres
		return res, fmt.Errorf("par: ABFT CR: %w", ErrRollbackStorm)
	}

	// forwardRepair is the forward-recovery tier for distributed CR (see
	// core's BasicCR for the rationale). A data repair of r invalidates the
	// whole product family (Ar was computed from the pre-repair r, p and Ap
	// carry its propagation), so it triggers a CR restart: Ar = A·r, p := r,
	// Ap := Ar, rᵀAr fresh. Every verdict derives from all-reduced values,
	// so the control flow is identical on every rank.
	forwardRepair := func(iter int, xOK, rOK, arOK, apOK, pOK, restart bool) bool {
		if !opts.ForwardRecovery || res.ForwardRepairs >= opts.MaxRollbacks {
			return false
		}
		repaired := 0
		restartFamily := restart
		reconstructR := false
		if !xOK {
			out, diag := e.forwardDiagnose(x)
			switch out {
			case forwardRejected:
				res.RejectedCorrections++
				e.trace(iter, core.EvForwardRepair, "rejected fake correction on x; falling back")
				return false
			case forwardFailed:
				e.trace(iter, core.EvForwardRepair, "localization failed on x; falling back")
				return false
			case forwardCorrected:
				// An in-place correction moves the iterate, so the carried
				// residual no longer satisfies r = b − A·x even when r's own
				// verification passed; rebuild it below.
				reconstructR = true
				e.trace(iter, core.EvForwardRepair, "corrected x[%d] -= %.6g", diag.Pos, diag.Magnitude)
			case forwardReanchored:
				// Re-anchoring accepts x's data, including any sub-screen
				// perturbation the old checksums disagreed with, while the
				// recurrence residual tracks the old checksum state; rebuild
				// r = b − A·x below so the two cannot drift apart permanently.
				reconstructR = true
				e.trace(iter, core.EvForwardRepair, "re-anchored checksum(x)")
			}
			repaired++
		}
		if !rOK {
			// No in-place diagnosis is trusted on r — not even a confirmed
			// §5.2 correction: a collapsed recurrence scalar can shrink an
			// aliased multi-error pattern below the confirmation threshold,
			// and accepting it re-anchors corruption into the recurrence's
			// fixed-point anchor (see core's BasicPCG). r = b − A·x holds for
			// any step lengths taken, so a clean x rebuilds it exactly.
			reconstructR = true
			repaired++
		}
		if reconstructR {
			if !e.verify(x) {
				return false
			}
			e.residualFresh(r, x)
			restartFamily = true
			e.trace(iter, core.EvForwardRepair, "reconstructed r = b − A·x")
		}
		// The stored product family is never repaired element-wise: Ar and
		// Ap must equal A·r and A·p exactly or the r update breaks the
		// b − A·x invariant, and even a §5.2-confirmed correction can be a
		// fake accepted under a collapsed scalar (see core's BasicCR). Every
		// failed verification here routes to the family restart, which
		// rebuilds all three vectors from identity-exact state.
		if !arOK {
			restartFamily = true
			repaired++
		}
		if !apOK {
			restartFamily = true
			repaired++
		}
		if !pOK {
			restartFamily = true
			repaired++
		}
		if restartFamily {
			e.mvmFresh(ar, r)
			copyDist(p, r)
			copyDist(ap, ar)
			rAr = e.dot(r, ar)
			e.trace(iter, core.EvForwardRepair, "re-projected {p, Ar, Ap} (CR restart)")
		}
		if repaired == 0 {
			return false
		}
		res.ForwardRepairs += repaired
		res.RollbacksAvoided++
		if snapIter, ok := e.store.LatestIteration(); ok {
			res.IterationsSaved += iter - snapIter
		}
		return true
	}

	i := 0
	for i < opts.MaxIter {
		e.beginIter(i)
		if e.canceled() {
			res.Residual = relres
			return res, e.cancelErr("ABFT CR")
		}
		if i > 0 && i%d == 0 {
			// Unlike PCG/BiCGStab there is no preconditioner solve dividing
			// the carried checksum error back down by d, so the Ar/Ap
			// recurrences amplify round-off by ~(d·α + β) per iteration.
			// Verifying (and thereby re-anchoring) them at every detect
			// boundary breaks that growth and catches a fault while it still
			// lives in the product recurrences, before it reaches x or r.
			var xOK, rOK, arOK, apOK, allOK bool
			if opts.ForwardRecovery {
				// Forward recovery needs every verdict (each failed vector
				// is repaired individually); the rollback-only path keeps
				// the short-circuit so its stats are unchanged.
				xOK, rOK, arOK, apOK = e.verify(x), e.verify(r), e.verify(ar), e.verify(ap)
				allOK = xOK && rOK && arOK && apOK
			} else {
				allOK = e.verify(x) && e.verify(r) && e.verify(ar) && e.verify(ap)
			}
			if !allOK {
				e.detect(i, "outer-level: checksum mismatch in {x, r, Ar, Ap}")
				if !forwardRepair(i, xOK, rOK, arOK, apOK, true, false) {
					var ok bool
					if i, ok = rollback(i); !ok {
						return storm()
					}
					continue
				}
			}
		}
		if i%cd == 0 {
			// Guard the snapshot: p must verify clean before it becomes the
			// rollback target (Ar, Ap and the rAr scalar were just verified
			// above — cd is a multiple of d).
			if i > 0 && !e.verify(p) {
				e.detect(i, "pre-checkpoint: checksum(p) mismatch")
				if !forwardRepair(i, true, true, true, true, false, false) {
					var ok bool
					if i, ok = rollback(i); !ok {
						return storm()
					}
					continue
				}
			}
			save(i)
		}

		apap := e.dot(ap, ap)
		if breakdownSuspect(apap) || breakdownSuspect(rAr) {
			e.detect(i, "breakdown suspect: ApᵀAp = %v, rᵀAr = %v", apap, rAr)
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: CR breakdown at iteration %d: ApᵀAp = %v, rᵀAr = %v", i, apap, rAr)
			}
			continue
		}
		alpha := rAr / apap
		e.axpy(x, alpha, p)
		e.axpy(r, -alpha, ap)
		i++
		res.Iterations = i

		relres = e.norm2(r) / normB
		if relres <= opts.Tol {
			xOK := e.verify(x)
			rOK := true
			if xOK || opts.ForwardRecovery {
				rOK = e.verify(r)
			}
			if xOK && rOK {
				res.Converged = true
				break
			}
			e.detect(i, "converged residual failed verification")
			// The convergence exit skips the recurrence tail, so a forward
			// repair here always rebuilds the product family (restart).
			if forwardRepair(i, xOK, rOK, true, true, true, true) {
				relres = e.norm2(r) / normB
				if relres <= opts.Tol && e.verify(x) && e.verify(r) {
					res.Converged = true
					break
				}
				continue
			}
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}

		// The iteration's protected MVM carries the fault coordinate of the
		// loop index it tops off (curIter is still i−1 here, matching the
		// serial solver's bookkeeping).
		e.mvm(ar, r)
		if opts.TwoLevel && !e.innerCheck(ar, r) {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		rArNew := e.dot(r, ar)
		beta := rArNew / rAr
		e.xpby(p, r, beta, p)
		e.xpby(ap, ar, beta, ap)
		rAr = rArNew
	}

	res.Residual = relres
	res.X = e.gatherX(x)
	if !res.Converged {
		return res, fmt.Errorf("par: ABFT CR did not converge in %d iterations (relres %.3e)", res.Iterations, relres)
	}
	return res, nil
}
