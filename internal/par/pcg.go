package par

import (
	"fmt"

	"newsum/internal/sparse"
)

// ABFTPCG runs the basic online ABFT PCG distributed over nranks goroutine
// ranks with a block-Jacobi ILU(0) preconditioner whose blocks coincide
// with the rank partition (the PETSc configuration of §6.3). All checksum
// state and checkpoints are rank-local; verification needs only scalar
// all-reductions, reproducing the paper's locality argument.
func ABFTPCG(a *sparse.CSR, b []float64, nranks int, opts Options) (Result, error) {
	if err := validateProblem(a, b, nranks); err != nil {
		return Result{}, err
	}
	opts.normalize(a.Rows)
	part := opts.partition(a, nranks)
	return runTeam(nranks, opts.Topology, func(c *Comm) (Result, error) {
		return rankPCG(c, a, b, part, opts)
	})
}

// rankPCG is the per-rank PCG body, written against the rankEngine the same
// way core's serial solvers are written against *engine.
func rankPCG(c *Comm, a *sparse.CSR, b []float64, part Partition, opts Options) (res Result, err error) {
	e, err := newRankEngine(c, a, b, part, &opts, &res, true)
	if err != nil {
		return res, err
	}
	defer e.finish()

	x := e.newVec()
	r := e.newVec()
	z := e.newVec()
	p := e.newVec()
	q := e.newVec()

	// r = b − A·x0 (x0 = 0, so r = b) with exact local checksums.
	copyDist(r, e.bL)

	normB := e.norm2(e.bL)
	if normB <= 0 {
		normB = 1
	}

	relres := e.norm2(r) / normB
	if relres <= opts.Tol {
		res.Converged = true
		res.Residual = relres
		res.X = e.gatherX(x)
		return res, nil
	}

	if err := e.pco(z, r); err != nil {
		return res, err
	}
	copyDist(p, z)
	rho := e.dot(r, z)

	d, cd := opts.DetectInterval, opts.CheckpointInterval
	save := func(iter int) {
		e.save(iter, map[string]*DistVector{"p": p, "x": x}, map[string]float64{"rho": rho})
	}
	rollback := func(iter int) (int, bool) {
		scal := map[string]float64{}
		snapIter, ok := e.restore(map[string]*DistVector{"p": p, "x": x}, scal)
		if !ok {
			return iter, false
		}
		rho = scal["rho"]
		e.residualFresh(r, x)
		return snapIter, true
	}

	i := 0
	for i < opts.MaxIter {
		e.beginIter(i)
		if e.canceled() {
			res.Residual = relres
			return res, e.cancelErr("ABFT PCG")
		}
		if i > 0 && i%d == 0 {
			if !e.verify(x) || !e.verify(r) {
				e.detect(i, "outer-level: checksum(x)/checksum(r) mismatch")
				var ok bool
				if i, ok = rollback(i); !ok {
					res.Residual = relres
					return res, fmt.Errorf("par: ABFT PCG: %w", ErrRollbackStorm)
				}
				continue
			}
		}
		if i%cd == 0 {
			save(i)
		}

		e.mvm(q, p)
		if opts.TwoLevel && !e.innerCheck(q, p) {
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: ABFT PCG: %w", ErrRollbackStorm)
			}
			continue
		}
		pq := e.dot(p, q)
		if breakdownSuspect(pq) {
			e.detect(i, "breakdown suspect: pᵀAp = %v", pq)
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: PCG breakdown at iteration %d: pᵀAp = %v", i, pq)
			}
			continue
		}
		alpha := rho / pq
		e.axpy(x, alpha, p)
		e.axpy(r, -alpha, q)
		i++
		res.Iterations = i

		relres = e.norm2(r) / normB
		if relres <= opts.Tol {
			if e.verify(x) && e.verify(r) {
				res.Converged = true
				break
			}
			e.detect(i, "converged residual failed verification")
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: ABFT PCG: %w", ErrRollbackStorm)
			}
			continue
		}
		if err := e.pco(z, r); err != nil {
			return res, err
		}
		rhoNew := e.dot(r, z)
		beta := rhoNew / rho
		e.xpby(p, z, beta, p)
		rho = rhoNew
	}

	res.Residual = relres
	res.X = e.gatherX(x)
	if !res.Converged {
		return res, fmt.Errorf("par: ABFT PCG did not converge in %d iterations (relres %.3e)", res.Iterations, relres)
	}
	return res, nil
}
