package par

import (
	"fmt"
	"math"
	"sync"

	"newsum/internal/checkpoint"
	"newsum/internal/checksum"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// Fault schedules one arithmetic error into the MVM output of a specific
// rank at a specific iteration of the distributed solve.
type Fault struct {
	Iteration int
	Rank      int
	// Index is the local index within the rank's block; -1 means 0.
	Index int
	// Magnitude is the additive error; 0 selects a large default.
	Magnitude float64
}

// Options configures the distributed ABFT PCG.
type Options struct {
	// Tol is the relative residual tolerance (default 1e-8).
	Tol float64
	// MaxIter caps iterations (default 10·n).
	MaxIter int
	// DetectInterval and CheckpointInterval are the paper's d and cd
	// (defaults 1 and 10; cd is rounded up to a multiple of d).
	DetectInterval, CheckpointInterval int
	// Theta is the checksum threshold (default 1e-10).
	Theta float64
	// MaxRollbacks bounds recovery attempts (default 100).
	MaxRollbacks int
	// TwoLevel enables the inner-level triple-checksum protection after
	// every distributed MVM (Algorithm 2): the global δ1 probe costs one
	// extra scalar all-reduce per iteration; on inconsistency the locating
	// deltas are evaluated lazily (three more all-reduces), the owner rank
	// corrects a located single error in place, and multiple errors
	// trigger a coordinated rollback.
	TwoLevel bool
	// Faults schedules arithmetic MVM errors.
	Faults []Fault
}

// Result reports a distributed solve's outcome.
type Result struct {
	X           []float64
	Iterations  int
	Converged   bool
	Residual    float64
	Rollbacks   int
	Checkpoints int
	Detections  int
	Corrections int
}

// ABFTPCG runs the basic online ABFT PCG distributed over nranks goroutine
// ranks with a block-Jacobi ILU(0) preconditioner whose blocks coincide
// with the rank partition (the PETSc configuration of §6.3). All checksum
// state and checkpoints are rank-local; verification needs only scalar
// all-reductions, reproducing the paper's locality argument.
func ABFTPCG(a *sparse.CSR, b []float64, nranks int, opts Options) (Result, error) {
	if a.Rows != a.Cols {
		return Result{}, fmt.Errorf("par: matrix must be square")
	}
	if len(b) != a.Rows {
		return Result{}, fmt.Errorf("par: rhs length %d, want %d", len(b), a.Rows)
	}
	if nranks < 1 || nranks > a.Rows {
		return Result{}, fmt.Errorf("par: nranks %d out of range", nranks)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-8
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10 * a.Rows
	}
	if opts.DetectInterval < 1 {
		opts.DetectInterval = 1
	}
	if opts.CheckpointInterval < 1 {
		opts.CheckpointInterval = 10 * opts.DetectInterval
	}
	if rem := opts.CheckpointInterval % opts.DetectInterval; rem != 0 {
		opts.CheckpointInterval += opts.DetectInterval - rem
	}
	if opts.Theta <= 0 {
		opts.Theta = 1e-10
	}
	if opts.MaxRollbacks <= 0 {
		opts.MaxRollbacks = 100
	}

	comms := NewTeam(nranks)
	results := make([]Result, nranks)
	errs := make([]error, nranks)
	var wg sync.WaitGroup
	for r := 0; r < nranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = rankPCG(comms[rank], a, b, opts)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results[0], err
		}
	}
	return results[0], nil
}

// rankPCG is the per-rank solver body.
func rankPCG(c *Comm, a *sparse.CSR, b []float64, opts Options) (Result, error) {
	n := a.Rows
	rank, size := c.Rank(), c.Size()
	lo, hi := BlockRange(n, size, rank)
	local := hi - lo
	dm := Split(a, size, rank)
	weights := checksum.Single
	tol := checksum.Tol{Theta: opts.Theta}
	dScalar := checksum.PracticalD(a)

	// Local block preconditioner: ILU(0) of the diagonal block, exactly
	// block-Jacobi with blocks = ranks.
	blk := a.SubMatrix(lo, hi)
	mLocal, err := precond.ILU0(blk)
	if err != nil {
		return Result{}, fmt.Errorf("par: rank %d ILU(0): %w", rank, err)
	}
	// Shifted weights evaluate the global checksum vector at this rank's
	// global row indices, so locally encoded stage matrices yield exactly
	// this rank's slice of the global checksum rows.
	shifted := make([]checksum.Weight, len(weights))
	for k, w := range weights {
		w := w
		shifted[k] = checksum.Weight{
			Name: fmt.Sprintf("%s@%d", w.Name, lo),
			At:   func(i int) float64 { return w.At(lo + i) },
		}
	}
	stages := mLocal.Stages()
	encStg := make([]*checksum.Matrix, len(stages))
	for i, st := range stages {
		encStg[i] = checksum.EncodeMatrix(st.M, shifted, dScalar)
	}

	// This rank's slice of checksum(A) = cᵀA − d·cᵀ: partial cᵀA from the
	// owned rows, all-reduced, then sliced and shifted.
	full := make([]float64, n)
	for i := lo; i < hi; i++ {
		ci := weights[0].At(i)
		cols, vals := a.RowView(i)
		for k, j := range cols {
			full[j] += ci * vals[k]
		}
	}
	c.AllReduceVec(full, full)
	rowA := make([]float64, local)
	for j := 0; j < local; j++ {
		rowA[j] = full[lo+j] - dScalar*weights[0].At(lo+j)
	}

	// Lazy diagnosis state for the two-level inner check: this rank's
	// column slices of c_kᵀA for the Linear and Harmonic weights. The
	// expected checksum of q = A·p is the all-reduced Σ_r slice_r·p_r.
	diagWeights := []checksum.Weight{checksum.Linear, checksum.Harmonic}
	var diagRows [][]float64
	if opts.TwoLevel {
		diagRows = make([][]float64, len(diagWeights))
		for k, w := range diagWeights {
			fullK := make([]float64, n)
			for i := lo; i < hi; i++ {
				ci := w.At(i)
				cols, vals := a.RowView(i)
				for t, j := range cols {
					fullK[j] += ci * vals[t]
				}
			}
			c.AllReduceVec(fullK, fullK)
			diagRows[k] = append([]float64(nil), fullK[lo:hi]...)
		}
	}

	newVec := func() *DistVector { return NewDistVector(local, len(weights)) }
	x := newVec()
	r := newVec()
	z := newVec()
	p := newVec()
	q := newVec()
	bL := &DistVector{Data: make([]float64, local), S: make([]float64, len(weights))}
	copy(bL.Data, b[lo:hi])
	bL.LocalChecksums(weights, lo)

	xg := make([]float64, n) // gathered global vector buffer

	// r = b − A·x0 (x0 = 0, so r = b) with exact local checksums.
	copy(r.Data, bL.Data)
	r.LocalChecksums(weights, lo)

	normB := GlobalNorm2(c, bL)
	if normB <= 0 {
		normB = 1
	}

	res := Result{}
	relres := GlobalNorm2(c, r) / normB
	if relres <= opts.Tol {
		res.Converged = true
		res.Residual = relres
		res.X = gatherX(c, x, xg, lo)
		return res, nil
	}

	// Instrumented distributed operations. Faults are one-shot: a strike
	// consumed before a rollback does not re-fire when its iteration
	// re-executes (the paper's scenarios schedule a fixed set of errors).
	fired := make([]bool, len(opts.Faults))
	mvm := func(iter int, dst, src *DistVector) {
		c.AllGather(xg, src.Data, lo)
		dm.MulVec(dst.Data, xg)
		for fi, f := range opts.Faults {
			if f.Iteration == iter && f.Rank == rank && !fired[fi] {
				fired[fi] = true
				idx := f.Index
				if idx < 0 || idx >= local {
					idx = 0
				}
				mag := f.Magnitude
				//lint:ignore floatcmp Magnitude == 0 is the unset sentinel selecting the default error
				if mag == 0 {
					mag = 1e4
				}
				dst.Data[idx] += mag
			}
		}
		// Partial checksum update: this rank's slice of checksum(A)
		// against its own block of the input, plus d times the carried
		// partial input checksum. Partials sum to the global Eq. (2).
		var dot float64
		for j := 0; j < local; j++ {
			dot += rowA[j] * src.Data[j]
		}
		dst.S[0] = dot + dScalar*src.S[0]
	}
	pco := func(dst, src *DistVector) error {
		in, inS := src.Data, src.S[0]
		buf := make([]float64, local)
		bufS := make([]float64, len(weights))
		for k, st := range stages {
			if err := st.Apply(buf, in); err != nil {
				return err
			}
			switch st.Op {
			case precond.StageSolve:
				encStg[k].UpdatePCO(bufS, buf, []float64{inS})
			case precond.StageMul:
				encStg[k].UpdateMVM(bufS, in, []float64{inS})
			}
			in, inS = buf, bufS[0]
			buf = make([]float64, local)
		}
		copy(dst.Data, in)
		dst.S[0] = inS
		return nil
	}
	axpy := func(y *DistVector, alpha float64, xv *DistVector) {
		vec.Axpy(y.Data, alpha, xv.Data)
		y.S[0] += alpha * xv.S[0]
	}
	xpby := func(dst, xv *DistVector, beta float64, y *DistVector) {
		vec.Xpby(dst.Data, xv.Data, beta, y.Data)
		dst.S[0] = xv.S[0] + beta*y.S[0]
	}

	if err := pco(z, r); err != nil {
		return res, err
	}
	copy(p.Data, z.Data)
	copy(p.S, z.S)
	rho := GlobalDot(c, r, z)

	var store checkpoint.Store
	d, cd := opts.DetectInterval, opts.CheckpointInterval
	save := func(iter int) {
		store.Save(iter,
			map[string][]float64{"p": p.Data, "x": x.Data},
			map[string]float64{"rho": rho},
			map[string][]float64{"p": p.S, "x": x.S})
		res.Checkpoints++
	}
	rollback := func(iter int) (int, bool) {
		res.Rollbacks++
		if res.Rollbacks > opts.MaxRollbacks {
			return iter, false
		}
		scal := map[string]float64{}
		snapIter, err := store.Restore(
			map[string][]float64{"p": p.Data, "x": x.Data},
			scal,
			map[string][]float64{"p": p.S, "x": x.S})
		if err != nil {
			return iter, false
		}
		rho = scal["rho"]
		c.AllGather(xg, x.Data, lo)
		dm.MulVec(r.Data, xg)
		vec.Sub(r.Data, bL.Data, r.Data)
		r.LocalChecksums(weights, lo)
		return snapIter, true
	}

	// innerCheck is the distributed two-level inner level: global δ1 probe
	// on q, input-purity check on p, lazy δ2/δ3 evaluation, in-place
	// correction by the owner rank. Returns false when a rollback is
	// required. Every rank returns the same verdict.
	innerCheck := func(q, p *DistVector) bool {
		var sum, absSum float64
		for i, x := range q.Data {
			t := weights[0].At(lo+i) * x
			sum += t
			absSum += math.Abs(t)
		}
		gSum := c.AllReduceSum(sum)
		gAbs := c.AllReduceSum(absSum)
		gS := c.AllReduceSum(q.S[0])
		d1 := gSum - gS
		if tol.ConsistentAbs(d1, n, gAbs) {
			return true
		}
		res.Detections++
		// Input purity: a carried inconsistency in p mimics a single
		// output error; only a clean input makes the signature trustworthy.
		if !VerifyGlobal(c, p, weights[0], 0, lo, n, tol) {
			return false
		}
		deltas := []float64{d1, 0, 0}
		absSums := []float64{gAbs, 0, 0}
		for k, w := range diagWeights {
			var exp, qs, qa float64
			for i, x := range p.Data {
				exp += diagRows[k][i] * x
			}
			for i, x := range q.Data {
				t := w.At(lo+i) * x
				qs += t
				qa += math.Abs(t)
			}
			deltas[k+1] = c.AllReduceSum(qs) - c.AllReduceSum(exp)
			absSums[k+1] = c.AllReduceSum(qa)
		}
		diag := checksum.Diagnose(deltas, n, absSums, tol)
		if diag.Kind != checksum.SingleError {
			return false
		}
		if diag.Pos >= lo && diag.Pos < hi {
			q.Data[diag.Pos-lo] -= diag.Magnitude
		}
		res.Corrections++
		c.Barrier() // correction visible before anyone reads q
		return true
	}

	maxIter := opts.MaxIter
	i := 0
	for i < maxIter {
		if i > 0 && i%d == 0 {
			okX := VerifyGlobal(c, x, weights[0], 0, lo, n, tol)
			okR := VerifyGlobal(c, r, weights[0], 0, lo, n, tol)
			if !okX || !okR {
				res.Detections++
				var ok bool
				if i, ok = rollback(i); !ok {
					res.Residual = relres
					return res, fmt.Errorf("par: ABFT PCG rollback limit exceeded")
				}
				continue
			}
		}
		if i%cd == 0 {
			save(i)
		}

		mvm(i, q, p)
		if opts.TwoLevel && !innerCheck(q, p) {
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: ABFT PCG rollback limit exceeded")
			}
			continue
		}
		pq := GlobalDot(c, p, q)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if pq == 0 {
			res.Residual = relres
			return res, fmt.Errorf("par: PCG breakdown at iteration %d", i)
		}
		alpha := rho / pq
		axpy(x, alpha, p)
		axpy(r, -alpha, q)
		i++
		res.Iterations = i

		relres = GlobalNorm2(c, r) / normB
		if relres <= opts.Tol {
			okX := VerifyGlobal(c, x, weights[0], 0, lo, n, tol)
			okR := VerifyGlobal(c, r, weights[0], 0, lo, n, tol)
			if okX && okR {
				res.Converged = true
				break
			}
			res.Detections++
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: ABFT PCG rollback limit exceeded")
			}
			continue
		}
		if err := pco(z, r); err != nil {
			return res, err
		}
		rhoNew := GlobalDot(c, r, z)
		beta := rhoNew / rho
		xpby(p, z, beta, p)
		rho = rhoNew
	}

	res.Residual = relres
	res.X = gatherX(c, x, xg, lo)
	if !res.Converged {
		return res, fmt.Errorf("par: ABFT PCG did not converge in %d iterations (relres %.3e)", res.Iterations, relres)
	}
	return res, nil
}

func gatherX(c *Comm, x *DistVector, xg []float64, lo int) []float64 {
	c.AllGather(xg, x.Data, lo)
	out := make([]float64, len(xg))
	copy(out, xg)
	return out
}
