package par

import (
	"fmt"

	"newsum/internal/core"
	"newsum/internal/sparse"
)

// ABFTPCG runs the basic online ABFT PCG distributed over nranks goroutine
// ranks with a block-Jacobi ILU(0) preconditioner whose blocks coincide
// with the rank partition (the PETSc configuration of §6.3). All checksum
// state and checkpoints are rank-local; verification needs only scalar
// all-reductions, reproducing the paper's locality argument.
func ABFTPCG(a *sparse.CSR, b []float64, nranks int, opts Options) (Result, error) {
	if err := validateProblem(a, b, nranks); err != nil {
		return Result{}, err
	}
	opts.normalize(a.Rows)
	part := opts.partition(a, nranks)
	return runTeam(nranks, opts.Topology, func(c *Comm) (Result, error) {
		return rankPCG(c, a, b, part, opts)
	})
}

// rankPCG is the per-rank PCG body, written against the rankEngine the same
// way core's serial solvers are written against *engine.
func rankPCG(c *Comm, a *sparse.CSR, b []float64, part Partition, opts Options) (res Result, err error) {
	e, err := newRankEngine(c, a, b, part, &opts, &res, true)
	if err != nil {
		return res, err
	}
	defer e.finish()

	x := e.newVec()
	r := e.newVec()
	z := e.newVec()
	p := e.newVec()
	q := e.newVec()

	// r = b − A·x0 (x0 = 0, so r = b) with exact local checksums.
	copyDist(r, e.bL)

	normB := e.norm2(e.bL)
	if normB <= 0 {
		normB = 1
	}

	relres := e.norm2(r) / normB
	if relres <= opts.Tol {
		res.Converged = true
		res.Residual = relres
		res.X = e.gatherX(x)
		return res, nil
	}

	if err := e.pco(z, r); err != nil {
		return res, err
	}
	copyDist(p, z)
	rho := e.dot(r, z)

	d, cd := opts.DetectInterval, opts.CheckpointInterval
	save := func(iter int) {
		e.save(iter, map[string]*DistVector{"p": p, "x": x}, map[string]float64{"rho": rho})
	}
	rollback := func(iter int) (int, bool) {
		scal := map[string]float64{}
		snapIter, ok := e.restore(map[string]*DistVector{"p": p, "x": x}, scal)
		if !ok {
			return iter, false
		}
		rho = scal["rho"]
		e.residualFresh(r, x)
		if e.store.Lossy() {
			// The restored direction and ρ belong to the exact snapshot
			// state; against the reconstructed residual — dominated by the
			// quantization noise A·δx — the stale ρ makes the first
			// β = ρ'/ρ blow up and permanently poison p. A lossy restore is
			// therefore a CG restart: z = M⁻¹r, p := z, ρ = rᵀz (replicated,
			// so every rank restarts identically).
			if err := e.pco(z, r); err != nil {
				return iter, false
			}
			copyDist(p, z)
			rho = e.dot(r, z)
		}
		return snapIter, true
	}

	// forwardRepair is the forward-recovery tier (see core's abftPCG for the
	// full rationale): attempt a replicated in-place repair of every vector
	// that failed verification, avoiding the coordinated rollback. Every
	// verdict inside derives from all-reduced values, so the return — and
	// therefore the control flow — is identical on every rank. restart
	// forces the search-direction re-projection even without a data repair
	// (the convergence exit skips the recurrence tail).
	forwardRepair := func(iter int, xOK, rOK, restart bool) bool {
		if !opts.ForwardRecovery || res.ForwardRepairs >= opts.MaxRollbacks {
			return false
		}
		repaired := 0
		dataRepair := restart
		reconstructR := false
		if !xOK {
			out, diag := e.forwardDiagnose(x)
			switch out {
			case forwardRejected:
				res.RejectedCorrections++
				e.trace(iter, core.EvForwardRepair, "rejected fake correction on x; falling back")
				return false
			case forwardFailed:
				e.trace(iter, core.EvForwardRepair, "localization failed on x; falling back")
				return false
			case forwardCorrected:
				// An in-place correction moves the iterate, so the carried
				// residual no longer satisfies r = b − A·x even when r's own
				// verification passed; rebuild it below.
				reconstructR = true
				e.trace(iter, core.EvForwardRepair, "corrected x[%d] -= %.6g", diag.Pos, diag.Magnitude)
			case forwardReanchored:
				// Re-anchoring accepts x's data, including any sub-screen
				// perturbation the old checksums disagreed with, while the
				// recurrence residual tracks the old checksum state; rebuild
				// r = b − A·x below so the two cannot drift apart permanently.
				reconstructR = true
				e.trace(iter, core.EvForwardRepair, "re-anchored checksum(x)")
			}
			repaired++
		}
		if !rOK {
			// No in-place diagnosis is trusted on r — not even a confirmed
			// §5.2 correction: a collapsed recurrence scalar can shrink an
			// aliased multi-error pattern below the confirmation threshold
			// (suppressed by ~1/j³ at large indices), and accepting it
			// re-anchors checksum-endorsed corruption into the recurrence's
			// fixed-point anchor (see core's BasicPCG). r = b − A·x holds for
			// any step lengths taken, so a clean x rebuilds it exactly.
			reconstructR = true
			repaired++
		}
		if reconstructR {
			if !e.verify(x) {
				return false
			}
			e.residualFresh(r, x)
			dataRepair = true
			e.trace(iter, core.EvForwardRepair, "reconstructed r = b − A·x")
		}
		if repaired == 0 && !restart {
			return false
		}
		if dataRepair {
			// z and p were computed from the pre-repair r at the previous
			// tail, so a data repair of r restarts the recurrence from the
			// repaired residual (z = M⁻¹r, p := z, ρ = rᵀz).
			if err := e.pco(z, r); err != nil {
				return false
			}
			copyDist(p, z)
			rho = e.dot(r, z)
			e.trace(iter, core.EvForwardRepair, "re-projected search direction (CG restart)")
		}
		res.ForwardRepairs += repaired
		res.RollbacksAvoided++
		if snapIter, ok := e.store.LatestIteration(); ok {
			res.IterationsSaved += iter - snapIter
		}
		return true
	}

	i := 0
	for i < opts.MaxIter {
		e.beginIter(i)
		if e.canceled() {
			res.Residual = relres
			return res, e.cancelErr("ABFT PCG")
		}
		if i > 0 && i%d == 0 {
			xOK := e.verify(x)
			rOK := true
			if xOK || opts.ForwardRecovery {
				// Forward recovery needs both verdicts; the rollback-only
				// path keeps the short-circuit so its stats are unchanged.
				rOK = e.verify(r)
			}
			if !xOK || !rOK {
				e.detect(i, "outer-level: checksum(x)/checksum(r) mismatch")
				if !forwardRepair(i, xOK, rOK, false) {
					var ok bool
					if i, ok = rollback(i); !ok {
						res.Residual = relres
						return res, fmt.Errorf("par: ABFT PCG: %w", ErrRollbackStorm)
					}
					continue
				}
			}
		}
		if i%cd == 0 {
			save(i)
		}

		e.mvm(q, p)
		if opts.TwoLevel && !e.innerCheck(q, p) {
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: ABFT PCG: %w", ErrRollbackStorm)
			}
			continue
		}
		pq := e.dot(p, q)
		if breakdownSuspect(pq) {
			e.detect(i, "breakdown suspect: pᵀAp = %v", pq)
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: PCG breakdown at iteration %d: pᵀAp = %v", i, pq)
			}
			continue
		}
		alpha := rho / pq
		e.axpy(x, alpha, p)
		e.axpy(r, -alpha, q)
		i++
		res.Iterations = i

		relres = e.norm2(r) / normB
		if relres <= opts.Tol {
			xOK := e.verify(x)
			rOK := true
			if xOK || opts.ForwardRecovery {
				rOK = e.verify(r)
			}
			if xOK && rOK {
				res.Converged = true
				break
			}
			e.detect(i, "converged residual failed verification")
			// The convergence exit skips the recurrence tail, so a forward
			// repair here always re-projects (restart = true).
			if forwardRepair(i, xOK, rOK, true) {
				relres = e.norm2(r) / normB
				if relres <= opts.Tol && e.verify(x) && e.verify(r) {
					res.Converged = true
					break
				}
				continue
			}
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: ABFT PCG: %w", ErrRollbackStorm)
			}
			continue
		}
		if err := e.pco(z, r); err != nil {
			return res, err
		}
		rhoNew := e.dot(r, z)
		beta := rhoNew / rho
		e.xpby(p, z, beta, p)
		rho = rhoNew
	}

	res.Residual = relres
	res.X = e.gatherX(x)
	if !res.Converged {
		return res, fmt.Errorf("par: ABFT PCG did not converge in %d iterations (relres %.3e)", res.Iterations, relres)
	}
	return res, nil
}
