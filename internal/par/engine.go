package par

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"newsum/internal/checkpoint"
	"newsum/internal/checksum"
	"newsum/internal/core"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// This file is the distributed counterpart of internal/core/engine.go: the
// per-rank machinery every parallel ABFT solver shares. A solver body (see
// pcg.go, bicgstab.go, cr.go) is written against a rankEngine exactly the
// way the serial solvers are written against *engine — tracked distributed
// vectors, instrumented MVM/PCO/VLO operations that carry partial checksums,
// replicated verification, and checkpoint/rollback helpers — so adding a new
// protected solver is one recurrence loop, not a re-derivation of the
// distribution and protection layers.

// Target selects which state a distributed fault corrupts.
type Target int

const (
	// TargetOutput strikes the MVM output data — the baseline model.
	TargetOutput Target = iota
	// TargetChecksum strikes the carried checksum scalar of the MVM output
	// instead of the data: the vector is clean, its protection is not.
	TargetChecksum
	// TargetCheckpoint strikes this rank's checkpoint buffer as the snapshot
	// is taken; the corruption is dormant until a rollback restores it.
	TargetCheckpoint
)

func (t Target) String() string {
	switch t {
	case TargetOutput:
		return "output"
	case TargetChecksum:
		return "checksum"
	case TargetCheckpoint:
		return "checkpoint"
	default:
		return "unknown-target"
	}
}

// Fault schedules one arithmetic error into the MVM output of a specific
// rank at a specific iteration of the distributed solve.
type Fault struct {
	Iteration int
	Rank      int
	// Index is the local index within the rank's block; out-of-range
	// (including -1) means 0.
	Index int
	// Magnitude is the additive error; 0 selects a large default. Ignored
	// when BitFlip is set.
	Magnitude float64
	// MVM selects which MVM within the iteration is struck, 0-based, for
	// solvers that perform more than one per iteration (BiCGStab runs two).
	MVM int
	// BitFlip flips bit Bit of the IEEE-754 word instead of adding
	// Magnitude — the fault model of the paper's §6 campaigns.
	BitFlip bool
	// Bit is the flipped bit position (0 = LSB of the mantissa, 63 = sign).
	// Out-of-range values select 62, the high exponent bit, whose flip
	// always produces a detectable magnitude change.
	Bit int
	// Target selects what is struck: the MVM output data (default), the
	// carried checksum state, or the checkpoint buffer. Checksum strikes
	// share the (Iteration, Rank, MVM) coordinate; checkpoint strikes fire
	// at snapshot time, so Iteration must be a checkpoint iteration (a
	// multiple of cd) and MVM is ignored.
	Target Target
}

// CorrelatedFaults replicates one fault across every rank of an nranks-team
// at the same (iteration, MVM) coordinate — the correlated multi-rank upset
// a shared power or clock disturbance produces, which no single-rank error
// model covers.
func CorrelatedFaults(f Fault, nranks int) []Fault {
	out := make([]Fault, nranks)
	for r := range out {
		out[r] = f
		out[r].Rank = r
	}
	return out
}

// Options configures a distributed ABFT solve.
type Options struct {
	// Tol is the relative residual tolerance (default 1e-8).
	Tol float64
	// MaxIter caps iterations (default 10·n).
	MaxIter int
	// DetectInterval and CheckpointInterval are the paper's d and cd
	// (defaults 1 and 10; cd is rounded up to a multiple of d).
	DetectInterval, CheckpointInterval int
	// Theta is the checksum threshold (default 1e-10).
	Theta float64
	// MaxRollbacks bounds recovery attempts (default 100).
	MaxRollbacks int
	// TwoLevel enables the inner-level triple-checksum protection after
	// every distributed MVM (Algorithm 2): the global δ1 probe costs one
	// extra scalar all-reduce per iteration; on inconsistency the locating
	// deltas are evaluated lazily (three more all-reduces), the owner rank
	// corrects a located single error in place, and multiple errors
	// trigger a coordinated rollback.
	TwoLevel bool
	// ForwardRecovery enables the forward-recovery tier at the outer
	// level: every tracked vector carries all three §5.2 partial
	// checksums, and a boundary detection first attempts a replicated
	// in-place repair (owner-rank single-error correction, checksum
	// re-anchoring, or reconstruction from clean state) before falling
	// back to the coordinated rollback. Every repair verdict derives from
	// all-reduced values, so it is identical on every rank.
	ForwardRecovery bool
	// Topology selects the collective algorithm family (default Tree;
	// Linear keeps the O(P) baseline for comparison).
	Topology Topology
	// EvenRows forces the legacy even row partition instead of the
	// nnz-balanced partitioner (benchmarks compare the two).
	EvenRows bool
	// CheckpointCodec selects the snapshot codec every rank checkpoints
	// through: full deep copies (default), error-bounded lossy
	// quantization, or differential encoding against the last verified
	// snapshot (see internal/checkpoint).
	CheckpointCodec checkpoint.Codec
	// CheckpointAbsBound and CheckpointRelBound bound the lossy codec's
	// per-element restore error; both zero selects the package default
	// relative bound. Ignored by the full and differential codecs.
	CheckpointAbsBound, CheckpointRelBound float64
	// Faults schedules arithmetic MVM errors.
	Faults []Fault
	// Ctx, when non-nil, lets the caller cancel a running distributed solve.
	// Cancellation is observed through a replicated probe (one scalar
	// all-reduce per iteration) so every rank aborts at the same iteration
	// boundary — a rank noticing ctx.Done() unilaterally would strand its
	// peers inside a collective. nil means run to completion.
	Ctx context.Context
}

// ErrRollbackStorm is wrapped by distributed solves that exhaust their
// rollback budget — the abort outcome a serving layer treats as retryable.
var ErrRollbackStorm = errors.New("par: rollback limit exceeded")

func (o *Options) normalize(n int) {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 10 * n
	}
	if o.DetectInterval < 1 {
		o.DetectInterval = 1
	}
	if o.CheckpointInterval < 1 {
		o.CheckpointInterval = 10 * o.DetectInterval
	}
	if rem := o.CheckpointInterval % o.DetectInterval; rem != 0 {
		o.CheckpointInterval += o.DetectInterval - rem
	}
	if o.Theta <= 0 {
		o.Theta = 1e-10
	}
	if o.MaxRollbacks <= 0 {
		o.MaxRollbacks = 100
	}
}

// partition builds the row partition the solve distributes over.
func (o *Options) partition(a *sparse.CSR, nranks int) Partition {
	if o.EvenRows {
		return EvenPartition(a.Rows, nranks)
	}
	return NnzPartition(a, nranks)
}

// Result reports a distributed solve's outcome.
type Result struct {
	X           []float64
	Iterations  int
	Converged   bool
	Residual    float64
	Rollbacks   int
	Checkpoints int
	Detections  int
	Corrections int
	// WastedIterations sums the iterations each rollback discarded
	// (replicated-deterministic, mirroring core.Stats.WastedIterations).
	WastedIterations int
	// ForwardRepairs, RollbacksAvoided, IterationsSaved and
	// RejectedCorrections mirror core.Stats: in-place repairs applied by
	// the forward-recovery tier, detection events resolved without a
	// rollback, iterations those avoided rollbacks would have discarded,
	// and corrections undone by their post-repair confirmation.
	ForwardRepairs      int
	RollbacksAvoided    int
	IterationsSaved     int
	RejectedCorrections int
	// CheckpointBytes and CheckpointStoredBytes sum, over all ranks, the
	// logical bytes snapshotted (vectors + carried checksums at 8 bytes
	// per element) and the bytes the configured codec actually stored.
	CheckpointBytes, CheckpointStoredBytes int64
	// LossyRestores counts rollbacks that restored quantized state and
	// re-anchored the carried checksums from it (replicated, so rank 0's
	// count is the team's).
	LossyRestores int
	// InjectedFaults counts scheduled faults that actually fired, summed
	// over all ranks.
	InjectedFaults int
	// Comm aggregates the collective instrumentation over all ranks.
	Comm CommStats
	// Trace is the team's fault-tolerance timeline in core's event
	// vocabulary, recorded by rank 0 (every verdict driving an event is
	// replicated-deterministic, so rank 0's log is the team's log). Merged
	// serial and distributed timelines are therefore directly comparable.
	Trace []core.TraceEvent
}

func validateProblem(a *sparse.CSR, b []float64, nranks int) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("par: matrix must be square")
	}
	if len(b) != a.Rows {
		return fmt.Errorf("par: rhs length %d, want %d", len(b), a.Rows)
	}
	if nranks < 1 || nranks > a.Rows {
		return fmt.Errorf("par: nranks %d out of range", nranks)
	}
	return nil
}

// runTeam spawns one goroutine rank per Comm, runs body on each, and merges
// the per-rank instrumentation (fault counts and comm stats) into rank 0's
// replicated result. The solver counters (iterations, detections, …) are
// identical on every rank because every branch they feed is taken on a
// replicated all-reduced value.
func runTeam(nranks int, topo Topology, body func(c *Comm) (Result, error)) (Result, error) {
	comms := NewTeamTopology(nranks, topo)
	results := make([]Result, nranks)
	errs := make([]error, nranks)
	var wg sync.WaitGroup
	for r := 0; r < nranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			results[rank], errs[rank] = body(comms[rank])
		}(r)
	}
	wg.Wait()
	res := results[0]
	for r := 1; r < nranks; r++ {
		res.InjectedFaults += results[r].InjectedFaults
		res.CheckpointBytes += results[r].CheckpointBytes
		res.CheckpointStoredBytes += results[r].CheckpointStoredBytes
		res.Comm.Merge(results[r].Comm)
	}
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// rankEngine is one rank's view of a protected distributed solve: its row
// block, its slice of the encoded checksum rows, its local preconditioner
// stages, and the instrumented operations the solver loops are built from.
type rankEngine struct {
	c      *Comm
	a      *sparse.CSR
	dm     *DistMatrix
	lo, hi int
	local  int
	n      int
	opts   *Options
	res    *Result

	weights []checksum.Weight
	tol     checksum.Tol
	dScalar float64
	// rowAs[k] is this rank's [lo, hi) slice of checksum(A) = c_kᵀA − d·c_kᵀ
	// for weight k (one row without forward recovery, three with).
	rowAs [][]float64
	// Local block preconditioner stages with their encodings (nil without
	// preconditioning).
	stages []precond.Stage
	encStg []*checksum.Matrix
	// pco scratch, hoisted out of the per-iteration path: each rank engine
	// applies its preconditioner sequentially, so two ping-pong data
	// buffers and two checksum buffers serve any stage-chain length with
	// zero steady-state allocations.
	pcoBuf, pcoBuf2 []float64
	pcoS, pcoS2     []float64
	// Lazy diagnosis state for the two-level inner check: this rank's
	// column slices of c_kᵀA for the locating weights.
	diagWeights []checksum.Weight
	diagRows    [][]float64

	bL *DistVector
	xg []float64 // gathered global vector buffer

	store checkpoint.Store
	fired []bool
	// curIter/curSeq track the (iteration, MVM-within-iteration) coordinate
	// faults are addressed by; beginIter resets the sequence.
	curIter, curSeq int
}

// newRankEngine prepares one rank's engine: partition block, local ILU(0)
// block preconditioner (when withPrecond), encoded checksum rows, and the
// rank's slice of the global encoding. Collective calls inside must be
// matched by every rank, so the constructor runs identically everywhere —
// including the setup-failure verdict, which is all-reduced so a rank whose
// factorization fails cannot strand its peers in a collective.
func newRankEngine(c *Comm, a *sparse.CSR, b []float64, part Partition, opts *Options, res *Result, withPrecond bool) (*rankEngine, error) {
	lo, hi := part.Range(c.Rank())
	weights := checksum.Single
	if opts.ForwardRecovery {
		// Forward recovery needs the locating checksums δ2, δ3 on the
		// outer-level vectors themselves, so all three weights are carried.
		weights = checksum.Triple
	}
	e := &rankEngine{
		c: c, a: a, dm: SplitPartition(a, part, c.Rank()),
		lo: lo, hi: hi, local: hi - lo, n: a.Rows,
		opts: opts, res: res,
		weights: weights,
		tol:     checksum.Tol{Theta: opts.Theta},
		dScalar: checksum.PracticalD(a),
		xg:      make([]float64, a.Rows),
		fired:   make([]bool, len(opts.Faults)),
		store: checkpoint.Store{
			Codec:    opts.CheckpointCodec,
			AbsBound: opts.CheckpointAbsBound,
			RelBound: opts.CheckpointRelBound,
		},
	}
	e.pcoBuf = make([]float64, e.local)
	e.pcoBuf2 = make([]float64, e.local)
	e.pcoS = make([]float64, len(e.weights))
	e.pcoS2 = make([]float64, len(e.weights))

	var setupErr error
	if withPrecond {
		// Local block preconditioner: ILU(0) of the diagonal block, exactly
		// block-Jacobi with blocks = ranks.
		blk := a.SubMatrix(lo, hi)
		mLocal, err := precond.ILU0(blk)
		if err != nil {
			setupErr = fmt.Errorf("par: rank %d ILU(0): %w", c.Rank(), err)
		} else {
			e.stages = mLocal.Stages()
		}
	}
	flag := 0.0
	if setupErr != nil {
		flag = 1
	}
	if c.AllReduceSum(flag) > 0 {
		if setupErr != nil {
			return nil, setupErr
		}
		return nil, fmt.Errorf("par: peer rank failed preconditioner setup")
	}

	// Shifted weights evaluate the global checksum vector at this rank's
	// global row indices, so locally encoded stage matrices yield exactly
	// this rank's slice of the global checksum rows.
	shifted := make([]checksum.Weight, len(e.weights))
	for k, w := range e.weights {
		shifted[k] = checksum.ShiftWeight(w, lo)
	}
	e.encStg = make([]*checksum.Matrix, len(e.stages))
	for i, st := range e.stages {
		e.encStg[i] = checksum.EncodeMatrix(st.M, shifted, e.dScalar)
	}

	// This rank's slices of checksum(A), one per carried weight: partial
	// c_kᵀA from the owned rows, all-reduced over the team, then sliced
	// and shifted.
	e.rowAs = make([][]float64, len(e.weights))
	for k, w := range e.weights {
		full := make([]float64, e.n)
		checksum.PartialMatrixRow(a, w, lo, hi, full)
		c.AllReduceVec(full, full)
		e.rowAs[k] = checksum.LocalRowSlice(full, w, e.dScalar, lo, hi)
	}

	if opts.TwoLevel {
		e.diagWeights = []checksum.Weight{checksum.Linear, checksum.Harmonic}
		e.diagRows = make([][]float64, len(e.diagWeights))
		for k, w := range e.diagWeights {
			fullK := make([]float64, e.n)
			checksum.PartialMatrixRow(a, w, lo, hi, fullK)
			c.AllReduceVec(fullK, fullK)
			e.diagRows[k] = append([]float64(nil), fullK[lo:hi]...)
		}
	}

	e.bL = NewDistVector(e.local, len(e.weights))
	copy(e.bL.Data, b[lo:hi])
	e.bL.LocalChecksums(e.weights, lo)
	return e, nil
}

func (e *rankEngine) newVec() *DistVector { return NewDistVector(e.local, len(e.weights)) }

// beginIter sets the fault coordinate for the iteration about to run.
func (e *rankEngine) beginIter(i int) { e.curIter = i; e.curSeq = 0 }

// canceled is the replicated cancellation probe: each rank contributes its
// local view of Options.Ctx to a scalar all-reduce, so the verdict — and
// therefore the abort point — is identical on every rank and no rank leaves
// a peer blocked in a collective. Without a context it costs nothing.
func (e *rankEngine) canceled() bool {
	if e.opts.Ctx == nil {
		return false
	}
	flag := 0.0
	select {
	case <-e.opts.Ctx.Done():
		flag = 1
	default:
	}
	return e.c.AllReduceSum(flag) > 0
}

// cancelErr builds the per-rank abort error after a positive canceled()
// verdict, wrapping the context's own error so callers can classify it.
func (e *rankEngine) cancelErr(method string) error {
	err := e.opts.Ctx.Err()
	if err == nil {
		// Replicated verdict but this rank's ctx not yet settled locally —
		// the cause is still cancellation.
		err = context.Canceled
	}
	return fmt.Errorf("par: %s solve canceled: %w", method, err)
}

// finish stores the rank's collective instrumentation into the result; the
// solver bodies defer it so every exit path reports comm stats.
func (e *rankEngine) finish() { e.res.Comm = e.c.Stats() }

// strike applies one fault to v[idx] — the flip/additive arithmetic shared
// by the output, checksum and checkpoint targets.
func strike(f Fault, v []float64, idx int) {
	if f.BitFlip {
		bit := uint(62)
		if f.Bit >= 0 && f.Bit <= 63 {
			bit = uint(f.Bit)
		}
		v[idx] = math.Float64frombits(math.Float64bits(v[idx]) ^ (1 << bit))
		return
	}
	mag := f.Magnitude
	//lint:ignore floatcmp Magnitude == 0 is the unset sentinel selecting the default error
	if mag == 0 {
		mag = 1e4
	}
	v[idx] += mag
}

// inject fires any scheduled output fault addressed to this rank at the
// current (iteration, MVM) coordinate. Faults are one-shot: a strike
// consumed before a rollback does not re-fire when its iteration
// re-executes (the paper's scenarios schedule a fixed set of errors).
func (e *rankEngine) inject(dst *DistVector) {
	for fi, f := range e.opts.Faults {
		if f.Target != TargetOutput || f.Iteration != e.curIter || f.Rank != e.c.Rank() || f.MVM != e.curSeq || e.fired[fi] {
			continue
		}
		e.fired[fi] = true
		e.res.InjectedFaults++
		idx := f.Index
		if idx < 0 || idx >= e.local {
			idx = 0
		}
		strike(f, dst.Data, idx)
	}
}

// injectChecksum fires checksum-state faults at the current (iteration, MVM)
// coordinate, corrupting the carried partial checksum scalar after the MVM
// updated it. The output data stays clean; the protection breaks — the
// false-positive the verifier must charge a rollback for.
func (e *rankEngine) injectChecksum(dst *DistVector) {
	for fi, f := range e.opts.Faults {
		if f.Target != TargetChecksum || f.Iteration != e.curIter || f.Rank != e.c.Rank() || f.MVM != e.curSeq || e.fired[fi] {
			continue
		}
		e.fired[fi] = true
		e.res.InjectedFaults++
		strike(f, dst.S, 0)
	}
}

// trace appends one timeline event, recorded by rank 0 only: every verdict
// that drives an event is replicated-deterministic, so rank 0's log is the
// team's log, in core's event vocabulary.
func (e *rankEngine) trace(iter int, kind core.EventKind, format string, args ...any) {
	if e.c.Rank() != 0 {
		return
	}
	e.res.Trace = append(e.res.Trace, core.TraceEvent{
		Iteration: iter,
		Kind:      kind,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// detect counts one detection (replicated on every rank) and records it on
// the team timeline.
func (e *rankEngine) detect(iter int, format string, args ...any) {
	e.res.Detections++
	e.trace(iter, core.EvDetection, format, args...)
}

// mvmClean computes the local block of dst = A·src with no instrumentation
// and no checksum update — the recovery and setup paths use it.
func (e *rankEngine) mvmClean(dst, src *DistVector) {
	e.c.AllGather(e.xg, src.Data, e.lo)
	e.dm.MulVec(dst.Data, e.xg)
}

// mvm is the protected distributed MVM: gather, local multiply, scheduled
// fault injection, then the partial Eq. (2) checksum update — this rank's
// slice of checksum(A) against its own block of the (clean) input, plus d
// times the carried partial input checksum. The partials sum to the global
// rule, so an injected error leaves dst.Data inconsistent with dst.S.
func (e *rankEngine) mvm(dst, src *DistVector) {
	e.mvmClean(dst, src)
	e.inject(dst)
	for k := range e.weights {
		row := e.rowAs[k]
		var dot float64
		for j := 0; j < e.local; j++ {
			dot += row[j] * src.Data[j]
		}
		dst.S[k] = dot + e.dScalar*src.S[k]
	}
	e.injectChecksum(dst)
	e.curSeq++
}

// mvmFresh computes dst = A·src with directly recomputed checksums — the
// recovery path, which must not consume fault strikes.
func (e *rankEngine) mvmFresh(dst, src *DistVector) {
	e.mvmClean(dst, src)
	dst.LocalChecksums(e.weights, e.lo)
}

// residualFresh recomputes r = b − A·x with fresh local checksums.
func (e *rankEngine) residualFresh(r, x *DistVector) {
	e.mvmClean(r, x)
	vec.Sub(r.Data, e.bL.Data, r.Data)
	r.LocalChecksums(e.weights, e.lo)
}

// pco applies the local block preconditioner stage by stage, carrying the
// partial checksum through each solve (Eq. 4) or multiply (Eq. 2). With no
// stages it is the identity.
func (e *rankEngine) pco(dst, src *DistVector) error {
	in, inS := src.Data, src.S
	// The engine-owned scratch ping-pongs through the stage chain: a
	// stage's input (in, inS) is dead once consumed, so the next stage
	// writes into the other buffer of each pair.
	buf, spare := e.pcoBuf, e.pcoBuf2
	bufS, spareS := e.pcoS, e.pcoS2
	for k, st := range e.stages {
		if err := st.Apply(buf, in); err != nil {
			return err
		}
		switch st.Op {
		case precond.StageSolve:
			e.encStg[k].UpdatePCO(bufS, buf, inS)
		case precond.StageMul:
			e.encStg[k].UpdateMVM(bufS, in, inS)
		}
		in, inS = buf, bufS
		buf, spare = spare, buf
		bufS, spareS = spareS, bufS
	}
	copy(dst.Data, in)
	copy(dst.S, inS)
	return nil
}

// The VLO family updates data and carried checksums together (Eq. 3).

func (e *rankEngine) axpy(y *DistVector, alpha float64, x *DistVector) {
	vec.Axpy(y.Data, alpha, x.Data)
	for k := range y.S {
		y.S[k] += alpha * x.S[k]
	}
}

func (e *rankEngine) xpby(dst, x *DistVector, beta float64, y *DistVector) {
	vec.Xpby(dst.Data, x.Data, beta, y.Data)
	for k := range dst.S {
		dst.S[k] = x.S[k] + beta*y.S[k]
	}
}

func (e *rankEngine) axpbyInto(dst *DistVector, alpha float64, x *DistVector, beta float64, y *DistVector) {
	vec.Axpby(dst.Data, alpha, x.Data, beta, y.Data)
	for k := range dst.S {
		dst.S[k] = alpha*x.S[k] + beta*y.S[k]
	}
}

func copyDist(dst, src *DistVector) {
	copy(dst.Data, src.Data)
	copy(dst.S, src.S)
}

func (e *rankEngine) dot(a, b *DistVector) float64 { return GlobalDot(e.c, a, b) }

// dotRaw is the global inner product of a plain local block (BiCGStab's
// fixed shadow residual) with a distributed vector.
func (e *rankEngine) dotRaw(a []float64, b *DistVector) float64 {
	return e.c.AllReduceSum(vec.Dot(a, b.Data))
}

func (e *rankEngine) norm2(a *DistVector) float64 { return GlobalNorm2(e.c, a) }

// verify checks the global checksum relationship of v. Every rank returns
// the same verdict because the reductions are replicated-deterministic. A
// passing verdict re-anchors the carried checksums to the verified data, so
// recurrence round-off cannot accumulate into a false positive over a long
// solve; a failing verdict leaves the checksums untouched for diagnosis.
func (e *rankEngine) verify(v *DistVector) bool {
	if !VerifyGlobal(e.c, v, e.weights[0], 0, e.lo, e.n, e.tol) {
		return false
	}
	v.LocalChecksums(e.weights, e.lo)
	return true
}

// scalarSanityBound is the largest magnitude a recurrence scalar can take
// before it is treated as corrupted: beyond ≈√MaxFloat64 any product of two
// such scalars overflows, and an exponent-bit upset scales an iterate
// element by 2^±1024 — landing its dot products far past this bound. The
// guard matters because a huge denominator is then divided away (α = ρ/r̂ᵀv
// collapses toward zero), scaling the corruption below the checksum
// detection threshold before the next verification boundary sees it.
const scalarSanityBound = 1e150

// breakdownSuspect reports whether a replicated recurrence scalar is
// unusable — exactly zero, NaN, Inf, or absurdly large. Under ABFT such a
// value right after a protected MVM is far more likely a propagated fault
// than a genuine Lanczos-type breakdown, so the solver loops treat it as a
// detection and roll back; only an exhausted rollback budget surfaces it as
// an error.
func breakdownSuspect(v float64) bool {
	//lint:ignore floatcmp exact zero is the breakdown condition itself
	return v == 0 || math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > scalarSanityBound
}

// innerCheck is the distributed two-level inner level run after a protected
// MVM out = A·in: global δ1 probe on out, input-purity check on in, lazy
// δ2/δ3 evaluation, in-place correction by the owner rank. Returns false
// when a rollback is required. Every rank returns the same verdict.
func (e *rankEngine) innerCheck(out, in *DistVector) bool {
	var sum, absSum float64
	for i, x := range out.Data {
		t := e.weights[0].At(e.lo+i) * x
		sum += t
		absSum += math.Abs(t)
	}
	gSum := e.c.AllReduceSum(sum)
	gAbs := e.c.AllReduceSum(absSum)
	gS := e.c.AllReduceSum(out.S[0])
	d1 := gSum - gS
	if e.tol.ConsistentAbs(d1, e.n, gAbs) {
		return true
	}
	e.detect(e.curIter, "inner-level: MVM output checksum inconsistency")
	// Input purity: a carried inconsistency in the input mimics a single
	// output error; only a clean input makes the signature trustworthy.
	if !e.verify(in) {
		return false
	}
	deltas := []float64{d1, 0, 0}
	absSums := []float64{gAbs, 0, 0}
	for k, w := range e.diagWeights {
		var exp, qs, qa float64
		for i, x := range in.Data {
			exp += e.diagRows[k][i] * x
		}
		for i, x := range out.Data {
			t := w.At(e.lo+i) * x
			qs += t
			qa += math.Abs(t)
		}
		deltas[k+1] = e.c.AllReduceSum(qs) - e.c.AllReduceSum(exp)
		absSums[k+1] = e.c.AllReduceSum(qa)
	}
	diag := checksum.Diagnose(deltas, e.n, absSums, e.tol)
	if diag.Kind != checksum.SingleError {
		return false
	}
	if diag.Pos >= e.lo && diag.Pos < e.hi {
		out.Data[diag.Pos-e.lo] -= diag.Magnitude
	}
	e.res.Corrections++
	e.trace(e.curIter, core.EvCorrection, "inner-level: corrected element %d", diag.Pos)
	e.c.Barrier() // correction visible before anyone reads out
	return true
}

// save snapshots the given tracked vectors (data + checksums) and scalars,
// then fires any checkpoint-buffer faults scheduled against this rank at
// this iteration: the snapshot copy is poisoned, the live state is not, so
// the corruption stays dormant until a rollback restores it.
func (e *rankEngine) save(iter int, vecs map[string]*DistVector, scalars map[string]float64) {
	data := make(map[string][]float64, len(vecs))
	sums := make(map[string][]float64, len(vecs))
	names := make([]string, 0, len(vecs))
	for name, v := range vecs {
		data[name] = v.Data
		sums[name] = v.S
		names = append(names, name)
	}
	sort.Strings(names)
	e.store.Save(iter, data, scalars, sums)
	e.res.Checkpoints++
	e.res.CheckpointBytes = e.store.BytesCopied
	e.res.CheckpointStoredBytes = e.store.BytesStored
	e.trace(iter, core.EvCheckpoint, "snapshot {%s}", strings.Join(names, ", "))
	for fi, f := range e.opts.Faults {
		if f.Target != TargetCheckpoint || f.Iteration != iter || f.Rank != e.c.Rank() || e.fired[fi] {
			continue
		}
		e.fired[fi] = true
		e.res.InjectedFaults++
		// Strike every snapshotted vector in sorted-name order (Strike's
		// visit order) so the corruption is deterministic regardless of
		// map iteration — it lands in the stored payload, whichever codec
		// encodes it, and stays dormant until a rollback.
		e.store.Strike(func(_ string, buf []float64) {
			idx := f.Index
			if idx < 0 || idx >= len(buf) {
				idx = 0
			}
			strike(f, buf, idx)
		})
	}
}

// restore rolls the tracked vectors and scalars back to the latest
// snapshot, charging one rollback against the budget. The verdict is
// replicated: every rank holds the same snapshot iteration and budget.
func (e *rankEngine) restore(vecs map[string]*DistVector, scalars map[string]float64) (int, bool) {
	e.res.Rollbacks++
	if e.res.Rollbacks > e.opts.MaxRollbacks {
		return 0, false
	}
	data := make(map[string][]float64, len(vecs))
	sums := make(map[string][]float64, len(vecs))
	for name, v := range vecs {
		data[name] = v.Data
		sums[name] = v.S
	}
	snapIter, err := e.store.Restore(data, scalars, sums)
	if err != nil {
		return 0, false
	}
	if e.store.Lossy() {
		// The restored blocks are quantized: the exact carried checksums
		// that came back with them disagree with the perturbed data by up
		// to n·bound, which the next verification would flag as a fault.
		// Re-anchor each rank's partial checksums from the restored data —
		// a local recomputation, so the verdict stays replicated.
		for _, v := range vecs {
			v.LocalChecksums(e.weights, e.lo)
		}
		e.res.LossyRestores++
	}
	e.res.WastedIterations += e.curIter - snapIter
	e.trace(e.curIter, core.EvRollback, "restored iteration %d", snapIter)
	return snapIter, true
}

// gatherX assembles the full solution vector on every rank.
func (e *rankEngine) gatherX(x *DistVector) []float64 {
	e.c.AllGather(e.xg, x.Data, e.lo)
	out := make([]float64, len(e.xg))
	copy(out, e.xg)
	return out
}
