package par

import (
	"math"
	"testing"

	"newsum/internal/checksum"
	"newsum/internal/sparse"
)

func TestBlockRangeCoversExactly(t *testing.T) {
	for _, n := range []int{1, 7, 16, 100, 101} {
		for _, size := range []int{1, 2, 3, 7, 16} {
			if size > n {
				continue
			}
			covered := 0
			prevHi := 0
			for r := 0; r < size; r++ {
				lo, hi := BlockRange(n, size, r)
				if lo != prevHi {
					t.Fatalf("n=%d size=%d rank=%d: gap/overlap at %d", n, size, r, lo)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n {
				t.Fatalf("n=%d size=%d: covered %d", n, size, covered)
			}
		}
	}
}

func TestDistMatrixMulVecMatchesSerial(t *testing.T) {
	a := sparse.Laplacian2D(9, 9)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	want := make([]float64, a.Rows)
	a.MulVec(want, x)
	const ranks = 4
	for r := 0; r < ranks; r++ {
		dm := Split(a, ranks, r)
		local := make([]float64, dm.LocalRows())
		dm.MulVec(local, x)
		for i, v := range local {
			if math.Abs(v-want[dm.Lo+i]) > 1e-14 {
				t.Fatalf("rank %d row %d: %v vs %v", r, dm.Lo+i, v, want[dm.Lo+i])
			}
		}
	}
}

func TestLocalChecksumsSumToGlobal(t *testing.T) {
	a := sparse.Laplacian2D(7, 7)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 5)
	}
	weights := checksum.Triple
	global := checksum.Checksums(x, weights)
	const ranks = 3
	totals := make([]float64, len(weights))
	for r := 0; r < ranks; r++ {
		lo, hi := BlockRange(a.Rows, ranks, r)
		dv := NewDistVector(hi-lo, len(weights))
		copy(dv.Data, x[lo:hi])
		dv.LocalChecksums(weights, lo)
		for k := range totals {
			totals[k] += dv.S[k]
		}
	}
	for k := range totals {
		if math.Abs(totals[k]-global[k]) > 1e-9*(1+math.Abs(global[k])) {
			t.Fatalf("weight %d: partials sum to %v, global %v", k, totals[k], global[k])
		}
	}
}

func TestVerifyGlobalDetectsCorruption(t *testing.T) {
	const n, ranks = 40, 4
	comms := NewTeam(ranks)
	type out struct {
		clean, dirty bool
	}
	ch := make(chan out, ranks)
	for r := 0; r < ranks; r++ {
		go func(c *Comm) {
			lo, hi := BlockRange(n, ranks, c.Rank())
			dv := NewDistVector(hi-lo, 1)
			for i := range dv.Data {
				dv.Data[i] = float64(lo + i)
			}
			dv.LocalChecksums(checksum.Single, lo)
			tol := checksum.Tol{}
			clean := VerifyGlobal(c, dv, checksum.Ones, 0, lo, n, tol)
			// Corrupt one element on rank 2 only.
			if c.Rank() == 2 {
				dv.Data[0] += 1e4
			}
			dirty := VerifyGlobal(c, dv, checksum.Ones, 0, lo, n, tol)
			ch <- out{clean, dirty}
		}(comms[r])
	}
	for i := 0; i < ranks; i++ {
		o := <-ch
		if !o.clean {
			t.Fatalf("clean distributed vector failed verification")
		}
		if o.dirty {
			t.Fatalf("corruption on one rank escaped global verification")
		}
	}
}

func TestBcast(t *testing.T) {
	const ranks = 4
	comms := NewTeam(ranks)
	ch := make(chan float64, ranks)
	for r := 0; r < ranks; r++ {
		go func(c *Comm) {
			v := -1.0
			if c.Rank() == 2 {
				v = 42
			}
			ch <- c.Bcast(v, 2)
		}(comms[r])
	}
	for i := 0; i < ranks; i++ {
		if got := <-ch; got != 42 {
			t.Fatalf("Bcast: got %v", got)
		}
	}
}

func TestAllReduceVec(t *testing.T) {
	const ranks = 3
	comms := NewTeam(ranks)
	ch := make(chan []float64, ranks)
	for r := 0; r < ranks; r++ {
		go func(c *Comm) {
			src := []float64{float64(c.Rank()), 1, 2}
			dst := make([]float64, 3)
			c.AllReduceVec(dst, src)
			// A second reduction immediately after must not corrupt the
			// first result (regression for the double-rendezvous).
			src2 := []float64{1, 1, 1}
			dst2 := make([]float64, 3)
			c.AllReduceVec(dst2, src2)
			out := append(dst, dst2...)
			ch <- out
		}(comms[r])
	}
	for i := 0; i < ranks; i++ {
		got := <-ch
		want := []float64{0 + 1 + 2, 3, 6, 3, 3, 3}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("AllReduceVec[%d]: got %v want %v", j, got[j], want[j])
			}
		}
	}
}

func TestNewTeamPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewTeam(0)
}
