package par

import (
	"fmt"
	"testing"

	"newsum/internal/core"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// The acceptance bar for the multi-solver engine: parallel BiCGStab and CR
// match their serial internal/core counterparts to 1e-8 fault-free at 1, 2,
// and 4 ranks. Both sides solve to a much tighter residual tolerance so the
// two solutions agree well inside the comparison tolerance.

func serialOpts(tol float64) core.Options {
	return core.Options{Options: solver.Options{Tol: tol}}
}

func TestABFTBiCGStabMatchesSerial(t *testing.T) {
	a, b, _ := parSystem(t)
	m, err := precond.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := core.BasicPBiCGSTAB(a, m, b, serialOpts(1e-12))
	if err != nil {
		t.Fatalf("serial BiCGStab: %v", err)
	}
	for _, ranks := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			res, err := ABFTBiCGStab(a, b, ranks, Options{Tol: 1e-12})
			if err != nil {
				t.Fatalf("parallel BiCGStab: %v", err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			if res.Rollbacks != 0 || res.Detections != 0 {
				t.Errorf("fault-free run had FT events: %+v", res)
			}
			if !vec.Equal(serial.X, res.X, 1e-8) {
				t.Errorf("parallel solution differs from serial beyond 1e-8")
			}
			if res.Comm.Reductions == 0 || res.Comm.Gathers == 0 {
				t.Errorf("collective instrumentation empty: %+v", res.Comm)
			}
		})
	}
}

func TestABFTCRMatchesSerial(t *testing.T) {
	a, b, _ := parSystem(t)
	serial, err := core.BasicCR(a, b, serialOpts(1e-12))
	if err != nil {
		t.Fatalf("serial CR: %v", err)
	}
	for _, ranks := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			res, err := ABFTCR(a, b, ranks, Options{Tol: 1e-12})
			if err != nil {
				t.Fatalf("parallel CR: %v", err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			if res.Rollbacks != 0 || res.Detections != 0 {
				t.Errorf("fault-free run had FT events: %+v", res)
			}
			if !vec.Equal(serial.X, res.X, 1e-8) {
				t.Errorf("parallel solution differs from serial beyond 1e-8")
			}
		})
	}
}

// Every solver must produce identical results on both collective
// topologies: the tree collectives are bitwise-deterministic (every rank
// combines block sums with the same association tree), so swapping Linear
// for Tree may change the result only through summation order — within
// round-off of the same solve.
func TestTopologiesAgree(t *testing.T) {
	a, b, _ := parSystem(t)
	for _, tc := range []struct {
		name  string
		solve func(topo Topology) (Result, error)
	}{
		{"pcg", func(topo Topology) (Result, error) {
			return ABFTPCG(a, b, 4, Options{Tol: 1e-10, Topology: topo})
		}},
		{"bicgstab", func(topo Topology) (Result, error) {
			return ABFTBiCGStab(a, b, 4, Options{Tol: 1e-10, Topology: topo})
		}},
		{"cr", func(topo Topology) (Result, error) {
			return ABFTCR(a, b, 4, Options{Tol: 1e-10, Topology: topo})
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tree, err := tc.solve(Tree)
			if err != nil {
				t.Fatalf("tree: %v", err)
			}
			linear, err := tc.solve(Linear)
			if err != nil {
				t.Fatalf("linear: %v", err)
			}
			if !vec.Equal(tree.X, linear.X, 1e-8) {
				t.Errorf("topologies disagree beyond round-off")
			}
			if tree.Comm.Collectives() == 0 || linear.Comm.Collectives() == 0 {
				t.Errorf("missing comm stats: tree=%+v linear=%+v", tree.Comm, linear.Comm)
			}
		})
	}
}

// The nnz-balanced partitioner must not change what the solver computes,
// only where the rows live.
func TestPartitionChoiceAgrees(t *testing.T) {
	a := sparse.CircuitLike(600, 7)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	nnz, err := ABFTPCG(a, b, 4, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("nnz partition: %v", err)
	}
	even, err := ABFTPCG(a, b, 4, Options{Tol: 1e-10, EvenRows: true})
	if err != nil {
		t.Fatalf("even partition: %v", err)
	}
	r := make([]float64, a.Rows)
	for name, x := range map[string][]float64{"nnz": nnz.X, "even": even.X} {
		a.MulVec(r, x)
		vec.Sub(r, b, r)
		if rel := vec.Norm2(r) / vec.Norm2(b); rel > 1e-9 {
			t.Errorf("%s: true residual %.3e", name, rel)
		}
	}
}
