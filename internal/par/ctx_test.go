package par

import (
	"context"
	"errors"
	"testing"
	"time"

	"newsum/internal/sparse"
)

// Distributed cancellation: the replicated probe must abort every rank at
// the same iteration (no goroutine stranded in a collective — the test would
// deadlock otherwise) and surface an error wrapping the context's error.

func ctxProblem() (*sparse.CSR, []float64) {
	a := sparse.Laplacian2D(16, 16)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	return a, b
}

func TestParCancellationAbortsAllRanks(t *testing.T) {
	a, b := ctxProblem()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		run  func() (Result, error)
	}{
		{"pcg", func() (Result, error) { return ABFTPCG(a, b, 4, Options{Ctx: ctx}) }},
		{"bicgstab", func() (Result, error) { return ABFTBiCGStab(a, b, 4, Options{Ctx: ctx}) }},
		{"cr", func() (Result, error) { return ABFTCR(a, b, 4, Options{Ctx: ctx}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() {
				_, err := tc.run()
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("canceled context did not abort the distributed solve")
				}
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("error does not wrap context.Canceled: %v", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("distributed solve deadlocked after cancellation (ranks aborted at different collectives)")
			}
		})
	}
}

// TestParDeadlineExpiry drives a real mid-solve expiry rather than a
// pre-canceled context.
func TestParDeadlineExpiry(t *testing.T) {
	a, b := ctxProblem()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(5 * time.Millisecond) // let the deadline lapse
	_, err := ABFTPCG(a, b, 2, Options{Ctx: ctx, Tol: 1e-12})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
}
