package par

import (
	"fmt"
	"testing"

	"newsum/internal/sparse"
)

// Edge geometry: empty ranks (size > n), one row per rank (size == n), and
// the degenerate n == 0, for both the legacy BlockRange and the Partition
// family; plus single-rank teams and empty blocks through every collective.

func TestBlockRangeEdgeGeometry(t *testing.T) {
	cases := []struct{ n, size int }{
		{3, 5},   // size > n: trailing ranks empty
		{4, 4},   // size == n: one row each
		{0, 3},   // n == 0: everyone empty
		{1, 1},   // minimal
		{5, 8},   // size > n, non-divisible
		{16, 16}, // size == n, larger
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n=%d/size=%d", tc.n, tc.size), func(t *testing.T) {
			prevHi := 0
			for r := 0; r < tc.size; r++ {
				lo, hi := BlockRange(tc.n, tc.size, r)
				if lo != prevHi {
					t.Fatalf("rank %d: gap/overlap at %d (want %d)", r, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("rank %d: negative range [%d,%d)", r, lo, hi)
				}
				prevHi = hi
			}
			if prevHi != tc.n {
				t.Fatalf("covered %d rows, want %d", prevHi, tc.n)
			}
			if tc.size == tc.n {
				for r := 0; r < tc.size; r++ {
					if lo, hi := BlockRange(tc.n, tc.size, r); hi-lo != 1 {
						t.Fatalf("size==n: rank %d owns %d rows, want 1", r, hi-lo)
					}
				}
			}
		})
	}
}

func TestPartitionEdgeGeometry(t *testing.T) {
	for _, tc := range []struct{ nx, size int }{
		{2, 7}, // size > n (n = 4)
		{2, 4}, // size == n
		{3, 9}, // size == n
		{4, 3}, // generic
	} {
		a := sparse.Laplacian2D(tc.nx, tc.nx)
		n := a.Rows
		for name, p := range map[string]Partition{
			"even": EvenPartition(n, tc.size),
			"nnz":  NnzPartition(a, tc.size),
		} {
			t.Run(fmt.Sprintf("%s/n=%d/size=%d", name, n, tc.size), func(t *testing.T) {
				if err := p.Validate(); err != nil {
					t.Fatal(err)
				}
				if p.Ranks() != tc.size {
					t.Fatalf("Ranks() = %d, want %d", p.Ranks(), tc.size)
				}
				total := 0
				for r := 0; r < tc.size; r++ {
					total += p.LocalLen(r)
				}
				if total != n {
					t.Fatalf("partition covers %d rows, want %d", total, n)
				}
				if n >= tc.size {
					for r := 0; r < tc.size; r++ {
						if p.LocalLen(r) == 0 {
							t.Fatalf("rank %d empty with n=%d >= size=%d", r, n, tc.size)
						}
					}
				}
			})
		}
	}
}

func TestPartitionZeroRows(t *testing.T) {
	empty := sparse.NewCOO(0, 0).ToCSR()
	for name, p := range map[string]Partition{
		"even": EvenPartition(0, 3),
		"nnz":  NnzPartition(empty, 3),
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for r := 0; r < 3; r++ {
			if p.LocalLen(r) != 0 {
				t.Fatalf("%s: rank %d non-empty on n=0", name, r)
			}
		}
	}
}

// NnzPartition must beat (or match) the even split on a skewed matrix, and
// coincide with it on a uniform one.
func TestNnzPartitionBalances(t *testing.T) {
	skewed := sparse.CircuitLike(2000, 11)
	const ranks = 8
	nnzP := NnzPartition(skewed, ranks)
	evenP := EvenPartition(skewed.Rows, ranks)
	if got, even := nnzP.NnzImbalance(skewed), evenP.NnzImbalance(skewed); got > even+1e-12 {
		t.Errorf("nnz partition imbalance %.3f worse than even split %.3f", got, even)
	}

	uniform := sparse.Laplacian2D(20, 20)
	u := NnzPartition(uniform, 4)
	if imb := u.NnzImbalance(uniform); imb > 1.10 {
		t.Errorf("uniform matrix imbalance %.3f, want near 1.0", imb)
	}
}

func TestSplitEmptyRank(t *testing.T) {
	a := sparse.Laplacian2D(1, 3) // n = 3
	const size = 5
	for r := 0; r < size; r++ {
		dm := Split(a, size, r)
		if dm.LocalRows() < 0 {
			t.Fatalf("rank %d: negative local rows", r)
		}
		x := []float64{1, 2, 3}
		y := make([]float64, dm.LocalRows())
		dm.MulVec(y, x) // must not panic on empty blocks
	}
}

// A single-rank team must run every collective as the identity, and still
// count it.
func TestSingleRankCollectives(t *testing.T) {
	for _, topo := range []Topology{Tree, Linear} {
		t.Run(topo.String(), func(t *testing.T) {
			c := NewTeamTopology(1, topo)[0]
			if got := c.AllReduceSum(3.5); got != 3.5 {
				t.Errorf("AllReduceSum: %v", got)
			}
			src := []float64{1, 2, 3}
			dst := make([]float64, 3)
			c.AllReduceVec(dst, src)
			for i := range src {
				if dst[i] != src[i] {
					t.Errorf("AllReduceVec[%d]: %v", i, dst[i])
				}
			}
			global := make([]float64, 3)
			c.AllGather(global, src, 0)
			for i := range src {
				if global[i] != src[i] {
					t.Errorf("AllGather[%d]: %v", i, global[i])
				}
			}
			if got := c.Bcast(7, 0); got != 7 {
				t.Errorf("Bcast: %v", got)
			}
			c.Barrier()
			st := c.Stats()
			if st.Reductions != 1 || st.VecReductions != 1 || st.Gathers != 1 || st.Broadcasts != 1 || st.Barriers != 1 {
				t.Errorf("single-rank stats not counted: %+v", st)
			}
			if st.MsgsSent != 0 {
				t.Errorf("single-rank team sent %d messages", st.MsgsSent)
			}
		})
	}
}

// AllGather with an empty local block (size > n) must still assemble the
// full vector on every rank, on both topologies and a non-power-of-two
// team.
func TestAllGatherEmptyBlocks(t *testing.T) {
	const n, ranks = 2, 3
	for _, topo := range []Topology{Tree, Linear} {
		t.Run(topo.String(), func(t *testing.T) {
			comms := NewTeamTopology(ranks, topo)
			ch := make(chan []float64, ranks)
			for r := 0; r < ranks; r++ {
				go func(c *Comm) {
					lo, hi := BlockRange(n, ranks, c.Rank())
					local := make([]float64, hi-lo)
					for i := range local {
						local[i] = float64(lo + i + 1)
					}
					g := make([]float64, n)
					c.AllGather(g, local, lo)
					ch <- g
				}(comms[r])
			}
			for i := 0; i < ranks; i++ {
				g := <-ch
				for j := 0; j < n; j++ {
					if g[j] != float64(j+1) {
						t.Fatalf("gathered[%d] = %v, want %d", j, g[j], j+1)
					}
				}
			}
		})
	}
}

// Tree and Linear collectives must agree on every team size that exercises
// the fold-in/fold-out path (non powers of two) and the doubling rounds.
func TestTopologyEquivalenceAllSizes(t *testing.T) {
	const n = 17
	for size := 1; size <= 6; size++ {
		size := size
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			got := map[Topology][][]float64{}
			for _, topo := range []Topology{Tree, Linear} {
				comms := NewTeamTopology(size, topo)
				ch := make(chan []float64, size)
				for r := 0; r < size; r++ {
					go func(c *Comm) {
						rank := float64(c.Rank())
						sum := c.AllReduceSum(rank + 1)
						lo, hi := BlockRange(n, size, c.Rank())
						local := make([]float64, hi-lo)
						for i := range local {
							local[i] = float64(lo+i) * 0.5
						}
						g := make([]float64, n)
						c.AllGather(g, local, lo)
						src := []float64{rank, 2 * rank, 1}
						red := make([]float64, 3)
						c.AllReduceVec(red, src)
						bc := c.Bcast(rank*10, size-1)
						c.Barrier()
						out := append([]float64{sum, bc}, red...)
						ch <- append(out, g...)
					}(comms[r])
				}
				for i := 0; i < size; i++ {
					got[topo] = append(got[topo], <-ch)
				}
			}
			// Every rank's results must be identical across ranks (they are
			// replicated collectives) and across topologies.
			want := got[Tree][0]
			for _, topo := range []Topology{Tree, Linear} {
				for r, out := range got[topo] {
					for j := range want {
						if out[j] != want[j] {
							t.Fatalf("%v rank-slot %d: out[%d] = %v, want %v", topo, r, j, out[j], want[j])
						}
					}
				}
			}
		})
	}
}
