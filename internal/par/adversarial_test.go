package par

import (
	"testing"

	"newsum/internal/core"
	"newsum/internal/vec"
)

// A checksum-state strike corrupts the carried partial checksum, not the
// data: the verifier must still flag the inconsistency and recover to the
// right answer (one futile rollback for the false alarm).
func TestPCGChecksumTargetDetected(t *testing.T) {
	a, b := campaignSystem(t)
	base, err := ABFTPCG(a, b, 2, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	res, err := ABFTPCG(a, b, 2, Options{
		Tol: 1e-10,
		Faults: []Fault{
			{Iteration: 5, Rank: 1, Target: TargetChecksum, BitFlip: true, Bit: 62},
		},
	})
	if err != nil {
		t.Fatalf("checksum-target solve: %v", err)
	}
	if res.InjectedFaults != 1 {
		t.Fatalf("fault fired %d times, want 1", res.InjectedFaults)
	}
	if res.Detections == 0 || res.Rollbacks == 0 {
		t.Errorf("checksum-state attack not flagged: detections=%d rollbacks=%d",
			res.Detections, res.Rollbacks)
	}
	if !vec.Equal(res.X, base.X, 1e-8) {
		t.Errorf("solution diverged from fault-free baseline")
	}
}

// A checkpoint-buffer strike is dormant until a trigger forces a rollback;
// then every restore resurrects the corruption and the run must abort.
func TestPCGCheckpointTargetAborts(t *testing.T) {
	a, b := campaignSystem(t)
	_, err := ABFTPCG(a, b, 2, Options{
		Tol:                1e-10,
		CheckpointInterval: 20,
		MaxRollbacks:       5,
		Faults: []Fault{
			{Iteration: 0, Rank: 0, Target: TargetCheckpoint, BitFlip: true, Bit: 62},
			{Iteration: 7, Rank: 1, BitFlip: true, Bit: 62}, // trigger
		},
	})
	if err == nil {
		t.Fatalf("poisoned checkpoint should end in a rollback storm")
	}
}

// Without a trigger the poisoned snapshot is never read: the solve matches
// the fault-free baseline exactly.
func TestPCGCheckpointTargetDormant(t *testing.T) {
	a, b := campaignSystem(t)
	base, err := ABFTPCG(a, b, 2, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	res, err := ABFTPCG(a, b, 2, Options{
		Tol: 1e-10,
		Faults: []Fault{
			{Iteration: 0, Rank: 0, Target: TargetCheckpoint, BitFlip: true, Bit: 62},
		},
	})
	if err != nil {
		t.Fatalf("dormant checkpoint fault broke the solve: %v", err)
	}
	if res.Rollbacks != 0 || res.Detections != 0 {
		t.Errorf("dormant corruption caused rollbacks=%d detections=%d", res.Rollbacks, res.Detections)
	}
	if !vec.Equal(res.X, base.X, 0) {
		t.Errorf("dormant run should be bit-identical to baseline")
	}
}

// A correlated multi-rank upset (every rank struck at the same iteration)
// must still be detected and recovered from by every solver.
func TestCorrelatedMultiRankFaults(t *testing.T) {
	a, b := campaignSystem(t)
	faults := CorrelatedFaults(Fault{Iteration: 4, Index: 1, BitFlip: true, Bit: 62}, 3)
	if len(faults) != 3 {
		t.Fatalf("CorrelatedFaults built %d faults", len(faults))
	}
	for r, f := range faults {
		if f.Rank != r || f.Iteration != 4 {
			t.Fatalf("fault %d: rank=%d iter=%d", r, f.Rank, f.Iteration)
		}
	}
	base, err := ABFTPCG(a, b, 3, Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	res, err := ABFTPCG(a, b, 3, Options{Tol: 1e-10, Faults: faults})
	if err != nil {
		t.Fatalf("correlated solve: %v", err)
	}
	if res.InjectedFaults != 3 {
		t.Fatalf("fired %d faults, want 3", res.InjectedFaults)
	}
	if res.Detections == 0 {
		t.Errorf("correlated upset escaped detection")
	}
	if !vec.Equal(res.X, base.X, 1e-8) {
		t.Errorf("solution diverged from fault-free baseline")
	}
}

func TestTargetStrings(t *testing.T) {
	if TargetOutput.String() != "output" || TargetChecksum.String() != "checksum" ||
		TargetCheckpoint.String() != "checkpoint" || Target(9).String() != "unknown-target" {
		t.Fatalf("Target.String broken")
	}
}

// The team timeline is recorded in core's event vocabulary by rank 0 and
// must tell the full story of a faulty solve: checkpoints, a detection at
// the struck iteration, and a rollback — in order.
func TestResultTraceTimeline(t *testing.T) {
	a, b := campaignSystem(t)
	res, err := ABFTPCG(a, b, 2, Options{
		Tol: 1e-10,
		Faults: []Fault{
			{Iteration: 5, Rank: 1, Index: 2, BitFlip: true, Bit: 62},
		},
	})
	if err != nil {
		t.Fatalf("traced solve: %v", err)
	}
	if len(res.Trace) == 0 {
		t.Fatalf("no trace recorded")
	}
	counts := map[core.EventKind]int{}
	for _, ev := range res.Trace {
		counts[ev.Kind]++
	}
	if counts[core.EvCheckpoint] != res.Checkpoints {
		t.Errorf("trace has %d checkpoint events, result reports %d",
			counts[core.EvCheckpoint], res.Checkpoints)
	}
	if counts[core.EvDetection] != res.Detections {
		t.Errorf("trace has %d detection events, result reports %d",
			counts[core.EvDetection], res.Detections)
	}
	if counts[core.EvRollback] != res.Rollbacks {
		t.Errorf("trace has %d rollback events, result reports %d",
			counts[core.EvRollback], res.Rollbacks)
	}
	// The detection must land at or after the strike, and be followed by its
	// rollback.
	sawDetection := false
	for _, ev := range res.Trace {
		if ev.Kind == core.EvDetection {
			if ev.Iteration < 5 {
				t.Errorf("detection at iteration %d precedes the iteration-5 strike", ev.Iteration)
			}
			sawDetection = true
		}
		if ev.Kind == core.EvRollback && !sawDetection {
			t.Errorf("rollback before any detection")
		}
	}
	if !sawDetection {
		t.Errorf("no detection event in trace")
	}
}

// Fault-free runs produce checkpoint-only timelines: no detections, no
// rollbacks, no corrections — the 0-false-positive half of the accuracy
// contract at the event level.
func TestResultTraceFaultFree(t *testing.T) {
	a, b := campaignSystem(t)
	for name, run := range map[string]func() (Result, error){
		"pcg":      func() (Result, error) { return ABFTPCG(a, b, 2, Options{Tol: 1e-10}) },
		"bicgstab": func() (Result, error) { return ABFTBiCGStab(a, b, 2, Options{Tol: 1e-10}) },
		"cr":       func() (Result, error) { return ABFTCR(a, b, 2, Options{Tol: 1e-10}) },
	} {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, ev := range res.Trace {
			if ev.Kind != core.EvCheckpoint {
				t.Errorf("%s: fault-free run logged %v at iteration %d: %s",
					name, ev.Kind, ev.Iteration, ev.Detail)
			}
		}
		if len(res.Trace) != res.Checkpoints {
			t.Errorf("%s: %d trace events, want %d checkpoints only", name, len(res.Trace), res.Checkpoints)
		}
	}
}
