package par

import (
	"fmt"

	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// ABFTBiCGStab runs the online ABFT preconditioned BiCGSTAB distributed
// over nranks goroutine ranks, mirroring core's serial abftBiCGSTAB on the
// rankEngine. BiCGStab exercises the engine harder than PCG: two protected
// MVMs and two PCOs per iteration, an extra fixed shadow residual that is
// never checksummed (it is read-only after setup), and an early exit on the
// intermediate residual s. The checkpoint set is the minimal {x, p} plus
// the recurrence scalars; r and v are recomputed on rollback.
func ABFTBiCGStab(a *sparse.CSR, b []float64, nranks int, opts Options) (Result, error) {
	if err := validateProblem(a, b, nranks); err != nil {
		return Result{}, err
	}
	opts.normalize(a.Rows)
	part := opts.partition(a, nranks)
	return runTeam(nranks, opts.Topology, func(c *Comm) (Result, error) {
		return rankBiCGStab(c, a, b, part, opts)
	})
}

func rankBiCGStab(c *Comm, a *sparse.CSR, b []float64, part Partition, opts Options) (res Result, err error) {
	e, err := newRankEngine(c, a, b, part, &opts, &res, true)
	if err != nil {
		return res, err
	}
	defer e.finish()

	x := e.newVec()
	r := e.newVec()
	p := e.newVec()
	v := e.newVec()
	s := e.newVec()
	t := e.newVec()
	phat := e.newVec()
	shat := e.newVec()

	// r = b − A·x0 (x0 = 0, so r = b) with exact local checksums.
	copyDist(r, e.bL)
	rhat := vec.Clone(r.Data) // local block of the shadow residual, fixed for the whole solve

	normB := e.norm2(e.bL)
	if normB <= 0 {
		normB = 1
	}
	relres := e.norm2(r) / normB
	if relres <= opts.Tol {
		res.Converged = true
		res.Residual = relres
		res.X = e.gatherX(x)
		return res, nil
	}

	rhoPrev, alpha, omega := 1.0, 1.0, 1.0

	d, cd := opts.DetectInterval, opts.CheckpointInterval
	save := func(iter int) {
		e.save(iter,
			map[string]*DistVector{"x": x, "p": p},
			map[string]float64{"rhoPrev": rhoPrev, "alpha": alpha, "omega": omega})
	}
	// rollback restores {x, p} and the scalars, then reconstructs
	// r = b − A·x and v = A·M⁻¹p with fresh checksums.
	rollback := func(iter int) (int, bool) {
		scal := map[string]float64{}
		snapIter, ok := e.restore(map[string]*DistVector{"x": x, "p": p}, scal)
		if !ok {
			return iter, false
		}
		rhoPrev, alpha, omega = scal["rhoPrev"], scal["alpha"], scal["omega"]
		e.residualFresh(r, x)
		if e.store.Lossy() {
			// The restored direction and scalars belong to the exact
			// snapshot state; against the reconstructed residual the stale ρ
			// makes the first β = (ρ/ρ')·(α/ω) blow up and permanently
			// poison p. A lossy restore is therefore a BiCGStab restart:
			// α := 0 forces β = 0 at the next iteration, collapsing the
			// direction update to p := r, so the stale {p, v, ρ', ω} never
			// enter the recurrence.
			copyDist(p, r)
			rhoPrev, alpha, omega = 1, 0, 1
		}
		if snapIter > 0 {
			// v = A·M⁻¹·p, needed by the search-direction update.
			if err := e.pco(phat, p); err != nil {
				return iter, false
			}
			e.mvmFresh(v, phat)
		}
		return snapIter, true
	}
	storm := func() (Result, error) {
		res.Residual = relres
		return res, fmt.Errorf("par: ABFT BiCGStab: %w", ErrRollbackStorm)
	}

	i := 0
	for i < opts.MaxIter {
		e.beginIter(i)
		if e.canceled() {
			res.Residual = relres
			return res, e.cancelErr("ABFT BiCGStab")
		}
		if i > 0 && i%d == 0 {
			// v is verified alongside x and r: a huge corruption in v can be
			// scaled below the detection threshold on its way into s (α =
			// ρ/r̂ᵀv divides it away), so the MVM output itself must be
			// checked while the raw inconsistency is still visible.
			if !e.verify(x) || !e.verify(r) || !e.verify(v) {
				e.detect(i, "outer-level: checksum mismatch in {x, r, v}")
				var ok bool
				if i, ok = rollback(i); !ok {
					return storm()
				}
				continue
			}
		}
		if i%cd == 0 {
			// Guard the snapshot: p must verify clean before it becomes
			// the rollback target.
			if i > 0 && !e.verify(p) {
				e.detect(i, "pre-checkpoint: checksum(p) mismatch")
				var ok bool
				if i, ok = rollback(i); !ok {
					return storm()
				}
				continue
			}
			save(i)
		}

		rho := e.dotRaw(rhat, r)
		if breakdownSuspect(rho) {
			e.detect(i, "breakdown suspect: ρ = %v", rho)
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: BiCGStab breakdown at iteration %d: ρ = %v", i, rho)
			}
			continue
		}
		if i == 0 {
			copyDist(p, r)
		} else {
			beta := (rho / rhoPrev) * (alpha / omega)
			// p = r + beta*(p − omega*v)
			e.axpy(p, -omega, v)
			e.xpby(p, r, beta, p)
		}
		if err := e.pco(phat, p); err != nil {
			return res, err
		}
		e.mvm(v, phat)
		if opts.TwoLevel && !e.innerCheck(v, phat) {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		rhatV := e.dotRaw(rhat, v)
		if breakdownSuspect(rhatV) {
			e.detect(i, "breakdown suspect: r̂ᵀv = %v", rhatV)
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: BiCGStab breakdown at iteration %d: r̂ᵀv = %v", i, rhatV)
			}
			continue
		}
		alpha = rho / rhatV
		e.axpbyInto(s, 1, r, -alpha, v)

		if rel := e.norm2(s) / normB; rel <= opts.Tol {
			e.axpy(x, alpha, phat)
			i++
			res.Iterations = i
			relres = rel
			if e.verify(x) && e.verify(s) {
				res.Converged = true
				break
			}
			e.detect(i, "converged intermediate residual failed verification")
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}

		if err := e.pco(shat, s); err != nil {
			return res, err
		}
		e.mvm(t, shat)
		if opts.TwoLevel && !e.innerCheck(t, shat) {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		tt := e.dot(t, t)
		if breakdownSuspect(tt) || tt < 0 {
			e.detect(i, "breakdown suspect: tᵀt = %v", tt)
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: BiCGStab breakdown at iteration %d: tᵀt = %v", i, tt)
			}
			continue
		}
		omega = e.dot(t, s) / tt
		if breakdownSuspect(omega) {
			e.detect(i, "breakdown suspect: ω = %v", omega)
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				return res, fmt.Errorf("par: BiCGStab breakdown at iteration %d: ω = %v", i, omega)
			}
			continue
		}
		e.axpy(x, alpha, phat)
		e.axpy(x, omega, shat)
		e.axpbyInto(r, 1, s, -omega, t)
		rhoPrev = rho
		i++
		res.Iterations = i

		relres = e.norm2(r) / normB
		if relres <= opts.Tol {
			if e.verify(x) && e.verify(r) {
				res.Converged = true
				break
			}
			e.detect(i, "converged residual failed verification")
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
	}

	res.Residual = relres
	res.X = e.gatherX(x)
	if !res.Converged {
		return res, fmt.Errorf("par: ABFT BiCGStab did not converge in %d iterations (relres %.3e)", res.Iterations, relres)
	}
	return res, nil
}
