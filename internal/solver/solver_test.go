package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// system builds A, b with a known solution for residual ground truth.
func system(a *sparse.CSR, seed int64) (b, xTrue []float64) {
	rng := rand.New(rand.NewSource(seed))
	xTrue = make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b = make([]float64, a.Rows)
	a.MulVec(b, xTrue)
	return b, xTrue
}

func checkClose(t *testing.T, got, want []float64, tol float64) {
	t.Helper()
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol*(1+math.Abs(want[i])) {
			t.Fatalf("solution differs at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCGOnLaplacian(t *testing.T) {
	a := sparse.Laplacian2D(12, 12)
	b, xTrue := system(a, 1)
	res, err := CG(a, b, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged")
	}
	checkClose(t, res.X, xTrue, 1e-7)
}

func TestPCGWithEveryPreconditioner(t *testing.T) {
	a := sparse.Laplacian2D(10, 10)
	b, xTrue := system(a, 2)
	builders := map[string]func() (precond.Preconditioner, error){
		"identity": func() (precond.Preconditioner, error) { return precond.Identity(a.Rows), nil },
		"jacobi":   func() (precond.Preconditioner, error) { return precond.Jacobi(a) },
		"ilu0":     func() (precond.Preconditioner, error) { return precond.ILU0(a) },
		"bjacobi":  func() (precond.Preconditioner, error) { return precond.BlockJacobiILU0(a, 5) },
		"ssor":     func() (precond.Preconditioner, error) { return precond.SSOR(a, 1.2) },
	}
	iters := map[string]int{}
	for name, build := range builders {
		m, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := PCG(a, m, b, Options{Tol: 1e-12})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkClose(t, res.X, xTrue, 1e-7)
		iters[name] = res.Iterations
	}
	if iters["ilu0"] >= iters["identity"] {
		t.Errorf("ILU(0) should accelerate CG: %d vs %d iterations", iters["ilu0"], iters["identity"])
	}
}

func TestPBiCGSTABOnUnsymmetric(t *testing.T) {
	a := sparse.ConvectionDiffusion2D(12, 12, 15)
	b, xTrue := system(a, 3)
	m, err := precond.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PBiCGSTAB(a, m, b, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-6)

	plain, err := BiCGSTAB(a, b, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, plain.X, xTrue, 1e-6)
}

func TestJacobiOnDiagDominant(t *testing.T) {
	a := sparse.DiagDominant(200, 4, 4)
	b, xTrue := system(a, 5)
	res, err := Jacobi(a, b, Options{Tol: 1e-12, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-8)
}

func TestJacobiRequiresDiagonal(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	if _, err := Jacobi(c.ToCSR(), []float64{1, 1}, Options{}); err == nil {
		t.Fatalf("expected diagonal error")
	}
}

func TestChebyshevWithExactBounds(t *testing.T) {
	// 1D Laplacian eigenvalues: 2 − 2cos(kπ/(n+1)), known in closed form.
	n := 64
	a := sparse.Tridiag(n, -1, 2, -1)
	b, xTrue := system(a, 6)
	lmin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	lmax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	res, err := Chebyshev(a, precond.Identity(n), b, lmin, lmax, Options{Tol: 1e-10, MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-5)
}

func TestChebyshevBadBounds(t *testing.T) {
	a := sparse.Tridiag(4, -1, 2, -1)
	if _, err := Chebyshev(a, precond.Identity(4), []float64{1, 1, 1, 1}, 2, 1, Options{}); err == nil {
		t.Fatalf("expected bounds error")
	}
	if _, err := Chebyshev(a, precond.Identity(4), []float64{1, 1, 1, 1}, -1, 1, Options{}); err == nil {
		t.Fatalf("expected bounds error")
	}
}

func TestCROnSymmetric(t *testing.T) {
	a := sparse.Laplacian2D(9, 9)
	b, xTrue := system(a, 7)
	res, err := CR(a, b, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-6)
}

func TestSteepestDescent(t *testing.T) {
	a := sparse.Tridiag(30, -1, 3, -1) // well conditioned
	b, xTrue := system(a, 8)
	res, err := SteepestDescent(a, b, Options{Tol: 1e-10, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-6)
}

func TestNotConvergedError(t *testing.T) {
	a := sparse.Laplacian2D(10, 10)
	b, _ := system(a, 9)
	_, err := CG(a, b, Options{Tol: 1e-14, MaxIter: 2})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("want ErrNotConverged, got %v", err)
	}
}

func TestDimensionErrors(t *testing.T) {
	a := sparse.Laplacian2D(4, 4)
	if _, err := CG(a, make([]float64, 3), Options{}); err == nil {
		t.Fatalf("rhs mismatch accepted")
	}
	rect := sparse.NewCOO(3, 4).ToCSR()
	if _, err := CG(rect, make([]float64, 3), Options{}); err == nil {
		t.Fatalf("rectangular matrix accepted")
	}
	if _, err := CG(a, make([]float64, 16), Options{X0: make([]float64, 5)}); err == nil {
		t.Fatalf("x0 mismatch accepted")
	}
}

func TestInitialGuess(t *testing.T) {
	a := sparse.Laplacian2D(8, 8)
	b, xTrue := system(a, 10)
	// Starting at the exact solution converges in 0 iterations.
	res, err := CG(a, b, Options{Tol: 1e-8, X0: xTrue})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || !res.Converged {
		t.Fatalf("exact initial guess: %d iterations", res.Iterations)
	}
}

func TestZeroRHS(t *testing.T) {
	a := sparse.Laplacian2D(5, 5)
	res, err := CG(a, make([]float64, a.Rows), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Norm2(res.X) != 0 {
		t.Fatalf("zero rhs should give zero solution")
	}
}

func TestResidualHistoryMonotoneOnSPD(t *testing.T) {
	a := sparse.Laplacian2D(10, 10)
	b, _ := system(a, 11)
	res, err := CG(a, b, Options{Tol: 1e-10, RecordResiduals: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != res.Iterations {
		t.Fatalf("history length %d vs %d iterations", len(res.History), res.Iterations)
	}
	// CG residuals aren't strictly monotone, but the trend must be strongly
	// decreasing: final < first by many orders.
	if res.History[len(res.History)-1] > 1e-6*res.History[0] {
		t.Fatalf("residual barely decreased: %v -> %v", res.History[0], res.History[len(res.History)-1])
	}
}

// Property: for random SPD systems, CG's solution satisfies the system.
func TestCGSolvesRandomSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := sparse.SPDRandom(60, 3, seed)
		b, _ := system(a, seed+1)
		res, err := CG(a, b, Options{Tol: 1e-10, MaxIter: 10000})
		if err != nil {
			return false
		}
		r := make([]float64, a.Rows)
		a.MulVec(r, res.X)
		vec.Sub(r, b, r)
		return vec.Norm2(r)/math.Max(vec.Norm2(b), 1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: PBiCGSTAB solves random diagonally dominant unsymmetric systems.
func TestBiCGSTABSolvesRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := sparse.DiagDominant(60, 4, seed)
		b, _ := system(a, seed+2)
		res, err := BiCGSTAB(a, b, Options{Tol: 1e-10, MaxIter: 10000})
		if err != nil {
			return false
		}
		r := make([]float64, a.Rows)
		a.MulVec(r, res.X)
		vec.Sub(r, b, r)
		return vec.Norm2(r)/math.Max(vec.Norm2(b), 1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPCGCircuit(b *testing.B) {
	a := sparse.CircuitLike(10000, 1)
	m, err := precond.BlockJacobiILU0(a, 16)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, a.Rows)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PCG(a, m, rhs, Options{Tol: 1e-8, MaxIter: 100000}); err != nil {
			b.Fatal(err)
		}
	}
}
