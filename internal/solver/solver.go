// Package solver implements the unprotected iterative methods the paper
// targets (Fig. 1 and §6): Jacobi, Chebyshev, CG, preconditioned CG,
// BiCGSTAB, preconditioned BiCGSTAB, conjugate residual and steepest
// descent. These serve both as the fault-free performance baselines for the
// overhead experiments and as the loop skeletons the ABFT schemes in
// internal/core instrument.
package solver

import (
	"errors"
	"fmt"

	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// ErrNotConverged is wrapped by solvers that exhaust MaxIter without
// reaching the requested tolerance.
var ErrNotConverged = errors.New("solver: did not converge")

// Options configures an iterative solve.
type Options struct {
	// Tol is the relative residual tolerance ‖r‖₂/‖b‖₂; 0 means 1e-8.
	Tol float64
	// MaxIter caps iterations; 0 means 10·n.
	MaxIter int
	// X0 is the initial guess; nil means the zero vector.
	X0 []float64
	// RecordResiduals turns on per-iteration residual history capture.
	RecordResiduals bool
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-8
	}
	return o.Tol
}

func (o Options) maxIter(n int) int {
	if o.MaxIter <= 0 {
		return 10 * n
	}
	return o.MaxIter
}

// Result reports the outcome of an iterative solve.
type Result struct {
	// X is the computed solution.
	X []float64
	// Iterations is the number of iterations performed.
	Iterations int
	// Converged reports whether the tolerance was met.
	Converged bool
	// Residual is the final relative residual ‖b−Ax‖₂/‖b‖₂ as tracked by
	// the recurrence (not recomputed).
	Residual float64
	// History holds the relative residual after each iteration when
	// Options.RecordResiduals is set.
	History []float64
}

func startVector(n int, x0 []float64) ([]float64, error) {
	x := make([]float64, n)
	if x0 != nil {
		if len(x0) != n {
			return nil, fmt.Errorf("solver: initial guess length %d, want %d", len(x0), n)
		}
		copy(x, x0)
	}
	return x, nil
}

func checkSystem(a *sparse.CSR, b []float64) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("solver: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return fmt.Errorf("solver: rhs length %d, want %d", len(b), a.Rows)
	}
	return nil
}

// CG solves the SPD system A·x = b with the (unpreconditioned) conjugate
// gradient method.
func CG(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	return PCG(a, precond.Identity(a.Rows), b, opts)
}

// PCG solves the SPD system A·x = b with the preconditioned conjugate
// gradient method, following the loop of the paper's Fig. 1 exactly: one
// MVM, one PCO, three vector updates and two dot products per iteration.
func PCG(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	if err := checkSystem(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	x, err := startVector(n, opts.X0)
	if err != nil {
		return Result{}, err
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r) // r = b − A·x
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	res := Result{X: x}
	relres := vec.Norm2(r) / normB
	if relres <= tol {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	if err := m.Apply(z, r); err != nil {
		return res, err
	}
	vec.Copy(p, z)
	rho := vec.Dot(r, z)
	for i := 0; i < maxIter; i++ {
		a.MulVec(q, p)
		pq := vec.Dot(p, q)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if pq == 0 {
			return res, fmt.Errorf("solver: PCG breakdown (pᵀAp = 0) at iteration %d", i)
		}
		alpha := rho / pq
		vec.Axpy(x, alpha, p)
		vec.Axpy(r, -alpha, q)
		res.Iterations = i + 1
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tol {
			res.Converged = true
			break
		}
		if err := m.Apply(z, r); err != nil {
			return res, err
		}
		rhoNew := vec.Dot(r, z)
		beta := rhoNew / rho
		vec.Xpby(p, z, beta, p)
		rho = rhoNew
	}
	res.Residual = relres
	if !res.Converged {
		return res, fmt.Errorf("%w: PCG after %d iterations (relres %.3e)", ErrNotConverged, res.Iterations, relres)
	}
	return res, nil
}

// BiCGSTAB solves the general system A·x = b with the unpreconditioned
// biconjugate gradient stabilized method.
func BiCGSTAB(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	return PBiCGSTAB(a, precond.Identity(a.Rows), b, opts)
}

// PBiCGSTAB solves A·x = b with the preconditioned BiCGSTAB method of van
// der Vorst (two MVMs and two PCOs per iteration, the cost structure §6.3
// highlights).
func PBiCGSTAB(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	if err := checkSystem(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	x, err := startVector(n, opts.X0)
	if err != nil {
		return Result{}, err
	}
	r := make([]float64, n)
	rhat := make([]float64, n)
	p := make([]float64, n)
	v := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	phat := make([]float64, n)
	shat := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r)
	vec.Copy(rhat, r)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	res := Result{X: x}
	relres := vec.Norm2(r) / normB
	if relres <= tol {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	rhoPrev, alpha, omega := 1.0, 1.0, 1.0
	for i := 0; i < maxIter; i++ {
		rho := vec.Dot(rhat, r)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rho == 0 {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown (ρ = 0) at iteration %d", i)
		}
		if i == 0 {
			vec.Copy(p, r)
		} else {
			beta := (rho / rhoPrev) * (alpha / omega)
			// p = r + beta*(p − omega*v)
			vec.Axpy(p, -omega, v)
			vec.Xpby(p, r, beta, p)
		}
		if err := m.Apply(phat, p); err != nil {
			return res, err
		}
		a.MulVec(v, phat)
		rhatV := vec.Dot(rhat, v)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rhatV == 0 {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown (r̂ᵀv = 0) at iteration %d", i)
		}
		alpha = rho / rhatV
		// s = r − alpha*v
		vec.Axpby(s, 1, r, -alpha, v)
		res.Iterations = i + 1
		if rel := vec.Norm2(s) / normB; rel <= tol {
			vec.Axpy(x, alpha, phat)
			relres = rel
			if opts.RecordResiduals {
				res.History = append(res.History, relres)
			}
			res.Converged = true
			break
		}
		if err := m.Apply(shat, s); err != nil {
			return res, err
		}
		a.MulVec(t, shat)
		tt := vec.Dot(t, t)
		if tt <= 0 {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown (tᵀt = 0) at iteration %d", i)
		}
		omega = vec.Dot(t, s) / tt
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if omega == 0 {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown (ω = 0) at iteration %d", i)
		}
		vec.Axpy(x, alpha, phat)
		vec.Axpy(x, omega, shat)
		// r = s − omega*t
		vec.Axpby(r, 1, s, -omega, t)
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tol {
			res.Converged = true
			break
		}
		rhoPrev = rho
	}
	res.Residual = relres
	if !res.Converged {
		return res, fmt.Errorf("%w: PBiCGSTAB after %d iterations (relres %.3e)", ErrNotConverged, res.Iterations, relres)
	}
	return res, nil
}
