package solver

import (
	"fmt"
	"math"

	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// GMRES solves the general system A·x = b with restarted GMRES(m) and an
// optional right preconditioner: it builds an Arnoldi basis of the Krylov
// space of A·M⁻¹, minimizing the residual over it via Givens rotations.
// GMRES is on the paper's list of protectable Krylov methods (§1); its
// inner loop is exactly one MVM + one PCO + a sequence of VLOs per step,
// so the new-sum checksum updates apply verbatim.
func GMRES(a *sparse.CSR, m precond.Preconditioner, b []float64, restart int, opts Options) (Result, error) {
	if err := checkSystem(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	if restart < 1 {
		restart = 30
	}
	if restart > n {
		restart = n
	}
	if m == nil {
		m = precond.Identity(n)
	}
	x, err := startVector(n, opts.X0)
	if err != nil {
		return Result{}, err
	}
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	// Arnoldi basis and Hessenberg matrix (column-major, restart+1 rows).
	v := make([][]float64, restart+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, restart+1)
	for i := range h {
		h[i] = make([]float64, restart)
	}
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	g := make([]float64, restart+1)
	w := make([]float64, n)
	zhat := make([]float64, n)

	res := Result{X: x}
	var relres float64
	total := 0

	for total < maxIter {
		// r0 = b − A·x.
		a.MulVec(w, x)
		vec.Sub(w, b, w)
		beta := vec.Norm2(w)
		relres = beta / normB
		if opts.RecordResiduals && total > 0 {
			res.History = append(res.History, relres)
		}
		if relres <= tol {
			res.Converged = true
			break
		}
		vec.Scale(v[0], 1/beta, w)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < restart && total < maxIter; k++ {
			total++
			// w = A·M⁻¹·v_k (right preconditioning keeps the residual of
			// the original system observable).
			if err := m.Apply(zhat, v[k]); err != nil {
				return res, err
			}
			a.MulVec(w, zhat)
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				h[i][k] = vec.Dot(w, v[i])
				vec.Axpy(w, -h[i][k], v[i])
			}
			h[k+1][k] = vec.Norm2(w)
			if h[k+1][k] > 0 {
				vec.Scale(v[k+1], 1/h[k+1][k], w)
			}
			// Apply stored Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			// New rotation annihilating h[k+1][k].
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom <= 0 {
				return res, fmt.Errorf("solver: GMRES breakdown at step %d", total)
			}
			cs[k] = h[k][k] / denom
			sn[k] = h[k+1][k] / denom
			h[k][k] = denom
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] *= cs[k]

			relres = math.Abs(g[k+1]) / normB
			res.Iterations = total
			if opts.RecordResiduals {
				res.History = append(res.History, relres)
			}
			if relres <= tol {
				k++
				break
			}
		}

		// Solve the k×k triangular system H y = g.
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			y[i] = s / h[i][i]
		}
		// x += M⁻¹·(V·y).
		vec.Zero(w)
		for j := 0; j < k; j++ {
			vec.Axpy(w, y[j], v[j])
		}
		if err := m.Apply(zhat, w); err != nil {
			return res, err
		}
		vec.Add(x, x, zhat)

		if relres <= tol {
			// Confirm with the true residual before declaring victory
			// (restarted GMRES's g-based estimate can drift).
			a.MulVec(w, x)
			vec.Sub(w, b, w)
			relres = vec.Norm2(w) / normB
			if relres <= tol*10 {
				res.Converged = true
				break
			}
		}
	}

	res.Residual = relres
	if !res.Converged {
		return res, fmt.Errorf("%w: GMRES(%d) after %d iterations (relres %.3e)", ErrNotConverged, restart, total, relres)
	}
	return res, nil
}

// MINRES solves the symmetric (possibly indefinite) system A·x = b with the
// minimum-residual method, using the standard Lanczos + Givens recurrence.
func MINRES(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	if err := checkSystem(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	x, err := startVector(n, opts.X0)
	if err != nil {
		return Result{}, err
	}
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	r := make([]float64, n)
	a.MulVec(r, x)
	vec.Sub(r, b, r)

	res := Result{X: x}
	beta := vec.Norm2(r)
	relres := beta / normB
	if relres <= tol {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}

	vPrev := make([]float64, n)
	v := make([]float64, n)
	vec.Scale(v, 1/beta, r)
	w0 := make([]float64, n)
	w1 := make([]float64, n)
	av := make([]float64, n)

	var cPrev, sPrev, c2, s2 float64 = 1, 0, 1, 0
	eta := beta

	for i := 0; i < maxIter; i++ {
		a.MulVec(av, v)
		alpha := vec.Dot(v, av)
		// Lanczos: av := av − alpha·v − beta·vPrev.
		vec.Axpy(av, -alpha, v)
		vec.Axpy(av, -beta, vPrev)
		betaNew := vec.Norm2(av)

		// Two previous rotations applied to the new column (alpha, beta).
		delta := c2*alpha - cPrev*s2*beta
		rho2 := s2*alpha + cPrev*c2*beta
		rho3 := sPrev * beta
		// New rotation.
		rho1 := math.Hypot(delta, betaNew)
		if rho1 <= 0 {
			return res, fmt.Errorf("solver: MINRES breakdown at iteration %d", i)
		}
		c := delta / rho1
		s := betaNew / rho1

		// Update direction w = (v − rho2·w1 − rho3·w0)/rho1 and solution.
		wNew := make([]float64, n)
		copy(wNew, v)
		vec.Axpy(wNew, -rho2, w1)
		vec.Axpy(wNew, -rho3, w0)
		vec.Scale(wNew, 1/rho1, wNew)
		vec.Axpy(x, c*eta, wNew)
		eta = -s * eta

		copy(w0, w1)
		copy(w1, wNew)
		copy(vPrev, v)
		if betaNew > 0 {
			vec.Scale(v, 1/betaNew, av)
		}
		cPrev, sPrev = c2, s2
		c2, s2 = c, s
		beta = betaNew

		res.Iterations = i + 1
		relres = math.Abs(eta) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tol {
			res.Converged = true
			break
		}
	}

	res.Residual = relres
	if !res.Converged {
		return res, fmt.Errorf("%w: MINRES after %d iterations (relres %.3e)", ErrNotConverged, res.Iterations, relres)
	}
	return res, nil
}
