package solver

import (
	"fmt"

	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// Jacobi solves A·x = b with the stationary Jacobi iteration
// x ← x + D⁻¹(b − A·x). It converges for strictly diagonally dominant
// matrices and is the first of the paper's Fig. 1 representative methods —
// one with no orthogonality structure for the online-orthogonality baseline
// to exploit.
func Jacobi(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	if err := checkSystem(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	x, err := startVector(n, opts.X0)
	if err != nil {
		return Result{}, err
	}
	diag := a.Diag(nil)
	for i, d := range diag {
		//lint:ignore floatcmp exact-zero pivot is the standard singularity convention (cf. LAPACK)
		if d == 0 {
			return Result{}, fmt.Errorf("solver: Jacobi requires nonzero diagonal (row %d)", i)
		}
	}
	r := make([]float64, n)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	res := Result{X: x}
	var relres float64
	for i := 0; i < maxIter; i++ {
		a.MulVec(r, x)
		vec.Sub(r, b, r) // r = b − A·x
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tol {
			res.Converged = true
			break
		}
		for j := range x {
			x[j] += r[j] / diag[j]
		}
		res.Iterations = i + 1
	}
	res.Residual = relres
	if !res.Converged {
		return res, fmt.Errorf("%w: Jacobi after %d iterations (relres %.3e)", ErrNotConverged, res.Iterations, relres)
	}
	return res, nil
}

// Chebyshev solves the SPD system A·x = b with the preconditioned Chebyshev
// semi-iteration given bounds [lmin, lmax] on the spectrum of M⁻¹A. It uses
// no inner products at all, the property that makes it attractive at scale
// and — like Jacobi — puts it outside the reach of orthogonality-based
// error detection (§2).
func Chebyshev(a *sparse.CSR, m precond.Preconditioner, b []float64, lmin, lmax float64, opts Options) (Result, error) {
	if err := checkSystem(a, b); err != nil {
		return Result{}, err
	}
	if lmin <= 0 || lmax <= lmin {
		return Result{}, fmt.Errorf("solver: Chebyshev needs 0 < lmin < lmax, got [%g, %g]", lmin, lmax)
	}
	n := a.Rows
	x, err := startVector(n, opts.X0)
	if err != nil {
		return Result{}, err
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	var alpha, beta float64

	res := Result{X: x}
	relres := vec.Norm2(r) / normB
	if relres <= tol {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	for i := 0; i < maxIter; i++ {
		if err := m.Apply(z, r); err != nil {
			return res, err
		}
		if i == 0 {
			vec.Copy(p, z)
			alpha = 1 / theta
		} else {
			beta = (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			vec.Xpby(p, z, beta, p)
		}
		vec.Axpy(x, alpha, p)
		a.MulVec(q, p)
		vec.Axpy(r, -alpha, q)
		res.Iterations = i + 1
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tol {
			res.Converged = true
			break
		}
	}
	res.Residual = relres
	if !res.Converged {
		return res, fmt.Errorf("%w: Chebyshev after %d iterations (relres %.3e)", ErrNotConverged, res.Iterations, relres)
	}
	return res, nil
}

// SteepestDescent solves the SPD system A·x = b with the gradient descent
// iteration α = rᵀr/rᵀAr; mainly a reference method for tests.
func SteepestDescent(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	if err := checkSystem(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	x, err := startVector(n, opts.X0)
	if err != nil {
		return Result{}, err
	}
	r := make([]float64, n)
	ar := make([]float64, n)
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	res := Result{X: x}
	relres := vec.Norm2(r) / normB
	if relres <= tol {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	for i := 0; i < maxIter; i++ {
		a.MulVec(ar, r)
		rr := vec.Dot(r, r)
		rar := vec.Dot(r, ar)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rar == 0 {
			return res, fmt.Errorf("solver: steepest descent breakdown at iteration %d", i)
		}
		alpha := rr / rar
		vec.Axpy(x, alpha, r)
		vec.Axpy(r, -alpha, ar)
		res.Iterations = i + 1
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tol {
			res.Converged = true
			break
		}
	}
	res.Residual = relres
	if !res.Converged {
		return res, fmt.Errorf("%w: steepest descent after %d iterations (relres %.3e)", ErrNotConverged, res.Iterations, relres)
	}
	return res, nil
}

// CR solves the symmetric system A·x = b with the conjugate residual
// method, one of the Krylov solvers the paper lists as protectable (§1).
func CR(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	if err := checkSystem(a, b); err != nil {
		return Result{}, err
	}
	n := a.Rows
	x, err := startVector(n, opts.X0)
	if err != nil {
		return Result{}, err
	}
	r := make([]float64, n)
	p := make([]float64, n)
	ar := make([]float64, n)
	ap := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r)
	vec.Copy(p, r)
	a.MulVec(ar, r)
	vec.Copy(ap, ar)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tol := opts.tol()
	maxIter := opts.maxIter(n)

	res := Result{X: x}
	relres := vec.Norm2(r) / normB
	if relres <= tol {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	rAr := vec.Dot(r, ar)
	for i := 0; i < maxIter; i++ {
		apap := vec.Dot(ap, ap)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if apap == 0 || rAr == 0 {
			return res, fmt.Errorf("solver: CR breakdown at iteration %d", i)
		}
		alpha := rAr / apap
		vec.Axpy(x, alpha, p)
		vec.Axpy(r, -alpha, ap)
		res.Iterations = i + 1
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tol {
			res.Converged = true
			break
		}
		a.MulVec(ar, r)
		rArNew := vec.Dot(r, ar)
		beta := rArNew / rAr
		vec.Xpby(p, r, beta, p)
		vec.Xpby(ap, ar, beta, ap)
		rAr = rArNew
	}
	res.Residual = relres
	if !res.Converged {
		return res, fmt.Errorf("%w: CR after %d iterations (relres %.3e)", ErrNotConverged, res.Iterations, relres)
	}
	return res, nil
}
