package solver

import (
	"math"
	"testing"

	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

func TestGMRESOnUnsymmetric(t *testing.T) {
	a := sparse.ConvectionDiffusion2D(12, 12, 25)
	b, xTrue := system(a, 21)
	res, err := GMRES(a, nil, b, 30, Options{Tol: 1e-10, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-6)
}

func TestGMRESWithPreconditioner(t *testing.T) {
	a := sparse.ConvectionDiffusion2D(14, 14, 25)
	b, xTrue := system(a, 22)
	m, err := precond.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := GMRES(a, nil, b, 20, Options{Tol: 1e-10, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := GMRES(a, m, b, 20, Options{Tol: 1e-10, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, pre.X, xTrue, 1e-6)
	if pre.Iterations >= plain.Iterations {
		t.Errorf("ILU(0)-preconditioned GMRES should need fewer steps: %d vs %d",
			pre.Iterations, plain.Iterations)
	}
}

func TestGMRESRestartStillConverges(t *testing.T) {
	a := sparse.ConvectionDiffusion2D(10, 10, 10)
	b, xTrue := system(a, 23)
	// A very short restart forces several outer cycles.
	res, err := GMRES(a, nil, b, 5, Options{Tol: 1e-9, MaxIter: 50000})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-5)
}

func TestGMRESMatchesCGOnSPD(t *testing.T) {
	a := sparse.Laplacian2D(9, 9)
	b, xTrue := system(a, 24)
	res, err := GMRES(a, nil, b, 81, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-7)
}

func TestGMRESDimensionErrors(t *testing.T) {
	rect := sparse.NewCOO(2, 3).ToCSR()
	if _, err := GMRES(rect, nil, make([]float64, 2), 5, Options{}); err == nil {
		t.Fatalf("rectangular accepted")
	}
}

func TestMINRESOnSPD(t *testing.T) {
	a := sparse.Laplacian2D(10, 10)
	b, xTrue := system(a, 25)
	res, err := MINRES(a, b, Options{Tol: 1e-11, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	checkClose(t, res.X, xTrue, 1e-5)
}

func TestMINRESOnIndefinite(t *testing.T) {
	// Shifted Laplacian: symmetric indefinite — CG fails here, MINRES must
	// not.
	n := 64
	a := sparse.Tridiag(n, -1, 2, -1).Clone()
	for i := 0; i < n; i++ {
		// subtract a shift inside the spectrum
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				a.Val[k] -= 1.0
			}
		}
	}
	b, xTrue := system(a, 26)
	res, err := MINRES(a, b, Options{Tol: 1e-10, MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, n)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	if rel := vec.Norm2(r) / vec.Norm2(b); rel > 1e-8 {
		t.Fatalf("indefinite MINRES residual %.3e", rel)
	}
	_ = xTrue
}

func TestMINRESZeroRHS(t *testing.T) {
	a := sparse.Laplacian2D(5, 5)
	res, err := MINRES(a, make([]float64, a.Rows), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || vec.Norm2(res.X) != 0 {
		t.Fatalf("zero rhs mishandled")
	}
}

func TestGMRESResidualMatchesReported(t *testing.T) {
	a := sparse.ConvectionDiffusion2D(10, 10, 20)
	b, _ := system(a, 27)
	res, err := GMRES(a, nil, b, 25, Options{Tol: 1e-9, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, a.Rows)
	a.MulVec(r, res.X)
	vec.Sub(r, b, r)
	trueRel := vec.Norm2(r) / vec.Norm2(b)
	if math.Abs(math.Log10(trueRel+1e-300)-math.Log10(res.Residual+1e-300)) > 2 {
		t.Fatalf("reported residual %.3e far from true %.3e", res.Residual, trueRel)
	}
}
