package kernel

import (
	"sort"

	"newsum/internal/sparse"
)

// MulVec computes y := A·x, bitwise-equal to a.MulVec: each output row is
// an independent serial accumulation, so splitting rows across workers
// cannot change a single bit. Rows are partitioned by nonzero count, not
// row count — on matrices with skewed row densities an even row split
// leaves most workers idle behind the densest chunk.
//
//hot:loop SpMV kernel on the protected solve path
func (p *Pool) MulVec(a *sparse.CSR, y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("kernel: dimension mismatch in MulVec")
	}
	if p == nil || a.NNZ() < minParallel {
		a.MulVec(y, x)
		return
	}
	p.nnzBounds(a)
	p.op = op{kind: opMulVec, a: a, dst: y, x: x}
	p.launch()
}

// nnzBounds fills p.bounds with workers+1 row boundaries splitting a's
// rows into contiguous ranges of near-equal nonzero count. RowPtr is
// sorted, so each boundary is one binary search — O(workers·log rows)
// per call, negligible next to the O(nnz) product, which is why the
// bounds are recomputed per call instead of cached against a matrix
// identity. execPart reads the boundaries from p.bounds.
//
//hot:loop SpMV partitioner on the protected solve path
func (p *Pool) nnzBounds(a *sparse.CSR) []int {
	if cap(p.bounds) < p.workers+1 {
		p.bounds = make([]int, p.workers+1)
	}
	b := p.bounds[:p.workers+1]
	b[0] = 0
	nnz := a.NNZ()
	for i := 1; i < p.workers; i++ {
		j := sort.SearchInts(a.RowPtr, nnz/p.workers*i)
		if j < b[i-1] {
			j = b[i-1]
		}
		if j > a.Rows {
			j = a.Rows
		}
		b[i] = j
	}
	b[p.workers] = a.Rows
	return b
}
