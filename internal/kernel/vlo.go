package kernel

import (
	"newsum/internal/checksum"
	"newsum/internal/vec"
)

// Element-wise VLO kernels. Outputs are disjoint per element, so any
// partition reproduces the serial result bitwise. The *VLO variants fuse
// the O(#weights) Eq. (3) checksum+η update onto the parallel sweep —
// one call site updates data and carried checksums together, the pairing
// the engine's instrumented operations are built on.

// Axpy computes y := y + alpha·x, bitwise-equal to vec.Axpy.
func (p *Pool) Axpy(y []float64, alpha float64, x []float64) {
	if len(y) != len(x) {
		panic("kernel: length mismatch in Axpy")
	}
	if p == nil || len(y) < minParallel {
		vec.Axpy(y, alpha, x)
		return
	}
	p.runRange(len(y), func(lo, hi int) {
		yy, xx := y[lo:hi], x[lo:hi]
		for i, v := range xx {
			yy[i] += alpha * v
		}
	})
}

// Axpby computes dst := alpha·x + beta·y, bitwise-equal to vec.Axpby.
func (p *Pool) Axpby(dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("kernel: length mismatch in Axpby")
	}
	if p == nil || len(dst) < minParallel {
		vec.Axpby(dst, alpha, x, beta, y)
		return
	}
	p.runRange(len(dst), func(lo, hi int) {
		dd, xx, yy := dst[lo:hi], x[lo:hi], y[lo:hi]
		for i := range dd {
			dd[i] = alpha*xx[i] + beta*yy[i]
		}
	})
}

// Xpby computes dst := x + beta·y, bitwise-equal to vec.Xpby.
func (p *Pool) Xpby(dst, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("kernel: length mismatch in Xpby")
	}
	if p == nil || len(dst) < minParallel {
		vec.Xpby(dst, x, beta, y)
		return
	}
	p.runRange(len(dst), func(lo, hi int) {
		dd, xx, yy := dst[lo:hi], x[lo:hi], y[lo:hi]
		for i := range dd {
			dd[i] = xx[i] + beta*yy[i]
		}
	})
}

// Scale computes dst := alpha·u, bitwise-equal to vec.Scale.
func (p *Pool) Scale(dst []float64, alpha float64, u []float64) {
	if len(dst) != len(u) {
		panic("kernel: length mismatch in Scale")
	}
	if p == nil || len(dst) < minParallel {
		vec.Scale(dst, alpha, u)
		return
	}
	p.runRange(len(dst), func(lo, hi int) {
		dd, uu := dst[lo:hi], u[lo:hi]
		for i, v := range uu {
			dd[i] = alpha * v
		}
	})
}

// AxpyVLO fuses the parallel axpy with the Eq. (3) in-place checksum+η
// update on (sy, etaY).
func (p *Pool) AxpyVLO(y []float64, alpha float64, x []float64, sy, etaY, sx, etaX []float64) {
	p.Axpy(y, alpha, x)
	checksum.UpdateVLOAxpyBound(sy, etaY, alpha, sx, etaX)
}

// AxpbyVLO fuses the parallel axpby with the Eq. (3) checksum+η update.
func (p *Pool) AxpbyVLO(dst []float64, alpha float64, x []float64, beta float64, y []float64,
	sDst, etaDst, sx, etaX, sy, etaY []float64) {
	p.Axpby(dst, alpha, x, beta, y)
	checksum.UpdateVLOAxpbyBound(sDst, etaDst, alpha, sx, etaX, beta, sy, etaY)
}

// XpbyVLO fuses the parallel xpby with the Eq. (3) checksum+η update
// (alpha = 1 case).
func (p *Pool) XpbyVLO(dst, x []float64, beta float64, y []float64,
	sDst, etaDst, sx, etaX, sy, etaY []float64) {
	p.Xpby(dst, x, beta, y)
	checksum.UpdateVLOAxpbyBound(sDst, etaDst, 1, sx, etaX, beta, sy, etaY)
}

// UpdateMVMBound is the parallel form of (*checksum.Matrix).UpdateMVMBound:
// the O(n) dense row reductions run on the pool (bitwise-equal to
// vec.DotAbs by the reduction contract) and feed the serial Eq. (2) fold
// via UpdateMVMBoundFrom.
func (p *Pool) UpdateMVMBound(m *checksum.Matrix, dst, etaDst, u, su, etaSrc []float64) {
	if p == nil {
		m.UpdateMVMBound(dst, etaDst, u, su, etaSrc)
		return
	}
	sums, abss := p.growW(len(m.Weights))
	for k, row := range m.Rows {
		sums[k], abss[k] = p.DotAbs(row, u)
	}
	m.UpdateMVMBoundFrom(dst, etaDst, sums, abss, su, etaSrc)
}

// UpdatePCOBound is the parallel form of (*checksum.Matrix).UpdatePCOBound,
// the Eq. (4) preconditioner-solve update.
func (p *Pool) UpdatePCOBound(m *checksum.Matrix, dst, etaDst, w, su, etaSrc []float64) {
	if p == nil {
		m.UpdatePCOBound(dst, etaDst, w, su, etaSrc)
		return
	}
	sums, abss := p.growW(len(m.Weights))
	for k, row := range m.Rows {
		sums[k], abss[k] = p.DotAbs(row, w)
	}
	m.UpdatePCOBoundFrom(dst, etaDst, sums, abss, su, etaSrc)
}
