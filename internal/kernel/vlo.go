package kernel

import (
	"newsum/internal/checksum"
	"newsum/internal/vec"
)

// Element-wise VLO kernels. Outputs are disjoint per element, so any
// partition reproduces the serial result bitwise. The *VLO variants fuse
// the O(#weights) Eq. (3) checksum+η update onto the parallel sweep —
// one call site updates data and carried checksums together, the pairing
// the engine's instrumented operations are built on.

// Axpy computes y := y + alpha·x, bitwise-equal to vec.Axpy.
//
//hot:loop VLO kernel on the protected solve path
func (p *Pool) Axpy(y []float64, alpha float64, x []float64) {
	if len(y) != len(x) {
		panic("kernel: length mismatch in Axpy")
	}
	if p == nil || len(y) < minParallel {
		vec.Axpy(y, alpha, x)
		return
	}
	p.op = op{kind: opAxpy, n: len(y), dst: y, alpha: alpha, x: x}
	p.launch()
}

// Axpby computes dst := alpha·x + beta·y, bitwise-equal to vec.Axpby.
//
//hot:loop VLO kernel on the protected solve path
func (p *Pool) Axpby(dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("kernel: length mismatch in Axpby")
	}
	if p == nil || len(dst) < minParallel {
		vec.Axpby(dst, alpha, x, beta, y)
		return
	}
	p.op = op{kind: opAxpby, n: len(dst), dst: dst, alpha: alpha, x: x, beta: beta, y: y}
	p.launch()
}

// Xpby computes dst := x + beta·y, bitwise-equal to vec.Xpby.
//
//hot:loop VLO kernel on the protected solve path
func (p *Pool) Xpby(dst, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("kernel: length mismatch in Xpby")
	}
	if p == nil || len(dst) < minParallel {
		vec.Xpby(dst, x, beta, y)
		return
	}
	p.op = op{kind: opXpby, n: len(dst), dst: dst, x: x, beta: beta, y: y}
	p.launch()
}

// Scale computes dst := alpha·u, bitwise-equal to vec.Scale.
//
//hot:loop VLO kernel on the protected solve path
func (p *Pool) Scale(dst []float64, alpha float64, u []float64) {
	if len(dst) != len(u) {
		panic("kernel: length mismatch in Scale")
	}
	if p == nil || len(dst) < minParallel {
		vec.Scale(dst, alpha, u)
		return
	}
	p.op = op{kind: opScale, n: len(dst), dst: dst, alpha: alpha, x: u}
	p.launch()
}

// AxpyVLO fuses the parallel axpy with the Eq. (3) in-place checksum+η
// update on (sy, etaY).
//
//hot:loop fused VLO+checksum kernel on the protected solve path
func (p *Pool) AxpyVLO(y []float64, alpha float64, x []float64, sy, etaY, sx, etaX []float64) {
	p.Axpy(y, alpha, x)
	checksum.UpdateVLOAxpyBound(sy, etaY, alpha, sx, etaX)
}

// AxpbyVLO fuses the parallel axpby with the Eq. (3) checksum+η update.
//
//hot:loop fused VLO+checksum kernel on the protected solve path
func (p *Pool) AxpbyVLO(dst []float64, alpha float64, x []float64, beta float64, y []float64,
	sDst, etaDst, sx, etaX, sy, etaY []float64) {
	p.Axpby(dst, alpha, x, beta, y)
	checksum.UpdateVLOAxpbyBound(sDst, etaDst, alpha, sx, etaX, beta, sy, etaY)
}

// XpbyVLO fuses the parallel xpby with the Eq. (3) checksum+η update
// (alpha = 1 case).
//
//hot:loop fused VLO+checksum kernel on the protected solve path
func (p *Pool) XpbyVLO(dst, x []float64, beta float64, y []float64,
	sDst, etaDst, sx, etaX, sy, etaY []float64) {
	p.Xpby(dst, x, beta, y)
	checksum.UpdateVLOAxpbyBound(sDst, etaDst, 1, sx, etaX, beta, sy, etaY)
}

// UpdateMVMBound is the parallel form of (*checksum.Matrix).UpdateMVMBound:
// the O(n) dense row reductions run on the pool (bitwise-equal to
// vec.DotAbs by the reduction contract) and feed the serial Eq. (2) fold
// via UpdateMVMBoundFrom.
//
//hot:loop Eq. (2) checksum-update kernel on the protected solve path
func (p *Pool) UpdateMVMBound(m *checksum.Matrix, dst, etaDst, u, su, etaSrc []float64) {
	if p == nil {
		m.UpdateMVMBound(dst, etaDst, u, su, etaSrc)
		return
	}
	sums, abss := p.growW(len(m.Weights))
	for k, row := range m.Rows {
		sums[k], abss[k] = p.DotAbs(row, u)
	}
	m.UpdateMVMBoundFrom(dst, etaDst, sums, abss, su, etaSrc)
}

// UpdatePCOBound is the parallel form of (*checksum.Matrix).UpdatePCOBound,
// the Eq. (4) preconditioner-solve update.
//
//hot:loop Eq. (4) checksum-update kernel on the protected solve path
func (p *Pool) UpdatePCOBound(m *checksum.Matrix, dst, etaDst, w, su, etaSrc []float64) {
	if p == nil {
		m.UpdatePCOBound(dst, etaDst, w, su, etaSrc)
		return
	}
	sums, abss := p.growW(len(m.Weights))
	for k, row := range m.Rows {
		sums[k], abss[k] = p.DotAbs(row, w)
	}
	m.UpdatePCOBoundFrom(dst, etaDst, sums, abss, su, etaSrc)
}
