package kernel

import (
	"math"
	"math/rand"
	"testing"

	"newsum/internal/checksum"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// workerCounts are the pool sizes every determinism test sweeps; 1 maps
// to the nil (serial) pool.
var workerCounts = []int{1, 2, 4}

func poolFor(t *testing.T, workers int) *Pool {
	t.Helper()
	p := NewPool(workers)
	t.Cleanup(p.Close)
	return p
}

func randVec(rng *rand.Rand, n int) []float64 {
	u := make([]float64, n)
	for i := range u {
		// Mixed magnitudes so accumulation order would show up instantly
		// if the tree ever depended on the partition.
		u[i] = (rng.Float64() - 0.5) * math.Exp2(float64(rng.Intn(40)-20))
	}
	return u
}

func bitEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestReductionsBitwiseAcrossWorkers is the determinism contract test:
// every reduction, at sizes straddling minParallel and the block
// boundary, is bitwise-identical to the serial vec result for worker
// counts 1/2/4 and across repeated runs on the same pool.
func TestReductionsBitwiseAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 127, 128, 129, 4095, 4096, 100_000}
	for _, workers := range workerCounts {
		p := poolFor(t, workers)
		for _, n := range sizes {
			u, v := randVec(rng, n), randVec(rng, n)
			wfn := checksum.Linear.At
			wantDot := vec.Dot(u, v)
			wantSum, wantAbs := vec.DotAbs(u, v)
			wantS := vec.Sum(u)
			wantW := vec.WeightedSum(u, wfn)
			wantWS, wantWA := vec.WeightedSumAbs(u, wfn)
			wantN := vec.Norm2(u)
			for run := 0; run < 3; run++ {
				if got := p.Dot(u, v); !bitEq(got, wantDot) {
					t.Fatalf("workers=%d n=%d run=%d: Dot = %x, serial %x", workers, n, run, got, wantDot)
				}
				gs, ga := p.DotAbs(u, v)
				if !bitEq(gs, wantSum) || !bitEq(ga, wantAbs) {
					t.Fatalf("workers=%d n=%d run=%d: DotAbs = (%x,%x), serial (%x,%x)", workers, n, run, gs, ga, wantSum, wantAbs)
				}
				if got := p.Sum(u); !bitEq(got, wantS) {
					t.Fatalf("workers=%d n=%d run=%d: Sum = %x, serial %x", workers, n, run, got, wantS)
				}
				if got := p.WeightedSum(u, wfn); !bitEq(got, wantW) {
					t.Fatalf("workers=%d n=%d run=%d: WeightedSum = %x, serial %x", workers, n, run, got, wantW)
				}
				gws, gwa := p.WeightedSumAbs(u, wfn)
				if !bitEq(gws, wantWS) || !bitEq(gwa, wantWA) {
					t.Fatalf("workers=%d n=%d run=%d: WeightedSumAbs mismatch", workers, n, run)
				}
				if got := p.Norm2(u); !bitEq(got, wantN) {
					t.Fatalf("workers=%d n=%d run=%d: Norm2 = %x, serial %x", workers, n, run, got, wantN)
				}
			}
		}
	}
}

// TestNorm2Extremes checks the overflow/underflow guard survives the
// parallel path: magnitudes near DBL_MAX and subnormals must match the
// serial dnrm2-style result bitwise.
func TestNorm2Extremes(t *testing.T) {
	n := 8192
	u := make([]float64, n)
	for i := range u {
		switch i % 3 {
		case 0:
			u[i] = 1e300
		case 1:
			u[i] = 5e-324
		default:
			u[i] = 0
		}
	}
	want := vec.Norm2(u)
	for _, workers := range workerCounts {
		p := poolFor(t, workers)
		if got := p.Norm2(u); !bitEq(got, want) {
			t.Fatalf("workers=%d: Norm2 = %g, serial %g", workers, got, want)
		}
	}
}

func TestMulVecBitwise(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"laplacian2d": sparse.Laplacian2D(40, 40),
		"circuit":     sparse.CircuitLike(3000, 11),
	}
	// A deliberately skewed matrix: one dense row among diagonal rows, so
	// an even row split would be badly unbalanced and the nnz partition
	// has to cut around the heavy row.
	coo := sparse.NewCOO(2000, 2000)
	for i := 0; i < 2000; i++ {
		coo.Add(i, i, 2)
	}
	for j := 0; j < 2000; j++ {
		coo.Add(997, j, 0.001)
	}
	mats["skewed"] = coo.ToCSR()

	rng := rand.New(rand.NewSource(3))
	for name, a := range mats {
		x := randVec(rng, a.Cols)
		want := make([]float64, a.Rows)
		a.MulVec(want, x)
		for _, workers := range workerCounts {
			p := poolFor(t, workers)
			got := make([]float64, a.Rows)
			for run := 0; run < 2; run++ {
				p.MulVec(a, got, x)
				for i := range got {
					if !bitEq(got[i], want[i]) {
						t.Fatalf("%s workers=%d run=%d: row %d = %x, serial %x", name, workers, run, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestNnzBounds checks the partition invariants: monotone boundaries
// covering [0, Rows], and no part holding more than its fair share of
// nonzeros plus one row's worth.
func TestNnzBounds(t *testing.T) {
	a := sparse.Laplacian3D(12, 12, 12)
	for _, workers := range []int{2, 4, 7} {
		p := poolFor(t, workers)
		b := p.nnzBounds(a)
		if b[0] != 0 || b[len(b)-1] != a.Rows {
			t.Fatalf("workers=%d: bounds %v do not cover [0,%d]", workers, b, a.Rows)
		}
		maxRow := 0
		for i := 0; i < a.Rows; i++ {
			if w := a.RowPtr[i+1] - a.RowPtr[i]; w > maxRow {
				maxRow = w
			}
		}
		fair := a.NNZ()/workers + maxRow
		for i := 0; i < workers; i++ {
			if b[i] > b[i+1] {
				t.Fatalf("workers=%d: bounds not monotone: %v", workers, b)
			}
			if got := a.RowPtr[b[i+1]] - a.RowPtr[b[i]]; got > fair {
				t.Fatalf("workers=%d part %d: %d nnz > fair share %d", workers, i, got, fair)
			}
		}
	}
}

func TestVLOBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 10_000
	x, y := randVec(rng, n), randVec(rng, n)
	alpha, beta := 1.7, -0.3

	wantAxpy := append([]float64(nil), y...)
	vec.Axpy(wantAxpy, alpha, x)
	wantAxpby := make([]float64, n)
	vec.Axpby(wantAxpby, alpha, x, beta, y)
	wantXpby := make([]float64, n)
	vec.Xpby(wantXpby, x, beta, y)
	wantScale := make([]float64, n)
	vec.Scale(wantScale, alpha, x)

	check := func(t *testing.T, name string, got, want []float64) {
		t.Helper()
		for i := range got {
			if !bitEq(got[i], want[i]) {
				t.Fatalf("%s: element %d = %x, serial %x", name, i, got[i], want[i])
			}
		}
	}
	for _, workers := range workerCounts {
		p := poolFor(t, workers)
		got := append([]float64(nil), y...)
		p.Axpy(got, alpha, x)
		check(t, "Axpy", got, wantAxpy)
		dst := make([]float64, n)
		p.Axpby(dst, alpha, x, beta, y)
		check(t, "Axpby", dst, wantAxpby)
		p.Xpby(dst, x, beta, y)
		check(t, "Xpby", dst, wantXpby)
		p.Scale(dst, alpha, x)
		check(t, "Scale", dst, wantScale)
	}
}

// TestFusedVLOChecksums checks the fused kernels update data and carried
// checksums exactly like the unfused engine sequence.
func TestFusedVLOChecksums(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 8192
	weights := checksum.Triple
	x, y := randVec(rng, n), randVec(rng, n)
	sx := checksum.Checksums(x, weights)
	sy := checksum.Checksums(y, weights)
	etaX := []float64{1e-18, 2e-18, 3e-18}
	etaY := []float64{4e-18, 5e-18, 6e-18}
	alpha, beta := 0.9, -1.1

	for _, workers := range workerCounts {
		p := poolFor(t, workers)

		gotY := append([]float64(nil), y...)
		gotSy := append([]float64(nil), sy...)
		gotEtaY := append([]float64(nil), etaY...)
		p.AxpyVLO(gotY, alpha, x, gotSy, gotEtaY, sx, etaX)
		wantY := append([]float64(nil), y...)
		vec.Axpy(wantY, alpha, x)
		wantSy := append([]float64(nil), sy...)
		wantEtaY := append([]float64(nil), etaY...)
		checksum.UpdateVLOAxpyBound(wantSy, wantEtaY, alpha, sx, etaX)
		for i := range gotY {
			if !bitEq(gotY[i], wantY[i]) {
				t.Fatalf("workers=%d AxpyVLO: data %d mismatch", workers, i)
			}
		}
		for k := range gotSy {
			if !bitEq(gotSy[k], wantSy[k]) || !bitEq(gotEtaY[k], wantEtaY[k]) {
				t.Fatalf("workers=%d AxpyVLO: checksum slot %d mismatch", workers, k)
			}
		}

		dst := make([]float64, n)
		sDst := make([]float64, len(weights))
		etaDst := make([]float64, len(weights))
		p.AxpbyVLO(dst, alpha, x, beta, y, sDst, etaDst, sx, etaX, sy, etaY)
		wantDst := make([]float64, n)
		vec.Axpby(wantDst, alpha, x, beta, y)
		wantS := make([]float64, len(weights))
		wantEta := make([]float64, len(weights))
		checksum.UpdateVLOAxpbyBound(wantS, wantEta, alpha, sx, etaX, beta, sy, etaY)
		for k := range sDst {
			if !bitEq(sDst[k], wantS[k]) || !bitEq(etaDst[k], wantEta[k]) {
				t.Fatalf("workers=%d AxpbyVLO: checksum slot %d mismatch", workers, k)
			}
		}

		p.XpbyVLO(dst, x, beta, y, sDst, etaDst, sx, etaX, sy, etaY)
		vec.Xpby(wantDst, x, beta, y)
		checksum.UpdateVLOAxpbyBound(wantS, wantEta, 1, sx, etaX, beta, sy, etaY)
		for i := range dst {
			if !bitEq(dst[i], wantDst[i]) {
				t.Fatalf("workers=%d XpbyVLO: data %d mismatch", workers, i)
			}
		}
		for k := range sDst {
			if !bitEq(sDst[k], wantS[k]) || !bitEq(etaDst[k], wantEta[k]) {
				t.Fatalf("workers=%d XpbyVLO: checksum slot %d mismatch", workers, k)
			}
		}
	}
}

// TestUpdateBoundsBitwise checks the parallel MVM/PCO checksum updates
// reproduce the serial checksum.Matrix methods bitwise.
func TestUpdateBoundsBitwise(t *testing.T) {
	a := sparse.Laplacian2D(70, 70) // n = 4900 > minParallel
	weights := checksum.Triple
	enc := checksum.EncodeMatrix(a, weights, checksum.PracticalD(a))
	rng := rand.New(rand.NewSource(13))
	u := randVec(rng, a.Rows)
	su := checksum.Checksums(u, weights)
	etaSrc := []float64{1e-17, 1e-17, 1e-17}

	wantS := make([]float64, len(weights))
	wantEta := make([]float64, len(weights))
	enc.UpdateMVMBound(wantS, wantEta, u, su, etaSrc)
	wantPS := make([]float64, len(weights))
	wantPEta := make([]float64, len(weights))
	enc.UpdatePCOBound(wantPS, wantPEta, u, su, etaSrc)

	for _, workers := range workerCounts {
		p := poolFor(t, workers)
		gotS := make([]float64, len(weights))
		gotEta := make([]float64, len(weights))
		p.UpdateMVMBound(enc, gotS, gotEta, u, su, etaSrc)
		for k := range gotS {
			if !bitEq(gotS[k], wantS[k]) || !bitEq(gotEta[k], wantEta[k]) {
				t.Fatalf("workers=%d: UpdateMVMBound slot %d = (%x,%x), serial (%x,%x)",
					workers, k, gotS[k], gotEta[k], wantS[k], wantEta[k])
			}
		}
		p.UpdatePCOBound(enc, gotS, gotEta, u, su, etaSrc)
		for k := range gotS {
			if !bitEq(gotS[k], wantPS[k]) || !bitEq(gotEta[k], wantPEta[k]) {
				t.Fatalf("workers=%d: UpdatePCOBound slot %d mismatch", workers, k)
			}
		}
	}
}

func TestNilPoolSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers = %d, want 1", p.Workers())
	}
	p.Close() // must not panic
	u := []float64{1, 2, 3}
	if got, want := p.Dot(u, u), vec.Dot(u, u); !bitEq(got, want) {
		t.Fatalf("nil pool Dot = %g, want %g", got, want)
	}
}

func TestNewPoolSerialThreshold(t *testing.T) {
	for _, w := range []int{-1, 0, 1} {
		if p := NewPool(w); p != nil {
			p.Close()
			t.Fatalf("NewPool(%d) = non-nil, want nil serial pool", w)
		}
	}
	p := NewPool(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers = %d, want 3", p.Workers())
	}
	p.Close()
	p.Close() // idempotent
}

func TestLengthMismatchPanics(t *testing.T) {
	p := poolFor(t, 2)
	long := make([]float64, 8192)
	for name, f := range map[string]func(){
		"Dot":    func() { p.Dot(long, long[:1]) },
		"DotAbs": func() { p.DotAbs(long, long[:1]) },
		"Axpy":   func() { p.Axpy(long, 1, long[:1]) },
		"Axpby":  func() { p.Axpby(long, 1, long[:1], 1, long) },
		"Xpby":   func() { p.Xpby(long, long[:1], 1, long) },
		"Scale":  func() { p.Scale(long, 1, long[:1]) },
		"MulVec": func() { p.MulVec(sparse.Laplacian2D(4, 4), long, long) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic on length mismatch", name)
				}
			}()
			f()
		}()
	}
}
