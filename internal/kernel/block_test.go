package kernel

import (
	"math/rand"
	"testing"

	"newsum/internal/sparse"
)

// TestMulVecBlockBitwise is the block kernel's determinism contract test:
// every output column of MulVecBlock must be bitwise-identical to a
// single-RHS MulVec of that column, for column counts straddling the chunk
// boundary, worker counts 1/2/4, and matrices straddling minParallel.
func TestMulVecBlockBitwise(t *testing.T) {
	mats := map[string]*sparse.CSR{
		"small":       sparse.Laplacian2D(10, 10),   // below minParallel: serial path
		"laplacian2d": sparse.Laplacian2D(40, 40),   // above minParallel: pooled path
		"circuit":     sparse.CircuitLike(3000, 11), // irregular row weights
	}
	rng := rand.New(rand.NewSource(11))
	// 1 hits the single-column fall-through; 7/8/9 straddle blockColChunk;
	// 16 exercises a multiple of the chunk; 19 a ragged tail.
	for _, k := range []int{1, 2, 7, 8, 9, 16, 19} {
		for name, a := range mats {
			xs := make([][]float64, k)
			want := make([][]float64, k)
			for j := 0; j < k; j++ {
				xs[j] = randVec(rng, a.Cols)
				want[j] = make([]float64, a.Rows)
				a.MulVec(want[j], xs[j])
			}
			for _, workers := range workerCounts {
				p := poolFor(t, workers)
				ys := make([][]float64, k)
				for j := range ys {
					ys[j] = make([]float64, a.Rows)
				}
				for run := 0; run < 2; run++ {
					p.MulVecBlock(a, ys, xs)
					for j := range ys {
						for i := range ys[j] {
							if !bitEq(ys[j][i], want[j][i]) {
								t.Fatalf("%s k=%d workers=%d run=%d: col %d row %d = %x, single-RHS %x",
									name, k, workers, run, j, i, ys[j][i], want[j][i])
							}
						}
					}
				}
			}
		}
	}
}

// TestMulVecBlockEmpty checks the zero-column call is a no-op rather than
// a panic — the batcher can momentarily gather an empty set.
func TestMulVecBlockEmpty(t *testing.T) {
	a := sparse.Laplacian2D(4, 4)
	var p *Pool
	p.MulVecBlock(a, nil, nil)
}

// TestMulVecBlockPanics pins the argument validation: mismatched column
// counts or dimensions must panic on the calling goroutine before any
// part is dispatched to a helper.
func TestMulVecBlockPanics(t *testing.T) {
	a := sparse.Laplacian2D(4, 4)
	n := a.Rows
	good := [][]float64{make([]float64, n), make([]float64, n)}
	short := [][]float64{make([]float64, n), make([]float64, n-1)}
	cases := map[string]func(){
		"count":  func() { (*Pool)(nil).MulVecBlock(a, good, good[:1]) },
		"dimens": func() { (*Pool)(nil).MulVecBlock(a, good, short) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// BenchmarkMulVecBlock quantifies the amortization: one block call over k
// columns versus k single-RHS calls on the same matrix.
func BenchmarkMulVecBlock(b *testing.B) {
	a := sparse.Laplacian2D(256, 256)
	rng := rand.New(rand.NewSource(2))
	const k = 8
	xs := make([][]float64, k)
	ys := make([][]float64, k)
	for j := 0; j < k; j++ {
		xs[j] = randVec(rng, a.Cols)
		ys[j] = make([]float64, a.Rows)
	}
	b.Run("block", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			(*Pool)(nil).MulVecBlock(a, ys, xs)
		}
	})
	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				a.MulVec(ys[j], xs[j])
			}
		}
	})
}
