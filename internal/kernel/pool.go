// Package kernel is the shared-memory parallel kernel layer behind the
// repo's hot paths: sparse matrix–vector products, the blocked pairwise
// reductions (dot, sum, weighted checksum sums, norms) and the fused
// VLO/MVM/PCO checksum-update kernels the serial engine in internal/core
// iterates over.
//
// Determinism contract. Every kernel produces a result bitwise-identical
// to its serial counterpart in internal/vec, internal/sparse and
// internal/checksum, for ANY worker count — including a nil *Pool, which
// runs everything serially. The reductions achieve this by construction:
// the reduction tree is the fixed-block pairwise tree of internal/vec,
// a pure function of the vector length and never of the worker count.
// Workers fill disjoint ranges of per-block leaf partials; a single
// combiner (vec.PairwiseSum / vec.PairwiseNorm2) then folds the leaves
// with exactly the serial tree. SpMV and the element-wise VLOs write
// disjoint output elements, so their results are trivially order-free.
// ABFT relies on this: a recomputed checksum is compared against a
// carried one under a round-off threshold, and a reduction whose value
// depended on scheduling would smear that comparison band.
//
// A Pool serves one solve at a time: its scratch buffers are reused
// across calls and are not safe for concurrent kernel invocations.
// internal/service gives each job its own pool (see Config.KernelWorkers)
// so concurrent jobs cannot oversubscribe the machine or share scratch.
package kernel

import "sync"

// minParallel is the element count below which kernels take the serial
// path: at small n the pointer-chase through the task channel costs more
// than the loop. The cutover is invisible in results — both paths produce
// bitwise-identical values by the determinism contract.
const minParallel = 4096

// Pool is a persistent worker pool. NewPool(w) spawns w−1 helper
// goroutines once; every kernel call partitions its work into w parts,
// hands w−1 parts to the helpers and runs part 0 on the calling
// goroutine, so steady-state solves spawn no goroutines at all.
//
// A nil *Pool is valid and means "serial": every method falls through to
// the single-threaded implementation, which lets callers thread an
// optional pool without branching.
type Pool struct {
	workers int
	tasks   chan func()
	exited  sync.WaitGroup
	closed  sync.Once

	// scratch for reduction leaf partials and SpMV row bounds; grown on
	// demand, reused across calls. One solve at a time — see package doc.
	buf1, buf2 []float64
	bounds     []int
	wsum, wabs []float64
}

// NewPool returns a pool with the given total worker count (the caller
// counts as one). workers <= 1 returns nil, the serial pool.
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	p := &Pool{workers: workers, tasks: make(chan func(), workers)}
	p.exited.Add(workers - 1)
	for i := 1; i < workers; i++ {
		//lint:ignore goroutineguard persistent pool workers by design: spawned once per pool to avoid per-call goroutine churn, they drain p.tasks until Close closes the channel and joins them via p.exited — the join is in Close, not this function.
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.exited.Done()
	for f := range p.tasks {
		f()
	}
}

// Workers returns the pool's total worker count; 1 for the nil (serial)
// pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close shuts the helper goroutines down and waits for them to exit.
// Safe on a nil pool and safe to call twice.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closed.Do(func() {
		close(p.tasks)
		p.exited.Wait()
	})
}

// run executes f(part) for part = 0..workers-1, parts 1.. on the helper
// goroutines and part 0 on the caller, returning when all parts finish.
// Kernels validate slice lengths before calling run so that f cannot
// panic on a helper goroutine (which would crash the process rather than
// unwind the caller).
func (p *Pool) run(f func(part int)) {
	var wg sync.WaitGroup
	wg.Add(p.workers - 1)
	for part := 1; part < p.workers; part++ {
		part := part
		p.tasks <- func() {
			defer wg.Done()
			f(part)
		}
	}
	f(0)
	wg.Wait()
}

// runRange splits [0, n) into workers contiguous element ranges and runs
// f on each. Used by the element-wise VLO kernels, where any partition is
// bitwise-safe because outputs are disjoint.
func (p *Pool) runRange(n int, f func(lo, hi int)) {
	p.run(func(part int) {
		f(n*part/p.workers, n*(part+1)/p.workers)
	})
}

// runBlocks splits the reduction blocks [0, nb) into workers contiguous
// ranges and calls leaf(b) for every block. The partition affects only
// which goroutine computes a leaf, never the combine tree.
func (p *Pool) runBlocks(nb int, leaf func(b int)) {
	p.run(func(part int) {
		lo := nb * part / p.workers
		hi := nb * (part + 1) / p.workers
		for b := lo; b < hi; b++ {
			leaf(b)
		}
	})
}

// grow1 returns a length-n scratch slice, reusing the pool's buffer.
func (p *Pool) grow1(n int) []float64 {
	if cap(p.buf1) < n {
		p.buf1 = make([]float64, n)
	}
	return p.buf1[:n]
}

// grow2 returns two length-n scratch slices.
func (p *Pool) grow2(n int) ([]float64, []float64) {
	if cap(p.buf1) < n {
		p.buf1 = make([]float64, n)
	}
	if cap(p.buf2) < n {
		p.buf2 = make([]float64, n)
	}
	return p.buf1[:n], p.buf2[:n]
}

// growW returns two length-k scratch slices for per-weight row
// reductions (k is the checksum weight count, typically 1–3).
func (p *Pool) growW(k int) ([]float64, []float64) {
	if cap(p.wsum) < k {
		p.wsum = make([]float64, k)
		p.wabs = make([]float64, k)
	}
	return p.wsum[:k], p.wabs[:k]
}
