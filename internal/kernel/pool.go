// Package kernel is the shared-memory parallel kernel layer behind the
// repo's hot paths: sparse matrix–vector products, the blocked pairwise
// reductions (dot, sum, weighted checksum sums, norms) and the fused
// VLO/MVM/PCO checksum-update kernels the serial engine in internal/core
// iterates over.
//
// Determinism contract. Every kernel produces a result bitwise-identical
// to its serial counterpart in internal/vec, internal/sparse and
// internal/checksum, for ANY worker count — including a nil *Pool, which
// runs everything serially. The reductions achieve this by construction:
// the reduction tree is the fixed-block pairwise tree of internal/vec,
// a pure function of the vector length and never of the worker count.
// Workers fill disjoint ranges of per-block leaf partials; a single
// combiner (vec.PairwiseSum / vec.PairwiseNorm2) then folds the leaves
// with exactly the serial tree. SpMV and the element-wise VLOs write
// disjoint output elements, so their results are trivially order-free.
// ABFT relies on this: a recomputed checksum is compared against a
// carried one under a round-off threshold, and a reduction whose value
// depended on scheduling would smear that comparison band.
//
// Allocation contract. The steady-state dispatch path allocates nothing:
// each kernel call stores its operands in the pool's op descriptor and
// wakes the helpers with plain int sends, so no closure crosses a
// channel and no per-call heap traffic occurs (ROADMAP item 2,
// "zero-allocation steady state"; enforced statically by the hotalloc
// analyzer and dynamically by the AllocsPerRun tests in internal/core).
//
// A Pool serves one solve at a time: its scratch buffers and op
// descriptor are reused across calls and are not safe for concurrent
// kernel invocations. internal/service gives each job its own pool (see
// Config.KernelWorkers) so concurrent jobs cannot oversubscribe the
// machine or share scratch.
package kernel

import (
	"sync"

	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// minParallel is the element count below which kernels take the serial
// path: at small n the pointer-chase through the wake channel costs more
// than the loop. The cutover is invisible in results — both paths produce
// bitwise-identical values by the determinism contract.
const minParallel = 4096

// opKind selects the part function execPart dispatches to. Static
// dispatch over an enum (instead of sending closures to the workers) is
// what keeps the per-call allocation count at zero: an int send and a
// struct-field store never touch the heap.
type opKind uint8

const (
	opNone opKind = iota
	// blocked reductions: workers fill disjoint leaf partials.
	opDot
	opDotAbs
	opSum
	opWeightedSum
	opWeightedSumAbs
	opNorm2
	// element-wise VLOs: workers write disjoint ranges.
	opAxpy
	opAxpby
	opXpby
	opScale
	// sparse matrix–vector product over nnz-balanced row ranges.
	opMulVec
	// multi-RHS SpMV over the same row ranges: one traversal, k columns.
	opMulVecBlock
)

// op is the operand set of the in-flight kernel call. The launching
// goroutine fills it before waking the helpers (the channel send orders
// the writes before the helpers' reads); the fields stay set until the
// next call overwrites them, which is safe because launch does not
// return until every part has finished.
type op struct {
	kind        opKind
	n, nb       int
	alpha, beta float64
	dst, x, y   []float64
	out1, out2  []float64
	w           func(i int) float64
	a           *sparse.CSR
	dsts, xss   [][]float64
}

// Pool is a persistent worker pool. NewPool(w) spawns w−1 helper
// goroutines once; every kernel call partitions its work into w parts,
// hands w−1 parts to the helpers and runs part 0 on the calling
// goroutine, so steady-state solves spawn no goroutines at all.
//
// A nil *Pool is valid and means "serial": every method falls through to
// the single-threaded implementation, which lets callers thread an
// optional pool without branching.
type Pool struct {
	workers int
	wake    chan int
	done    sync.WaitGroup
	exited  sync.WaitGroup
	closed  sync.Once

	// op is the operand descriptor of the call in flight; see launch.
	op op

	// scratch for reduction leaf partials and SpMV row bounds; grown on
	// demand, reused across calls. One solve at a time — see package doc.
	buf1, buf2 []float64
	bounds     []int
	wsum, wabs []float64
}

// NewPool returns a pool with the given total worker count (the caller
// counts as one). workers <= 1 returns nil, the serial pool.
func NewPool(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	p := &Pool{workers: workers, wake: make(chan int, workers)}
	p.exited.Add(workers - 1)
	for i := 1; i < workers; i++ {
		//lint:ignore goroutineguard persistent pool workers by design: spawned once per pool to avoid per-call goroutine churn, they drain p.wake until Close closes the channel and joins them via p.exited — the join is in Close, not this function.
		go p.worker()
	}
	return p
}

// worker drains part numbers from the wake channel and executes the
// in-flight op's part. The receive orders the launcher's op-descriptor
// writes before the part's reads; done.Done orders the part's result
// writes before the launcher's done.Wait return.
//
//hot:loop steady-state dispatch: one iteration per kernel call per helper
func (p *Pool) worker() {
	defer p.exited.Done()
	for part := range p.wake {
		p.execPart(part)
		p.done.Done()
	}
}

// Workers returns the pool's total worker count; 1 for the nil (serial)
// pool.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close shuts the helper goroutines down and waits for them to exit.
// Safe on a nil pool and safe to call twice.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closed.Do(func() {
		close(p.wake)
		p.exited.Wait()
	})
}

// launch runs the op currently stored in p.op: parts 1..workers-1 on the
// helper goroutines, part 0 on the caller, returning when every part has
// finished. Kernels validate slice lengths before launching so execPart
// cannot panic on a helper goroutine (which would crash the process
// rather than unwind the caller).
//
//hot:loop per-call dispatch of every parallel kernel
func (p *Pool) launch() {
	p.done.Add(p.workers - 1)
	for part := 1; part < p.workers; part++ {
		p.wake <- part
	}
	p.execPart(0)
	p.done.Wait()
}

// execPart runs one worker's share of the in-flight op. Range splits are
// pure functions of (n or nb, part, workers), so the partition — and with
// it the set of leaves each worker fills — never depends on scheduling.
//
//hot:loop every parallel kernel funnels through here
func (p *Pool) execPart(part int) {
	o := &p.op
	switch o.kind {
	case opDot:
		lo, hi := o.nb*part/p.workers, o.nb*(part+1)/p.workers
		for b := lo; b < hi; b++ {
			o.out1[b] = vec.DotBlock(o.x, o.y, b)
		}
	case opDotAbs:
		lo, hi := o.nb*part/p.workers, o.nb*(part+1)/p.workers
		for b := lo; b < hi; b++ {
			o.out1[b], o.out2[b] = vec.DotAbsBlock(o.x, o.y, b)
		}
	case opSum:
		lo, hi := o.nb*part/p.workers, o.nb*(part+1)/p.workers
		for b := lo; b < hi; b++ {
			o.out1[b] = vec.SumBlock(o.x, b)
		}
	case opWeightedSum:
		lo, hi := o.nb*part/p.workers, o.nb*(part+1)/p.workers
		for b := lo; b < hi; b++ {
			o.out1[b] = vec.WeightedSumBlock(o.x, o.w, b)
		}
	case opWeightedSumAbs:
		lo, hi := o.nb*part/p.workers, o.nb*(part+1)/p.workers
		for b := lo; b < hi; b++ {
			o.out1[b], o.out2[b] = vec.WeightedSumAbsBlock(o.x, o.w, b)
		}
	case opNorm2:
		lo, hi := o.nb*part/p.workers, o.nb*(part+1)/p.workers
		for b := lo; b < hi; b++ {
			o.out1[b], o.out2[b] = vec.Norm2Block(o.x, b)
		}
	case opAxpy:
		lo, hi := o.n*part/p.workers, o.n*(part+1)/p.workers
		yy, xx := o.dst[lo:hi], o.x[lo:hi]
		for i, v := range xx {
			yy[i] += o.alpha * v
		}
	case opAxpby:
		lo, hi := o.n*part/p.workers, o.n*(part+1)/p.workers
		dd, xx, yy := o.dst[lo:hi], o.x[lo:hi], o.y[lo:hi]
		for i := range dd {
			dd[i] = o.alpha*xx[i] + o.beta*yy[i]
		}
	case opXpby:
		lo, hi := o.n*part/p.workers, o.n*(part+1)/p.workers
		dd, xx, yy := o.dst[lo:hi], o.x[lo:hi], o.y[lo:hi]
		for i := range dd {
			dd[i] = xx[i] + o.beta*yy[i]
		}
	case opScale:
		lo, hi := o.n*part/p.workers, o.n*(part+1)/p.workers
		dd, uu := o.dst[lo:hi], o.x[lo:hi]
		for i, v := range uu {
			dd[i] = o.alpha * v
		}
	case opMulVec:
		o.a.MulVecRange(o.dst, o.x, p.bounds[part], p.bounds[part+1])
	case opMulVecBlock:
		mulVecBlockRange(o.a, o.dsts, o.xss, p.bounds[part], p.bounds[part+1])
	}
}

// grow1 returns a length-n scratch slice, reusing the pool's buffer.
func (p *Pool) grow1(n int) []float64 {
	if cap(p.buf1) < n {
		p.buf1 = make([]float64, n)
	}
	return p.buf1[:n]
}

// grow2 returns two length-n scratch slices.
func (p *Pool) grow2(n int) ([]float64, []float64) {
	if cap(p.buf1) < n {
		p.buf1 = make([]float64, n)
	}
	if cap(p.buf2) < n {
		p.buf2 = make([]float64, n)
	}
	return p.buf1[:n], p.buf2[:n]
}

// growW returns two length-k scratch slices for per-weight row
// reductions (k is the checksum weight count, typically 1–3).
func (p *Pool) growW(k int) ([]float64, []float64) {
	if cap(p.wsum) < k {
		p.wsum = make([]float64, k)
		p.wabs = make([]float64, k)
	}
	return p.wsum[:k], p.wabs[:k]
}
