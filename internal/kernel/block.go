package kernel

import (
	"newsum/internal/sparse"
)

// Block (multi-RHS) SpMV kernel. The New-Sum checksum relations extend
// columnwise — see internal/checksum/block.go — so a batch of solves
// sharing one operator can share one matrix traversal per iteration. The
// kernel computes ys[j] := A·xs[j] for every column j, walking each row's
// nonzeros once and accumulating all columns from the loaded (value,
// column-index) pair, which is where the batched solve's amortization over
// k independent SpMVs comes from: the index structure and matrix values
// are streamed through the cache once per iteration instead of k times.
//
// Determinism contract: each column's accumulation visits the row's
// nonzeros in exactly the serial left-to-right order of sparse.CSR.MulVec,
// so every output column is bitwise-identical to a single-RHS MulVec of
// that column — at any worker count, including the nil (serial) pool.
// The batched protected solve in internal/core relies on this: its
// per-column iterates must match k independent single-RHS solves bit for
// bit when the batch is fault-free.

// blockColChunk bounds how many columns one row sweep accumulates at a
// time: the per-column running sums live in a fixed-size stack array, so
// the steady-state kernel allocates nothing, and eight float64 accumulators
// stay comfortably within the register budget.
const blockColChunk = 8

// MulVecBlock computes ys[j] := A·xs[j] for every column j, bitwise-equal
// per column to MulVec (and hence to sparse.CSR.MulVec). Rows are
// partitioned across workers by nonzero count exactly as MulVec partitions
// them; columns are accumulated in fixed-size chunks within each row.
//
//hot:loop block SpMV kernel on the batched protected solve path
func (p *Pool) MulVecBlock(a *sparse.CSR, ys, xs [][]float64) {
	if len(ys) != len(xs) {
		panic("kernel: column count mismatch in MulVecBlock")
	}
	for j := range xs {
		if len(xs[j]) != a.Cols || len(ys[j]) != a.Rows {
			panic("kernel: dimension mismatch in MulVecBlock")
		}
	}
	switch len(xs) {
	case 0:
		return
	case 1:
		p.MulVec(a, ys[0], xs[0])
		return
	}
	if p == nil || a.NNZ() < minParallel {
		mulVecBlockRange(a, ys, xs, 0, a.Rows)
		return
	}
	p.nnzBounds(a)
	p.op = op{kind: opMulVecBlock, a: a, dsts: ys, xss: xs}
	p.launch()
}

// mulVecBlockRange computes ys[j][lo:hi] := (A·xs[j])[lo:hi] for every
// column j. Each column's per-row sum accumulates over the row's nonzeros
// in ascending index order — the exact serial order of CSR.MulVec — so the
// result is bitwise-identical per column regardless of the chunking.
//
//hot:loop per-part body of the block SpMV kernel
func mulVecBlockRange(a *sparse.CSR, ys, xs [][]float64, lo, hi int) {
	var sums [blockColChunk]float64
	for c0 := 0; c0 < len(xs); c0 += blockColChunk {
		c1 := min(c0+blockColChunk, len(xs))
		xc, yc := xs[c0:c1], ys[c0:c1]
		s := sums[:c1-c0]
		for r := lo; r < hi; r++ {
			for j := range s {
				s[j] = 0
			}
			for t := a.RowPtr[r]; t < a.RowPtr[r+1]; t++ {
				v, c := a.Val[t], a.ColIdx[t]
				for j := range s {
					s[j] += v * xc[j][c]
				}
			}
			for j := range s {
				yc[j][r] = s[j]
			}
		}
	}
}
