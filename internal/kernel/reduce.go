package kernel

import "newsum/internal/vec"

// The reductions below all follow the same shape: workers fill disjoint
// ranges of per-block leaf partials (the exact leaves the serial
// reductions in internal/vec compute), then a single combiner folds them
// with the serial pairwise tree. The result is bitwise-identical to the
// serial call for any worker count; see the package doc. Each call
// stores its operands in the pool's op descriptor and launches — no
// closures, no per-call allocation.

// Dot returns u·v, bitwise-equal to vec.Dot.
//
//hot:loop reduction kernel on the protected solve path
func (p *Pool) Dot(u, v []float64) float64 {
	if len(u) != len(v) {
		panic("kernel: length mismatch in Dot")
	}
	if p == nil || len(u) < minParallel {
		return vec.Dot(u, v)
	}
	nb := vec.Blocks(len(u))
	part := p.grow1(nb)
	p.op = op{kind: opDot, nb: nb, x: u, y: v, out1: part}
	p.launch()
	return vec.PairwiseSum(part)
}

// DotAbs returns u·v and Σ|u_i·v_i|, bitwise-equal to vec.DotAbs.
//
//hot:loop reduction kernel on the protected solve path
func (p *Pool) DotAbs(u, v []float64) (sum, abs float64) {
	if len(u) != len(v) {
		panic("kernel: length mismatch in DotAbs")
	}
	if p == nil || len(u) < minParallel {
		return vec.DotAbs(u, v)
	}
	nb := vec.Blocks(len(u))
	sums, abss := p.grow2(nb)
	p.op = op{kind: opDotAbs, nb: nb, x: u, y: v, out1: sums, out2: abss}
	p.launch()
	return vec.PairwiseSum(sums), vec.PairwiseSum(abss)
}

// Sum returns Σu_i, bitwise-equal to vec.Sum.
//
//hot:loop reduction kernel on the protected solve path
func (p *Pool) Sum(u []float64) float64 {
	if p == nil || len(u) < minParallel {
		return vec.Sum(u)
	}
	nb := vec.Blocks(len(u))
	part := p.grow1(nb)
	p.op = op{kind: opSum, nb: nb, x: u, out1: part}
	p.launch()
	return vec.PairwiseSum(part)
}

// WeightedSum returns Σ w(i)·u_i, bitwise-equal to vec.WeightedSum.
//
//hot:loop reduction kernel on the protected solve path
func (p *Pool) WeightedSum(u []float64, w func(i int) float64) float64 {
	if p == nil || len(u) < minParallel {
		return vec.WeightedSum(u, w)
	}
	nb := vec.Blocks(len(u))
	part := p.grow1(nb)
	p.op = op{kind: opWeightedSum, nb: nb, x: u, w: w, out1: part}
	p.launch()
	return vec.PairwiseSum(part)
}

// WeightedSumAbs returns Σ w(i)·u_i and Σ|w(i)·u_i| — the checksum
// verifier's (measured sum, round-off scale) pair — bitwise-equal to
// vec.WeightedSumAbs.
//
//hot:loop verification kernel on the protected solve path
func (p *Pool) WeightedSumAbs(u []float64, w func(i int) float64) (sum, abs float64) {
	if p == nil || len(u) < minParallel {
		return vec.WeightedSumAbs(u, w)
	}
	nb := vec.Blocks(len(u))
	sums, abss := p.grow2(nb)
	p.op = op{kind: opWeightedSumAbs, nb: nb, x: u, w: w, out1: sums, out2: abss}
	p.launch()
	return vec.PairwiseSum(sums), vec.PairwiseSum(abss)
}

// Norm2 returns ‖u‖₂ with dnrm2-style overflow guarding, bitwise-equal
// to vec.Norm2. Workers fill per-block (scale, ssq) partials; the serial
// tree merges them with vec.CombineNorm2.
//
//hot:loop residual-norm kernel on the protected solve path
func (p *Pool) Norm2(u []float64) float64 {
	if p == nil || len(u) < minParallel {
		return vec.Norm2(u)
	}
	nb := vec.Blocks(len(u))
	scales, ssqs := p.grow2(nb)
	p.op = op{kind: opNorm2, nb: nb, x: u, out1: scales, out2: ssqs}
	p.launch()
	return vec.PairwiseNorm2(scales, ssqs)
}
