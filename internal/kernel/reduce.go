package kernel

import "newsum/internal/vec"

// The reductions below all follow the same shape: workers fill disjoint
// ranges of per-block leaf partials (the exact leaves the serial
// reductions in internal/vec compute), then a single combiner folds them
// with the serial pairwise tree. The result is bitwise-identical to the
// serial call for any worker count; see the package doc.

// Dot returns u·v, bitwise-equal to vec.Dot.
func (p *Pool) Dot(u, v []float64) float64 {
	if len(u) != len(v) {
		panic("kernel: length mismatch in Dot")
	}
	if p == nil || len(u) < minParallel {
		return vec.Dot(u, v)
	}
	nb := vec.Blocks(len(u))
	part := p.grow1(nb)
	p.runBlocks(nb, func(b int) { part[b] = vec.DotBlock(u, v, b) })
	return vec.PairwiseSum(part)
}

// DotAbs returns u·v and Σ|u_i·v_i|, bitwise-equal to vec.DotAbs.
func (p *Pool) DotAbs(u, v []float64) (sum, abs float64) {
	if len(u) != len(v) {
		panic("kernel: length mismatch in DotAbs")
	}
	if p == nil || len(u) < minParallel {
		return vec.DotAbs(u, v)
	}
	nb := vec.Blocks(len(u))
	sums, abss := p.grow2(nb)
	p.runBlocks(nb, func(b int) { sums[b], abss[b] = vec.DotAbsBlock(u, v, b) })
	return vec.PairwiseSum(sums), vec.PairwiseSum(abss)
}

// Sum returns Σu_i, bitwise-equal to vec.Sum.
func (p *Pool) Sum(u []float64) float64 {
	if p == nil || len(u) < minParallel {
		return vec.Sum(u)
	}
	nb := vec.Blocks(len(u))
	part := p.grow1(nb)
	p.runBlocks(nb, func(b int) { part[b] = vec.SumBlock(u, b) })
	return vec.PairwiseSum(part)
}

// WeightedSum returns Σ w(i)·u_i, bitwise-equal to vec.WeightedSum.
func (p *Pool) WeightedSum(u []float64, w func(i int) float64) float64 {
	if p == nil || len(u) < minParallel {
		return vec.WeightedSum(u, w)
	}
	nb := vec.Blocks(len(u))
	part := p.grow1(nb)
	p.runBlocks(nb, func(b int) { part[b] = vec.WeightedSumBlock(u, w, b) })
	return vec.PairwiseSum(part)
}

// WeightedSumAbs returns Σ w(i)·u_i and Σ|w(i)·u_i| — the checksum
// verifier's (measured sum, round-off scale) pair — bitwise-equal to
// vec.WeightedSumAbs.
func (p *Pool) WeightedSumAbs(u []float64, w func(i int) float64) (sum, abs float64) {
	if p == nil || len(u) < minParallel {
		return vec.WeightedSumAbs(u, w)
	}
	nb := vec.Blocks(len(u))
	sums, abss := p.grow2(nb)
	p.runBlocks(nb, func(b int) { sums[b], abss[b] = vec.WeightedSumAbsBlock(u, w, b) })
	return vec.PairwiseSum(sums), vec.PairwiseSum(abss)
}

// Norm2 returns ‖u‖₂ with dnrm2-style overflow guarding, bitwise-equal
// to vec.Norm2. Workers fill per-block (scale, ssq) partials; the serial
// tree merges them with vec.CombineNorm2.
func (p *Pool) Norm2(u []float64) float64 {
	if p == nil || len(u) < minParallel {
		return vec.Norm2(u)
	}
	nb := vec.Blocks(len(u))
	scales, ssqs := p.grow2(nb)
	p.runBlocks(nb, func(b int) { scales[b], ssqs[b] = vec.Norm2Block(u, b) })
	return vec.PairwiseNorm2(scales, ssqs)
}
