// Package mmio reads and writes sparse matrices in the NIST Matrix Market
// exchange format, the format the University of Florida Sparse Matrix
// Collection (the paper's source for G3_circuit) distributes. Supported
// variants: "matrix coordinate real|integer|pattern general|symmetric".
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"newsum/internal/sparse"
)

// Header describes the Matrix Market banner of a parsed file.
type Header struct {
	Object   string // "matrix"
	Format   string // "coordinate"
	Field    string // "real", "integer", "pattern"
	Symmetry string // "general", "symmetric"
}

// Read parses a Matrix Market stream into a CSR matrix. Symmetric files are
// expanded to full storage, matching how iterative solvers consume them.
func Read(r io.Reader) (*sparse.CSR, Header, error) {
	var h Header
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	if !sc.Scan() {
		return nil, h, fmt.Errorf("mmio: empty input")
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 4 || banner[0] != "%%matrixmarket" {
		return nil, h, fmt.Errorf("mmio: missing %%%%MatrixMarket banner")
	}
	h.Object, h.Format = banner[1], banner[2]
	h.Field = banner[3]
	h.Symmetry = "general"
	if len(banner) >= 5 {
		h.Symmetry = banner[4]
	}
	if h.Object != "matrix" || h.Format != "coordinate" {
		return nil, h, fmt.Errorf("mmio: unsupported banner %q %q (only matrix coordinate)", h.Object, h.Format)
	}
	switch h.Field {
	case "real", "integer", "pattern":
	default:
		return nil, h, fmt.Errorf("mmio: unsupported field %q", h.Field)
	}
	switch h.Symmetry {
	case "general", "symmetric":
	default:
		return nil, h, fmt.Errorf("mmio: unsupported symmetry %q", h.Symmetry)
	}

	// Size line: first non-comment line after the banner.
	var rows, cols, nnz int
	for {
		if !sc.Scan() {
			return nil, h, fmt.Errorf("mmio: missing size line")
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, h, fmt.Errorf("mmio: bad size line %q: %v", line, err)
		}
		break
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		return nil, h, fmt.Errorf("mmio: negative dimensions in size line")
	}

	coo := sparse.NewCOO(rows, cols)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if h.Field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, h, fmt.Errorf("mmio: entry %d has %d fields, want %d", read+1, len(f), want)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, h, fmt.Errorf("mmio: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, h, fmt.Errorf("mmio: bad column index %q: %v", f[1], err)
		}
		v := 1.0
		if h.Field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, h, fmt.Errorf("mmio: bad value %q: %v", f[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, h, fmt.Errorf("mmio: entry (%d,%d) out of range %dx%d", i, j, rows, cols)
		}
		if h.Symmetry == "symmetric" {
			coo.AddSym(i-1, j-1, v)
		} else {
			coo.Add(i-1, j-1, v)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, h, fmt.Errorf("mmio: read error: %w", err)
	}
	if read < nnz {
		return nil, h, fmt.Errorf("mmio: expected %d entries, got %d", nnz, read)
	}
	return coo.ToCSR(), h, nil
}

// ReadFile parses the Matrix Market file at path.
func ReadFile(path string) (*sparse.CSR, Header, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, Header{}, err
	}
	//lint:ignore errdrop read-only file; Close cannot lose data
	defer f.Close()
	return Read(f)
}

// Write emits a in "matrix coordinate real general" format with full
// (non-symmetric) storage.
func Write(w io.Writer, a *sparse.CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Rows, a.Cols, a.NNZ()); err != nil {
		return err
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.RowView(i)
		for k, j := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, j+1, vals[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteFile writes a to the Matrix Market file at path, creating or
// truncating it.
func WriteFile(path string, a *sparse.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, a); err != nil {
		//lint:ignore errdrop the write error is the primary failure being reported
		_ = f.Close()
		return err
	}
	return f.Close()
}
