package mmio

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"newsum/internal/sparse"
)

func TestRoundTrip(t *testing.T) {
	a := sparse.Laplacian2D(4, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "lap.mtx")
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	b, hdr, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Field != "real" || hdr.Symmetry != "general" {
		t.Fatalf("header: %+v", hdr)
	}
	if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
		t.Fatalf("shape mismatch after round trip")
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if math.Abs(a.At(i, j)-b.At(i, j)) > 0 {
				t.Fatalf("value mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestReadSymmetric(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate real symmetric
% a comment
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 2.0
`
	a, hdr, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Symmetry != "symmetric" {
		t.Fatalf("symmetry: %q", hdr.Symmetry)
	}
	if a.At(1, 0) != -1 || a.At(0, 1) != -1 {
		t.Fatalf("symmetric expansion failed: %v %v", a.At(1, 0), a.At(0, 1))
	}
	if a.NNZ() != 5 {
		t.Fatalf("nnz after expansion: %d", a.NNZ())
	}
}

func TestReadPattern(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
`
	a, _, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 1 || a.At(1, 1) != 1 {
		t.Fatalf("pattern values: %v %v", a.At(0, 0), a.At(1, 1))
	}
}

func TestReadInteger(t *testing.T) {
	src := `%%MatrixMarket matrix coordinate integer general
2 2 1
2 1 7
`
	a, _, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 0) != 7 {
		t.Fatalf("integer value: %v", a.At(1, 0))
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad banner":      "%%NotMatrixMarket matrix coordinate real general\n1 1 0\n",
		"bad format":      "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
		"bad field":       "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"bad symmetry":    "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"missing size":    "%%MatrixMarket matrix coordinate real general\n",
		"short entries":   "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"bad row index":   "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1.0\n",
		"out of range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zzz\n",
		"missing fields":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"negative header": "%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1.0\n",
	}
	for name, src := range cases {
		if _, _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "nope.mtx")); err == nil {
		t.Fatalf("expected error for missing file")
	}
}

func TestWriteFileCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.mtx")
	if err := WriteFile(path, sparse.Identity(3)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "%%MatrixMarket matrix coordinate real general") {
		t.Fatalf("banner missing: %q", string(data[:40]))
	}
}

func TestRoundTripPreservesPrecision(t *testing.T) {
	c := sparse.NewCOO(1, 1)
	c.Add(0, 0, math.Pi*1e-7)
	a := c.ToCSR()
	path := filepath.Join(t.TempDir(), "pi.mtx")
	if err := WriteFile(path, a); err != nil {
		t.Fatal(err)
	}
	b, _, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.At(0, 0) != a.At(0, 0) {
		t.Fatalf("precision lost: %v vs %v", b.At(0, 0), a.At(0, 0))
	}
}
