package mmio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead drives the Matrix Market parser with arbitrary inputs: it must
// never panic, and anything it accepts must produce a structurally valid
// CSR matrix that survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n2 2 -3.5\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 2.0\n3 1 -1.0\n")
	f.Add("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("% comment only\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n0 0 0\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 9999999\n1 1 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n-1 -1 -1\n")

	f.Fuzz(func(t *testing.T, input string) {
		a, hdr, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		if a == nil {
			t.Fatalf("nil matrix with nil error")
		}
		if verr := a.Validate(); verr != nil {
			t.Fatalf("accepted matrix fails validation: %v (header %+v)", verr, hdr)
		}
		// Round trip: what we write we must be able to read back with the
		// same shape.
		var buf bytes.Buffer
		if werr := Write(&buf, a); werr != nil {
			t.Fatalf("write of accepted matrix failed: %v", werr)
		}
		b, _, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round trip read failed: %v", rerr)
		}
		if b.Rows != a.Rows || b.Cols != a.Cols || b.NNZ() != a.NNZ() {
			t.Fatalf("round trip changed shape: %dx%d/%d vs %dx%d/%d",
				a.Rows, a.Cols, a.NNZ(), b.Rows, b.Cols, b.NNZ())
		}
	})
}
