package fault

import (
	"math"
	"testing"
)

func TestModelStringsRoundTrip(t *testing.T) {
	for _, m := range Models() {
		got, err := ParseModel(m.String())
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip %q: got %v", m, got)
		}
	}
	if _, err := ParseModel("no-such-model"); err == nil {
		t.Fatalf("ParseModel accepted garbage")
	}
	if Model(99).String() != "unknown-model" || Magnitude(99).String() != "unknown-magnitude" {
		t.Fatalf("unknown enum strings broken")
	}
	if SiteChecksum.String() != "checksum" || SiteCheckpoint.String() != "checkpoint" {
		t.Fatalf("new site strings broken")
	}
}

func TestAttacksRecovery(t *testing.T) {
	for _, m := range Models() {
		want := m == ModelCheckpoint
		if m.AttacksRecovery() != want {
			t.Fatalf("%v.AttacksRecovery() = %v", m, !want)
		}
	}
}

func TestSignFlipPreservesMagnitude(t *testing.T) {
	evs := ModelSign.Events(MagLarge, 5, SiteMVM)
	in := NewInjector(evs, 1)
	v := []float64{0, 0, 7.5, 0}
	evs[0].Index = 2
	in = NewInjector(evs, 1)
	in.InjectOutput(5, SiteMVM, v)
	if v[2] != -7.5 {
		t.Fatalf("sign flip of 7.5 gave %v", v[2])
	}
}

func TestMantissaFlipSmallerThanVictim(t *testing.T) {
	for _, g := range Magnitudes() {
		for seed := int64(0); seed < 10; seed++ {
			evs := ModelMantissa.Events(g, 0, SiteMVM)
			evs[0].Index = 0
			in := NewInjector(evs, seed)
			v := []float64{1.25}
			in.InjectOutput(0, SiteMVM, v)
			if d := math.Abs(v[0] - 1.25); d >= 1.25 || d == 0 {
				t.Fatalf("%v seed %d: mantissa flip error %v not in (0, |victim|)", g, seed, d)
			}
		}
	}
}

func TestMultiBitFlipsSeveralBits(t *testing.T) {
	evs := ModelMultiBit.Events(MagNearTau, 0, SiteMVM)
	evs[0].Index = 0
	in := NewInjector(evs, 3)
	v := []float64{1.0}
	in.InjectOutput(0, SiteMVM, v)
	diff := math.Float64bits(v[0]) ^ math.Float64bits(1.0)
	if n := popcount(diff); n != 3 {
		t.Fatalf("multi-bit upset flipped %d bits, want 3 (mask %b)", n, diff)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestBurstStrikesContiguousElements(t *testing.T) {
	evs := ModelBurst.Events(MagLarge, 0, SiteMVM)
	evs[0].Index = 6
	in := NewInjector(evs, 1)
	v := make([]float64, 8)
	if got := in.InjectOutput(0, SiteMVM, v); got != 4 {
		t.Fatalf("burst fired %d elements, want 4", got)
	}
	// Indices 6, 7, 0, 1: contiguous with wrap.
	for _, idx := range []int{6, 7, 0, 1} {
		if v[idx] == 0 {
			t.Fatalf("burst missed element %d: %v", idx, v)
		}
	}
	for _, idx := range []int{2, 3, 4, 5} {
		if v[idx] != 0 {
			t.Fatalf("burst leaked onto element %d: %v", idx, v)
		}
	}
}

func TestMagnitudeWindows(t *testing.T) {
	// Near-τ flips of a ~1 victim must land within a few orders of magnitude
	// of τ = 1e-10 in relative terms; below-τ flips must stay under it.
	for seed := int64(0); seed < 20; seed++ {
		near := ModelSingle.Events(MagNearTau, 0, SiteMVM)
		near[0].Index = 0
		in := NewInjector(near, seed)
		v := []float64{1.0}
		in.InjectOutput(0, SiteMVM, v)
		rel := math.Abs(v[0] - 1.0)
		if rel < 1e-11 || rel > 1e-3 {
			t.Fatalf("seed %d: near-τ relative error %v outside [1e-11, 1e-3]", seed, rel)
		}

		below := ModelSingle.Events(MagBelowTau, 0, SiteMVM)
		below[0].Index = 0
		in = NewInjector(below, seed)
		w := []float64{1.0}
		in.InjectOutput(0, SiteMVM, w)
		if rel := math.Abs(w[0] - 1.0); rel > 1e-12 {
			t.Fatalf("seed %d: below-τ relative error %v above round-off band", seed, rel)
		}
	}
}

func TestLargeSingleFlipAlwaysDetectableBit(t *testing.T) {
	evs := ModelSingle.Events(MagLarge, 0, SiteMVM)
	if evs[0].Bit != 62 {
		t.Fatalf("large single flip should pin bit 62, got %d", evs[0].Bit)
	}
	for _, victim := range []float64{0, 1e-300, 0.5, 3.0, 1e200} {
		evs[0].Index = 0
		in := NewInjector(evs, 1)
		v := []float64{victim}
		in.InjectOutput(0, SiteMVM, v)
		if rel := math.Abs(v[0] - victim); rel <= math.Abs(victim)*1e-6 && rel < 1 {
			t.Fatalf("bit-62 flip of %v changed it only by %v", victim, rel)
		}
		in.Reset()
	}
}

func TestChecksumAndCheckpointModelSites(t *testing.T) {
	cs := ModelChecksum.Events(MagLarge, 3, SiteMVM)
	if cs[0].Site != SiteChecksum || cs[0].Kind != Arithmetic {
		t.Fatalf("checksum model: site %v kind %v", cs[0].Site, cs[0].Kind)
	}
	cp := ModelCheckpoint.Events(MagLarge, 10, SiteMVM)
	if cp[0].Site != SiteCheckpoint || cp[0].Kind != Memory {
		t.Fatalf("checkpoint model: site %v kind %v", cp[0].Site, cp[0].Kind)
	}
}

func TestArrivalTimes(t *testing.T) {
	for _, dist := range []Arrival{ArrivalUniform, ArrivalPoisson, ArrivalBurst} {
		times := ArrivalTimes(dist, 8, 200, 11)
		if len(times) != 8 {
			t.Fatalf("%v: %d times, want 8", dist, len(times))
		}
		for i, it := range times {
			if it < 0 || it >= 200 {
				t.Fatalf("%v: time %d out of range", dist, it)
			}
			if i > 0 && times[i-1] > it {
				t.Fatalf("%v: not sorted: %v", dist, times)
			}
		}
		// Deterministic for a fixed seed.
		again := ArrivalTimes(dist, 8, 200, 11)
		for i := range times {
			if times[i] != again[i] {
				t.Fatalf("%v: not deterministic", dist)
			}
		}
	}
	// Burst arrivals cluster inside a tenth of the run.
	times := ArrivalTimes(ArrivalBurst, 16, 1000, 5)
	if spread := times[len(times)-1] - times[0]; spread >= 100 {
		t.Fatalf("burst arrivals spread %d ≥ window 100", spread)
	}
	if ArrivalTimes(ArrivalUniform, 0, 100, 1) != nil {
		t.Fatalf("k=0 should yield no times")
	}
	if Arrival(9).String() != "unknown-arrival" {
		t.Fatalf("Arrival.String broken")
	}
}

func TestModelScenarioGrid(t *testing.T) {
	for _, m := range Models() {
		for _, g := range Magnitudes() {
			evs := ModelScenario(m, g, ArrivalUniform, 3, 100, SiteMVM, 7)
			if len(evs) != 3 {
				t.Fatalf("%v/%v: %d events, want 3", m, g, len(evs))
			}
			for _, e := range evs {
				if e.Iteration < 0 || e.Iteration >= 100 {
					t.Fatalf("%v/%v: iteration %d out of range", m, g, e.Iteration)
				}
			}
		}
	}
}

func TestFlipMaskWindowClamping(t *testing.T) {
	in := NewInjector(nil, 1)
	// Degenerate window collapses to a single bit; Bits above the span caps.
	mask := in.flipMask(Event{Bit: -1, BitLo: 5, BitHi: 5, Bits: 4})
	if mask != 1<<5 {
		t.Fatalf("collapsed window mask %b", mask)
	}
	// Explicit Bit plus window bits: all distinct.
	mask = in.flipMask(Event{Bit: 63, BitLo: 1, BitHi: 2, Bits: 3})
	if popcount(mask) != 3 || mask&(1<<63) == 0 {
		t.Fatalf("combined mask %b", mask)
	}
}
