package fault

import (
	"testing"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	v := []float64{1, 2, 3}
	if in.InjectOutput(0, SiteMVM, v) != 0 {
		t.Fatalf("nil injector injected")
	}
	if in.InjectMemory(0, SiteVLO, v) != 0 {
		t.Fatalf("nil injector injected")
	}
	if in.CacheWindow(0, SitePCO, v) != nil {
		t.Fatalf("nil injector opened a window")
	}
	if in.Pending() {
		t.Fatalf("nil injector pending")
	}
	in.Reset() // must not panic
}

func TestArithmeticInjectionOneShot(t *testing.T) {
	in := NewInjector([]Event{
		{Iteration: 3, Site: SiteMVM, Kind: Arithmetic, Index: 1, Magnitude: 10},
	}, 1)
	v := []float64{0, 0, 0}
	if got := in.InjectOutput(2, SiteMVM, v); got != 0 {
		t.Fatalf("fired at wrong iteration")
	}
	if got := in.InjectOutput(3, SiteVLO, v); got != 0 {
		t.Fatalf("fired at wrong site")
	}
	if got := in.InjectOutput(3, SiteMVM, v); got != 1 {
		t.Fatalf("did not fire")
	}
	if v[1] != 10 {
		t.Fatalf("wrong element or magnitude: %v", v)
	}
	// One-shot: re-executing iteration 3 does not re-fire.
	if got := in.InjectOutput(3, SiteMVM, v); got != 0 {
		t.Fatalf("one-shot event re-fired")
	}
	if in.Pending() {
		t.Fatalf("event still pending after firing")
	}
	if len(in.Injected) != 1 {
		t.Fatalf("record count: %d", len(in.Injected))
	}
	if in.Injected[0].String() == "" {
		t.Fatalf("empty record description")
	}
}

func TestRefire(t *testing.T) {
	in := NewInjector([]Event{
		{Iteration: 0, Site: SiteMVM, Kind: Arithmetic, Index: 0, Magnitude: 1},
	}, 1)
	in.Refire = true
	v := []float64{0}
	in.InjectOutput(0, SiteMVM, v)
	in.InjectOutput(0, SiteMVM, v)
	if v[0] != 2 {
		t.Fatalf("refire should strike twice: %v", v)
	}
}

func TestDefaultMagnitudeIsSignificant(t *testing.T) {
	in := NewInjector([]Event{
		{Iteration: 0, Site: SiteMVM, Kind: Arithmetic, Index: 0},
	}, 1)
	v := []float64{2}
	in.InjectOutput(0, SiteMVM, v)
	// Default: 1e4·(1+|v|) added.
	if v[0] < 1e4 {
		t.Fatalf("default magnitude too small: %v", v[0])
	}
}

func TestMultiCount(t *testing.T) {
	in := NewInjector([]Event{
		{Iteration: 0, Site: SiteMVM, Kind: Arithmetic, Index: -1, Count: 3, Magnitude: 5},
	}, 7)
	v := make([]float64, 100)
	if got := in.InjectOutput(0, SiteMVM, v); got != 3 {
		t.Fatalf("count: %d", got)
	}
	if len(in.Injected) != 3 {
		t.Fatalf("records: %d", len(in.Injected))
	}
}

func TestMemoryInjectionPersists(t *testing.T) {
	in := NewInjector([]Event{
		{Iteration: 1, Site: SitePCO, Kind: Memory, Index: 2, Magnitude: -4},
	}, 1)
	v := []float64{1, 1, 1}
	if got := in.InjectMemory(1, SitePCO, v); got != 1 {
		t.Fatalf("memory event missed")
	}
	if v[2] != -3 {
		t.Fatalf("memory corruption wrong: %v", v)
	}
}

func TestCacheWindowRestores(t *testing.T) {
	in := NewInjector([]Event{
		{Iteration: 0, Site: SiteMVM, Kind: CacheRegister, Index: 1, Magnitude: 100},
	}, 1)
	v := []float64{1, 2, 3}
	restore := in.CacheWindow(0, SiteMVM, v)
	if restore == nil {
		t.Fatalf("window did not open")
	}
	if v[1] != 102 {
		t.Fatalf("cached value not corrupted: %v", v)
	}
	restore()
	if v[1] != 2 {
		t.Fatalf("restore failed: %v", v)
	}
	if in.CacheWindow(0, SiteMVM, v) != nil {
		t.Fatalf("one-shot cache event re-opened")
	}
}

func TestReset(t *testing.T) {
	in := NewInjector([]Event{
		{Iteration: 0, Site: SiteMVM, Kind: Arithmetic, Index: 0, Magnitude: 1},
	}, 1)
	v := []float64{0}
	in.InjectOutput(0, SiteMVM, v)
	in.Reset()
	if !in.Pending() {
		t.Fatalf("Reset should re-arm events")
	}
	if len(in.Injected) != 0 {
		t.Fatalf("Reset should clear the log")
	}
	in.InjectOutput(0, SiteMVM, v)
	if v[0] != 2 {
		t.Fatalf("re-armed event did not fire")
	}
}

func TestKindSiteStrings(t *testing.T) {
	if Arithmetic.String() != "arithmetic" || Memory.String() != "memory" ||
		CacheRegister.String() != "cache-register" || Kind(9).String() != "unknown-kind" {
		t.Fatalf("Kind.String broken")
	}
	if SiteMVM.String() != "MVM" || SiteVLO.String() != "VLO" ||
		SitePCO.String() != "PCO" || Site(9).String() != "unknown-site" {
		t.Fatalf("Site.String broken")
	}
}

func TestScenario1(t *testing.T) {
	ev := Scenario1(100, 42)
	if len(ev) != 1 {
		t.Fatalf("scenario 1: %d events", len(ev))
	}
	if ev[0].Iteration < 0 || ev[0].Iteration >= 100 {
		t.Fatalf("iteration out of range: %d", ev[0].Iteration)
	}
	if ev[0].Site != SiteMVM || ev[0].Kind != Arithmetic {
		t.Fatalf("wrong site/kind")
	}
	// Deterministic for a fixed seed.
	ev2 := Scenario1(100, 42)
	if ev2[0].Iteration != ev[0].Iteration {
		t.Fatalf("not deterministic")
	}
}

func TestScenario2CoversEveryInterval(t *testing.T) {
	const iters, cd = 100, 12
	ev := Scenario2(iters, cd, 7)
	want := (iters + cd - 1) / cd
	if len(ev) != want {
		t.Fatalf("scenario 2: %d events, want %d", len(ev), want)
	}
	for k, e := range ev {
		lo := k * cd
		hi := lo + cd
		if hi > iters {
			hi = iters
		}
		if e.Iteration < lo || e.Iteration >= hi {
			t.Fatalf("event %d at %d outside [%d,%d)", k, e.Iteration, lo, hi)
		}
	}
}

func TestScenario3EveryIteration(t *testing.T) {
	ev := Scenario3(10)
	if len(ev) != 10 {
		t.Fatalf("scenario 3: %d events", len(ev))
	}
	for i, e := range ev {
		if e.Iteration != i {
			t.Fatalf("event %d at iteration %d", i, e.Iteration)
		}
	}
}

func TestMultiErrorDistinctIntervals(t *testing.T) {
	const k, cd, iters = 4, 10, 100
	ev := MultiError(k, cd, iters, true, 3)
	if len(ev) != k+1 {
		t.Fatalf("events: %d, want %d (+VLO)", len(ev), k+1)
	}
	intervals := map[int]bool{}
	vlo := 0
	for _, e := range ev {
		if e.Site == SiteVLO {
			vlo++
			continue
		}
		iv := e.Iteration / cd
		if intervals[iv] {
			t.Fatalf("two MVM errors share interval %d", iv)
		}
		intervals[iv] = true
	}
	if vlo != 1 {
		t.Fatalf("VLO events: %d", vlo)
	}
	// Without VLO.
	ev2 := MultiError(2, cd, iters, false, 3)
	if len(ev2) != 2 {
		t.Fatalf("events without VLO: %d", len(ev2))
	}
	// k capped at available intervals.
	ev3 := MultiError(50, cd, 30, false, 3)
	if len(ev3) != 3 {
		t.Fatalf("k should cap at %d intervals, got %d", 3, len(ev3))
	}
}

func TestBitFlipInjection(t *testing.T) {
	in := NewInjector([]Event{
		{Iteration: 0, Site: SiteMVM, Kind: Memory, Index: 0, BitFlip: true, Bit: 52}, // exponent LSB: doubles or halves
	}, 1)
	v := []float64{3.0}
	if got := in.InjectMemory(0, SiteMVM, v); got != 1 {
		t.Fatalf("bit flip did not fire")
	}
	if v[0] != 6.0 && v[0] != 1.5 {
		t.Fatalf("exponent-bit flip of 3.0 gave %v, want 6.0 or 1.5", v[0])
	}
	if in.Injected[0].Added == 0 {
		t.Fatalf("record should carry the additive equivalent")
	}
}

func TestBitFlipRandomBitIsSignificant(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := NewInjector([]Event{
			{Iteration: 0, Site: SiteVLO, Kind: Arithmetic, Index: 0, BitFlip: true, Bit: -1},
		}, seed)
		v := []float64{1.2345}
		in.InjectOutput(0, SiteVLO, v)
		rel := (v[0] - 1.2345) / 1.2345
		if rel < 0 {
			rel = -rel
		}
		if rel < 1e-6 {
			t.Fatalf("seed %d: random bit flip negligibly small (%v)", seed, rel)
		}
	}
}

// Property: every scenario generator emits events strictly inside the run.
func TestScenarioEventsInBoundsProperty(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		iters := 10 + int(seed*13)%400
		cd := 1 + int(seed)%20
		check := func(name string, evs []Event, bound int) {
			for _, e := range evs {
				if e.Iteration < 0 || e.Iteration >= bound {
					t.Fatalf("%s seed %d: iteration %d outside [0,%d)", name, seed, e.Iteration, bound)
				}
			}
		}
		check("scenario1", Scenario1(iters, seed), iters)
		check("scenario2", Scenario2(iters, cd, seed), iters)
		check("scenario3", Scenario3(iters), iters)
		check("multierror", MultiError(4, cd, iters, true, seed), iters)
	}
}
