// Package fault implements the soft-error injector driving the paper's
// empirical evaluation (§6.3): errors are modeled as additive contributions
// to elements of matrices and vectors ("we simulate an arithmetic or storage
// error by significantly increasing the value of a random element"), struck
// at scheduled iterations inside scheduled operations.
//
// Three error kinds map to §3's error model:
//
//   - Arithmetic: the output of an operation is perturbed after it executes
//     (an ALU fault during the computation).
//   - Memory: a stored vector is perturbed before the operation consumes it
//     (a DRAM bit flip); the corruption persists.
//   - CacheRegister: the operation consumes a transiently corrupted value
//     while memory retains the correct one (a cache/register bit flip); the
//     corruption is visible only inside a bracketed window. This is the case
//     that defeats the traditional checksum (§2 "Dealing with cache errors").
package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Kind classifies an injected error per the paper's §3 error model.
type Kind int

const (
	// Arithmetic perturbs an operation's output.
	Arithmetic Kind = iota
	// Memory perturbs a stored vector before an operation reads it.
	Memory
	// CacheRegister perturbs the value an operation consumes while leaving
	// the stored vector intact.
	CacheRegister
)

func (k Kind) String() string {
	switch k {
	case Arithmetic:
		return "arithmetic"
	case Memory:
		return "memory"
	case CacheRegister:
		return "cache-register"
	default:
		return "unknown-kind"
	}
}

// Site identifies the operation class an error strikes.
type Site int

const (
	// SiteMVM strikes the matrix-vector multiplication.
	SiteMVM Site = iota
	// SiteVLO strikes a vector linear operation.
	SiteVLO
	// SitePCO strikes the preconditioner solve.
	SitePCO
	// SiteChecksum strikes the carried checksum state of an operation's
	// output instead of the data — an attack on the ABFT machinery itself.
	// The data stays clean; the carried relationship breaks.
	SiteChecksum
	// SiteCheckpoint strikes the checkpoint buffer at snapshot time. The
	// corruption is dormant until a rollback restores it, which is exactly
	// what makes it adversarial: it lands in the recovery path.
	SiteCheckpoint
)

func (s Site) String() string {
	switch s {
	case SiteMVM:
		return "MVM"
	case SiteVLO:
		return "VLO"
	case SitePCO:
		return "PCO"
	case SiteChecksum:
		return "checksum"
	case SiteCheckpoint:
		return "checkpoint"
	default:
		return "unknown-site"
	}
}

// Event schedules one injection.
type Event struct {
	// Iteration is the zero-based solver iteration at which to strike.
	Iteration int
	// Site selects which operation of that iteration is hit.
	Site Site
	// Kind selects the error model.
	Kind Kind
	// Index is the element to corrupt; -1 picks pseudo-randomly.
	Index int
	// Magnitude is the additive error e; 0 selects a default "significant"
	// perturbation scaled to the victim's value. Ignored when BitFlip is
	// set.
	Magnitude float64
	// BitFlip, when set, flips bits of the victim's IEEE-754
	// representation instead of adding Magnitude — the literal "bit flip"
	// of the paper's §3 error model. Bit selects which of the 64 bits
	// (0 = least significant mantissa bit, 62 = top exponent bit, 63 =
	// sign); -1 picks pseudo-randomly inside the [BitLo, BitHi] window.
	BitFlip bool
	// Bit is the bit index for BitFlip events; -1 means random within the
	// window.
	Bit int
	// Bits is the number of distinct bits to flip per struck element
	// (default 1). Bits > 1 is the multi-bit-upset model: a single word
	// takes several flips at once, so the additive error is not a power of
	// two times the victim's ULP.
	Bits int
	// BitLo, BitHi bound (inclusive) the random bit window used when Bit
	// is -1. Both zero selects the legacy numerically-significant window
	// [44, 61] (high mantissa and exponent bits).
	BitLo, BitHi int
	// Count is the number of distinct elements to corrupt (default 1).
	// Count > 1 produces the multiple-error case the triple-checksum
	// cannot correct.
	Count int
	// Burst makes the Count corrupted elements contiguous (wrapping at the
	// vector end) starting from the base index, modelling a corrupted
	// cache line rather than independent strikes.
	Burst bool
}

// Record describes an injection that actually fired.
type Record struct {
	Iteration int
	Site      Site
	Kind      Kind
	Index     int
	Added     float64
}

func (r Record) String() string {
	return fmt.Sprintf("iter %d %s %s elem %d += %g", r.Iteration, r.Site, r.Kind, r.Index, r.Added)
}

// Injector applies scheduled events to vectors as instrumented solvers
// execute. A nil *Injector is valid and injects nothing, so unprotected
// paths need no special-casing.
type Injector struct {
	events []Event
	rng    *rand.Rand
	// Injected records every fault that fired, for assertions in tests and
	// reports in the benchmark harness.
	Injected []Record
	// fired tracks one-shot consumption of each event per rollback-free
	// pass; events re-fire after a rollback revisits their iteration only
	// if Refire is set.
	fired map[int]bool
	// Refire controls whether an event strikes again when a rollback
	// causes its iteration to re-execute. The paper's experiments measure
	// recovery from a fixed set of strikes, so the default is false.
	Refire bool
}

// NewInjector builds an injector for the given events with a deterministic
// random stream for index selection.
func NewInjector(events []Event, seed int64) *Injector {
	return &Injector{
		events: events,
		rng:    rand.New(rand.NewSource(seed)),
		fired:  make(map[int]bool),
	}
}

// matches collects the indices of un-fired events for (iter, site, kind).
func (in *Injector) matches(iter int, site Site, kind Kind) []int {
	if in == nil {
		return nil
	}
	var out []int
	for idx, e := range in.events {
		if e.Iteration == iter && e.Site == site && e.Kind == kind && (in.Refire || !in.fired[idx]) {
			out = append(out, idx)
		}
	}
	return out
}

// flipMask builds the XOR mask for one struck element: Bits distinct bit
// positions, taken from the explicit Bit when set and otherwise drawn from
// the [BitLo, BitHi] window (default: the numerically significant
// high-mantissa/exponent window [44, 61]).
func (in *Injector) flipMask(e Event) uint64 {
	lo, hi := e.BitLo, e.BitHi
	if lo == 0 && hi == 0 {
		lo, hi = 44, 61
	}
	if lo < 0 {
		lo = 0
	}
	if hi > 63 {
		hi = 63
	}
	if lo > hi {
		lo = hi
	}
	nbits := e.Bits
	if nbits < 1 {
		nbits = 1
	}
	var mask uint64
	if e.Bit >= 0 && e.Bit <= 63 {
		mask = 1 << uint(e.Bit)
		nbits--
	}
	if span := hi - lo + 1; nbits > span {
		nbits = span
	}
	for nbits > 0 {
		b := lo + in.rng.Intn(hi-lo+1)
		if mask&(1<<uint(b)) == 0 {
			mask |= 1 << uint(b)
			nbits--
		}
	}
	return mask
}

// perturb corrupts count elements of v for event e and logs the records.
func (in *Injector) perturb(e Event, iter int, v []float64) {
	count := e.Count
	if count < 1 {
		count = 1
	}
	if count > len(v) {
		count = len(v)
	}
	base := e.Index
	if base < 0 || base >= len(v) {
		base = in.rng.Intn(len(v))
	}
	for c := 0; c < count; c++ {
		idx := base
		if c > 0 {
			if e.Burst {
				idx = (base + c) % len(v)
			} else {
				idx = in.rng.Intn(len(v))
			}
		}
		var added float64
		if e.BitFlip {
			old := v[idx]
			v[idx] = math.Float64frombits(math.Float64bits(old) ^ in.flipMask(e))
			added = v[idx] - old
		} else {
			added = e.Magnitude
			//lint:ignore floatcmp Magnitude == 0 is the unset sentinel selecting the default error
			if added == 0 {
				// "Significantly increasing the value": several orders of
				// magnitude above the element scale.
				added = 1e4 * (1 + math.Abs(v[idx]))
			}
			v[idx] += added
		}
		in.Injected = append(in.Injected, Record{
			Iteration: iter, Site: e.Site, Kind: e.Kind, Index: idx, Added: added,
		})
	}
}

// InjectOutput applies pending Arithmetic events for (iter, site) to the
// operation output y and returns the number of corrupted elements.
func (in *Injector) InjectOutput(iter int, site Site, y []float64) int {
	if in == nil {
		return 0
	}
	n := 0
	for _, idx := range in.matches(iter, site, Arithmetic) {
		in.fired[idx] = true
		e := in.events[idx]
		in.perturb(e, iter, y)
		if e.Count > 1 {
			n += e.Count
		} else {
			n++
		}
	}
	return n
}

// InjectMemory applies pending Memory events for (iter, site) to the stored
// vector v (persistently) and returns the number of corrupted elements.
func (in *Injector) InjectMemory(iter int, site Site, v []float64) int {
	if in == nil {
		return 0
	}
	n := 0
	for _, idx := range in.matches(iter, site, Memory) {
		in.fired[idx] = true
		e := in.events[idx]
		in.perturb(e, iter, v)
		if e.Count > 1 {
			n += e.Count
		} else {
			n++
		}
	}
	return n
}

// CacheWindow applies pending CacheRegister events for (iter, site) to v
// and returns a restore function undoing them, modelling a transiently
// corrupted cached value: computations between CacheWindow and restore see
// the corruption; memory (v after restore) does not. The returned function
// is non-nil only when at least one event fired.
func (in *Injector) CacheWindow(iter int, site Site, v []float64) (restore func()) {
	if in == nil {
		return nil
	}
	type undo struct {
		idx int
		old float64
	}
	var undos []undo
	for _, idx := range in.matches(iter, site, CacheRegister) {
		in.fired[idx] = true
		e := in.events[idx]
		before := len(in.Injected)
		in.perturb(e, iter, v)
		for _, rec := range in.Injected[before:] {
			undos = append(undos, undo{rec.Index, v[rec.Index] - rec.Added})
		}
	}
	if len(undos) == 0 {
		return nil
	}
	return func() {
		for _, u := range undos {
			v[u.idx] = u.old
		}
	}
}

// Reset clears the fired state and the injection log so the same injector
// can drive a fresh run.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.fired = make(map[int]bool)
	in.Injected = in.Injected[:0]
}

// Pending reports whether any events have not yet fired.
func (in *Injector) Pending() bool {
	if in == nil {
		return false
	}
	for idx := range in.events {
		if !in.fired[idx] {
			return true
		}
	}
	return false
}
