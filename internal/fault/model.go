package fault

import "fmt"

// The adversarial fault-model matrix. The paper's campaigns (§6.3) strike
// single high-exponent flips into solver vectors — the easy case, where the
// injected error is many orders of magnitude above the round-off threshold
// τ and lands in state the checksums watch directly. The matrix below spans
// the regimes that actually stress a detector: multi-bit and burst upsets,
// flips whose magnitude sits at or below τ, sign- and mantissa-only
// corruption, and strikes aimed at the ABFT machinery itself (the carried
// checksum state and the checkpoint buffers the recovery path depends on).
//
// A Model crossed with a Magnitude yields a concrete event schedule via
// Model.Events; the detection-accuracy harness (internal/accuracy) runs the
// full (solver × scheme × model × magnitude) grid.

// Model enumerates the adversarial fault models.
type Model int

const (
	// ModelSingle is one flipped bit per strike, in the bit window the
	// magnitude class selects — the baseline the paper's campaigns use.
	ModelSingle Model = iota
	// ModelMultiBit flips several distinct bits of one element at once (a
	// multi-bit upset), so the additive error is not a clean power-of-two
	// multiple of the victim's ULP.
	ModelMultiBit
	// ModelBurst corrupts a run of contiguous elements, one flip each —
	// a corrupted cache line rather than an isolated cell. Multiple
	// simultaneous errors defeat single-error correction by design.
	ModelBurst
	// ModelSign flips only the sign bit: the magnitude of the victim is
	// preserved exactly, so amplitude-based sanity checks see nothing.
	ModelSign
	// ModelMantissa flips a mantissa bit only, leaving sign and exponent
	// intact: the error is strictly smaller than the victim itself.
	ModelMantissa
	// ModelChecksum strikes the carried checksum state of an MVM output
	// instead of the data — the vector is clean, its protection is not.
	ModelChecksum
	// ModelCheckpoint strikes the checkpoint buffer as the snapshot is
	// taken. The corruption is dormant until a later fault triggers a
	// rollback, which restores poisoned state — an attack on the recovery
	// machinery itself. Schedule its event at a checkpoint iteration
	// (a multiple of cd) or it never fires.
	ModelCheckpoint
)

// Models returns every fault model, in display order.
func Models() []Model {
	return []Model{ModelSingle, ModelMultiBit, ModelBurst, ModelSign,
		ModelMantissa, ModelChecksum, ModelCheckpoint}
}

func (m Model) String() string {
	switch m {
	case ModelSingle:
		return "single-flip"
	case ModelMultiBit:
		return "multi-bit"
	case ModelBurst:
		return "burst"
	case ModelSign:
		return "sign"
	case ModelMantissa:
		return "mantissa"
	case ModelChecksum:
		return "checksum-state"
	case ModelCheckpoint:
		return "checkpoint-buffer"
	default:
		return "unknown-model"
	}
}

// ParseModel maps a display name back to its Model.
func ParseModel(s string) (Model, error) {
	for _, m := range Models() {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown model %q", s)
}

// AttacksRecovery reports whether the model corrupts recovery state rather
// than live solver state, in which case a campaign must pair it with a
// trigger fault that forces a rollback — on its own the corruption is never
// read.
func (m Model) AttacksRecovery() bool { return m == ModelCheckpoint }

// Magnitude classifies the numerical size of an injected error relative to
// the detection threshold τ. For bit-flip models the class selects the bit
// window the flip is drawn from.
type Magnitude int

const (
	// MagLarge is the easy regime: the error is orders of magnitude above
	// τ (exponent-field flips). Every sound detector must catch these.
	MagLarge Magnitude = iota
	// MagNearTau sits just above the threshold (mid-mantissa flips,
	// relative error roughly 1e-8..1e-4 of the victim): detectable in
	// principle, but competing with the round-off band.
	MagNearTau
	// MagBelowTau sits inside the round-off band (low mantissa bits,
	// relative error below 1e-12): indistinguishable from floating-point
	// noise by any threshold test, and numerically near-harmless — the
	// regime where misses are expected and mostly benign.
	MagBelowTau
)

// Magnitudes returns every magnitude class, in display order.
func Magnitudes() []Magnitude { return []Magnitude{MagLarge, MagNearTau, MagBelowTau} }

func (g Magnitude) String() string {
	switch g {
	case MagLarge:
		return "large"
	case MagNearTau:
		return "near-tau"
	case MagBelowTau:
		return "below-tau"
	default:
		return "unknown-magnitude"
	}
}

// window returns the random-bit window [lo, hi] for this magnitude class.
// mantissaOnly caps the window below the exponent field.
func (g Magnitude) window(mantissaOnly bool) (lo, hi int) {
	switch g {
	case MagNearTau:
		return 28, 40
	case MagBelowTau:
		return 0, 10
	default:
		if mantissaOnly {
			return 44, 51
		}
		return 52, 62
	}
}

// Events builds the event schedule of one strike of model m at magnitude g,
// landing at the given iteration and site. Checksum- and checkpoint-state
// models override the site with their dedicated injection points
// (SiteChecksum rides the arithmetic hook, SiteCheckpoint the memory hook);
// for every other model the strike perturbs the operation output
// (Arithmetic) at a pseudo-random element.
func (m Model) Events(g Magnitude, iter int, site Site) []Event {
	base := Event{Iteration: iter, Site: site, Kind: Arithmetic, Index: -1, BitFlip: true, Bit: -1}
	base.BitLo, base.BitHi = g.window(false)
	if g == MagLarge {
		// Bit 62 guarantees a detectable change for any victim: |v| < 2
		// explodes, |v| ≥ 2 collapses, 0 becomes 2.
		base.Bit, base.BitLo, base.BitHi = 62, 0, 0
	}
	switch m {
	case ModelSingle:
	case ModelMultiBit:
		base.Bits = 3
		if g == MagLarge {
			base.Bit, base.BitLo, base.BitHi = -1, 44, 62
		}
	case ModelBurst:
		base.Count, base.Burst = 4, true
	case ModelSign:
		// The sign flip's error is 2|v| regardless of magnitude class.
		base.Bit, base.BitLo, base.BitHi = 63, 0, 0
	case ModelMantissa:
		base.Bit = -1
		base.BitLo, base.BitHi = g.window(true)
	case ModelChecksum:
		base.Site = SiteChecksum
	case ModelCheckpoint:
		base.Site, base.Kind = SiteCheckpoint, Memory
	}
	return []Event{base}
}
