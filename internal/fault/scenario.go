package fault

import (
	"math/rand"
	"sort"
)

// The paper's §6.2/§6.3 error-rate scenarios, expressed as event schedules.
// All index choices are deterministic given the seed so experiments are
// reproducible run-to-run.

// Scenario1 returns the low-error-rate schedule: one arithmetic error in an
// MVM at a random iteration of the whole execution (I iterations).
func Scenario1(totalIters int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	if totalIters < 1 {
		totalIters = 1
	}
	return []Event{{
		Iteration: rng.Intn(totalIters),
		Site:      SiteMVM,
		Kind:      Arithmetic,
		Index:     -1,
	}}
}

// Scenario2 returns the medium/high-error-rate schedule: one arithmetic
// error in an MVM every cd iterations (at a random offset within each
// checkpoint interval).
func Scenario2(totalIters, cd int, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	if cd < 1 {
		cd = 1
	}
	var events []Event
	for start := 0; start < totalIters; start += cd {
		span := cd
		if start+span > totalIters {
			span = totalIters - start
		}
		events = append(events, Event{
			Iteration: start + rng.Intn(span),
			Site:      SiteMVM,
			Kind:      Arithmetic,
			Index:     -1,
		})
	}
	return events
}

// Scenario3 returns the extreme-error-rate schedule: one arithmetic error
// in the MVM of every iteration. Under this schedule the basic online ABFT
// scheme never terminates (Table 4), which callers must bound with
// MaxRollbacks.
func Scenario3(totalIters int) []Event {
	events := make([]Event, 0, totalIters)
	for i := 0; i < totalIters; i++ {
		events = append(events, Event{
			Iteration: i,
			Site:      SiteMVM,
			Kind:      Arithmetic,
			Index:     -1,
		})
	}
	return events
}

// Arrival selects the inter-arrival distribution of a fault schedule —
// the parameterization the fixed Scenario1–3 schedules lack.
type Arrival int

const (
	// ArrivalUniform lands each strike independently and uniformly over
	// the whole execution.
	ArrivalUniform Arrival = iota
	// ArrivalPoisson draws exponential inter-arrival gaps (a Poisson
	// process with rate k/totalIters), the standard soft-error model.
	ArrivalPoisson
	// ArrivalBurst clusters every strike inside one short window (a tenth
	// of the execution), modelling a transient environmental upset.
	ArrivalBurst
)

func (a Arrival) String() string {
	switch a {
	case ArrivalUniform:
		return "uniform"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalBurst:
		return "burst"
	default:
		return "unknown-arrival"
	}
}

// ArrivalTimes draws k strike iterations in [0, totalIters) from the given
// distribution, sorted ascending. Deterministic for a fixed seed.
func ArrivalTimes(dist Arrival, k, totalIters int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	if totalIters < 1 {
		totalIters = 1
	}
	if k < 1 {
		return nil
	}
	times := make([]int, 0, k)
	switch dist {
	case ArrivalPoisson:
		// Mean gap totalIters/(k+1) places ~k arrivals inside the run;
		// overshoots are clamped to the final iteration.
		mean := float64(totalIters) / float64(k+1)
		t := 0.0
		for i := 0; i < k; i++ {
			t += rng.ExpFloat64() * mean
			it := int(t)
			if it >= totalIters {
				it = totalIters - 1
			}
			times = append(times, it)
		}
	case ArrivalBurst:
		window := totalIters / 10
		if window < 1 {
			window = 1
		}
		start := rng.Intn(totalIters - window + 1)
		for i := 0; i < k; i++ {
			times = append(times, start+rng.Intn(window))
		}
	default: // ArrivalUniform
		for i := 0; i < k; i++ {
			times = append(times, rng.Intn(totalIters))
		}
	}
	sort.Ints(times)
	return times
}

// ModelScenario schedules k strikes of model m at magnitude g against the
// given site, with arrival times drawn from dist — the campaign generator
// the detection-accuracy harness grids over.
func ModelScenario(m Model, g Magnitude, dist Arrival, k, totalIters int, site Site, seed int64) []Event {
	var events []Event
	for _, it := range ArrivalTimes(dist, k, totalIters, seed) {
		events = append(events, m.Events(g, it, site)...)
	}
	return events
}

// MultiError returns the §6.3.3 high-error-rate schedule: k arithmetic
// errors striking MVMs in k distinct checkpoint intervals, plus one error in
// a randomly selected VLO. Fig. 10 uses k ∈ {4, 2, 1}.
func MultiError(k, cd, totalIters int, withVLO bool, seed int64) []Event {
	rng := rand.New(rand.NewSource(seed))
	if cd < 1 {
		cd = 1
	}
	intervals := totalIters / cd
	if intervals < 1 {
		intervals = 1
	}
	if k > intervals {
		k = intervals
	}
	// Choose k distinct intervals.
	perm := rng.Perm(intervals)[:k]
	var events []Event
	for _, iv := range perm {
		lo := iv * cd
		span := cd
		if lo+span > totalIters {
			span = totalIters - lo
		}
		if span < 1 {
			span = 1
		}
		events = append(events, Event{
			Iteration: lo + rng.Intn(span),
			Site:      SiteMVM,
			Kind:      Arithmetic,
			Index:     -1,
		})
	}
	if withVLO && totalIters > 0 {
		events = append(events, Event{
			Iteration: rng.Intn(totalIters),
			Site:      SiteVLO,
			Kind:      Arithmetic,
			Index:     -1,
		})
	}
	return events
}
