package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestCopyAndClone(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	Copy(dst, src)
	if !Equal(dst, src, 0) {
		t.Fatalf("Copy: got %v", dst)
	}
	c := Clone(src)
	c[0] = 99
	if src[0] == 99 {
		t.Fatalf("Clone aliases its input")
	}
}

func TestCopyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Copy(make([]float64, 2), make([]float64, 3))
}

func TestZeroFill(t *testing.T) {
	x := []float64{1, 2, 3}
	Zero(x)
	for _, v := range x {
		if v != 0 {
			t.Fatalf("Zero left %v", x)
		}
	}
	Fill(x, 7)
	for _, v := range x {
		if v != 7 {
			t.Fatalf("Fill left %v", x)
		}
	}
}

func TestScaleAliasing(t *testing.T) {
	x := []float64{1, -2, 3}
	Scale(x, 2, x)
	if !Equal(x, []float64{2, -4, 6}, 0) {
		t.Fatalf("in-place Scale: %v", x)
	}
}

func TestAddSub(t *testing.T) {
	u := []float64{1, 2, 3}
	v := []float64{4, 5, 6}
	w := make([]float64, 3)
	Add(w, u, v)
	if !Equal(w, []float64{5, 7, 9}, 0) {
		t.Fatalf("Add: %v", w)
	}
	Sub(w, v, u)
	if !Equal(w, []float64{3, 3, 3}, 0) {
		t.Fatalf("Sub: %v", w)
	}
}

func TestAxpyAxpbyXpby(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(y, 2, []float64{1, 2, 3})
	if !Equal(y, []float64{3, 5, 7}, 0) {
		t.Fatalf("Axpy: %v", y)
	}
	w := make([]float64, 3)
	Axpby(w, 2, []float64{1, 0, 0}, -1, []float64{0, 1, 0})
	if !Equal(w, []float64{2, -1, 0}, 0) {
		t.Fatalf("Axpby: %v", w)
	}
	Xpby(w, []float64{1, 1, 1}, 3, []float64{1, 2, 3})
	if !Equal(w, []float64{4, 7, 10}, 0) {
		t.Fatalf("Xpby: %v", w)
	}
}

func TestDotSumWeightedSum(t *testing.T) {
	u := []float64{1, 2, 3}
	if got := Dot(u, u); got != 14 {
		t.Fatalf("Dot: %v", got)
	}
	if got := Sum(u); got != 6 {
		t.Fatalf("Sum: %v", got)
	}
	got := WeightedSum(u, func(i int) float64 { return float64(i + 1) })
	if got != 1+4+9 {
		t.Fatalf("WeightedSum: %v", got)
	}
}

func TestNorms(t *testing.T) {
	u := []float64{3, -4}
	if got := Norm2(u); !almostEqual(got, 5, 1e-15) {
		t.Fatalf("Norm2: %v", got)
	}
	if got := NormInf(u); got != 4 {
		t.Fatalf("NormInf: %v", got)
	}
	if got := Norm1(u); got != 7 {
		t.Fatalf("Norm1: %v", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil): %v", got)
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum-of-squares would overflow; the scaled algorithm must not.
	u := []float64{1e200, 1e200}
	got := Norm2(u)
	want := 1e200 * math.Sqrt2
	if math.IsInf(got, 1) || !almostEqual(got, want, 1e-14) {
		t.Fatalf("Norm2 overflow: got %v, want %v", got, want)
	}
}

func TestMaxAbsIndex(t *testing.T) {
	if got := MaxAbsIndex(nil); got != -1 {
		t.Fatalf("MaxAbsIndex(nil): %v", got)
	}
	if got := MaxAbsIndex([]float64{1, -5, 3}); got != 1 {
		t.Fatalf("MaxAbsIndex: %v", got)
	}
}

func TestEqual(t *testing.T) {
	if Equal([]float64{1}, []float64{1, 2}, 1) {
		t.Fatalf("Equal accepted different lengths")
	}
	if !Equal([]float64{1, 2}, []float64{1.0000001, 2}, 1e-3) {
		t.Fatalf("Equal rejected within tolerance")
	}
	if Equal([]float64{1, 2}, []float64{1.1, 2}, 1e-3) {
		t.Fatalf("Equal accepted outside tolerance")
	}
}

// Property: Axpby is linear — the checksum-update algebra of Eq. (3)
// depends on exactly this.
func TestAxpbyLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		m := int(n%32) + 1
		x := make([]float64, m)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		w := make([]float64, m)
		Axpby(w, alpha, x, beta, y)
		// Sum(w) must equal alpha*Sum(x) + beta*Sum(y) up to round-off.
		return almostEqual(Sum(w), alpha*Sum(x)+beta*Sum(y), 1e-12*float64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and Norm2(u)² = Dot(u, u).
func TestDotNormProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		m := int(n%64) + 1
		u := make([]float64, m)
		v := make([]float64, m)
		for i := range u {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		if !almostEqual(Dot(u, v), Dot(v, u), 1e-13) {
			return false
		}
		nrm := Norm2(u)
		return almostEqual(nrm*nrm, Dot(u, u), 1e-12*float64(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAxpy(b *testing.B) {
	x := make([]float64, 100000)
	y := make([]float64, 100000)
	for i := range x {
		x[i] = float64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(y, 0.5, x)
	}
}

func BenchmarkDot(b *testing.B) {
	x := make([]float64, 100000)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var s float64
	for i := 0; i < b.N; i++ {
		s += Dot(x, x)
	}
	_ = s
}
