// Package vec provides the dense vector kernels (the paper's "vector linear
// operations", VLOs) that iterative methods are built from: copy, scale,
// axpy-style updates, dot products and norms.
//
// Every routine is allocation-free and operates on caller-provided slices so
// the solvers in internal/solver and the ABFT schemes in internal/core can
// reuse buffers across iterations. Lengths must match; mismatches panic, as
// they indicate programmer error rather than runtime conditions.
package vec

import "math"

// Copy copies src into dst. It is the VLO assignment w := u.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vec: length mismatch in Copy")
	}
	copy(dst, src)
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Scale computes w := alpha*u element-wise. dst and u may alias.
func Scale(dst []float64, alpha float64, u []float64) {
	if len(dst) != len(u) {
		panic("vec: length mismatch in Scale")
	}
	for i, v := range u {
		dst[i] = alpha * v
	}
}

// Add computes w := u + v element-wise. dst may alias either operand.
func Add(dst, u, v []float64) {
	if len(dst) != len(u) || len(dst) != len(v) {
		panic("vec: length mismatch in Add")
	}
	for i := range dst {
		dst[i] = u[i] + v[i]
	}
}

// Sub computes w := u - v element-wise. dst may alias either operand.
func Sub(dst, u, v []float64) {
	if len(dst) != len(u) || len(dst) != len(v) {
		panic("vec: length mismatch in Sub")
	}
	for i := range dst {
		dst[i] = u[i] - v[i]
	}
}

// Axpy computes y := y + alpha*x, the classic BLAS-1 update.
func Axpy(y []float64, alpha float64, x []float64) {
	if len(y) != len(x) {
		panic("vec: length mismatch in Axpy")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Axpby computes w := alpha*x + beta*y, the general VLO of Eq. (3) in the
// paper. dst may alias x or y.
func Axpby(dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("vec: length mismatch in Axpby")
	}
	for i := range dst {
		dst[i] = alpha*x[i] + beta*y[i]
	}
}

// Xpby computes w := x + beta*y, the search-direction update p = z + beta*p
// used by CG-family methods. dst may alias x or y.
func Xpby(dst, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("vec: length mismatch in Xpby")
	}
	for i := range dst {
		dst[i] = x[i] + beta*y[i]
	}
}

// Reductions (Dot, Sum, WeightedSum, Norm2 and their Abs variants) use
// fixed-block pairwise summation: the vector is cut into blocks of Block
// elements, each block is accumulated left-to-right, and the block partials
// are combined by a balanced pairwise tree. Naive left-to-right accumulation
// has a worst-case error of O(n·ε)·Σ|terms|; at n ≈ 10⁶ that crowds the
// near-τ band the checksum comparison verifies in, inflating false
// positives. The blocked form tightens the bound to O((Block + log n)·ε),
// independent of worker count.
//
// The reduction tree is a pure function of n — NEVER of how the leaves were
// computed — so a parallel evaluation that computes leaf partials with any
// number of workers and combines them with PairwiseSum reproduces the
// serial result bit for bit. internal/kernel relies on this contract; do
// not change the split rule or the leaf accumulation order without updating
// it (and docs/kernels.md) in lockstep.

// Block is the fixed leaf size of every blocked pairwise reduction.
const Block = 128

// Blocks returns the number of reduction blocks covering n elements.
func Blocks(n int) int {
	return (n + Block - 1) / Block
}

// blockBounds returns the element range [lo, hi) of block b in a vector of
// length n.
func blockBounds(n, b int) (lo, hi int) {
	lo = b * Block
	hi = lo + Block
	if hi > n {
		hi = n
	}
	return lo, hi
}

// pairwise combines leaf values over the block-index range [lo, hi) with
// the canonical split rule mid = lo + ceil((hi-lo)/2). PairwiseSum and the
// serial reductions below share this exact tree.
func pairwise(lo, hi int, leaf func(b int) float64) float64 {
	if hi <= lo {
		return 0
	}
	if hi-lo == 1 {
		return leaf(lo)
	}
	mid := lo + (hi-lo+1)/2
	return pairwise(lo, mid, leaf) + pairwise(mid, hi, leaf)
}

// pairwise2 is pairwise for paired accumulators (value, |value|); combining
// the pair in one descent is arithmetically identical to two separate trees.
func pairwise2(lo, hi int, leaf func(b int) (float64, float64)) (float64, float64) {
	if hi <= lo {
		return 0, 0
	}
	if hi-lo == 1 {
		return leaf(lo)
	}
	mid := lo + (hi-lo+1)/2
	s1, a1 := pairwise2(lo, mid, leaf)
	s2, a2 := pairwise2(mid, hi, leaf)
	return s1 + s2, a1 + a2
}

// PairwiseSum combines precomputed block partials with the same tree the
// serial reductions use. kernel workers fill p[b] for disjoint block ranges
// and a single combiner calls this; the result is bitwise-identical to the
// serial reduction for any worker count.
func PairwiseSum(p []float64) float64 {
	return pairwise(0, len(p), func(b int) float64 { return p[b] })
}

// DotBlock returns the naive left-to-right partial of u·v over block b —
// the leaf of the blocked pairwise dot.
func DotBlock(u, v []float64, b int) float64 {
	lo, hi := blockBounds(len(u), b)
	var s float64
	for i := lo; i < hi; i++ {
		s += u[i] * v[i]
	}
	return s
}

// DotAbsBlock returns the block-b partials of u·v and Σ|u_i·v_i| in one
// pass — the leaf of the checksum verifier's (sum, absSum) evaluation.
func DotAbsBlock(u, v []float64, b int) (sum, abs float64) {
	lo, hi := blockBounds(len(u), b)
	for i := lo; i < hi; i++ {
		t := u[i] * v[i]
		sum += t
		abs += math.Abs(t)
	}
	return sum, abs
}

// SumBlock returns the naive partial of Σu_i over block b.
func SumBlock(u []float64, b int) float64 {
	lo, hi := blockBounds(len(u), b)
	var s float64
	for i := lo; i < hi; i++ {
		s += u[i]
	}
	return s
}

// WeightedSumBlock returns the naive partial of Σ w(i)·u_i over block b.
func WeightedSumBlock(u []float64, w func(i int) float64, b int) float64 {
	lo, hi := blockBounds(len(u), b)
	var s float64
	for i := lo; i < hi; i++ {
		s += w(i) * u[i]
	}
	return s
}

// WeightedSumAbsBlock returns the block-b partials of Σ w(i)·u_i and
// Σ|w(i)·u_i| in one pass.
func WeightedSumAbsBlock(u []float64, w func(i int) float64, b int) (sum, abs float64) {
	lo, hi := blockBounds(len(u), b)
	for i := lo; i < hi; i++ {
		t := w(i) * u[i]
		sum += t
		abs += math.Abs(t)
	}
	return sum, abs
}

// Dot returns the inner product u·v (the paper's VDP operation), blocked
// pairwise.
func Dot(u, v []float64) float64 {
	if len(u) != len(v) {
		panic("vec: length mismatch in Dot")
	}
	return pairwise(0, Blocks(len(u)), func(b int) float64 { return DotBlock(u, v, b) })
}

// DotAbs returns u·v and Σ|u_i·v_i| in one blocked pairwise pass — the pair
// the checksum round-off bounds need.
func DotAbs(u, v []float64) (sum, abs float64) {
	if len(u) != len(v) {
		panic("vec: length mismatch in DotAbs")
	}
	return pairwise2(0, Blocks(len(u)), func(b int) (float64, float64) { return DotAbsBlock(u, v, b) })
}

// Sum returns the sum of the elements of u, i.e. the inner product with the
// all-ones checksum vector c1, blocked pairwise.
func Sum(u []float64) float64 {
	return pairwise(0, Blocks(len(u)), func(b int) float64 { return SumBlock(u, b) })
}

// WeightedSum returns sum_i w(i)*u[i] for a functional weight, used by the
// checksum package to evaluate c2 = (1..n) and c3 = (1, 1/2, ..., 1/n)
// inner products without materializing the weight vectors. Blocked pairwise.
func WeightedSum(u []float64, w func(i int) float64) float64 {
	return pairwise(0, Blocks(len(u)), func(b int) float64 { return WeightedSumBlock(u, w, b) })
}

// WeightedSumAbs returns Σ w(i)·u_i and Σ|w(i)·u_i| in one blocked pairwise
// pass — the checksum verification's (measured sum, round-off scale) pair.
func WeightedSumAbs(u []float64, w func(i int) float64) (sum, abs float64) {
	return pairwise2(0, Blocks(len(u)), func(b int) (float64, float64) { return WeightedSumAbsBlock(u, w, b) })
}

// Norm2Block returns block b's (scale, ssq) partial of the overflow-guarded
// Euclidean norm, in the manner of LAPACK's dnrm2: the block's contribution
// is scale·√ssq. An all-zero block reports (0, 1).
func Norm2Block(u []float64, b int) (scale, ssq float64) {
	lo, hi := blockBounds(len(u), b)
	ssq = 1
	for i := lo; i < hi; i++ {
		x := u[i]
		//lint:ignore floatcmp exact-zero sparsity skip only avoids no-op work
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale, ssq
}

// CombineNorm2 merges two (scale, ssq) partials into one, rescaling the
// smaller onto the larger. It is the interior node of the blocked pairwise
// norm; kernel combiners must use it verbatim to reproduce serial results.
func CombineNorm2(s1, q1, s2, q2 float64) (scale, ssq float64) {
	if s1 < s2 {
		s1, q1, s2, q2 = s2, q2, s1, q1
	}
	//lint:ignore floatcmp a zero scale marks an all-zero partial, an exact sentinel
	if s2 == 0 {
		return s1, q1
	}
	r := s2 / s1
	return s1, q1 + q2*r*r
}

// pairwiseNorm2 combines (scale, ssq) leaves over blocks [lo, hi) with the
// canonical split rule.
func pairwiseNorm2(lo, hi int, leaf func(b int) (float64, float64)) (scale, ssq float64) {
	if hi <= lo {
		return 0, 1
	}
	if hi-lo == 1 {
		return leaf(lo)
	}
	mid := lo + (hi-lo+1)/2
	s1, q1 := pairwiseNorm2(lo, mid, leaf)
	s2, q2 := pairwiseNorm2(mid, hi, leaf)
	return CombineNorm2(s1, q1, s2, q2)
}

// PairwiseNorm2 combines precomputed per-block (scale, ssq) partials with
// the serial norm's tree and returns the norm scale·√ssq.
func PairwiseNorm2(scales, ssqs []float64) float64 {
	s, q := pairwiseNorm2(0, len(scales), func(b int) (float64, float64) { return scales[b], ssqs[b] })
	return s * math.Sqrt(q)
}

// Norm2 returns the Euclidean norm of u, guarding against overflow for
// large magnitudes by scaling, in the manner of LAPACK's dnrm2. Blocked
// pairwise, like every other reduction in this package.
func Norm2(u []float64) float64 {
	s, q := pairwiseNorm2(0, Blocks(len(u)), func(b int) (float64, float64) { return Norm2Block(u, b) })
	return s * math.Sqrt(q)
}

// NormInf returns the maximum absolute element of u.
func NormInf(u []float64) float64 {
	var m float64
	for _, x := range u {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute values of u.
func Norm1(u []float64) float64 {
	var s float64
	for _, x := range u {
		s += math.Abs(x)
	}
	return s
}

// MaxAbsIndex returns the index of the element with the largest magnitude,
// or -1 for an empty vector.
func MaxAbsIndex(u []float64) int {
	idx := -1
	var m float64
	for i, x := range u {
		if a := math.Abs(x); idx < 0 || a > m {
			m, idx = a, i
		}
	}
	return idx
}

// Equal reports whether u and v agree element-wise to within tol in absolute
// value. Vectors of different lengths are never equal.
func Equal(u, v []float64, tol float64) bool {
	if len(u) != len(v) {
		return false
	}
	for i := range u {
		if math.Abs(u[i]-v[i]) > tol {
			return false
		}
	}
	return true
}

// Clone returns a freshly allocated copy of u.
func Clone(u []float64) []float64 {
	c := make([]float64, len(u))
	copy(c, u)
	return c
}
