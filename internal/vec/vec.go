// Package vec provides the dense vector kernels (the paper's "vector linear
// operations", VLOs) that iterative methods are built from: copy, scale,
// axpy-style updates, dot products and norms.
//
// Every routine is allocation-free and operates on caller-provided slices so
// the solvers in internal/solver and the ABFT schemes in internal/core can
// reuse buffers across iterations. Lengths must match; mismatches panic, as
// they indicate programmer error rather than runtime conditions.
package vec

import "math"

// Copy copies src into dst. It is the VLO assignment w := u.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("vec: length mismatch in Copy")
	}
	copy(dst, src)
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Scale computes w := alpha*u element-wise. dst and u may alias.
func Scale(dst []float64, alpha float64, u []float64) {
	if len(dst) != len(u) {
		panic("vec: length mismatch in Scale")
	}
	for i, v := range u {
		dst[i] = alpha * v
	}
}

// Add computes w := u + v element-wise. dst may alias either operand.
func Add(dst, u, v []float64) {
	if len(dst) != len(u) || len(dst) != len(v) {
		panic("vec: length mismatch in Add")
	}
	for i := range dst {
		dst[i] = u[i] + v[i]
	}
}

// Sub computes w := u - v element-wise. dst may alias either operand.
func Sub(dst, u, v []float64) {
	if len(dst) != len(u) || len(dst) != len(v) {
		panic("vec: length mismatch in Sub")
	}
	for i := range dst {
		dst[i] = u[i] - v[i]
	}
}

// Axpy computes y := y + alpha*x, the classic BLAS-1 update.
func Axpy(y []float64, alpha float64, x []float64) {
	if len(y) != len(x) {
		panic("vec: length mismatch in Axpy")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Axpby computes w := alpha*x + beta*y, the general VLO of Eq. (3) in the
// paper. dst may alias x or y.
func Axpby(dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("vec: length mismatch in Axpby")
	}
	for i := range dst {
		dst[i] = alpha*x[i] + beta*y[i]
	}
}

// Xpby computes w := x + beta*y, the search-direction update p = z + beta*p
// used by CG-family methods. dst may alias x or y.
func Xpby(dst, x []float64, beta float64, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic("vec: length mismatch in Xpby")
	}
	for i := range dst {
		dst[i] = x[i] + beta*y[i]
	}
}

// Dot returns the inner product u·v (the paper's VDP operation).
func Dot(u, v []float64) float64 {
	if len(u) != len(v) {
		panic("vec: length mismatch in Dot")
	}
	var s float64
	for i, x := range u {
		s += x * v[i]
	}
	return s
}

// Sum returns the sum of the elements of u, i.e. the inner product with the
// all-ones checksum vector c1.
func Sum(u []float64) float64 {
	var s float64
	for _, x := range u {
		s += x
	}
	return s
}

// WeightedSum returns sum_i w(i)*u[i] for a functional weight, used by the
// checksum package to evaluate c2 = (1..n) and c3 = (1, 1/2, ..., 1/n)
// inner products without materializing the weight vectors.
func WeightedSum(u []float64, w func(i int) float64) float64 {
	var s float64
	for i, x := range u {
		s += w(i) * x
	}
	return s
}

// Norm2 returns the Euclidean norm of u, guarding against overflow for
// large magnitudes by scaling, in the manner of LAPACK's dnrm2.
func Norm2(u []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, x := range u {
		//lint:ignore floatcmp exact-zero sparsity skip only avoids no-op work
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of u.
func NormInf(u []float64) float64 {
	var m float64
	for _, x := range u {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute values of u.
func Norm1(u []float64) float64 {
	var s float64
	for _, x := range u {
		s += math.Abs(x)
	}
	return s
}

// MaxAbsIndex returns the index of the element with the largest magnitude,
// or -1 for an empty vector.
func MaxAbsIndex(u []float64) int {
	idx := -1
	var m float64
	for i, x := range u {
		if a := math.Abs(x); idx < 0 || a > m {
			m, idx = a, i
		}
	}
	return idx
}

// Equal reports whether u and v agree element-wise to within tol in absolute
// value. Vectors of different lengths are never equal.
func Equal(u, v []float64, tol float64) bool {
	if len(u) != len(v) {
		return false
	}
	for i := range u {
		if math.Abs(u[i]-v[i]) > tol {
			return false
		}
	}
	return true
}

// Clone returns a freshly allocated copy of u.
func Clone(u []float64) []float64 {
	c := make([]float64, len(u))
	copy(c, u)
	return c
}
