package vec

import (
	"math"
	"math/rand"
	"testing"
)

// naiveSum is the left-to-right accumulation the package used before the
// blocked-pairwise rewrite; kept here as the regression reference.
func naiveSum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

func naiveDot(u, v []float64) float64 {
	var s float64
	for i := range u {
		s += u[i] * v[i]
	}
	return s
}

// illConditioned builds the n = 2²⁰ adversarial input: a +2⁵⁴ spike every
// 2¹⁵ elements with a −2⁵⁴ spike half a period later, each spike followed
// by 127 zeros (so each spike owns one 128-element block by itself), and
// every remaining element exactly 1. It returns the input and the exact
// sum (the count of ones — an integer, so the true value is known without
// any floating-point summation at all).
func illConditioned(n int) (x []float64, exact float64) {
	const period = 1 << 15
	x = make([]float64, n)
	ones := 0
	for i := range x {
		switch {
		case i%period == 0:
			x[i] = math.Ldexp(1, 54)
		case i%period == period/2:
			x[i] = -math.Ldexp(1, 54)
		case i%period < 128 || (i%period >= period/2 && i%period < period/2+128):
			x[i] = 0
		default:
			x[i] = 1
			ones++
		}
	}
	return x, float64(ones)
}

// TestSumIllConditionedRegression pins the accuracy property the blocked
// pairwise rewrite exists for. On this input the spikes cancel exactly in
// the pairwise tree (each one sits alone in its block; partial sums stay
// on multiples of ulp(2⁵⁴)), so Sum must be EXACT. Left-to-right
// accumulation instead absorbs every +1 that arrives while the running
// sum sits at 2⁵⁴ (1 < ulp(2⁵⁴)/2 = 2), losing about half the true sum —
// far more than the 6 significant digits the issue cites.
func TestSumIllConditionedRegression(t *testing.T) {
	const n = 1 << 20
	x, exact := illConditioned(n)

	if got := Sum(x); got != exact {
		t.Fatalf("Sum: got %.17g, want exact %.17g (error %.3e)", got, exact, math.Abs(got-exact))
	}

	naive := naiveSum(x)
	relErr := math.Abs(naive-exact) / exact
	if relErr < 1e-6 {
		t.Fatalf("reference naive sum unexpectedly accurate (rel err %.3e); the regression input has gone stale", relErr)
	}
	t.Logf("naive rel err %.3e (loses %d digits); pairwise exact", relErr, int(-math.Log10(relErr))+16)

	// Dot and WeightedSum route through the same blocked tree: with a
	// unit second operand they must reproduce the exact sum too.
	ones := make([]float64, n)
	Fill(ones, 1)
	if got := Dot(x, ones); got != exact {
		t.Fatalf("Dot(x, 1): got %.17g, want exact %.17g", got, exact)
	}
	if got := WeightedSum(x, func(int) float64 { return 1 }); got != exact {
		t.Fatalf("WeightedSum(x, 1): got %.17g, want exact %.17g", got, exact)
	}
}

// TestPairwiseMatchesNaiveOnBenignInput checks the rewrite did not change
// behavior where naive summation is already fine: on benign random input
// the two accumulations agree to a few ulps of the running magnitude.
func TestPairwiseMatchesNaiveOnBenignInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 127, 128, 129, 1000, 4096, 65537} {
		u := make([]float64, n)
		v := make([]float64, n)
		var absSum float64
		for i := range u {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
			absSum += math.Abs(u[i])
		}
		if got, want := Sum(u), naiveSum(u); math.Abs(got-want) > 1e-12*absSum {
			t.Fatalf("n=%d: Sum %.17g vs naive %.17g", n, got, want)
		}
		if got, want := Dot(u, v), naiveDot(u, v); math.Abs(got-want) > 1e-12*float64(n) {
			t.Fatalf("n=%d: Dot %.17g vs naive %.17g", n, got, want)
		}
	}
}

// TestSumWithinDepthBoundUnderMisalignment: prepending zeros shifts every
// block boundary, so the spikes no longer sit alone in their leaves and
// exact cancellation is off the table. The accuracy contract that remains
// — and that the checksum layer's η bounds are built on — is the
// accumulation-depth bound |err| ≤ (Block + 2 + ⌈log₂ blocks⌉)·ε·Σ|xᵢ|,
// for every alignment. Naive summation violates it by ~12 orders here.
func TestSumWithinDepthBoundUnderMisalignment(t *testing.T) {
	base, exact := illConditioned(1 << 16)
	var absSum float64
	for _, v := range base {
		absSum += math.Abs(v)
	}
	const eps = 0x1p-53
	depth := float64(Block + 2)
	for b := Blocks(1 << 17); b > 1; b = (b + 1) / 2 {
		depth++
	}
	bound := depth * eps * absSum
	for _, pad := range []int{1, 63, 127} {
		x := append(make([]float64, pad), base...) // pad zeros shift alignment
		if got := Sum(x); math.Abs(got-exact) > bound {
			t.Fatalf("pad=%d: got %.17g, want %.17g ± %.3g", pad, got, exact, bound)
		}
	}
}
