// Package sparse implements the sparse-matrix substrate the paper's solvers
// run on: CSR storage, matrix-vector products (the MVM operation), triangular
// solves (used by ILU/IC preconditioners), structural and numerical property
// queries, and generators for the evaluation matrices (a circuit-topology SPD
// matrix standing in for UFL G3_circuit, Laplacians, convection–diffusion).
package sparse

import (
	"fmt"
	"math"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// RowPtr has length Rows+1; the column indices and values of row i occupy
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]]. Column
// indices within a row are sorted ascending, which the triangular solves
// and the diagonal extraction rely on.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// Dims returns the matrix dimensions.
func (a *CSR) Dims() (rows, cols int) { return a.Rows, a.Cols }

// Sparsity returns nnz/n, the paper's c0 parameter (average nonzeros per
// row) used in the Table 4 cost analysis.
func (a *CSR) Sparsity() float64 {
	if a.Rows == 0 {
		return 0
	}
	return float64(a.NNZ()) / float64(a.Rows)
}

// Validate checks the structural invariants of the CSR representation and
// returns a descriptive error on the first violation.
func (a *CSR) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return fmt.Errorf("sparse: negative dimensions %dx%d", a.Rows, a.Cols)
	}
	if len(a.RowPtr) != a.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", a.RowPtr[0])
	}
	if len(a.ColIdx) != len(a.Val) {
		return fmt.Errorf("sparse: ColIdx length %d != Val length %d", len(a.ColIdx), len(a.Val))
	}
	if a.RowPtr[a.Rows] != len(a.Val) {
		return fmt.Errorf("sparse: RowPtr[end] = %d, want nnz %d", a.RowPtr[a.Rows], len(a.Val))
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i] > a.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		prev := -1
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j < 0 || j >= a.Cols {
				return fmt.Errorf("sparse: column %d out of range in row %d", j, i)
			}
			if j <= prev {
				return fmt.Errorf("sparse: columns not strictly ascending in row %d", i)
			}
			prev = j
		}
	}
	return nil
}

// At returns the value at (i, j), which is zero for entries not stored. It
// is O(log nnz(row)) and intended for tests and small matrices, not kernels.
func (a *CSR) At(i, j int) float64 {
	if i < 0 || i >= a.Rows || j < 0 || j >= a.Cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range %dx%d", i, j, a.Rows, a.Cols))
	}
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case a.ColIdx[mid] < j:
			lo = mid + 1
		case a.ColIdx[mid] > j:
			hi = mid
		default:
			return a.Val[mid]
		}
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int, len(a.RowPtr)),
		ColIdx: make([]int, len(a.ColIdx)),
		Val:    make([]float64, len(a.Val)),
	}
	copy(b.RowPtr, a.RowPtr)
	copy(b.ColIdx, a.ColIdx)
	copy(b.Val, a.Val)
	return b
}

// Diag extracts the main diagonal into dst (allocated if nil) and returns it.
// Missing diagonal entries are zero.
func (a *CSR) Diag(dst []float64) []float64 {
	n := a.Rows
	if a.Cols < n {
		n = a.Cols
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	if len(dst) != n {
		panic("sparse: Diag destination length mismatch")
	}
	for i := 0; i < n; i++ {
		dst[i] = 0
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				dst[i] = a.Val[k]
				break
			}
			if a.ColIdx[k] > i {
				break
			}
		}
	}
	return dst
}

// Transpose returns Aᵀ as a new CSR matrix using a two-pass counting
// algorithm, O(nnz + rows + cols).
func (a *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int, a.Cols+1),
		ColIdx: make([]int, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for _, j := range a.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < a.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int, a.Cols)
	copy(next, t.RowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = a.Val[k]
			next[j]++
		}
	}
	return t
}

// MulVec computes y := A·x, the paper's MVM operation. y must not alias x.
func (a *CSR) MulVec(y, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("sparse: dimension mismatch in MulVec")
	}
	for i := 0; i < a.Rows; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecRange computes y[lo:hi] := (A·x)[lo:hi], recomputing only the rows in
// [lo, hi). It is the partial-recomputation primitive the online-MV baseline's
// binary-search localization uses.
func (a *CSR) MulVecRange(y, x []float64, lo, hi int) {
	if lo < 0 || hi > a.Rows || lo > hi {
		panic("sparse: bad row range in MulVecRange")
	}
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("sparse: dimension mismatch in MulVecRange")
	}
	for i := lo; i < hi; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecStride computes y[i] := (A·x)[i] for rows i = start, start+stride,
// start+2·stride, … — a strided partial product. The fault-injection layer
// uses it to model a cache line being present for some rows of an MVM and
// evicted for others.
func (a *CSR) MulVecStride(y, x []float64, start, stride int) {
	if stride < 1 || start < 0 {
		panic("sparse: bad stride in MulVecStride")
	}
	if len(x) != a.Cols || len(y) != a.Rows {
		panic("sparse: dimension mismatch in MulVecStride")
	}
	for i := start; i < a.Rows; i += stride {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulTransVec computes y := Aᵀ·x without materializing the transpose.
// y must not alias x.
func (a *CSR) MulTransVec(y, x []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic("sparse: dimension mismatch in MulTransVec")
	}
	for i := range y {
		y[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		//lint:ignore floatcmp exact-zero sparsity skip only avoids no-op work
		if xi == 0 {
			continue
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			y[a.ColIdx[k]] += a.Val[k] * xi
		}
	}
}

// NormInf returns the induced infinity norm max_i sum_j |a_ij|, the ‖A‖∞
// appearing in the paper's lower bound for the scalar d (Lemma 2).
func (a *CSR) NormInf() float64 {
	var m float64
	for i := 0; i < a.Rows; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += math.Abs(a.Val[k])
		}
		if s > m {
			m = s
		}
	}
	return m
}

// MaxAbs returns the largest magnitude of any stored entry.
func (a *CSR) MaxAbs() float64 {
	var m float64
	for _, v := range a.Val {
		if av := math.Abs(v); av > m {
			m = av
		}
	}
	return m
}

// GershgorinBounds returns enclosing bounds [lo, hi] for the eigenvalues of
// a square matrix from the Gershgorin circle theorem: every eigenvalue lies
// in some disc centred at a_ii with radius Σ_{j≠i}|a_ij|. For SPD matrices
// max(lo, 0⁺) and hi bound the spectrum, which is what the Chebyshev
// semi-iteration needs.
func (a *CSR) GershgorinBounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < a.Rows; i++ {
		var diag, radius float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				diag = a.Val[k]
			} else {
				radius += math.Abs(a.Val[k])
			}
		}
		if d := diag - radius; d < lo {
			lo = d
		}
		if d := diag + radius; d > hi {
			hi = d
		}
	}
	if a.Rows == 0 {
		return 0, 0
	}
	return lo, hi
}

// IsSymmetric reports whether the matrix is numerically symmetric to within
// tol. It requires a square matrix and runs in O(nnz·log nnz/row).
func (a *CSR) IsSymmetric(tol float64) bool {
	if a.Rows != a.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if math.Abs(a.Val[k]-a.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// IsDiagonallyDominant reports whether |a_ii| >= sum_{j!=i} |a_ij| for every
// row, with strict inequality in at least one row.
func (a *CSR) IsDiagonallyDominant() bool {
	if a.Rows != a.Cols {
		return false
	}
	strict := false
	for i := 0; i < a.Rows; i++ {
		var diag, off float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] == i {
				diag = math.Abs(a.Val[k])
			} else {
				off += math.Abs(a.Val[k])
			}
		}
		if diag < off {
			return false
		}
		if diag > off {
			strict = true
		}
	}
	return strict
}

// RowView returns the column indices and values of row i as sub-slices of
// the backing arrays. Callers must not modify the returned slices' lengths.
func (a *CSR) RowView(i int) (cols []int, vals []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// Scale multiplies every stored entry by s in place.
func (a *CSR) Scale(s float64) {
	for i := range a.Val {
		a.Val[i] *= s
	}
}

// Dense returns the dense row-major form of the matrix; intended for tests
// on small systems only.
func (a *CSR) Dense() [][]float64 {
	d := make([][]float64, a.Rows)
	for i := range d {
		d[i] = make([]float64, a.Cols)
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d[i][a.ColIdx[k]] = a.Val[k]
		}
	}
	return d
}
