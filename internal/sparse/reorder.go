package sparse

import (
	"math"
	"sort"
)

// RCM computes the reverse Cuthill–McKee ordering of a structurally
// symmetric matrix: perm[newIndex] = oldIndex. Renumbering with this
// ordering clusters nonzeros near the diagonal, which shrinks triangular-
// solve fill paths and improves ILU(0)/IC(0) quality — the standard
// bandwidth-reduction preprocessing for the circuit-style matrices the
// paper evaluates on.
//
// Disconnected components are handled by restarting the BFS from the
// lowest-degree unvisited vertex.
func RCM(a *CSR) []int {
	n := a.Rows
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	degree := make([]int, n)
	for i := 0; i < n; i++ {
		degree[i] = a.RowPtr[i+1] - a.RowPtr[i]
	}

	// Vertices sorted by degree, used to pick pseudo-peripheral starts.
	byDegree := make([]int, n)
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.Slice(byDegree, func(x, y int) bool { return degree[byDegree[x]] < degree[byDegree[y]] })

	queue := make([]int, 0, n)
	neighbors := make([]int, 0, 16)
	for _, start := range byDegree {
		if visited[start] {
			continue
		}
		visited[start] = true
		queue = append(queue[:0], start)
		perm = append(perm, start)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			neighbors = neighbors[:0]
			for k := a.RowPtr[u]; k < a.RowPtr[u+1]; k++ {
				v := a.ColIdx[k]
				if v < n && !visited[v] {
					visited[v] = true
					neighbors = append(neighbors, v)
				}
			}
			// Cuthill–McKee visits neighbors in increasing degree order.
			sort.Slice(neighbors, func(x, y int) bool {
				return degree[neighbors[x]] < degree[neighbors[y]]
			})
			queue = append(queue, neighbors...)
			perm = append(perm, neighbors...)
		}
	}
	// Reverse for RCM.
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// Permute returns P·A·Pᵀ for the symmetric permutation perm
// (perm[new] = old): row and column i of the result are row and column
// perm[i] of a.
func (a *CSR) Permute(perm []int) *CSR {
	n := a.Rows
	if len(perm) != n || a.Cols != n {
		panic("sparse: Permute needs a square matrix and a full permutation")
	}
	inv := make([]int, n)
	for newI, oldI := range perm {
		inv[oldI] = newI
	}
	c := NewCOO(n, n)
	for newI, oldI := range perm {
		cols, vals := a.RowView(oldI)
		for k, oldJ := range cols {
			c.Add(newI, inv[oldJ], vals[k])
		}
	}
	return c.ToCSR()
}

// PermuteVec returns the vector renumbered by perm: out[new] = x[perm[new]].
func PermuteVec(x []float64, perm []int) []float64 {
	out := make([]float64, len(x))
	for newI, oldI := range perm {
		out[newI] = x[oldI]
	}
	return out
}

// UnpermuteVec inverts PermuteVec: out[perm[new]] = x[new].
func UnpermuteVec(x []float64, perm []int) []float64 {
	out := make([]float64, len(x))
	for newI, oldI := range perm {
		out[oldI] = x[newI]
	}
	return out
}

// Bandwidth returns max |i−j| over stored entries, the quantity RCM
// minimizes heuristically.
func (a *CSR) Bandwidth() int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			d := i - a.ColIdx[k]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

// DiagonalScaling returns s with s_i = 1/√|a_ii| and the symmetrically
// equilibrated matrix D·A·D (D = diag(s)), whose diagonal is ±1. For
// matrices with wildly varying conductances (the circuit workload) this
// compresses the dynamic range the checksum round-off bounds see.
func (a *CSR) DiagonalScaling() (scaled *CSR, s []float64) {
	n := a.Rows
	s = make([]float64, n)
	diag := a.Diag(nil)
	for i, dv := range diag {
		//lint:ignore floatcmp a zero diagonal cannot be scaled; structural test on exact input data
		if dv == 0 {
			s[i] = 1
			continue
		}
		if dv < 0 {
			dv = -dv
		}
		s[i] = 1 / math.Sqrt(dv)
	}
	out := a.Clone()
	for i := 0; i < n; i++ {
		for k := out.RowPtr[i]; k < out.RowPtr[i+1]; k++ {
			out.Val[k] *= s[i] * s[out.ColIdx[k]]
		}
	}
	return out, s
}
