package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSR builds a random matrix through the COO path for property tests.
func randomCSR(rng *rand.Rand, rows, cols, nnz int) *CSR {
	c := NewCOO(rows, cols)
	for k := 0; k < nnz; k++ {
		c.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	return c.ToCSR()
}

func denseMulVec(d [][]float64, x []float64) []float64 {
	y := make([]float64, len(d))
	for i, row := range d {
		for j, v := range row {
			y[i] += v * x[j]
		}
	}
	return y
}

func TestCOOToCSRSumsDuplicates(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 1, 1.5)
	c.Add(0, 1, 2.5)
	c.Add(1, 0, -1)
	a := c.ToCSR()
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := a.At(0, 1); got != 4 {
		t.Fatalf("duplicate sum: got %v", got)
	}
	if a.NNZ() != 2 {
		t.Fatalf("nnz: got %d", a.NNZ())
	}
}

func TestCOOAddSym(t *testing.T) {
	c := NewCOO(3, 3)
	c.AddSym(0, 1, 2)
	c.AddSym(2, 2, 5)
	a := c.ToCSR()
	if a.At(0, 1) != 2 || a.At(1, 0) != 2 {
		t.Fatalf("AddSym off-diagonal not mirrored")
	}
	if a.At(2, 2) != 5 {
		t.Fatalf("AddSym diagonal duplicated")
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestValidateCatchesCorruption(t *testing.T) {
	a := Laplacian2D(3, 3)
	if err := a.Validate(); err != nil {
		t.Fatalf("healthy matrix: %v", err)
	}
	bad := a.Clone()
	bad.ColIdx[0] = 99
	if err := bad.Validate(); err == nil {
		t.Fatalf("out-of-range column not caught")
	}
	bad2 := a.Clone()
	bad2.RowPtr[1] = bad2.RowPtr[2] + 1
	if err := bad2.Validate(); err == nil {
		t.Fatalf("non-monotone RowPtr not caught")
	}
}

func TestAtAndDense(t *testing.T) {
	a := Tridiag(4, -1, 2, -1)
	d := a.Dense()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if a.At(i, j) != d[i][j] {
				t.Fatalf("At(%d,%d)=%v, dense %v", i, j, a.At(i, j), d[i][j])
			}
		}
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomCSR(rng, 17, 13, 60)
	x := make([]float64, 13)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 17)
	a.MulVec(y, x)
	want := denseMulVec(a.Dense(), x)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d]=%v, want %v", i, y[i], want[i])
		}
	}
}

func TestMulVecRangeAndStride(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomCSR(rng, 20, 20, 80)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := make([]float64, 20)
	a.MulVec(want, x)

	got := make([]float64, 20)
	a.MulVecRange(got, x, 0, 7)
	a.MulVecRange(got, x, 7, 20)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("MulVecRange[%d]=%v, want %v", i, got[i], want[i])
		}
	}

	got2 := make([]float64, 20)
	a.MulVecStride(got2, x, 0, 2)
	a.MulVecStride(got2, x, 1, 2)
	for i := range got2 {
		if got2[i] != want[i] {
			t.Fatalf("MulVecStride[%d]=%v, want %v", i, got2[i], want[i])
		}
	}
}

func TestMulTransVecMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomCSR(rng, 11, 19, 70)
	x := make([]float64, 11)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, 19)
	a.MulTransVec(y1, x)
	y2 := make([]float64, 19)
	a.Transpose().MulVec(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("MulTransVec[%d]=%v, transpose %v", i, y1[i], y2[i])
		}
	}
}

// Property: transposing twice is the identity.
func TestTransposeInvolutionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCSR(r, 5+r.Intn(20), 5+r.Intn(20), 40)
		tt := a.Transpose().Transpose()
		if tt.Rows != a.Rows || tt.Cols != a.Cols || tt.NNZ() != a.NNZ() {
			return false
		}
		for i := 0; i < a.Rows; i++ {
			ca, va := a.RowView(i)
			cb, vb := tt.RowView(i)
			if len(ca) != len(cb) {
				return false
			}
			for k := range ca {
				if ca[k] != cb[k] || va[k] != vb[k] {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDiag(t *testing.T) {
	a := Laplacian2D(3, 3)
	d := a.Diag(nil)
	for i, v := range d {
		if v != 4 {
			t.Fatalf("diag[%d]=%v, want 4", i, v)
		}
	}
}

func TestNormInfAndMaxAbs(t *testing.T) {
	a := Tridiag(5, -1, 2, -1)
	if got := a.NormInf(); got != 4 {
		t.Fatalf("NormInf: %v", got)
	}
	if got := a.MaxAbs(); got != 2 {
		t.Fatalf("MaxAbs: %v", got)
	}
}

func TestSymmetryChecks(t *testing.T) {
	if !Laplacian2D(4, 4).IsSymmetric(0) {
		t.Fatalf("Laplacian should be symmetric")
	}
	if ConvectionDiffusion2D(4, 4, 10).IsSymmetric(1e-14) {
		t.Fatalf("convection-diffusion should be unsymmetric")
	}
	if !DiagDominant(50, 4, 1).IsDiagonallyDominant() {
		t.Fatalf("DiagDominant generator not diagonally dominant")
	}
}

func TestScaleAndClone(t *testing.T) {
	a := Tridiag(3, -1, 2, -1)
	b := a.Clone()
	b.Scale(2)
	if a.At(0, 0) != 2 || b.At(0, 0) != 4 {
		t.Fatalf("Scale affected the original or missed the clone")
	}
}

func TestSparsity(t *testing.T) {
	a := Identity(10)
	if got := a.Sparsity(); got != 1 {
		t.Fatalf("identity sparsity: %v", got)
	}
}

func TestRowView(t *testing.T) {
	a := Tridiag(3, -1, 2, -1)
	cols, vals := a.RowView(1)
	if len(cols) != 3 || cols[0] != 0 || cols[1] != 1 || cols[2] != 2 {
		t.Fatalf("RowView cols: %v", cols)
	}
	if vals[1] != 2 {
		t.Fatalf("RowView vals: %v", vals)
	}
}

func TestGershgorinBounds(t *testing.T) {
	// Tridiag(-1,2,-1) eigenvalues lie in (0, 4); Gershgorin gives [0, 4].
	a := Tridiag(10, -1, 2, -1)
	lo, hi := a.GershgorinBounds()
	if lo != 0 || hi != 4 {
		t.Fatalf("Gershgorin: [%v, %v], want [0, 4]", lo, hi)
	}
	// Identity: both bounds 1.
	lo, hi = Identity(5).GershgorinBounds()
	if lo != 1 || hi != 1 {
		t.Fatalf("identity bounds: [%v, %v]", lo, hi)
	}
	// Bounds must truly enclose xᵀAx/xᵀx for random x (Rayleigh quotients).
	b := Laplacian2D(6, 6)
	blo, bhi := b.GershgorinBounds()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, b.Rows)
		var xx float64
		for i := range x {
			x[i] = rng.NormFloat64()
			xx += x[i] * x[i]
		}
		y := make([]float64, b.Rows)
		b.MulVec(y, x)
		var xay float64
		for i := range x {
			xay += x[i] * y[i]
		}
		q := xay / xx
		if q < blo-1e-9 || q > bhi+1e-9 {
			t.Fatalf("Rayleigh quotient %v outside Gershgorin [%v, %v]", q, blo, bhi)
		}
	}
}
