package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestRCMIsAPermutation(t *testing.T) {
	a := CircuitLike(400, 3)
	perm := RCM(a)
	if len(perm) != a.Rows {
		t.Fatalf("perm length %d", len(perm))
	}
	seen := make([]bool, a.Rows)
	for _, p := range perm {
		if p < 0 || p >= a.Rows || seen[p] {
			t.Fatalf("not a permutation at %d", p)
		}
		seen[p] = true
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A randomly permuted banded matrix: RCM should recover a small
	// bandwidth.
	base := Tridiag(200, -1, 2, -1)
	rng := rand.New(rand.NewSource(4))
	shuffle := rng.Perm(200)
	scrambled := base.Permute(shuffle)
	if scrambled.Bandwidth() <= 10 {
		t.Skip("shuffle did not scramble the band")
	}
	perm := RCM(scrambled)
	restored := scrambled.Permute(perm)
	if restored.Bandwidth() >= scrambled.Bandwidth()/2 {
		t.Fatalf("RCM bandwidth %d not much below scrambled %d",
			restored.Bandwidth(), scrambled.Bandwidth())
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	a := Laplacian2D(5, 5)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(a.Rows)
	b := a.Permute(perm)
	// Check a sample of entries: b[new_i][new_j] == a[perm[new_i]][perm[new_j]].
	inv := make([]int, a.Rows)
	for newI, oldI := range perm {
		inv[oldI] = newI
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.RowView(i)
		for k, j := range cols {
			if got := b.At(inv[i], inv[j]); got != vals[k] {
				t.Fatalf("permute mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Vector permutation round trip.
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i)
	}
	back := UnpermuteVec(PermuteVec(x, perm), perm)
	for i := range x {
		if back[i] != x[i] {
			t.Fatalf("vector permute round trip broke at %d", i)
		}
	}
}

func TestPermutedSolveEquivalence(t *testing.T) {
	// Solving the permuted system must give the permuted solution:
	// (PAPᵀ)(Px) = Pb.
	a := Laplacian2D(6, 6)
	rng := rand.New(rand.NewSource(8))
	perm := rng.Perm(a.Rows)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ap := a.Permute(perm)
	x := make([]float64, a.Rows)
	xp := make([]float64, a.Rows)
	a.MulVec(x, b) // x = A b
	ap.MulVec(xp, PermuteVec(b, perm))
	want := PermuteVec(x, perm)
	for i := range xp {
		if math.Abs(xp[i]-want[i]) > 1e-12 {
			t.Fatalf("permuted product differs at %d", i)
		}
	}
}

func TestDiagonalScaling(t *testing.T) {
	a := CircuitLike(400, 9)
	scaled, s := a.DiagonalScaling()
	if len(s) != a.Rows {
		t.Fatalf("scale length")
	}
	d := scaled.Diag(nil)
	for i, v := range d {
		if math.Abs(math.Abs(v)-1) > 1e-12 {
			t.Fatalf("scaled diagonal[%d] = %v, want ±1", i, v)
		}
	}
	// Symmetry preserved.
	if !scaled.IsSymmetric(1e-12) {
		t.Fatalf("scaling broke symmetry")
	}
}

func TestBandwidth(t *testing.T) {
	if bw := Tridiag(10, -1, 2, -1).Bandwidth(); bw != 1 {
		t.Fatalf("tridiag bandwidth %d", bw)
	}
	if bw := Identity(5).Bandwidth(); bw != 0 {
		t.Fatalf("identity bandwidth %d", bw)
	}
}
