package sparse

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The kernel layer's parallel SpMV is built on one property: because
// MulVec computes each row independently, any partition of the row space
// into MulVecRange tiles (or MulVecStride combs) composes to a result
// that is bitwise-identical to the single MulVec call — not merely close.
// This is what makes nnz-balanced chunking free of determinism cost. The
// property test here exercises random partitions, including empty and
// single-row tiles, on matrices with empty rows, dense rows, and extreme
// value magnitudes.

// bitsEqual reports a[i] and b[i] identical as IEEE-754 bit patterns.
func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// randomPartition draws a sorted list of cut points 0 = c₀ ≤ … ≤ cₖ = rows;
// duplicates produce empty tiles on purpose (lo == hi is a valid range).
func randomPartition(rng *rand.Rand, rows, tiles int) []int {
	cuts := make([]int, tiles+1)
	for i := 1; i < tiles; i++ {
		cuts[i] = rng.Intn(rows + 1)
	}
	cuts[tiles] = rows
	sort.Ints(cuts)
	return cuts
}

// adversarialCSR stacks the structures that break naive tiling schemes:
// empty rows, one dense row, huge/tiny magnitudes mixed per row.
func adversarialCSR(rng *rand.Rand, rows, cols int) *CSR {
	c := NewCOO(rows, cols)
	for i := 0; i < rows; i++ {
		if i%7 == 3 {
			continue // empty row
		}
		nnz := 1 + rng.Intn(6)
		if i == rows/2 {
			nnz = cols // one dense row skews nnz balance
		}
		for k := 0; k < nnz; k++ {
			v := rng.NormFloat64() * math.Exp2(float64(rng.Intn(60)-30))
			c.Add(i, rng.Intn(cols), v)
		}
	}
	return c.ToCSR()
}

func TestMulVecRangeTilesComposeBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(200)
		cols := 1 + rng.Intn(200)
		a := adversarialCSR(rng, rows, cols)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Exp2(float64(rng.Intn(40)-20))
		}
		want := make([]float64, rows)
		a.MulVec(want, x)

		tiles := 1 + rng.Intn(rows+3) // may exceed rows: forces empty tiles
		cuts := randomPartition(rng, rows, tiles)
		got := make([]float64, rows)
		for i := range got {
			got[i] = math.NaN() // any row a tile misses must be caught
		}
		for k := 0; k+1 < len(cuts); k++ {
			a.MulVecRange(got, x, cuts[k], cuts[k+1])
		}
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("trial %d cuts %v: row %d = %x, MulVec %x",
				trial, cuts, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

func TestMulVecStrideCombsComposeBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 30; trial++ {
		rows := 1 + rng.Intn(150)
		cols := 1 + rng.Intn(150)
		a := adversarialCSR(rng, rows, cols)
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make([]float64, rows)
		a.MulVec(want, x)

		stride := 1 + rng.Intn(rows+2) // may exceed rows: trailing combs empty
		got := make([]float64, rows)
		for i := range got {
			got[i] = math.NaN()
		}
		for start := 0; start < stride; start++ {
			a.MulVecStride(got, x, start, stride)
		}
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("trial %d stride %d: row %d = %x, MulVec %x",
				trial, stride, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestRangeAndStrideAgree closes the triangle: a range tiling and a stride
// combing of the same operator agree bitwise with each other (not just
// with MulVec), so the engine may mix the two access patterns — the cache
// fault-model path uses strides, the kernel pool uses ranges — without
// perturbing a single bit.
func TestRangeAndStrideAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := adversarialCSR(rng, 97, 97)
	x := make([]float64, 97)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	byRange := make([]float64, 97)
	for _, cut := range [][2]int{{0, 13}, {13, 13}, {13, 60}, {60, 97}} {
		a.MulVecRange(byRange, x, cut[0], cut[1])
	}
	byStride := make([]float64, 97)
	for s := 0; s < 5; s++ {
		a.MulVecStride(byStride, x, s, 5)
	}
	if i, ok := bitsEqual(byRange, byStride); !ok {
		t.Fatalf("row %d: range %x vs stride %x", i, math.Float64bits(byRange[i]), math.Float64bits(byStride[i]))
	}
}
