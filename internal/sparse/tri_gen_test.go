package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveLowerUpper(t *testing.T) {
	// L = [[2,0],[1,3]], U = Lᵀ.
	lc := NewCOO(2, 2)
	lc.Add(0, 0, 2)
	lc.Add(1, 0, 1)
	lc.Add(1, 1, 3)
	l := lc.ToCSR()

	x := make([]float64, 2)
	if err := l.SolveLower(x, []float64{4, 11}, false); err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("SolveLower: %v", x)
	}

	u := l.Transpose()
	if err := u.SolveUpper(x, []float64{7, 9}); err != nil {
		t.Fatal(err)
	}
	// U = [[2,1],[0,3]]: x1 = 3, x0 = (7-3)/2 = 2.
	if math.Abs(x[0]-2) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("SolveUpper: %v", x)
	}
}

func TestSolveLowerUnitDiag(t *testing.T) {
	lc := NewCOO(2, 2)
	lc.Add(1, 0, 5)
	lc.Add(0, 0, 1) // stored diagonal should be ignored with unitDiag
	lc.Add(1, 1, 9)
	l := lc.ToCSR()
	x := make([]float64, 2)
	if err := l.SolveLower(x, []float64{1, 7}, true); err != nil {
		t.Fatal(err)
	}
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("unit-diag SolveLower: %v", x)
	}
}

func TestSolveInPlaceAliasing(t *testing.T) {
	l := Tridiag(5, -1, 2, 0).LowerTriangle()
	b := []float64{1, 2, 3, 4, 5}
	want := make([]float64, 5)
	if err := l.SolveLower(want, b, false); err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), b...)
	if err := l.SolveLower(x, x, false); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("aliased solve differs at %d: %v vs %v", i, x[i], want[i])
		}
	}
}

func TestSolveZeroDiagonalError(t *testing.T) {
	c := NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 0, 1) // no (1,1) entry
	l := c.ToCSR()
	x := make([]float64, 2)
	if err := l.SolveLower(x, []float64{1, 1}, false); err == nil {
		t.Fatalf("expected zero-diagonal error")
	}
	if err := l.SolveUpper(x, []float64{1, 1}); err == nil {
		t.Fatalf("expected zero-diagonal error in upper solve")
	}
}

func TestTriangleSplit(t *testing.T) {
	a := Laplacian2D(3, 3)
	lo := a.LowerTriangle()
	up := a.UpperTriangle()
	// Every entry must appear in exactly one triangle (diagonal in both).
	if lo.NNZ()+up.NNZ() != a.NNZ()+a.Rows {
		t.Fatalf("triangles: %d + %d vs %d + %d", lo.NNZ(), up.NNZ(), a.NNZ(), a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			want := a.At(i, j)
			got := 0.0
			if j <= i {
				got += lo.At(i, j)
			}
			if j >= i {
				got += up.At(i, j)
			}
			if j == i {
				got /= 2 // diagonal counted twice
			}
			if got != want {
				t.Fatalf("(%d,%d): got %v want %v", i, j, got, want)
			}
		}
	}
}

func TestSubMatrix(t *testing.T) {
	a := Laplacian2D(4, 4)
	s := a.SubMatrix(4, 12)
	if s.Rows != 8 || s.Cols != 8 {
		t.Fatalf("SubMatrix dims: %dx%d", s.Rows, s.Cols)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if s.At(i, j) != a.At(i+4, j+4) {
				t.Fatalf("SubMatrix (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestLaplacianProperties(t *testing.T) {
	a := Laplacian2D(5, 7)
	if a.Rows != 35 {
		t.Fatalf("order: %d", a.Rows)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(0) {
		t.Fatalf("not symmetric")
	}
	a3 := Laplacian3D(3, 4, 5)
	if a3.Rows != 60 || !a3.IsSymmetric(0) {
		t.Fatalf("3D Laplacian broken")
	}
	// Interior row sums are zero, boundary rows positive: weak diagonal
	// dominance.
	if !a.IsDiagonallyDominant() {
		t.Fatalf("Laplacian should be (weakly) diagonally dominant")
	}
}

func TestCircuitLikeProperties(t *testing.T) {
	a := CircuitLike(2500, 42)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Rows != 2500 {
		t.Fatalf("order: %d", a.Rows)
	}
	if !a.IsSymmetric(1e-12) {
		t.Fatalf("circuit matrix must be symmetric")
	}
	// Weighted-Laplacian-plus-positive-shift construction ⇒ SPD; check a
	// necessary condition cheaply: positive diagonal and xᵀAx > 0 for
	// random x.
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, a.Rows)
	for trial := 0; trial < 5; trial++ {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, a.Rows)
		a.MulVec(y, x)
		var q float64
		for i := range x {
			q += x[i] * y[i]
		}
		if q <= 0 {
			t.Fatalf("xᵀAx = %v <= 0; not positive definite", q)
		}
	}
	// Density in the G3_circuit ballpark (4.83 nnz/row).
	if c0 := a.Sparsity(); c0 < 3 || c0 > 7 {
		t.Fatalf("sparsity %v out of circuit-like range", c0)
	}
	// Determinism.
	b := CircuitLike(2500, 42)
	if b.NNZ() != a.NNZ() || b.At(0, 0) != a.At(0, 0) {
		t.Fatalf("CircuitLike not deterministic for fixed seed")
	}
}

func TestConvectionDiffusionUpwind(t *testing.T) {
	a := ConvectionDiffusion2D(10, 10, 20)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Upwinding keeps rows diagonally dominant, guaranteeing solvability.
	if !a.IsDiagonallyDominant() {
		t.Fatalf("upwind discretization should be diagonally dominant")
	}
}

func TestSPDRandomAndTridiag(t *testing.T) {
	a := SPDRandom(100, 3, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(1e-12) {
		t.Fatalf("SPDRandom not symmetric")
	}
	tri := Tridiag(5, -1, 2, -1)
	if tri.NNZ() != 13 {
		t.Fatalf("Tridiag nnz: %d", tri.NNZ())
	}
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := make([]float64, 4)
	id.MulVec(y, x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec: %v", y)
		}
	}
}

func BenchmarkSpMVCircuit(b *testing.B) {
	a := CircuitLike(40000, 1)
	x := make([]float64, a.Rows)
	for i := range x {
		x[i] = float64(i % 17)
	}
	y := make([]float64, a.Rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(y, x)
	}
}

func BenchmarkTransposeCircuit(b *testing.B) {
	a := CircuitLike(40000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Transpose()
	}
}
