package sparse

import (
	"math"
	"math/rand"
)

// Laplacian2D returns the 5-point finite-difference Laplacian on an nx×ny
// grid: a sparse, symmetric positive-definite matrix of order nx·ny with
// 4 on the diagonal and -1 couplings to grid neighbours. It is the standard
// well-conditioned SPD test problem for CG-family solvers.
func Laplacian2D(nx, ny int) *CSR {
	if nx < 1 || ny < 1 {
		panic("sparse: Laplacian2D needs positive grid dimensions")
	}
	n := nx * ny
	c := NewCOO(n, n)
	idx := func(i, j int) int { return i*ny + j }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := idx(i, j)
			c.Add(r, r, 4)
			if i > 0 {
				c.Add(r, idx(i-1, j), -1)
			}
			if i < nx-1 {
				c.Add(r, idx(i+1, j), -1)
			}
			if j > 0 {
				c.Add(r, idx(i, j-1), -1)
			}
			if j < ny-1 {
				c.Add(r, idx(i, j+1), -1)
			}
		}
	}
	return c.ToCSR()
}

// Laplacian3D returns the 7-point finite-difference Laplacian on an
// nx×ny×nz grid (diagonal 6, neighbour couplings -1), SPD of order nx·ny·nz.
func Laplacian3D(nx, ny, nz int) *CSR {
	if nx < 1 || ny < 1 || nz < 1 {
		panic("sparse: Laplacian3D needs positive grid dimensions")
	}
	n := nx * ny * nz
	c := NewCOO(n, n)
	idx := func(i, j, k int) int { return (i*ny+j)*nz + k }
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			for k := 0; k < nz; k++ {
				r := idx(i, j, k)
				c.Add(r, r, 6)
				if i > 0 {
					c.Add(r, idx(i-1, j, k), -1)
				}
				if i < nx-1 {
					c.Add(r, idx(i+1, j, k), -1)
				}
				if j > 0 {
					c.Add(r, idx(i, j-1, k), -1)
				}
				if j < ny-1 {
					c.Add(r, idx(i, j+1, k), -1)
				}
				if k > 0 {
					c.Add(r, idx(i, j, k-1), -1)
				}
				if k < nz-1 {
					c.Add(r, idx(i, j, k+1), -1)
				}
			}
		}
	}
	return c.ToCSR()
}

// CircuitLike generates a synthetic SPD matrix with the character of the
// paper's G3_circuit input (a circuit-simulation conductance matrix from the
// UFL Sparse Matrix Collection): an irregular nearest-neighbour topology —
// a 2D grid of nodes with a sprinkling of longer-range "wire" connections —
// assembled as a weighted graph Laplacian plus a positive diagonal shift,
// which is symmetric positive definite by construction. The resulting
// density is ≈4.8 nonzeros per row, matching G3_circuit's 7.66M nnz over
// 1.59M rows.
//
// n is the desired order (rounded down to a perfect square); seed makes the
// generation reproducible.
func CircuitLike(n int, seed int64) *CSR {
	if n < 4 {
		panic("sparse: CircuitLike needs n >= 4")
	}
	side := int(math.Sqrt(float64(n)))
	n = side * side
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n)
	diag := make([]float64, n)
	idx := func(i, j int) int { return i*side + j }

	addEdge := func(u, v int, w float64) {
		c.Add(u, v, -w)
		c.Add(v, u, -w)
		diag[u] += w
		diag[v] += w
	}

	// Grid "traces": conductances on a 2D lattice. Real circuit
	// conductances span orders of magnitude (wire widths, contact
	// resistances), so weights are log-uniform over [1e-2, 1e2] — the
	// spread drives the conditioning. A fraction of broken links mimics
	// irregular layouts.
	logW := func() float64 { return math.Exp(math.Log(1e-2) + rng.Float64()*math.Log(1e4)) }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			u := idx(i, j)
			if j+1 < side && rng.Float64() > 0.06 {
				addEdge(u, idx(i, j+1), logW())
			}
			if i+1 < side && rng.Float64() > 0.06 {
				addEdge(u, idx(i+1, j), logW())
			}
		}
	}
	// Long-range "vias/wires": a sprinkling of random pairs, roughly 0.05
	// per node. Kept sparse so the graph diameter — and hence the
	// conditioning — stays grid-like rather than small-world.
	wires := int(0.05 * float64(n))
	for w := 0; w < wires; w++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		addEdge(u, v, logW())
	}
	// Grounding: as in real circuit matrices, only a small fraction of
	// nodes tie to the supply rails with real conductances; everything
	// else gets a tiny leakage floor that keeps the matrix strictly
	// positive definite. The weak grounding reproduces G3_circuit's
	// conditioning — PCG at 1e-8 takes hundreds of iterations, not dozens.
	for u := 0; u < n; u++ {
		g := 1e-8
		if rng.Float64() < 0.002 {
			g = 0.5 + rng.Float64()
		}
		c.Add(u, u, diag[u]+g)
	}
	return c.ToCSR()
}

// ConvectionDiffusion2D returns the 5-point upwind discretization of
// -Δu + β·∇u on an nx×ny grid. For β ≠ 0 the matrix is unsymmetric, which is
// the regime the paper exercises with PBiCGSTAB (§6). beta controls the
// convection strength; beta = 0 reduces to the symmetric Laplacian.
func ConvectionDiffusion2D(nx, ny int, beta float64) *CSR {
	if nx < 1 || ny < 1 {
		panic("sparse: ConvectionDiffusion2D needs positive grid dimensions")
	}
	n := nx * ny
	h := 1.0 / float64(nx+1)
	c := NewCOO(n, n)
	idx := func(i, j int) int { return i*ny + j }
	// Upwind convection in the +x direction: contributes beta*h to the
	// diagonal and -beta*h to the west neighbour.
	bh := beta * h
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			r := idx(i, j)
			c.Add(r, r, 4+bh)
			if i > 0 {
				c.Add(r, idx(i-1, j), -1-bh)
			}
			if i < nx-1 {
				c.Add(r, idx(i+1, j), -1)
			}
			if j > 0 {
				c.Add(r, idx(i, j-1), -1)
			}
			if j < ny-1 {
				c.Add(r, idx(i, j+1), -1)
			}
		}
	}
	return c.ToCSR()
}

// DiagDominant returns a random strictly diagonally dominant matrix of
// order n with about nnzPerRow off-diagonal entries per row. Diagonal
// dominance guarantees the Jacobi and Chebyshev iterations converge, so
// these matrices drive the generality experiments (Fig. 1 methods).
func DiagDominant(n, nnzPerRow int, seed int64) *CSR {
	if n < 1 || nnzPerRow < 0 {
		panic("sparse: bad DiagDominant parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		var offSum float64
		seen := map[int]bool{i: true}
		for k := 0; k < nnzPerRow; k++ {
			j := rng.Intn(n)
			if seen[j] {
				continue
			}
			seen[j] = true
			v := rng.Float64()*2 - 1
			c.Add(i, j, v)
			offSum += math.Abs(v)
		}
		c.Add(i, i, offSum+1+rng.Float64())
	}
	return c.ToCSR()
}

// SPDRandom returns a random sparse SPD matrix of order n built as a
// weighted graph Laplacian over a random regular-ish graph plus a positive
// diagonal shift.
func SPDRandom(n, degree int, seed int64) *CSR {
	if n < 2 || degree < 1 {
		panic("sparse: bad SPDRandom parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	c := NewCOO(n, n)
	diag := make([]float64, n)
	for u := 0; u < n; u++ {
		for k := 0; k < degree; k++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			w := 0.1 + rng.Float64()
			c.Add(u, v, -w)
			c.Add(v, u, -w)
			diag[u] += w
			diag[v] += w
		}
	}
	for u := 0; u < n; u++ {
		c.Add(u, u, diag[u]+0.5+rng.Float64())
	}
	return c.ToCSR()
}

// Tridiag returns the n×n tridiagonal Toeplitz matrix with the given
// sub-diagonal, diagonal and super-diagonal values. With (-1, 2, -1) this is
// the 1D Laplacian whose eigenvalues are known in closed form, which the
// Chebyshev solver tests use for exact spectral bounds.
func Tridiag(n int, sub, diag, super float64) *CSR {
	if n < 1 {
		panic("sparse: Tridiag needs n >= 1")
	}
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			c.Add(i, i-1, sub)
		}
		c.Add(i, i, diag)
		if i < n-1 {
			c.Add(i, i+1, super)
		}
	}
	return c.ToCSR()
}

// Identity returns the n×n identity matrix.
func Identity(n int) *CSR {
	c := NewCOO(n, n)
	for i := 0; i < n; i++ {
		c.Add(i, i, 1)
	}
	return c.ToCSR()
}
