package sparse

import "fmt"

// SolveLower solves L·x = b for x, where the receiver stores a lower
// triangular matrix with nonzero diagonal (entries above the diagonal, if
// present, are ignored). When unitDiag is true the diagonal is taken to be
// one regardless of storage, the convention of ILU(0) L factors.
//
// x and b may alias. Triangular solves are the building block of the PCO
// operation for factored preconditioners (§4 "Preconditioner", implicit M).
func (a *CSR) SolveLower(x, b []float64, unitDiag bool) error {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		return fmt.Errorf("sparse: dimension mismatch in SolveLower")
	}
	for i := 0; i < n; i++ {
		s := b[i]
		diag := 0.0
		haveDiag := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			switch {
			case j < i:
				s -= a.Val[k] * x[j]
			case j == i:
				diag, haveDiag = a.Val[k], true
			}
		}
		if unitDiag {
			x[i] = s
			continue
		}
		//lint:ignore floatcmp exact-zero pivot is the standard singularity convention (cf. LAPACK)
		if !haveDiag || diag == 0 {
			return fmt.Errorf("sparse: zero diagonal at row %d in SolveLower", i)
		}
		x[i] = s / diag
	}
	return nil
}

// SolveUpper solves U·x = b for x, where the receiver stores an upper
// triangular matrix with nonzero diagonal (entries below the diagonal are
// ignored). x and b may alias.
func (a *CSR) SolveUpper(x, b []float64) error {
	n := a.Rows
	if a.Cols != n || len(x) != n || len(b) != n {
		return fmt.Errorf("sparse: dimension mismatch in SolveUpper")
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		diag := 0.0
		haveDiag := false
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			switch {
			case j > i:
				s -= a.Val[k] * x[j]
			case j == i:
				diag, haveDiag = a.Val[k], true
			}
		}
		//lint:ignore floatcmp exact-zero pivot is the standard singularity convention (cf. LAPACK)
		if !haveDiag || diag == 0 {
			return fmt.Errorf("sparse: zero diagonal at row %d in SolveUpper", i)
		}
		x[i] = s / diag
	}
	return nil
}

// LowerTriangle returns the lower triangle of the matrix (including the
// diagonal) as a new CSR matrix.
func (a *CSR) LowerTriangle() *CSR {
	t := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] <= i {
				t.ColIdx = append(t.ColIdx, a.ColIdx[k])
				t.Val = append(t.Val, a.Val[k])
				t.RowPtr[i+1]++
			}
		}
	}
	for i := 0; i < a.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	return t
}

// UpperTriangle returns the upper triangle of the matrix (including the
// diagonal) as a new CSR matrix.
func (a *CSR) UpperTriangle() *CSR {
	t := &CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int, a.Rows+1)}
	for i := 0; i < a.Rows; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			if a.ColIdx[k] >= i {
				t.ColIdx = append(t.ColIdx, a.ColIdx[k])
				t.Val = append(t.Val, a.Val[k])
				t.RowPtr[i+1]++
			}
		}
	}
	for i := 0; i < a.Rows; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	return t
}

// SubMatrix extracts the principal submatrix with rows and columns in
// [lo, hi), used by the block-Jacobi preconditioner to carve out diagonal
// blocks. Entries outside the column range are dropped.
func (a *CSR) SubMatrix(lo, hi int) *CSR {
	if lo < 0 || hi > a.Rows || hi > a.Cols || lo > hi {
		panic("sparse: bad range in SubMatrix")
	}
	n := hi - lo
	t := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1)}
	for i := lo; i < hi; i++ {
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			j := a.ColIdx[k]
			if j >= lo && j < hi {
				t.ColIdx = append(t.ColIdx, j-lo)
				t.Val = append(t.Val, a.Val[k])
				t.RowPtr[i-lo+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	return t
}
