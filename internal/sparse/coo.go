package sparse

import (
	"fmt"
	"sort"
)

// COO is a coordinate-format builder for sparse matrices. Entries may be
// added in any order; duplicates are summed when converting to CSR, matching
// the conventions of the Matrix Market format and of finite-element assembly.
type COO struct {
	rows, cols int
	i, j       []int
	v          []float64
}

// NewCOO returns an empty COO builder for an rows×cols matrix.
func NewCOO(rows, cols int) *COO {
	if rows < 0 || cols < 0 {
		panic("sparse: negative COO dimensions")
	}
	return &COO{rows: rows, cols: cols}
}

// Dims returns the matrix dimensions.
func (c *COO) Dims() (rows, cols int) { return c.rows, c.cols }

// NNZ returns the number of accumulated entries (before duplicate merging).
func (c *COO) NNZ() int { return len(c.v) }

// Add appends the entry (i, j, v). Zero values are kept so that explicitly
// stored zeros survive the round trip, as Matrix Market allows.
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.rows || j < 0 || j >= c.cols {
		panic(fmt.Sprintf("sparse: COO entry (%d,%d) out of range %dx%d", i, j, c.rows, c.cols))
	}
	c.i = append(c.i, i)
	c.j = append(c.j, j)
	c.v = append(c.v, v)
}

// AddSym appends (i, j, v) and, when i != j, the mirrored entry (j, i, v).
// It is convenient when expanding symmetric Matrix Market files.
func (c *COO) AddSym(i, j int, v float64) {
	c.Add(i, j, v)
	if i != j {
		c.Add(j, i, v)
	}
}

// ToCSR converts the accumulated entries to CSR form, sorting each row's
// columns ascending and summing duplicate coordinates.
func (c *COO) ToCSR() *CSR {
	n := len(c.v)
	order := make([]int, n)
	for k := range order {
		order[k] = k
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := order[a], order[b]
		if c.i[ka] != c.i[kb] {
			return c.i[ka] < c.i[kb]
		}
		return c.j[ka] < c.j[kb]
	})

	a := &CSR{Rows: c.rows, Cols: c.cols, RowPtr: make([]int, c.rows+1)}
	prevI, prevJ := -1, -1
	for _, k := range order {
		i, j, v := c.i[k], c.j[k], c.v[k]
		if i == prevI && j == prevJ {
			a.Val[len(a.Val)-1] += v
			continue
		}
		a.ColIdx = append(a.ColIdx, j)
		a.Val = append(a.Val, v)
		a.RowPtr[i+1]++
		prevI, prevJ = i, j
	}
	for i := 0; i < c.rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	return a
}
