//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count tests skip under it: AllocsPerRun then measures the
// race runtime's own shadow-state allocations, not the solver's.
const raceEnabled = true
