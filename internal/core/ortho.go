package core

import (
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// OrthoPCG solves the SPD system A·x = b with PCG protected by the
// Chen-style online-orthogonality baseline (§2, [6]): every DetectInterval
// iterations it checks the residual relationship r = b − A·x (one full MVM
// plus vector comparison) and rolls back to a checkpoint when the
// relationship is broken.
//
// The scheme's limitations, reproduced faithfully:
//   - detection costs a full MVM, so checking must be infrequent, raising
//     rollback losses;
//   - it applies only to solvers whose vectors satisfy such relationships —
//     there is no OrthoJacobi or OrthoChebyshev, and BiCGSTAB's lack of
//     orthogonality structure is why §6.3 exercises it;
//   - errors that do not propagate into the checked vectors escape.
func OrthoPCG(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	inj := opts.Injector
	n := a.Rows

	x, err := cloneStart(n, opts.X0)
	if err != nil {
		return res, err
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	trueR := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	// The residual-relationship tolerance: the gap ‖(b−Ax) − r‖/‖b‖ grows
	// only with round-off for a healthy run, while an injected error makes
	// it jump by orders of magnitude.
	const residGapTol = 1e-8

	res.X = x
	relres := vec.Norm2(r) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	if err := applyCleanInj(m, inj, -1, z, r); err != nil {
		return res, err
	}
	copy(p, z)
	rho := vec.Dot(r, z)

	store := opts.newStore()
	d, cd := opts.DetectInterval, opts.CheckpointInterval

	save := func(iter int) {
		store.Save(iter,
			map[string][]float64{"x": x, "p": p, "r": r},
			map[string]float64{"rho": rho}, nil)
		res.Stats.Checkpoints++
		res.Stats.CheckpointBytes = store.BytesCopied
		res.Stats.CheckpointStoredBytes = store.BytesStored
	}
	rollback := func(iter int) (int, bool) {
		res.Stats.Rollbacks++
		if res.Stats.Rollbacks > opts.MaxRollbacks {
			return iter, false
		}
		scal := map[string]float64{}
		snapIter, err := store.Restore(
			map[string][]float64{"x": x, "p": p, "r": r}, scal, nil)
		if err != nil {
			return iter, false
		}
		rho = scal["rho"]
		if store.Lossy() {
			// The restored state is quantized: x and r were rounded
			// independently, so the residual relationship this baseline
			// verifies no longer holds to residGapTol. Re-couple them by
			// reconstructing r = b − A·x from the restored iterate — the
			// orthogonality-baseline analogue of checksum re-anchoring.
			a.MulVec(r, x)
			vec.Sub(r, b, r)
			res.Stats.RecoveryMVMs++
			res.Stats.LossyRestores++
			// The restored direction and ρ belong to the exact snapshot
			// state; against the reconstructed residual the stale ρ makes
			// the first β = ρ'/ρ blow up and poison p. Restart the
			// recurrence from the reconstructed residual instead.
			if err := applyCleanInj(m, inj, -1, z, r); err != nil {
				return iter, false
			}
			copy(p, z)
			rho = vec.Dot(r, z)
		}
		res.Stats.WastedIterations += iter - snapIter
		return snapIter, true
	}

	i := 0
	for i < maxIter {
		if err := opts.ctxErr("OrthoPCG"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = injCount(opts.Injector)
			return res, err
		}
		if i > 0 && i%d == 0 {
			// Residual-relationship check: one full MVM.
			a.MulVec(trueR, x)
			vec.Sub(trueR, b, trueR)
			vec.Sub(trueR, trueR, r)
			res.Stats.Verifications++
			res.Stats.RecoveryMVMs++
			if vec.Norm2(trueR)/normB > residGapTol {
				res.Stats.Detections++
				var ok bool
				if i, ok = rollback(i); !ok {
					res.Residual = relres
					res.Stats.InjectedErrors = injCount(inj)
					return res, rollbackStormErr("PCG", Orthogonality)
				}
				continue
			}
		}
		if i%cd == 0 {
			save(i)
		}

		inj.InjectMemory(i, fault.SiteMVM, p)
		if restore := inj.CacheWindow(i, fault.SiteMVM, p); restore != nil {
			a.MulVecStride(q, p, 0, 2)
			restore()
			a.MulVecStride(q, p, 1, 2)
		} else {
			a.MulVec(q, p)
		}
		inj.InjectOutput(i, fault.SiteMVM, q)

		pq := vec.Dot(p, q)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if pq == 0 {
			res.Residual = relres
			return res, breakdownErr("PCG", Orthogonality, i, "pᵀAp = 0")
		}
		alpha := rho / pq
		vec.Axpy(x, alpha, p)
		inj.InjectOutput(i, fault.SiteVLO, x)
		vec.Axpy(r, -alpha, q)
		inj.InjectOutput(i, fault.SiteVLO, r)
		i++
		res.Iterations = i

		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tolRes {
			// Final residual-relationship check before accepting.
			a.MulVec(trueR, x)
			vec.Sub(trueR, b, trueR)
			vec.Sub(trueR, trueR, r)
			res.Stats.RecoveryMVMs++
			if vec.Norm2(trueR)/normB > residGapTol {
				res.Stats.Detections++
				var ok bool
				if i, ok = rollback(i); !ok {
					res.Residual = relres
					res.Stats.InjectedErrors = injCount(inj)
					return res, rollbackStormErr("PCG", Orthogonality)
				}
				continue
			}
			res.Converged = true
			break
		}
		if err := applyCleanInj(m, inj, i-1, z, r); err != nil {
			return res, err
		}
		rhoNew := vec.Dot(r, z)
		beta := rhoNew / rho
		vec.Xpby(p, z, beta, p)
		inj.InjectOutput(i-1, fault.SiteVLO, p)
		rho = rhoNew
	}

	res.Residual = relres
	res.Stats.InjectedErrors = injCount(inj)
	if !res.Converged {
		return notConverged("orthogonality PCG", res, relres)
	}
	return res, nil
}

// applyCleanInj applies a preconditioner with fault injection on input and
// output but no checksum protection. A cache fault corrupts the solve's
// input transiently: z comes out wrong, r stays clean, and — since the
// residual relationship r = b − A·x is untouched — the orthogonality
// baseline has nothing to detect (Table 3's cache/register "No").
func applyCleanInj(m precond.Preconditioner, inj *fault.Injector, iter int, z, r []float64) error {
	inj.InjectMemory(iter, fault.SitePCO, r)
	restore := inj.CacheWindow(iter, fault.SitePCO, r)
	if err := applyClean(m, z, r); err != nil {
		if restore != nil {
			restore()
		}
		return err
	}
	if restore != nil {
		restore()
	}
	inj.InjectOutput(iter, fault.SitePCO, z)
	return nil
}
