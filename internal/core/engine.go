package core

import (
	"fmt"
	"math"

	"newsum/internal/checkpoint"
	"newsum/internal/checksum"
	"newsum/internal/fault"
	"newsum/internal/kernel"
	"newsum/internal/precond"
	"newsum/internal/sparse"
)

// tracked pairs a vector with its carried checksum slots (one per weight),
// the "separated" encoding of Fig. 2(d): the data is exactly what the
// unprotected solver holds, the checksums ride alongside.
type tracked struct {
	name string
	data []float64
	s    []float64
	// eta[k] is the running first-order round-off bound of s[k], carried
	// through every update so verification can tell accumulated floating-
	// point noise from genuine corruption at any n and d (see
	// checksum.ConsistentBound).
	eta []float64
}

// engine bundles the encoded matrices, weight set, tolerance, injector and
// statistics shared by the instrumented operations of a protected solver.
type engine struct {
	n       int
	a       *sparse.CSR
	weights []checksum.Weight
	encA    *checksum.Matrix
	stages  []precond.Stage
	encStg  []*checksum.Matrix
	tol     checksum.Tol
	inj     *fault.Injector
	stats   *Stats

	// pool runs the hot loops on shared-memory workers; nil is the serial
	// pool (every kernel method falls through to the single-threaded
	// implementation, bitwise-identically).
	pool *kernel.Pool

	// eager enables per-operation output verification (the paper's eager
	// detection mode); flagged latches a failed eager check until the
	// solver consumes it via takeFlag and rolls back.
	eager   bool
	flagged bool

	// encDiag, when non-nil, holds the plain c_kᵀA rows for the Linear and
	// Harmonic weights, used by the lazy two-level diagnosis: δ2 and δ3
	// are computed from these rows on demand instead of being carried
	// through every operation (see Options.EagerTriple).
	encDiag *checksum.Traditional

	// scratch ping-pong buffers for multi-stage preconditioner
	// applications, plus matching checksum and round-off-bound slots.
	scratch    [2][]float64
	scratchS   [2][]float64
	scratchEta [2][]float64

	// enc is the caller-supplied precomputed encoding, when one was passed
	// through Options.Encoding; nil means encA/encDiag were derived here.
	enc *checksum.Encoding
}

// initLazyDiag prepares the on-demand diagnosis rows for the lazy two-level
// scheme, reusing the precomputed rows when a cached encoding is attached.
func (e *engine) initLazyDiag() {
	if e.enc != nil {
		e.encDiag = e.enc.Diag()
		return
	}
	e.encDiag = checksum.EncodeTraditional(e.a, []checksum.Weight{checksum.Linear, checksum.Harmonic})
}

// newEngine encodes A and every preconditioner stage once (setup cost, like
// the paper's offline encoding pass) and prepares scratch storage. A
// precomputed Options.Encoding short-circuits the cᵀA − d·cᵀ derivation —
// the offline pass amortized across solves — and pins the decoupling scalar.
func newEngine(a *sparse.CSR, m precond.Preconditioner, weights []checksum.Weight, opts *Options, stats *Stats) *engine {
	var encA *checksum.Matrix
	var d float64
	if opts.Encoding != nil && opts.Encoding.N == a.Rows {
		encA = opts.Encoding.Matrix(weights)
		d = opts.Encoding.D
	} else {
		d = opts.DScalar
		//lint:ignore floatcmp DScalar == 0 is the unset sentinel selecting a derived d
		if d == 0 {
			if opts.UseLemmaD {
				d = checksum.LemmaD(a, weights)
			} else {
				d = checksum.PracticalD(a)
			}
		}
		encA = checksum.EncodeMatrix(a, weights, d)
	}
	e := &engine{
		n:       a.Rows,
		a:       a,
		weights: weights,
		encA:    encA,
		tol:     checksum.Tol{Theta: opts.Theta},
		inj:     opts.Injector,
		stats:   stats,
		pool:    opts.Pool,
		eager:   opts.EagerDetection,
	}
	if opts.Encoding != nil && opts.Encoding.N == a.Rows {
		e.enc = opts.Encoding
	}
	if m != nil {
		e.stages = m.Stages()
		e.encStg = make([]*checksum.Matrix, len(e.stages))
		for i, st := range e.stages {
			e.encStg[i] = checksum.EncodeMatrix(st.M, weights, d)
		}
	}
	for i := range e.scratch {
		e.scratch[i] = make([]float64, e.n)
		e.scratchS[i] = make([]float64, len(weights))
		e.scratchEta[i] = make([]float64, len(weights))
	}
	return e
}

// newTracked allocates a tracked vector with zeroed data and checksums
// (consistent: cᵀ0 = 0).
func (e *engine) newTracked(name string) *tracked {
	return &tracked{
		name: name,
		data: make([]float64, e.n),
		s:    make([]float64, len(e.weights)),
		eta:  make([]float64, len(e.weights)),
	}
}

// wrap adopts an existing data slice as a tracked vector with freshly
// computed checksums and round-off bounds (used for the right-hand side b).
func (e *engine) wrap(name string, data []float64) *tracked {
	v := &tracked{
		name: name,
		data: data,
		s:    make([]float64, len(e.weights)),
		eta:  make([]float64, len(e.weights)),
	}
	e.recompute(v)
	return v
}

// recompute refreshes v's checksums from its data, used at initialization
// and after recovery reconstructs a vector.
//
//hot:protected v
func (e *engine) recompute(v *tracked) {
	for k := range e.weights {
		sum, absSum := e.sums(v, k)
		checksum.Anchor(v.s, v.eta, k, sum, absSum, e.n)
	}
}

// sums returns cᵀv and Σ|c_i·v_i| for weight k in one blocked pairwise
// pass on the pool.
func (e *engine) sums(v *tracked, k int) (sum, absSum float64) {
	return e.pool.WeightedSumAbs(v.data, e.weights[k].At)
}

// dot, norm2 and mulVec route the solver loops' reductions and SpMVs
// through the pool; with a nil pool they are exactly vec.Dot, vec.Norm2
// and a.MulVec.
func (e *engine) dot(u, v []float64) float64 { return e.pool.Dot(u, v) }

func (e *engine) norm2(u []float64) float64 { return e.pool.Norm2(u) }

func (e *engine) mulVec(y, x []float64) { e.pool.MulVec(e.a, y, x) }

// verify checks v's first checksum relationship — the outer-level
// verification of Algorithm 1 line 6 (one weighted sum, O(n)).
//
// On success the carried checksum is refreshed to the freshly measured sum
// and its round-off bound reset. The refresh costs nothing (the sum is in
// hand) and keeps the running η bound from compounding across verification
// windows: without it, the d-amplification cycle (×d at each MVM update,
// ÷d at each PCO) grows η by roughly (1+α) per iteration until it masks
// genuine errors.
// suspectScalar reports whether a recurrence scalar is numerically
// meaningless — NaN, Inf, or beyond ≈√MaxFloat64 (any product of two such
// magnitudes overflows). Under ABFT a scalar that size right after a
// protected MVM is a propagated fault, not a breakdown: an exponent-bit
// upset scales an iterate element by 2^±1024, and the resulting huge
// denominator is divided away (α = ρ/pᵀAp collapses toward zero), pushing
// the corruption below the checksum detection threshold before the next
// verification boundary can see it. Solver loops treat a suspect scalar as
// a detection and roll back. Exact zero is deliberately excluded — that is
// the genuine breakdown condition and keeps its hard-error path.
func suspectScalar(x float64) bool {
	return math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150
}

//hot:protected v
func (e *engine) verify(v *tracked) bool {
	e.stats.Verifications++
	sum, absSum := e.sums(v, 0)
	ok := e.tol.ConsistentBound(sum-v.s[0], e.n, absSum, v.eta[0])
	if !ok {
		e.stats.Detections++
		return false
	}
	checksum.Anchor(v.s, v.eta, 0, sum, absSum, e.n)
	return true
}

// mvm computes dst := A·src with full fault instrumentation and the Eq. (2)
// checksum update. Memory faults strike src persistently before use; cache
// faults corrupt the value the multiplication consumes but not the stored
// vector; arithmetic faults strike the output.
//
//hot:protected dst src
func (e *engine) mvm(iter int, dst, src *tracked) {
	e.inj.InjectMemory(iter, fault.SiteMVM, src.data)
	if restore := e.inj.CacheWindow(iter, fault.SiteMVM, src.data); restore != nil {
		// Model the paper's cache-eviction scenario (§2): the corrupted
		// cached value is consumed by a subset of rows (here the even
		// ones), then the line is evicted and the remaining rows reload
		// the correct value from memory. Only a row subset A_e sees the
		// error, which is what Lemma 2 case 3 analyses — and it defeats
		// structural cancellations such as the zero column sums of graph
		// Laplacians, which would hide an error consumed by every row.
		e.a.MulVecStride(dst.data, src.data, 0, 2)
		restore()
		e.a.MulVecStride(dst.data, src.data, 1, 2)
	} else {
		e.pool.MulVec(e.a, dst.data, src.data)
	}
	e.inj.InjectOutput(iter, fault.SiteMVM, dst.data)
	// The update runs after the operation (and after any fault), reading
	// src from memory — the ordering Lemma 2's proof analyses.
	e.pool.UpdateMVMBound(e.encA, dst.s, dst.eta, src.data, src.s, src.eta)
	e.stats.ChecksumUpdates++
	// A flip in the checksum accumulator itself (ModelChecksum): the data
	// stays clean, the carried relationship breaks, and the inconsistency
	// propagates through every downstream update until a verification
	// flags it — detection then costs one futile rollback to repair state
	// that was never wrong.
	e.inj.InjectOutput(iter, fault.SiteChecksum, dst.s)
	e.eagerCheck(dst)
}

// corruptCheckpoint fires pending checkpoint-buffer faults (SiteCheckpoint,
// Memory kind) into the snapshot just saved. The strike lands in the stored
// copy, not the live state, so it stays dormant until a rollback restores
// it — the ModelCheckpoint attack on the recovery machinery. Snapshot
// vectors are visited in sorted-name order so the struck buffer is
// deterministic for a seeded injector.
func (e *engine) corruptCheckpoint(iter int, store *checkpoint.Store) {
	if e.inj == nil {
		return
	}
	store.Strike(func(_ string, data []float64) {
		e.inj.InjectMemory(iter, fault.SiteCheckpoint, data)
	})
}

// pco computes dst := M⁻¹·src stage by stage, carrying checksums through
// each stage with Eq. (4) (solves) or Eq. (2) (multiplies).
func (e *engine) pco(iter int, dst, src *tracked) error {
	e.inj.InjectMemory(iter, fault.SitePCO, src.data)
	// A cache/register fault makes the whole solve consume a transiently
	// corrupted input; the stored vector (and its carried checksum) stay
	// clean, so the output's checksum relationship breaks by −cᵀe/d and
	// the inconsistency propagates to the verified vectors. The restore
	// is deferred directly (no wrapping closure — pco is on the hot path)
	// and conditionally, which defer permits.
	if restoreCache := e.inj.CacheWindow(iter, fault.SitePCO, src.data); restoreCache != nil {
		defer restoreCache()
	}
	if len(e.stages) == 0 { // identity preconditioner
		copy(dst.data, src.data)
		copy(dst.s, src.s)
		copy(dst.eta, src.eta)
		e.inj.InjectOutput(iter, fault.SitePCO, dst.data)
		return nil
	}
	in, inS, inEta := src.data, src.s, src.eta
	for k, st := range e.stages {
		out, outS, outEta := e.scratch[k%2], e.scratchS[k%2], e.scratchEta[k%2]
		if err := st.Apply(out, in); err != nil {
			//hot:cold preconditioner failure aborts the solve
			return fmt.Errorf("core: PCO stage %d: %w", k, err)
		}
		switch st.Op {
		case precond.StageSolve:
			e.pool.UpdatePCOBound(e.encStg[k], outS, outEta, out, inS, inEta)
		case precond.StageMul:
			e.pool.UpdateMVMBound(e.encStg[k], outS, outEta, in, inS, inEta)
		}
		e.stats.ChecksumUpdates++
		in, inS, inEta = out, outS, outEta
	}
	copy(dst.data, in)
	copy(dst.s, inS)
	copy(dst.eta, inEta)
	e.inj.InjectOutput(iter, fault.SitePCO, dst.data)
	e.eagerCheck(dst)
	return nil
}

// axpy computes y := y + alpha·x with the Eq. (3) checksum update. A cache
// fault corrupts the value of x the update consumes while memory keeps the
// clean copy; the checksum update (from x.s) stays clean, so y becomes
// inconsistent and detectable.
//
//hot:protected y x
func (e *engine) axpy(iter int, y *tracked, alpha float64, x *tracked) {
	e.inj.InjectMemory(iter, fault.SiteVLO, x.data)
	restore := e.inj.CacheWindow(iter, fault.SiteVLO, x.data)
	e.pool.Axpy(y.data, alpha, x.data)
	if restore != nil {
		restore()
	}
	checksum.UpdateVLOAxpyBound(y.s, y.eta, alpha, x.s, x.eta)
	e.stats.ChecksumUpdates++
	e.inj.InjectOutput(iter, fault.SiteVLO, y.data)
	e.eagerCheck(y)
}

// xpby computes dst := x + beta·y (dst may alias y) with checksum update.
//
//hot:protected dst x y
func (e *engine) xpby(iter int, dst, x *tracked, beta float64, y *tracked) {
	e.pool.XpbyVLO(dst.data, x.data, beta, y.data, dst.s, dst.eta, x.s, x.eta, y.s, y.eta)
	e.stats.ChecksumUpdates++
	e.inj.InjectOutput(iter, fault.SiteVLO, dst.data)
	e.eagerCheck(dst)
}

// axpbyInto computes dst := alpha·x + beta·y with checksum update.
//
//hot:protected dst x y
func (e *engine) axpbyInto(iter int, dst *tracked, alpha float64, x *tracked, beta float64, y *tracked) {
	e.pool.AxpbyVLO(dst.data, alpha, x.data, beta, y.data, dst.s, dst.eta, x.s, x.eta, y.s, y.eta)
	e.stats.ChecksumUpdates++
	e.inj.InjectOutput(iter, fault.SiteVLO, dst.data)
	e.eagerCheck(dst)
}

// eagerCheck verifies an operation's output immediately when eager
// detection is enabled, latching failures for the solver's rollback logic.
func (e *engine) eagerCheck(dst *tracked) {
	if !e.eager || e.flagged {
		return
	}
	if !e.verify(dst) {
		e.flagged = true
	}
}

// takeFlag reports and clears the latched eager-detection flag.
func (e *engine) takeFlag() bool {
	f := e.flagged
	e.flagged = false
	return f
}

// scaleInto computes dst := alpha·src with the Eq. (3) scaling update.
//
//hot:protected dst
func (e *engine) scaleInto(iter int, dst *tracked, alpha float64, src *tracked) {
	e.pool.Scale(dst.data, alpha, src.data)
	checksum.UpdateVLOScaleBound(dst.s, dst.eta, alpha, src.s, src.eta)
	e.stats.ChecksumUpdates++
	e.inj.InjectOutput(iter, fault.SiteVLO, dst.data)
	e.eagerCheck(dst)
}

// copyTracked copies src into dst, data and checksums.
func copyTracked(dst, src *tracked) {
	copy(dst.data, src.data)
	copy(dst.s, src.s)
	copy(dst.eta, src.eta)
}

// innerCheck runs the two-level scheme's inner-level protection on an MVM
// output (Algorithm 2 lines 16–27): the cheap δ1 probe, then — only on
// inconsistency — the full triple-checksum diagnosis. It returns the
// diagnosis; single errors are corrected in place (data and the caller's
// stored checksums already agree after correction).
//
// Guard against fake corrections from upstream: an inconsistency that was
// carried IN by the input vector (e.g. a corrupted preconditioner solve a
// few operations earlier) produces deltas proportional to c_k(j) — exactly
// the signature of a single output error at position j — but "correcting"
// the output would corrupt a healthy element and launder the inconsistency
// into checksum-consistent garbage. A single-error diagnosis is therefore
// trusted only if the input vector verifies clean (one extra O(n) check,
// paid only when an error was already detected); otherwise the event is
// escalated to MultipleErrors and handled by rollback, which repairs the
// input too.
func (e *engine) innerCheck(q, src *tracked) checksum.TripleDiagnosis {
	if e.encDiag != nil {
		return e.innerCheckLazy(q, src)
	}
	return e.innerCheckEager(q, src)
}

// innerCheckLazy is the default two-level inner check: the δ1 probe against
// the carried c1 checksum, then — only on inconsistency — the cold
// diagnoseLazy pass. The fault-free probe is the hot path; everything past
// a detection rides the recovery budget.
//
//hot:protected q
func (e *engine) innerCheckLazy(q, src *tracked) checksum.TripleDiagnosis {
	e.stats.Verifications++
	sum1, abs1 := e.sums(q, 0)
	d1 := sum1 - q.s[0]
	if e.tol.ConsistentBound(d1, e.n, abs1, q.eta[0]) {
		checksum.Anchor(q.s, q.eta, 0, sum1, abs1, e.n)
		return checksum.TripleDiagnosis{Kind: checksum.NoError}
	}
	return e.diagnoseLazy(q, src, d1, abs1)
}

// diagnoseLazy runs the post-detection locating pass of the lazy two-level
// scheme: on-demand evaluation of the locating deltas δ2, δ3 straight from
// the encoded diagnosis rows: exp_k = row_k·p + d·c_kᵀp, which equals
// c_kᵀA·p exactly, so δ_k = c_kᵀq − c_kᵀA·p is the weighted sum of the
// output's data error. The input p must itself verify clean for the
// single-error signature to be trustworthy (same guard as the eager path).
// Cold by construction — it runs only after a detection, so its slice
// literals are off the steady-state budget.
//
//hot:cold post-detection diagnosis rides the recovery budget
func (e *engine) diagnoseLazy(q, src *tracked, d1, abs1 float64) checksum.TripleDiagnosis {
	e.stats.Detections++
	// Input purity guard.
	e.stats.Verifications++
	srcSum, srcAbs := e.sums(src, 0)
	if e.tol.InconsistentBound(srcSum-src.s[0], e.n, srcAbs, src.eta[0]) {
		return checksum.TripleDiagnosis{Kind: checksum.MultipleErrors}
	}
	deltas := []float64{d1, 0, 0}
	absSums := []float64{abs1, 0, 0}
	for k, w := range e.encDiag.Weights {
		exp := e.pool.Dot(e.encDiag.Rows[k], src.data)
		sum, abs := e.pool.WeightedSumAbs(q.data, w.At)
		deltas[k+1] = sum - exp
		absSums[k+1] = abs
		e.stats.Verifications += 2
	}
	diag := checksum.Diagnose(deltas, e.n, absSums, e.tol)
	if diag.Kind == checksum.SingleError {
		checksum.CorrectSingle(q.data, diag)
		e.stats.Corrections++
	}
	return diag
}

//hot:protected q
func (e *engine) innerCheckEager(q, src *tracked) checksum.TripleDiagnosis {
	e.stats.Verifications++
	sum1, abs1 := e.sums(q, 0)
	d1 := sum1 - q.s[0]
	if e.tol.ConsistentBound(d1, e.n, abs1, q.eta[0]) {
		// Refresh the probed checksum (see verify) so η stays anchored.
		checksum.Anchor(q.s, q.eta, 0, sum1, abs1, e.n)
		return checksum.TripleDiagnosis{Kind: checksum.NoError}
	}
	return e.diagnoseEager(q, src, d1, abs1)
}

// diagnoseEager is the post-detection triple-checksum diagnosis of the
// eager two-level scheme. Cold by construction (runs only after a
// detection), like diagnoseLazy.
//
//hot:cold post-detection diagnosis rides the recovery budget
func (e *engine) diagnoseEager(q, src *tracked, d1, abs1 float64) checksum.TripleDiagnosis {
	e.stats.Detections++
	sum2, abs2 := e.sums(q, 1)
	sum3, abs3 := e.sums(q, 2)
	e.stats.Verifications += 2
	diag := checksum.Diagnose(
		[]float64{d1, sum2 - q.s[1], sum3 - q.s[2]},
		e.n,
		[]float64{abs1, abs2, abs3},
		e.tol,
	)
	if diag.Kind == checksum.SingleError {
		if src != nil {
			e.stats.Verifications++
			srcSum, srcAbs := e.sums(src, 0)
			if e.tol.InconsistentBound(srcSum-src.s[0], e.n, srcAbs, src.eta[0]) {
				return checksum.TripleDiagnosis{Kind: checksum.MultipleErrors}
			}
		}
		checksum.CorrectSingle(q.data, diag)
		e.stats.Corrections++
	}
	return diag
}

// injectedCount snapshots how many faults have fired so far.
func (e *engine) injectedCount() int {
	if e.inj == nil {
		return 0
	}
	return len(e.inj.Injected)
}
