package core

import (
	"newsum/internal/checksum"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// BasicPCG solves the SPD system A·x = b with the paper's basic online ABFT
// preconditioned conjugate gradient (Algorithm 1, Fig. 3): single-checksum
// updates after every vector-generating operation, lazy verification of the
// x and r relationships every DetectInterval iterations, and checkpointing
// of only the p and x vectors every CheckpointInterval iterations.
func BasicPCG(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	return abftPCG(a, m, b, opts, Basic)
}

// TwoLevelPCG solves A·x = b with the paper's two-level online ABFT PCG
// (Algorithm 2, Fig. 4): triple-checksum inner-level protection after every
// MVM — correcting single errors immediately and rolling back on multiple
// errors — combined with the Basic outer level.
func TwoLevelPCG(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	return abftPCG(a, m, b, opts, TwoLevel)
}

func abftPCG(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options, scheme Scheme) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	weights := checksum.Single
	if (scheme == TwoLevel && opts.EagerTriple) || opts.ForwardRecovery {
		// Forward recovery needs the locating checksums δ2, δ3 on the
		// outer-level vectors themselves, so all three weights are carried.
		weights = checksum.Triple
	}
	e := newEngine(a, m, weights, &opts, &res.Stats)
	if scheme == TwoLevel && !opts.EagerTriple {
		e.initLazyDiag()
	}
	n := e.n

	x := e.newTracked("x")
	if opts.X0 != nil {
		copy(x.data, opts.X0)
		e.recompute(x)
	}
	r := e.newTracked("r")
	z := e.newTracked("z")
	p := e.newTracked("p")
	q := e.newTracked("q")
	bT := e.wrap("b", b)

	// r = b − A·x0 via instrumented ops would charge a fault to setup;
	// initialization is performed cleanly (the paper injects errors only
	// into the iteration loop).
	e.mulVec(r.data, x.data)
	vec.Sub(r.data, bT.data, r.data)
	e.recompute(r)

	normB := e.norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	res.X = x.data
	relres := e.norm2(r.data) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}

	if err := e.pco(-1, z, r); err != nil {
		return res, err
	}
	copyTracked(p, z)
	rho := e.dot(r.data, z.data)

	store := opts.newStore()
	d, cd := opts.DetectInterval, opts.CheckpointInterval

	//hot:cold checkpoint machinery: invoked once per cd iterations, off the steady-state budget
	saveCheckpoint := func(iter int) {
		opts.Trace.add(iter, EvCheckpoint, "snapshot {p, x}")
		store.Save(iter,
			map[string][]float64{"p": p.data, "x": x.data},
			map[string]float64{"rho": rho},
			map[string][]float64{"p": p.s, "x": x.s, "p.eta": p.eta, "x.eta": x.eta},
		)
		res.Stats.Checkpoints++
		res.Stats.CheckpointBytes = store.BytesCopied
		res.Stats.CheckpointStoredBytes = store.BytesStored
		e.corruptCheckpoint(iter, &store)
	}
	// rollback restores p, x (and their checksums) and rho, then
	// reconstructs r = b − A·x and its checksums — the recovery of
	// Algorithm 1 line 9 (one MVM plus checksum recomputation).
	//hot:cold recovery machinery: runs only after a detection
	rollback := func(iter int) (int, bool) {
		res.Stats.Rollbacks++
		if res.Stats.Rollbacks > opts.MaxRollbacks {
			return iter, false
		}
		scal := map[string]float64{}
		snapIter, err := store.Restore(
			map[string][]float64{"p": p.data, "x": x.data},
			scal,
			map[string][]float64{"p": p.s, "x": x.s, "p.eta": p.eta, "x.eta": x.eta},
		)
		if err != nil {
			return iter, false
		}
		rho = scal["rho"]
		if store.Lossy() {
			// The restored iterate is quantized: the exact checksums that
			// came back with it disagree with the perturbed data by up to
			// n·bound, which verification would flag as a fault. Re-anchor
			// them from the restored data — the solve restarts from the
			// perturbed (still verified-clean) state, per Tao et al.
			e.recompute(x)
			res.Stats.LossyRestores++
		}
		e.mulVec(r.data, x.data)
		vec.Sub(r.data, bT.data, r.data)
		e.recompute(r)
		res.Stats.RecoveryMVMs++
		if store.Lossy() {
			// The restored direction and ρ belong to the *exact* snapshot
			// state; against the reconstructed residual — dominated by the
			// quantization noise A·δx rather than the old convergence tail —
			// the stale ρ makes the first β = ρ'/ρ blow up and permanently
			// poison p, stalling the recurrence at the error bound. A lossy
			// restore is therefore a CG restart: z = M⁻¹r, p := z, ρ = rᵀz.
			if err := e.pco(-1, z, r); err != nil {
				return iter, false
			}
			copyTracked(p, z)
			rho = e.dot(r.data, z.data)
		}
		res.Stats.WastedIterations += iter - snapIter
		opts.Trace.add(iter, EvRollback, "restored iteration %d, recomputed r", snapIter)
		return snapIter, true
	}

	// forwardRepair is the forward-recovery tier: attempt an in-place repair
	// of every vector that failed verification, avoiding the rollback. xOK,
	// rOK, pOK report which verifications passed; restart forces the search-
	// direction re-projection even without a data repair (the convergence
	// exit skips the recurrence tail, so z, p and ρ must be rebuilt before
	// iterating on). Returns true when the solve may continue forward.
	//hot:cold forward recovery rides the recovery budget
	forwardRepair := func(iter int, xOK, rOK, pOK, restart bool) bool {
		if !opts.ForwardRecovery || res.Stats.ForwardRepairs >= opts.MaxRollbacks {
			return false
		}
		repaired := 0
		dataRepair := restart
		reconstructR := false
		if !xOK {
			out, diag := e.forwardDiagnose(x)
			switch out {
			case forwardRejected:
				res.Stats.RejectedCorrections++
				opts.Trace.add(iter, EvForwardRepair, "rejected fake correction on x; falling back")
				return false
			case forwardFailed:
				opts.Trace.add(iter, EvForwardRepair, "localization failed on x; falling back")
				return false
			case forwardCorrected:
				// An in-place correction moves the iterate, so the carried
				// residual no longer satisfies r = b − A·x even when r's own
				// verification passed; rebuild it below.
				reconstructR = true
				opts.Trace.add(iter, EvForwardRepair, "corrected x[%d] -= %.6g", diag.Pos, diag.Magnitude)
			case forwardReanchored:
				// Re-anchoring accepts x's data as the iterate going forward,
				// including any sub-screen perturbation the old checksums
				// disagreed with — and the recurrence residual tracks the old
				// checksum state, not the data. Rebuilding r = b − A·x below
				// re-couples them; without it a tiny absorbed x error becomes
				// a permanent offset between the recurrence residual and the
				// true one, i.e. silent data corruption at convergence.
				reconstructR = true
				opts.Trace.add(iter, EvForwardRepair, "re-anchored checksum(x)")
			}
			repaired++
		}
		if !rOK {
			// No in-place diagnosis is trusted on r — not even a confirmed
			// §5.2 correction. A fault that pollutes the recurrence scalar
			// collapses α, shrinking an aliased multi-error pattern until the
			// post-correction inconsistency (suppressed by ~1/j³ at large
			// indices) hides below the confirmation threshold; accepting it
			// re-anchors checksum-endorsed corruption into r, and since r is
			// the recurrence's fixed-point anchor the solve then converges to
			// the wrong answer with consistent checksums. r = b − A·x holds
			// for any step lengths the recurrence took, so a clean (just
			// verified or just repaired) x rebuilds it exactly, erasing
			// whatever the corruption was for the price of one MVM.
			reconstructR = true
			repaired++
		}
		if reconstructR {
			if !e.verify(x) {
				return false
			}
			e.mulVec(r.data, x.data)
			vec.Sub(r.data, bT.data, r.data)
			e.recompute(r)
			res.Stats.RecoveryMVMs++
			dataRepair = true
			opts.Trace.add(iter, EvForwardRepair, "reconstructed r = b − A·x")
		}
		if !pOK {
			// Like r, the search direction is never taken at its word: the
			// re-projection below rebuilds z and p exactly from the (just
			// verified or just repaired) residual, so a failed verification
			// of p routes there rather than through a trusted in-place
			// repair or a rollback.
			dataRepair = true
			repaired++
		}
		if repaired == 0 {
			return false
		}
		if dataRepair {
			// z and p were computed from the pre-repair r at the tail of the
			// previous iteration, so a data repair of r leaves them polluted
			// with checksum-consistent garbage. Restart the recurrence from
			// the repaired residual (z = M⁻¹r, p := z, ρ = rᵀz) — a CG
			// restart, which preserves convergence at the cost of rebuilding
			// the search direction.
			if err := e.pco(-1, z, r); err != nil {
				return false
			}
			copyTracked(p, z)
			rho = e.dot(r.data, z.data)
			opts.Trace.add(iter, EvForwardRepair, "re-projected search direction (CG restart)")
		}
		res.Stats.ForwardRepairs += repaired
		res.Stats.RollbacksAvoided++
		if snapIter, ok := store.LatestIteration(); ok {
			res.Stats.IterationsSaved += iter - snapIter
		}
		return true
	}

	i := 0
	// The steady-state iteration: every allocation inside is policed by
	// the hotalloc analyzer, every raw write to the protected vectors by
	// checksumguard (detection/recovery branches are marked //hot:cold —
	// they ride the recovery budget, not the per-iteration one).
	//
	//hot:loop PCG protected iteration (Algorithm 1 / 2)
	//hot:protected x r z p q
	for i < maxIter {
		// Cancellation boundary: a canceled or expired Options.Ctx is the
		// caller's only handle on a diverging or fault-storming solve.
		if err := opts.ctxErr("PCG"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = e.injectedCount()
			return res, err
		}
		// Outer-level detection every d iterations (Algorithm 1 lines
		// 5–6): verify only checksum(x) = cᵀx and checksum(r) = cᵀr —
		// every other vector's error propagates into x or r (Table 2).
		if i > 0 && i%d == 0 {
			xOK := e.verify(x)
			rOK := true
			if xOK || opts.ForwardRecovery {
				// Forward recovery needs both verdicts (each failed vector
				// is repaired individually); the rollback-only path keeps
				// the short-circuit so its stats are unchanged.
				rOK = e.verify(r)
			}
			//hot:cold detection handling: forward repair first, else rollback
			if !xOK || !rOK {
				opts.Trace.add(i, EvDetection, "outer-level: checksum(x)/checksum(r) mismatch")
				if !forwardRepair(i, xOK, rOK, true, false) {
					var ok bool
					if i, ok = rollback(i); !ok {
						res.Residual = relres
						res.Stats.InjectedErrors = e.injectedCount()
						return res, rollbackStormErr("PCG", scheme)
					}
					continue
				}
			}
		}
		// Checkpoint every cd iterations; cd is a multiple of d, so x and
		// r have just been verified clean. p is verified here (one O(n)
		// sum per cd) — snapshotting a corrupted search direction would
		// make every future rollback futile.
		//
		//hot:cold amortized checkpoint branch: once per cd iterations
		if i%cd == 0 {
			if i > 0 && !e.verify(p) {
				if !forwardRepair(i, true, true, false, false) {
					var ok bool
					if i, ok = rollback(i); !ok {
						res.Residual = relres
						res.Stats.InjectedErrors = e.injectedCount()
						return res, rollbackStormErr("PCG", scheme)
					}
					continue
				}
			}
			saveCheckpoint(i)
		}

		e.mvm(i, q, p)
		// Inner-level protection (two-level scheme only, Algorithm 2
		// lines 16–27): one-checksum probe, triple-checksum diagnosis,
		// immediate correction of single errors, immediate rollback on
		// multiple errors.
		if scheme == TwoLevel {
			diag := e.innerCheck(q, p)
			//hot:cold correction/detection reporting after an inner-level event
			switch diag.Kind {
			case checksum.SingleError:
				opts.Trace.add(i, EvCorrection, "inner-level: q[%d] -= %.6g", diag.Pos, diag.Magnitude)
			case checksum.MultipleErrors:
				opts.Trace.add(i, EvDetection, "inner-level: multiple errors in MVM output")
			}
			//hot:cold rollback on an inner-level multiple-error diagnosis
			if diag.Kind == checksum.MultipleErrors {
				var ok bool
				if i, ok = rollback(i); !ok {
					res.Residual = relres
					res.Stats.InjectedErrors = e.injectedCount()
					return res, rollbackStormErr("PCG", scheme)
				}
				continue
			}
		}

		// Eager detection (if enabled) flags corrupted outputs the moment
		// they are produced; recovery is the same rollback.
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("PCG", scheme)
			}
			continue
		}

		pq := e.dot(p.data, q.data)
		//hot:cold suspect-scalar detection and rollback
		if suspectScalar(pq) {
			res.Stats.Detections++
			opts.Trace.add(i, EvDetection, "suspect recurrence scalar pᵀAp = %g", pq)
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("PCG", scheme)
			}
			continue
		}
		//hot:cold breakdown exit
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if pq == 0 {
			res.Residual = relres
			return res, breakdownErr("PCG", scheme, i, "pᵀAp = 0")
		}
		alpha := rho / pq
		e.axpy(i, x, alpha, p)
		e.axpy(i, r, -alpha, q)
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("PCG", scheme)
			}
			continue
		}
		i++
		res.Iterations = i

		relres = e.norm2(r.data) / normB
		//hot:cold diagnostic residual history, off by default
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		//hot:cold convergence exit: verified once per solve, rollback on a corrupted residual
		if relres <= tolRes {
			// Verify before declaring victory so a corrupted small
			// residual cannot smuggle out a wrong solution.
			xOK := e.verify(x)
			rOK := true
			if xOK || opts.ForwardRecovery {
				rOK = e.verify(r)
			}
			if xOK && rOK {
				res.Converged = true
				break
			}
			// The convergence exit skips the recurrence tail, so a forward
			// repair here always re-projects (restart = true) before the
			// next iteration reuses the search direction.
			if forwardRepair(i, xOK, rOK, true, true) {
				relres = e.norm2(r.data) / normB
				if relres <= tolRes && e.verify(x) && e.verify(r) {
					res.Converged = true
					break
				}
				continue
			}
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("PCG", scheme)
			}
			continue
		}

		if err := e.pco(i-1, z, r); err != nil {
			return res, err
		}
		rhoNew := e.dot(r.data, z.data)
		beta := rhoNew / rho
		e.xpby(i-1, p, z, beta, p)
		rho = rhoNew
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("PCG", scheme)
			}
			continue
		}
	}

	res.Residual = relres
	res.Stats.InjectedErrors = e.injectedCount()
	if !res.Converged {
		return notConverged("ABFT PCG", res, relres)
	}
	return res, nil
}
