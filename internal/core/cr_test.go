package core

import (
	"testing"

	"newsum/internal/fault"
	"newsum/internal/solver"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

func TestBasicCRFaultFreeMatchesUnprotected(t *testing.T) {
	a := sparse.Laplacian2D(15, 15)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	plain, err := solver.CR(a, b, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := BasicCR(a, b, Options{Options: solver.Options{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Iterations != plain.Iterations {
		t.Errorf("iterations: protected %d, plain %d", prot.Iterations, plain.Iterations)
	}
	if !vec.Equal(prot.X, plain.X, 1e-12) {
		t.Errorf("protected CR diverged from plain")
	}
	if prot.Stats.Detections != 0 {
		t.Errorf("fault-free detections: %+v", prot.Stats)
	}
}

func TestBasicCRRecoversFromErrors(t *testing.T) {
	for _, ev := range []fault.Event{
		{Iteration: 6, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
		{Iteration: 6, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
		{Iteration: 6, Site: fault.SiteMVM, Kind: fault.Memory, Index: -1},
		{Iteration: 6, Site: fault.SiteMVM, Kind: fault.CacheRegister, Index: -1},
	} {
		a := sparse.Laplacian2D(15, 15)
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		inj := fault.NewInjector([]fault.Event{ev}, 17)
		res, err := BasicCR(a, b, Options{
			Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
			Injector: inj,
		})
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if res.Stats.Detections == 0 {
			t.Errorf("%v: undetected", ev)
		}
		if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
			t.Errorf("%v: true residual %.3e", ev, tr)
		}
	}
}

func TestBasicCREager(t *testing.T) {
	a := sparse.Laplacian2D(12, 12)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 9, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
	}, 18)
	res, err := BasicCR(a, b, Options{
		Options:        solver.Options{Tol: 1e-10},
		DetectInterval: 500,
		EagerDetection: true,
		Injector:       inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 {
		t.Errorf("eager CR missed the error")
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}
