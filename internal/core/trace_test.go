package core

import (
	"strings"
	"testing"

	"newsum/internal/fault"
	"newsum/internal/solver"
)

func TestTraceRecordsTimeline(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	tr := &Trace{}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 3},
		{Iteration: 15, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1, Count: 2},
	}, 3)
	res, err := TwoLevelPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
		Trace:    tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count(EvCorrection) != res.Stats.Corrections {
		t.Errorf("trace corrections %d vs stats %d", tr.Count(EvCorrection), res.Stats.Corrections)
	}
	if tr.Count(EvRollback) != res.Stats.Rollbacks {
		t.Errorf("trace rollbacks %d vs stats %d", tr.Count(EvRollback), res.Stats.Rollbacks)
	}
	if tr.Count(EvCheckpoint) != res.Stats.Checkpoints {
		t.Errorf("trace checkpoints %d vs stats %d", tr.Count(EvCheckpoint), res.Stats.Checkpoints)
	}
	var sb strings.Builder
	if err := tr.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "correction") || !strings.Contains(out, "rollback") {
		t.Errorf("rendered trace incomplete:\n%s", out)
	}
}

func TestTraceNilIsInert(t *testing.T) {
	var tr *Trace
	tr.add(1, EvDetection, "x")
	if tr.Count(EvDetection) != 0 {
		t.Fatalf("nil trace counted")
	}
	if err := tr.Write(&strings.Builder{}); err != nil {
		t.Fatalf("nil write: %v", err)
	}
}

func TestTraceCap(t *testing.T) {
	tr := &Trace{Cap: 3}
	for i := 0; i < 10; i++ {
		tr.add(i, EvCheckpoint, "c")
	}
	if len(tr.Events) != 3 || tr.Dropped != 7 {
		t.Fatalf("cap enforcement: %d events, %d dropped", len(tr.Events), tr.Dropped)
	}
	var sb strings.Builder
	if err := tr.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dropped") {
		t.Fatalf("drop note missing")
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvDetection: "detection", EvCorrection: "correction",
		EvRollback: "rollback", EvCheckpoint: "checkpoint",
		EventKind(9): "unknown-event",
	} {
		if k.String() != want {
			t.Errorf("%d: %q", k, k.String())
		}
	}
}
