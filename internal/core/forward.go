package core

import "newsum/internal/checksum"

// This file is the forward-recovery tier (ROADMAP item 5, after
// Fasi–Langou–Robert–Uçar, "A Backward/Forward Recovery Approach for the
// Preconditioned Conjugate Gradient Method", arXiv:1511.04478): when an
// outer-level verification fires under Options.ForwardRecovery, the solver
// re-measures all three §5.2 checksum relations of the suspect vector and
// repairs it in place when the triple-checksum analysis localizes the
// corruption, avoiding the checkpoint rollback and its wasted iterations.
// Rollback remains the fallback for everything localization cannot prove.

// forwardOutcome classifies one attempt to repair an outer-level vector in
// place after a failed verification.
type forwardOutcome int

const (
	// forwardClean: every relation held on re-measurement — the triggering
	// probe fired on threshold-level noise; the checksums were re-anchored.
	forwardClean forwardOutcome = iota
	// forwardReanchored: exactly one relation was broken, which no data
	// error can produce — the corrupted site was the carried checksum
	// state; it was re-derived from the (trustworthy) data.
	forwardReanchored
	// forwardCorrected: the §5.2 single-error test passed, the located
	// element was corrected in place, and the post-repair confirmation
	// verified all three relations.
	forwardCorrected
	// forwardRejected: a correction was applied but the confirmation
	// failed — a fake-correction candidate, undone; rollback required.
	forwardRejected
	// forwardFailed: localization failed (multiple errors); rollback
	// required (the caller may still reconstruct the vector from clean
	// state where an identity such as r = b − A·x is available).
	forwardFailed
)

// DriftFactor widens the verification threshold for the amplified-drift
// screen of forwardDiagnose: an unlocalizable inconsistency whose every δ is
// within DriftFactor·θ of the checksum scale (or DriftFactor·η of the
// carried round-off bound) is attributed to floating point, not to a data
// error, and the vector is re-anchored instead of rolled back. The value
// keeps three orders of magnitude of clearance on both sides: genuine drift
// observed in fault transients sits within ~10·θ, while the smallest data
// error worth correcting (≳ the convergence tolerance) lands ≳ 1e3 above
// the widened limit.
const DriftFactor = 1e3

// withinDrift reports whether every checksum inconsistency of v is within
// the widened drift window.
func (e *engine) withinDrift(v *tracked, deltas, absSums [3]float64) bool {
	th := e.tol.Theta
	if th <= 0 {
		th = checksum.DefaultTheta
	}
	wide := checksum.Tol{Theta: DriftFactor * th}
	for k := range e.weights {
		if wide.InconsistentBound(deltas[k], e.n, absSums[k], DriftFactor*v.eta[k]) {
			return false
		}
	}
	return true
}

// forwardDiagnose re-measures all three checksum relations of v and
// attempts an in-place repair. It requires the engine to carry the Triple
// weight set (Options.ForwardRecovery arranges that); with any other weight
// set it degrades to forwardFailed and the caller rolls back.
//
// The classification is by the number of broken relations. A data error e
// at position j breaks all three relations by e·c_k(j), and no weight
// vanishes anywhere (the weights are 1, j and 1/j) — so exactly one broken
// relation implicates the carried checksum slot itself and the data is
// re-anchored over, while two or more route through checksum.Diagnose: the
// δ2·δ3 = δ1² single-error test, round-to-nearest localization with the
// IntegralityTol guard, and the harmonic cross-check. A surviving
// perturbation in the single-broken-relation case is bounded by the two
// relations that did hold, i.e. it is below the detection threshold — the
// same class of residual error the scheme accepts everywhere else.
//
// An applied correction is confirmed before it is trusted: all three
// relations must hold on the corrected data, otherwise the correction is
// undone (the fake-correction hazard of §5.2) and the caller rolls back.
//
//hot:cold forward recovery rides the recovery budget, not the per-iteration one
func (e *engine) forwardDiagnose(v *tracked) (forwardOutcome, checksum.TripleDiagnosis) {
	if len(e.weights) != len(checksum.Triple) {
		return forwardFailed, checksum.TripleDiagnosis{Kind: checksum.MultipleErrors}
	}
	var sums, absSums, deltas [3]float64
	inconsistent, bad := 0, 0
	for k := range e.weights {
		sum, abs := e.sums(v, k)
		e.stats.Verifications++
		sums[k], absSums[k] = sum, abs
		deltas[k] = sum - v.s[k]
		if e.tol.InconsistentBound(deltas[k], e.n, abs, v.eta[k]) {
			inconsistent++
			bad = k
		}
	}
	switch inconsistent {
	case 0:
		for k := range e.weights {
			checksum.Anchor(v.s, v.eta, k, sums[k], absSums[k], e.n)
		}
		return forwardClean, checksum.TripleDiagnosis{Kind: checksum.NoError}
	case 1:
		e.recompute(v)
		return forwardReanchored, checksum.TripleDiagnosis{
			Kind: checksum.SingleError, Pos: -1, Magnitude: deltas[bad],
		}
	}
	// Amplified-drift screen: a fault-polluted recurrence scalar multiplies
	// the usual O(n·ε) update noise, which can push every relation just past
	// the carried η bound at once with no data error present. Localizing
	// such noise would manufacture a fake single-error position (the ratio
	// δ2/δ1 of round-off is arbitrary), so when every δ still sits within
	// DriftFactor of the verification threshold the data is accepted and
	// the checksums re-anchored. A real strike clears the screen by orders
	// of magnitude: even a unit-magnitude data error leaves a relative
	// inconsistency around 1/n, far above DriftFactor·θ.
	if e.withinDrift(v, deltas, absSums) {
		e.recompute(v)
		return forwardReanchored, checksum.TripleDiagnosis{
			Kind: checksum.SingleError, Pos: -1, Magnitude: deltas[bad],
		}
	}
	diag := checksum.Diagnose(deltas[:], e.n, absSums[:], e.tol)
	if diag.Kind != checksum.SingleError {
		return forwardFailed, diag
	}
	// The revert restores the saved original value rather than re-adding the
	// magnitude: subtract-then-add is not a bit-exact round-trip when the
	// correction dwarfs the element, and a rejected repair must leave the
	// vector exactly as the rollback path expects to find it.
	orig := v.data[diag.Pos]
	checksum.CorrectSingle(v.data, diag)
	var csums, cabs [3]float64
	for k := range e.weights {
		sum, abs := e.sums(v, k)
		e.stats.Verifications++
		csums[k], cabs[k] = sum, abs
		if !e.tol.ConsistentBound(sum-v.s[k], e.n, abs, v.eta[k]) {
			v.data[diag.Pos] = orig
			return forwardRejected, checksum.TripleDiagnosis{Kind: checksum.MultipleErrors}
		}
	}
	for k := range e.weights {
		checksum.Anchor(v.s, v.eta, k, csums[k], cabs[k], e.n)
	}
	e.stats.Corrections++
	return forwardCorrected, diag
}
