package core

import (
	"newsum/internal/checkpoint"
	"newsum/internal/checksum"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// BasicCR solves the symmetric system A·x = b with the conjugate residual
// method under basic online ABFT protection — another §1-listed Krylov
// solver built from the same four vector-generating operations.
//
// Dependency analysis (§5.3 step 4): the CR recurrence keeps x, r, p and
// the products Ar, Ap. Errors anywhere propagate into x and r, so the
// outer level verifies those two; the checkpoint set is {x, p} with the
// scalar rᵀAr — r is recomputed as b − A·x and the products as A·r, A·p
// (three recovery MVMs).
func BasicCR(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	e := newEngine(a, nil, checksum.Single, &opts, &res.Stats)
	n := e.n

	x := e.newTracked("x")
	if opts.X0 != nil {
		copy(x.data, opts.X0)
		e.recompute(x)
	}
	r := e.newTracked("r")
	p := e.newTracked("p")
	ar := e.newTracked("ar")
	ap := e.newTracked("ap")
	bT := e.wrap("b", b)

	e.mulVec(r.data, x.data)
	vec.Sub(r.data, bT.data, r.data)
	e.recompute(r)
	copyTracked(p, r)
	e.mulVec(ar.data, r.data)
	e.recompute(ar)
	copyTracked(ap, ar)

	normB := e.norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	res.X = x.data
	relres := e.norm2(r.data) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	rAr := e.dot(r.data, ar.data)

	var store checkpoint.Store
	d, cd := opts.DetectInterval, opts.CheckpointInterval
	//hot:cold recovery machinery: runs only after a detection
	rollback := func(iter int) (int, bool) {
		res.Stats.Rollbacks++
		if res.Stats.Rollbacks > opts.MaxRollbacks {
			return iter, false
		}
		scal := map[string]float64{}
		snapIter, err := store.Restore(
			map[string][]float64{"x": x.data, "p": p.data},
			scal,
			map[string][]float64{"x": x.s, "p": p.s, "x.eta": x.eta, "p.eta": p.eta})
		if err != nil {
			return iter, false
		}
		rAr = scal["rAr"]
		e.mulVec(r.data, x.data)
		vec.Sub(r.data, bT.data, r.data)
		e.recompute(r)
		e.mulVec(ar.data, r.data)
		e.recompute(ar)
		e.mulVec(ap.data, p.data)
		e.recompute(ap)
		res.Stats.RecoveryMVMs += 3
		res.Stats.WastedIterations += iter - snapIter
		opts.Trace.add(iter, EvRollback, "restored iteration %d, recomputed r, Ar, Ap", snapIter)
		return snapIter, true
	}
	//hot:cold rollback-storm exit: runs at most once per solve
	storm := func() (Result, error) {
		res.Residual = relres
		res.Stats.InjectedErrors = e.injectedCount()
		return res, rollbackStormErr("CR", Basic)
	}

	i := 0
	// Steady-state iteration: hotalloc polices allocations, checksumguard
	// raw writes to the protected vectors (//hot:cold branches excluded).
	//
	//hot:loop CR protected iteration (§5.3 construction)
	//hot:protected x r p ar ap
	for i < maxIter {
		if err := opts.ctxErr("CR"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = e.injectedCount()
			return res, err
		}
		if i > 0 && i%d == 0 {
			// Unlike PCG/BiCGStab there is no preconditioner solve dividing
			// the carried checksum error back down by d, so the Ar/Ap
			// recurrences amplify the round-off bound η by ~(d·α + β) per
			// iteration; left unanchored it swallows genuine corruption
			// within a few detect windows. Verifying (and thereby
			// re-anchoring) them at every boundary breaks that growth and
			// catches a fault while it still lives in the product
			// recurrences, before it reaches x or r.
			//hot:cold detection handling and rollback
			if !e.verify(x) || !e.verify(r) || !e.verify(ar) || !e.verify(ap) {
				opts.Trace.add(i, EvDetection, "outer-level: checksum(x)/checksum(r) mismatch")
				var ok bool
				if i, ok = rollback(i); !ok {
					return storm()
				}
				continue
			}
		}
		//hot:cold amortized checkpoint branch: once per cd iterations
		if i%cd == 0 {
			if i > 0 && !e.verify(p) {
				var ok bool
				if i, ok = rollback(i); !ok {
					return storm()
				}
				continue
			}
			opts.Trace.add(i, EvCheckpoint, "snapshot {x, p}")
			store.Save(i,
				map[string][]float64{"x": x.data, "p": p.data},
				map[string]float64{"rAr": rAr},
				map[string][]float64{"x": x.s, "p": p.s, "x.eta": x.eta, "p.eta": p.eta})
			res.Stats.Checkpoints++
			e.corruptCheckpoint(i, &store)
		}

		apap := e.dot(ap.data, ap.data)
		//hot:cold suspect-scalar detection and rollback
		if suspectScalar(apap) || suspectScalar(rAr) {
			res.Stats.Detections++
			opts.Trace.add(i, EvDetection, "suspect recurrence scalar ApᵀAp = %g or rᵀAr = %g", apap, rAr)
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		//hot:cold breakdown exit
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if apap == 0 || rAr == 0 {
			res.Residual = relres
			return res, breakdownErr("CR", Basic, i, "ApᵀAp = 0 or rᵀAr = 0")
		}
		alpha := rAr / apap
		e.axpy(i, x, alpha, p)
		e.axpy(i, r, -alpha, ap)
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		i++
		res.Iterations = i

		relres = e.norm2(r.data) / normB
		//hot:cold diagnostic residual history, off by default
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		//hot:cold convergence exit: verified once per solve, rollback on a corrupted residual
		if relres <= tolRes {
			if e.verify(x) && e.verify(r) {
				res.Converged = true
				break
			}
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}

		e.mvm(i-1, ar, r)
		rArNew := e.dot(r.data, ar.data)
		beta := rArNew / rAr
		e.xpby(i-1, p, r, beta, p)
		e.xpby(i-1, ap, ar, beta, ap)
		rAr = rArNew
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
	}

	res.Residual = relres
	res.Stats.InjectedErrors = e.injectedCount()
	if !res.Converged {
		return notConverged("ABFT CR", res, relres)
	}
	return res, nil
}
