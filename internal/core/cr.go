package core

import (
	"newsum/internal/checksum"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// BasicCR solves the symmetric system A·x = b with the conjugate residual
// method under basic online ABFT protection — another §1-listed Krylov
// solver built from the same four vector-generating operations.
//
// Dependency analysis (§5.3 step 4): the CR recurrence keeps x, r, p and
// the products Ar, Ap. Errors anywhere propagate into x and r, so the
// outer level verifies those two; the checkpoint set is {x, p} with the
// scalar rᵀAr — r is recomputed as b − A·x and the products as A·r, A·p
// (three recovery MVMs).
func BasicCR(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	weights := checksum.Single
	if opts.ForwardRecovery {
		// Forward recovery needs the locating checksums δ2, δ3 on the
		// outer-level vectors themselves, so all three weights are carried.
		weights = checksum.Triple
	}
	e := newEngine(a, nil, weights, &opts, &res.Stats)
	n := e.n

	x := e.newTracked("x")
	if opts.X0 != nil {
		copy(x.data, opts.X0)
		e.recompute(x)
	}
	r := e.newTracked("r")
	p := e.newTracked("p")
	ar := e.newTracked("ar")
	ap := e.newTracked("ap")
	bT := e.wrap("b", b)

	e.mulVec(r.data, x.data)
	vec.Sub(r.data, bT.data, r.data)
	e.recompute(r)
	copyTracked(p, r)
	e.mulVec(ar.data, r.data)
	e.recompute(ar)
	copyTracked(ap, ar)

	normB := e.norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	res.X = x.data
	relres := e.norm2(r.data) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	rAr := e.dot(r.data, ar.data)

	store := opts.newStore()
	d, cd := opts.DetectInterval, opts.CheckpointInterval
	//hot:cold recovery machinery: runs only after a detection
	rollback := func(iter int) (int, bool) {
		res.Stats.Rollbacks++
		if res.Stats.Rollbacks > opts.MaxRollbacks {
			return iter, false
		}
		scal := map[string]float64{}
		snapIter, err := store.Restore(
			map[string][]float64{"x": x.data, "p": p.data},
			scal,
			map[string][]float64{"x": x.s, "p": p.s, "x.eta": x.eta, "p.eta": p.eta})
		if err != nil {
			return iter, false
		}
		rAr = scal["rAr"]
		if store.Lossy() {
			// Quantized restore: re-anchor x's checksums from the perturbed
			// data before anything verifies them.
			e.recompute(x)
			res.Stats.LossyRestores++
		}
		e.mulVec(r.data, x.data)
		vec.Sub(r.data, bT.data, r.data)
		e.recompute(r)
		e.mulVec(ar.data, r.data)
		e.recompute(ar)
		if store.Lossy() {
			// The restored direction and rᵀAr belong to the exact snapshot
			// state; against the reconstructed residual — dominated by the
			// quantization noise A·δx — the stale scalar makes the first
			// β = rᵀAr'/rᵀAr blow up and permanently poison p, stalling the
			// recurrence at the error bound. A lossy restore is therefore a
			// CR restart: p := r, Ap := Ar, rᵀAr fresh (the same
			// re-projection the forward-recovery tier performs).
			copyTracked(p, r)
			copyTracked(ap, ar)
			rAr = e.dot(r.data, ar.data)
			res.Stats.RecoveryMVMs += 2
		} else {
			e.mulVec(ap.data, p.data)
			e.recompute(ap)
			res.Stats.RecoveryMVMs += 3
		}
		res.Stats.WastedIterations += iter - snapIter
		opts.Trace.add(iter, EvRollback, "restored iteration %d, recomputed r, Ar, Ap", snapIter)
		return snapIter, true
	}
	//hot:cold rollback-storm exit: runs at most once per solve
	storm := func() (Result, error) {
		res.Residual = relres
		res.Stats.InjectedErrors = e.injectedCount()
		return res, rollbackStormErr("CR", Basic)
	}

	// forwardRepair is the forward-recovery tier for CR. Each failed vector
	// is repaired individually; a data repair of r invalidates the whole
	// product family (Ar was computed from the pre-repair r, p and Ap carry
	// its propagation), so it triggers a CR restart: Ar = A·r, p := r,
	// Ap := Ar, rᵀAr fresh. restart forces that rebuild even without a data
	// repair — the convergence exit skips the recurrence tail.
	//hot:cold forward recovery rides the recovery budget
	forwardRepair := func(iter int, xOK, rOK, arOK, apOK, pOK, restart bool) bool {
		if !opts.ForwardRecovery || res.Stats.ForwardRepairs >= opts.MaxRollbacks {
			return false
		}
		repaired := 0
		restartFamily := restart
		reconstructR := false
		if !xOK {
			out, diag := e.forwardDiagnose(x)
			switch out {
			case forwardRejected:
				res.Stats.RejectedCorrections++
				opts.Trace.add(iter, EvForwardRepair, "rejected fake correction on x; falling back")
				return false
			case forwardFailed:
				opts.Trace.add(iter, EvForwardRepair, "localization failed on x; falling back")
				return false
			case forwardCorrected:
				// An in-place correction moves the iterate, so the carried
				// residual no longer satisfies r = b − A·x even when r's own
				// verification passed; rebuild it below.
				reconstructR = true
				opts.Trace.add(iter, EvForwardRepair, "corrected x[%d] -= %.6g", diag.Pos, diag.Magnitude)
			case forwardReanchored:
				// Re-anchoring accepts x's data, including any sub-screen
				// perturbation the old checksums disagreed with, while the
				// recurrence residual tracks the old checksum state; rebuild
				// r = b − A·x below so the two cannot drift apart permanently.
				reconstructR = true
				opts.Trace.add(iter, EvForwardRepair, "re-anchored checksum(x)")
			}
			repaired++
		}
		if !rOK {
			// No in-place diagnosis is trusted on r — not even a confirmed
			// §5.2 correction: a collapsed recurrence scalar can shrink an
			// aliased multi-error pattern below the confirmation threshold,
			// and accepting it re-anchors corruption into the recurrence's
			// fixed-point anchor (see the PCG twin of this branch). r = b − A·x
			// holds for any step lengths taken, so a clean x rebuilds it
			// exactly for the price of one MVM.
			reconstructR = true
			repaired++
		}
		if reconstructR {
			if !e.verify(x) {
				return false
			}
			e.mulVec(r.data, x.data)
			vec.Sub(r.data, bT.data, r.data)
			e.recompute(r)
			res.Stats.RecoveryMVMs++
			restartFamily = true
			opts.Trace.add(iter, EvForwardRepair, "reconstructed r = b − A·x")
		}
		// The stored product family is never repaired element-wise. Ar and
		// Ap must equal A·r and A·p *exactly* — x advances by α·p while r
		// retreats by α·Ap, so any mismatch breaks the b − A·x invariant —
		// and even a §5.2-confirmed correction can be a fake accepted under
		// a collapsed scalar (see the r branch). A corrupted p additionally
		// invalidates the rᵀAr scalar and the Ap recurrence computed from
		// it. Every failed verification here routes to the family restart,
		// which rebuilds all three vectors from identity-exact state — no
		// trusted in-place repair, no rollback.
		if !arOK {
			restartFamily = true
			repaired++
		}
		if !apOK {
			restartFamily = true
			repaired++
		}
		if !pOK {
			restartFamily = true
			repaired++
		}
		if restartFamily {
			e.mulVec(ar.data, r.data)
			e.recompute(ar)
			res.Stats.RecoveryMVMs++
			copyTracked(p, r)
			copyTracked(ap, ar)
			rAr = e.dot(r.data, ar.data)
			opts.Trace.add(iter, EvForwardRepair, "re-projected {p, Ar, Ap} (CR restart)")
		}
		if repaired == 0 {
			return false
		}
		res.Stats.ForwardRepairs += repaired
		res.Stats.RollbacksAvoided++
		if snapIter, ok := store.LatestIteration(); ok {
			res.Stats.IterationsSaved += iter - snapIter
		}
		return true
	}

	i := 0
	// Steady-state iteration: hotalloc polices allocations, checksumguard
	// raw writes to the protected vectors (//hot:cold branches excluded).
	//
	//hot:loop CR protected iteration (§5.3 construction)
	//hot:protected x r p ar ap
	for i < maxIter {
		if err := opts.ctxErr("CR"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = e.injectedCount()
			return res, err
		}
		if i > 0 && i%d == 0 {
			// Unlike PCG/BiCGStab there is no preconditioner solve dividing
			// the carried checksum error back down by d, so the Ar/Ap
			// recurrences amplify the round-off bound η by ~(d·α + β) per
			// iteration; left unanchored it swallows genuine corruption
			// within a few detect windows. Verifying (and thereby
			// re-anchoring) them at every boundary breaks that growth and
			// catches a fault while it still lives in the product
			// recurrences, before it reaches x or r.
			var xOK, rOK, arOK, apOK, allOK bool
			if opts.ForwardRecovery {
				// Forward recovery needs every verdict (each failed vector
				// is repaired individually); the rollback-only path keeps
				// the short-circuit so its stats are unchanged.
				xOK, rOK, arOK, apOK = e.verify(x), e.verify(r), e.verify(ar), e.verify(ap)
				allOK = xOK && rOK && arOK && apOK
			} else {
				allOK = e.verify(x) && e.verify(r) && e.verify(ar) && e.verify(ap)
			}
			//hot:cold detection handling: forward repair first, else rollback
			if !allOK {
				opts.Trace.add(i, EvDetection, "outer-level: checksum(x)/checksum(r) mismatch")
				if !forwardRepair(i, xOK, rOK, arOK, apOK, true, false) {
					var ok bool
					if i, ok = rollback(i); !ok {
						return storm()
					}
					continue
				}
			}
		}
		//hot:cold amortized checkpoint branch: once per cd iterations
		if i%cd == 0 {
			if i > 0 && !e.verify(p) {
				if !forwardRepair(i, true, true, true, true, false, false) {
					var ok bool
					if i, ok = rollback(i); !ok {
						return storm()
					}
					continue
				}
			}
			opts.Trace.add(i, EvCheckpoint, "snapshot {x, p}")
			store.Save(i,
				map[string][]float64{"x": x.data, "p": p.data},
				map[string]float64{"rAr": rAr},
				map[string][]float64{"x": x.s, "p": p.s, "x.eta": x.eta, "p.eta": p.eta})
			res.Stats.Checkpoints++
			res.Stats.CheckpointBytes = store.BytesCopied
			res.Stats.CheckpointStoredBytes = store.BytesStored
			e.corruptCheckpoint(i, &store)
		}

		apap := e.dot(ap.data, ap.data)
		//hot:cold suspect-scalar detection and rollback
		if suspectScalar(apap) || suspectScalar(rAr) {
			res.Stats.Detections++
			opts.Trace.add(i, EvDetection, "suspect recurrence scalar ApᵀAp = %g or rᵀAr = %g", apap, rAr)
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		//hot:cold breakdown exit
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if apap == 0 || rAr == 0 {
			res.Residual = relres
			return res, breakdownErr("CR", Basic, i, "ApᵀAp = 0 or rᵀAr = 0")
		}
		alpha := rAr / apap
		e.axpy(i, x, alpha, p)
		e.axpy(i, r, -alpha, ap)
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		i++
		res.Iterations = i

		relres = e.norm2(r.data) / normB
		//hot:cold diagnostic residual history, off by default
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		//hot:cold convergence exit: verified once per solve, rollback on a corrupted residual
		if relres <= tolRes {
			xOK := e.verify(x)
			rOK := true
			if xOK || opts.ForwardRecovery {
				rOK = e.verify(r)
			}
			if xOK && rOK {
				res.Converged = true
				break
			}
			// The convergence exit skips the recurrence tail, so a forward
			// repair here always rebuilds the product family (restart).
			if forwardRepair(i, xOK, rOK, true, true, true, true) {
				relres = e.norm2(r.data) / normB
				if relres <= tolRes && e.verify(x) && e.verify(r) {
					res.Converged = true
					break
				}
				continue
			}
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}

		e.mvm(i-1, ar, r)
		rArNew := e.dot(r.data, ar.data)
		beta := rArNew / rAr
		e.xpby(i-1, p, r, beta, p)
		e.xpby(i-1, ap, ar, beta, ap)
		rAr = rArNew
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
	}

	res.Residual = relres
	res.Stats.InjectedErrors = e.injectedCount()
	if !res.Converged {
		return notConverged("ABFT CR", res, relres)
	}
	return res, nil
}
