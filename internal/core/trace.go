package core

import (
	"fmt"
	"io"
)

// EventKind classifies a fault-tolerance event in a run trace.
type EventKind int

const (
	// EvDetection: a verification flagged an inconsistency.
	EvDetection EventKind = iota
	// EvCorrection: the inner level corrected a single error in place.
	EvCorrection
	// EvRollback: state was restored from a checkpoint.
	EvRollback
	// EvCheckpoint: a snapshot was taken.
	EvCheckpoint
	// EvForwardRepair: the forward-recovery tier repaired state in place
	// (correction, re-anchoring, reconstruction or re-projection) instead
	// of rolling back.
	EvForwardRepair
)

func (k EventKind) String() string {
	switch k {
	case EvDetection:
		return "detection"
	case EvCorrection:
		return "correction"
	case EvRollback:
		return "rollback"
	case EvCheckpoint:
		return "checkpoint"
	case EvForwardRepair:
		return "forward-repair"
	default:
		return "unknown-event"
	}
}

// TraceEvent is one timeline entry of a protected solve.
type TraceEvent struct {
	// Iteration is the solver iteration the event occurred at.
	Iteration int
	Kind      EventKind
	// Detail carries event-specific context: the vector that failed
	// verification, the corrected position, the rollback target.
	Detail string
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("iter %4d  %-10s %s", e.Iteration, e.Kind, e.Detail)
}

// Trace is an optional, bounded event log a protected solve appends its
// fault-tolerance timeline to (attach via Options.Trace). It records only
// cold-path events — detections, corrections, rollbacks, checkpoints — so
// it costs nothing on fault-free iterations beyond the checkpoint entries.
type Trace struct {
	// Events in occurrence order, capped at Cap (oldest dropped).
	Events []TraceEvent
	// Cap bounds the log; 0 means 4096.
	Cap int
	// Dropped counts events discarded after the cap was reached.
	Dropped int
}

func (t *Trace) cap() int {
	if t.Cap <= 0 {
		return 4096
	}
	return t.Cap
}

// add appends an event, enforcing the cap. Nil traces are inert so call
// sites need no guards.
func (t *Trace) add(iter int, kind EventKind, format string, args ...any) {
	if t == nil {
		return
	}
	if len(t.Events) >= t.cap() {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, TraceEvent{
		Iteration: iter,
		Kind:      kind,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Write renders the timeline, one event per line.
func (t *Trace) Write(w io.Writer) error {
	if t == nil {
		return nil
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	if t.Dropped > 0 {
		if _, err := fmt.Fprintf(w, "(%d further events dropped at cap %d)\n", t.Dropped, t.cap()); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of recorded events of the given kind.
func (t *Trace) Count(kind EventKind) int {
	if t == nil {
		return 0
	}
	n := 0
	for _, e := range t.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
