package core

import (
	"math"
	"testing"

	"newsum/internal/checksum"
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// The fake-correction hazard campaign (§5.2): multi-element corruptions must
// never be "repaired" by an in-place single-element correction. Depending on
// where the burst lands, the sound outcomes are reconstruction from clean
// state (r has the identity r = b − A·x), a family restart (CR's products),
// or the checkpoint rollback (the iterate x, which has no identity to
// rebuild from) — but never Stats.Corrections > 0, which would be the
// forward tier corrupting a healthy element on a mislocated diagnosis.

// TestForwardBurstOnIterateRollsBack plants two equal-magnitude errors in
// the iterate update — the classic pattern that fools the double-checksum
// locator into "correcting" the midpoint element. The triple-checksum
// single-error test δ2·δ3 = δ1² rejects it at close positions, so the
// forward tier must refuse any repair and fall back to rollback.
func TestForwardBurstOnIterateRollsBack(t *testing.T) {
	a, b, m := forwardCampaignSystem(t)
	base, err := BasicPCG(a, m, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 10, Magnitude: 1e4},
		{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 12, Magnitude: 1e4},
	}, 1)
	res, err := BasicPCG(a, m, b, forwardCampaignOptions(inj))
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if len(inj.Injected) != 2 {
		t.Fatalf("burst did not fire exactly twice: injected=%d", len(inj.Injected))
	}
	if res.Stats.Corrections != 0 {
		t.Errorf("burst of 2 errors was 'corrected' %d times", res.Stats.Corrections)
	}
	if res.Stats.RollbacksAvoided != 0 {
		t.Errorf("unlocalizable iterate burst must not take the forward path: %+v", res.Stats)
	}
	if res.Stats.Rollbacks == 0 {
		t.Errorf("unlocalizable iterate burst must roll back: %+v", res.Stats)
	}
	if !vec.Equal(res.X, base.X, 1e-6) {
		t.Errorf("solution drifted from the fault-free answer")
	}
}

// TestForwardBurstOnResidualReconstructs plants the same two-element burst
// in the MVM output, which lands in the residual. Localization fails, but r
// has the identity r = b − A·x: the forward tier must rebuild it from the
// verified iterate — one recovery MVM, no correction, no rollback.
func TestForwardBurstOnResidualReconstructs(t *testing.T) {
	a, b, m := forwardCampaignSystem(t)
	base, err := BasicPCG(a, m, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 10, Magnitude: 1e4},
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 12, Magnitude: 1e4},
	}, 1)
	res, err := BasicPCG(a, m, b, forwardCampaignOptions(inj))
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if len(inj.Injected) != 2 {
		t.Fatalf("burst did not fire exactly twice: injected=%d", len(inj.Injected))
	}
	if res.Stats.Corrections != 0 {
		t.Errorf("burst of 2 errors was 'corrected' %d times", res.Stats.Corrections)
	}
	if res.Stats.Rollbacks != 0 {
		t.Errorf("residual burst should reconstruct forward, not roll back: %+v", res.Stats)
	}
	if res.Stats.RollbacksAvoided == 0 {
		t.Errorf("residual burst escaped the forward tier: %+v", res.Stats)
	}
	if !vec.Equal(res.X, base.X, 1e-6) {
		t.Errorf("solution drifted from the fault-free answer")
	}
}

// TestForwardBurstCRFamilyRestart plants a two-element burst in CR's
// product update Ar = A·r. Localization fails, and no identity repairs Ar
// element-wise — the forward tier must restart the whole product family
// from the residual instead of correcting or rolling back.
func TestForwardBurstCRFamilyRestart(t *testing.T) {
	a, b, _ := forwardCampaignSystem(t)
	base, err := BasicCR(a, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 10, Magnitude: 1e4},
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 12, Magnitude: 1e4},
	}, 1)
	res, err := BasicCR(a, b, forwardCampaignOptions(inj))
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if len(inj.Injected) != 2 {
		t.Fatalf("burst did not fire exactly twice: injected=%d", len(inj.Injected))
	}
	if res.Stats.Corrections != 0 {
		t.Errorf("burst of 2 errors was 'corrected' %d times", res.Stats.Corrections)
	}
	if res.Stats.Rollbacks != 0 {
		t.Errorf("product burst should restart the family forward, not roll back: %+v", res.Stats)
	}
	if res.Stats.RollbacksAvoided == 0 {
		t.Errorf("product burst escaped the forward tier: %+v", res.Stats)
	}
	if !vec.Equal(res.X, base.X, 1e-6) {
		t.Errorf("solution drifted from the fault-free answer")
	}
}

// aliasedPairSystem builds a system large enough to host the aliased
// two-error pattern: equal magnitudes at 1-based positions p and p+2 give
// the integral locator j = p+1 and a δ2·δ3/δ1² ratio of 1 + 1/(p(p+2)),
// inside the single-error test's 1e-6 relative tolerance once p ≳ 1000.
// Only the §5.2 post-correction confirmation can catch it — via the
// harmonic relation, which the "correction" leaves broken by
// 2e/(p(p+1)(p+2)).
func aliasedPairSystem(t *testing.T) (*sparse.CSR, []float64, precond.Preconditioner) {
	t.Helper()
	a := sparse.Laplacian2D(91, 91)
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = math.Cos(float64(i))
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, xTrue)
	m, err := precond.BlockJacobiILU0(a, 4)
	if err != nil {
		t.Fatalf("preconditioner: %v", err)
	}
	return a, b, m
}

// TestForwardRejectedFakeCorrectionRollsBack drives the aliased pair through
// a full solve: the forward tier's Diagnose is fooled into a single-error
// verdict at the healthy midpoint element, the confirmation rejects the
// correction, the correction is undone, and the solver falls back to
// rollback — the "rejected fake correction" path, counted explicitly.
func TestForwardRejectedFakeCorrectionRollsBack(t *testing.T) {
	a, b, m := aliasedPairSystem(t)
	base, err := BasicPCG(a, m, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 2, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 4000, Magnitude: 1e6},
		{Iteration: 2, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 4002, Magnitude: 1e6},
	}, 1)
	res, err := BasicPCG(a, m, b, forwardCampaignOptions(inj))
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if len(inj.Injected) != 2 {
		t.Fatalf("burst did not fire exactly twice: injected=%d", len(inj.Injected))
	}
	if res.Stats.RejectedCorrections == 0 {
		t.Errorf("aliased pair must be caught by the confirmation: %+v", res.Stats)
	}
	if res.Stats.Corrections != 0 {
		t.Errorf("rejected correction must not be counted as a correction: %+v", res.Stats)
	}
	if res.Stats.Rollbacks == 0 {
		t.Errorf("rejected correction must fall back to rollback: %+v", res.Stats)
	}
	if res.Stats.RollbacksAvoided != 0 {
		t.Errorf("rejected correction must not count as forward recovery: %+v", res.Stats)
	}
	if !vec.Equal(res.X, base.X, 1e-6) {
		t.Errorf("solution drifted from the fault-free answer")
	}
}

// TestForwardDiagnoseRejectsAliasedPair exercises the same aliased pair at
// the engine level and pins the undo semantics: the verdict is
// forwardRejected, the healthy midpoint element is bit-identical to its
// pre-diagnosis value (the fake correction was applied and reverted), and
// the two genuinely corrupted elements still carry their corruption.
func TestForwardDiagnoseRejectsAliasedPair(t *testing.T) {
	a := sparse.Laplacian2D(91, 91)
	var stats Stats
	opts := Options{}
	opts.normalize()
	e := newEngine(a, nil, checksum.Triple, &opts, &stats)
	v := e.newTracked("v")
	fillTracked(v, func(i int) float64 { return math.Cos(float64(i)) })
	e.recompute(v)
	const mag = 1e6
	v.data[4000] += mag
	v.data[4002] += mag
	before := [3]float64{v.data[4000], v.data[4001], v.data[4002]}
	out, _ := e.forwardDiagnose(v)
	if out != forwardRejected {
		t.Fatalf("aliased pair diagnosed as %d, want forwardRejected (%d)", out, forwardRejected)
	}
	if v.data[4001] != before[1] {
		t.Errorf("healthy midpoint element not restored: %g vs %g", v.data[4001], before[1])
	}
	if v.data[4000] != before[0] || v.data[4002] != before[2] {
		t.Errorf("corrupted elements must be left for the rollback to handle")
	}
	if stats.Corrections != 0 {
		t.Errorf("rejected correction counted as a correction")
	}
}

// TestForwardBurstCRIterateRollsBack is the CR twin of the PCG iterate-burst
// test: a two-element burst in the iterate update has no identity to rebuild
// from and must fall back to rollback, never an in-place "correction".
func TestForwardBurstCRIterateRollsBack(t *testing.T) {
	a, b, _ := forwardCampaignSystem(t)
	base, err := BasicCR(a, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 10, Magnitude: 1e4},
		{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 12, Magnitude: 1e4},
	}, 1)
	res, err := BasicCR(a, b, forwardCampaignOptions(inj))
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if res.Stats.Corrections != 0 {
		t.Errorf("burst of 2 errors was 'corrected' %d times", res.Stats.Corrections)
	}
	if res.Stats.RollbacksAvoided != 0 {
		t.Errorf("unlocalizable iterate burst must not take the forward path: %+v", res.Stats)
	}
	if res.Stats.Rollbacks == 0 {
		t.Errorf("unlocalizable iterate burst must roll back: %+v", res.Stats)
	}
	if !vec.Equal(res.X, base.X, 1e-6) {
		t.Errorf("solution drifted from the fault-free answer")
	}
}

// TestForwardRejectedFakeCorrectionCRRollsBack drives the large-j aliased
// pair through CR's iterate: the confirmation must reject the fake
// correction and the solver must roll back, exactly as in the PCG case.
func TestForwardRejectedFakeCorrectionCRRollsBack(t *testing.T) {
	a, b, _ := aliasedPairSystem(t)
	base, err := BasicCR(a, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 2, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 4000, Magnitude: 1e6},
		{Iteration: 2, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 4002, Magnitude: 1e6},
	}, 1)
	res, err := BasicCR(a, b, forwardCampaignOptions(inj))
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if res.Stats.RejectedCorrections == 0 {
		t.Errorf("aliased pair must be caught by the confirmation: %+v", res.Stats)
	}
	if res.Stats.Corrections != 0 {
		t.Errorf("rejected correction must not be counted as a correction: %+v", res.Stats)
	}
	if res.Stats.Rollbacks == 0 {
		t.Errorf("rejected correction must fall back to rollback: %+v", res.Stats)
	}
	if !vec.Equal(res.X, base.X, 1e-6) {
		t.Errorf("solution drifted from the fault-free answer")
	}
}

// TestForwardRejectedFakeCorrectionOnResidual routes the aliased pair
// through the MVM so it lands in the residual scaled by a common −α — still
// equal magnitudes, still a fake single-error candidate. This pattern is
// the reason r is never diagnosed in place: the burst inflates pᵀq, the
// collapsed α shrinks the pair until the post-correction inconsistency
// (suppressed by ~1/j³ at large indices) hides below the confirmation
// threshold, and a trusted "correction" would re-anchor checksum-endorsed
// corruption into the recurrence's fixed-point anchor. The forward tier
// instead reconstructs r = b − A·x from the verified iterate, which erases
// the corruption exactly — no diagnosis, no rejection, no rollback — and
// the solve still lands on the fault-free answer.
func TestForwardRejectedFakeCorrectionOnResidual(t *testing.T) {
	a, b, m := aliasedPairSystem(t)
	base, err := BasicPCG(a, m, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 3, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 4000, Magnitude: 1e7},
		{Iteration: 3, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 4002, Magnitude: 1e7},
	}, 1)
	res, err := BasicPCG(a, m, b, forwardCampaignOptions(inj))
	if err != nil {
		t.Fatalf("faulted solve: %v", err)
	}
	if res.Stats.Corrections != 0 {
		t.Errorf("aliased residual pair was 'corrected' %d times", res.Stats.Corrections)
	}
	if res.Stats.RejectedCorrections != 0 {
		t.Errorf("r must be rebuilt, never diagnosed: %+v", res.Stats)
	}
	if res.Stats.Rollbacks != 0 {
		t.Errorf("reconstruction handles the residual burst without rollback: %+v", res.Stats)
	}
	if res.Stats.RollbacksAvoided == 0 {
		t.Errorf("the forward tier must claim the avoided rollback: %+v", res.Stats)
	}
	if !vec.Equal(res.X, base.X, 1e-6) {
		t.Errorf("solution drifted from the fault-free answer")
	}
}
