package core

import (
	"fmt"

	"newsum/internal/checkpoint"
	"newsum/internal/checksum"
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// Batched multi-RHS protected PCG: k right-hand sides against ONE operator
// solved in lockstep, sharing one checksum encoding, one kernel pool and —
// the point — one matrix traversal per iteration (kernel.MulVecBlock) and
// columnwise Eq. (2)/(3) checksum updates (internal/checksum/block.go).
//
// The block solve is a scheduling optimization, never a numerical one:
// every column carries its own iterates, scalars, checksum state,
// checkpoint store and rollback budget, and executes exactly the operation
// sequence of a single-RHS BasicPCG on its column. When the batch is
// fault-free, column j's result is bitwise-identical to BasicPCG(a, m,
// bs[j], opts) — the property TestBlockPCGBitwiseMatchesSingle pins.
//
// Fault isolation is per column. A detection on column j rolls back only
// column j's state to its own checkpoint; the other columns never see the
// event. A column that exhausts its rollback budget, breaks down, or fails
// to converge dies alone — its error lands in BlockResult.Errs[j] and the
// remaining columns keep iterating. This is what lets the service batch
// concurrent requests without coupling their failure domains.

// BlockOptions configures a batched solve. The embedded Options apply to
// every column (a batching layer must only coalesce requests that share
// tol, iteration caps and detection cadence — see service.batchParams).
// The block path supports the basic scheme only: ForwardRecovery,
// EagerDetection, EagerTriple, Trace, and X0 are rejected.
type BlockOptions struct {
	Options
	// ColInjectors supplies per-column fault injectors; nil, or a nil
	// entry, runs that column fault-free. A column with an injector takes
	// the solo (per-column) MVM path so strikes land on exactly the same
	// operation sites as in a single-RHS solve.
	ColInjectors []*fault.Injector
}

// BlockResult reports a batched solve: one Result and one error slot per
// column, index-aligned with the input right-hand sides. Errs[j] is nil
// when column j converged; a failed column never aborts its siblings.
type BlockResult struct {
	Cols []Result
	Errs []error
}

// blockCol is one column's full solver state.
type blockCol struct {
	res           *Result
	err           *error
	x, r, z, p, q *tracked
	bT            *tracked
	b             []float64
	inj           *fault.Injector
	store         checkpoint.Store
	rho           float64
	alpha         float64
	relres        float64
	normB         float64
	i             int
	active        bool
}

// Outcomes of one column's post-MVM step.
const (
	colIterated = iota
	colConverged
	colRolledBack
	colDied
)

// blockSolver bundles the shared engine with the per-column states and the
// preallocated gather buffers of the batched phases.
type blockSolver struct {
	e    *engine
	opts *Options
	cols []*blockCol

	// Gather buffers for the batched MVM and VLO phases, sized once at
	// construction so the steady-state sweep allocates nothing.
	gp, gq            [][]float64
	gps, gpeta        [][]float64
	gqs, gqeta        [][]float64
	gxs, gxeta        [][]float64
	grs, greta        [][]float64
	galpha, gnegalpha []float64
	gmvm, gvlo        []*blockCol
	tolRes            float64
	maxIter, d, cd    int
}

// BasicBlockPCG solves A·X = B for k right-hand sides bs under the basic
// online ABFT scheme (Algorithm 1 columnwise), with per-column detection,
// checkpointing, rollback and failure. See the package comment above for
// the bitwise and isolation contracts.
func BasicBlockPCG(a *sparse.CSR, m precond.Preconditioner, bs [][]float64, opts BlockOptions) (BlockResult, error) {
	var br BlockResult
	if len(bs) == 0 {
		return br, fmt.Errorf("core: block solve needs at least one right-hand side")
	}
	for j := range bs {
		if err := validateSystem(a, bs[j]); err != nil {
			return br, fmt.Errorf("core: block column %d: %w", j, err)
		}
	}
	if opts.ColInjectors != nil && len(opts.ColInjectors) != len(bs) {
		return br, fmt.Errorf("core: %d columns but %d injectors", len(bs), len(opts.ColInjectors))
	}
	if opts.ForwardRecovery || opts.EagerDetection || opts.EagerTriple || opts.Trace != nil || opts.X0 != nil {
		return br, fmt.Errorf("core: block solve supports the basic scheme only (no forward recovery, eager modes, trace, or x0)")
	}
	opts.normalize()

	k := len(bs)
	br.Cols = make([]Result, k)
	br.Errs = make([]error, k)

	var setup Stats
	e := newEngine(a, m, checksum.Single, &opts.Options, &setup)
	s := &blockSolver{
		e:    e,
		opts: &opts.Options,
		cols: make([]*blockCol, k),

		gp: make([][]float64, k), gq: make([][]float64, k),
		gps: make([][]float64, k), gpeta: make([][]float64, k),
		gqs: make([][]float64, k), gqeta: make([][]float64, k),
		gxs: make([][]float64, k), gxeta: make([][]float64, k),
		grs: make([][]float64, k), greta: make([][]float64, k),
		galpha: make([]float64, k), gnegalpha: make([]float64, k),
		gmvm: make([]*blockCol, k), gvlo: make([]*blockCol, k),

		d:  opts.DetectInterval,
		cd: opts.CheckpointInterval,
	}
	s.tolRes = opts.Tol
	if s.tolRes <= 0 {
		s.tolRes = 1e-8
	}
	s.maxIter = opts.MaxIter
	if s.maxIter <= 0 {
		s.maxIter = 10 * a.Rows
	}

	for j := range bs {
		c := &blockCol{
			res:   &br.Cols[j],
			err:   &br.Errs[j],
			b:     bs[j],
			store: opts.newStore(),
		}
		if opts.ColInjectors != nil {
			c.inj = opts.ColInjectors[j]
		}
		s.cols[j] = c
		s.initCol(c)
	}

	s.solve()

	for _, c := range s.cols {
		c.res.Residual = c.relres
		if c.inj != nil {
			c.res.Stats.InjectedErrors = len(c.inj.Injected)
		}
		if !c.res.Converged && *c.err == nil {
			_, *c.err = notConverged("ABFT BlockPCG", *c.res, c.relres)
		}
	}
	return br, nil
}

// bind points the shared engine's per-solve hooks (stats, injector) at one
// column for the duration of that column's operations. The engine is used
// by one goroutine, column by column, so this is a plain field swap.
func (s *blockSolver) bind(c *blockCol) {
	s.e.stats = &c.res.Stats
	s.e.inj = c.inj
}

// initCol runs the pre-loop setup of Algorithm 1 on one column: r = b −
// A·x0 computed cleanly, initial convergence test, initial projection
// z = M⁻¹r, p = z, ρ = rᵀz — the exact sequence of BasicPCG.
func (s *blockSolver) initCol(c *blockCol) {
	e := s.e
	s.bind(c)
	c.x = e.newTracked("x")
	c.r = e.newTracked("r")
	c.z = e.newTracked("z")
	c.p = e.newTracked("p")
	c.q = e.newTracked("q")
	c.bT = e.wrap("b", c.b)

	e.mulVec(c.r.data, c.x.data)
	vec.Sub(c.r.data, c.bT.data, c.r.data)
	e.recompute(c.r)

	c.normB = e.norm2(c.b)
	if c.normB <= 0 {
		c.normB = 1
	}
	c.res.X = c.x.data
	c.relres = e.norm2(c.r.data) / c.normB
	if c.relres <= s.tolRes {
		c.res.Converged = true
		return
	}
	if err := e.pco(-1, c.z, c.r); err != nil {
		*c.err = err
		return
	}
	copyTracked(c.p, c.z)
	c.rho = e.dot(c.r.data, c.z.data)
	c.active = true
}

// fail deactivates a column with a terminal error; its siblings continue.
//
//hot:cold per-column terminal failure
func (s *blockSolver) fail(c *blockCol, err error) {
	*c.err = err
	c.active = false
}

// saveCheckpoint snapshots one column's {p, x, ρ} with carried checksums.
//
//hot:cold checkpoint machinery: invoked once per cd iterations per column
func (s *blockSolver) saveCheckpoint(c *blockCol) {
	c.store.Save(c.i,
		map[string][]float64{"p": c.p.data, "x": c.x.data},
		map[string]float64{"rho": c.rho},
		map[string][]float64{"p": c.p.s, "x": c.x.s, "p.eta": c.p.eta, "x.eta": c.x.eta},
	)
	c.res.Stats.Checkpoints++
	c.res.Stats.CheckpointBytes = c.store.BytesCopied
	c.res.Stats.CheckpointStoredBytes = c.store.BytesStored
	s.e.corruptCheckpoint(c.i, &c.store)
}

// rollback restores one column's snapshot and reconstructs its residual —
// the per-column recovery of Algorithm 1 line 9. Only this column's
// iteration counter moves; the rest of the batch is untouched.
//
//hot:cold recovery machinery: runs only after a detection
func (s *blockSolver) rollback(c *blockCol) bool {
	c.res.Stats.Rollbacks++
	if c.res.Stats.Rollbacks > s.opts.MaxRollbacks {
		return false
	}
	scal := map[string]float64{}
	snapIter, err := c.store.Restore(
		map[string][]float64{"p": c.p.data, "x": c.x.data},
		scal,
		map[string][]float64{"p": c.p.s, "x": c.x.s, "p.eta": c.p.eta, "x.eta": c.x.eta},
	)
	if err != nil {
		return false
	}
	c.rho = scal["rho"]
	if c.store.Lossy() {
		// Quantized restore: re-anchor this column's restored checksums
		// from the perturbed data before anything verifies them.
		s.e.recompute(c.x)
		c.res.Stats.LossyRestores++
	}
	s.e.mulVec(c.r.data, c.x.data)
	vec.Sub(c.r.data, c.bT.data, c.r.data)
	s.e.recompute(c.r)
	c.res.Stats.RecoveryMVMs++
	if c.store.Lossy() {
		// The restored direction and ρ belong to the exact snapshot state;
		// against the reconstructed residual the stale ρ makes the first
		// β = ρ'/ρ blow up and poison p (see BasicPCG's rollback). Restart
		// this column: z = M⁻¹r, p := z, ρ = rᵀz.
		if err := s.e.pco(-1, c.z, c.r); err != nil {
			return false
		}
		copyTracked(c.p, c.z)
		c.rho = s.e.dot(c.r.data, c.z.data)
	}
	c.res.Stats.WastedIterations += c.i - snapIter
	c.i = snapIter
	return true
}

// preMVM runs one column's pre-MVM phase — the outer-level detection
// boundary and the checkpoint boundary, with rollback repetition — and
// reports whether the column is still alive. The operation sequence per
// column is exactly BasicPCG's loop head.
func (s *blockSolver) preMVM(c *blockCol) bool {
	e := s.e
	s.bind(c)
	for {
		if c.i >= s.maxIter {
			//hot:cold iteration-budget exhaustion
			c.active = false
			return false
		}
		if c.i > 0 && c.i%s.d == 0 {
			xOK := e.verify(c.x)
			rOK := true
			if xOK {
				rOK = e.verify(c.r)
			}
			//hot:cold detection handling: per-column rollback
			if !xOK || !rOK {
				if !s.rollback(c) {
					s.fail(c, rollbackStormErr("BlockPCG", Basic))
					return false
				}
				continue
			}
		}
		//hot:cold amortized checkpoint branch: once per cd iterations
		if c.i%s.cd == 0 {
			if c.i > 0 && !e.verify(c.p) {
				if !s.rollback(c) {
					s.fail(c, rollbackStormErr("BlockPCG", Basic))
					return false
				}
				continue
			}
			s.saveCheckpoint(c)
		}
		return true
	}
}

// postMVM runs one column's post-MVM phase: recurrence scalars, the x and
// r updates (already applied by the batched VLO phase when batched ==
// true), convergence test and the recurrence tail. It mirrors BasicPCG
// line for line; batched == false applies the axpy updates here (the solo
// redo path after a rollback).
func (s *blockSolver) postMVM(c *blockCol, batched bool) int {
	e := s.e
	s.bind(c)
	if !batched {
		pq := e.dot(c.p.data, c.q.data)
		//hot:cold suspect-scalar detection and rollback
		if suspectScalar(pq) {
			c.res.Stats.Detections++
			if !s.rollback(c) {
				s.fail(c, rollbackStormErr("BlockPCG", Basic))
				return colDied
			}
			return colRolledBack
		}
		//hot:cold breakdown exit
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if pq == 0 {
			s.fail(c, breakdownErr("BlockPCG", Basic, c.i, "pᵀAp = 0"))
			return colDied
		}
		c.alpha = c.rho / pq
		e.axpy(c.i, c.x, c.alpha, c.p)
		e.axpy(c.i, c.r, -c.alpha, c.q)
	}
	c.i++
	c.res.Iterations = c.i

	c.relres = e.norm2(c.r.data) / c.normB
	//hot:cold diagnostic residual history, off by default
	if s.opts.RecordResiduals {
		c.res.History = append(c.res.History, c.relres)
	}
	//hot:cold convergence exit: verified once per column, rollback on a corrupted residual
	if c.relres <= s.tolRes {
		xOK := e.verify(c.x)
		rOK := true
		if xOK {
			rOK = e.verify(c.r)
		}
		if xOK && rOK {
			c.res.Converged = true
			c.active = false
			return colConverged
		}
		if !s.rollback(c) {
			s.fail(c, rollbackStormErr("BlockPCG", Basic))
			return colDied
		}
		return colRolledBack
	}

	if err := e.pco(c.i-1, c.z, c.r); err != nil {
		//hot:cold preconditioner failure kills the column, not the batch
		s.fail(c, err)
		return colDied
	}
	rhoNew := e.dot(c.r.data, c.z.data)
	beta := rhoNew / c.rho
	e.xpby(c.i-1, c.p, c.z, beta, c.p)
	c.rho = rhoNew
	return colIterated
}

// scalarStep computes one column's recurrence scalar pᵀAp and step length
// for the batched VLO phase, with the same suspect-scalar and breakdown
// handling as BasicPCG.
func (s *blockSolver) scalarStep(c *blockCol) int {
	e := s.e
	s.bind(c)
	pq := e.dot(c.p.data, c.q.data)
	//hot:cold suspect-scalar detection and rollback
	if suspectScalar(pq) {
		c.res.Stats.Detections++
		if !s.rollback(c) {
			s.fail(c, rollbackStormErr("BlockPCG", Basic))
			return colDied
		}
		return colRolledBack
	}
	//hot:cold breakdown exit
	//lint:ignore floatcmp exact zero guards the division below, not a detection decision
	if pq == 0 {
		s.fail(c, breakdownErr("BlockPCG", Basic, c.i, "pᵀAp = 0"))
		return colDied
	}
	c.alpha = c.rho / pq
	return colIterated
}

// soloIterate re-runs one full iteration for a column that rolled back
// mid-sweep: loop head, solo MVM, solo tail. Bitwise-identical per column
// to the batched phases — both are the BasicPCG operation sequence.
//
//hot:cold solo redo path: runs only after a per-column rollback
func (s *blockSolver) soloIterate(c *blockCol) {
	for c.active {
		if !s.preMVM(c) {
			return
		}
		s.bind(c)
		s.e.mvm(c.i, c.q, c.p)
		if s.postMVM(c, false) != colRolledBack {
			return
		}
	}
}

// solve is the lockstep sweep: every active column advances one iteration
// per pass — pre-MVM boundaries, one batched block MVM with the columnwise
// Eq. (2) update, the batched Eq. (3) x/r updates, then the per-column
// tails. Columns holding an injector take the solo MVM so faults strike
// the same sites as in a single solve; columns that roll back mid-sweep
// finish their iteration on the solo path.
//
//hot:loop batched PCG protected iteration (Algorithm 1 columnwise)
func (s *blockSolver) solve() {
	e := s.e
	for {
		anyActive := false
		for _, c := range s.cols {
			if c.active {
				anyActive = true
				break
			}
		}
		if !anyActive {
			return
		}
		if err := s.opts.ctxErr("BlockPCG"); err != nil {
			//hot:cold cancellation: every still-active column reports it
			for _, c := range s.cols {
				if c.active {
					s.fail(c, err)
				}
			}
			return
		}

		// Pre-MVM boundaries, gathering the columns that will take the
		// batched MVM (no injector) and the solo ones (injector present).
		nm, ns := 0, 0
		for _, c := range s.cols {
			if !c.active || !s.preMVM(c) {
				continue
			}
			if c.inj == nil {
				s.gmvm[nm] = c
				s.gp[nm] = c.p.data
				s.gq[nm] = c.q.data
				s.gps[nm] = c.p.s
				s.gpeta[nm] = c.p.eta
				s.gqs[nm] = c.q.s
				s.gqeta[nm] = c.q.eta
				nm++
			} else {
				s.gvlo[ns] = c
				ns++
			}
		}

		// One matrix traversal feeds every batched column (Eq. 2
		// columnwise); injector columns run the instrumented solo MVM.
		if nm > 0 {
			e.pool.MulVecBlock(e.a, s.gq[:nm], s.gp[:nm])
			e.encA.UpdateMVMBoundCols(s.gqs[:nm], s.gqeta[:nm], s.gp[:nm], s.gps[:nm], s.gpeta[:nm])
			for _, c := range s.gmvm[:nm] {
				c.res.Stats.ChecksumUpdates++
			}
		}
		for _, c := range s.gvlo[:ns] {
			s.bind(c)
			e.mvm(c.i, c.q, c.p)
		}

		// Batched step lengths and Eq. (3) x/r updates for the columns
		// that passed the scalar guard; the rest redo solo.
		nv := 0
		for _, c := range s.cols {
			if !c.active {
				continue
			}
			switch s.scalarStep(c) {
			case colIterated:
				s.gvlo[nv] = c
				s.galpha[nv] = c.alpha
				s.gnegalpha[nv] = -c.alpha
				s.gp[nv] = c.p.data
				s.gq[nv] = c.q.data
				s.gxs[nv] = c.x.s
				s.gxeta[nv] = c.x.eta
				s.gps[nv] = c.p.s
				s.gpeta[nv] = c.p.eta
				s.grs[nv] = c.r.s
				s.greta[nv] = c.r.eta
				s.gqs[nv] = c.q.s
				s.gqeta[nv] = c.q.eta
				nv++
			case colRolledBack:
				s.soloIterate(c)
			}
		}
		for i, c := range s.gvlo[:nv] {
			e.pool.Axpy(c.x.data, s.galpha[i], s.gp[i])
		}
		nvxs := s.gatherXS(nv)
		checksum.UpdateVLOAxpyBoundCols(nvxs, s.gxeta[:nv], s.galpha[:nv], s.gps[:nv], s.gpeta[:nv])
		for i, c := range s.gvlo[:nv] {
			e.pool.Axpy(c.r.data, s.gnegalpha[i], s.gq[i])
			c.res.Stats.ChecksumUpdates += 2
		}
		checksum.UpdateVLOAxpyBoundCols(s.grs[:nv], s.greta[:nv], s.gnegalpha[:nv], s.gqs[:nv], s.gqeta[:nv])

		// Per-column tails: convergence, projection, recurrence update.
		for _, c := range s.gvlo[:nv] {
			if s.postMVM(c, true) == colRolledBack {
				s.soloIterate(c)
			}
		}
	}
}

// gatherXS returns the x-checksum gather view of the first nv columns.
// (A helper only so the batched phase reads as one statement per update.)
func (s *blockSolver) gatherXS(nv int) [][]float64 {
	return s.gxs[:nv]
}
