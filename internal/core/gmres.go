package core

import (
	"fmt"
	"math"

	"newsum/internal/checksum"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// BasicGMRES solves A·x = b with restarted, right-preconditioned GMRES(m)
// under basic online ABFT protection — the paper's §5.3 recipe applied to a
// "variation of GMRES" from its §1 applicability list.
//
// Every Arnoldi step is one PCO (ẑ = M⁻¹vₖ), one MVM (w = A·ẑ) and a
// Gram-Schmidt sequence of VLOs, all carrying checksums. Detection verifies
// the freshly orthogonalized basis vector every DetectInterval steps; the
// Krylov cycle structure supplies natural checkpoints — the solution x
// changes only at restarts, so recovery from any error inside a cycle is
// simply discarding the cycle and restarting from the verified x (the
// checkpointed state is {x} alone).
func BasicGMRES(a *sparse.CSR, m precond.Preconditioner, b []float64, restart int, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	n := a.Rows
	if restart < 1 {
		restart = 30
	}
	if restart > n {
		restart = n
	}
	e := newEngine(a, m, checksum.Single, &opts, &res.Stats)

	x := e.newTracked("x")
	if opts.X0 != nil {
		copy(x.data, opts.X0)
		e.recompute(x)
	}
	bT := e.wrap("b", b)

	normB := e.norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	// Arnoldi storage: tracked basis vectors so checksums ride along.
	v := make([]*tracked, restart+1)
	for i := range v {
		v[i] = e.newTracked(fmt.Sprintf("v%d", i))
	}
	h := make([][]float64, restart+1)
	for i := range h {
		h[i] = make([]float64, restart)
	}
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	g := make([]float64, restart+1)
	// y is the triangular-solve workspace for the restart-cycle solution
	// update, sized once for the largest cycle (ISSUE 10: it used to be
	// allocated inside the restart loop, churning every cycle).
	y := make([]float64, restart)
	w := e.newTracked("w")
	zhat := e.newTracked("zhat")

	res.X = x.data
	var relres float64
	total := 0
	d := opts.DetectInterval

	store := opts.newStore()
	//hot:cold checkpoint machinery: invoked once per restart cycle
	saveCheckpoint := func() {
		store.Save(total,
			map[string][]float64{"x": x.data}, nil,
			map[string][]float64{"x": x.s, "x.eta": x.eta})
		res.Stats.Checkpoints++
		res.Stats.CheckpointBytes = store.BytesCopied
		res.Stats.CheckpointStoredBytes = store.BytesStored
		e.corruptCheckpoint(total, &store)
	}
	// restoreX rolls the solution back to the last cycle snapshot, charging
	// one rollback and the cycle's wasted iterations against the budgets.
	//hot:cold recovery machinery: runs only after a detection
	restoreX := func(wasted int) bool {
		res.Stats.Rollbacks++
		res.Stats.WastedIterations += wasted
		if res.Stats.Rollbacks > opts.MaxRollbacks {
			return false
		}
		if !store.HasSnapshot() {
			// Corruption before the first cycle's snapshot: restart from
			// the zero iterate, matching the pre-store behavior.
			vec.Zero(x.data)
			e.recompute(x)
			return true
		}
		if _, err := store.Restore(
			map[string][]float64{"x": x.data}, nil,
			map[string][]float64{"x": x.s, "x.eta": x.eta}); err != nil {
			return false
		}
		if store.Lossy() {
			// Quantized restore: re-anchor x's checksums from the perturbed
			// data before the cycle-start verification sees them.
			e.recompute(x)
			res.Stats.LossyRestores++
		}
		return true
	}

	for total < maxIter {
		if err := opts.ctxErr("GMRES"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = e.injectedCount()
			return res, err
		}
		// Cycle start: x is the only live state. Verify it (it was either
		// freshly verified last cycle or is the initial guess), snapshot
		// it, and build the residual.
		if !e.verify(x) {
			// x corrupted between cycles (e.g. a memory fault): restore
			// the previous snapshot.
			if !restoreX(0) {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("GMRES", Basic)
			}
		}
		saveCheckpoint()

		e.mulVec(w.data, x.data)
		vec.Sub(w.data, bT.data, w.data)
		e.recompute(w)
		beta := e.norm2(w.data)
		relres = beta / normB
		if relres <= tolRes {
			res.Converged = true
			break
		}
		e.scaleInto(total, v[0], 1/beta, w)
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		cycleBad := false
		for ; k < restart && total < maxIter; k++ {
			total++
			if err := e.pco(total-1, zhat, v[k]); err != nil {
				return res, err
			}
			e.mvm(total-1, w, zhat)
			// Modified Gram–Schmidt: dots are unprotected scalars (§3),
			// the axpys carry checksums.
			for i := 0; i <= k; i++ {
				h[i][k] = e.dot(w.data, v[i].data)
				e.axpy(total-1, w, -h[i][k], v[i])
			}
			h[k+1][k] = e.norm2(w.data)
			if h[k+1][k] > 0 {
				e.scaleInto(total-1, v[k+1], 1/h[k+1][k], w)
			}

			// Lazy detection on the newly produced basis vector: any error
			// in the PCO, MVM or orthogonalization VLOs of the last d
			// steps has propagated into it.
			//lint:ignore floatcmp exact zero of h[k+1][k] is the Arnoldi happy-breakdown test
			if total%d == 0 || h[k+1][k] == 0 {
				if !e.verify(v[k+1]) {
					cycleBad = true
					k++
					break
				}
			}

			for i := 0; i < k; i++ {
				t := cs[i]*h[i][k] + sn[i]*h[i+1][k]
				h[i+1][k] = -sn[i]*h[i][k] + cs[i]*h[i+1][k]
				h[i][k] = t
			}
			denom := math.Hypot(h[k][k], h[k+1][k])
			if denom <= 0 {
				res.Residual = relres
				return res, breakdownErr("GMRES", Basic, total, "Hessenberg breakdown")
			}
			cs[k] = h[k][k] / denom
			sn[k] = h[k+1][k] / denom
			h[k][k] = denom
			h[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] *= cs[k]

			res.Iterations = total
			relres = math.Abs(g[k+1]) / normB
			if opts.RecordResiduals {
				res.History = append(res.History, relres)
			}
			if relres <= tolRes {
				k++
				break
			}
		}

		if cycleBad {
			// Recovery: discard the Krylov cycle, restore the snapshot and
			// restart. No other state survives a cycle boundary.
			if !restoreX(k) {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("GMRES", Basic)
			}
			continue
		}

		// x += M⁻¹·(V·y): triangular solve for y, then tracked updates.
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= h[i][j] * y[j]
			}
			y[i] = s / h[i][i]
		}
		vec.Zero(w.data)
		e.recompute(w)
		for j := 0; j < k; j++ {
			e.axpy(total-1, w, y[j], v[j])
		}
		if err := e.pco(total-1, zhat, w); err != nil {
			return res, err
		}
		e.axpy(total-1, x, 1, zhat)

		// Verify the updated solution; a corrupted update discards the
		// cycle like any other error.
		if !e.verify(x) {
			if !restoreX(k) {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("GMRES", Basic)
			}
			continue
		}

		if relres <= tolRes {
			// Confirm with the true residual (restart drift).
			e.mulVec(w.data, x.data)
			vec.Sub(w.data, bT.data, w.data)
			relres = e.norm2(w.data) / normB
			if relres <= tolRes*10 {
				res.Converged = true
				break
			}
		}
	}

	res.Residual = relres
	res.Stats.InjectedErrors = e.injectedCount()
	if !res.Converged {
		return notConverged("ABFT GMRES", res, relres)
	}
	return res, nil
}
