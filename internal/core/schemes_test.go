package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// unsymSystem builds the PBiCGSTAB test system.
func unsymSystem(t *testing.T, side int) (*sparse.CSR, precond.Preconditioner, []float64) {
	t.Helper()
	a := sparse.ConvectionDiffusion2D(side, side, 15)
	m, err := precond.BlockJacobiILU0(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.3)
	}
	return a, m, b
}

func TestBasicPBiCGSTABFaultFreeMatchesUnprotected(t *testing.T) {
	a, m, b := unsymSystem(t, 20)
	plain, err := solver.PBiCGSTAB(a, m, b, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := BasicPBiCGSTAB(a, m, b, Options{Options: solver.Options{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Iterations != plain.Iterations {
		t.Errorf("iterations: protected %d, plain %d", prot.Iterations, plain.Iterations)
	}
	if !vec.Equal(prot.X, plain.X, 1e-12) {
		t.Errorf("protected solution differs")
	}
	if prot.Stats.Detections != 0 || prot.Stats.Rollbacks != 0 {
		t.Errorf("fault-free run had FT events: %+v", prot.Stats)
	}
}

func TestBasicPBiCGSTABRecoversFromErrors(t *testing.T) {
	for _, ev := range []fault.Event{
		{Iteration: 6, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
		{Iteration: 6, Site: fault.SitePCO, Kind: fault.Memory, Index: -1},
		{Iteration: 6, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
		{Iteration: 6, Site: fault.SitePCO, Kind: fault.CacheRegister, Index: -1},
	} {
		a, m, b := unsymSystem(t, 20)
		inj := fault.NewInjector([]fault.Event{ev}, 11)
		res, err := BasicPBiCGSTAB(a, m, b, Options{
			Options:  solver.Options{Tol: 1e-10, MaxIter: 10000},
			Injector: inj,
		})
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if res.Stats.Detections == 0 {
			t.Errorf("%v: not detected", ev)
		}
		if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
			t.Errorf("%v: true residual %.3e", ev, tr)
		}
	}
}

func TestTwoLevelPBiCGSTABInlineCorrection(t *testing.T) {
	a, m, b := unsymSystem(t, 20)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 4, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 17},
	}, 5)
	res, err := TwoLevelPBiCGSTAB(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Corrections != 1 || res.Stats.Rollbacks != 0 {
		t.Errorf("want 1 inline correction, 0 rollbacks: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestEagerAndLazyTwoLevelAgree(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	for _, eager := range []bool{false, true} {
		inj := fault.NewInjector([]fault.Event{
			{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 42},
			{Iteration: 15, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1, Count: 3},
		}, 9)
		res, err := TwoLevelPCG(a, m, b, Options{
			Options:     solver.Options{Tol: 1e-10},
			EagerTriple: eager,
			Injector:    inj,
		})
		if err != nil {
			t.Fatalf("eager=%v: %v", eager, err)
		}
		if res.Stats.Corrections != 1 {
			t.Errorf("eager=%v: corrections %d, want 1", eager, res.Stats.Corrections)
		}
		if res.Stats.Rollbacks == 0 {
			t.Errorf("eager=%v: the 3-element error should roll back", eager)
		}
		if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
			t.Errorf("eager=%v: true residual %.3e", eager, tr)
		}
	}
}

func TestOnlineMVDetectsArithmeticRepairsInPlace(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 123},
	}, 3)
	res, err := OnlineMVPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 || res.Stats.Corrections == 0 {
		t.Errorf("arithmetic MVM error not repaired: %+v", res.Stats)
	}
	if res.Stats.PartialRecomputeNNZ == 0 {
		t.Errorf("binary search should have recomputed nonzeros")
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestOnlineMVBlindToCacheError(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SitePCO, Kind: fault.CacheRegister, Index: 7},
	}, 3)
	res, err := OnlineMVPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
		Injector: inj,
	})
	// Whatever the outcome, the scheme must not have detected anything —
	// the §2 blindness.
	if res.Stats.Detections != 0 {
		t.Errorf("online MV claimed to detect a cache error: %+v", res.Stats)
	}
	_ = err
}

func TestOnlineMVVotesAwayMemoryError(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SitePCO, Kind: fault.Memory, Index: 7},
	}, 3)
	res, err := OnlineMVPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Corrections == 0 {
		t.Errorf("replicated storage should outvote the memory flip")
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestOnlineMVPBiCGSTAB(t *testing.T) {
	a, m, b := unsymSystem(t, 16)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 3, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
	}, 4)
	res, err := OnlineMVPBiCGSTAB(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Corrections == 0 {
		t.Errorf("MVM error not repaired: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestOrthoPCGDetectsResidualGap(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
	}, 6)
	res, err := OrthoPCG(a, m, b, Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     2,
		CheckpointInterval: 8,
		Injector:           inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 || res.Stats.Rollbacks == 0 {
		t.Errorf("residual-relationship check missed the error: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestOrthoPCGBlindToPCOCacheError(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SitePCO, Kind: fault.CacheRegister, Index: 7},
	}, 6)
	res, _ := OrthoPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
		Injector: inj,
	})
	if res.Stats.Detections != 0 {
		t.Errorf("orthogonality baseline claimed to detect a PCO cache error")
	}
}

func TestOfflineResidualReRunsOnCorruption(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	// A memory error in x propagates to a wrong final answer of the
	// unprotected run; the offline check must spot it and recompute.
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
	}, 8)
	res, err := OfflineResidualPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e after offline recompute", tr)
	}
}

func TestOfflineResidualCleanRunSinglePass(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	res, err := OfflineResidualPCG(a, m, b, Options{Options: solver.Options{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections != 0 || res.Stats.WastedIterations != 0 {
		t.Errorf("clean run should not rerun: %+v", res.Stats)
	}
}

func TestOfflineResidualPBiCGSTAB(t *testing.T) {
	a, m, b := unsymSystem(t, 16)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 4, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
	}, 8)
	res, err := OfflineResidualPBiCGSTAB(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestBasicJacobiProtects(t *testing.T) {
	a := sparse.DiagDominant(300, 5, 2)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 4, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
		{Iteration: 9, Site: fault.SitePCO, Kind: fault.Memory, Index: -1},
	}, 13)
	res, err := BasicJacobi(a, b, Options{
		Options:  solver.Options{Tol: 1e-10, MaxIter: 5000},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 || res.Stats.Rollbacks == 0 {
		t.Errorf("Jacobi protection inert: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestBasicChebyshevProtects(t *testing.T) {
	n := 100
	a := sparse.Tridiag(n, -1, 2, -1)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	lmin := 2 - 2*math.Cos(math.Pi/float64(n+1))
	lmax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 10, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
	}, 14)
	res, err := BasicChebyshev(a, precond.Identity(n), b, lmin, lmax, Options{
		Options:  solver.Options{Tol: 1e-9, MaxIter: 100000},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 {
		t.Errorf("Chebyshev protection inert: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-7 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestUnprotectedCorruptsSilently(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
	}, 15)
	res, err := UnprotectedPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
		Injector: inj,
	})
	// Either it fails to converge, or it "converges" to something whose
	// true residual may be wrong — in no case does it detect anything.
	if res.Stats.Detections != 0 || res.Stats.Rollbacks != 0 {
		t.Fatalf("unprotected run performed fault tolerance?!")
	}
	_ = err
}

func TestMethodAndSchemeStrings(t *testing.T) {
	if MethodPCG.String() != "PCG" || MethodPBiCGSTAB.String() != "PBiCGSTAB" || Method(9).String() == "" {
		t.Errorf("Method.String broken")
	}
	for s := Unprotected; s <= OfflineResidual; s++ {
		if s.String() == "" || s.String() == "unknown scheme" {
			t.Errorf("Scheme %d has no name", s)
		}
	}
	if Scheme(99).String() != "unknown scheme" {
		t.Errorf("unknown scheme name")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}
	o.normalize()
	if o.DetectInterval != 1 || o.CheckpointInterval != 10 || o.Theta != 1e-10 || o.MaxRollbacks != 1000 {
		t.Fatalf("defaults: %+v", o)
	}
	// cd rounds up to a multiple of d.
	o2 := Options{DetectInterval: 3, CheckpointInterval: 10}
	o2.normalize()
	if o2.CheckpointInterval != 12 {
		t.Fatalf("cd alignment: %d", o2.CheckpointInterval)
	}
}

func TestValidateSystemErrors(t *testing.T) {
	rect := sparse.NewCOO(2, 3).ToCSR()
	if _, err := BasicPCG(rect, nil, make([]float64, 2), Options{}); err == nil {
		t.Fatalf("rectangular matrix accepted")
	}
	sq := sparse.Identity(3)
	if _, err := BasicPCG(sq, nil, make([]float64, 2), Options{}); err == nil {
		t.Fatalf("rhs length mismatch accepted")
	}
}

func TestTrueResidual(t *testing.T) {
	a := sparse.Identity(3)
	b := []float64{1, 2, 3}
	if got := TrueResidual(a, b, b); got != 0 {
		t.Fatalf("exact solution residual: %v", got)
	}
	if got := TrueResidual(a, b, []float64{0, 0, 0}); math.Abs(got-1) > 1e-15 {
		t.Fatalf("zero guess residual: %v", got)
	}
	if got := TrueResidual(a, []float64{0, 0, 0}, []float64{0, 0, 0}); got != 0 {
		t.Fatalf("zero rhs residual: %v", got)
	}
}

// Property: for random SPD systems and random single arithmetic errors, the
// basic scheme always recovers to a correct solution — the headline
// guarantee, exercised across matrices, positions and iterations.
func TestBasicPCGAlwaysRecoversProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := sparse.SPDRandom(80, 3, seed)
		m, err := precond.Jacobi(a)
		if err != nil {
			return false
		}
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = 1
		}
		ref, err := UnprotectedPCG(a, m, b, Options{Options: solver.Options{Tol: 1e-10, MaxIter: 5000}})
		if err != nil {
			return true // skip systems the plain solver cannot handle
		}
		iter := int(seed % int64(maxi(ref.Iterations-1, 1)))
		if iter < 0 {
			iter = -iter
		}
		inj := fault.NewInjector([]fault.Event{
			{Iteration: iter, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
		}, seed)
		res, err := BasicPCG(a, m, b, Options{
			Options:  solver.Options{Tol: 1e-10, MaxIter: 10000},
			Injector: inj,
		})
		if err != nil {
			return false
		}
		return TrueResidual(a, b, res.X) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestRollbackStormErrorWrapping(t *testing.T) {
	err := rollbackStormErr("PCG", Basic)
	if !errors.Is(err, ErrRollbackStorm) {
		t.Fatalf("storm error does not wrap sentinel")
	}
}

func TestOnlineMVRepairsVLOErrorByMajorityVote(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
	}, 19)
	res, err := OnlineMVPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 || res.Stats.Corrections == 0 {
		t.Errorf("duplicated execution should outvote the VLO error: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestOnlineMVRepairsPCOErrorByMajorityVote(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 4, Site: fault.SitePCO, Kind: fault.Arithmetic, Index: -1},
	}, 20)
	res, err := OnlineMVPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Corrections == 0 {
		t.Errorf("duplicated PCO should outvote the error: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

func TestOfflineResidualPBiCGSTABCleanSinglePass(t *testing.T) {
	a, m, b := unsymSystem(t, 14)
	res, err := OfflineResidualPBiCGSTAB(a, m, b, Options{Options: solver.Options{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections != 0 {
		t.Errorf("clean run should not trigger the rerun: %+v", res.Stats)
	}
}

// TestBitFlipsDetectedEndToEnd drives literal IEEE-754 bit flips (the §3
// error model's namesake) through the basic and two-level schemes.
func TestBitFlipsDetectedEndToEnd(t *testing.T) {
	for _, kind := range []fault.Kind{fault.Arithmetic, fault.Memory, fault.CacheRegister} {
		a, m, b, _ := testSystem(t, 400)
		inj := fault.NewInjector([]fault.Event{
			{Iteration: 6, Site: fault.SiteMVM, Kind: kind, Index: -1, BitFlip: true, Bit: -1},
		}, 23)
		res, err := BasicPCG(a, m, b, Options{
			Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
			Injector: inj,
		})
		if err != nil {
			t.Fatalf("%v bit flip: %v", kind, err)
		}
		if res.Stats.Detections == 0 {
			t.Errorf("%v bit flip escaped detection", kind)
		}
		if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
			t.Errorf("%v bit flip: true residual %.3e", kind, tr)
		}
	}
}

// TestTwoLevelCorrectsBitFlipInline: a single output bit flip is a single
// error — the inner level must fix it without rollback.
func TestTwoLevelCorrectsBitFlipInline(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 55, BitFlip: true, Bit: 54},
	}, 24)
	res, err := TwoLevelPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Corrections != 1 || res.Stats.Rollbacks != 0 {
		t.Errorf("bit flip should be corrected inline: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}

// TestOfflineResidualPBiCGSTABRerunsOnCorruption forces the rerun path: a
// large strike on the MVM output v ≠ A·p̂ enters s and r scaled by −α and
// the resulting discrepancy r − (b − A·x) is invariant under the BiCGSTAB
// update, so the first pass "converges" — small recurrence residual, wrong
// answer — exactly the silent corruption the offline true-residual check
// exists to catch. (A search-direction strike would NOT corrupt: the αp̂
// step and its −αv residual update cancel in the discrepancy.) The rerun is
// clean (events are one-shot) and must land on the genuine solution while
// charging the wasted first pass to the stats.
func TestOfflineResidualPBiCGSTABRerunsOnCorruption(t *testing.T) {
	a, m, b := unsymSystem(t, 16)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 40, Magnitude: 1e6},
	}, 8)
	res, err := OfflineResidualPBiCGSTAB(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 {
		t.Errorf("corrupted first pass must be detected: %+v", res.Stats)
	}
	if res.Stats.WastedIterations == 0 {
		t.Errorf("rerun must charge the wasted first pass: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("rerun true residual %.3e", tr)
	}
}

// TestCloneStartLengthMismatch pins the X0 validation shared by the
// BiCGSTAB-family entry points.
func TestCloneStartLengthMismatch(t *testing.T) {
	a, m, b := unsymSystem(t, 8)
	_, err := UnprotectedPBiCGSTAB(a, m, b, Options{
		Options: solver.Options{Tol: 1e-8, X0: make([]float64, a.Rows+1)},
	})
	if err == nil {
		t.Fatal("mismatched X0 length must be rejected")
	}
}

// TestApplyCleanIdentity: with no preconditioner the clean apply is a copy.
func TestApplyCleanIdentity(t *testing.T) {
	r := []float64{1, 2, 3}
	z := make([]float64, 3)
	if err := applyClean(nil, z, r); err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if z[i] != r[i] {
			t.Fatalf("z = %v, want %v", z, r)
		}
	}
}
