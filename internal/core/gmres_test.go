package core

import (
	"testing"

	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

func gmresSystem(t *testing.T) (*sparse.CSR, precond.Preconditioner, []float64) {
	t.Helper()
	a := sparse.ConvectionDiffusion2D(16, 16, 20)
	m, err := precond.ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	return a, m, b
}

func TestBasicGMRESFaultFreeMatchesUnprotected(t *testing.T) {
	a, m, b := gmresSystem(t)
	plain, err := solver.GMRES(a, m, b, 20, solver.Options{Tol: 1e-10, MaxIter: 10000})
	if err != nil {
		t.Fatal(err)
	}
	prot, err := BasicGMRES(a, m, b, 20, Options{Options: solver.Options{Tol: 1e-10, MaxIter: 10000}})
	if err != nil {
		t.Fatal(err)
	}
	if prot.Iterations != plain.Iterations {
		t.Errorf("iterations: protected %d, plain %d", prot.Iterations, plain.Iterations)
	}
	if !vec.Equal(prot.X, plain.X, 1e-10) {
		t.Errorf("protected GMRES diverged from plain")
	}
	if prot.Stats.Rollbacks != 0 || prot.Stats.Detections != 0 {
		t.Errorf("fault-free FT events: %+v", prot.Stats)
	}
}

func TestBasicGMRESRecoversFromErrors(t *testing.T) {
	for _, ev := range []fault.Event{
		{Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
		{Iteration: 7, Site: fault.SitePCO, Kind: fault.Memory, Index: -1},
		{Iteration: 7, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
		{Iteration: 7, Site: fault.SiteMVM, Kind: fault.CacheRegister, Index: -1},
	} {
		a, m, b := gmresSystem(t)
		inj := fault.NewInjector([]fault.Event{ev}, 31)
		res, err := BasicGMRES(a, m, b, 20, Options{
			Options:  solver.Options{Tol: 1e-10, MaxIter: 20000},
			Injector: inj,
		})
		if err != nil {
			t.Fatalf("%v: %v", ev, err)
		}
		if res.Stats.Detections == 0 {
			t.Errorf("%v: undetected", ev)
		}
		if res.Stats.Rollbacks == 0 {
			t.Errorf("%v: no cycle restart", ev)
		}
		if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
			t.Errorf("%v: true residual %.3e", ev, tr)
		}
	}
}

func TestBasicGMRESStormBounded(t *testing.T) {
	a, m, b := gmresSystem(t)
	inj := fault.NewInjector(fault.Scenario3(100000), 32)
	inj.Refire = true
	_, err := BasicGMRES(a, m, b, 20, Options{
		Options:      solver.Options{Tol: 1e-10, MaxIter: 100000},
		MaxRollbacks: 20,
		Injector:     inj,
	})
	if err == nil {
		t.Fatalf("persistent errors every MVM should exceed the rollback budget")
	}
}

func TestBasicGMRESOnSPD(t *testing.T) {
	a := sparse.Laplacian2D(12, 12)
	m, err := precond.IC0(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
	}, 33)
	res, err := BasicGMRES(a, m, b, 30, Options{
		Options:  solver.Options{Tol: 1e-10, MaxIter: 10000},
		Injector: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Errorf("true residual %.3e", tr)
	}
}
