// Package core implements the paper's primary contribution: the two online
// ABFT schemes built on the new-sum error-preserving checksum encoding —
// the basic ("lazy") scheme of Algorithm 1 and the two-level ("hybrid")
// scheme of Algorithm 2 — applied to preconditioned CG, preconditioned
// BiCGSTAB, Jacobi and Chebyshev; plus the three comparison baselines of
// §6 (online MV, online orthogonality, offline residual).
//
// Every protected solver follows the same contract: it computes the same
// iterates as its unprotected counterpart in internal/solver (the checksum
// machinery is fully decoupled from the numerical operations, Fig. 2(d)),
// detects soft errors injected through a fault.Injector, and recovers via
// immediate correction (inner level) or checkpoint rollback (outer level).
package core

import (
	"context"
	"errors"
	"fmt"

	"newsum/internal/checkpoint"
	"newsum/internal/checksum"
	"newsum/internal/fault"
	"newsum/internal/kernel"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

// ErrRollbackStorm is wrapped when a protected solver exceeds its rollback
// budget — the "does not terminate" outcome (Table 4, Scenario 3, basic
// scheme) reported as Inf in the paper's Fig. 6.
var ErrRollbackStorm = errors.New("core: rollback limit exceeded; execution does not terminate")

// Scheme names a fault-tolerance design under comparison (§6).
type Scheme int

const (
	// Unprotected is the plain solver with no fault tolerance.
	Unprotected Scheme = iota
	// Basic is the paper's basic online ABFT (Algorithm 1): checksum
	// updates every operation, lazy verification every d iterations,
	// checkpoint/rollback recovery.
	Basic
	// TwoLevel is the paper's two-level online ABFT (Algorithm 2):
	// triple-checksum correct-or-rollback after every MVM plus the
	// Basic outer level.
	TwoLevel
	// OnlineMV is the Sloan-style baseline: traditional checksum verified
	// after every MVM with binary-search localization, duplicated
	// PCO/VLO execution for the remaining operations.
	OnlineMV
	// Orthogonality is the Chen-style baseline: periodic residual
	// relationship checking with checkpoint/rollback.
	Orthogonality
	// OfflineResidual verifies only at the end and recomputes everything
	// on failure.
	OfflineResidual
)

func (s Scheme) String() string {
	switch s {
	case Unprotected:
		return "unprotected"
	case Basic:
		return "basic online ABFT"
	case TwoLevel:
		return "two-level online ABFT"
	case OnlineMV:
		return "online MV"
	case Orthogonality:
		return "online orthogonality"
	case OfflineResidual:
		return "offline residual"
	default:
		return "unknown scheme"
	}
}

// Stats accounts for the fault-tolerance work a protected solve performed.
type Stats struct {
	// ChecksumUpdates counts checksum update computations (one per
	// vector-generating operation per weight set).
	ChecksumUpdates int
	// Verifications counts checksum relationship verifications (each an
	// O(n) weighted sum).
	Verifications int
	// Detections counts verifications that flagged an inconsistency.
	Detections int
	// Corrections counts inner-level single-error corrections (two-level
	// scheme) or localized recomputations (online MV).
	Corrections int
	// Checkpoints counts snapshots taken.
	Checkpoints int
	// Rollbacks counts checkpoint restorations.
	Rollbacks int
	// RecoveryMVMs counts full matrix-vector products performed solely
	// for recovery or for baseline detection (orthogonality checks,
	// binary-search recomputation is accounted in PartialRecomputeNNZ).
	RecoveryMVMs int
	// PartialRecomputeNNZ counts nonzeros touched by online MV's
	// binary-search localization and repair.
	PartialRecomputeNNZ int
	// InjectedErrors is the number of fault records that fired during the
	// run.
	InjectedErrors int
	// WastedIterations counts iterations discarded by rollbacks.
	WastedIterations int
	// ForwardRepairs counts outer-level in-place repairs applied under
	// Options.ForwardRecovery: §5.2 single-error corrections, checksum
	// re-anchorings when only the carried checksum state was corrupted,
	// and reconstructions of a vector from still-clean state (one per
	// repaired vector).
	ForwardRepairs int
	// RollbacksAvoided counts detection events fully resolved by forward
	// repair — each one a checkpoint restoration that did not happen.
	RollbacksAvoided int
	// IterationsSaved accumulates, for every avoided rollback, the
	// iterations the checkpoint restoration would have discarded (current
	// iteration minus the latest snapshot's iteration).
	IterationsSaved int
	// RejectedCorrections counts forward corrections whose post-repair
	// confirmation failed — fake-correction candidates that were undone
	// and routed to rollback instead.
	RejectedCorrections int
	// CheckpointBytes is the logical state volume captured across all
	// checkpoints of the solve — vector and checksum-slot float64s — the
	// §5.1 copy-overhead accounting, independent of codec.
	CheckpointBytes int64
	// CheckpointStoredBytes is the volume actually held in memory after
	// the snapshot codec's encoding; equals CheckpointBytes for the Full
	// codec and shrinks under Lossy/Diff (ROADMAP item 4).
	CheckpointStoredBytes int64
	// LossyRestores counts rollbacks that restored quantized state; each
	// one re-anchored the restored vectors' checksums from the perturbed
	// data so verification doesn't false-alarm on quantization error.
	LossyRestores int
}

// Result is the outcome of a protected solve.
type Result struct {
	solver.Result
	Stats Stats
}

// Options configures a protected solve. The zero value selects the paper's
// defaults: θ = 1e-10, d = 1, cd = 10, PracticalD decoupling scalar.
type Options struct {
	solver.Options

	// DetectInterval is the paper's d: outer-level verification happens
	// every d iterations. 0 means 1.
	DetectInterval int
	// CheckpointInterval is the paper's cd: checkpoints are taken every
	// cd iterations. It is rounded up to a multiple of DetectInterval so
	// snapshots are always taken on verified state. 0 means
	// 10·DetectInterval.
	CheckpointInterval int
	// Theta is the checksum verification threshold θ; 0 means 1e-10.
	Theta float64
	// MaxRollbacks bounds recovery attempts; exceeding it aborts with
	// ErrRollbackStorm. 0 means 1000.
	MaxRollbacks int
	// DScalar overrides the decoupling scalar d of the encoding; 0 selects
	// checksum.PracticalD(A). Set UseLemmaD for the worst-case bound.
	DScalar float64
	// UseLemmaD selects the Lemma 2 lower bound for the decoupling scalar
	// (see checksum.LemmaD for the numerical trade-off).
	UseLemmaD bool
	// EagerDetection verifies every vector-generating operation's output
	// immediately instead of waiting for the DetectInterval boundary — the
	// paper's "eager" mode (§1, §4: errors can be detected "eagerly or
	// lazily"). Detection latency drops to a single operation at the cost
	// of roughly one extra O(n) weighted sum per operation. Rollback
	// recovery is unchanged.
	EagerDetection bool
	// EagerTriple makes the two-level scheme carry all three checksums
	// through every operation, as in the paper's Table 4 cost model
	// ((2/d+9) VDP per iteration). The default is the lazy variant: only
	// the c1 checksum is carried (basic-scheme cost) and the locating
	// checksums δ2, δ3 are evaluated directly from the encoded matrix rows
	// when — and only when — the δ1 probe detects an error. The two are
	// semantically equivalent (exp_k = row_k·p + d·c_kᵀp = c_kᵀA·p); the
	// lazy variant moves 6 O(n) dots from every iteration to the rare
	// error path. The eager mode remains for the Table 4 ablation.
	EagerTriple bool
	// CheckpointCodec selects how outer-level snapshots are held in memory
	// (ROADMAP item 4, after Tao et al., arXiv:1804.11268):
	// checkpoint.Full deep copies (the default — restores are bitwise),
	// checkpoint.Lossy error-bounded quantization, or checkpoint.Diff
	// bitwise XOR deltas against the previous checkpoint. After a rollback
	// from a Lossy store the solver re-anchors every restored vector's
	// checksums from the (perturbed) data, so online verification never
	// false-alarms on quantization error; the price is a mildly degraded
	// restart iterate, characterized in internal/accuracy.
	CheckpointCodec checkpoint.Codec
	// CheckpointAbsBound and CheckpointRelBound set the Lossy codec's
	// elementwise error bound max(abs, rel·maxAbs) per 256-element block;
	// both zero selects checkpoint.DefaultRelBound. Ignored by the exact
	// codecs.
	CheckpointAbsBound float64
	CheckpointRelBound float64
	// ForwardRecovery enables the forward-recovery tier (ROADMAP item 5,
	// after Fasi–Langou–Robert–Uçar, arXiv:1511.04478): the outer-level
	// vectors carry all three §5.2 checksums, and a detection first
	// attempts an in-place repair — single-error correction of the located
	// element, re-anchoring when only the carried checksum state is
	// corrupted, or reconstruction of r = b − A·x from clean state — then
	// re-projects the dependent search direction, rolling back only when
	// localization fails or a correction is rejected by its post-repair
	// confirmation. The extra steady-state cost is two more checksum
	// updates per vector operation (the Linear and Harmonic weights).
	ForwardRecovery bool
	// Injector supplies scheduled soft errors; nil runs fault-free.
	Injector *fault.Injector
	// Trace, when non-nil, receives the run's fault-tolerance timeline
	// (detections, corrections, rollbacks, checkpoints). Cold-path only.
	Trace *Trace
	// Encoding, when non-nil, supplies a precomputed checksum encoding of A
	// (see checksum.NewEncoding) instead of re-deriving cᵀA − d·cᵀ inside the
	// solve — the paper's offline cost amortized across repeated solves
	// against the same operator. The encoding pins the decoupling scalar, so
	// DScalar and UseLemmaD are ignored when it is set. It must have been
	// derived from the same matrix A that is being solved; the caller (e.g.
	// the internal/service encoding cache) is responsible for that identity.
	Encoding *checksum.Encoding
	// Pool, when non-nil, runs the solve's hot loops — SpMV, the blocked
	// pairwise reductions and the fused VLO/checksum updates — on a
	// shared-memory worker pool. Results are bitwise-identical to the
	// serial solve at any worker count (the kernel determinism contract),
	// so enabling a pool never changes iterates, detections or rollbacks.
	// The pool's scratch is reused across calls: one concurrent solve per
	// pool. nil runs serially.
	Pool *kernel.Pool
	// Ctx, when non-nil, is polled at every iteration boundary: a canceled
	// or expired context aborts the solve with an error wrapping ctx.Err().
	// This is the only way a caller can stop a diverging or fault-storming
	// solve mid-flight — long-running services need it for per-job deadlines
	// and graceful drain. nil means run to completion.
	Ctx context.Context
}

// ctxErr reports a pending cancellation of the solve's context, nil when no
// context was attached or it is still live. Solver loops poll it once per
// iteration — a non-blocking select, so the fault-free hot path pays one
// channel poll per iteration.
func (o *Options) ctxErr(method string) error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		//hot:cold cancellation exit: fires at most once per solve
		return fmt.Errorf("core: %s solve canceled: %w", method, o.Ctx.Err())
	default:
		return nil
	}
}

func (o *Options) normalize() {
	if o.DetectInterval < 1 {
		o.DetectInterval = 1
	}
	if o.CheckpointInterval < 1 {
		o.CheckpointInterval = 10 * o.DetectInterval
	}
	// Checkpoints must land on verified state, so cd is rounded up to a
	// multiple of d — except under eager detection, where every operation
	// is verified and any checkpoint cadence is safe.
	if !o.EagerDetection {
		if rem := o.CheckpointInterval % o.DetectInterval; rem != 0 {
			o.CheckpointInterval += o.DetectInterval - rem
		}
	}
	if o.Theta <= 0 {
		o.Theta = 1e-10
	}
	if o.MaxRollbacks <= 0 {
		o.MaxRollbacks = 1000
	}
}

// newStore builds a checkpoint store configured with the solve's snapshot
// codec and error bounds.
func (o *Options) newStore() checkpoint.Store {
	return checkpoint.Store{
		Codec:    o.CheckpointCodec,
		AbsBound: o.CheckpointAbsBound,
		RelBound: o.CheckpointRelBound,
	}
}

func notConverged(method string, r Result, relres float64) (Result, error) {
	return r, fmt.Errorf("%w: %s after %d iterations (relres %.3e)",
		solver.ErrNotConverged, method, r.Iterations, relres)
}

func validateSystem(a *sparse.CSR, b []float64) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("core: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return fmt.Errorf("core: rhs length %d, want %d", len(b), a.Rows)
	}
	return nil
}

func rollbackStormErr(method string, s Scheme) error {
	return fmt.Errorf("%w: %s under %s", ErrRollbackStorm, method, s)
}

func breakdownErr(method string, s Scheme, iter int, what string) error {
	return fmt.Errorf("core: %s (%s) breakdown at iteration %d: %s", method, s, iter, what)
}
