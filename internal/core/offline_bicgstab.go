package core

import (
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// UnprotectedPBiCGSTAB runs plain preconditioned BiCGSTAB with fault
// injection but no detection or recovery — the control arm and the
// substrate of OfflineResidualPBiCGSTAB.
func UnprotectedPBiCGSTAB(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	inj := opts.Injector
	n := a.Rows

	x, err := cloneStart(n, opts.X0)
	if err != nil {
		return res, err
	}
	r := make([]float64, n)
	p := make([]float64, n)
	v := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	phat := make([]float64, n)
	shat := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r)
	rhat := vec.Clone(r)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	res.X = x
	relres := vec.Norm2(r) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	rawMVM := func(iter int, dst, src []float64) {
		inj.InjectMemory(iter, fault.SiteMVM, src)
		if restore := inj.CacheWindow(iter, fault.SiteMVM, src); restore != nil {
			a.MulVecStride(dst, src, 0, 2)
			restore()
			a.MulVecStride(dst, src, 1, 2)
		} else {
			a.MulVec(dst, src)
		}
		inj.InjectOutput(iter, fault.SiteMVM, dst)
	}

	rhoPrev, alpha, omega := 1.0, 1.0, 1.0
	for i := 0; i < maxIter; i++ {
		if err := opts.ctxErr("unprotected PBiCGSTAB"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = injCount(inj)
			return res, err
		}
		rho := vec.Dot(rhat, r)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rho == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", Unprotected, i, "ρ = 0")
		}
		if i == 0 {
			copy(p, r)
		} else {
			beta := (rho / rhoPrev) * (alpha / omega)
			vec.Axpy(p, -omega, v)
			inj.InjectOutput(i, fault.SiteVLO, p)
			vec.Xpby(p, r, beta, p)
		}
		if err := applyCleanInj(m, inj, i, phat, p); err != nil {
			return res, err
		}
		rawMVM(i, v, phat)
		rhatV := vec.Dot(rhat, v)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rhatV == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", Unprotected, i, "r̂ᵀv = 0")
		}
		alpha = rho / rhatV
		vec.Axpby(s, 1, r, -alpha, v)
		inj.InjectOutput(i, fault.SiteVLO, s)
		res.Iterations = i + 1
		if rel := vec.Norm2(s) / normB; rel <= tolRes {
			vec.Axpy(x, alpha, phat)
			relres = rel
			if opts.RecordResiduals {
				res.History = append(res.History, relres)
			}
			res.Converged = true
			break
		}
		if err := applyCleanInj(m, inj, i, shat, s); err != nil {
			return res, err
		}
		rawMVM(i, t, shat)
		tt := vec.Dot(t, t)
		if tt <= 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", Unprotected, i, "tᵀt = 0")
		}
		omega = vec.Dot(t, s) / tt
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if omega == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", Unprotected, i, "ω = 0")
		}
		vec.Axpy(x, alpha, phat)
		vec.Axpy(x, omega, shat)
		vec.Axpby(r, 1, s, -omega, t)
		inj.InjectOutput(i, fault.SiteVLO, r)
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tolRes {
			res.Converged = true
			break
		}
		rhoPrev = rho
	}
	res.Residual = relres
	res.Stats.InjectedErrors = injCount(inj)
	if !res.Converged {
		return notConverged("unprotected PBiCGSTAB", res, relres)
	}
	return res, nil
}

// OfflineResidualPBiCGSTAB is the offline-residual scheme applied to
// PBiCGSTAB: verify the true residual at the end, recompute from scratch on
// failure.
func OfflineResidualPBiCGSTAB(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	opts.normalize()
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	res, err := UnprotectedPBiCGSTAB(a, m, b, opts)
	res.Stats.Verifications++
	res.Stats.RecoveryMVMs++
	if err == nil && TrueResidual(a, b, res.X) <= 10*tolRes {
		return res, nil
	}
	res.Stats.Detections++
	first := res.Stats
	wasted := res.Iterations
	res2, err2 := UnprotectedPBiCGSTAB(a, m, b, opts)
	res2.Stats.Verifications += first.Verifications + 1
	res2.Stats.Detections += first.Detections
	res2.Stats.RecoveryMVMs += first.RecoveryMVMs + 1
	res2.Stats.WastedIterations = wasted
	res2.Stats.InjectedErrors = injCount(opts.Injector)
	if err2 == nil && TrueResidual(a, b, res2.X) > 10*tolRes {
		return notConverged("offline-residual PBiCGSTAB (rerun still corrupted)", res2, res2.Residual)
	}
	return res2, err2
}
