package core

import (
	"errors"
	"testing"

	"newsum/internal/kernel"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

// steadyStateAllocs measures the heap allocations of one protected solve
// capped at exactly iters iterations: the tolerance is unreachably tight,
// so the solve always runs the full budget and returns ErrNotConverged.
// Setup (engine, tracked vectors, the i=0 checkpoint, the final error) is
// a constant, so comparing the count at k and 2k iterations isolates the
// per-iteration cost — the quantity the hotalloc analyzer polices
// statically and this test pins dynamically.
func steadyStateAllocs(t *testing.T, iters int, pool *kernel.Pool,
	run func(opts Options) (Result, error)) float64 {
	t.Helper()
	opts := Options{}
	opts.Tol = 1e-300 // unreachable: the solve always exhausts MaxIter
	opts.MaxIter = iters
	opts.DetectInterval = 1
	opts.CheckpointInterval = 1 << 20 // i=0 only: checkpoints stay out of the steady state
	opts.Pool = pool
	var failed error
	allocs := testing.AllocsPerRun(3, func() {
		res, err := run(opts)
		if !errors.Is(err, solver.ErrNotConverged) {
			failed = err
		} else if res.Iterations != iters {
			failed = errors.New("solve stopped before exhausting MaxIter")
		}
	})
	if failed != nil {
		t.Fatalf("measured solve did not run the full %d iterations: %v", iters, failed)
	}
	return allocs
}

// TestSolveSteadyStateZeroAllocs asserts the steady-state allocation
// contract end to end: once a protected solve is warmed up, every further
// iteration performs zero heap allocations — serial and on a worker pool,
// for basic and two-level PCG and for BiCGStab. The static counterpart is
// the hotalloc analyzer over the //hot:loop-annotated solver loops; this
// test catches what escape analysis decides behind the analyzer's back
// (closure capture, interface boxing, append growth).
func TestSolveSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement solves are not short")
	}
	if raceEnabled {
		t.Skip("AllocsPerRun under the race detector counts instrumentation allocations")
	}
	a := sparse.Laplacian3D(17, 17, 17) // n = 4913 > the kernel's serial cutover
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	m, err := precond.Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}

	solvers := []struct {
		name string
		run  func(opts Options) (Result, error)
	}{
		{"BasicPCG", func(opts Options) (Result, error) { return BasicPCG(a, m, b, opts) }},
		{"TwoLevelPCG", func(opts Options) (Result, error) { return TwoLevelPCG(a, m, b, opts) }},
		{"BasicPBiCGSTAB", func(opts Options) (Result, error) { return BasicPBiCGSTAB(a, m, b, opts) }},
		// GMRES ignores CheckpointInterval — it snapshots at every restart
		// boundary — so a short restart length pulls the checkpoint-save and
		// triangular-solve paths into the measured steady state. This pins the
		// ISSUE 10 fix that hoisted the y workspace out of the restart loop
		// and the Store's double-buffered snapshot reuse.
		{"BasicGMRES", func(opts Options) (Result, error) { return BasicGMRES(a, m, b, 8, opts) }},
	}
	const k = 24
	for _, workers := range []int{0, 4} {
		var pool *kernel.Pool
		mode := "serial"
		if workers > 0 {
			pool = kernel.NewPool(workers)
			defer pool.Close()
			mode = "pool4"
		}
		for _, s := range solvers {
			t.Run(s.name+"/"+mode, func(t *testing.T) {
				atK := steadyStateAllocs(t, k, pool, s.run)
				at2K := steadyStateAllocs(t, 2*k, pool, s.run)
				// A genuine steady-state allocation adds at least k allocs
				// to the longer run; the slack of 2 absorbs measurement
				// jitter (AllocsPerRun floors its per-run average, and the
				// per-solve fmt error draws scratch from a sync.Pool the GC
				// occasionally empties) without masking a real leak.
				if delta := at2K - atK; delta > 2 {
					t.Errorf("steady state allocates: %v allocs at %d iters, %v at %d (%.2f allocs/iteration, want 0)",
						atK, k, at2K, 2*k, delta/k)
				}
			})
		}
	}
}
