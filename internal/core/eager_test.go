package core

import (
	"testing"

	"newsum/internal/fault"
	"newsum/internal/solver"
)

// TestEagerDetectionCatchesWithinOneIteration: with eager detection the
// error must be caught before it contaminates more than the current
// iteration, so the wasted-work count stays minimal even with a huge
// detection interval.
func TestEagerDetectionCatchesWithinOneIteration(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 12, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1},
	}, 7)
	res, err := BasicPCG(a, m, b, Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     1000, // lazy path would wait forever
		CheckpointInterval: 10,
		EagerDetection:     true,
		Injector:           inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 || res.Stats.Rollbacks == 0 {
		t.Fatalf("eager mode missed the error: %+v", res.Stats)
	}
	// Rollback target is at most 10 iterations back (cd), and detection
	// fired in the same iteration as the error, so at most ~cd iterations
	// are wasted per rollback.
	if res.Stats.WastedIterations > 12 {
		t.Fatalf("eager detection wasted %d iterations", res.Stats.WastedIterations)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Fatalf("true residual %.3e", tr)
	}
}

// TestLazyVsEagerSameAnswer: the two detection modes must agree on the
// final solution for the same fault schedule.
func TestLazyVsEagerSameAnswer(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	solve := func(eager bool) Result {
		inj := fault.NewInjector([]fault.Event{
			{Iteration: 8, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1},
		}, 9)
		res, err := BasicPCG(a, m, b, Options{
			Options:        solver.Options{Tol: 1e-10},
			EagerDetection: eager,
			Injector:       inj,
		})
		if err != nil {
			t.Fatalf("eager=%v: %v", eager, err)
		}
		return res
	}
	lazy := solve(false)
	eager := solve(true)
	if TrueResidual(a, b, lazy.X) > 1e-8 || TrueResidual(a, b, eager.X) > 1e-8 {
		t.Fatalf("one of the modes produced a wrong answer")
	}
	// Eager must pay more verifications but detect no later.
	if eager.Stats.Verifications <= lazy.Stats.Verifications {
		t.Errorf("eager mode should verify more: %d vs %d",
			eager.Stats.Verifications, lazy.Stats.Verifications)
	}
}

// TestEagerDetectionPBiCGSTAB exercises the eager path on the second
// solver.
func TestEagerDetectionPBiCGSTAB(t *testing.T) {
	a, m, b := unsymSystem(t, 16)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SitePCO, Kind: fault.Memory, Index: -1},
	}, 10)
	res, err := BasicPBiCGSTAB(a, m, b, Options{
		Options:            solver.Options{Tol: 1e-10, MaxIter: 10000},
		DetectInterval:     1000,
		CheckpointInterval: 8,
		EagerDetection:     true,
		Injector:           inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections == 0 {
		t.Fatalf("eager PBiCGSTAB missed the memory error: %+v", res.Stats)
	}
	if tr := TrueResidual(a, b, res.X); tr > 1e-8 {
		t.Fatalf("true residual %.3e", tr)
	}
}

// TestEagerDetectionFaultFreeNoOverheadEvents: no false positives.
func TestEagerDetectionFaultFreeNoOverheadEvents(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	res, err := BasicPCG(a, m, b, Options{
		Options:        solver.Options{Tol: 1e-10},
		EagerDetection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Detections != 0 || res.Stats.Rollbacks != 0 {
		t.Fatalf("eager fault-free run had FT events: %+v", res.Stats)
	}
}
