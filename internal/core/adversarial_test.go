package core

import (
	"testing"

	"newsum/internal/fault"
	"newsum/internal/solver"
)

// A checksum-state strike leaves the data clean but breaks the carried
// relationship; the outer level must still converge to the right answer,
// paying one futile rollback for the false alarm.
func TestBasicPCGSurvivesChecksumStateAttack(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector(fault.ModelChecksum.Events(fault.MagLarge, 7, fault.SiteMVM), 1)
	res, err := BasicPCG(a, m, b, Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     2,
		CheckpointInterval: 6,
		Injector:           inj,
	})
	if err != nil {
		t.Fatalf("checksum-state attack: %v", err)
	}
	if res.Stats.Detections == 0 {
		t.Errorf("broken checksum state escaped verification")
	}
	if res.Stats.Rollbacks == 0 {
		t.Errorf("no rollback charged for the false alarm")
	}
	checkSolution(t, a, b, res.X, 1e-9)
}

// A checkpoint-buffer strike poisons the snapshot copy while live state
// stays clean: dormant until a trigger fault forces a rollback, after which
// every restore resurrects the corruption and the run must abort in a
// rollback storm rather than emit a wrong answer.
func TestBasicPCGCheckpointAttackAborts(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	events := fault.ModelCheckpoint.Events(fault.MagLarge, 0, fault.SiteMVM)
	// Trigger: a plain MVM strike inside the first checkpoint window, so the
	// poisoned snapshot is still the rollback target.
	events = append(events, fault.Event{
		Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1,
	})
	inj := fault.NewInjector(events, 1)
	_, err := BasicPCG(a, m, b, Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     2,
		CheckpointInterval: 20,
		MaxRollbacks:       5,
		Injector:           inj,
	})
	if err == nil {
		t.Fatalf("poisoned checkpoint should end in a rollback storm")
	}
	if len(inj.Injected) == 0 {
		t.Fatalf("checkpoint fault never fired")
	}
}

// Without a trigger the poisoned snapshot is never restored: the solve is
// bit-identical to a fault-free run (the corruption is dormant by design).
func TestCheckpointAttackDormantWithoutTrigger(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector(fault.ModelCheckpoint.Events(fault.MagLarge, 0, fault.SiteMVM), 1)
	res, err := BasicPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatalf("dormant checkpoint fault broke the solve: %v", err)
	}
	if res.Stats.Rollbacks != 0 || res.Stats.Detections != 0 {
		t.Errorf("dormant corruption caused rollbacks=%d detections=%d",
			res.Stats.Rollbacks, res.Stats.Detections)
	}
	checkSolution(t, a, b, res.X, 1e-9)
}

// Sign flips preserve magnitude; the checksum relationship still breaks by
// 2|c_i·v_i|, so the outer level must detect and recover.
func TestBasicCRRecoversFromSignFlip(t *testing.T) {
	a, _, b, _ := testSystem(t, 400)
	events := fault.ModelSign.Events(fault.MagLarge, 9, fault.SiteMVM)
	inj := fault.NewInjector(events, 1)
	res, err := BasicCR(a, b, Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     2,
		CheckpointInterval: 6,
		Injector:           inj,
	})
	if err != nil {
		t.Fatalf("CR with sign flip: %v", err)
	}
	if res.Stats.Detections == 0 {
		t.Errorf("sign flip escaped detection")
	}
	checkSolution(t, a, b, res.X, 1e-9)
}

// A burst defeats single-error correction by design: the two-level inner
// level must escalate to rollback, never "correct" one of four errors.
func TestTwoLevelPCGBurstEscalatesToRollback(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	events := fault.ModelBurst.Events(fault.MagLarge, 5, fault.SiteMVM)
	inj := fault.NewInjector(events, 2)
	res, err := TwoLevelPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatalf("two-level PCG with burst: %v", err)
	}
	if res.Stats.Corrections != 0 {
		t.Errorf("burst of 4 errors was 'corrected' %d times", res.Stats.Corrections)
	}
	if res.Stats.Rollbacks == 0 {
		t.Errorf("burst should trigger rollback")
	}
	checkSolution(t, a, b, res.X, 1e-9)
}
