package core

import (
	"math"
	"testing"

	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

func testSystem(t *testing.T, n int) (*sparse.CSR, precond.Preconditioner, []float64, []float64) {
	t.Helper()
	side := int(math.Sqrt(float64(n)))
	a := sparse.Laplacian2D(side, side)
	m, err := precond.BlockJacobiILU0(a, 4)
	if err != nil {
		t.Fatalf("preconditioner: %v", err)
	}
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = math.Sin(float64(i + 1))
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, xTrue)
	return a, m, b, xTrue
}

func checkSolution(t *testing.T, a *sparse.CSR, b, x []float64, tol float64) {
	t.Helper()
	r := make([]float64, len(b))
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	rel := vec.Norm2(r) / vec.Norm2(b)
	if rel > tol {
		t.Fatalf("true residual %.3e exceeds %.3e", rel, tol)
	}
}

func TestBasicPCGFaultFreeMatchesUnprotected(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	plain, err := solver.PCG(a, m, b, solver.Options{Tol: 1e-10})
	if err != nil {
		t.Fatalf("plain PCG: %v", err)
	}
	prot, err := BasicPCG(a, m, b, Options{Options: solver.Options{Tol: 1e-10}})
	if err != nil {
		t.Fatalf("basic PCG: %v", err)
	}
	if prot.Iterations != plain.Iterations {
		t.Errorf("iterations: protected %d, plain %d", prot.Iterations, plain.Iterations)
	}
	if !vec.Equal(prot.X, plain.X, 1e-12) {
		t.Errorf("protected solution differs from plain")
	}
	if prot.Stats.Rollbacks != 0 || prot.Stats.Detections != 0 {
		t.Errorf("fault-free run had rollbacks=%d detections=%d", prot.Stats.Rollbacks, prot.Stats.Detections)
	}
	checkSolution(t, a, b, prot.X, 1e-9)
}

func TestBasicPCGRecoversFromMVMError(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 13},
	}, 1)
	res, err := BasicPCG(a, m, b, Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     2,
		CheckpointInterval: 6,
		Injector:           inj,
	})
	if err != nil {
		t.Fatalf("basic PCG with fault: %v", err)
	}
	if res.Stats.Detections == 0 {
		t.Errorf("error was not detected")
	}
	if res.Stats.Rollbacks == 0 {
		t.Errorf("no rollback performed")
	}
	if len(inj.Injected) != 1 {
		t.Errorf("expected 1 injection, got %d", len(inj.Injected))
	}
	checkSolution(t, a, b, res.X, 1e-9)
}

func TestTwoLevelPCGCorrectsSingleMVMError(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 99},
	}, 1)
	res, err := TwoLevelPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatalf("two-level PCG with fault: %v", err)
	}
	if res.Stats.Corrections != 1 {
		t.Errorf("expected 1 inner-level correction, got %d", res.Stats.Corrections)
	}
	if res.Stats.Rollbacks != 0 {
		t.Errorf("single error should not trigger rollback, got %d", res.Stats.Rollbacks)
	}
	checkSolution(t, a, b, res.X, 1e-9)
}

func TestTwoLevelPCGRollsBackOnMultipleErrors(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1, Count: 3},
	}, 2)
	res, err := TwoLevelPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatalf("two-level PCG with multi-fault: %v", err)
	}
	if res.Stats.Rollbacks == 0 {
		t.Errorf("multiple errors should trigger rollback")
	}
	checkSolution(t, a, b, res.X, 1e-9)
}

func TestBasicPCGDetectsCacheError(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	inj := fault.NewInjector([]fault.Event{
		{Iteration: 4, Site: fault.SiteMVM, Kind: fault.CacheRegister, Index: 50},
	}, 3)
	res, err := BasicPCG(a, m, b, Options{
		Options:  solver.Options{Tol: 1e-10},
		Injector: inj,
	})
	if err != nil {
		t.Fatalf("basic PCG with cache fault: %v", err)
	}
	if res.Stats.Detections == 0 {
		t.Errorf("cache error escaped detection")
	}
	checkSolution(t, a, b, res.X, 1e-9)
}

func TestBasicPCGRollbackStorm(t *testing.T) {
	a, m, b, _ := testSystem(t, 100)
	// Refiring errors every iteration: the basic scheme cannot make
	// progress (Table 4, Scenario 3 → ∞).
	events := fault.Scenario3(10000)
	inj := fault.NewInjector(events, 4)
	inj.Refire = true
	_, err := BasicPCG(a, m, b, Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     1,
		CheckpointInterval: 1,
		MaxRollbacks:       50,
		Injector:           inj,
	})
	if err == nil {
		t.Fatalf("expected rollback storm, got success")
	}
}
