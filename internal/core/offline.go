package core

import (
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// Method selects the iterative method for the scheme-agnostic entry points.
type Method int

const (
	// MethodPCG is preconditioned conjugate gradient.
	MethodPCG Method = iota
	// MethodPBiCGSTAB is preconditioned BiCGSTAB.
	MethodPBiCGSTAB
)

func (m Method) String() string {
	switch m {
	case MethodPCG:
		return "PCG"
	case MethodPBiCGSTAB:
		return "PBiCGSTAB"
	default:
		return "unknown method"
	}
}

// UnprotectedPCG runs plain PCG with fault injection but no detection or
// recovery of any kind. It is the substrate of the offline-residual scheme
// and the control arm of the coverage experiments: whatever the injector
// corrupts stays corrupted.
func UnprotectedPCG(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	inj := opts.Injector
	n := a.Rows

	x, err := cloneStart(n, opts.X0)
	if err != nil {
		return res, err
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	res.X = x
	relres := vec.Norm2(r) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	if err := applyCleanInj(m, inj, -1, z, r); err != nil {
		return res, err
	}
	copy(p, z)
	rho := vec.Dot(r, z)

	for i := 0; i < maxIter; i++ {
		if err := opts.ctxErr("unprotected PCG"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = injCount(inj)
			return res, err
		}
		inj.InjectMemory(i, fault.SiteMVM, p)
		if restore := inj.CacheWindow(i, fault.SiteMVM, p); restore != nil {
			a.MulVecStride(q, p, 0, 2)
			restore()
			a.MulVecStride(q, p, 1, 2)
		} else {
			a.MulVec(q, p)
		}
		inj.InjectOutput(i, fault.SiteMVM, q)

		pq := vec.Dot(p, q)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if pq == 0 {
			res.Residual = relres
			return res, breakdownErr("PCG", Unprotected, i, "pᵀAp = 0")
		}
		alpha := rho / pq
		vec.Axpy(x, alpha, p)
		inj.InjectOutput(i, fault.SiteVLO, x)
		vec.Axpy(r, -alpha, q)
		inj.InjectOutput(i, fault.SiteVLO, r)
		res.Iterations = i + 1

		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tolRes {
			res.Converged = true
			break
		}
		if err := applyCleanInj(m, inj, i, z, r); err != nil {
			return res, err
		}
		rhoNew := vec.Dot(r, z)
		beta := rhoNew / rho
		vec.Xpby(p, z, beta, p)
		inj.InjectOutput(i, fault.SiteVLO, p)
		rho = rhoNew
	}
	res.Residual = relres
	res.Stats.InjectedErrors = injCount(inj)
	if !res.Converged {
		return notConverged("unprotected PCG", res, relres)
	}
	return res, nil
}

// TrueResidual returns ‖b − A·x‖₂ / ‖b‖₂ computed from scratch — the
// offline-residual scheme's end-of-run verification, and the ground truth
// the coverage experiments judge every scheme's output against.
func TrueResidual(a *sparse.CSR, b, x []float64) float64 {
	r := make([]float64, len(b))
	a.MulVec(r, x)
	vec.Sub(r, b, r)
	nb := vec.Norm2(b)
	if nb <= 0 {
		nb = 1
	}
	return vec.Norm2(r) / nb
}

// OfflineResidualPCG implements the offline-residual scheme (§6.1): run the
// unprotected solver to completion, verify the true residual at the end,
// and — if corruption slipped through — recompute the entire solve. In the
// paper's best case this costs 100% overhead whenever any error occurred.
func OfflineResidualPCG(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	opts.normalize()
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	res, err := UnprotectedPCG(a, m, b, opts)
	res.Stats.Verifications++
	res.Stats.RecoveryMVMs++
	if err == nil && TrueResidual(a, b, res.X) <= 10*tolRes {
		return res, nil
	}
	// Detected at the end: recompute everything. Scheduled one-shot faults
	// have been consumed, so the rerun is clean; refiring injectors model
	// persistent error rates and will fail again.
	res.Stats.Detections++
	first := res.Stats
	wasted := res.Iterations
	res2, err2 := UnprotectedPCG(a, m, b, opts)
	res2.Stats.Verifications += first.Verifications
	res2.Stats.Detections += first.Detections
	res2.Stats.RecoveryMVMs += first.RecoveryMVMs + 1
	res2.Stats.WastedIterations = wasted
	res2.Stats.InjectedErrors = injCount(opts.Injector)
	res2.Stats.Verifications++
	if err2 == nil && TrueResidual(a, b, res2.X) > 10*tolRes {
		return notConverged("offline-residual PCG (rerun still corrupted)", res2, res2.Residual)
	}
	return res2, err2
}
