package core

import (
	"context"
	"math"
	"testing"

	"newsum/internal/fault"
	"newsum/internal/kernel"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

// blockRHS builds k distinct right-hand sides for one operator.
func blockRHS(a *sparse.CSR, k int) [][]float64 {
	bs := make([][]float64, k)
	for j := 0; j < k; j++ {
		b := make([]float64, a.Rows)
		for i := range b {
			b[i] = math.Sin(float64(i+1)*0.7) + float64(j)*math.Cos(float64(i+3))
		}
		bs[j] = b
	}
	return bs
}

// TestBlockPCGBitwiseMatchesSingle is the batched solve's headline
// contract: fault-free, every column of BasicBlockPCG — solution,
// iteration count, residual, checksum-update and verification counters —
// is bitwise-identical to an independent single-RHS BasicPCG of that
// column, across column counts straddling the kernel chunk and across
// serial and pooled execution.
func TestBlockPCGBitwiseMatchesSingle(t *testing.T) {
	a, m, _, _ := testSystem(t, 400)
	for _, workers := range []int{1, 4} {
		pool := kernel.NewPool(workers)
		if pool != nil {
			defer pool.Close()
		}
		for _, k := range []int{1, 3, 9} {
			bs := blockRHS(a, k)
			opts := Options{
				Options:        solver.Options{Tol: 1e-10},
				DetectInterval: 4,
				Pool:           pool,
			}
			br, err := BasicBlockPCG(a, m, bs, BlockOptions{Options: opts})
			if err != nil {
				t.Fatalf("workers=%d k=%d: block solve: %v", workers, k, err)
			}
			for j := 0; j < k; j++ {
				if br.Errs[j] != nil {
					t.Fatalf("workers=%d k=%d col %d: %v", workers, k, j, br.Errs[j])
				}
				single, err := BasicPCG(a, m, bs[j], opts)
				if err != nil {
					t.Fatalf("workers=%d k=%d col %d single: %v", workers, k, j, err)
				}
				col := br.Cols[j]
				if !col.Converged || col.Iterations != single.Iterations {
					t.Fatalf("workers=%d k=%d col %d: converged=%v iters=%d, single iters=%d",
						workers, k, j, col.Converged, col.Iterations, single.Iterations)
				}
				if math.Float64bits(col.Residual) != math.Float64bits(single.Residual) {
					t.Fatalf("workers=%d k=%d col %d: residual %x, single %x",
						workers, k, j, col.Residual, single.Residual)
				}
				for i := range col.X {
					if math.Float64bits(col.X[i]) != math.Float64bits(single.X[i]) {
						t.Fatalf("workers=%d k=%d col %d: x[%d] = %x, single %x",
							workers, k, j, i, col.X[i], single.X[i])
					}
				}
				if col.Stats.ChecksumUpdates != single.Stats.ChecksumUpdates ||
					col.Stats.Verifications != single.Stats.Verifications ||
					col.Stats.Checkpoints != single.Stats.Checkpoints {
					t.Fatalf("workers=%d k=%d col %d: stats (upd=%d ver=%d ckpt=%d), single (%d %d %d)",
						workers, k, j,
						col.Stats.ChecksumUpdates, col.Stats.Verifications, col.Stats.Checkpoints,
						single.Stats.ChecksumUpdates, single.Stats.Verifications, single.Stats.Checkpoints)
				}
				if col.Stats.Rollbacks != 0 || col.Stats.Detections != 0 {
					t.Fatalf("workers=%d k=%d col %d: fault-free column rolled back (%d/%d)",
						workers, k, j, col.Stats.Rollbacks, col.Stats.Detections)
				}
			}
		}
	}
}

// TestBlockPCGPerColumnFaultIsolation strikes exactly one column with a
// transient MVM fault: the struck column must detect, roll back alone and
// still converge; every clean column must be bitwise-identical to its
// fault-free single-RHS solve, with zero rollbacks — one corrupted RHS
// does not restart the batch.
func TestBlockPCGPerColumnFaultIsolation(t *testing.T) {
	a, m, _, _ := testSystem(t, 400)
	const k = 4
	const struck = 1
	bs := blockRHS(a, k)
	opts := Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     2,
		CheckpointInterval: 6,
	}
	injs := make([]*fault.Injector, k)
	injs[struck] = fault.NewInjector([]fault.Event{
		{Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 13},
	}, 1)
	br, err := BasicBlockPCG(a, m, bs, BlockOptions{Options: opts, ColInjectors: injs})
	if err != nil {
		t.Fatalf("block solve: %v", err)
	}
	for j := 0; j < k; j++ {
		if br.Errs[j] != nil {
			t.Fatalf("col %d: %v", j, br.Errs[j])
		}
		if !br.Cols[j].Converged {
			t.Fatalf("col %d did not converge", j)
		}
		checkSolution(t, a, bs[j], br.Cols[j].X, 1e-9)
	}
	if br.Cols[struck].Stats.Detections == 0 || br.Cols[struck].Stats.Rollbacks == 0 {
		t.Fatalf("struck column: detections=%d rollbacks=%d, want both > 0",
			br.Cols[struck].Stats.Detections, br.Cols[struck].Stats.Rollbacks)
	}
	if br.Cols[struck].Stats.InjectedErrors != 1 {
		t.Fatalf("struck column: injected=%d, want 1", br.Cols[struck].Stats.InjectedErrors)
	}
	for j := 0; j < k; j++ {
		if j == struck {
			continue
		}
		if br.Cols[j].Stats.Rollbacks != 0 || br.Cols[j].Stats.Detections != 0 ||
			br.Cols[j].Stats.WastedIterations != 0 {
			t.Fatalf("clean col %d was disturbed: rollbacks=%d detections=%d wasted=%d",
				j, br.Cols[j].Stats.Rollbacks, br.Cols[j].Stats.Detections,
				br.Cols[j].Stats.WastedIterations)
		}
		single, err := BasicPCG(a, m, bs[j], opts)
		if err != nil {
			t.Fatalf("col %d single: %v", j, err)
		}
		for i := range br.Cols[j].X {
			if math.Float64bits(br.Cols[j].X[i]) != math.Float64bits(single.X[i]) {
				t.Fatalf("clean col %d: x[%d] differs from fault-free single solve", j, i)
			}
		}
	}
}

// TestBlockPCGPerColumnFailureIsolation drives one column into a rollback
// storm (persistent faults, zero rollback budget): that column alone
// reports an error in Errs; its siblings converge untouched.
func TestBlockPCGPerColumnFailureIsolation(t *testing.T) {
	a, m, _, _ := testSystem(t, 400)
	const k = 3
	const doomed = 2
	bs := blockRHS(a, k)
	events := make([]fault.Event, 0, 40)
	for i := 1; i < 40; i++ {
		events = append(events, fault.Event{Iteration: i, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: i % a.Rows})
	}
	injs := make([]*fault.Injector, k)
	injs[doomed] = fault.NewInjector(events, 1)
	br, err := BasicBlockPCG(a, m, bs, BlockOptions{
		Options: Options{
			Options:        solver.Options{Tol: 1e-10},
			DetectInterval: 2,
			MaxRollbacks:   2,
		},
		ColInjectors: injs,
	})
	if err != nil {
		t.Fatalf("block solve: %v", err)
	}
	if br.Errs[doomed] == nil {
		t.Fatalf("doomed column returned no error (rollbacks=%d)", br.Cols[doomed].Stats.Rollbacks)
	}
	for j := 0; j < k; j++ {
		if j == doomed {
			continue
		}
		if br.Errs[j] != nil || !br.Cols[j].Converged {
			t.Fatalf("sibling col %d failed alongside the doomed column: %v", j, br.Errs[j])
		}
		checkSolution(t, a, bs[j], br.Cols[j].X, 1e-9)
	}
}

// TestBlockPCGValidation pins the argument and mode rejection paths.
func TestBlockPCGValidation(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	if _, err := BasicBlockPCG(a, m, nil, BlockOptions{}); err == nil {
		t.Fatalf("empty batch accepted")
	}
	if _, err := BasicBlockPCG(a, m, [][]float64{b[:10]}, BlockOptions{}); err == nil {
		t.Fatalf("short column accepted")
	}
	if _, err := BasicBlockPCG(a, m, [][]float64{b}, BlockOptions{
		ColInjectors: make([]*fault.Injector, 2),
	}); err == nil {
		t.Fatalf("mismatched injector count accepted")
	}
	if _, err := BasicBlockPCG(a, m, [][]float64{b}, BlockOptions{
		Options: Options{ForwardRecovery: true},
	}); err == nil {
		t.Fatalf("forward recovery accepted on the block path")
	}
	if _, err := BasicBlockPCG(a, m, [][]float64{b}, BlockOptions{
		Options: Options{EagerDetection: true},
	}); err == nil {
		t.Fatalf("eager detection accepted on the block path")
	}
}

// TestBlockPCGContextCancel checks a canceled context fails every
// still-active column with the cancellation error.
func TestBlockPCGContextCancel(t *testing.T) {
	a, m, _, _ := testSystem(t, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bs := blockRHS(a, 2)
	br, err := BasicBlockPCG(a, m, bs, BlockOptions{
		Options: Options{Options: solver.Options{Tol: 1e-10}, Ctx: ctx},
	})
	if err != nil {
		t.Fatalf("block solve: %v", err)
	}
	for j := range br.Errs {
		if br.Errs[j] == nil {
			t.Fatalf("col %d: no error after cancellation", j)
		}
	}
}
