package core

import (
	"math"
	"testing"

	"newsum/internal/checkpoint"
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

// codecCase wires one protected solver to a fault schedule that forces at
// least one rollback, so restore paths — and, under the lossy codec, the
// checksum re-anchoring that follows them — actually execute.
type codecCase struct {
	name   string
	events []fault.Event
	seed   int64
	tol    float64
	run    func(t *testing.T, opts Options) (Result, error)
}

func codecCases() []codecCase {
	krylov := func(run func(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error)) func(*testing.T, Options) (Result, error) {
		return func(t *testing.T, opts Options) (Result, error) {
			a, m, b, _ := testSystem(t, 400)
			return run(a, m, b, opts)
		}
	}
	return []codecCase{
		{
			name:   "BasicPCG",
			events: []fault.Event{{Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 13}},
			seed:   41, tol: 1e-8,
			run: krylov(BasicPCG),
		},
		{
			name: "TwoLevelPCG",
			// Count 3 defeats the inner-level single-error correction, so
			// the multiple-error diagnosis rolls back.
			events: []fault.Event{{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1, Count: 3}},
			seed:   42, tol: 1e-8,
			run: krylov(TwoLevelPCG),
		},
		{
			name:   "BasicPBiCGSTAB",
			events: []fault.Event{{Iteration: 6, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 17}},
			seed:   43, tol: 1e-8,
			run: krylov(BasicPBiCGSTAB),
		},
		{
			name:   "BasicCR",
			events: []fault.Event{{Iteration: 6, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 23}},
			seed:   44, tol: 1e-8,
			run: func(t *testing.T, opts Options) (Result, error) {
				a, _, b, _ := testSystem(t, 400)
				return BasicCR(a, b, opts)
			},
		},
		{
			name:   "OrthoPCG",
			events: []fault.Event{{Iteration: 6, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: -1}},
			seed:   45, tol: 1e-8,
			run: krylov(OrthoPCG),
		},
		{
			name:   "BasicGMRES",
			events: []fault.Event{{Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1}},
			seed:   46, tol: 1e-8,
			run: func(t *testing.T, opts Options) (Result, error) {
				a := sparse.ConvectionDiffusion2D(16, 16, 20)
				m, err := precond.ILU0(a)
				if err != nil {
					t.Fatal(err)
				}
				b := make([]float64, a.Rows)
				for i := range b {
					b[i] = 1
				}
				opts.MaxIter = 20000
				return BasicGMRES(a, m, b, 20, opts)
			},
		},
		{
			name:   "BasicJacobi",
			events: []fault.Event{{Iteration: 9, Site: fault.SitePCO, Kind: fault.Memory, Index: -1}},
			seed:   47, tol: 1e-8,
			run: func(t *testing.T, opts Options) (Result, error) {
				a := sparse.DiagDominant(300, 5, 2)
				b := make([]float64, a.Rows)
				for i := range b {
					b[i] = 1
				}
				opts.MaxIter = 5000
				return BasicJacobi(a, b, opts)
			},
		},
		{
			name:   "BasicChebyshev",
			events: []fault.Event{{Iteration: 10, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: -1}},
			seed:   48, tol: 1e-7,
			run: func(t *testing.T, opts Options) (Result, error) {
				n := 100
				a := sparse.Tridiag(n, -1, 2, -1)
				b := make([]float64, n)
				for i := range b {
					b[i] = 1
				}
				lmin := 2 - 2*math.Cos(math.Pi/float64(n+1))
				lmax := 2 - 2*math.Cos(float64(n)*math.Pi/float64(n+1))
				opts.MaxIter = 100000
				return BasicChebyshev(a, precond.Identity(n), b, lmin, lmax, opts)
			},
		},
	}
}

func (c codecCase) system(t *testing.T) (*sparse.CSR, []float64) {
	t.Helper()
	switch c.name {
	case "BasicGMRES":
		return sparse.ConvectionDiffusion2D(16, 16, 20), nil
	case "BasicJacobi":
		return sparse.DiagDominant(300, 5, 2), nil
	case "BasicChebyshev":
		return sparse.Tridiag(100, -1, 2, -1), nil
	default:
		a, _, _, _ := testSystem(t, 400)
		return a, nil
	}
}

// TestLossyRollbackRecoversEverySolver is the acceptance gate for the
// lossy codec: after a rollback restores quantized state, the re-anchored
// checksums must verify clean — the run classifies as recovered (converges
// with a small true residual), never as a false-alarm rollback storm or
// silent corruption.
func TestLossyRollbackRecoversEverySolver(t *testing.T) {
	for _, c := range codecCases() {
		t.Run(c.name, func(t *testing.T) {
			inj := fault.NewInjector(c.events, c.seed)
			res, err := c.run(t, Options{
				Options:            solver.Options{Tol: 1e-10},
				DetectInterval:     2,
				CheckpointInterval: 6,
				Injector:           inj,
				CheckpointCodec:    checkpoint.Lossy,
				CheckpointRelBound: 1e-6,
			})
			if err != nil {
				t.Fatalf("lossy-codec solve failed (false-alarm storm or abort): %v", err)
			}
			if res.Stats.Rollbacks == 0 {
				t.Fatalf("fault did not force a rollback; the lossy restore path was not exercised: %+v", res.Stats)
			}
			if res.Stats.LossyRestores == 0 {
				t.Errorf("rollback under the lossy codec did not record a lossy restore: %+v", res.Stats)
			}
			if res.Stats.CheckpointBytes <= 0 || res.Stats.CheckpointStoredBytes <= 0 {
				t.Errorf("checkpoint byte counters not populated: copied=%d stored=%d",
					res.Stats.CheckpointBytes, res.Stats.CheckpointStoredBytes)
			}
			if res.Stats.CheckpointStoredBytes >= res.Stats.CheckpointBytes {
				t.Errorf("lossy codec stored %d bytes, not smaller than the %d logical bytes",
					res.Stats.CheckpointStoredBytes, res.Stats.CheckpointBytes)
			}
			a, _ := c.system(t)
			bvec := make([]float64, a.Rows)
			switch c.name {
			case "BasicPCG", "TwoLevelPCG", "BasicPBiCGSTAB", "BasicCR", "OrthoPCG":
				_, _, b2, _ := testSystem(t, 400)
				copy(bvec, b2)
			default:
				for i := range bvec {
					bvec[i] = 1
				}
			}
			if tr := TrueResidual(a, bvec, res.X); tr > c.tol {
				t.Errorf("true residual %.3e exceeds %.3e after lossy recovery", tr, c.tol)
			}
		})
	}
}

// TestDiffCodecBitwiseIdenticalToFull pins the differential codec's
// losslessness end to end: the same faulty solve under Full and Diff
// checkpointing must walk the identical trajectory — same iteration count,
// same rollbacks, bitwise-identical solution.
func TestDiffCodecBitwiseIdenticalToFull(t *testing.T) {
	for _, c := range codecCases() {
		t.Run(c.name, func(t *testing.T) {
			runWith := func(codec checkpoint.Codec) (Result, error) {
				inj := fault.NewInjector(c.events, c.seed)
				return c.run(t, Options{
					Options:            solver.Options{Tol: 1e-10},
					DetectInterval:     2,
					CheckpointInterval: 6,
					Injector:           inj,
					CheckpointCodec:    codec,
				})
			}
			full, errFull := runWith(checkpoint.Full)
			diff, errDiff := runWith(checkpoint.Diff)
			if (errFull == nil) != (errDiff == nil) {
				t.Fatalf("outcome diverged: full err=%v, diff err=%v", errFull, errDiff)
			}
			if full.Iterations != diff.Iterations || full.Stats.Rollbacks != diff.Stats.Rollbacks {
				t.Fatalf("trajectory diverged: full (iters=%d rollbacks=%d), diff (iters=%d rollbacks=%d)",
					full.Iterations, full.Stats.Rollbacks, diff.Iterations, diff.Stats.Rollbacks)
			}
			for i := range full.X {
				if math.Float64bits(full.X[i]) != math.Float64bits(diff.X[i]) {
					t.Fatalf("x[%d] differs bitwise: full %x, diff %x",
						i, math.Float64bits(full.X[i]), math.Float64bits(diff.X[i]))
				}
			}
			if diff.Stats.LossyRestores != 0 {
				t.Errorf("diff codec is lossless but recorded %d lossy restores", diff.Stats.LossyRestores)
			}
		})
	}
}

// TestBlockPCGLossyRollbackRecovers exercises the lossy restore path in
// the batched block solver: the struck column re-anchors its checksums
// from the quantized state and converges; clean columns stay untouched.
func TestBlockPCGLossyRollbackRecovers(t *testing.T) {
	a, m, _, _ := testSystem(t, 400)
	const k = 3
	const struck = 1
	bs := blockRHS(a, k)
	injs := make([]*fault.Injector, k)
	injs[struck] = fault.NewInjector([]fault.Event{
		{Iteration: 7, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 13},
	}, 1)
	br, err := BasicBlockPCG(a, m, bs, BlockOptions{
		Options: Options{
			Options:            solver.Options{Tol: 1e-10},
			DetectInterval:     2,
			CheckpointInterval: 6,
			CheckpointCodec:    checkpoint.Lossy,
			CheckpointRelBound: 1e-6,
		},
		ColInjectors: injs,
	})
	if err != nil {
		t.Fatalf("block solve: %v", err)
	}
	for j := 0; j < k; j++ {
		if br.Errs[j] != nil || !br.Cols[j].Converged {
			t.Fatalf("col %d failed under lossy checkpointing: %v", j, br.Errs[j])
		}
		checkSolution(t, a, bs[j], br.Cols[j].X, 1e-9)
	}
	if br.Cols[struck].Stats.Rollbacks == 0 || br.Cols[struck].Stats.LossyRestores == 0 {
		t.Fatalf("struck column: rollbacks=%d lossyRestores=%d, want both > 0",
			br.Cols[struck].Stats.Rollbacks, br.Cols[struck].Stats.LossyRestores)
	}
	for j := 0; j < k; j++ {
		if j != struck && br.Cols[j].Stats.LossyRestores != 0 {
			t.Fatalf("clean col %d recorded a lossy restore", j)
		}
	}
}

// TestLossyFaultFreeLeavesTrajectoryUntouched: saving through any codec
// only reads solver state — with no restore, a lossy-codec run must match
// the default run exactly.
func TestLossyFaultFreeLeavesTrajectoryUntouched(t *testing.T) {
	a, m, b, _ := testSystem(t, 400)
	base, err := BasicPCG(a, m, b, Options{Options: solver.Options{Tol: 1e-10}})
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := BasicPCG(a, m, b, Options{
		Options:            solver.Options{Tol: 1e-10},
		CheckpointCodec:    checkpoint.Lossy,
		CheckpointRelBound: 1e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Iterations != lossy.Iterations {
		t.Errorf("fault-free iterations diverged: full %d, lossy %d", base.Iterations, lossy.Iterations)
	}
	for i := range base.X {
		if math.Float64bits(base.X[i]) != math.Float64bits(lossy.X[i]) {
			t.Fatalf("fault-free x[%d] differs bitwise under lossy checkpointing", i)
		}
	}
	if lossy.Stats.Rollbacks != 0 || lossy.Stats.LossyRestores != 0 {
		t.Errorf("fault-free lossy run recorded recovery events: %+v", lossy.Stats)
	}
}
