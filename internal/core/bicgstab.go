package core

import (
	"newsum/internal/checksum"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// BasicPBiCGSTAB solves A·x = b with the basic online ABFT preconditioned
// BiCGSTAB, constructed with the §5.3 recipe: checksum updates after every
// vector-generating operation, verification of the x and r relationships
// every DetectInterval iterations, and checkpoints of the minimal vector set
// {x, p} (everything else is recomputable: r = b−Ax, v = A·M⁻¹p) plus the
// recurrence scalars.
//
// BiCGSTAB exercises the generality claim: it has no orthogonality relations
// for the Chen-style baseline to check (§6), and its two MVMs and two PCOs
// per iteration double the checksum-update load relative to PCG.
func BasicPBiCGSTAB(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	return abftBiCGSTAB(a, m, b, opts, Basic)
}

// TwoLevelPBiCGSTAB adds triple-checksum inner-level protection after each
// of the two MVMs per iteration: single errors are corrected in place,
// multiple errors trigger immediate rollback.
func TwoLevelPBiCGSTAB(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	return abftBiCGSTAB(a, m, b, opts, TwoLevel)
}

func abftBiCGSTAB(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options, scheme Scheme) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	weights := checksum.Single
	if scheme == TwoLevel && opts.EagerTriple {
		weights = checksum.Triple
	}
	e := newEngine(a, m, weights, &opts, &res.Stats)
	if scheme == TwoLevel && !opts.EagerTriple {
		e.initLazyDiag()
	}
	n := e.n

	x := e.newTracked("x")
	if opts.X0 != nil {
		copy(x.data, opts.X0)
		e.recompute(x)
	}
	r := e.newTracked("r")
	p := e.newTracked("p")
	v := e.newTracked("v")
	s := e.newTracked("s")
	t := e.newTracked("t")
	phat := e.newTracked("phat")
	shat := e.newTracked("shat")
	bT := e.wrap("b", b)

	e.mulVec(r.data, x.data)
	vec.Sub(r.data, bT.data, r.data)
	e.recompute(r)
	rhat := vec.Clone(r.data) // shadow residual, fixed for the whole solve

	normB := e.norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	res.X = x.data
	relres := e.norm2(r.data) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}

	rhoPrev, alpha, omega := 1.0, 1.0, 1.0

	store := opts.newStore()
	d, cd := opts.DetectInterval, opts.CheckpointInterval

	//hot:cold checkpoint machinery: invoked once per cd iterations, off the steady-state budget
	saveCheckpoint := func(iter int) {
		opts.Trace.add(iter, EvCheckpoint, "snapshot {x, p}")
		store.Save(iter,
			map[string][]float64{"x": x.data, "p": p.data},
			map[string]float64{"rhoPrev": rhoPrev, "alpha": alpha, "omega": omega},
			map[string][]float64{"x": x.s, "p": p.s, "x.eta": x.eta, "p.eta": p.eta},
		)
		res.Stats.Checkpoints++
		res.Stats.CheckpointBytes = store.BytesCopied
		res.Stats.CheckpointStoredBytes = store.BytesStored
		e.corruptCheckpoint(iter, &store)
	}
	// rollback restores {x, p} and the scalars, then reconstructs
	// r = b − A·x and v = A·M⁻¹p with fresh checksums (two MVMs + one PCO).
	//hot:cold recovery machinery: runs only after a detection
	rollback := func(iter int) (int, bool) {
		res.Stats.Rollbacks++
		if res.Stats.Rollbacks > opts.MaxRollbacks {
			return iter, false
		}
		scal := map[string]float64{}
		snapIter, err := store.Restore(
			map[string][]float64{"x": x.data, "p": p.data},
			scal,
			map[string][]float64{"x": x.s, "p": p.s, "x.eta": x.eta, "p.eta": p.eta},
		)
		if err != nil {
			return iter, false
		}
		rhoPrev, alpha, omega = scal["rhoPrev"], scal["alpha"], scal["omega"]
		if store.Lossy() {
			// Quantized restore: re-anchor x's checksums from the perturbed
			// data before anything verifies them. The restored direction and
			// scalars belong to the exact snapshot state; against the
			// reconstructed residual — dominated by the quantization noise
			// A·δx — the stale ρ makes the first β = (ρ/ρ')·(α/ω) blow up
			// and permanently poison p. A lossy restore is therefore a
			// BiCGStab restart: α := 0 forces β = 0 at the next iteration,
			// so the direction update collapses to p := r and the stale
			// {p, v, ρ', ω} never enter the recurrence.
			e.recompute(x)
			res.Stats.LossyRestores++
			rhoPrev, alpha, omega = 1, 0, 1
		}
		e.mulVec(r.data, x.data)
		vec.Sub(r.data, bT.data, r.data)
		e.recompute(r)
		res.Stats.RecoveryMVMs++
		if store.Lossy() {
			copyTracked(p, r)
		}
		if snapIter > 0 {
			// v = A·M⁻¹·p, needed by the search-direction update — and by
			// the next detection boundary, which verifies v and must not
			// re-flag a corruption the rollback already discarded. Under a
			// lossy restart p is the reconstructed residual, so v is rebuilt
			// against the restarted direction.
			if err := applyClean(m, phat.data, p.data); err != nil {
				return iter, false
			}
			e.recompute(phat)
			e.mulVec(v.data, phat.data)
			e.recompute(v)
			res.Stats.RecoveryMVMs++
		}
		res.Stats.WastedIterations += iter - snapIter
		opts.Trace.add(iter, EvRollback, "restored iteration %d, recomputed r, v", snapIter)
		return snapIter, true
	}

	//hot:cold rollback-storm exit: runs at most once per solve
	storm := func() (Result, error) {
		res.Residual = relres
		res.Stats.InjectedErrors = e.injectedCount()
		return res, rollbackStormErr("PBiCGSTAB", scheme)
	}

	i := 0
	// The steady-state iteration — hotalloc polices allocations,
	// checksumguard polices raw writes to the protected vector set
	// (detection/recovery branches are //hot:cold).
	//
	//hot:loop BiCGStab protected iteration (§5.3 construction)
	//hot:protected x r p v s t phat shat
	for i < maxIter {
		if err := opts.ctxErr("PBiCGSTAB"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = e.injectedCount()
			return res, err
		}
		if i > 0 && i%d == 0 {
			// v is verified alongside x and r: a huge corruption in v can be
			// scaled below the detection threshold on its way into s (α =
			// ρ/r̂ᵀv divides it away), so the MVM output itself must be
			// checked while the raw inconsistency is still visible.
			//hot:cold detection handling and rollback
			if !e.verify(x) || !e.verify(r) || !e.verify(v) {
				opts.Trace.add(i, EvDetection, "outer-level: checksum mismatch in {x, r, v}")
				var ok bool
				if i, ok = rollback(i); !ok {
					return storm()
				}
				continue
			}
		}
		//hot:cold amortized checkpoint branch: once per cd iterations
		if i%cd == 0 {
			// Guard the snapshot: p must verify clean before it becomes
			// the rollback target.
			if i > 0 && !e.verify(p) {
				var ok bool
				if i, ok = rollback(i); !ok {
					return storm()
				}
				continue
			}
			saveCheckpoint(i)
		}

		rho := e.dot(rhat, r.data)
		//hot:cold suspect-scalar detection and rollback
		if suspectScalar(rho) {
			res.Stats.Detections++
			opts.Trace.add(i, EvDetection, "suspect recurrence scalar ρ = %g", rho)
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		//hot:cold breakdown exit
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rho == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", scheme, i, "ρ = 0")
		}
		if i == 0 {
			copyTracked(p, r)
		} else {
			beta := (rho / rhoPrev) * (alpha / omega)
			// p = r + beta*(p − omega*v)
			e.axpy(i, p, -omega, v)
			e.xpby(i, p, r, beta, p)
		}
		if err := e.pco(i, phat, p); err != nil {
			return res, err
		}
		e.mvm(i, v, phat)
		if scheme == TwoLevel {
			diag := e.innerCheck(v, phat)
			//hot:cold correction reporting after an inner-level event
			if diag.Kind == checksum.SingleError {
				opts.Trace.add(i, EvCorrection, "inner-level: v[%d] -= %.6g", diag.Pos, diag.Magnitude)
			}
			//hot:cold rollback on an inner-level multiple-error diagnosis
			if diag.Kind == checksum.MultipleErrors {
				var ok bool
				if i, ok = rollback(i); !ok {
					return storm()
				}
				continue
			}
		}
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		rhatV := e.dot(rhat, v.data)
		//hot:cold suspect-scalar detection and rollback
		if suspectScalar(rhatV) {
			res.Stats.Detections++
			opts.Trace.add(i, EvDetection, "suspect recurrence scalar r̂ᵀv = %g", rhatV)
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		//hot:cold breakdown exit
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rhatV == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", scheme, i, "r̂ᵀv = 0")
		}
		alpha = rho / rhatV
		e.axpbyInto(i, s, 1, r, -alpha, v)

		//hot:cold early-convergence exit: runs once per solve
		if rel := e.norm2(s.data) / normB; rel <= tolRes {
			e.axpy(i, x, alpha, phat)
			i++
			res.Iterations = i
			relres = rel
			if opts.RecordResiduals {
				res.History = append(res.History, relres)
			}
			if e.verify(x) && e.verify(s) {
				res.Converged = true
				break
			}
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}

		if err := e.pco(i, shat, s); err != nil {
			return res, err
		}
		e.mvm(i, t, shat)
		if scheme == TwoLevel {
			diag := e.innerCheck(t, shat)
			//hot:cold correction reporting after an inner-level event
			if diag.Kind == checksum.SingleError {
				opts.Trace.add(i, EvCorrection, "inner-level: t[%d] -= %.6g", diag.Pos, diag.Magnitude)
			}
			//hot:cold rollback on an inner-level multiple-error diagnosis
			if diag.Kind == checksum.MultipleErrors {
				var ok bool
				if i, ok = rollback(i); !ok {
					return storm()
				}
				continue
			}
		}
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		tt := e.dot(t.data, t.data)
		//hot:cold suspect-scalar detection and rollback
		if suspectScalar(tt) {
			res.Stats.Detections++
			opts.Trace.add(i, EvDetection, "suspect recurrence scalar tᵀt = %g", tt)
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		//hot:cold breakdown exit
		if tt <= 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", scheme, i, "tᵀt = 0")
		}
		omega = e.dot(t.data, s.data) / tt
		//hot:cold breakdown exit
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if omega == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", scheme, i, "ω = 0")
		}
		e.axpy(i, x, alpha, phat)
		e.axpy(i, x, omega, shat)
		e.axpbyInto(i, r, 1, s, -omega, t)
		//hot:cold eager-detection rollback
		if e.takeFlag() {
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
		rhoPrev = rho
		i++
		res.Iterations = i

		relres = e.norm2(r.data) / normB
		//hot:cold diagnostic residual history, off by default
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		//hot:cold convergence exit: verified once per solve, rollback on a corrupted residual
		if relres <= tolRes {
			if e.verify(x) && e.verify(r) {
				res.Converged = true
				break
			}
			var ok bool
			if i, ok = rollback(i); !ok {
				return storm()
			}
			continue
		}
	}

	res.Residual = relres
	res.Stats.InjectedErrors = e.injectedCount()
	if !res.Converged {
		return notConverged("ABFT PBiCGSTAB", res, relres)
	}
	return res, nil
}

// applyClean applies a preconditioner without instrumentation, for recovery
// paths that must not consume injector events.
func applyClean(m precond.Preconditioner, z, r []float64) error {
	if m == nil {
		copy(z, r)
		return nil
	}
	return m.Apply(z, r)
}
