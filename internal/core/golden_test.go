package core

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// The golden trace tests pin the exact event timeline of deterministic
// faulty solves. A timeline is the observable story of the ABFT machinery —
// when it checkpoints, what it detects, where it rolls back to — so any
// unintended change to detection placement, rollback targets, or event
// wording shows up as a golden diff. Regenerate intentionally with
//
//	go test ./internal/core -run TestGoldenTraces -update
func TestGoldenTraces(t *testing.T) {
	a := sparse.Laplacian2D(12, 12)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	m, err := precond.BlockJacobiILU0(a, 4)
	if err != nil {
		t.Fatalf("preconditioner: %v", err)
	}
	opts := func(events []fault.Event) Options {
		return Options{
			Options:            solver.Options{Tol: 1e-10},
			DetectInterval:     2,
			CheckpointInterval: 10,
			MaxRollbacks:       6,
			Injector:           fault.NewInjector(events, 7),
		}
	}
	flip := func(iter int) []fault.Event {
		return []fault.Event{{Iteration: iter, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 17, BitFlip: true, Bit: 53}}
	}

	cases := []struct {
		name     string
		events   []fault.Event
		run      func(o Options) (Result, error)
		forward  bool
		wantFail bool
	}{
		{
			name:   "pcg_basic_flip",
			events: flip(5),
			run:    func(o Options) (Result, error) { return BasicPCG(a, m, b, o) },
		},
		{
			name:   "pcg_twolevel_flip",
			events: flip(5),
			run:    func(o Options) (Result, error) { return TwoLevelPCG(a, m, b, o) },
		},
		{
			name:   "bicgstab_basic_flip",
			events: flip(7),
			run:    func(o Options) (Result, error) { return BasicPBiCGSTAB(a, m, b, o) },
		},
		{
			name: "cr_basic_signflip",
			events: []fault.Event{
				{Iteration: 6, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 30, BitFlip: true, Bit: 63},
			},
			run: func(o Options) (Result, error) { return BasicCR(a, b, o) },
		},
		{
			// One localizable strike in the MVM output: the forward tier
			// corrects the residual element in place and re-projects the
			// search direction — the timeline must show no rollback.
			name: "pcg_forward_repair",
			events: []fault.Event{
				{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 17, Magnitude: 1e4},
			},
			run:     func(o Options) (Result, error) { return BasicPCG(a, m, b, o) },
			forward: true,
		},
		{
			// A two-element burst in the iterate update: localization fails
			// (MultipleErrors), x has no identity to rebuild from, and the
			// forward tier hands the detection to the checkpoint rollback.
			name: "pcg_forward_fallback",
			events: []fault.Event{
				{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 10, Magnitude: 1e4},
				{Iteration: 5, Site: fault.SiteVLO, Kind: fault.Arithmetic, Index: 12, Magnitude: 1e4},
			},
			run:     func(o Options) (Result, error) { return BasicPCG(a, m, b, o) },
			forward: true,
		},
		{
			name: "pcg_checkpoint_attack",
			events: []fault.Event{
				{Iteration: 0, Site: fault.SiteCheckpoint, Kind: fault.Memory, Index: 3, BitFlip: true, Bit: 62},
				{Iteration: 5, Site: fault.SiteMVM, Kind: fault.Arithmetic, Index: 17, BitFlip: true, Bit: 62},
			},
			run:      func(o Options) (Result, error) { return BasicPCG(a, m, b, o) },
			wantFail: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace := &Trace{}
			o := opts(tc.events)
			o.Trace = trace
			o.ForwardRecovery = tc.forward
			_, err := tc.run(o)
			if tc.wantFail && err == nil {
				t.Fatalf("expected the run to fail")
			}
			if !tc.wantFail && err != nil {
				t.Fatalf("solve: %v", err)
			}
			compareGolden(t, filepath.Join("testdata", tc.name+".golden"), formatTrace(trace.Events))
		})
	}
}

// formatTrace renders a timeline one event per line, iteration first.
func formatTrace(events []TraceEvent) string {
	var sb strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&sb, "%4d  %-10s  %s\n", ev.Iteration, ev.Kind, ev.Detail)
	}
	return sb.String()
}

func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create): %v", path, err)
	}
	if string(want) != got {
		t.Errorf("trace diverges from %s (run with -update if intended)\n--- want\n%s--- got\n%s", path, want, got)
	}
}
