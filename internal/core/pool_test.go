package core

import (
	"math"
	"testing"

	"newsum/internal/kernel"
	"newsum/internal/precond"
	"newsum/internal/sparse"
)

// TestSolveBitwiseAcrossWorkers is the end-to-end determinism check for
// the kernel wiring: a protected solve with a worker pool must reproduce
// the serial solve bit for bit — same iterates, same iteration count,
// same detection statistics — at any worker count. This is what makes a
// parallel ABFT solve's checksum comparisons reproducible (and what lets
// the golden trace tests stay valid with a pool attached).
func TestSolveBitwiseAcrossWorkers(t *testing.T) {
	a := sparse.Laplacian3D(17, 17, 17) // n = 4913 > kernel's serial cutover: reductions go parallel too
	n := a.Rows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%7)/7
	}
	m, err := precond.Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}

	solve := func(name string, opts Options) (Result, error) {
		switch name {
		case "pcg":
			return BasicPCG(a, m, b, opts)
		case "pcg2l":
			return TwoLevelPCG(a, m, b, opts)
		case "bicgstab":
			return BasicPBiCGSTAB(a, m, b, opts)
		case "cr":
			return BasicCR(a, b, opts)
		default:
			t.Fatalf("unknown solver %s", name)
			return Result{}, nil
		}
	}

	for _, name := range []string{"pcg", "pcg2l", "bicgstab", "cr"} {
		var base Result
		for run, workers := range []int{1, 1, 2, 4} { // repeat serial once: run-to-run stability
			opts := Options{}
			opts.Tol = 1e-10
			opts.MaxIter = 2000
			p := kernel.NewPool(workers)
			opts.Pool = p
			res, err := solve(name, opts)
			p.Close()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if run == 0 {
				base = res
				continue
			}
			if res.Iterations != base.Iterations {
				t.Fatalf("%s workers=%d: %d iterations, serial %d", name, workers, res.Iterations, base.Iterations)
			}
			if res.Stats != base.Stats {
				t.Fatalf("%s workers=%d: stats %+v, serial %+v", name, workers, res.Stats, base.Stats)
			}
			if math.Float64bits(res.Residual) != math.Float64bits(base.Residual) {
				t.Fatalf("%s workers=%d: residual %x, serial %x", name, workers, res.Residual, base.Residual)
			}
			for i := range res.X {
				if math.Float64bits(res.X[i]) != math.Float64bits(base.X[i]) {
					t.Fatalf("%s workers=%d: x[%d] = %x, serial %x", name, workers, i, res.X[i], base.X[i])
				}
			}
		}
	}
}
