package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"newsum/internal/checksum"
	"newsum/internal/precond"
	"newsum/internal/sparse"
)

// The cancellation contract: a canceled Options.Ctx stops every protected
// (and unprotected) solver loop at the next iteration boundary with an error
// wrapping the context's own error — the caller's only handle on a diverging
// or fault-storming solve.

func ctxSystem(t *testing.T) (*sparse.CSR, []float64) {
	t.Helper()
	a := sparse.Laplacian2D(20, 20)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1 + float64(i%13)
	}
	return a, b
}

func TestCtxCancellationStopsSolvers(t *testing.T) {
	a, b := ctxSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first boundary check must fire
	mkOpts := func() Options {
		return Options{Ctx: ctx}
	}
	runs := []struct {
		name string
		run  func() error
	}{
		{"BasicPCG", func() error { _, err := BasicPCG(a, precond.Identity(a.Rows), b, mkOpts()); return err }},
		{"TwoLevelPCG", func() error { _, err := TwoLevelPCG(a, precond.Identity(a.Rows), b, mkOpts()); return err }},
		{"BasicPBiCGSTAB", func() error { _, err := BasicPBiCGSTAB(a, precond.Identity(a.Rows), b, mkOpts()); return err }},
		{"BasicCR", func() error { _, err := BasicCR(a, b, mkOpts()); return err }},
		{"BasicGMRES", func() error { _, err := BasicGMRES(a, precond.Identity(a.Rows), b, 10, mkOpts()); return err }},
		{"BasicJacobi", func() error {
			d := sparse.DiagDominant(200, 4, 3)
			bb := make([]float64, 200)
			for i := range bb {
				bb[i] = 1
			}
			_, err := BasicJacobi(d, bb, mkOpts())
			return err
		}},
		{"OnlineMVPCG", func() error { _, err := OnlineMVPCG(a, precond.Identity(a.Rows), b, mkOpts()); return err }},
		{"OrthoPCG", func() error { _, err := OrthoPCG(a, precond.Identity(a.Rows), b, mkOpts()); return err }},
		{"UnprotectedPCG", func() error { _, err := UnprotectedPCG(a, precond.Identity(a.Rows), b, mkOpts()); return err }},
		{"UnprotectedPBiCGSTAB", func() error { _, err := UnprotectedPBiCGSTAB(a, precond.Identity(a.Rows), b, mkOpts()); return err }},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			err := r.run()
			if err == nil {
				t.Fatal("canceled context did not abort the solve")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not wrap context.Canceled: %v", err)
			}
		})
	}
}

// TestCtxNilRunsToCompletion pins that the zero-value Options (no context)
// is unchanged: solves run exactly as before the cancellation hooks.
func TestCtxNilRunsToCompletion(t *testing.T) {
	a, b := ctxSystem(t)
	res, err := BasicPCG(a, precond.Identity(a.Rows), b, Options{})
	if err != nil || !res.Converged {
		t.Fatalf("nil-ctx solve failed: converged=%v err=%v", res.Converged, err)
	}
}

// TestEncodingReuseMatchesFreshSolve is the serve-path contract: a solve
// running on a cached checksum.Encoding must follow bit-for-bit the same
// trajectory as one that derives the encoding itself — same iterate bits,
// same iteration count, same verification counters.
func TestEncodingReuseMatchesFreshSolve(t *testing.T) {
	a, b := ctxSystem(t)
	enc := checksum.NewEncoding(a, 0)
	for _, scheme := range []struct {
		name string
		run  func(o Options) (Result, error)
	}{
		{"basic", func(o Options) (Result, error) { return BasicPCG(a, precond.Identity(a.Rows), b, o) }},
		{"twolevel", func(o Options) (Result, error) { return TwoLevelPCG(a, precond.Identity(a.Rows), b, o) }},
	} {
		t.Run(scheme.name, func(t *testing.T) {
			fresh, err := scheme.run(Options{})
			if err != nil {
				t.Fatalf("fresh solve: %v", err)
			}
			cached, err := scheme.run(Options{Encoding: enc})
			if err != nil {
				t.Fatalf("cached-encoding solve: %v", err)
			}
			if fresh.Iterations != cached.Iterations {
				t.Fatalf("iteration counts diverge: fresh %d cached %d", fresh.Iterations, cached.Iterations)
			}
			if fresh.Stats.Verifications != cached.Stats.Verifications {
				t.Fatalf("verification counts diverge: fresh %d cached %d",
					fresh.Stats.Verifications, cached.Stats.Verifications)
			}
			for i := range fresh.X {
				if math.Float64bits(fresh.X[i]) != math.Float64bits(cached.X[i]) {
					t.Fatalf("x[%d] diverges: fresh %x cached %x",
						i, math.Float64bits(fresh.X[i]), math.Float64bits(cached.X[i]))
				}
			}
		})
	}
}
