package core

import (
	"math"

	"newsum/internal/checksum"
	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// omv bundles the state of the online-MV baseline (§2, §6.2): the
// Sloan-style scheme built on the traditional Huang–Abraham checksum. Every
// MVM is verified against the encoded (cᵀA)·x and repaired by binary-search
// localization plus partial recomputation; VLOs and PCOs — which the
// traditional encoding cannot cover — are protected by duplicated execution
// with majority-vote repair (the TMR stand-in of §6.2). The scheme has no
// checkpoints and, critically, cannot detect corruption of an MVM's input
// vector: memory and cache errors in x slip through (Table 3).
type omv struct {
	n     int
	a     *sparse.CSR
	m     precond.Preconditioner
	tA    *checksum.Traditional
	tol   checksum.Tol
	inj   *fault.Injector
	stats *Stats

	expected []float64
	dup1     []float64
	dup2     []float64
}

func newOMV(a *sparse.CSR, m precond.Preconditioner, opts *Options, stats *Stats) *omv {
	return &omv{
		n:        a.Rows,
		a:        a,
		m:        m,
		tA:       checksum.EncodeTraditional(a, checksum.Single),
		tol:      checksum.Tol{Theta: opts.Theta},
		inj:      opts.Injector,
		stats:    stats,
		expected: make([]float64, 1),
		dup1:     make([]float64, a.Rows),
		dup2:     make([]float64, a.Rows),
	}
}

// voteMemory models the baseline's TMR-replicated vector storage: a memory
// bit flip lands in one replica and is outvoted when the vector is next
// consumed, so it is detected and corrected (Table 3 grants online MV
// memory-flip coverage) at the cost of replica comparison. Cache/register
// corruption inside the MVM window is NOT routed through here — that is the
// coverage hole of the traditional encoding.
func (o *omv) voteMemory(iter int, site fault.Site, v []float64) {
	if o.inj == nil {
		return
	}
	copy(o.dup2, v)
	before := len(o.inj.Injected)
	o.inj.InjectMemory(iter, site, v)
	if len(o.inj.Injected) > before {
		copy(v, o.dup2)
		o.stats.Detections++
		o.stats.Corrections++
	}
	o.stats.Verifications++
}

// mvm computes q := A·p with traditional-checksum verification. The encoded
// checksum (cᵀA)·p is computed inside the cache-fault window, exactly the
// insidious case of §2: if a cached value of p is corrupted, both the
// product and the checksum consume it, the relationship verifies, and the
// error escapes.
func (o *omv) mvm(iter int, q, p []float64) {
	o.voteMemory(iter, fault.SiteMVM, p)
	restore := o.inj.CacheWindow(iter, fault.SiteMVM, p)
	o.a.MulVec(q, p)
	o.tA.ExpectedMVM(o.expected, p)
	if restore != nil {
		restore()
	}
	o.inj.InjectOutput(iter, fault.SiteMVM, q)

	o.stats.ChecksumUpdates++ // the (cᵀA)·p dot
	o.stats.Verifications++
	sum, absSum := sumAbs(q)
	if o.tol.ConsistentAbs(sum-o.expected[0], o.n, absSum) {
		return
	}
	o.stats.Detections++
	o.locateRepair(q, p, 0, o.n)
}

func sumAbs(v []float64) (sum, absSum float64) {
	for _, x := range v {
		sum += x
		absSum += math.Abs(x)
	}
	return sum, absSum
}

// locateRepair is Sloan's binary-search localization: recompute the segment
// checksum of [lo, hi) from A and p, recurse into inconsistent halves, and
// recompute the offending rows when segments narrow to single elements.
func (o *omv) locateRepair(q, p []float64, lo, hi int) {
	if hi <= lo {
		return
	}
	segExp := checksum.SegmentChecksum(o.a, checksum.Ones, p, lo, hi)
	o.stats.PartialRecomputeNNZ += o.a.RowPtr[hi] - o.a.RowPtr[lo]
	var segSum, segAbs float64
	for i := lo; i < hi; i++ {
		segSum += q[i]
		segAbs += math.Abs(q[i])
	}
	if o.tol.ConsistentAbs(segSum-segExp, hi-lo, segAbs) {
		return
	}
	if hi-lo == 1 {
		// Recompute the single inconsistent element from its row.
		cols, vals := o.a.RowView(lo)
		var s float64
		for k, j := range cols {
			s += vals[k] * p[j]
		}
		q[lo] = s
		o.stats.Corrections++
		return
	}
	mid := lo + (hi-lo)/2
	o.locateRepair(q, p, lo, mid)
	o.locateRepair(q, p, mid, hi)
}

// dupCompare runs op twice (into dst and o.dup1), injects faults into the
// first execution, and majority-votes with a third execution on mismatch —
// the duplicated-execution protection the baseline needs for operations the
// traditional checksum cannot encode.
func (o *omv) dupCompare(iter int, site fault.Site, dst []float64, op func(out []float64)) {
	op(dst)
	o.inj.InjectOutput(iter, site, dst)
	op(o.dup1)
	o.stats.Verifications++
	if vec.Equal(dst, o.dup1, 0) {
		return
	}
	o.stats.Detections++
	op(o.dup2)
	// Majority vote element-wise between the three copies.
	for i := range dst {
		//lint:ignore floatcmp duplicated evaluations are bit-identical; any difference is a fault
		if dst[i] != o.dup1[i] {
			//lint:ignore floatcmp TMR majority vote compares bit-identical duplicates
			if o.dup1[i] == o.dup2[i] {
				dst[i] = o.dup1[i]
			}
			// else dst stays (dst == dup2 or all differ; keep first).
		}
	}
	o.stats.Corrections++
}

// pco computes z := M⁻¹·r with duplicated execution. Memory faults on r
// strike before both executions and therefore escape.
func (o *omv) pco(iter int, z, r []float64) error {
	o.voteMemory(iter, fault.SitePCO, r)
	// A cached corrupted input feeds both duplicated executions — they
	// agree, so the error escapes (the coverage hole in Table 3's
	// cache/register row for this baseline).
	restore := o.inj.CacheWindow(iter, fault.SitePCO, r)
	var applyErr error
	o.dupCompare(iter, fault.SitePCO, z, func(out []float64) {
		if err := applyClean(o.m, out, r); err != nil && applyErr == nil {
			applyErr = err
		}
	})
	if restore != nil {
		restore()
	}
	return applyErr
}

// axpy computes y := y + alpha·x with duplicated execution.
func (o *omv) axpy(iter int, y []float64, alpha float64, x []float64) {
	o.voteMemory(iter, fault.SiteVLO, x)
	y0 := vec.Clone(y)
	o.dupCompare(iter, fault.SiteVLO, y, func(out []float64) {
		vec.Axpby(out, 1, y0, alpha, x)
	})
}

// xpby computes dst := x + beta·y with duplicated execution; dst may alias y.
func (o *omv) xpby(iter int, dst, x []float64, beta float64, y []float64) {
	y0 := y
	if &dst[0] == &y[0] {
		y0 = vec.Clone(y)
	}
	o.dupCompare(iter, fault.SiteVLO, dst, func(out []float64) {
		vec.Xpby(out, x, beta, y0)
	})
}

// axpbyInto computes dst := alpha·x + beta·y with duplicated execution.
func (o *omv) axpbyInto(iter int, dst []float64, alpha float64, x []float64, beta float64, y []float64) {
	o.dupCompare(iter, fault.SiteVLO, dst, func(out []float64) {
		vec.Axpby(out, alpha, x, beta, y)
	})
}

// OnlineMVPCG solves A·x = b with PCG protected by the online-MV baseline.
func OnlineMVPCG(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	o := newOMV(a, m, &opts, &res.Stats)
	n := o.n

	x, err := cloneStart(n, opts.X0)
	if err != nil {
		return res, err
	}
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	res.X = x
	relres := vec.Norm2(r) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	if err := o.pco(-1, z, r); err != nil {
		return res, err
	}
	copy(p, z)
	rho := vec.Dot(r, z)

	for i := 0; i < maxIter; i++ {
		if err := opts.ctxErr("online-MV PCG"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = injCount(opts.Injector)
			return res, err
		}
		o.mvm(i, q, p)
		pq := vec.Dot(p, q)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if pq == 0 {
			res.Residual = relres
			return res, breakdownErr("PCG", OnlineMV, i, "pᵀAp = 0")
		}
		alpha := rho / pq
		o.axpy(i, x, alpha, p)
		o.axpy(i, r, -alpha, q)
		res.Iterations = i + 1
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tolRes {
			res.Converged = true
			break
		}
		if err := o.pco(i, z, r); err != nil {
			return res, err
		}
		rhoNew := vec.Dot(r, z)
		beta := rhoNew / rho
		o.xpby(i, p, z, beta, p)
		rho = rhoNew
	}
	res.Residual = relres
	res.Stats.InjectedErrors = injCount(opts.Injector)
	if !res.Converged {
		return notConverged("online-MV PCG", res, relres)
	}
	return res, nil
}

// OnlineMVPBiCGSTAB solves A·x = b with PBiCGSTAB protected by the
// online-MV baseline.
func OnlineMVPBiCGSTAB(a *sparse.CSR, m precond.Preconditioner, b []float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	o := newOMV(a, m, &opts, &res.Stats)
	n := o.n

	x, err := cloneStart(n, opts.X0)
	if err != nil {
		return res, err
	}
	r := make([]float64, n)
	p := make([]float64, n)
	v := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	phat := make([]float64, n)
	shat := make([]float64, n)

	a.MulVec(r, x)
	vec.Sub(r, b, r)
	rhat := vec.Clone(r)
	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	res.X = x
	relres := vec.Norm2(r) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}
	rhoPrev, alpha, omega := 1.0, 1.0, 1.0
	for i := 0; i < maxIter; i++ {
		if err := opts.ctxErr("online-MV PBiCGSTAB"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = injCount(opts.Injector)
			return res, err
		}
		rho := vec.Dot(rhat, r)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rho == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", OnlineMV, i, "ρ = 0")
		}
		if i == 0 {
			copy(p, r)
		} else {
			beta := (rho / rhoPrev) * (alpha / omega)
			o.axpy(i, p, -omega, v)
			o.xpby(i, p, r, beta, p)
		}
		if err := o.pco(i, phat, p); err != nil {
			return res, err
		}
		o.mvm(i, v, phat)
		rhatV := vec.Dot(rhat, v)
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if rhatV == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", OnlineMV, i, "r̂ᵀv = 0")
		}
		alpha = rho / rhatV
		o.axpbyInto(i, s, 1, r, -alpha, v)
		res.Iterations = i + 1
		if rel := vec.Norm2(s) / normB; rel <= tolRes {
			o.axpy(i, x, alpha, phat)
			relres = rel
			if opts.RecordResiduals {
				res.History = append(res.History, relres)
			}
			res.Converged = true
			break
		}
		if err := o.pco(i, shat, s); err != nil {
			return res, err
		}
		o.mvm(i, t, shat)
		tt := vec.Dot(t, t)
		if tt <= 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", OnlineMV, i, "tᵀt = 0")
		}
		omega = vec.Dot(t, s) / tt
		//lint:ignore floatcmp exact zero guards the division below, not a detection decision
		if omega == 0 {
			res.Residual = relres
			return res, breakdownErr("PBiCGSTAB", OnlineMV, i, "ω = 0")
		}
		o.axpy(i, x, alpha, phat)
		o.axpy(i, x, omega, shat)
		o.axpbyInto(i, r, 1, s, -omega, t)
		relres = vec.Norm2(r) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tolRes {
			res.Converged = true
			break
		}
		rhoPrev = rho
	}
	res.Residual = relres
	res.Stats.InjectedErrors = injCount(opts.Injector)
	if !res.Converged {
		return notConverged("online-MV PBiCGSTAB", res, relres)
	}
	return res, nil
}

func cloneStart(n int, x0 []float64) ([]float64, error) {
	x := make([]float64, n)
	if x0 != nil {
		if len(x0) != n {
			return nil, breakdownErr("solve", Unprotected, 0, "initial guess length mismatch")
		}
		copy(x, x0)
	}
	return x, nil
}

func injCount(inj *fault.Injector) int {
	if inj == nil {
		return 0
	}
	return len(inj.Injected)
}
