package core

import (
	"newsum/internal/checksum"
	"newsum/internal/precond"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// BasicJacobi solves A·x = b with the stationary Jacobi iteration under
// basic online ABFT protection. Jacobi and Chebyshev are the paper's
// examples (Fig. 1) of iterative methods with no orthogonality structure:
// the orthogonality baseline cannot protect them at all, while the new-sum
// scheme instruments them with the same four vector-generating operations.
//
// Per iteration: w := A·x (MVM), r := b − w (VLO), u := D⁻¹r (PCO),
// x := x + u (VLO). Since r, w and u are recomputed from x every iteration,
// verifying checksum(x) alone covers every vector, and the checkpoint set
// is just {x}.
func BasicJacobi(a *sparse.CSR, b []float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	opts.normalize()
	diagM, err := precond.Jacobi(a)
	if err != nil {
		return res, err
	}
	e := newEngine(a, diagM, checksum.Single, &opts, &res.Stats)
	n := e.n

	x := e.newTracked("x")
	if opts.X0 != nil {
		copy(x.data, opts.X0)
		e.recompute(x)
	}
	w := e.newTracked("w")
	r := e.newTracked("r")
	u := e.newTracked("u")
	bT := e.wrap("b", b)

	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	store := opts.newStore()
	d, cd := opts.DetectInterval, opts.CheckpointInterval
	res.X = x.data
	var relres float64
	// restoreX rolls x (data + checksums) back to the latest snapshot; a
	// lossy restore re-anchors the checksums from the quantized data so the
	// next verification doesn't flag the rounding as a fault.
	restoreX := func(iter int) (int, error) {
		snapIter, rerr := store.Restore(
			map[string][]float64{"x": x.data}, nil,
			map[string][]float64{"x": x.s, "x.eta": x.eta})
		if rerr != nil {
			return 0, rerr
		}
		if store.Lossy() {
			e.recompute(x)
			res.Stats.LossyRestores++
		}
		res.Stats.WastedIterations += iter - snapIter
		return snapIter, nil
	}

	i := 0
	for i < maxIter {
		if err := opts.ctxErr("Jacobi"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = e.injectedCount()
			return res, err
		}
		if i > 0 && i%d == 0 {
			if !e.verify(x) {
				res.Stats.Rollbacks++
				if res.Stats.Rollbacks > opts.MaxRollbacks {
					res.Residual = relres
					res.Stats.InjectedErrors = e.injectedCount()
					return res, rollbackStormErr("Jacobi", Basic)
				}
				snapIter, rerr := restoreX(i)
				if rerr != nil {
					return res, rerr
				}
				i = snapIter
				continue
			}
		}
		if i%cd == 0 {
			store.Save(i, map[string][]float64{"x": x.data}, nil,
				map[string][]float64{"x": x.s, "x.eta": x.eta})
			res.Stats.Checkpoints++
			res.Stats.CheckpointBytes = store.BytesCopied
			res.Stats.CheckpointStoredBytes = store.BytesStored
		}

		e.mvm(i, w, x)                  // w = A·x
		e.axpbyInto(i, r, 1, bT, -1, w) // r = b − w
		relres = vec.Norm2(r.data) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tolRes {
			if e.verify(x) {
				res.Converged = true
				break
			}
			res.Stats.Rollbacks++
			if res.Stats.Rollbacks > opts.MaxRollbacks {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("Jacobi", Basic)
			}
			snapIter, rerr := restoreX(i)
			if rerr != nil {
				return res, rerr
			}
			i = snapIter
			continue
		}
		if err := e.pco(i, u, r); err != nil {
			return res, err
		}
		e.axpy(i, x, 1, u) // x = x + u
		i++
		res.Iterations = i
	}

	res.Residual = relres
	res.Stats.InjectedErrors = e.injectedCount()
	if !res.Converged {
		return notConverged("ABFT Jacobi", res, relres)
	}
	return res, nil
}

// BasicChebyshev solves the SPD system A·x = b with the preconditioned
// Chebyshev semi-iteration under basic online ABFT protection, given
// spectral bounds [lmin, lmax] of M⁻¹A. Chebyshev has no inner products,
// so there is nothing for residual/orthogonality-based detection to hook
// into — but its MVM, PCO and VLOs carry checksums exactly like PCG's.
// Checkpoint set: {x, p, r} plus the recurrence scalar alpha.
func BasicChebyshev(a *sparse.CSR, m precond.Preconditioner, b []float64, lmin, lmax float64, opts Options) (Result, error) {
	var res Result
	if err := validateSystem(a, b); err != nil {
		return res, err
	}
	if lmin <= 0 || lmax <= lmin {
		return res, breakdownErr("Chebyshev", Basic, 0, "need 0 < lmin < lmax")
	}
	opts.normalize()
	e := newEngine(a, m, checksum.Single, &opts, &res.Stats)
	n := e.n

	x := e.newTracked("x")
	if opts.X0 != nil {
		copy(x.data, opts.X0)
		e.recompute(x)
	}
	r := e.newTracked("r")
	z := e.newTracked("z")
	p := e.newTracked("p")
	q := e.newTracked("q")
	bT := e.wrap("b", b)

	a.MulVec(r.data, x.data)
	vec.Sub(r.data, bT.data, r.data)
	e.recompute(r)

	normB := vec.Norm2(b)
	if normB <= 0 {
		normB = 1
	}
	tolRes := opts.Tol
	if tolRes <= 0 {
		tolRes = 1e-8
	}
	maxIter := opts.MaxIter
	if maxIter <= 0 {
		maxIter = 10 * n
	}

	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	var alpha, beta float64

	store := opts.newStore()
	d, cd := opts.DetectInterval, opts.CheckpointInterval
	res.X = x.data
	relres := vec.Norm2(r.data) / normB
	if relres <= tolRes {
		res.Converged = true
		res.Residual = relres
		return res, nil
	}

	rollback := func(iter int) (int, bool) {
		res.Stats.Rollbacks++
		if res.Stats.Rollbacks > opts.MaxRollbacks {
			return iter, false
		}
		scal := map[string]float64{}
		snapIter, err := store.Restore(
			map[string][]float64{"x": x.data, "p": p.data},
			scal,
			map[string][]float64{"x": x.s, "p": p.s, "x.eta": x.eta, "p.eta": p.eta})
		if err != nil {
			return iter, false
		}
		alpha = scal["alpha"]
		if store.Lossy() {
			// Quantized restore: re-anchor the restored vectors' checksums
			// from the perturbed data before anything verifies them.
			e.recompute(x)
			e.recompute(p)
			res.Stats.LossyRestores++
		}
		a.MulVec(r.data, x.data)
		vec.Sub(r.data, bT.data, r.data)
		e.recompute(r)
		res.Stats.RecoveryMVMs++
		res.Stats.WastedIterations += iter - snapIter
		return snapIter, true
	}

	i := 0
	for i < maxIter {
		if err := opts.ctxErr("Chebyshev"); err != nil {
			res.Residual = relres
			res.Stats.InjectedErrors = e.injectedCount()
			return res, err
		}
		if i > 0 && i%d == 0 {
			if !e.verify(x) || !e.verify(r) {
				var ok bool
				if i, ok = rollback(i); !ok {
					res.Residual = relres
					res.Stats.InjectedErrors = e.injectedCount()
					return res, rollbackStormErr("Chebyshev", Basic)
				}
				continue
			}
		}
		if i%cd == 0 {
			if i > 0 && !e.verify(p) {
				var ok bool
				if i, ok = rollback(i); !ok {
					res.Residual = relres
					res.Stats.InjectedErrors = e.injectedCount()
					return res, rollbackStormErr("Chebyshev", Basic)
				}
				continue
			}
			store.Save(i,
				map[string][]float64{"x": x.data, "p": p.data},
				map[string]float64{"alpha": alpha},
				map[string][]float64{"x": x.s, "p": p.s, "x.eta": x.eta, "p.eta": p.eta})
			res.Stats.Checkpoints++
			res.Stats.CheckpointBytes = store.BytesCopied
			res.Stats.CheckpointStoredBytes = store.BytesStored
		}

		if err := e.pco(i, z, r); err != nil {
			return res, err
		}
		if i == 0 {
			copyTracked(p, z)
			alpha = 1 / theta
		} else {
			beta = (delta * alpha / 2) * (delta * alpha / 2)
			alpha = 1 / (theta - beta/alpha)
			e.xpby(i, p, z, beta, p)
		}
		e.axpy(i, x, alpha, p)
		e.mvm(i, q, p)
		e.axpy(i, r, -alpha, q)
		i++
		res.Iterations = i

		relres = vec.Norm2(r.data) / normB
		if opts.RecordResiduals {
			res.History = append(res.History, relres)
		}
		if relres <= tolRes {
			if e.verify(x) && e.verify(r) {
				res.Converged = true
				break
			}
			var ok bool
			if i, ok = rollback(i); !ok {
				res.Residual = relres
				res.Stats.InjectedErrors = e.injectedCount()
				return res, rollbackStormErr("Chebyshev", Basic)
			}
			continue
		}
	}

	res.Residual = relres
	res.Stats.InjectedErrors = e.injectedCount()
	if !res.Converged {
		return notConverged("ABFT Chebyshev", res, relres)
	}
	return res, nil
}
