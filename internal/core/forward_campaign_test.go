package core

import (
	"fmt"
	"math"
	"testing"

	"newsum/internal/fault"
	"newsum/internal/precond"
	"newsum/internal/solver"
	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// The forward-recovery campaign: exhaustively inject one additive strike at
// every (iteration, attack site, element) coordinate of a small protected
// solve and require that the forward tier repairs it in place — zero
// rollbacks, at least one rollback avoided — and that the solve still
// converges to the fault-free answer. SiteMVM strikes the protected MVM
// output (the paper's §3 error model: the corruption lands after the dual
// checksum is derived); SiteVLO strikes the iterate update. The additive
// magnitude 1e4 is always detectable at the next boundary and never trips
// the suspect-scalar pre-check, so every coordinate exercises the forward
// path rather than the rollback fallback.

func forwardCampaignSystem(t *testing.T) (*sparse.CSR, []float64, precond.Preconditioner) {
	t.Helper()
	a := sparse.Laplacian2D(6, 6)
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = math.Cos(float64(i))
	}
	b := make([]float64, a.Rows)
	a.MulVec(b, xTrue)
	m, err := precond.BlockJacobiILU0(a, 4)
	if err != nil {
		t.Fatalf("preconditioner: %v", err)
	}
	return a, b, m
}

func forwardCampaignOptions(inj *fault.Injector) Options {
	return Options{
		Options:            solver.Options{Tol: 1e-10},
		DetectInterval:     2,
		CheckpointInterval: 10,
		MaxRollbacks:       8,
		ForwardRecovery:    true,
		Injector:           inj,
	}
}

func runForwardCampaign(t *testing.T, solve func(opts Options) (Result, error), mvmIters, vloIters, n int, baseX []float64) {
	t.Helper()
	forward, masked, total := 0, 0, 0
	for _, site := range []fault.Site{fault.SiteMVM, fault.SiteVLO} {
		iters := mvmIters
		if site == fault.SiteVLO {
			iters = vloIters
		}
		for iter := 0; iter < iters; iter++ {
			for elem := 0; elem < n; elem++ {
				site, iter, elem := site, iter, elem
				t.Run(fmt.Sprintf("%s/iter=%d/elem=%d", site, iter, elem), func(t *testing.T) {
					inj := fault.NewInjector([]fault.Event{{
						Iteration: iter, Site: site, Kind: fault.Arithmetic,
						Index: elem, Magnitude: 1e4,
					}}, int64(iter*n+elem))
					res, err := solve(forwardCampaignOptions(inj))
					if err != nil {
						t.Fatalf("faulted solve: %v", err)
					}
					if len(inj.Injected) != 1 {
						t.Fatalf("fault did not fire exactly once: injected=%d", len(inj.Injected))
					}
					total++
					switch {
					case res.Stats.Rollbacks != 0:
						t.Errorf("forward tier fell back to rollback: %+v", res.Stats)
					case res.Stats.RollbacksAvoided > 0:
						forward++
					case res.Stats.Detections == 0:
						// A strike at the final MVM near convergence enters r
						// multiplied by the collapsed step length α ≈ ρ/pᵀq —
						// sub-threshold by construction, i.e. benignly masked.
						// The answer-equality check below still gates it.
						masked++
					default:
						t.Errorf("detected strike escaped the forward tier: %+v", res.Stats)
					}
					if !vec.Equal(res.X, baseX, 1e-6) {
						t.Errorf("solution drifted from the fault-free answer")
					}
				})
			}
		}
	}
	if forward+masked != total {
		t.Errorf("forward-recovery rate %d/%d (+%d masked), want every detected strike forward", forward, total, masked)
	} else if masked > n {
		// Masking is a final-iteration phenomenon; more than one sweep's
		// worth of masked strikes means detection itself regressed.
		t.Errorf("masked %d strikes, want at most %d (one element sweep)", masked, n)
	} else {
		t.Logf("campaign: %d/%d strikes repaired forward, %d benignly masked", forward, total, masked)
	}
}

func TestForwardCampaignPCG(t *testing.T) {
	a, b, m := forwardCampaignSystem(t)
	base, err := BasicPCG(a, m, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	runForwardCampaign(t, func(opts Options) (Result, error) {
		return BasicPCG(a, m, b, opts)
	}, base.Iterations, base.Iterations, a.Rows, base.X)
}

func TestForwardCampaignCR(t *testing.T) {
	a, b, _ := forwardCampaignSystem(t)
	base, err := BasicCR(a, b, forwardCampaignOptions(nil))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	// CR's protected MVM lives in the recurrence tail, which the final
	// (converging) iteration skips — the MVM sweep stops one short.
	runForwardCampaign(t, func(opts Options) (Result, error) {
		return BasicCR(a, b, opts)
	}, base.Iterations-1, base.Iterations, a.Rows, base.X)
}
