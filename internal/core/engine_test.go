package core

import (
	"math"
	"testing"

	"newsum/internal/checksum"
	"newsum/internal/precond"
	"newsum/internal/sparse"
)

func newTestEngine(t *testing.T, weights []checksum.Weight) (*engine, *Stats) {
	t.Helper()
	a := sparse.Laplacian2D(8, 8)
	m, err := precond.BlockJacobiILU0(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	opts := Options{}
	opts.normalize()
	return newEngine(a, m, weights, &opts, &stats), &stats
}

func fillTracked(v *tracked, f func(i int) float64) {
	for i := range v.data {
		v.data[i] = f(i)
	}
}

func TestEngineWrapAndRecompute(t *testing.T) {
	e, _ := newTestEngine(t, checksum.Single)
	data := make([]float64, e.n)
	for i := range data {
		data[i] = float64(i % 5)
	}
	v := e.wrap("v", data)
	sum, _ := e.sums(v, 0)
	if math.Abs(v.s[0]-sum) > 1e-12 {
		t.Fatalf("wrap checksum %v vs %v", v.s[0], sum)
	}
	if v.eta[0] <= 0 {
		t.Fatalf("wrap must set a positive round-off bound")
	}
	if !e.verify(v) {
		t.Fatalf("freshly wrapped vector must verify")
	}
}

func TestEngineMVMUpdateMatchesDirect(t *testing.T) {
	e, stats := newTestEngine(t, checksum.Single)
	src := e.newTracked("src")
	fillTracked(src, func(i int) float64 { return math.Sin(float64(i)) })
	e.recompute(src)
	dst := e.newTracked("dst")
	e.mvm(0, dst, src)
	// dst's carried checksum must match the directly computed cᵀ(A·src).
	sum, absSum := e.sums(dst, 0)
	if e.tol.InconsistentBound(sum-dst.s[0], e.n, absSum, dst.eta[0]) {
		t.Fatalf("fault-free MVM left an inconsistency: %v", sum-dst.s[0])
	}
	if stats.ChecksumUpdates == 0 {
		t.Fatalf("update not counted")
	}
}

func TestEnginePCOPreservesConsistency(t *testing.T) {
	e, _ := newTestEngine(t, checksum.Single)
	src := e.newTracked("src")
	fillTracked(src, func(i int) float64 { return 1 / float64(i+1) })
	e.recompute(src)
	dst := e.newTracked("dst")
	if err := e.pco(0, dst, src); err != nil {
		t.Fatal(err)
	}
	if !e.verify(dst) {
		t.Fatalf("fault-free PCO output inconsistent")
	}
}

func TestEngineVLOChain(t *testing.T) {
	e, _ := newTestEngine(t, checksum.Single)
	x := e.newTracked("x")
	y := e.newTracked("y")
	z := e.newTracked("z")
	fillTracked(x, func(i int) float64 { return float64(i % 3) })
	fillTracked(y, func(i int) float64 { return float64(i % 7) })
	e.recompute(x)
	e.recompute(y)
	e.axpy(0, y, 2.5, x)
	e.xpby(0, z, x, -0.5, y)
	e.axpbyInto(0, z, 1.5, z, 0.25, x)
	e.scaleInto(0, z, 3, z)
	for _, v := range []*tracked{x, y, z} {
		if !e.verify(v) {
			t.Fatalf("%s inconsistent after VLO chain", v.name)
		}
	}
}

func TestEngineVerifyRefreshResetsEta(t *testing.T) {
	e, _ := newTestEngine(t, checksum.Single)
	v := e.newTracked("v")
	fillTracked(v, func(i int) float64 { return float64(i) })
	e.recompute(v)
	v.eta[0] = 1e10 // simulate accumulated bound growth
	if !e.verify(v) {
		t.Fatalf("consistent vector failed verification")
	}
	if v.eta[0] >= 1e10 {
		t.Fatalf("verify must refresh the round-off bound, still %v", v.eta[0])
	}
}

func TestEngineVerifyDetectsCorruption(t *testing.T) {
	e, stats := newTestEngine(t, checksum.Single)
	v := e.newTracked("v")
	fillTracked(v, func(i int) float64 { return float64(i) })
	e.recompute(v)
	v.data[5] += 1e3
	if e.verify(v) {
		t.Fatalf("corruption passed verification")
	}
	if stats.Detections == 0 {
		t.Fatalf("detection not counted")
	}
}

func TestInnerCheckLazyMatchesEagerOnSingleError(t *testing.T) {
	for _, eager := range []bool{false, true} {
		weights := checksum.Single
		if eager {
			weights = checksum.Triple
		}
		e, _ := newTestEngine(t, weights)
		if !eager {
			e.initLazyDiag()
		}
		src := e.newTracked("src")
		fillTracked(src, func(i int) float64 { return math.Cos(float64(i)) })
		e.recompute(src)
		q := e.newTracked("q")
		e.mvm(0, q, src)
		const pos, mag = 17, 512.0
		q.data[pos] += mag
		diag := e.innerCheck(q, src)
		if diag.Kind != checksum.SingleError {
			t.Fatalf("eager=%v: diagnosis %v", eager, diag.Kind)
		}
		if diag.Pos != pos {
			t.Fatalf("eager=%v: located %d, want %d", eager, diag.Pos, pos)
		}
		// CorrectSingle already applied inside innerCheck: q is clean.
		if !e.verify(q) {
			t.Fatalf("eager=%v: correction did not restore consistency", eager)
		}
	}
}

func TestInnerCheckEscalatesOnDirtyInput(t *testing.T) {
	for _, eager := range []bool{false, true} {
		weights := checksum.Single
		if eager {
			weights = checksum.Triple
		}
		e, _ := newTestEngine(t, weights)
		if !eager {
			e.initLazyDiag()
		}
		src := e.newTracked("src")
		fillTracked(src, func(i int) float64 { return 1 })
		e.recompute(src)
		src.data[9] += 777 // corrupt AFTER the checksum capture: dirty input
		q := e.newTracked("q")
		e.mvm(0, q, src)
		diag := e.innerCheck(q, src)
		if diag.Kind != checksum.MultipleErrors {
			t.Fatalf("eager=%v: dirty input diagnosed as %v (fake-correction hazard)", eager, diag.Kind)
		}
	}
}

func TestInnerCheckMultipleOutputErrors(t *testing.T) {
	e, _ := newTestEngine(t, checksum.Single)
	e.initLazyDiag()
	src := e.newTracked("src")
	fillTracked(src, func(i int) float64 { return float64(i%4) + 1 })
	e.recompute(src)
	q := e.newTracked("q")
	e.mvm(0, q, src)
	q.data[3] += 100
	q.data[40] -= 55
	if diag := e.innerCheck(q, src); diag.Kind != checksum.MultipleErrors {
		t.Fatalf("two output errors diagnosed as %v", diag.Kind)
	}
}

func TestEngineLemmaDOption(t *testing.T) {
	a := sparse.Laplacian2D(8, 8)
	m, err := precond.BlockJacobiILU0(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	var stats Stats
	opts := Options{UseLemmaD: true}
	opts.normalize()
	e := newEngine(a, m, checksum.Single, &opts, &stats)
	if e.encA.D <= 64 {
		t.Fatalf("LemmaD should exceed the practical cap: %v", e.encA.D)
	}
	// Even with the huge d, a fault-free chain stays verifiable thanks to
	// the η bounds.
	src := e.newTracked("src")
	fillTracked(src, func(i int) float64 { return math.Sin(float64(i)) })
	e.recompute(src)
	dst := e.newTracked("dst")
	for k := 0; k < 20; k++ {
		e.mvm(0, dst, src)
		e.axpy(0, src, 0.01, dst)
		if !e.verify(src) {
			t.Fatalf("η bounds failed under LemmaD at step %d", k)
		}
	}
}

func TestEngineDScalarOverride(t *testing.T) {
	a := sparse.Laplacian2D(4, 4)
	var stats Stats
	opts := Options{DScalar: 8}
	opts.normalize()
	e := newEngine(a, nil, checksum.Single, &opts, &stats)
	if e.encA.D != 8 {
		t.Fatalf("DScalar override ignored: %v", e.encA.D)
	}
}
