package precond

import (
	"math"
	"math/rand"
	"testing"

	"newsum/internal/sparse"
	"newsum/internal/vec"
)

// TestIC0ExactOnTridiag: tridiagonal SPD matrices have no dropped fill, so
// IC(0) is the exact Cholesky factor and M⁻¹ solves the system.
func TestIC0ExactOnTridiag(t *testing.T) {
	a := sparse.Tridiag(40, -1, 3, -1)
	p, err := IC0(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	zTrue := randVecP(rng, 40)
	r := make([]float64, 40)
	a.MulVec(r, zTrue)
	z := make([]float64, 40)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if math.Abs(z[i]-zTrue[i]) > 1e-10 {
			t.Fatalf("IC(0) not exact on tridiagonal at %d: %v vs %v", i, z[i], zTrue[i])
		}
	}
}

// TestIC0FactorSymmetry: the stages must be L then Lᵀ (same values).
func TestIC0FactorSymmetry(t *testing.T) {
	a := sparse.Laplacian2D(5, 5)
	p, err := IC0(a)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stages()
	if len(st) != 2 {
		t.Fatalf("stages: %d", len(st))
	}
	l, lt := st[0].M, st[1].M
	for i := 0; i < l.Rows; i++ {
		cols, vals := l.RowView(i)
		for k, j := range cols {
			if math.Abs(lt.At(j, i)-vals[k]) > 1e-15 {
				t.Fatalf("Lᵀ mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// pcgIters runs a minimal PCG loop locally (the solver package imports
// precond, so tests here cannot import it back) and returns the iteration
// count to tolerance.
func pcgIters(t *testing.T, a *sparse.CSR, m Preconditioner, b []float64, tol float64) int {
	t.Helper()
	n := a.Rows
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	p := make([]float64, n)
	q := make([]float64, n)
	if err := m.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	copy(p, z)
	rho := vec.Dot(r, z)
	normB := vec.Norm2(b)
	for i := 1; i <= 10*n; i++ {
		a.MulVec(q, p)
		alpha := rho / vec.Dot(p, q)
		vec.Axpy(x, alpha, p)
		vec.Axpy(r, -alpha, q)
		if vec.Norm2(r)/normB <= tol {
			return i
		}
		if err := m.Apply(z, r); err != nil {
			t.Fatal(err)
		}
		rhoNew := vec.Dot(r, z)
		vec.Xpby(p, z, rhoNew/rho, p)
		rho = rhoNew
	}
	t.Fatalf("PCG did not converge")
	return 0
}

// TestIC0AcceleratesCG: the whole point of the preconditioner.
func TestIC0AcceleratesCG(t *testing.T) {
	a := sparse.Laplacian2D(20, 20)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	p, err := IC0(a)
	if err != nil {
		t.Fatal(err)
	}
	plainIters := pcgIters(t, a, Identity(a.Rows), b, 1e-10)
	preIters := pcgIters(t, a, p, b, 1e-10)
	if preIters >= plainIters {
		t.Fatalf("IC(0) did not accelerate: %d vs %d", preIters, plainIters)
	}
}

func TestIC0Errors(t *testing.T) {
	rect := sparse.NewCOO(2, 3).ToCSR()
	if _, err := IC0(rect); err == nil {
		t.Fatalf("rectangular accepted")
	}
	// Missing diagonal.
	c := sparse.NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	if _, err := IC0(c.ToCSR()); err == nil {
		t.Fatalf("missing diagonal accepted")
	}
	// Indefinite matrix breaks down with a descriptive error.
	ind := sparse.NewCOO(2, 2)
	ind.Add(0, 0, 1)
	ind.Add(0, 1, 3)
	ind.Add(1, 0, 3)
	ind.Add(1, 1, 1)
	if _, err := IC0(ind.ToCSR()); err == nil {
		t.Fatalf("indefinite matrix should break IC(0)")
	}
}
