package precond

import (
	"math"
	"math/rand"
	"testing"

	"newsum/internal/sparse"
)

func randVecP(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// applyStages replays the stage list manually and checks it matches Apply —
// the property the ABFT engine depends on when it interleaves checksum
// updates between stages.
func applyStages(t *testing.T, p Preconditioner, r []float64) []float64 {
	t.Helper()
	n := p.Dims()
	in := append([]float64(nil), r...)
	for _, st := range p.Stages() {
		out := make([]float64, n)
		if err := st.Apply(out, in); err != nil {
			t.Fatalf("stage apply: %v", err)
		}
		in = out
	}
	return in
}

func TestIdentity(t *testing.T) {
	p := Identity(4)
	r := []float64{1, 2, 3, 4}
	z := make([]float64, 4)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if z[i] != r[i] {
			t.Fatalf("identity changed the vector: %v", z)
		}
	}
	if len(p.Stages()) != 0 || p.Name() != "none" || p.Dims() != 4 {
		t.Fatalf("identity metadata wrong")
	}
}

func TestJacobi(t *testing.T) {
	a := sparse.Tridiag(5, -1, 4, -1)
	p, err := Jacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	r := []float64{4, 8, 12, 16, 20}
	z := make([]float64, 5)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if math.Abs(z[i]-r[i]/4) > 1e-15 {
			t.Fatalf("Jacobi apply: %v", z)
		}
	}
}

func TestJacobiZeroDiagonal(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 0, 1)
	c.Add(1, 0, 1)
	if _, err := Jacobi(c.ToCSR()); err == nil {
		t.Fatalf("expected zero-diagonal error")
	}
}

// TestILU0ExactOnTridiag: for a tridiagonal matrix ILU(0) has no dropped
// fill, so M = A exactly and applying the preconditioner solves A z = r.
func TestILU0ExactOnTridiag(t *testing.T) {
	a := sparse.Tridiag(50, -1, 2.5, -1)
	p, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	zTrue := randVecP(rng, 50)
	r := make([]float64, 50)
	a.MulVec(r, zTrue)
	z := make([]float64, 50)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	for i := range z {
		if math.Abs(z[i]-zTrue[i]) > 1e-10 {
			t.Fatalf("ILU(0) not exact on tridiagonal: z[%d]=%v want %v", i, z[i], zTrue[i])
		}
	}
}

func TestILU0StagesComposeLikeApply(t *testing.T) {
	a := sparse.Laplacian2D(6, 6)
	p, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	r := randVecP(rng, a.Rows)
	z := make([]float64, a.Rows)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	staged := applyStages(t, p, r)
	for i := range z {
		if math.Abs(z[i]-staged[i]) > 1e-13 {
			t.Fatalf("stage composition differs at %d", i)
		}
	}
}

func TestILU0RequiresDiagonal(t *testing.T) {
	c := sparse.NewCOO(2, 2)
	c.Add(0, 1, 1)
	c.Add(1, 0, 1)
	if _, err := ILU0(c.ToCSR()); err == nil {
		t.Fatalf("expected missing-diagonal error")
	}
}

func TestBlockJacobiILU0(t *testing.T) {
	a := sparse.Laplacian2D(8, 8)
	p, err := BlockJacobiILU0(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Block-diagonal: applying to a vector supported on one block must
	// produce output supported on the same block.
	n := a.Rows
	r := make([]float64, n)
	for i := 0; i < n/4; i++ {
		r[i] = 1
	}
	z := make([]float64, n)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	for i := n / 4; i < n; i++ {
		if z[i] != 0 {
			t.Fatalf("block coupling leaked to index %d", i)
		}
	}
	// With one block it degenerates to plain ILU(0).
	p1, err := BlockJacobiILU0(a, 1)
	if err != nil {
		t.Fatal(err)
	}
	pFull, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rr := randVecP(rng, n)
	z1 := make([]float64, n)
	z2 := make([]float64, n)
	if err := p1.Apply(z1, rr); err != nil {
		t.Fatal(err)
	}
	if err := pFull.Apply(z2, rr); err != nil {
		t.Fatal(err)
	}
	for i := range z1 {
		if math.Abs(z1[i]-z2[i]) > 1e-12 {
			t.Fatalf("1-block block-Jacobi differs from ILU(0)")
		}
	}
}

func TestBlockJacobiBadParams(t *testing.T) {
	a := sparse.Laplacian2D(4, 4)
	if _, err := BlockJacobiILU0(a, 0); err == nil {
		t.Fatalf("expected error for 0 blocks")
	}
	if _, err := BlockJacobiILU0(a, 17); err == nil {
		t.Fatalf("expected error for more blocks than rows")
	}
	rect := sparse.NewCOO(2, 3).ToCSR()
	if _, err := BlockJacobiILU0(rect, 1); err == nil {
		t.Fatalf("expected error for rectangular matrix")
	}
}

// TestSSORDefinition checks M z = r against the explicit SSOR formula
// M = (D/ω + L)·(D/ω)⁻¹·(D/ω + U)·ω/(2−ω) on a small dense system.
func TestSSORDefinition(t *testing.T) {
	a := sparse.Tridiag(6, -1, 4, -1)
	const omega = 1.3
	p, err := SSOR(a, omega)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	r := randVecP(rng, 6)
	z := make([]float64, 6)
	if err := p.Apply(z, r); err != nil {
		t.Fatal(err)
	}
	// Rebuild M densely and check M·z = r.
	n := 6
	d := a.Dense()
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	// K1 = D/ω + L, K2 = D/ω + U, M = K1·(D/ω)⁻¹·K2·ω/(2−ω).
	k1 := make([][]float64, n)
	k2 := make([][]float64, n)
	for i := 0; i < n; i++ {
		k1[i] = make([]float64, n)
		k2[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			switch {
			case j < i:
				k1[i][j] = d[i][j]
			case j > i:
				k2[i][j] = d[i][j]
			default:
				k1[i][i] = d[i][i] / omega
				k2[i][i] = d[i][i] / omega
			}
		}
	}
	scale := omega / (2 - omega)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				// (K1)(D/ω)⁻¹(K2) = Σ_k k1[i][k]·ω/d[k][k]·k2[k][j]
				s += k1[i][k] * omega / d[k][k] * k2[k][j]
			}
			m[i][j] = s * scale
		}
	}
	mz := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			mz[i] += m[i][j] * z[j]
		}
	}
	for i := range r {
		if math.Abs(mz[i]-r[i]) > 1e-10 {
			t.Fatalf("SSOR: (Mz)[%d]=%v, want %v", i, mz[i], r[i])
		}
	}
}

func TestSSORBadOmega(t *testing.T) {
	a := sparse.Tridiag(4, -1, 4, -1)
	for _, w := range []float64{0, -1, 2, 3} {
		if _, err := SSOR(a, w); err == nil {
			t.Errorf("omega %v accepted", w)
		}
	}
}

func TestApplyDimensionMismatch(t *testing.T) {
	p := Identity(4)
	if err := p.Apply(make([]float64, 3), make([]float64, 4)); err == nil {
		t.Fatalf("expected dimension error")
	}
}

func TestStageApplyExported(t *testing.T) {
	a := sparse.Tridiag(4, -1, 4, -1)
	p, err := ILU0(a)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stages()[0]
	out := make([]float64, 4)
	if err := st.Apply(out, []float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 { // unit-diagonal L: first entry passes through
		t.Fatalf("stage apply: %v", out)
	}
}

func BenchmarkILU0Setup(b *testing.B) {
	a := sparse.CircuitLike(40000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BlockJacobiILU0(a, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockJacobiApply(b *testing.B) {
	a := sparse.CircuitLike(40000, 1)
	p, err := BlockJacobiILU0(a, 16)
	if err != nil {
		b.Fatal(err)
	}
	r := make([]float64, a.Rows)
	z := make([]float64, a.Rows)
	for i := range r {
		r[i] = float64(i % 11)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Apply(z, r); err != nil {
			b.Fatal(err)
		}
	}
}
